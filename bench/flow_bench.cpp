// Flow-control benchmark: the same overloaded chain (offered load ~2x the
// bottleneck bolt's service capacity) run twice — flow control off, then on
// — and the contrast that motivates the subsystem:
//
//   flow off — the bolt's queue grows without bound for the whole run and
//              completion p99 grows with it (every admitted tuple waits
//              behind the entire backlog).
//   flow on  — the queue stays inside the configured capacity, backpressure
//              paces the spouts to the bolt's service rate, and p99 is
//              bounded by capacity x service time.
//
// Emits BENCH_flow.json (sustained throughput over the second half of the
// run, p50/p99 latency, periodic queue-depth samples, shed/backpressure
// counters) so the robustness trajectory is tracked across PRs alongside
// BENCH_core.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/system.h"
#include "metrics/histogram.h"
#include "runtime/cluster.h"
#include "sim/simulation.h"
#include "workload/topologies.h"

namespace {

using Clock = std::chrono::steady_clock;
namespace rt = tstorm::runtime;

struct Variant {
  std::string name;
  std::uint64_t completed = 0;
  double sustained_tps = 0;  // completions/s over the second half
  double p50_ms = 0;
  double p99_ms = 0;
  std::vector<std::pair<double, std::size_t>> depth_samples;  // (t, depth)
  std::size_t depth_max = 0;
  std::size_t depth_final = 0;
  std::uint64_t shed = 0;
  std::uint64_t throttle_activations = 0;
  double wall_s = 0;
};

std::size_t max_data_depth(rt::Cluster& cluster) {
  std::size_t deepest = 0;
  for (rt::Executor* e : cluster.registered_executors()) {
    deepest = std::max(deepest, e->data_queue_depth());
  }
  return deepest;
}

// 2 spouts at 100 tuples/s each against one 10 ms bolt (~100/s service at
// 2 GHz): offered load 2x capacity, sustained for the whole run.
tstorm::workload::ChainOptions overload_at_2x() {
  tstorm::workload::ChainOptions opt;
  opt.spout_parallelism = 2;
  opt.emit_interval = 0.01;
  opt.bolts = 1;
  opt.bolt_parallelism = 1;
  opt.ackers = 2;
  opt.workers = 2;  // spout->bolt hops cross the network
  opt.bolt_cost_mc = 20.0;
  // The spouts' pending window must not be what bounds the backlog — that
  // is the flow controller's job (or, flow off, nobody's).
  opt.max_pending = 1 << 20;
  return opt;
}

Variant run_variant(bool flow_on, double duration) {
  tstorm::sim::Simulation sim;
  rt::ClusterConfig cfg;
  cfg.num_nodes = 2;
  // Long timeout: the flow-off run's point is unbounded queue growth, not
  // timeout churn on the backlog.
  cfg.tuple_timeout = 4.0 * duration;
  cfg.flow.enabled = flow_on;
  cfg.flow.queue_capacity = 128;
  tstorm::core::StormSystem sys(sim, cfg);
  sys.submit(tstorm::workload::make_chain(overload_at_2x()));
  auto& cluster = sys.cluster();

  Variant v;
  v.name = flow_on ? "flow_on" : "flow_off";
  const auto t0 = Clock::now();
  std::uint64_t completed_at_half = 0;
  const int samples = 12;
  for (int i = 1; i <= samples; ++i) {
    const double t = duration * i / samples;
    sim.run_until(t);
    const std::size_t depth = max_data_depth(cluster);
    v.depth_samples.emplace_back(t, depth);
    v.depth_max = std::max(v.depth_max, depth);
    if (i == samples / 2) {
      completed_at_half = cluster.completion().total_completed();
    }
  }
  v.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();

  v.completed = cluster.completion().total_completed();
  v.sustained_tps = static_cast<double>(v.completed - completed_at_half) /
                    (duration / 2.0);
  v.p50_ms = cluster.completion().latency_histogram().percentile(50.0);
  v.p99_ms = cluster.completion().latency_histogram().percentile(99.0);
  v.depth_final = v.depth_samples.back().second;
  v.shed = cluster.dropped_by(rt::DropCause::kLoadShed);
  v.throttle_activations = cluster.flow().throttle_activations();
  return v;
}

void write_json(const std::string& path, const std::string& label,
                const std::vector<Variant>& variants, int capacity) {
  std::ofstream out(path);
  out << "{\n";
  out << "  \"bench\": \"flow_bench\",\n";
  out << "  \"label\": \"" << label << "\",\n";
  const std::time_t now = std::time(nullptr);
  char stamp[64];
  std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ",
                std::gmtime(&now));
  out << "  \"timestamp\": \"" << stamp << "\",\n";
  out << "  \"queue_capacity\": " << capacity << ",\n";
  out << "  \"results\": {\n";
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const Variant& v = variants[i];
    out << "    \"" << v.name << "\": {\"completed\": " << v.completed
        << ", \"sustained_tps\": " << v.sustained_tps
        << ", \"p50_ms\": " << v.p50_ms << ", \"p99_ms\": " << v.p99_ms
        << ", \"queue_depth_max\": " << v.depth_max
        << ", \"queue_depth_final\": " << v.depth_final
        << ", \"shed\": " << v.shed
        << ", \"throttle_activations\": " << v.throttle_activations
        << ", \"wall_s\": " << v.wall_s << ", \"queue_depth_samples\": [";
    for (std::size_t s = 0; s < v.depth_samples.size(); ++s) {
      out << (s != 0 ? ", " : "") << "[" << v.depth_samples[s].first << ", "
          << v.depth_samples[s].second << "]";
    }
    out << "]}" << (i + 1 < variants.size() ? "," : "") << "\n";
  }
  out << "  }\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_flow.json";
  std::string label = "current";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--label" && i + 1 < argc) {
      label = argv[++i];
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::cerr << "usage: flow_bench [--out FILE] [--label NAME] "
                   "[--quick]\n";
      return 2;
    }
  }

  const double duration = quick ? 60.0 : 300.0;
  std::vector<Variant> variants;
  variants.push_back(run_variant(/*flow_on=*/false, duration));
  variants.push_back(run_variant(/*flow_on=*/true, duration));

  std::cout << "flow_bench (" << (quick ? "quick" : "full")
            << ", label=" << label << ", 2x overload for " << duration
            << " sim-s)\n";
  for (const Variant& v : variants) {
    std::printf(
        "  %-9s %8llu completed  %7.1f tps sustained  p50 %9.1f ms  "
        "p99 %9.1f ms  queue max/final %6zu/%6zu  shed %llu  bp %llu\n",
        v.name.c_str(), static_cast<unsigned long long>(v.completed),
        v.sustained_tps, v.p50_ms, v.p99_ms, v.depth_max, v.depth_final,
        static_cast<unsigned long long>(v.shed),
        static_cast<unsigned long long>(v.throttle_activations));
  }

  write_json(out_path, label, variants, 128);
  std::cout << "wrote " << out_path << "\n";

  // Self-check: the contrast the bench exists to demonstrate. Flow off
  // must show monotone queue growth far past the bound; flow on must stay
  // within capacity and shed/throttle at least once.
  const Variant& off = variants[0];
  const Variant& on = variants[1];
  const bool off_grows =
      off.depth_final > 128 &&
      off.depth_final + 16 > off.depth_max;  // still near its maximum at end
  const bool on_bounded = on.depth_max <= 128 && on.throttle_activations > 0;
  if (!off_grows || !on_bounded) {
    std::cerr << "FAIL: expected unbounded growth with flow off "
                 "(final/max "
              << off.depth_final << "/" << off.depth_max
              << ") and a bounded queue with flow on (max "
              << on.depth_max << ", activations "
              << on.throttle_activations << ")\n";
    return 1;
  }
  return 0;
}
