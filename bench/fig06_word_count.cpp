// Figure 6: performance on the Word Count (stream version) topology.
//
// 10 worker nodes, 20 workers requested, 2 reader spouts / 5 split / 5
// count / 5 mongo executors. Input: a text stream pushed into a Redis-like
// queue at a fixed line rate. Storm vs T-Storm with gamma = 1, 1.8 and
// 2.2. Paper: 49 % / 42 % / 35 % speedups using 10 / 7 / 5 nodes; the
// bolts do substantial work, so aggressive consolidation starts to hurt.
#include <iostream>

#include "harness.h"
#include "workload/external_queue.h"
#include "workload/topologies.h"

using namespace tstorm;

namespace {

constexpr double kLineRate = 260.0;  // lines/second

bench::RunSpec wc_spec(const std::string& label, bool tstorm, double gamma) {
  bench::RunSpec spec;
  spec.label = label;
  spec.tstorm = tstorm;
  spec.core.gamma = gamma;
  spec.make_topology = [](sim::Simulation& sim,
                          std::vector<std::shared_ptr<void>>& keepalive) {
    auto wc = workload::make_word_count();
    auto producer = std::make_shared<workload::QueueProducer>(
        sim, *wc.queue, kLineRate);
    producer->start();
    keepalive.push_back(wc.queue);
    keepalive.push_back(std::move(producer));
    return std::move(wc.topology);
  };
  return spec;
}

}  // namespace

int main() {
  std::cout << "Figure 6 — Word Count topology (10 nodes, 20 workers "
               "requested, 2+5+5+5 executors), input "
            << kLineRate << " lines/s\n";

  const auto storm = bench::run(wc_spec("Storm", false, 1.0));
  const auto g1 = bench::run(wc_spec("T-Storm g=1", true, 1.0));
  const auto g18 = bench::run(wc_spec("T-Storm g=1.8", true, 1.8));
  const auto g22 = bench::run(wc_spec("T-Storm g=2.2", true, 2.2));

  bench::print_comparison("Fig. 6(a): gamma = 1 (paper: 49% speedup, 10 nodes)",
                          {storm, g1}, 150.0, 1000.0);
  bench::print_node_timeline(g1);

  bench::print_comparison(
      "Fig. 6(b): gamma = 1.8 (paper: 42% speedup, 7 nodes)", {storm, g18},
      500.0, 1000.0);
  bench::print_node_timeline(g18);

  bench::print_comparison(
      "Fig. 6(c): gamma = 2.2 (paper: 35% speedup, 5 nodes)", {storm, g22},
      500.0, 1000.0);
  bench::print_node_timeline(g22);
  return 0;
}
