// Figure 3: impact of overloading a worker node.
//
// The chain topology with 5 spout executors and 1 executor per bolt,
// confined to one worker on one node — incoming tuples outpace the bolts,
// queues grow without bound, processing time skyrockets (Fig. 3(a)) and
// tuples start failing at the 30 s timeout (Fig. 3(b)).
#include <iostream>

#include "harness.h"
#include "metrics/reporter.h"
#include "workload/topologies.h"

using namespace tstorm;

int main() {
  std::cout << "Figure 3 — impact of overloading a worker node\n"
            << "Chain with 5 spout executors, 1 executor per bolt, all on "
               "one worker.\n";

  bench::RunSpec spec;
  spec.label = "overloaded";
  spec.tstorm = false;
  spec.duration = 180.0;  // the figure's x-axis runs 20-180 s
  spec.cluster.max_replays = 1;
  // 5 spouts + 4 bolts + 5 ackers = 14 tasks; pin all to node 0, slot 0.
  sched::Placement pin;
  for (int t = 0; t < 14; ++t) pin[t] = 0;
  spec.pin = std::move(pin);
  spec.make_topology = [](sim::Simulation&,
                          std::vector<std::shared_ptr<void>>&) {
    workload::ChainOptions opt;
    opt.spout_parallelism = 5;   // 1000 tuples/s aggregate input
    opt.bolt_cost_mc = 8.0;      // 4 ms/tuple: the bolts cannot keep up
    opt.max_pending = 0;         // no backpressure, as in the experiment
    return workload::make_chain(opt);
  };

  const auto r = bench::run(spec);
  bench::print_comparison("Fig. 3(a): avg processing time under overload",
                          {r}, /*stabilized_from=*/20.0, /*duration=*/180.0);
  bench::print_failures(r, 180.0);  // Fig. 3(b)

  const double early = r.mean_ms(20, 60);
  const double late = r.mean_ms(120, 180);
  std::cout << "\nQueue growth: mean " << metrics::format_ms(early)
            << " ms in [20,60) s vs " << metrics::format_ms(late)
            << " ms in [120,180) s (paper: grows to ~10^4 ms with rising "
               "failures)\n";
  return 0;
}
