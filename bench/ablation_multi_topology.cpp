// "Given M topologies..." (section IV-C): the schedule generator
// reschedules every topology in one run. This bench co-hosts Throughput
// Test and Word Count on the same 10-node cluster under Storm and under
// T-Storm, and reports per-topology processing time plus slot exclusivity.
#include <iomanip>
#include <iostream>
#include <set>

#include "core/system.h"
#include "metrics/reporter.h"
#include "workload/external_queue.h"
#include "workload/topologies.h"

using namespace tstorm;

namespace {

struct MultiResult {
  std::string label;
  double tt_ms = 0;
  double wc_ms = 0;
  int nodes = 0;
  bool exclusive = true;
};

/// The cluster's completion recorder aggregates across topologies, so the
/// headline number is the mixed mean; the structural assertions (node
/// usage, slot exclusivity) are per topology.
MultiResult run(bool tstorm) {
  sim::Simulation sim;
  std::unique_ptr<core::StormSystem> storm;
  std::unique_ptr<core::TStormSystem> ts;
  runtime::Cluster* cluster = nullptr;
  if (tstorm) {
    core::CoreConfig core;
    core.gamma = 1.7;
    ts = std::make_unique<core::TStormSystem>(sim, runtime::ClusterConfig{},
                                              core);
    cluster = &ts->cluster();
  } else {
    storm = std::make_unique<core::StormSystem>(sim);
    cluster = &storm->cluster();
  }

  workload::ThroughputTestOptions tt_opt;
  tt_opt.workers = 20;  // leave room for the second topology
  tt_opt.spout_parallelism = 3;
  tt_opt.identity_parallelism = 8;
  tt_opt.counter_parallelism = 8;
  tt_opt.ackers = 5;
  auto submit = [&](topo::Topology t) {
    return tstorm ? ts->submit(std::move(t)) : storm->submit(std::move(t));
  };
  const auto tt_id = submit(workload::make_throughput_test(tt_opt));

  workload::WordCountOptions wc_opt;
  wc_opt.workers = 10;
  auto wc = workload::make_word_count(wc_opt);
  workload::QueueProducer producer(sim, *wc.queue, 200.0);
  producer.start();
  const auto wc_id = submit(std::move(wc.topology));

  sim.run_until(1000.0);

  MultiResult r;
  r.label = tstorm ? "T-Storm" : "Storm";
  r.nodes = cluster->nodes_in_use();
  r.tt_ms = r.wc_ms =
      cluster->completion().proc_time_ms().mean_between(500, 1000).value_or(
          0);

  // Structural fact: the two topologies never share a slot.
  const auto* ra = cluster->coordination().get(tt_id);
  const auto* rb = cluster->coordination().get(wc_id);
  std::set<sched::SlotIndex> slots_a;
  for (const auto& [task, slot] : ra->placement) slots_a.insert(slot);
  for (const auto& [task, slot] : rb->placement) {
    if (slots_a.contains(slot)) r.exclusive = false;
  }
  return r;
}

}  // namespace

int main() {
  std::cout << "Multi-topology co-scheduling — Throughput Test + Word "
               "Count on one 10-node cluster\n\n";
  for (bool tstorm : {false, true}) {
    const auto r = run(tstorm);
    std::cout << "  " << std::setw(8) << std::left << r.label << std::right
              << " mixed avg [500,1000) " << std::setw(8)
              << metrics::format_ms(r.tt_ms) << " ms   nodes " << r.nodes
              << "   slot exclusivity "
              << (r.exclusive ? "holds" : "VIOLATED") << "\n";
  }
  std::cout << "\nT-Storm's generator reschedules both topologies in one "
               "run (one SchedulerInput with M=2), never co-locating two "
               "topologies in a slot while consolidating nodes.\n";
  return 0;
}
