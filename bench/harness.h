// Shared bench harness: runs one (system, topology, parameters) experiment
// for the paper's standard 1000 s (Table II), sampling average processing
// time in 1-minute windows and worker-node usage every 10 s, and prints the
// same series the paper's figures plot.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/system.h"
#include "metrics/completion.h"
#include "metrics/timeseries.h"
#include "runtime/config.h"
#include "sched/types.h"
#include "sim/simulation.h"
#include "topo/topology.h"

namespace tstorm::bench {

struct RunSpec {
  std::string label;

  /// false: stock Storm (default scheduler). true: full T-Storm stack.
  bool tstorm = false;

  double duration = 1000.0;  // Table II running time
  runtime::ClusterConfig cluster;
  core::CoreConfig core;  // used when tstorm == true

  /// Pin the initial placement (section III experiments, overload
  /// experiments that confine a topology to one worker).
  std::optional<sched::Placement> pin;

  /// Builds the topology; drivers (queue producers etc.) whose lifetime
  /// must span the run go into `keepalive`.
  std::function<topo::Topology(sim::Simulation& sim,
                               std::vector<std::shared_ptr<void>>& keepalive)>
      make_topology;

  /// Optional hook invoked after submission (e.g. schedule a second input
  /// stream at a given time).
  std::function<void(sim::Simulation& sim, runtime::Cluster& cluster)>
      after_submit;
};

struct RunResult {
  std::string label;
  metrics::WindowedSeries proc_ms{60.0};
  metrics::WindowedCounter failures{60.0};
  /// (time, nodes-in-use) sampled every 10 s.
  std::vector<std::pair<double, int>> nodes;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t replayed = 0;
  /// Operational-cost metrics (EnergyMeter): node-on seconds and energy.
  double node_seconds = 0;
  double kwh = 0;
  /// Latency percentiles over the whole run (ms).
  double p50_ms = 0;
  double p99_ms = 0;

  /// Mean processing time over [from, to) ms; NaN if no observations.
  [[nodiscard]] double mean_ms(double from, double to) const;

  /// Node count at the end of the run.
  [[nodiscard]] int final_nodes() const;

  /// Maximum node count observed (overload-handling scale-out).
  [[nodiscard]] int max_nodes() const;
};

/// Executes one experiment run.
RunResult run(const RunSpec& spec);

/// Prints the per-minute proc-time table for several runs side by side,
/// then a node-usage summary and stabilized means.
void print_comparison(const std::string& title,
                      const std::vector<RunResult>& runs,
                      double stabilized_from, double duration);

/// Prints one run's failure counts per minute (Fig. 3(b) style).
void print_failures(const RunResult& r, double duration);

/// Prints the node-usage timeline of a run (the "#Nodes=..." annotations).
void print_node_timeline(const RunResult& r);

/// Speedup of b over a in percent (positive = b faster).
double speedup_pct(double a_ms, double b_ms);

}  // namespace tstorm::bench
