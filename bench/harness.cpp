#include "harness.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>

#include "core/energy_meter.h"
#include "metrics/reporter.h"
#include "sched/manual.h"

namespace tstorm::bench {

double RunResult::mean_ms(double from, double to) const {
  const auto m = proc_ms.mean_between(from, to);
  return m.has_value() ? *m : std::nan("");
}

int RunResult::final_nodes() const {
  return nodes.empty() ? 0 : nodes.back().second;
}

int RunResult::max_nodes() const {
  int best = 0;
  for (const auto& [t, n] : nodes) best = std::max(best, n);
  return best;
}

RunResult run(const RunSpec& spec) {
  sim::Simulation sim;
  RunResult result;
  result.label = spec.label;

  std::vector<std::shared_ptr<void>> keepalive;
  std::unique_ptr<core::StormSystem> storm;
  std::unique_ptr<core::TStormSystem> tstorm;
  runtime::Cluster* cluster = nullptr;

  if (spec.tstorm) {
    tstorm = std::make_unique<core::TStormSystem>(sim, spec.cluster,
                                                  spec.core);
    cluster = &tstorm->cluster();
  } else {
    storm = std::make_unique<core::StormSystem>(sim, spec.cluster);
    cluster = &storm->cluster();
  }

  auto topology = spec.make_topology(sim, keepalive);
  if (spec.pin.has_value()) {
    if (spec.tstorm) {
      tstorm->submit_pinned(std::move(topology), *spec.pin);
    } else {
      storm->submit_pinned(std::move(topology), *spec.pin);
    }
  } else {
    if (spec.tstorm) {
      tstorm->submit(std::move(topology));
    } else {
      storm->submit(std::move(topology));
    }
  }
  if (spec.after_submit) spec.after_submit(sim, *cluster);

  // Node-usage sampler (10 s).
  sim::PeriodicTask sampler(sim, 10.0, [&] {
    result.nodes.emplace_back(sim.now(), cluster->nodes_in_use());
  });
  sampler.start(10.0);

  // Operational-cost metering (the consolidation motivation).
  core::EnergyMeter energy(*cluster);
  energy.start();

  sim.run_until(spec.duration);
  result.node_seconds = energy.node_seconds();
  result.kwh = energy.kwh();

  const auto& rec = cluster->completion();
  result.proc_ms = rec.proc_time_ms();
  result.failures = rec.failures();
  result.p50_ms = rec.latency_histogram().percentile(50);
  result.p99_ms = rec.latency_histogram().percentile(99);
  result.completed = rec.total_completed();
  result.failed = rec.total_failed();
  result.dropped = cluster->dropped_messages();
  result.replayed = rec.total_replayed();

  // Optional CSV artifact per run: set TSTORM_BENCH_CSV to a directory.
  if (const char* dir = std::getenv("TSTORM_BENCH_CSV"); dir != nullptr) {
    std::string name = spec.label;
    for (auto& ch : name) {
      if (ch == ' ' || ch == '/' || ch == '=') ch = '_';
    }
    std::ofstream csv(std::string(dir) + "/" + name + ".csv");
    if (csv) {
      metrics::write_series_csv(csv, {{"avg_proc_ms", &result.proc_ms}},
                                spec.duration);
    }
  }
  return result;
}

double speedup_pct(double a_ms, double b_ms) {
  if (!(a_ms > 0) || std::isnan(b_ms)) return std::nan("");
  return 100.0 * (1.0 - b_ms / a_ms);
}

void print_comparison(const std::string& title,
                      const std::vector<RunResult>& runs,
                      double stabilized_from, double duration) {
  std::cout << "\n== " << title << " ==\n";
  std::cout << "Avg. tuple processing time (ms) per 1-minute window:\n";
  std::vector<metrics::SeriesColumn> cols;
  cols.reserve(runs.size());
  for (const auto& r : runs) cols.push_back({r.label, &r.proc_ms});
  metrics::print_series_table(std::cout, cols, duration);

  std::cout << "\nSummary (measurements after " << stabilized_from
            << " s):\n";
  const double base =
      runs.empty() ? std::nan("")
                   : runs.front().mean_ms(stabilized_from, duration);
  for (const auto& r : runs) {
    const double mean = r.mean_ms(stabilized_from, duration);
    std::cout << "  " << std::setw(24) << std::left << r.label
              << std::right << "avg " << std::setw(10)
              << metrics::format_ms(mean) << " ms"
              << "   nodes " << std::setw(2) << r.final_nodes()
              << "   energy " << std::setw(6)
              << metrics::format_ms(r.kwh, 2) << " kWh"
              << "   p99 " << std::setw(9)
              << metrics::format_ms(r.p99_ms) << " ms"
              << "   completed " << std::setw(9) << r.completed
              << "   failed " << std::setw(6) << r.failed;
    if (&r != &runs.front()) {
      std::cout << "   speedup vs " << runs.front().label << " "
                << metrics::format_ms(speedup_pct(base, mean), 1) << "%";
    }
    std::cout << "\n";
  }
}

void print_failures(const RunResult& r, double duration) {
  std::cout << "\nFailed tuples per 1-minute window (" << r.label << "):\n";
  std::cout << std::setw(10) << "time(s)" << std::setw(16) << "failed"
            << '\n';
  for (const auto& w : r.failures.windows()) {
    if (w.start + 60.0 > duration + 1e-9) break;
    std::cout << std::setw(10) << static_cast<long long>(w.start + 60.0)
              << std::setw(16) << w.count << '\n';
  }
}

void print_node_timeline(const RunResult& r) {
  std::cout << "\nWorker nodes in use over time (" << r.label << "):\n  ";
  int last = -1;
  bool first = true;
  for (const auto& [t, n] : r.nodes) {
    if (n != last) {
      if (!first) std::cout << ", ";
      std::cout << "t=" << static_cast<long long>(t) << "s #Nodes=" << n;
      last = n;
      first = false;
    }
  }
  std::cout << "\n";
}

}  // namespace tstorm::bench
