// Ablation: scheduling algorithms head to head inside the same T-Storm
// runtime (smooth reassignment, monitoring, 300 s generation):
//   round-robin     — Storm's default placement, regenerated online
//   aniello-offline — DEBS'13 topology-structure-only scheduler
//   aniello-online  — DEBS'13 traffic-based two-phase scheduler
//   traffic-aware   — the paper's Algorithm 1
// Run on Word Count, whose mixed shuffle + fields groupings give the
// traffic-aware algorithms real structure to exploit.
#include <iostream>

#include "harness.h"
#include "metrics/reporter.h"
#include "workload/external_queue.h"
#include "workload/topologies.h"

using namespace tstorm;

namespace {

bench::RunResult run_with(const std::string& algorithm) {
  bench::RunSpec spec;
  spec.label = algorithm;
  spec.tstorm = true;
  spec.core.algorithm = algorithm;
  spec.core.gamma = 1.7;
  spec.make_topology = [](sim::Simulation& sim,
                          std::vector<std::shared_ptr<void>>& keepalive) {
    auto wc = workload::make_word_count();
    auto producer =
        std::make_shared<workload::QueueProducer>(sim, *wc.queue, 260.0);
    producer->start();
    keepalive.push_back(wc.queue);
    keepalive.push_back(std::move(producer));
    return std::move(wc.topology);
  };
  return bench::run(spec);
}

}  // namespace

int main() {
  std::cout << "Ablation — scheduling algorithm comparison on Word Count "
               "(T-Storm runtime, gamma=1.7)\n";

  std::vector<bench::RunResult> runs;
  for (const char* name : {"round-robin", "aniello-offline",
                           "aniello-online", "traffic-aware",
                           "local-search"}) {
    runs.push_back(run_with(name));
  }
  bench::print_comparison("Algorithm comparison", runs,
                          /*stabilized_from=*/500.0, /*duration=*/1000.0);
  std::cout << "\nNote: all four run inside T-Storm's runtime (one worker "
               "per node initially, smooth reassignment), so this isolates "
               "the placement algorithm itself. The paper's Storm baseline "
               "additionally suffers the 40-worker crowding shown in "
               "fig05/fig06.\n";
  return 0;
}
