// Scheduling-cost microbenchmarks (google-benchmark).
//
// Section IV-C claims Algorithm 1 runs in O(Ne log Ne + Ne * Ns). These
// benchmarks sweep executor count Ne and slot count Ns to verify the
// scaling empirically, and compare against the baseline schedulers.
#include <benchmark/benchmark.h>

#include "sched/aniello.h"
#include "sched/round_robin.h"
#include "sched/traffic_aware.h"
#include "sim/rng.h"

using namespace tstorm;

namespace {

sched::SchedulerInput make_input(int executors, int nodes,
                                 int slots_per_node) {
  sched::SchedulerInput in;
  for (int n = 0; n < nodes; ++n) {
    for (int p = 0; p < slots_per_node; ++p) {
      in.slots.push_back({n * slots_per_node + p, n, p});
    }
    in.nodes.push_back({n, {8000.0 * 0.85}});
  }
  in.topologies.push_back({0, nodes * slots_per_node});
  sim::Rng rng(1234);
  for (int i = 0; i < executors; ++i) {
    in.executors.push_back({i, 0, {rng.uniform(5.0, 60.0)}});
  }
  // Sparse random traffic, ~4 edges per executor (chain-ish topologies).
  for (int i = 0; i < executors * 4; ++i) {
    const auto a = static_cast<sched::TaskId>(
        rng.uniform_int(0, executors - 1));
    const auto b = static_cast<sched::TaskId>(
        rng.uniform_int(0, executors - 1));
    if (a != b) in.traffic.push_back({a, b, rng.uniform(1.0, 200.0)});
    in.topology_edges.emplace_back(a, b);
  }
  in.gamma = 2.0;
  return in;
}

void BM_TrafficAware(benchmark::State& state) {
  const auto in = make_input(static_cast<int>(state.range(0)),
                             static_cast<int>(state.range(1)), 4);
  sched::TrafficAwareScheduler alg;
  for (auto _ : state) {
    auto r = alg.schedule(in);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}

void BM_RoundRobin(benchmark::State& state) {
  const auto in = make_input(static_cast<int>(state.range(0)),
                             static_cast<int>(state.range(1)), 4);
  sched::RoundRobinScheduler alg;
  for (auto _ : state) {
    auto r = alg.schedule(in);
    benchmark::DoNotOptimize(r);
  }
}

void BM_AnielloOnline(benchmark::State& state) {
  const auto in = make_input(static_cast<int>(state.range(0)),
                             static_cast<int>(state.range(1)), 4);
  sched::AnielloOnlineScheduler alg;
  for (auto _ : state) {
    auto r = alg.schedule(in);
    benchmark::DoNotOptimize(r);
  }
}

}  // namespace

// Ne sweep at fixed cluster size (10 nodes / 40 slots).
BENCHMARK(BM_TrafficAware)
    ->Args({45, 10})
    ->Args({90, 10})
    ->Args({180, 10})
    ->Args({360, 10})
    ->Args({720, 10})
    ->Complexity(benchmark::oNLogN);

// Ns sweep at fixed executor count.
BENCHMARK(BM_TrafficAware)
    ->Args({200, 5})
    ->Args({200, 10})
    ->Args({200, 20})
    ->Args({200, 40})
    ->Args({200, 80});

BENCHMARK(BM_RoundRobin)->Args({45, 10})->Args({360, 10})->Args({720, 10});
BENCHMARK(BM_AnielloOnline)->Args({45, 10})->Args({360, 10});

BENCHMARK_MAIN();
