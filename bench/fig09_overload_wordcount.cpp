// Figure 9: overload handling on the Word Count topology.
//
// The topology initially uses one worker on one node. A second concurrent
// input stream doubles the line rate; the load monitors see the node
// saturate, the schedule generator reacts immediately (not waiting out the
// 300 s period), and T-Storm scales out to more nodes — processing time
// drops sharply back to normal. Paper: detection at ~120 s, scale-out
// 1 -> 5 nodes.
#include <iostream>

#include "harness.h"
#include "metrics/reporter.h"
#include "workload/external_queue.h"
#include "workload/topologies.h"

using namespace tstorm;

int main() {
  std::cout << "Figure 9 — overload handling, Word Count pinned to one "
               "worker on one node; second input stream from t=60 s\n";

  constexpr double kLineRate = 200.0;

  bench::RunSpec spec;
  spec.label = "T-Storm";
  spec.tstorm = true;
  spec.core.gamma = 2.0;
  // Pin everything (2+5+5+5 tasks + 10 ackers = 27) to node 0, slot 0.
  sched::Placement pin;
  for (int t = 0; t < 27; ++t) pin[t] = 0;
  spec.pin = std::move(pin);
  spec.make_topology = [&](sim::Simulation& sim,
                           std::vector<std::shared_ptr<void>>& keepalive) {
    workload::WordCountOptions opt;
    opt.max_pending = 0;     // no spout backpressure, as in the paper's run
    opt.emit_interval = 0.004;  // reader pull cap ~500 lines/s total
    auto wc = workload::make_word_count(opt);
    auto stream1 = std::make_shared<workload::QueueProducer>(
        sim, *wc.queue, kLineRate);
    stream1->start();
    auto stream2 = std::make_shared<workload::QueueProducer>(
        sim, *wc.queue, kLineRate);
    stream2->start(60.0);  // the second concurrent stream
    keepalive.push_back(wc.queue);
    keepalive.push_back(std::move(stream1));
    keepalive.push_back(std::move(stream2));
    return std::move(wc.topology);
  };

  const auto r = bench::run(spec);
  bench::print_comparison("Fig. 9: avg processing time (log-scale y in the "
                          "paper; raw ms here)",
                          {r}, 600.0, 1000.0);
  bench::print_node_timeline(r);
  bench::print_failures(r, 1000.0);

  const double during = r.mean_ms(120, 240);
  const double after = r.mean_ms(600, 1000);
  std::cout << "\nOverload " << metrics::format_ms(during)
            << " ms -> recovered " << metrics::format_ms(after)
            << " ms; scale-out to " << r.max_nodes()
            << " nodes (paper: 1 -> 5 nodes, sharp drop)\n";
  return 0;
}
