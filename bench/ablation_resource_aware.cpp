// Ablation: resource-aware placement on a heterogeneous fleet. The
// cluster mixes big, standard and small nodes (CPU / memory / NIC all
// differ), described compactly via ClusterConfig::node_groups. Four online
// schedulers run head to head inside the same T-Storm runtime:
//
//   round-robin    — Storm's default deal, resource- and traffic-blind
//   aniello-online — DEBS'13 traffic-based two-phase scheduler
//   traffic-aware  — the paper's Algorithm 1 (CPU capacity + traffic)
//   rstorm         — R-Storm-style distance placement over the full
//                    resource vector (CPU soft, memory hard, NIC soft)
//
// Each run measures throughput (completed tuples), stabilized mean /
// p50 / p99 processing time, and the estimated inter-node traffic of the
// final published placement (tuples/s crossing node boundaries, the
// paper's objective function). Emits BENCH_resource.json and self-checks
// that rstorm beats round-robin on BOTH inter-node traffic and
// throughput — the claim the resource-vector API exists to support.
#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/system.h"
#include "metrics/completion.h"
#include "runtime/cluster.h"
#include "sched/types.h"
#include "sim/simulation.h"
#include "workload/external_queue.h"
#include "workload/topologies.h"

namespace {

using Clock = std::chrono::steady_clock;
namespace rt = tstorm::runtime;

struct AlgoResult {
  std::string algorithm;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  double mean_ms = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double internode_traffic = 0;  // tuples/s, final placement
  double wall_s = 0;
};

rt::ClusterConfig heterogeneous_fleet() {
  rt::ClusterConfig cfg;
  // 2 big + 4 standard + 4 small: the small nodes cannot absorb a full
  // share of the word-count load (CPU) and have a tenth of the NIC, so a
  // resource-blind spread pays for it while a resource-aware packer
  // concentrates work on the capable nodes.
  cfg.node_groups = {
      {2, {.slots = 4, .cores = 8, .per_core_mhz = 2500.0,
           .memory_mib = 32768.0, .network_mbps = 10000.0}},
      {4, {.slots = 4, .cores = 4, .per_core_mhz = 2000.0,
           .memory_mib = 16384.0, .network_mbps = 1000.0}},
      {4, {.slots = 2, .cores = 1, .per_core_mhz = 700.0,
           .memory_mib = 1024.0, .network_mbps = 100.0}},
  };
  cfg.seed = 7;
  cfg.smooth_reassignment = true;
  return cfg;
}

AlgoResult run_with(const std::string& algorithm, double duration) {
  tstorm::sim::Simulation sim;
  tstorm::core::CoreConfig core;
  core.algorithm = algorithm;
  core.generation_period = 60.0;
  core.gamma = 1.7;
  // Backlog feedback: measured MHz saturates at node capacity, so a
  // packed node looks like it still "fits". Folding queue depth into the
  // effective demand (satellite of the resource-vector API) lets every
  // capacity-aware scheduler see the overload and spread on the next pass.
  core.queue_pressure_weight = 25.0;
  tstorm::core::TStormSystem sys(sim, heterogeneous_fleet(), core);

  auto wc = tstorm::workload::make_word_count();
  tstorm::workload::QueueProducer producer(sim, *wc.queue, 260.0);
  producer.start();
  sys.submit(std::move(wc.topology));

  const auto t0 = Clock::now();
  sim.run_until(duration);

  AlgoResult r;
  r.algorithm = algorithm;
  const auto& rec = sys.cluster().completion();
  r.completed = rec.total_completed();
  r.failed = rec.total_failed();
  const auto mean =
      rec.proc_time_ms().mean_between(duration / 2.0, duration);
  r.mean_ms = mean.value_or(0.0);
  r.p50_ms = rec.latency_histogram().percentile(50);
  r.p99_ms = rec.latency_histogram().percentile(99);

  // Estimated inter-node traffic of the placement actually in force at the
  // end of the run, using the same measured-traffic input the generator
  // schedules from (the paper's objective).
  const auto input = sys.generator().build_input();
  tstorm::sched::Placement current;
  for (const auto& [topo, record] : sys.cluster().coordination().all()) {
    for (const auto& [task, slot] : record.placement) {
      current.emplace(task, slot);
    }
  }
  r.internode_traffic = tstorm::sched::internode_traffic(input, current);
  r.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  return r;
}

void write_json(const std::string& path, const std::string& label,
                const std::vector<AlgoResult>& runs, double duration) {
  std::ofstream out(path);
  out << "{\n";
  out << "  \"bench\": \"ablation_resource_aware\",\n";
  out << "  \"label\": \"" << label << "\",\n";
  const std::time_t now = std::time(nullptr);
  char stamp[64];
  std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ",
                std::gmtime(&now));
  out << "  \"timestamp\": \"" << stamp << "\",\n";
  out << "  \"duration_s\": " << duration << ",\n";
  out << "  \"fleet\": \"2x(8c@2500,32GiB,10G) + 4x(4c@2000,16GiB,1G) + "
         "4x(1c@700,1GiB,100M)\",\n";
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    out << "    {\n";
    out << "      \"algorithm\": \"" << r.algorithm << "\",\n";
    out << "      \"completed\": " << r.completed << ",\n";
    out << "      \"failed\": " << r.failed << ",\n";
    out << "      \"mean_ms\": " << r.mean_ms << ",\n";
    out << "      \"p50_ms\": " << r.p50_ms << ",\n";
    out << "      \"p99_ms\": " << r.p99_ms << ",\n";
    out << "      \"internode_traffic\": " << r.internode_traffic << ",\n";
    out << "      \"wall_s\": " << r.wall_s << "\n";
    out << "    }" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_resource.json";
  std::string label = "current";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--label" && i + 1 < argc) {
      label = argv[++i];
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::cerr << "usage: ablation_resource_aware [--out FILE] "
                   "[--label NAME] [--quick]\n";
      return 2;
    }
  }

  const double duration = quick ? 300.0 : 600.0;
  std::cout << "Ablation — resource-aware placement on a heterogeneous "
               "fleet (" << (quick ? "quick" : "full") << ", " << duration
            << " sim-s, word count @ 260 tuples/s)\n";

  std::vector<AlgoResult> runs;
  for (const char* name :
       {"round-robin", "aniello-online", "traffic-aware", "rstorm"}) {
    runs.push_back(run_with(name, duration));
    const auto& r = runs.back();
    std::printf(
        "  %-14s completed %8llu  failed %6llu  mean %8.3f ms  "
        "p99 %9.3f ms  inter-node %8.1f tup/s  (%.1f s wall)\n",
        r.algorithm.c_str(), static_cast<unsigned long long>(r.completed),
        static_cast<unsigned long long>(r.failed), r.mean_ms, r.p99_ms,
        r.internode_traffic, r.wall_s);
  }

  write_json(out_path, label, runs, duration);
  std::cout << "wrote " << out_path << "\n";

  // Self-check: the resource-aware scheduler must justify itself against
  // the resource-blind baseline on this fleet — strictly less estimated
  // inter-node traffic AND strictly more completed tuples.
  const AlgoResult& rr = runs[0];
  const AlgoResult& rs = runs[3];
  if (!(rs.internode_traffic < rr.internode_traffic) ||
      !(rs.completed > rr.completed)) {
    std::cerr << "FAIL: rstorm does not beat round-robin (traffic "
              << rs.internode_traffic << " vs " << rr.internode_traffic
              << ", completed " << rs.completed << " vs " << rr.completed
              << ")\n";
    return 1;
  }
  return 0;
}
