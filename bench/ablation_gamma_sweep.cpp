// Ablation: the consolidation factor gamma (section IV-C). Sweeps gamma
// for a light topology (Throughput Test) and a work-intensive one (Word
// Count) and reports nodes used vs processing time — the consolidation /
// performance tradeoff the paper discusses ("the consolidation factor
// should not be greedily set to a large value" for heavy bolts).
#include <iomanip>
#include <iostream>

#include "harness.h"
#include "metrics/reporter.h"
#include "workload/external_queue.h"
#include "workload/topologies.h"

using namespace tstorm;

namespace {

bench::RunResult run_tt(double gamma) {
  bench::RunSpec spec;
  spec.label = "g=" + metrics::format_ms(gamma, 1);
  spec.tstorm = true;
  spec.core.gamma = gamma;
  spec.make_topology = [](sim::Simulation&,
                          std::vector<std::shared_ptr<void>>&) {
    return workload::make_throughput_test();
  };
  return bench::run(spec);
}

bench::RunResult run_wc(double gamma) {
  bench::RunSpec spec;
  spec.label = "g=" + metrics::format_ms(gamma, 1);
  spec.tstorm = true;
  spec.core.gamma = gamma;
  spec.make_topology = [](sim::Simulation& sim,
                          std::vector<std::shared_ptr<void>>& keepalive) {
    auto wc = workload::make_word_count();
    auto producer =
        std::make_shared<workload::QueueProducer>(sim, *wc.queue, 260.0);
    producer->start();
    keepalive.push_back(wc.queue);
    keepalive.push_back(std::move(producer));
    return std::move(wc.topology);
  };
  return bench::run(spec);
}

void sweep(const char* title, bench::RunResult (*runner)(double)) {
  std::cout << "\n== " << title << " ==\n"
            << "   gamma     nodes   avg proc (ms) [500,1000)\n";
  for (double gamma : {1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0}) {
    const auto r = runner(gamma);
    std::cout << "   " << std::setw(5) << gamma << "   " << std::setw(6)
              << r.final_nodes() << "   " << std::setw(12)
              << metrics::format_ms(r.mean_ms(500, 1000)) << "\n";
  }
}

}  // namespace

int main() {
  std::cout << "Ablation — consolidation factor sweep\n";
  sweep("Throughput Test (light bolts: consolidates far without penalty)",
        &run_tt);
  sweep("Word Count (work-intensive bolts: consolidation costs latency)",
        &run_wc);
  return 0;
}
