// Ablation: input skew vs fields grouping. Fields grouping routes equal
// keys to the same task, so a Zipf-skewed key distribution concentrates
// load on one counter executor regardless of scheduling — a bottleneck no
// placement algorithm can fix (only repartitioning could). Sweeps the
// Zipf exponent of the Word Count vocabulary and reports the latency and
// failure cliff when the hottest task saturates.
#include <iomanip>
#include <iostream>

#include "harness.h"
#include "metrics/reporter.h"
#include "workload/external_queue.h"
#include "workload/topologies.h"

using namespace tstorm;

namespace {

bench::RunResult run_skew(double zipf_exponent) {
  bench::RunSpec spec;
  spec.label = "zipf=" + metrics::format_ms(zipf_exponent, 2);
  spec.tstorm = true;
  spec.core.gamma = 1.0;
  spec.duration = 600.0;
  spec.make_topology = [zipf_exponent](
                           sim::Simulation& sim,
                           std::vector<std::shared_ptr<void>>& keepalive) {
    workload::WordCountOptions opt;
    opt.text.zipf_exponent = zipf_exponent;
    auto wc = workload::make_word_count(opt);
    auto producer =
        std::make_shared<workload::QueueProducer>(sim, *wc.queue, 400.0);
    producer->start();
    keepalive.push_back(wc.queue);
    keepalive.push_back(std::move(producer));
    return std::move(wc.topology);
  };
  return bench::run(spec);
}

}  // namespace

int main() {
  std::cout << "Ablation — key skew vs fields grouping (Word Count, 400 "
               "lines/s, T-Storm gamma=1)\n"
            << "The hottest word's share grows with the Zipf exponent; all "
               "of it lands on one counter task.\n\n"
            << "    zipf       avg[300,600) ms     p99 ms      failed\n";
  for (double z : {1.01, 1.1, 1.2, 1.3, 1.5}) {
    const auto r = run_skew(z);
    std::cout << "    " << std::setw(4) << z << "   " << std::setw(14)
              << metrics::format_ms(r.mean_ms(300, 600)) << "   "
              << std::setw(11) << metrics::format_ms(r.p99_ms) << "   "
              << std::setw(9) << r.failed << "\n";
  }
  std::cout << "\nExpectation: latency is flat while the hot counter task "
               "keeps up, then rises sharply (and tuples eventually time "
               "out) once its single-thread capacity is exceeded — a "
               "repartitioning problem, not a placement problem.\n";
  return 0;
}
