// Figure 8: performance on the Log Stream Processing topology (Fig. 7).
//
// 10 worker nodes, 20 workers requested, 5 log spouts / 5 rules / 5
// indexer / 5 counter / 2+2 mongo executors. Input: IIS-style log lines
// pushed into a Redis-like queue by a LogStash-like producer. Storm vs
// T-Storm with gamma = 1, 1.7 and 2. Paper: 54 % / 27 % / ~0 % speedups
// using 10 / 7 / 5 nodes — the most work-intensive bolts of the three
// workloads, so consolidation saturates earliest.
#include <iostream>

#include "harness.h"
#include "workload/external_queue.h"
#include "workload/topologies.h"

using namespace tstorm;

namespace {

constexpr double kLineRate = 400.0;  // log lines/second

bench::RunSpec ls_spec(const std::string& label, bool tstorm, double gamma) {
  bench::RunSpec spec;
  spec.label = label;
  spec.tstorm = tstorm;
  spec.core.gamma = gamma;
  spec.make_topology = [](sim::Simulation& sim,
                          std::vector<std::shared_ptr<void>>& keepalive) {
    auto ls = workload::make_log_stream();
    auto producer = std::make_shared<workload::QueueProducer>(
        sim, *ls.queue, kLineRate);
    producer->start();
    keepalive.push_back(ls.queue);
    keepalive.push_back(std::move(producer));
    return std::move(ls.topology);
  };
  return spec;
}

}  // namespace

int main() {
  std::cout << "Figure 8 — Log Stream Processing topology (10 nodes, 20 "
               "workers requested, 5+5+5+5+2+2 executors), input "
            << kLineRate << " lines/s\n";

  const auto storm = bench::run(ls_spec("Storm", false, 1.0));
  const auto g1 = bench::run(ls_spec("T-Storm g=1", true, 1.0));
  const auto g17 = bench::run(ls_spec("T-Storm g=1.7", true, 1.7));
  const auto g2 = bench::run(ls_spec("T-Storm g=2", true, 2.0));

  bench::print_comparison("Fig. 8(a): gamma = 1 (paper: 54% speedup, 10 nodes)",
                          {storm, g1}, 150.0, 1000.0);
  bench::print_node_timeline(g1);

  bench::print_comparison(
      "Fig. 8(b): gamma = 1.7 (paper: 27% speedup, 7 nodes)", {storm, g17},
      500.0, 1000.0);
  bench::print_node_timeline(g17);

  bench::print_comparison(
      "Fig. 8(c): gamma = 2 (paper: comparable time, 5 nodes)", {storm, g2},
      500.0, 1000.0);
  bench::print_node_timeline(g2);
  return 0;
}
