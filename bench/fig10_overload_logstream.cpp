// Figure 10: overload handling on the Log Stream Processing topology.
//
// As Fig. 9 but with the log-processing topology: pinned to one worker on
// one node, overloaded by a second concurrent log stream into the same
// Redis queue. Paper: detection at ~164 s, scale-out 1 -> 8 nodes, sharp
// drop in processing time.
#include <iostream>

#include "harness.h"
#include "metrics/reporter.h"
#include "workload/external_queue.h"
#include "workload/topologies.h"

using namespace tstorm;

int main() {
  std::cout << "Figure 10 — overload handling, Log Stream Processing "
               "pinned to one worker on one node; second stream from "
               "t=60 s\n";

  constexpr double kLineRate = 250.0;

  bench::RunSpec spec;
  spec.label = "T-Storm";
  spec.tstorm = true;
  spec.core.gamma = 1.3;
  // 5+5+5+5+2+2 tasks + 10 ackers = 34; pin all to node 0, slot 0.
  sched::Placement pin;
  for (int t = 0; t < 34; ++t) pin[t] = 0;
  spec.pin = std::move(pin);
  spec.make_topology = [&](sim::Simulation& sim,
                           std::vector<std::shared_ptr<void>>& keepalive) {
    workload::LogStreamOptions opt;
    opt.max_pending = 0;     // no spout backpressure, as in the paper's run
    opt.emit_interval = 0.008;  // pull cap ~625 lines/s total
    auto ls = workload::make_log_stream(opt);
    auto stream1 = std::make_shared<workload::QueueProducer>(
        sim, *ls.queue, kLineRate);
    stream1->start();
    auto stream2 = std::make_shared<workload::QueueProducer>(
        sim, *ls.queue, kLineRate);
    stream2->start(60.0);
    keepalive.push_back(ls.queue);
    keepalive.push_back(std::move(stream1));
    keepalive.push_back(std::move(stream2));
    return std::move(ls.topology);
  };

  const auto r = bench::run(spec);
  bench::print_comparison("Fig. 10: avg processing time (log-scale y in "
                          "the paper; raw ms here)",
                          {r}, 600.0, 1000.0);
  bench::print_node_timeline(r);
  bench::print_failures(r, 1000.0);

  const double during = r.mean_ms(120, 240);
  const double after = r.mean_ms(600, 1000);
  std::cout << "\nOverload " << metrics::format_ms(during)
            << " ms -> recovered " << metrics::format_ms(after)
            << " ms; scale-out to " << r.max_nodes()
            << " nodes (paper: 1 -> 8 nodes, sharp drop)\n";
  return 0;
}
