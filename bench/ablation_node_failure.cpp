// Extension bench: whole-node failure. Stock Storm's supervisors restart
// failed *workers*, but when an entire machine dies nobody moves its
// executors — the topology stays crippled until an operator intervenes.
// T-Storm's schedule generator sees assignments pointing at the dead node
// and republishes a repaired schedule within one monitoring period.
#include <iostream>

#include "harness.h"
#include "metrics/reporter.h"
#include "workload/topologies.h"

using namespace tstorm;

namespace {

bench::RunSpec spec_for(const std::string& label, bool tstorm) {
  bench::RunSpec spec;
  spec.label = label;
  spec.tstorm = tstorm;
  spec.core.gamma = 2.0;
  spec.duration = 600.0;
  spec.make_topology = [](sim::Simulation&,
                          std::vector<std::shared_ptr<void>>&) {
    return workload::make_throughput_test();
  };
  spec.after_submit = [](sim::Simulation& sim, runtime::Cluster& cluster) {
    // A machine dies at t=200 s. Node 0 always hosts executors by then.
    sim.schedule_at(200.0, [&cluster] { cluster.fail_node(0); });
  };
  return spec;
}

}  // namespace

int main() {
  std::cout << "Extension — whole-node failure at t=200 s (Throughput "
               "Test)\n";

  const auto storm = bench::run(spec_for("Storm", false));
  const auto tstorm = bench::run(spec_for("T-Storm", true));

  bench::print_comparison("Node-failure recovery", {storm, tstorm},
                          /*stabilized_from=*/300.0, /*duration=*/600.0);
  bench::print_node_timeline(storm);
  bench::print_node_timeline(tstorm);

  std::cout << "\nPost-failure damage ([200,600) s):\n";
  for (const auto* r : {&storm, &tstorm}) {
    std::cout << "  " << r->label << ": failed " << r->failed
              << " tuples, completed " << r->completed << ", mean "
              << metrics::format_ms(r->mean_ms(300, 600)) << " ms\n";
  }
  std::cout << "\nExpectation: Storm keeps failing the tuples routed to the "
               "dead node's executors forever; T-Storm reschedules around "
               "the dead machine within ~30 s and completions recover.\n";
  return 0;
}
