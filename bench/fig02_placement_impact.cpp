// Figure 2: impact of inter-process and inter-node traffic.
//
// The section III chain topology (1 spout, 4 bolts x 1 executor, 5 acker
// executors) under three pinned placements:
//   n1w1  — all executors in one worker on one node;
//   n5w5  — spread over 5 nodes, one worker per node (default-scheduler
//           style);
//   n5w10 — spread over 5 nodes, every executor in its own worker.
// Paper result: n1w1 < n5w5 (+35 %) < n5w10 (+67 %) after stabilization.
#include <iostream>

#include "harness.h"
#include "metrics/reporter.h"
#include "workload/topologies.h"

using namespace tstorm;

namespace {

bench::RunSpec chain_spec(const std::string& label,
                          sched::Placement placement) {
  bench::RunSpec spec;
  spec.label = label;
  spec.tstorm = false;
  spec.duration = 500.0;  // the figure's x-axis runs 100-500 s
  spec.pin = std::move(placement);
  spec.make_topology = [](sim::Simulation&,
                          std::vector<std::shared_ptr<void>>&) {
    return workload::make_chain();  // 1 spout, 4 bolts, 5 ackers
  };
  return spec;
}

}  // namespace

int main() {
  std::cout << "Figure 2 — impact of inter-process and inter-node traffic\n"
            << "Chain topology: 1 spout, 4 bolts (1 executor each), "
               "5 ackers; 10 KB tuples, 5 ms spout sleep.\n";

  // Task ids are deterministic: 0 = spout, 1-4 = bolts, 5-9 = ackers.
  const int kSlotsPerNode = 4;

  sched::Placement n1w1;
  for (int t = 0; t < 10; ++t) n1w1[t] = 0;

  sched::Placement n5w5;
  for (int t = 0; t < 10; ++t) n5w5[t] = (t % 5) * kSlotsPerNode;

  sched::Placement n5w10;
  for (int t = 0; t < 10; ++t) {
    n5w10[t] = (t % 5) * kSlotsPerNode + (t / 5);
  }

  std::vector<bench::RunResult> runs;
  runs.push_back(bench::run(chain_spec("n1w1", std::move(n1w1))));
  runs.push_back(bench::run(chain_spec("n5w5", std::move(n5w5))));
  runs.push_back(bench::run(chain_spec("n5w10", std::move(n5w10))));

  bench::print_comparison("Fig. 2: avg processing time by placement", runs,
                          /*stabilized_from=*/100.0, /*duration=*/500.0);

  const double base = runs[0].mean_ms(100, 500);
  std::cout << "\nRelative to n1w1: n5w5 +"
            << metrics::format_ms(100.0 * (runs[1].mean_ms(100, 500) / base -
                                           1.0),
                                  1)
            << "% (paper: +35%), n5w10 +"
            << metrics::format_ms(100.0 * (runs[2].mean_ms(100, 500) / base -
                                           1.0),
                                  1)
            << "% (paper: +67%)\n";
  return 0;
}
