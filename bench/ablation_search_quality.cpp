// Extension ablation: how much inter-node traffic does Algorithm 1's
// single-pass greedy leave on the table? Compares round-robin, Algorithm 1
// and the local-search refinement on synthetic scheduling inputs (pure
// algorithm comparison, no simulation), reporting inter-node traffic and
// nodes used.
#include <iomanip>
#include <iostream>

#include "metrics/reporter.h"
#include "sched/local_search.h"
#include "sched/round_robin.h"
#include "sched/traffic_aware.h"
#include "sim/rng.h"

using namespace tstorm;

namespace {

/// Pipelines of `stages` stages with `width` executors per stage and
/// stage-to-stage all-to-all traffic — the shape of real topologies.
sched::SchedulerInput pipeline_input(int nodes, int stages, int width,
                                     double gamma, std::uint64_t seed) {
  sched::SchedulerInput in;
  for (int n = 0; n < nodes; ++n) {
    for (int p = 0; p < 4; ++p) in.slots.push_back({n * 4 + p, n, p});
    in.nodes.push_back({n, {8000.0 * 0.85}});
  }
  sim::Rng rng(seed);
  const int total = stages * width;
  in.topologies.push_back({0, nodes});
  for (int i = 0; i < total; ++i) {
    in.executors.push_back({i, 0, {rng.uniform(10.0, 120.0)}});
  }
  for (int s = 0; s + 1 < stages; ++s) {
    for (int a = 0; a < width; ++a) {
      for (int b = 0; b < width; ++b) {
        in.traffic.push_back({s * width + a, (s + 1) * width + b,
                              rng.uniform(5.0, 50.0)});
      }
    }
  }
  in.gamma = gamma;
  return in;
}

void compare(const std::string& label, const sched::SchedulerInput& in) {
  sched::RoundRobinScheduler rr;
  sched::TrafficAwareScheduler greedy;
  sched::LocalSearchScheduler search;

  double total = 0;
  for (const auto& t : in.traffic) total += t.rate;

  std::cout << "\n" << label << " (total traffic "
            << metrics::format_ms(total, 0) << "):\n";
  for (auto* alg : std::initializer_list<sched::ISchedulingAlgorithm*>{
           &rr, &greedy, &search}) {
    const auto r = alg->schedule(in);
    const double internode = sched::internode_traffic(in, r.assignment);
    std::cout << "  " << std::setw(14) << std::left << alg->name()
              << std::right << " internode " << std::setw(9)
              << metrics::format_ms(internode, 0) << " ("
              << metrics::format_ms(100.0 * internode / total, 1)
              << "% of total)   nodes "
              << sched::nodes_used(in, r.assignment) << "\n";
  }
}

}  // namespace

int main() {
  std::cout << "Extension — placement quality: greedy Algorithm 1 vs "
               "local-search refinement\n";
  compare("pipeline 3x5 on 10 nodes, gamma=1",
          pipeline_input(10, 3, 5, 1.0, 7));
  compare("pipeline 3x5 on 10 nodes, gamma=2",
          pipeline_input(10, 3, 5, 2.0, 7));
  compare("pipeline 4x10 on 10 nodes, gamma=1.7",
          pipeline_input(10, 4, 10, 1.7, 11));
  compare("pipeline 6x8 on 16 nodes, gamma=2",
          pipeline_input(16, 6, 8, 2.0, 13));
  std::cout << "\nLocal search never does worse than the greedy; the gap is "
               "the cost of Algorithm 1's single-pass heuristic.\n";
  return 0;
}
