// Recovery benchmark: time-to-consistent-state after losing a stateful
// worker. A word-count topology runs with checkpointing enabled; once the
// cluster is warm (several completed checkpoint rounds), the bench kills
// the worker hosting a stateful bolt task and measures the recovery
// timeline off the trace log:
//
//   time_to_restore_s     kill -> the replacement executor finishes
//                         rehydrating from the durable store
//                         (kStateRestored);
//   time_to_consistent_s  kill -> the first checkpoint round that
//                         completes after the restore — from that instant
//                         the keyed state is durably consistent again
//                         (every update up to the barrier is snapshotted
//                         and every ack released).
//
// Emits BENCH_recovery.json (timeline plus checkpoint gauges: snapshot
// bytes, round duration, interval adherence) so the robustness trajectory
// is tracked across commits, and self-checks that recovery actually
// happened within the configured budget.
#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <iostream>
#include <string>

#include "core/system.h"
#include "metrics/reporter.h"
#include "runtime/cluster.h"
#include "runtime/executor.h"
#include "sim/simulation.h"
#include "state/state_store.h"
#include "trace/trace.h"
#include "workload/external_queue.h"
#include "workload/topologies.h"

namespace {

namespace rt = tstorm::runtime;
using Clock = std::chrono::steady_clock;

struct Result {
  double kill_time = 0;
  double restore_time = -1;
  double consistent_time = -1;
  double time_to_restore_s = -1;
  double time_to_consistent_s = -1;
  std::uint64_t checkpoints_before_kill = 0;
  std::uint64_t checkpoints_total = 0;
  std::uint64_t restores = 0;
  std::uint64_t aborted = 0;
  std::uint64_t completed_tuples = 0;
  std::uint64_t snapshot_bytes = 0;
  double snapshot_duration_s = 0;
  double mean_interval_s = 0;
  double target_interval_s = 0;
  double wall_s = 0;
};

/// First event of `kind` strictly after `t`, or -1.
double first_after(rt::Cluster& cluster, tstorm::trace::EventKind kind,
                   double t) {
  for (const tstorm::trace::Event& e : cluster.trace_log().of_kind(kind)) {
    if (e.time > t) return e.time;
  }
  return -1;
}

Result run_once(double warmup, double budget) {
  tstorm::sim::Simulation sim;
  rt::ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.seed = 99;
  cfg.failure_detection = true;
  cfg.tuple_timeout = 10.0;
  cfg.replay_backoff_base = 0.5;
  cfg.node_timeout = 9.0;
  cfg.heartbeat_period = 2.0;
  cfg.monitor_period = 3.0;
  cfg.max_replays = 50;
  cfg.state.enabled = true;
  cfg.state.checkpoint_interval = 5.0;
  tstorm::core::StormSystem sys(sim, cfg);

  tstorm::workload::WordCountOptions opt;
  opt.spouts = 1;
  opt.splitters = 2;
  opt.counters = 2;
  opt.mongos = 1;
  opt.ackers = 2;
  opt.workers = 4;
  opt.text.vocabulary = 256;
  auto wc = tstorm::workload::make_word_count(opt);
  tstorm::workload::QueueProducer producer(sim, *wc.queue, 80.0);
  producer.start();
  sys.submit(std::move(wc.topology));
  auto& cluster = sys.cluster();

  const auto t0 = Clock::now();
  sim.run_until(warmup);

  Result r;
  r.checkpoints_before_kill = cluster.trace_log().count(
      tstorm::trace::EventKind::kCheckpointComplete);

  // Kill the worker hosting a stateful bolt task with accumulated state.
  rt::Executor* target = nullptr;
  for (rt::Executor* e : cluster.registered_executors()) {
    if (e->state_store() != nullptr && e->state_store()->size() > 0) {
      target = e;
      break;
    }
  }
  bool killed = false;
  if (target != nullptr) {
    for (int n = 0; n < cluster.num_nodes() && !killed; ++n) {
      for (int p = 0; p < cluster.slots_on_node(n) && !killed; ++p) {
        if (cluster.supervisor(n).worker_at(p) == &target->worker()) {
          killed = cluster.kill_worker(n, p);
        }
      }
    }
  }
  r.kill_time = sim.now();
  if (!killed) return r;  // self-check below reports the failure

  sim.run_until(warmup + budget);

  r.restore_time = first_after(
      cluster, tstorm::trace::EventKind::kStateRestored, r.kill_time);
  if (r.restore_time >= 0) {
    r.time_to_restore_s = r.restore_time - r.kill_time;
    r.consistent_time = first_after(
        cluster, tstorm::trace::EventKind::kCheckpointComplete,
        r.restore_time);
    if (r.consistent_time >= 0) {
      r.time_to_consistent_s = r.consistent_time - r.kill_time;
    }
  }
  r.checkpoints_total = cluster.trace_log().count(
      tstorm::trace::EventKind::kCheckpointComplete);
  r.restores =
      cluster.trace_log().count(tstorm::trace::EventKind::kStateRestored);
  r.aborted = cluster.trace_log().count(
      tstorm::trace::EventKind::kCheckpointAborted);
  r.completed_tuples = cluster.completion().total_completed();

  const auto rows = cluster.checkpoint_gauges();
  if (!rows.empty()) {
    r.snapshot_bytes = rows[0].last_bytes;
    r.snapshot_duration_s = rows[0].last_duration;
    r.mean_interval_s = rows[0].mean_interval;
    r.target_interval_s = rows[0].target_interval;
  }
  r.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  return r;
}

void write_json(const std::string& path, const std::string& label,
                const Result& r) {
  std::ofstream out(path);
  out << "{\n";
  out << "  \"bench\": \"recovery_bench\",\n";
  out << "  \"label\": \"" << label << "\",\n";
  const std::time_t now = std::time(nullptr);
  char stamp[64];
  std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ",
                std::gmtime(&now));
  out << "  \"timestamp\": \"" << stamp << "\",\n";
  out << "  \"results\": {\n";
  out << "    \"time_to_restore_s\": " << r.time_to_restore_s << ",\n";
  out << "    \"time_to_consistent_s\": " << r.time_to_consistent_s << ",\n";
  out << "    \"checkpoints_before_kill\": " << r.checkpoints_before_kill
      << ",\n";
  out << "    \"checkpoints_total\": " << r.checkpoints_total << ",\n";
  out << "    \"checkpoints_aborted\": " << r.aborted << ",\n";
  out << "    \"restores\": " << r.restores << ",\n";
  out << "    \"completed_tuples\": " << r.completed_tuples << ",\n";
  out << "    \"snapshot_bytes\": " << r.snapshot_bytes << ",\n";
  out << "    \"snapshot_duration_s\": " << r.snapshot_duration_s << ",\n";
  out << "    \"mean_checkpoint_interval_s\": " << r.mean_interval_s
      << ",\n";
  out << "    \"target_checkpoint_interval_s\": " << r.target_interval_s
      << ",\n";
  out << "    \"wall_s\": " << r.wall_s << "\n";
  out << "  }\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_recovery.json";
  std::string label = "current";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--label" && i + 1 < argc) {
      label = argv[++i];
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::cerr << "usage: recovery_bench [--out FILE] [--label NAME] "
                   "[--quick]\n";
      return 2;
    }
  }

  const double warmup = quick ? 30.0 : 120.0;
  const double budget = quick ? 60.0 : 120.0;
  const Result r = run_once(warmup, budget);

  std::cout << "recovery_bench (" << (quick ? "quick" : "full")
            << ", label=" << label << ")\n";
  std::printf(
      "  kill at %.1f sim-s  restore +%.3f s  consistent +%.3f s\n"
      "  checkpoints %llu before kill, %llu total (%llu aborted), "
      "%llu restores\n"
      "  last snapshot %llu B in %.4f s, mean interval %.2f s "
      "(target %.2f s)\n",
      r.kill_time, r.time_to_restore_s, r.time_to_consistent_s,
      static_cast<unsigned long long>(r.checkpoints_before_kill),
      static_cast<unsigned long long>(r.checkpoints_total),
      static_cast<unsigned long long>(r.aborted),
      static_cast<unsigned long long>(r.restores),
      static_cast<unsigned long long>(r.snapshot_bytes),
      r.snapshot_duration_s, r.mean_interval_s, r.target_interval_s);

  write_json(out_path, label, r);
  std::cout << "wrote " << out_path << "\n";

  // Self-check: the bench is meaningless unless the cluster checkpointed
  // before the kill, the replacement executor restored, and state became
  // durably consistent again within the budget.
  if (r.checkpoints_before_kill == 0 || r.time_to_restore_s < 0 ||
      r.time_to_consistent_s < 0) {
    std::cerr << "FAIL: recovery did not complete (checkpoints before kill "
              << r.checkpoints_before_kill << ", time_to_restore "
              << r.time_to_restore_s << ", time_to_consistent "
              << r.time_to_consistent_s << ")\n";
    return 1;
  }
  return 0;
}
