// Ablation: load/traffic estimation methods and the EWMA coefficient.
//
// Section IV-B uses EWMA with alpha = 0.5 and notes that other estimation
// or prediction methods can be plugged in. This bench compares:
//   - EWMA with alpha in {0.2, 0.5, 0.8} (smaller = more sensitive),
//   - a sliding-window mean,
//   - Holt double exponential smoothing (predicts one period ahead),
// on the Fig. 9 overload scenario, reporting how fast each detects the
// overload (first overload-triggered generation) and the damage done
// before recovery.
#include <iomanip>
#include <iostream>

#include "core/custom_scheduler.h"
#include "core/energy_meter.h"
#include "core/load_monitor.h"
#include "core/metrics_db.h"
#include "core/schedule_generator.h"
#include "core/system.h"
#include "metrics/reporter.h"
#include "sched/manual.h"
#include "workload/external_queue.h"
#include "workload/topologies.h"

using namespace tstorm;

namespace {

struct Outcome {
  std::string label;
  double detect_time = -1;  // first overload-triggered generation
  double overload_ms = 0;   // mean proc time during [60, detect)
  double recovered_ms = 0;  // mean proc time in the last 300 s
  std::uint64_t failed = 0;
  int final_nodes = 0;
};

Outcome run_scenario(const std::string& label, core::CoreConfig core) {
  sim::Simulation sim;
  runtime::ClusterConfig cluster_cfg;
  cluster_cfg.smooth_reassignment = true;
  runtime::Cluster cluster(sim, cluster_cfg);
  core.gamma = 2.0;

  core::MetricsDb db(core::make_estimator_factory(core));
  std::vector<std::unique_ptr<core::LoadMonitor>> monitors;
  for (int n = 0; n < cluster_cfg.num_nodes; ++n) {
    monitors.push_back(std::make_unique<core::LoadMonitor>(
        cluster, db, n, core.monitor_period));
    monitors.back()->start(core.monitor_period * (n + 1) /
                           (cluster_cfg.num_nodes + 1));
  }
  core::ScheduleGenerator generator(cluster, db, core);
  generator.start();
  core::CustomScheduler scheduler(cluster, db, core.fetch_period);
  scheduler.start();

  // Fig. 9 setup: Word Count pinned to one worker, second stream at 60 s.
  workload::WordCountOptions opt;
  opt.max_pending = 0;
  opt.emit_interval = 0.004;
  auto wc = workload::make_word_count(opt);
  workload::QueueProducer stream1(sim, *wc.queue, 200.0);
  workload::QueueProducer stream2(sim, *wc.queue, 200.0);
  stream1.start();
  stream2.start(60.0);
  sched::Placement pin;
  for (int t = 0; t < 27; ++t) pin[t] = 0;
  sched::ManualScheduler manual(std::move(pin));
  cluster.submit(std::move(wc.topology), &manual);

  Outcome out;
  out.label = label;
  sim::PeriodicTask watch(sim, 5.0, [&] {
    if (out.detect_time < 0 && generator.overload_triggers() > 0) {
      out.detect_time = sim.now();
    }
  });
  watch.start(5.0);

  sim.run_until(1000.0);
  const auto& proc = cluster.completion().proc_time_ms();
  out.overload_ms =
      proc.mean_between(60, out.detect_time > 0 ? out.detect_time : 1000)
          .value_or(0);
  out.recovered_ms = proc.mean_between(700, 1000).value_or(0);
  out.failed = cluster.completion().total_failed();
  out.final_nodes = cluster.nodes_in_use();
  return out;
}

void report(const Outcome& o) {
  std::cout << "  " << std::setw(22) << std::left << o.label << std::right
            << " detect " << std::setw(6)
            << (o.detect_time < 0 ? std::string("never")
                                  : metrics::format_ms(o.detect_time, 0))
            << " s   failed " << std::setw(7) << o.failed << "   recovered "
            << std::setw(9) << metrics::format_ms(o.recovered_ms) << " ms on "
            << o.final_nodes << " nodes\n";
}

}  // namespace

int main() {
  std::cout << "Ablation — estimation methods on the Fig. 9 overload "
               "scenario (overload begins at t=60 s)\n\n";

  for (double alpha : {0.2, 0.5, 0.8}) {
    core::CoreConfig core;
    core.estimator = "ewma";
    core.alpha = alpha;
    report(run_scenario("ewma alpha=" + metrics::format_ms(alpha, 1), core));
  }
  {
    core::CoreConfig core;
    core.estimator = "sliding-window";
    core.sliding_window = 5;
    report(run_scenario("sliding-window (5)", core));
  }
  {
    core::CoreConfig core;
    core.estimator = "holt";
    report(run_scenario("holt trend", core));
  }

  std::cout << "\nExpectation: smaller alpha reacts faster (the paper: "
               "\"the smaller the alpha, the more sensitive\"); the Holt "
               "trend estimator anticipates the ramp and detects earliest; "
               "large alpha detects late and accumulates more failures.\n";
  return 0;
}
