// Figure 5: performance on the Throughput Test topology.
//
// 10 worker nodes, 40 workers requested, 5 spout / 15 identity / 15
// counter / 10 acker executors; 10 KB tuples at 5 ms per spout emission.
// Storm (default scheduler) vs T-Storm with gamma = 1, 1.7 and 6.
// Paper result: Storm ~9.25 ms; T-Storm ~0.99 ms (83-84 % speedup) using
// 10, 7 and finally only 2 worker nodes.
#include <iostream>

#include "harness.h"
#include "workload/topologies.h"

using namespace tstorm;

namespace {

bench::RunSpec tt_spec(const std::string& label, bool tstorm, double gamma) {
  bench::RunSpec spec;
  spec.label = label;
  spec.tstorm = tstorm;
  spec.core.gamma = gamma;
  spec.make_topology = [](sim::Simulation&,
                          std::vector<std::shared_ptr<void>>&) {
    return workload::make_throughput_test();
  };
  return spec;
}

}  // namespace

int main() {
  std::cout << "Figure 5 — Throughput Test topology (10 nodes, 40 workers "
               "requested, 5+15+15 executors, 10 ackers)\n";

  const auto storm = bench::run(tt_spec("Storm", false, 1.0));
  const auto g1 = bench::run(tt_spec("T-Storm g=1", true, 1.0));
  const auto g17 = bench::run(tt_spec("T-Storm g=1.7", true, 1.7));
  const auto g6 = bench::run(tt_spec("T-Storm g=6", true, 6.0));

  bench::print_comparison("Fig. 5(a): gamma = 1 (paper: 83% speedup, 10 nodes)",
                          {storm, g1}, 200.0, 1000.0);
  bench::print_node_timeline(g1);

  bench::print_comparison(
      "Fig. 5(b): gamma = 1.7 (paper: 84% speedup, 7 nodes)", {storm, g17},
      500.0, 1000.0);
  bench::print_node_timeline(g17);

  bench::print_comparison(
      "Fig. 5(c): gamma = 6 (paper: similar speedup, 2 nodes)", {storm, g6},
      500.0, 1000.0);
  bench::print_node_timeline(g6);
  return 0;
}
