// Core event-engine benchmark: measures raw events/sec of the discrete-event
// simulator hot paths, independent of any scheduling logic. Four figures:
//
//   schedule_run    — steady-state schedule+execute cycle with a standing
//                     population of events and a 32-byte capture (the size
//                     class of a network-delivery closure).
//   schedule_cancel — schedule / O(1)-cancel / drain round-trips (the
//                     tuple-timeout pattern: most timeouts are cancelled).
//   periodic_tick   — PeriodicTask re-arm loop (daemon heartbeats).
//   wordcount_e2e   — full word-count topology end to end; reports
//                     simulated-seconds per wall-second.
//
// Emits BENCH_core.json so the perf trajectory is tracked across PRs; run
// via scripts/bench_smoke.sh. The binary overrides global operator new to
// count heap allocations: with --assert-zero-alloc it exits nonzero if the
// schedule_run steady state allocates at all (the allocation-free guarantee
// of sim::InlineFn + the slot-map queue).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include "core/system.h"
#include "sim/simulation.h"
#include "workload/external_queue.h"
#include "workload/topologies.h"

// ------------------------------------------------------------------------
// Global allocation counter. Relaxed atomics: the sim is single-threaded,
// the atomic only guards against surprise library threads.
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n != 0 ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  const std::size_t rounded = (n + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded != 0 ? rounded : a)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Figure {
  std::string name;
  std::uint64_t events = 0;
  double wall_s = 0;
  double events_per_sec = 0;
  double allocs_per_event = 0;
  // wordcount only:
  double sim_seconds = 0;
  double sim_s_per_wall_s = 0;
  std::uint64_t completed = 0;
};

// ---------------------------------------------------------------- figure 1
// Self-perpetuating event population: each event schedules one successor
// while spawn budget remains, so the queue depth stays ~kPopulation and the
// engine sits in its steady schedule/pop/execute cycle.
struct Payload {
  std::uint64_t a = 1, b = 2, c = 3;  // freight: 24 B + context pointer = 32 B
};

struct PumpCtx {
  tstorm::sim::Simulation* sim = nullptr;
  std::uint64_t executed = 0;
  std::uint64_t spawn_budget = 0;
  std::uint64_t sink = 0;
  std::uint64_t lcg = 0x9e3779b97f4a7c15ull;

  double step() {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return 1e-6 * (1.0 + static_cast<double>(lcg >> 60));
  }
};

void pump(PumpCtx* ctx, const Payload& p) {
  ++ctx->executed;
  ctx->sink += p.a ^ p.b ^ p.c;
  if (ctx->spawn_budget > 0) {
    --ctx->spawn_budget;
    Payload q = p;
    q.a += ctx->executed;
    ctx->sim->schedule_after(ctx->step(), [ctx, q] { pump(ctx, q); });
  }
}

Figure bench_schedule_run(std::uint64_t measured_events) {
  constexpr std::uint64_t kPopulation = 1024;
  tstorm::sim::Simulation sim;
  PumpCtx ctx;
  ctx.sim = &sim;

  auto seed = [&] {
    for (std::uint64_t i = 0; i < kPopulation; ++i) {
      Payload p;
      p.b = i;
      sim.schedule_after(ctx.step(), [c = &ctx, p] { pump(c, p); });
    }
  };

  // Warm-up: reach capacity steady state (slot map, heap, freelists).
  seed();
  ctx.spawn_budget = 4 * kPopulation;
  sim.run();

  seed();
  ctx.spawn_budget = measured_events;
  ctx.executed = 0;
  const std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = Clock::now();
  sim.run();
  const double wall = seconds_since(t0);
  const std::uint64_t allocs1 = g_allocs.load(std::memory_order_relaxed);

  Figure f;
  f.name = "schedule_run";
  f.events = ctx.executed;
  f.wall_s = wall;
  f.events_per_sec = static_cast<double>(ctx.executed) / wall;
  f.allocs_per_event = static_cast<double>(allocs1 - allocs0) /
                       static_cast<double>(ctx.executed);
  return f;
}

// ---------------------------------------------------------------- figure 2
// The tuple-timeout pattern: arm an event in the future, cancel it before
// it fires, let the engine reclaim the dead entry. One "event" here is one
// schedule+cancel+drain round trip.
Figure bench_schedule_cancel(std::uint64_t pairs) {
  constexpr std::uint64_t kBatch = 512;
  tstorm::sim::Simulation sim;
  std::vector<tstorm::sim::EventId> ids(kBatch);
  std::uint64_t sink = 0;

  auto round = [&] {
    for (std::uint64_t i = 0; i < kBatch; ++i) {
      const Payload p{i, i + 1, i + 2};
      ids[i] = sim.schedule_after(
          1e-3 + static_cast<double>(i) * 1e-6, [&sink, p] { sink += p.a; });
    }
    for (std::uint64_t i = 0; i < kBatch; ++i) sim.cancel(ids[i]);
    sim.run();  // drains the dead entries; executes nothing
  };

  const std::uint64_t rounds = (pairs + kBatch - 1) / kBatch;
  round();  // warm-up

  const std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = Clock::now();
  for (std::uint64_t r = 0; r < rounds; ++r) round();
  const double wall = seconds_since(t0);
  const std::uint64_t allocs1 = g_allocs.load(std::memory_order_relaxed);

  Figure f;
  f.name = "schedule_cancel";
  f.events = rounds * kBatch;
  f.wall_s = wall;
  f.events_per_sec = static_cast<double>(f.events) / wall;
  f.allocs_per_event =
      static_cast<double>(allocs1 - allocs0) / static_cast<double>(f.events);
  if (sink == 0xdead) std::cout << "";  // keep the sink alive
  return f;
}

// ---------------------------------------------------------------- figure 3
Figure bench_periodic_tick(std::uint64_t ticks) {
  tstorm::sim::Simulation sim;
  std::uint64_t count = 0;
  tstorm::sim::PeriodicTask task(sim, 1e-3, [&count] { ++count; });
  task.start(1e-3);
  sim.run_until(0.2);  // warm-up

  const std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = Clock::now();
  sim.run_until(sim.now() + static_cast<double>(ticks) * 1e-3);
  const double wall = seconds_since(t0);
  const std::uint64_t allocs1 = g_allocs.load(std::memory_order_relaxed);
  task.stop();

  Figure f;
  f.name = "periodic_tick";
  f.events = ticks;
  f.wall_s = wall;
  f.events_per_sec = static_cast<double>(ticks) / wall;
  f.allocs_per_event =
      static_cast<double>(allocs1 - allocs0) / static_cast<double>(ticks);
  return f;
}

// ---------------------------------------------------------------- figure 4
Figure bench_wordcount(double sim_duration) {
  namespace wl = tstorm::workload;
  tstorm::sim::Simulation sim;
  tstorm::core::StormSystem storm(sim);
  auto wc = wl::make_word_count();
  wl::QueueProducer producer(sim, *wc.queue, /*rate=*/260.0);
  producer.start();
  storm.submit(std::move(wc.topology));

  const std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = Clock::now();
  sim.run_until(sim_duration);
  const double wall = seconds_since(t0);
  const std::uint64_t allocs1 = g_allocs.load(std::memory_order_relaxed);

  Figure f;
  f.name = "wordcount_e2e";
  f.events = sim.events_executed();
  f.wall_s = wall;
  f.events_per_sec = static_cast<double>(f.events) / wall;
  f.allocs_per_event =
      static_cast<double>(allocs1 - allocs0) / static_cast<double>(f.events);
  f.sim_seconds = sim_duration;
  f.sim_s_per_wall_s = sim_duration / wall;
  f.completed = storm.cluster().completion().total_completed();
  return f;
}

// ---------------------------------------------------------------- figure 5
// Steady-state word count: a sustainable line rate and a vocabulary small
// enough that every word (and so every map entry, pool buffer and queue
// high-water mark) is seen during warm-up. After warm-up the entire tuple
// path — pooled tuples, intrusive refcounts, flat-map acker/tracker state,
// ring-buffer queues, reserved metrics — must perform ZERO heap
// allocations; --assert-zero-alloc gates on it.
Figure bench_wordcount_steady(double warmup_s, double measure_s) {
  namespace wl = tstorm::workload;
  tstorm::sim::Simulation sim;
  tstorm::core::StormSystem storm(sim);
  wl::WordCountOptions opt;
  opt.text.vocabulary = 512;  // tail words all appear during warm-up
  auto wc = wl::make_word_count(opt);
  wl::QueueProducer producer(sim, *wc.queue, /*rate=*/150.0);
  producer.start();
  storm.submit(std::move(wc.topology));
  // Metrics storage is pre-sized for the whole run: recording completions
  // is part of the steady state, growing their vectors is not.
  const double horizon = warmup_s + measure_s;
  storm.cluster().completion().reserve(
      static_cast<std::size_t>(200.0 * horizon), horizon);

  sim.run_until(warmup_s);
  const std::uint64_t events0 = sim.events_executed();
  const std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = Clock::now();
  sim.run_until(horizon);
  const double wall = seconds_since(t0);
  const std::uint64_t allocs1 = g_allocs.load(std::memory_order_relaxed);
  const std::uint64_t events = sim.events_executed() - events0;

  Figure f;
  f.name = "wordcount_steady";
  f.events = events;
  f.wall_s = wall;
  f.events_per_sec = static_cast<double>(events) / wall;
  f.allocs_per_event =
      static_cast<double>(allocs1 - allocs0) / static_cast<double>(events);
  f.sim_seconds = measure_s;
  f.sim_s_per_wall_s = measure_s / wall;
  f.completed = storm.cluster().completion().total_completed();
  return f;
}

// ------------------------------------------------------------------- main
void write_json(const std::string& path, const std::string& label,
                const std::vector<Figure>& figures) {
  std::ofstream out(path);
  out << "{\n";
  out << "  \"bench\": \"core_event_bench\",\n";
  out << "  \"label\": \"" << label << "\",\n";
  const std::time_t now = std::time(nullptr);
  char stamp[64];
  std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ",
                std::gmtime(&now));
  out << "  \"timestamp\": \"" << stamp << "\",\n";
  out << "  \"results\": {\n";
  for (std::size_t i = 0; i < figures.size(); ++i) {
    const Figure& f = figures[i];
    out << "    \"" << f.name << "\": {\"events\": " << f.events
        << ", \"wall_s\": " << f.wall_s
        << ", \"events_per_sec\": " << f.events_per_sec
        << ", \"allocs_per_event\": " << f.allocs_per_event;
    if (f.name == "wordcount_e2e" || f.name == "wordcount_steady") {
      out << ", \"sim_seconds\": " << f.sim_seconds
          << ", \"sim_s_per_wall_s\": " << f.sim_s_per_wall_s
          << ", \"completed\": " << f.completed;
    }
    out << "}" << (i + 1 < figures.size() ? "," : "") << "\n";
  }
  out << "  }\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_core.json";
  std::string label = "current";
  bool quick = false;
  bool assert_zero_alloc = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--label" && i + 1 < argc) {
      label = argv[++i];
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--assert-zero-alloc") {
      assert_zero_alloc = true;
    } else {
      std::cerr << "usage: core_event_bench [--out FILE] [--label NAME] "
                   "[--quick] [--assert-zero-alloc]\n";
      return 2;
    }
  }

  std::vector<Figure> figures;
  figures.push_back(bench_schedule_run(quick ? 500'000 : 3'000'000));
  figures.push_back(bench_schedule_cancel(quick ? 100'000 : 400'000));
  figures.push_back(bench_periodic_tick(quick ? 300'000 : 2'000'000));
  figures.push_back(bench_wordcount(quick ? 60.0 : 300.0));
  figures.push_back(
      bench_wordcount_steady(/*warmup_s=*/60.0, quick ? 30.0 : 240.0));

  std::cout << "core_event_bench (" << (quick ? "quick" : "full")
            << ", label=" << label << ")\n";
  for (const Figure& f : figures) {
    std::printf("  %-16s %12llu events  %8.3f s  %12.0f ev/s  %6.3f allocs/ev",
                f.name.c_str(), static_cast<unsigned long long>(f.events),
                f.wall_s, f.events_per_sec, f.allocs_per_event);
    if (f.name == "wordcount_e2e" || f.name == "wordcount_steady") {
      std::printf("  %8.1f sim-s/wall-s", f.sim_s_per_wall_s);
    }
    std::printf("\n");
  }

  write_json(out_path, label, figures);
  std::cout << "wrote " << out_path << "\n";

  if (assert_zero_alloc) {
    for (const Figure& f : figures) {
      if (f.name != "schedule_run" && f.name != "wordcount_steady") continue;
      if (f.allocs_per_event > 0.0) {
        std::cerr << "FAIL: " << f.name << " steady state performed "
                  << f.allocs_per_event
                  << " heap allocations per event (expected 0)\n";
        return 1;
      }
    }
  }
  return 0;
}
