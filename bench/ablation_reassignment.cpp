// Ablation: T-Storm's smooth reassignment machinery (section IV-D) on vs
// off. Same topology, same schedule change at the same time; the only
// difference is the reassignment procedure:
//   abrupt — Storm semantics: affected workers are killed immediately,
//            replacements start after the JVM spawn delay, spouts never
//            pause; queued and in-flight tuples are lost and time out.
//   smooth — T-Storm semantics: replacements start first, old workers
//            drain for 20 s, spouts halt 10 s, the per-slot dispatcher
//            routes in-flight tuples to old/new workers by assignment ID.
#include <iostream>

#include "core/custom_scheduler.h"
#include "core/load_monitor.h"
#include "core/metrics_db.h"
#include "core/schedule_generator.h"
#include "harness.h"
#include "metrics/reporter.h"
#include "sched/round_robin.h"
#include "workload/topologies.h"

using namespace tstorm;

namespace {

struct AblationResult {
  bench::RunResult run;
  std::uint64_t publishes = 0;
};

/// Full T-Storm control plane over a cluster whose smoothing flag we
/// control directly (TStormSystem always enables it).
AblationResult run_with_smoothing(bool smooth) {
  sim::Simulation sim;
  runtime::ClusterConfig cluster_cfg;
  cluster_cfg.smooth_reassignment = smooth;
  runtime::Cluster cluster(sim, cluster_cfg);

  core::CoreConfig core;
  core.gamma = 2.0;
  core.generation_period = 200.0;  // one reassignment at t=200
  core::MetricsDb db(core.alpha);
  std::vector<std::unique_ptr<core::LoadMonitor>> monitors;
  for (int n = 0; n < cluster_cfg.num_nodes; ++n) {
    monitors.push_back(std::make_unique<core::LoadMonitor>(
        cluster, db, n, core.monitor_period));
    monitors.back()->start(core.monitor_period * (n + 1) /
                           (cluster_cfg.num_nodes + 1));
  }
  core::ScheduleGenerator generator(cluster, db, core);
  generator.start();
  core::CustomScheduler scheduler(cluster, db, core.fetch_period);
  scheduler.start();

  sched::TStormInitialScheduler initial;
  cluster.submit(workload::make_throughput_test(), &initial);

  AblationResult out;
  out.run.label = smooth ? "smooth (T-Storm)" : "abrupt (Storm)";
  sim::PeriodicTask sampler(sim, 10.0, [&] {
    out.run.nodes.emplace_back(sim.now(), cluster.nodes_in_use());
  });
  sampler.start(10.0);

  sim.run_until(600.0);
  out.run.proc_ms = cluster.completion().proc_time_ms();
  out.run.failures = cluster.completion().failures();
  out.run.completed = cluster.completion().total_completed();
  out.run.failed = cluster.completion().total_failed();
  out.run.dropped = cluster.dropped_messages();
  out.run.replayed = cluster.completion().total_replayed();
  out.publishes = generator.publishes();
  return out;
}

}  // namespace

int main() {
  std::cout << "Ablation — reassignment smoothing (section IV-D)\n"
            << "Throughput Test, gamma=2, one consolidation reassignment at "
               "t~200 s\n";

  const auto abrupt = run_with_smoothing(false);
  const auto smooth = run_with_smoothing(true);

  bench::print_comparison("Reassignment procedure ablation",
                          {abrupt.run, smooth.run},
                          /*stabilized_from=*/300.0, /*duration=*/600.0);

  std::cout << "\nReassignment cost (the spike around t=200-240 s):\n";
  for (const auto* r : {&abrupt.run, &smooth.run}) {
    std::cout << "  " << r->label << ": mean [200,260) = "
              << metrics::format_ms(r->mean_ms(200, 260))
              << " ms, dropped messages " << r->dropped
              << ", failed tuples " << r->failed << ", replays "
              << r->replayed << "\n";
  }
  std::cout << "\nExpectation: the abrupt variant loses queued tuples "
               "(drops > 0, failures from timeouts); the smooth variant "
               "hands over with little or no loss.\n";
  return 0;
}
