// Fault tolerance: Storm's supervisors restart dead workers, in-flight
// tuples of the dead worker time out and are replayed by their spouts, and
// the topology keeps running. This example kills a worker every few
// minutes and shows the recovery in the metrics.
//
//   $ ./examples/fault_tolerance
#include <iostream>

#include "core/system.h"
#include "metrics/reporter.h"
#include "workload/topologies.h"

using namespace tstorm;

int main() {
  sim::Simulation sim;
  core::TStormSystem system(sim);
  system.submit(workload::make_throughput_test());
  auto& cluster = system.cluster();

  // Kill the worker at (node n, port 0) every 150 s.
  int next_victim = 0;
  sim::PeriodicTask chaos(sim, 150.0, [&] {
    const int node = next_victim++ % cluster.num_nodes();
    if (cluster.kill_worker(node, 0)) {
      std::cout << "t=" << static_cast<long long>(sim.now())
                << "s: killed worker at node " << node << ", port 0\n";
    }
  });
  chaos.start(150.0);

  sim.run_until(1000.0);

  auto& completion = cluster.completion();
  std::cout << "\nThroughput Test with a worker killed every 150 s:\n";
  metrics::print_series_table(
      std::cout, {{"avg proc (ms)", &completion.proc_time_ms()}}, 1000.0);
  std::cout << "\ncompleted " << completion.total_completed() << ", failed "
            << completion.total_failed() << " (timed out, replayed "
            << completion.total_replayed() << "), dropped in flight "
            << cluster.dropped_messages() << "\n"
            << "The supervisors restarted every killed worker; failures are "
               "bounded to the tuples in flight at each kill.\n";

  // The control-plane trace shows each kill and restart.
  std::cout << "\nControl-plane trace around the first kill (t=145-175 s):\n";
  cluster.trace_log().dump(std::cout, 145.0, 175.0);
  std::cout << "\nworker starts recorded over the run: "
            << cluster.trace_log().count(trace::EventKind::kWorkerStarted)
            << ", stops: "
            << cluster.trace_log().count(trace::EventKind::kWorkerStopped)
            << "\n";
  return 0;
}
