// tstorm_cli: a command-line scenario driver over the library. Runs any
// of the evaluation workloads under Storm or T-Storm with configurable
// scheduler, gamma, input rate, duration and seed, and prints either a
// human-readable summary or the per-minute series as CSV.
//
//   $ ./examples/tstorm_cli --topology=wordcount --system=tstorm
//         --gamma=1.8 --rate=260 --duration=1000 --csv
//
// Flags (all optional):
//   --topology=throughput|wordcount|logstream   (default throughput)
//   --system=storm|tstorm                       (default tstorm)
//   --algorithm=<registry name>                 (default traffic-aware)
//   --gamma=<double>                            (default 1.0)
//   --rate=<lines/s for queue-driven topologies> (default 260)
//   --duration=<seconds>                        (default 1000)
//   --seed=<uint>                               (default 42)
//   --nodes=<int>                               (default 10)
//   --csv                                       (series CSV to stdout)
#include <cstdint>
#include <iostream>
#include <string>

#include "core/system.h"
#include "metrics/reporter.h"
#include "workload/topologies.h"

using namespace tstorm;

namespace {

struct Args {
  std::string topology = "throughput";
  std::string system = "tstorm";
  std::string algorithm = "traffic-aware";
  double gamma = 1.0;
  double rate = 260.0;
  double duration = 1000.0;
  std::uint64_t seed = 42;
  int nodes = 10;
  bool csv = false;
};

bool parse(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string val =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    try {
      if (key == "--topology") {
        args.topology = val;
      } else if (key == "--system") {
        args.system = val;
      } else if (key == "--algorithm") {
        args.algorithm = val;
      } else if (key == "--gamma") {
        args.gamma = std::stod(val);
      } else if (key == "--rate") {
        args.rate = std::stod(val);
      } else if (key == "--duration") {
        args.duration = std::stod(val);
      } else if (key == "--seed") {
        args.seed = std::stoull(val);
      } else if (key == "--nodes") {
        args.nodes = std::stoi(val);
      } else if (key == "--csv") {
        args.csv = true;
      } else {
        std::cerr << "unknown flag: " << key << "\n";
        return false;
      }
    } catch (const std::exception&) {
      std::cerr << "bad value for " << key << ": " << val << "\n";
      return false;
    }
  }
  if (args.topology != "throughput" && args.topology != "wordcount" &&
      args.topology != "logstream") {
    std::cerr << "unknown topology: " << args.topology << "\n";
    return false;
  }
  if (args.system != "storm" && args.system != "tstorm") {
    std::cerr << "unknown system: " << args.system << "\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) return 1;

  sim::Simulation sim;
  runtime::ClusterConfig cluster_cfg;
  cluster_cfg.num_nodes = args.nodes;
  cluster_cfg.seed = args.seed;

  core::CoreConfig core_cfg;
  core_cfg.gamma = args.gamma;
  core_cfg.algorithm = args.algorithm;

  std::unique_ptr<core::StormSystem> storm;
  std::unique_ptr<core::TStormSystem> tstorm;
  runtime::Cluster* cluster = nullptr;
  if (args.system == "tstorm") {
    tstorm = std::make_unique<core::TStormSystem>(sim, cluster_cfg,
                                                  core_cfg);
    cluster = &tstorm->cluster();
  } else {
    storm = std::make_unique<core::StormSystem>(sim, cluster_cfg);
    cluster = &storm->cluster();
  }

  auto submit = [&](topo::Topology t) {
    if (tstorm) {
      tstorm->submit(std::move(t));
    } else {
      storm->submit(std::move(t));
    }
  };

  std::unique_ptr<workload::QueueProducer> producer;
  std::shared_ptr<workload::ExternalQueue> queue;
  if (args.topology == "throughput") {
    submit(workload::make_throughput_test());
  } else if (args.topology == "wordcount") {
    auto wc = workload::make_word_count();
    queue = wc.queue;
    producer =
        std::make_unique<workload::QueueProducer>(sim, *queue, args.rate);
    producer->start();
    submit(std::move(wc.topology));
  } else {
    auto ls = workload::make_log_stream();
    queue = ls.queue;
    producer =
        std::make_unique<workload::QueueProducer>(sim, *queue, args.rate);
    producer->start();
    submit(std::move(ls.topology));
  }

  sim.run_until(args.duration);

  const auto& completion = cluster->completion();
  if (args.csv) {
    metrics::write_series_csv(
        std::cout, {{"avg_proc_ms", &completion.proc_time_ms()}},
        args.duration);
    return 0;
  }

  std::cout << args.topology << " on " << args.system
            << (tstorm ? " (algorithm " + args.algorithm + ", gamma " +
                             metrics::format_ms(args.gamma, 1) + ")"
                       : std::string())
            << ", " << args.duration << " s simulated\n";
  metrics::print_series_table(
      std::cout, {{"avg proc (ms)", &completion.proc_time_ms()}},
      args.duration);
  const auto& hist = completion.latency_histogram();
  std::cout << "\ncompleted " << completion.total_completed() << "  failed "
            << completion.total_failed() << "  p50 "
            << metrics::format_ms(hist.percentile(50)) << " ms  p99 "
            << metrics::format_ms(hist.percentile(99)) << " ms\n"
            << "worker nodes in use: " << cluster->nodes_in_use() << " of "
            << cluster->num_nodes() << "\n"
            << "simulated events: " << sim.events_executed() << "\n";
  return 0;
}
