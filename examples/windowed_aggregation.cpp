// Windowed aggregation with tick tuples: a rolling top-words dashboard.
// The count bolt accumulates word frequencies and flushes its local top-3
// every 10 s on a tick tuple (Storm's topology.tick.tuple.freq.secs); a
// global report bolt merges the flushes. Demonstrates the tick API and
// global grouping.
//
//   $ ./examples/windowed_aggregation
#include <algorithm>
#include <iostream>
#include <map>

#include "core/system.h"
#include "topo/builder.h"
#include "workload/external_queue.h"
#include "workload/textgen.h"

using namespace tstorm;

namespace {

class LineSpout final : public topo::Spout {
 public:
  LineSpout(std::shared_ptr<workload::ExternalQueue> queue,
            std::shared_ptr<workload::TextGenerator> text)
      : queue_(std::move(queue)), text_(std::move(text)) {}
  std::optional<topo::Tuple> next_tuple() override {
    if (!queue_->try_pop()) return std::nullopt;
    return topo::Tuple{text_->next_line()};
  }
  double cpu_cost_mega_cycles() const override { return 0.3; }

 private:
  std::shared_ptr<workload::ExternalQueue> queue_;
  std::shared_ptr<workload::TextGenerator> text_;
};

class SplitBolt final : public topo::Bolt {
 public:
  void execute(const topo::Tuple& input, topo::BoltContext& ctx) override {
    for (auto& w : workload::split_words(input.get_string(0))) {
      ctx.emit(topo::Tuple{std::move(w)});
    }
  }
  double cpu_cost_mega_cycles(const topo::Tuple&) const override {
    return 1.0;
  }
};

/// Accumulates counts; every tick flushes its local top-3 and resets.
class WindowedCountBolt final : public topo::Bolt {
 public:
  void execute(const topo::Tuple& input, topo::BoltContext& ctx) override {
    (void)ctx;
    ++counts_[std::string(input.get_string(0))];
  }
  void on_tick(topo::BoltContext& ctx) override {
    std::vector<std::pair<std::string, std::int64_t>> top(counts_.begin(),
                                                          counts_.end());
    std::sort(top.begin(), top.end(), [](const auto& a, const auto& b) {
      return a.second > b.second;
    });
    for (std::size_t i = 0; i < std::min<std::size_t>(3, top.size()); ++i) {
      ctx.emit(topo::Tuple{top[i].first, top[i].second});
    }
    counts_.clear();
  }
  double cpu_cost_mega_cycles(const topo::Tuple&) const override {
    return 0.8;
  }
  double tick_cost_mega_cycles() const override { return 2.0; }

 private:
  std::map<std::string, std::int64_t> counts_;
};

/// Merges the per-task flushes into a global per-window report.
class ReportBolt final : public topo::Bolt {
 public:
  explicit ReportBolt(
      std::shared_ptr<std::map<std::string, std::int64_t>> report)
      : report_(std::move(report)) {}
  void execute(const topo::Tuple& input, topo::BoltContext&) override {
    (*report_)[std::string(input.get_string(0))] += input.get_int(1);
  }
  double cpu_cost_mega_cycles(const topo::Tuple&) const override {
    return 0.2;
  }

 private:
  std::shared_ptr<std::map<std::string, std::int64_t>> report_;
};

}  // namespace

int main() {
  sim::Simulation sim;
  core::TStormSystem system(sim);

  auto queue = std::make_shared<workload::ExternalQueue>();
  auto text = std::make_shared<workload::TextGenerator>();
  auto report = std::make_shared<std::map<std::string, std::int64_t>>();

  topo::TopologyBuilder b;
  b.set_spout("reader",
              [queue, text] {
                return std::make_unique<LineSpout>(queue, text);
              },
              2)
      .output_fields({"line"})
      .emit_interval(0.002)
      .max_pending(200);
  b.set_bolt("split", [] { return std::make_unique<SplitBolt>(); }, 4)
      .output_fields({"word"})
      .shuffle_grouping("reader");
  b.set_bolt("count", [] { return std::make_unique<WindowedCountBolt>(); },
             4)
      .output_fields({"word", "count"})
      .fields_grouping("split", "word")
      .tick_interval(10.0);  // flush every 10 s
  b.set_bolt("report",
             [report] { return std::make_unique<ReportBolt>(report); }, 1)
      .global_grouping("count");
  system.submit(b.build("top-words", 10, 4));

  workload::QueueProducer producer(sim, *queue, 300.0);
  producer.start();

  sim.run_until(300.0);

  std::cout << "Rolling top words after 300 simulated seconds (windowed "
               "flushes every 10 s):\n";
  std::vector<std::pair<std::string, std::int64_t>> top(report->begin(),
                                                        report->end());
  std::sort(top.begin(), top.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (std::size_t i = 0; i < std::min<std::size_t>(10, top.size()); ++i) {
    std::cout << "  " << top[i].first << ": " << top[i].second << "\n";
  }
  std::cout << "\ncompleted "
            << system.cluster().completion().total_completed()
            << " tuple trees, failed "
            << system.cluster().completion().total_failed() << "\n";
  return 0;
}
