// Word Count pipeline built directly against the public API: custom
// spout/bolt classes, the fluent TopologyBuilder, fields grouping, an
// external queue driving the reader, and the T-Storm system running it.
//
//   $ ./examples/wordcount_pipeline
#include <iostream>
#include <memory>

#include "core/system.h"
#include "metrics/reporter.h"
#include "topo/builder.h"
#include "workload/external_queue.h"
#include "workload/textgen.h"

using namespace tstorm;

namespace {

/// Reads one line per poll from the shared queue.
class LineSpout final : public topo::Spout {
 public:
  LineSpout(std::shared_ptr<workload::ExternalQueue> queue,
            std::shared_ptr<workload::TextGenerator> text)
      : queue_(std::move(queue)), text_(std::move(text)) {}

  std::optional<topo::Tuple> next_tuple() override {
    if (!queue_->try_pop()) return std::nullopt;
    return topo::Tuple{text_->next_line()};
  }
  double cpu_cost_mega_cycles() const override { return 0.3; }

 private:
  std::shared_ptr<workload::ExternalQueue> queue_;
  std::shared_ptr<workload::TextGenerator> text_;
};

class SplitBolt final : public topo::Bolt {
 public:
  void execute(const topo::Tuple& input, topo::BoltContext& ctx) override {
    for (auto& word : workload::split_words(input.get_string(0))) {
      ctx.emit(topo::Tuple{std::move(word)});
    }
  }
  double cpu_cost_mega_cycles(const topo::Tuple& input) const override {
    return 0.6 + 0.1 * static_cast<double>(input.get_string(0).size()) / 6.0;
  }
};

class CountBolt final : public topo::Bolt {
 public:
  void execute(const topo::Tuple& input, topo::BoltContext& ctx) override {
    const std::string word(input.get_string(0));
    ctx.emit(topo::Tuple{word, ++counts_[word]});
  }
  double cpu_cost_mega_cycles(const topo::Tuple&) const override {
    return 1.0;
  }

 private:
  std::unordered_map<std::string, std::int64_t> counts_;
};

/// Terminal sink; blocking I/O occupies the thread, not the CPU.
class SinkBolt final : public topo::Bolt {
 public:
  void execute(const topo::Tuple&, topo::BoltContext&) override {}
  double cpu_cost_mega_cycles(const topo::Tuple&) const override {
    return 0.5;
  }
  double io_time_seconds(const topo::Tuple&) const override {
    return 0.00015;
  }
};

}  // namespace

int main() {
  sim::Simulation sim;
  core::TStormSystem system(sim);

  auto queue = std::make_shared<workload::ExternalQueue>();
  auto text = std::make_shared<workload::TextGenerator>();

  // The topology, exactly as a Storm user would declare it.
  topo::TopologyBuilder builder;
  builder
      .set_spout("reader",
                 [queue, text] {
                   return std::make_unique<LineSpout>(queue, text);
                 },
                 2)
      .output_fields({"line"})
      .emit_interval(0.002)
      .max_pending(300);
  builder
      .set_bolt("split", [] { return std::make_unique<SplitBolt>(); }, 5)
      .output_fields({"word"})
      .shuffle_grouping("reader");
  builder
      .set_bolt("count", [] { return std::make_unique<CountBolt>(); }, 5)
      .output_fields({"word", "count"})
      .fields_grouping("split", "word");  // same word -> same task
  builder.set_bolt("sink", [] { return std::make_unique<SinkBolt>(); }, 5)
      .shuffle_grouping("count");

  system.submit(builder.build("word-count", /*num_workers=*/20,
                              /*num_ackers=*/10));

  // Drive the queue at 260 lines/s, like a file pusher into Redis.
  workload::QueueProducer producer(sim, *queue, 260.0);
  producer.start();

  sim.run_until(600.0);

  auto& completion = system.cluster().completion();
  std::cout << "Word Count on T-Storm, 600 simulated seconds\n";
  metrics::print_series_table(
      std::cout, {{"avg proc (ms)", &completion.proc_time_ms()}}, 600.0);
  std::cout << "\ncompleted " << completion.total_completed() << ", failed "
            << completion.total_failed() << ", worker nodes in use "
            << system.cluster().nodes_in_use() << "\n"
            << "lines left in queue: " << queue->size() << "\n";
  return 0;
}
