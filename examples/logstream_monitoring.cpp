// Log Stream Processing with a look inside T-Storm's monitoring plane:
// per-executor CPU loads, the hottest inter-executor traffic edges, and
// per-node workloads from the metrics database — the exact inputs
// Algorithm 1 schedules from. Also demonstrates overload handling on a
// live topology (a traffic spike triggers immediate rescheduling).
//
//   $ ./examples/logstream_monitoring
#include <algorithm>
#include <iomanip>
#include <iostream>

#include "core/system.h"
#include "metrics/reporter.h"
#include "workload/topologies.h"

using namespace tstorm;

namespace {

void dump_monitoring(core::TStormSystem& system) {
  auto& cluster = system.cluster();
  auto& db = system.db();

  std::cout << "\nPer-component executor loads (MHz, EWMA):\n";
  for (auto topo_id : cluster.topology_ids()) {
    const auto& topology = cluster.topology(topo_id);
    for (const auto& component : topology.components()) {
      double total = 0;
      for (auto task :
           cluster.tasks_of_component(topo_id, component.name)) {
        total += db.executor_load(task);
      }
      std::cout << "  " << std::setw(12) << std::left << component.name
                << std::right << std::setw(10)
                << metrics::format_ms(total, 1) << " MHz over "
                << component.parallelism << " executors\n";
    }
  }

  auto traffic = db.traffic_snapshot();
  std::sort(traffic.begin(), traffic.end(),
            [](const auto& a, const auto& b) { return a.rate > b.rate; });
  std::cout << "\nHottest inter-executor edges (tuples/s, EWMA):\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(5, traffic.size());
       ++i) {
    const auto& e = traffic[i];
    std::cout << "  task " << e.src << " ("
              << cluster.task_info(e.src).component->name << ") -> task "
              << e.dst << " (" << cluster.task_info(e.dst).component->name
              << "): " << metrics::format_ms(e.rate, 1) << "\n";
  }

  std::cout << "\nPer-node workload (MHz, EWMA):\n  ";
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    std::cout << "n" << n << "=" << static_cast<long long>(db.node_load(n))
              << " ";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  sim::Simulation sim;
  core::CoreConfig core;
  core.gamma = 1.7;
  core::TStormSystem system(sim, {}, core);

  auto ls = workload::make_log_stream();
  workload::QueueProducer logstash(sim, *ls.queue, 400.0);
  logstash.start();
  system.submit(std::move(ls.topology));

  std::cout << "Log Stream Processing under T-Storm (gamma = 1.7)\n";
  sim.run_until(200.0);
  std::cout << "\n--- after 200 s (pre-reassignment, "
            << system.cluster().nodes_in_use() << " nodes) ---";
  dump_monitoring(system);

  sim.run_until(600.0);
  std::cout << "\n--- after 600 s (post-reassignment, "
            << system.cluster().nodes_in_use() << " nodes) ---";
  dump_monitoring(system);

  // Traffic spike: LogStash suddenly pushes 3x the log volume.
  std::cout << "\n--- log volume triples at t=600 s ---\n";
  logstash.set_rate(1200.0);
  sim.run_until(1000.0);

  auto& completion = system.cluster().completion();
  std::cout << "t=1000 s: " << system.cluster().nodes_in_use()
            << " nodes in use, overload-triggered generations: "
            << system.generator().overload_triggers() << "\n"
            << "avg proc time [800,1000) = "
            << metrics::format_ms(
                   completion.proc_time_ms().mean_between(800, 1000).value_or(
                       0))
            << " ms, failed " << completion.total_failed() << "\n";
  return 0;
}
