// Trace export: run a topology under T-Storm with full observability on —
// every root tuple traced end to end, every scheduling decision recorded —
// then export a Chrome trace-event JSON (load it in chrome://tracing or
// https://ui.perfetto.dev) plus a JSONL file for jq-style analysis, and
// print the text summaries.
//
//   $ ./examples/trace_export [out.json [out.jsonl]]
//
// Exits nonzero if the run produced no scheduling decision or no finished
// tuple trace — the CI smoke test relies on that.
#include <fstream>
#include <iostream>
#include <string>

#include "core/system.h"
#include "metrics/reporter.h"
#include "obs/export.h"
#include "sim/simulation.h"
#include "workload/topologies.h"

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "trace.json";
  const std::string jsonl_path = argc > 2 ? argv[2] : "trace.jsonl";
  constexpr double kDuration = 700.0;

  tstorm::sim::Simulation sim;
  tstorm::runtime::ClusterConfig cluster;
  // Trace every root; a real deployment would sample (e.g. 0.01).
  cluster.obs.tuple_sample_rate = 1.0;
  tstorm::core::CoreConfig core;
  core.gamma = 1.7;
  // Surface rejected generation passes in the control-plane trace too.
  core.trace_decisions = true;
  tstorm::core::TStormSystem system(sim, cluster, core);
  system.submit(tstorm::workload::make_throughput_test());
  sim.run_until(kDuration);

  tstorm::runtime::Cluster& c = system.cluster();
  tstorm::metrics::print_decision_summary(std::cout, c.provenance());
  tstorm::metrics::print_tuple_trace_summary(std::cout, c.tuple_trace());

  {
    std::ofstream os(json_path);
    tstorm::obs::write_chrome_trace(os, c.provenance(), c.tuple_trace(),
                                    &c.trace_log());
  }
  {
    std::ofstream os(jsonl_path);
    tstorm::obs::write_jsonl(os, c.provenance(), c.tuple_trace());
  }
  std::cout << "wrote " << json_path << " and " << jsonl_path << "\n";

  if (c.provenance().total_recorded() == 0) {
    std::cerr << "error: no scheduling decisions recorded\n";
    return 1;
  }
  if (c.tuple_trace().finished().empty()) {
    std::cerr << "error: no finished tuple traces\n";
    return 1;
  }
  return 0;
}
