// Hot-swapping scheduling algorithms and tuning parameters at runtime
// (paper section IV-C): the schedule generator starts with Storm's
// round-robin algorithm, is swapped to the traffic-aware Algorithm 1 while
// the topology keeps running, and then the consolidation factor gamma is
// raised on the fly — no restarts anywhere.
//
//   $ ./examples/hotswap
#include <iostream>

#include "core/system.h"
#include "metrics/reporter.h"
#include "sched/scheduler.h"
#include "workload/topologies.h"

using namespace tstorm;

int main() {
  sim::Simulation sim;
  core::CoreConfig core;
  core.algorithm = "round-robin";  // start with the default scheduler
  core.generation_period = 60.0;   // generate more often for the demo
  core::TStormSystem system(sim, {}, core);

  system.submit(workload::make_throughput_test());

  std::cout << "Available algorithms in the registry:";
  for (const auto& name : sched::AlgorithmRegistry::instance().names()) {
    std::cout << " " << name;
  }
  std::cout << "\n\nPhase 1 (0-300 s): generator runs '"
            << system.generator().algorithm_name() << "'\n";
  sim.run_until(300.0);
  auto& completion = system.cluster().completion();
  std::cout << "  avg " << metrics::format_ms(*completion.proc_time_ms()
                                                   .mean_between(120, 300))
            << " ms on " << system.cluster().nodes_in_use() << " nodes\n";

  // --- Hot swap: no cluster restart, no topology resubmission. ---
  system.generator().set_algorithm("traffic-aware");
  std::cout << "\nPhase 2 (300-600 s): hot-swapped to '"
            << system.generator().algorithm_name() << "'\n";
  sim.run_until(600.0);
  std::cout << "  avg " << metrics::format_ms(*completion.proc_time_ms()
                                                   .mean_between(450, 600))
            << " ms on " << system.cluster().nodes_in_use() << " nodes\n";

  // --- Adjust gamma on the fly: consolidate onto fewer nodes. ---
  system.generator().set_gamma(6.0);
  std::cout << "\nPhase 3 (600-1000 s): gamma raised to "
            << system.generator().gamma() << " at runtime\n";
  sim.run_until(1000.0);
  std::cout << "  avg " << metrics::format_ms(*completion.proc_time_ms()
                                                   .mean_between(800, 1000))
            << " ms on " << system.cluster().nodes_in_use() << " nodes\n";

  std::cout << "\nSchedules generated: " << system.generator().generations()
            << ", published: " << system.generator().publishes()
            << ", applied by the custom scheduler: "
            << system.scheduler().applications() << "\n";
  return 0;
}
