// Quickstart: define a small stream topology with the Storm-like API, run
// it under stock Storm (default round-robin scheduler) and under T-Storm
// (traffic-aware online scheduling), and compare average tuple processing
// time and worker-node usage.
//
//   $ ./examples/quickstart
#include <iostream>
#include <memory>

#include "core/system.h"
#include "metrics/reporter.h"
#include "sim/simulation.h"
#include "topo/builder.h"
#include "workload/topologies.h"

namespace {

struct RunResult {
  double avg_ms = 0;
  int nodes = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
};

RunResult run_storm(double duration) {
  tstorm::sim::Simulation sim;
  tstorm::core::StormSystem system(sim);
  system.submit(tstorm::workload::make_throughput_test());
  sim.run_until(duration);
  RunResult r;
  r.avg_ms = system.cluster()
                 .completion()
                 .proc_time_ms()
                 .mean_between(duration / 2, duration)
                 .value_or(0);
  r.nodes = system.cluster().nodes_in_use();
  r.completed = system.cluster().completion().total_completed();
  r.failed = system.cluster().completion().total_failed();
  return r;
}

RunResult run_tstorm(double duration, double gamma) {
  tstorm::sim::Simulation sim;
  tstorm::core::CoreConfig core;
  core.gamma = gamma;
  tstorm::core::TStormSystem system(sim, {}, core);
  system.submit(tstorm::workload::make_throughput_test());
  sim.run_until(duration);
  RunResult r;
  r.avg_ms = system.cluster()
                 .completion()
                 .proc_time_ms()
                 .mean_between(duration / 2, duration)
                 .value_or(0);
  r.nodes = system.cluster().nodes_in_use();
  r.completed = system.cluster().completion().total_completed();
  r.failed = system.cluster().completion().total_failed();
  return r;
}

}  // namespace

int main() {
  constexpr double kDuration = 600.0;

  std::cout << "Running Throughput Test under Storm (default scheduler)...\n";
  const RunResult storm = run_storm(kDuration);
  std::cout << "  avg proc time " << storm.avg_ms << " ms, nodes used "
            << storm.nodes << ", completed " << storm.completed
            << ", failed " << storm.failed << "\n\n";

  for (double gamma : {1.0, 1.7, 6.0}) {
    std::cout << "Running under T-Storm (gamma = " << gamma << ")...\n";
    const RunResult ts = run_tstorm(kDuration, gamma);
    std::cout << "  avg proc time " << ts.avg_ms << " ms, nodes used "
              << ts.nodes << ", completed " << ts.completed << ", failed "
              << ts.failed;
    if (ts.avg_ms > 0 && storm.avg_ms > 0) {
      std::cout << "  -> speedup "
                << 100.0 * (1.0 - ts.avg_ms / storm.avg_ms) << "%";
    }
    std::cout << "\n";
  }
  return 0;
}
