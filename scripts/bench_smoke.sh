#!/usr/bin/env bash
# Quick engine-performance smoke: builds the benchmark in Release, runs the
# core event-loop figures with a short budget, asserts the hot path is
# allocation-free (--assert-zero-alloc gates both the schedule_run engine
# figure and the wordcount_steady tuple-path figure at exactly 0 heap
# allocations per event after warm-up), and appends the JSON result to
# BENCH_history.jsonl so regressions are visible across commits. Also runs
# the trace_export example as an observability self-check: the Chrome
# trace must parse as JSON and carry at least one scheduling-decision
# record.
#
# Usage: scripts/bench_smoke.sh [label]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
label="${1:-smoke-$(git -C "$repo" rev-parse --short HEAD 2>/dev/null || echo dev)}"
build="$repo/build-bench"
out="$(mktemp)"
trap 'rm -f "$out"' EXIT

cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$build" -j "$(nproc)" \
  --target core_event_bench --target flow_bench \
  --target recovery_bench --target ablation_resource_aware \
  --target trace_export >/dev/null

"$build/bench/core_event_bench" \
  --quick --assert-zero-alloc --label "$label" --out "$out"

# One JSON object per line, append-only history.
tr -d '\n' < "$out" >> "$repo/BENCH_history.jsonl"
echo >> "$repo/BENCH_history.jsonl"

# Flow-control figures: same overloaded chain with and without flow
# control; the binary exits nonzero unless flow-off grows without bound
# and flow-on stays within capacity.
"$build/bench/flow_bench" --quick --label "$label" --out "$out"
tr -d '\n' < "$out" >> "$repo/BENCH_history.jsonl"
echo >> "$repo/BENCH_history.jsonl"

# Recovery figures: kill the worker hosting a stateful bolt and measure
# time-to-restore / time-to-consistent-state; the binary exits nonzero
# unless the cluster checkpointed before the kill and recovered within
# the budget.
"$build/bench/recovery_bench" --quick --label "$label" --out "$out"
tr -d '\n' < "$out" >> "$repo/BENCH_history.jsonl"
echo >> "$repo/BENCH_history.jsonl"

# Resource-aware placement on a heterogeneous fleet: the binary exits
# nonzero unless rstorm beats round-robin on both inter-node traffic and
# completed tuples; the python check asserts the JSON is well-formed.
"$build/bench/ablation_resource_aware" --quick --label "$label" --out "$out"
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$out"
tr -d '\n' < "$out" >> "$repo/BENCH_history.jsonl"
echo >> "$repo/BENCH_history.jsonl"
echo "appended '$label' to BENCH_history.jsonl"

# Observability self-check: the example exits nonzero when the run records
# no decisions or tuple traces; the python check asserts the Chrome export
# is well-formed JSON with >= 1 decision instant.
trace_dir="$(mktemp -d)"
trap 'rm -f "$out"; rm -rf "$trace_dir"' EXIT
"$build/examples/trace_export" \
  "$trace_dir/trace.json" "$trace_dir/trace.jsonl" >/dev/null
python3 - "$trace_dir/trace.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
decisions = [e for e in doc["traceEvents"]
             if e.get("ph") == "i" and e.get("name", "").startswith("decision")]
assert decisions, "no scheduling-decision instants in the Chrome trace"
print(f"trace_export OK: {len(doc['traceEvents'])} events, "
      f"{len(decisions)} decisions")
EOF
