#!/usr/bin/env bash
# Quick engine-performance smoke: builds the benchmark in Release, runs the
# core event-loop figures with a short budget, asserts the hot path is
# allocation-free, and appends the JSON result to BENCH_history.jsonl so
# regressions are visible across commits.
#
# Usage: scripts/bench_smoke.sh [label]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
label="${1:-smoke-$(git -C "$repo" rev-parse --short HEAD 2>/dev/null || echo dev)}"
build="$repo/build-bench"
out="$(mktemp)"
trap 'rm -f "$out"' EXIT

cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$build" -j "$(nproc)" \
  --target core_event_bench --target flow_bench >/dev/null

"$build/bench/core_event_bench" \
  --quick --assert-zero-alloc --label "$label" --out "$out"

# One JSON object per line, append-only history.
tr -d '\n' < "$out" >> "$repo/BENCH_history.jsonl"
echo >> "$repo/BENCH_history.jsonl"

# Flow-control figures: same overloaded chain with and without flow
# control; the binary exits nonzero unless flow-off grows without bound
# and flow-on stays within capacity.
"$build/bench/flow_bench" --quick --label "$label" --out "$out"
tr -d '\n' < "$out" >> "$repo/BENCH_history.jsonl"
echo >> "$repo/BENCH_history.jsonl"
echo "appended '$label' to BENCH_history.jsonl"
