#!/usr/bin/env python3
"""Re-plot the paper figures from bench CSV artifacts.

Usage:
    TSTORM_BENCH_CSV=/tmp/csv ./build/bench/fig05_throughput_test
    scripts/plot_figures.py /tmp/csv out/

Reads every <label>.csv (written by the bench harness when
TSTORM_BENCH_CSV is set) and writes one SVG per file plus a combined
figure per prefix. Requires matplotlib; degrades to printing a summary
table if it is unavailable.
"""
import csv
import os
import sys


def load(path):
    xs, ys = [], []
    with open(path) as f:
        for row in csv.DictReader(f):
            val = row.get("avg_proc_ms", "")
            if val:
                xs.append(float(row["time_s"]))
                ys.append(float(val))
    return xs, ys


def main():
    if len(sys.argv) != 3:
        print(__doc__)
        return 1
    src, out = sys.argv[1], sys.argv[2]
    os.makedirs(out, exist_ok=True)
    series = {}
    for name in sorted(os.listdir(src)):
        if name.endswith(".csv"):
            series[name[:-4]] = load(os.path.join(src, name))
    if not series:
        print(f"no CSV files in {src}")
        return 1
    try:
        import matplotlib
        matplotlib.use("SVG")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib unavailable; summary instead:")
        for label, (xs, ys) in series.items():
            mean = sum(ys) / len(ys) if ys else 0.0
            print(f"  {label}: {len(ys)} windows, mean {mean:.2f} ms")
        return 0
    fig, ax = plt.subplots(figsize=(7, 4))
    for label, (xs, ys) in series.items():
        ax.plot(xs, ys, marker="o", markersize=3, label=label)
    ax.set_xlabel("Running Time (s)")
    ax.set_ylabel("Avg. Proc. Time (ms)")
    ax.legend()
    ax.grid(True, alpha=0.3)
    fig.tight_layout()
    path = os.path.join(out, "combined.svg")
    fig.savefig(path)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
