#!/usr/bin/env bash
# Sanitizer gate: builds the whole tree with AddressSanitizer +
# UndefinedBehaviorSanitizer in a dedicated build directory and runs the
# full test suite — tier-1 plus the chaos soak — under it. A leak, a
# use-after-free in a fault path, or UB anywhere fails the script.
#
# Usage: scripts/check_asan.sh [extra ctest args...]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build-asan"

cmake -B "$build" -S "$repo" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DTSTORM_SANITIZE=address,undefined >/dev/null
cmake --build "$build" -j "$(nproc)" >/dev/null

# halt_on_error: make UBSan findings fatal instead of log-and-continue.
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"

ctest --test-dir "$build" --output-on-failure -j "$(nproc)" "$@"
echo "ASan/UBSan run clean"
