// State subsystem tests: StateStore keyed API + exactly-once dedup,
// DurableStore two-phase (torn-snapshot) visibility, CheckpointCoordinator
// barrier rounds, and cluster-level integration — end-to-end checkpoints,
// crash mid-checkpoint, restore-on-reschedule, barrier alignment at a
// multi-input bolt, dedup drop attribution, and byte-identical determinism
// with checkpointing enabled.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <sstream>
#include <string>

#include "chaos/auditor.h"
#include "chaos/fault_plan.h"
#include "core/system.h"
#include "metrics/reporter.h"
#include "runtime/cluster.h"
#include "runtime/executor.h"
#include "state/checkpoint.h"
#include "state/durable_store.h"
#include "state/state_store.h"
#include "topo/builder.h"
#include "topo/tuple.h"
#include "workload/bolts.h"
#include "workload/external_queue.h"
#include "workload/topologies.h"

namespace tstorm::state {
namespace {

// ------------------------------------------------------------- StateStore

TEST(StateStore, PutGetIncrement) {
  StateStore s;
  EXPECT_EQ(s.get(topo::Value("a")), nullptr);
  s.put(topo::Value("a"), topo::Value(std::int64_t{7}));
  ASSERT_NE(s.get(topo::Value("a")), nullptr);
  EXPECT_EQ(s.get(topo::Value("a"))->as_int(), 7);

  EXPECT_EQ(s.increment(topo::Value("a")), 8);
  EXPECT_EQ(s.increment(topo::Value("a"), 2), 10);
  // Insert-at-zero for an absent key.
  EXPECT_EQ(s.increment(topo::Value("b")), 1);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_GT(s.bytes(), 0u);
}

TEST(StateStore, MixedKeyKinds) {
  StateStore s;
  s.put(topo::Value(std::int64_t{42}), topo::Value("answer"));
  s.put(topo::Value(3.5), topo::Value(std::int64_t{1}));
  s.put(topo::Value("42"), topo::Value(std::int64_t{2}));  // != int 42
  EXPECT_EQ(s.size(), 3u);
  ASSERT_NE(s.get(topo::Value(std::int64_t{42})), nullptr);
  EXPECT_EQ(s.get(topo::Value(std::int64_t{42}))->as_string(), "answer");
  EXPECT_EQ(s.get(topo::Value("42"))->as_int(), 2);
}

TEST(StateStore, ManyKeysSurviveGrowth) {
  StateStore s;
  for (int i = 0; i < 500; ++i) {
    s.put(topo::Value("key-" + std::to_string(i)),
          topo::Value(static_cast<std::int64_t>(i)));
  }
  EXPECT_EQ(s.size(), 500u);
  for (int i = 0; i < 500; ++i) {
    const topo::Value* v = s.get(topo::Value("key-" + std::to_string(i)));
    ASSERT_NE(v, nullptr) << i;
    EXPECT_EQ(v->as_int(), i);
  }
}

TEST(StateStore, DedupSuppressesAndRefreshes) {
  StateStore s;
  EXPECT_TRUE(s.dedup_insert(101, 1.0));
  EXPECT_FALSE(s.dedup_insert(101, 5.0));  // duplicate, timestamp refreshed
  EXPECT_TRUE(s.dedup_insert(202, 2.0));
  EXPECT_EQ(s.dedup_size(), 2u);

  // Sweep at horizon 4.0: path 101 was refreshed to t=5 and survives;
  // path 202 (t=2) is dropped. The refresh is what keeps a path alive as
  // long as attempts of its tree keep arriving.
  s.sweep_dedup(4.0);
  EXPECT_EQ(s.dedup_size(), 1u);
  EXPECT_FALSE(s.dedup_insert(101, 6.0));
  EXPECT_TRUE(s.dedup_insert(202, 6.0));  // swept, so it reads as new
}

TEST(StateStore, SnapshotRestoreRoundTrip) {
  StateStore s;
  s.put(topo::Value("w"), topo::Value(std::int64_t{3}));
  s.increment(topo::Value("x"), 9);
  ASSERT_TRUE(s.dedup_insert(77, 1.5));
  const Snapshot snap = s.snapshot();
  EXPECT_EQ(snap.entries.size(), 2u);
  EXPECT_EQ(snap.dedup.size(), 1u);
  EXPECT_GT(snap.bytes, 0u);

  // Mutate past the snapshot, then restore: both halves (keyed entries
  // and dedup set) must revert together — the atomicity that keeps
  // "applied" and "remembered as applied" from splitting across a crash.
  s.increment(topo::Value("x"), 100);
  s.put(topo::Value("y"), topo::Value(std::int64_t{1}));
  ASSERT_TRUE(s.dedup_insert(88, 2.0));
  s.restore(snap);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.get(topo::Value("x"))->as_int(), 9);
  EXPECT_EQ(s.get(topo::Value("y")), nullptr);
  EXPECT_FALSE(s.dedup_insert(77, 3.0));
  EXPECT_TRUE(s.dedup_insert(88, 3.0));  // not in the snapshot
}

TEST(StateStore, ReplayModeSuppressesMutations) {
  // Replay mode is how the executor re-runs a dedup-suppressed duplicate:
  // the bolt's emissions happen, its state effects do not.
  StateStore s;
  s.increment(topo::Value("w"), 3);
  const std::uint64_t bytes_before = s.bytes();

  s.set_replay(true);
  EXPECT_TRUE(s.in_replay());
  // increment() reports the stored total (which already includes the
  // suppressed update) without mutating.
  EXPECT_EQ(s.increment(topo::Value("w"), 1), 3);
  // put() drops its value entirely.
  s.put(topo::Value("x"), topo::Value(std::int64_t{5}));
  // An absent key falls back to `by` (mirrors the original first apply).
  EXPECT_EQ(s.increment(topo::Value("absent")), 1);
  s.set_replay(false);

  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.bytes(), bytes_before);
  EXPECT_EQ(s.get(topo::Value("w"))->as_int(), 3);
  EXPECT_EQ(s.get(topo::Value("x")), nullptr);
  EXPECT_EQ(s.increment(topo::Value("w")), 4);  // mutations resume
}

TEST(StateStore, ByteAccountingDoesNotDrift) {
  // bytes_ is maintained incrementally across inserts, overwrites, and
  // type-changing updates; it must always equal what a freshly-built
  // store with the same final contents reports (it feeds Snapshot::bytes,
  // which drives simulated durable-write transmission time).
  StateStore s;
  EXPECT_EQ(s.bytes(), 0u);
  s.increment(topo::Value("k1"));  // fresh insert via increment
  // One entry: key + int value + per-entry framing overhead.
  EXPECT_EQ(s.bytes(), topo::value_bytes(topo::Value("k1")) + 8 + 16);
  s.increment(topo::Value("k1"), 5);
  s.put(topo::Value("k2"), topo::Value(std::int64_t{9}));
  s.put(topo::Value("k2"), topo::Value("a value too long to stay put"));
  s.increment(topo::Value("k2"));  // string -> int again
  s.put(topo::Value("k3"), topo::Value(1.5));

  StateStore fresh;
  s.for_each([&fresh](const topo::Value& k, const topo::Value& v) {
    fresh.put(k, v);
  });
  EXPECT_EQ(s.bytes(), fresh.bytes());
}

TEST(StateStore, LineagePathsAreStableAndNonZero) {
  // Same uid => same root path (replay attempts agree); child paths are
  // deterministic in (parent, ordinal) and never 0 (the dedup sentinel).
  EXPECT_EQ(root_path(42), root_path(42));
  EXPECT_NE(root_path(42), root_path(43));
  EXPECT_NE(root_path(42), 0u);
  const std::uint64_t p = root_path(42);
  EXPECT_EQ(child_path(p, 0), child_path(p, 0));
  EXPECT_NE(child_path(p, 0), child_path(p, 1));
  EXPECT_NE(child_path(p, 0), 0u);
}

// ----------------------------------------------------------- DurableStore

TEST(DurableStore, PendingInvisibleUntilCompleted) {
  DurableStore d;
  Snapshot snap;
  snap.bytes = 10;
  d.put_pending(5, /*ckpt=*/1, snap);
  // A pending (possibly torn) snapshot must never be restorable.
  EXPECT_EQ(d.completed(5), nullptr);

  d.mark_completed(1);
  std::uint64_t ckpt = 0;
  ASSERT_NE(d.completed(5, &ckpt), nullptr);
  EXPECT_EQ(ckpt, 1u);
  EXPECT_EQ(d.completed(5)->bytes, 10u);
}

TEST(DurableStore, TornSnapshotSupersededByNextRound) {
  DurableStore d;
  Snapshot good;
  good.bytes = 1;
  d.put_pending(5, 1, good);
  d.mark_completed(1);

  // Round 2's write lands but the round never completes (crash mid-
  // checkpoint): restore still reads round 1. Round 3 replaces the torn
  // pending snapshot and completes normally.
  Snapshot torn;
  torn.bytes = 999;
  d.put_pending(5, 2, torn);
  std::uint64_t ckpt = 0;
  ASSERT_NE(d.completed(5, &ckpt), nullptr);
  EXPECT_EQ(ckpt, 1u);
  EXPECT_EQ(d.completed(5)->bytes, 1u);

  Snapshot next;
  next.bytes = 7;
  d.put_pending(5, 3, next);
  d.mark_completed(3);
  ASSERT_NE(d.completed(5, &ckpt), nullptr);
  EXPECT_EQ(ckpt, 3u);
  EXPECT_EQ(d.completed(5)->bytes, 7u);
  EXPECT_EQ(d.rounds_completed(), 2u);
}

// -------------------------------------------------- CheckpointCoordinator

struct CoordinatorProbe {
  int barriers = 0;
  std::uint64_t last_round = 0;
  int completed = 0;
  int aborted = 0;
  std::unique_ptr<CheckpointCoordinator> coord;

  explicit CoordinatorProbe(double abort_timeout = 0) {
    CheckpointCoordinator::Callbacks cb;
    cb.inject_barriers = [this](int, std::uint64_t ckpt) {
      ++barriers;
      last_round = ckpt;
    };
    cb.on_complete = [this](int, std::uint64_t, double, std::uint64_t) {
      ++completed;
    };
    cb.on_abort = [this](int, std::uint64_t) { ++aborted; };
    coord =
        std::make_unique<CheckpointCoordinator>(std::move(cb), abort_timeout);
  }
};

TEST(CheckpointCoordinator, RoundCompletesWhenAllWritesLand) {
  CoordinatorProbe p;
  p.coord->register_topology(1, {10, 11});
  p.coord->tick(0.0);
  EXPECT_EQ(p.barriers, 1);
  const std::uint64_t round = p.last_round;
  EXPECT_EQ(p.coord->inflight_round(1), round);

  p.coord->on_snapshot_written(1, round, 10, 100, 1.0);
  EXPECT_EQ(p.completed, 0);  // still awaiting task 11
  p.coord->on_snapshot_written(1, round, 11, 50, 2.0);
  EXPECT_EQ(p.completed, 1);
  EXPECT_EQ(p.coord->inflight_round(1), 0u);

  const CheckpointGauges* g = p.coord->gauges(1);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->completed, 1u);
  EXPECT_EQ(g->last_id, round);
  EXPECT_EQ(g->last_bytes, 150u);
  EXPECT_DOUBLE_EQ(g->last_duration, 2.0);
}

TEST(CheckpointCoordinator, OpenRoundAbortedByNextTick) {
  CoordinatorProbe p;
  p.coord->register_topology(1, {10, 11});
  p.coord->tick(0.0);
  const std::uint64_t first = p.last_round;
  p.coord->on_snapshot_written(1, first, 10, 100, 1.0);

  // Next tick with task 11's write still missing: abort + new round.
  p.coord->tick(5.0);
  EXPECT_EQ(p.aborted, 1);
  EXPECT_EQ(p.barriers, 2);
  const std::uint64_t second = p.last_round;
  EXPECT_GT(second, first);

  // A late write of the aborted round — the torn snapshot — is ignored.
  p.coord->on_snapshot_written(1, first, 11, 50, 6.0);
  EXPECT_EQ(p.completed, 0);

  p.coord->on_snapshot_written(1, second, 10, 100, 7.0);
  p.coord->on_snapshot_written(1, second, 11, 50, 8.0);
  EXPECT_EQ(p.completed, 1);
}

TEST(CheckpointCoordinator, SlowRoundSurvivesTicksUntilAbortTimeout) {
  // Barriers ride the data path: a round slower than one interval is not
  // lost, just late. Ticks inside the abort timeout must neither abort it
  // nor start a concurrent round, so a backlogged cluster still commits.
  CoordinatorProbe p(/*abort_timeout=*/12.0);
  p.coord->register_topology(1, {10});
  p.coord->tick(0.0);
  const std::uint64_t round = p.last_round;

  p.coord->tick(5.0);
  p.coord->tick(10.0);
  EXPECT_EQ(p.aborted, 0);
  EXPECT_EQ(p.barriers, 1);  // ticks skipped, no new round injected
  EXPECT_EQ(p.coord->inflight_round(1), round);

  // The slow write lands after two skipped ticks: the round completes.
  p.coord->on_snapshot_written(1, round, 10, 100, 11.0);
  EXPECT_EQ(p.completed, 1);

  // The next stuck round is aborted only once it outlives the timeout.
  p.coord->tick(15.0);
  const std::uint64_t stuck = p.last_round;
  p.coord->tick(20.0);
  EXPECT_EQ(p.aborted, 0);
  p.coord->tick(27.5);
  EXPECT_EQ(p.aborted, 1);
  EXPECT_GT(p.last_round, stuck);
}

}  // namespace
}  // namespace tstorm::state

namespace tstorm::chaos {
namespace {

runtime::ClusterConfig state_config(std::uint64_t seed) {
  runtime::ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.seed = seed;
  cfg.failure_detection = true;
  cfg.tuple_timeout = 10.0;
  cfg.late_ack_grace_factor = 2.0;
  cfg.replay_backoff_base = 0.5;
  cfg.replay_backoff_max = 8.0;
  cfg.node_timeout = 9.0;
  cfg.heartbeat_period = 2.0;
  cfg.monitor_period = 3.0;
  cfg.max_replays = 50;
  cfg.state.enabled = true;
  cfg.state.checkpoint_interval = 5.0;
  return cfg;
}

struct WordCountRig {
  sim::Simulation sim;
  std::unique_ptr<core::StormSystem> sys;
  std::unique_ptr<workload::QueueProducer> producer;
  sched::TopologyId id = -1;

  explicit WordCountRig(std::uint64_t seed,
                        runtime::ClusterConfig cfg) {
    sys = std::make_unique<core::StormSystem>(sim, cfg);
    workload::WordCountOptions opt;
    opt.spouts = 1;
    opt.splitters = 2;
    opt.counters = 2;
    opt.mongos = 1;
    opt.ackers = 2;
    opt.workers = 4;
    opt.text.vocabulary = 128;
    auto wc = workload::make_word_count(opt);
    producer = std::make_unique<workload::QueueProducer>(sim, *wc.queue, 60.0);
    producer->start();
    id = sys->submit(std::move(wc.topology));
    (void)seed;
  }

  runtime::Cluster& cluster() { return sys->cluster(); }
};

TEST(StateIntegration, CheckpointsCompleteEndToEnd) {
  WordCountRig rig(1, state_config(1));
  rig.sim.run_until(60.0);

  auto& cluster = rig.cluster();
  EXPECT_GT(cluster.trace_log().count(trace::EventKind::kCheckpointComplete),
            0u);
  EXPECT_GT(cluster.durable_state().writes_landed(), 0u);
  EXPECT_GT(cluster.durable_state().rounds_completed(), 0u);

  // Gauges populated and printable.
  const auto rows = cluster.checkpoint_gauges();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_GT(rows[0].completed, 0u);
  EXPECT_GT(rows[0].last_bytes, 0u);
  EXPECT_GT(rows[0].mean_interval, 0.0);
  std::ostringstream os;
  metrics::print_checkpoint_gauges(os, rows);
  EXPECT_NE(os.str().find("completed"), std::string::npos);

  // The stateful word counter is actually accumulating in managed state.
  InvariantAuditor auditor(cluster);
  const KeyedState keyed = auditor.collect_keyed_state();
  EXPECT_FALSE(keyed.empty());
}

TEST(StateIntegration, RestoreOnRescheduleRehydratesState) {
  WordCountRig rig(2, state_config(2));
  rig.sim.run_until(40.0);
  auto& cluster = rig.cluster();
  ASSERT_GT(cluster.trace_log().count(trace::EventKind::kCheckpointComplete),
            0u);

  InvariantAuditor auditor(cluster);
  const KeyedState before = auditor.collect_keyed_state();
  ASSERT_FALSE(before.empty());

  // Kill the worker hosting a stateful bolt task; the supervisor restarts
  // it and the fresh executor must rehydrate from the durable store.
  runtime::Executor* target = nullptr;
  for (runtime::Executor* e : cluster.registered_executors()) {
    if (e->state_store() != nullptr && !e->state_store()->size()) continue;
    if (e->state_store() != nullptr) {
      target = e;
      break;
    }
  }
  ASSERT_NE(target, nullptr);
  bool killed = false;
  for (int n = 0; n < cluster.num_nodes() && !killed; ++n) {
    for (int p = 0; p < cluster.slots_on_node(n) && !killed; ++p) {
      if (cluster.supervisor(n).worker_at(p) == &target->worker()) {
        killed = cluster.kill_worker(n, p);
      }
    }
  }
  ASSERT_TRUE(killed);

  rig.sim.run_until(80.0);
  EXPECT_GT(cluster.trace_log().count(trace::EventKind::kStateRestored), 0u);

  // Counts survived the crash: every pre-kill key is still present with at
  // least its checkpointed weight still growing under live traffic.
  const KeyedState after = auditor.collect_keyed_state();
  for (const auto& [key, n] : before) {
    const auto it = after.find(key);
    ASSERT_NE(it, after.end()) << "key lost across restore: " << key;
    EXPECT_GE(it->second, 1) << key;
  }
  EXPECT_TRUE(auditor.check_now().ok())
      << auditor.check_now().to_string();
}

TEST(StateIntegration, CrashMidCheckpointIgnoresTornSnapshot) {
  // Abort churn: a checkpoint interval short enough that worker kills land
  // mid-round. Torn rounds must be aborted (not completed), and restores
  // must keep working off the last completed round — the auditor's state
  // books still balance after quiesce.
  auto cfg = state_config(3);
  cfg.state.checkpoint_interval = 2.0;
  WordCountRig rig(3, cfg);

  FaultPlan plan;
  plan.kill_worker(21.0, 0, 0)
      .kill_worker(33.0, 1, 0)
      .kill_worker(45.0, 2, 1);
  plan.inject(rig.cluster());

  rig.sim.run_until(90.0);
  auto& cluster = rig.cluster();
  EXPECT_GT(cluster.trace_log().count(trace::EventKind::kCheckpointComplete),
            0u);
  // Under this schedule some rounds must have died mid-flight.
  EXPECT_GT(cluster.trace_log().count(trace::EventKind::kCheckpointAborted) +
                cluster.trace_log().count(trace::EventKind::kStateRestored),
            0u);

  InvariantAuditor auditor(cluster);
  EXPECT_TRUE(auditor.check_now().ok()) << auditor.check_now().to_string();
}

TEST(StateIntegration, DedupDropsAreAttributed) {
  // Lossy network forces replays; replayed duplicates that reach a
  // stateful bolt must be suppressed and filed under kStateDedup, with
  // the suppression counter and the drop cause in exact double-entry.
  auto cfg = state_config(4);
  cfg.network.inter_node_drop_prob = 0.05;
  WordCountRig rig(4, cfg);
  rig.sim.run_until(120.0);

  auto& cluster = rig.cluster();
  EXPECT_GT(cluster.state_dedup_suppressed(), 0u);
  EXPECT_EQ(cluster.state_dedup_suppressed(),
            cluster.dropped_by(runtime::DropCause::kStateDedup));
  InvariantAuditor auditor(cluster);
  EXPECT_TRUE(auditor.check_now().ok()) << auditor.check_now().to_string();
}

/// Emits seqs 0..limit-1 once each, publishing how many it produced.
class SeqSpout final : public topo::Spout {
 public:
  SeqSpout(std::int64_t limit, std::shared_ptr<std::int64_t> emitted)
      : limit_(limit), emitted_(std::move(emitted)) {}
  std::optional<topo::Tuple> next_tuple() override {
    if (next_ >= limit_) return std::nullopt;
    *emitted_ = next_ + 1;
    return topo::Tuple{next_++};
  }

 private:
  std::int64_t limit_;
  std::int64_t next_ = 0;
  std::shared_ptr<std::int64_t> emitted_;
};

/// Stateful pass-through: one managed-state update, one child per input.
class SeqForwardBolt final : public topo::StatefulBolt {
 public:
  void execute(const topo::Tuple& input, topo::BoltContext& ctx) override {
    state().increment(topo::Value("n"));
    ctx.emit(topo::Tuple{input.get_int(0)});
  }
  [[nodiscard]] double cpu_cost_mega_cycles(
      const topo::Tuple& /*input*/) const override {
    return 0.05;
  }
};

/// Stateless sink recording every distinct seq it ever receives.
class SeqSinkBolt final : public topo::Bolt {
 public:
  explicit SeqSinkBolt(std::shared_ptr<std::set<std::int64_t>> seen)
      : seen_(std::move(seen)) {}
  void execute(const topo::Tuple& input,
               topo::BoltContext& /*ctx*/) override {
    seen_->insert(input.get_int(0));
  }
  [[nodiscard]] double cpu_cost_mega_cycles(
      const topo::Tuple& /*input*/) const override {
    return 0.05;
  }

 private:
  std::shared_ptr<std::set<std::int64_t>> seen_;
};

TEST(StateIntegration, ReplayedDuplicatesStillFeedStatelessSinks) {
  // The acked-but-undelivered scenario: a tuple's child is lost *below*
  // the stateful bolt, the tree replays, and the replay hits the bolt's
  // dedup set. The suppressed duplicate must still re-emit its child —
  // if it contributed no downstream edges, the replayed tree would
  // complete while the stateless sink never received the tuple in any
  // attempt. With abandonment effectively impossible (50 replays versus
  // ~8% loss), every emitted seq must eventually reach the sink.
  sim::Simulation sim;
  auto cfg = state_config(7);
  cfg.failure_detection = false;
  cfg.network.inter_node_drop_prob = 0.08;
  cfg.network.intra_process_drop_prob = 0.02;
  core::StormSystem sys(sim, cfg);

  auto seen = std::make_shared<std::set<std::int64_t>>();
  auto emitted = std::make_shared<std::int64_t>(0);

  topo::TopologyBuilder b;
  b.set_spout("seq",
              [emitted] { return std::make_unique<SeqSpout>(200, emitted); },
              1)
      .output_fields({"seq"})
      .emit_interval(0.05);
  b.set_bolt("fwd", [] { return std::make_unique<SeqForwardBolt>(); }, 2)
      .output_fields({"seq"})
      .stateful()
      .shuffle_grouping("seq");
  b.set_bolt("sink", [seen] { return std::make_unique<SeqSinkBolt>(seen); },
             2)
      .shuffle_grouping("fwd");
  sys.submit(b.build("seq-chain", /*num_workers=*/4, /*num_ackers=*/1));

  sim.run_until(200.0);

  auto& cluster = sys.cluster();
  // The fix is only exercised if replays actually hit the dedup set.
  EXPECT_GT(cluster.state_dedup_suppressed(), 0u);
  ASSERT_EQ(*emitted, 200);
  EXPECT_EQ(static_cast<std::int64_t>(seen->size()), *emitted);
  InvariantAuditor auditor(cluster);
  EXPECT_TRUE(auditor.check_now().ok()) << auditor.check_now().to_string();
}

TEST(StateIntegration, BarrierAlignmentAtTwoInputBolt) {
  // A stateful bolt fed by two spout components must align barriers from
  // every upstream task before snapshotting. Under a fault-free run every
  // round completes: alignment can never wedge or abort.
  sim::Simulation sim;
  auto cfg = state_config(5);
  cfg.failure_detection = false;
  core::StormSystem sys(sim, cfg);

  topo::TopologyBuilder b;
  b.set_spout("left",
              [] {
                return std::make_unique<workload::RandomStringSpout>(
                    32, 0.05, 111);
              },
              1)
      .output_fields({"str"})
      .emit_interval(0.02);
  b.set_spout("right",
              [] {
                return std::make_unique<workload::RandomStringSpout>(
                    32, 0.05, 222);
              },
              1)
      .output_fields({"str"})
      .emit_interval(0.03);
  b.set_bolt("merge",
             [] { return std::make_unique<workload::CounterBolt>(0.05); },
             2)
      .stateful()
      .shuffle_grouping("left")
      .shuffle_grouping("right");
  sys.submit(b.build("two-input", /*num_workers=*/4, /*num_ackers=*/1));

  sim.run_until(60.0);
  auto& cluster = sys.cluster();
  const auto completes =
      cluster.trace_log().of_kind(trace::EventKind::kCheckpointComplete);
  ASSERT_GE(completes.size(), 2u);
  // Rounds injected before the workers finish deploying legitimately
  // abort; once the topology is live, two-input alignment must never
  // wedge a round — every abort has to predate the first completion.
  for (const auto& e :
       cluster.trace_log().of_kind(trace::EventKind::kCheckpointAborted)) {
    EXPECT_LT(e.time, completes.front().time)
        << "round aborted after steady state: " << e.detail;
  }
  InvariantAuditor auditor(cluster);
  EXPECT_TRUE(auditor.check_now().ok()) << auditor.check_now().to_string();
}

// ----------------------------------------------------------- Determinism

struct TraceRun {
  std::uint64_t events = 0;
  std::uint64_t completed = 0;
  std::string trace;
};

TraceRun run_with_state(std::uint64_t seed, bool with_faults) {
  auto cfg = state_config(seed);
  WordCountRig rig(seed, cfg);
  if (with_faults) {
    RandomPlanOptions opt;
    opt.start = 20.0;
    opt.end = 80.0;
    opt.crashes = 1;
    opt.min_downtime = 10.0;
    opt.max_downtime = 20.0;
    opt.worker_kills = 2;
    opt.partitions = 1;
    opt.loss_spikes = 1;
    opt.max_drop_prob = 0.05;
    FaultPlan::random(opt, seed, cfg.num_nodes, cfg.slots_per_node)
        .inject(rig.cluster());
  }
  rig.sim.run_until(100.0);
  TraceRun r;
  r.events = rig.sim.events_executed();
  r.completed = rig.cluster().completion().total_completed();
  std::ostringstream os;
  rig.cluster().trace_log().dump(os);
  r.trace = os.str();
  return r;
}

TEST(StateDeterminism, SameSeedByteIdenticalWithCheckpointing) {
  const TraceRun a = run_with_state(11, /*with_faults=*/false);
  const TraceRun b = run_with_state(11, /*with_faults=*/false);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_GT(a.completed, 0u);
}

TEST(StateDeterminism, SameSeedByteIdenticalUnderFaultsAndRestore) {
  // Restore determinism: crash + replay + rehydrate paths must all be
  // seed-deterministic — byte-identical traces across identical runs.
  const TraceRun a = run_with_state(12, /*with_faults=*/true);
  const TraceRun b = run_with_state(12, /*with_faults=*/true);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.trace, b.trace);
}

}  // namespace
}  // namespace tstorm::chaos
