// Tests for the extension features: pluggable estimators (the paper's
// stated future work), the energy/operational-cost meter (the paper's
// consolidation motivation), whole-node failure handling, and the latency
// histogram.
#include <gtest/gtest.h>

#include "core/energy_meter.h"
#include "core/estimator.h"
#include "core/system.h"
#include "metrics/histogram.h"
#include "workload/topologies.h"

namespace tstorm::core {
namespace {

// -------------------------------------------------------------- Estimators

TEST(Estimators, EwmaMatchesPaperFormula) {
  EwmaEstimator e(0.5);
  e.update(10.0);
  e.update(20.0);
  EXPECT_DOUBLE_EQ(e.value(), 15.0);
}

TEST(Estimators, SlidingWindowMean) {
  SlidingWindowEstimator e(3);
  EXPECT_DOUBLE_EQ(e.value(), 0.0);
  e.update(3.0);
  e.update(6.0);
  EXPECT_DOUBLE_EQ(e.value(), 4.5);
  e.update(9.0);
  EXPECT_DOUBLE_EQ(e.value(), 6.0);
  e.update(12.0);  // 3 falls out of the window
  EXPECT_DOUBLE_EQ(e.value(), 9.0);
}

TEST(Estimators, SlidingWindowHardForgetting) {
  SlidingWindowEstimator e(2);
  e.update(1000.0);
  e.update(1.0);
  e.update(1.0);
  EXPECT_DOUBLE_EQ(e.value(), 1.0);  // the old regime is gone completely
}

TEST(Estimators, HoltPredictsRampingLoad) {
  HoltTrendEstimator holt(0.5, 0.5);
  EwmaEstimator ewma(0.5);
  // A steadily climbing load: Holt's forecast should lead EWMA's lag.
  double last_holt = 0, last_ewma = 0;
  for (double x = 100; x <= 1000; x += 100) {
    last_holt = holt.update(x);
    last_ewma = ewma.update(x);
  }
  EXPECT_GT(last_holt, last_ewma);
  EXPECT_GT(last_holt, 900.0);  // at or above the latest sample
}

TEST(Estimators, HoltNeverNegative) {
  HoltTrendEstimator holt(0.5, 0.5);
  holt.update(100.0);
  holt.update(0.0);
  holt.update(0.0);
  EXPECT_GE(holt.value(), 0.0);
}

TEST(Estimators, FactorySelectionFromConfig) {
  CoreConfig cfg;
  for (const char* name : {"ewma", "sliding-window", "holt"}) {
    cfg.estimator = name;
    auto factory = make_estimator_factory(cfg);
    auto est = factory();
    ASSERT_NE(est, nullptr);
    est->update(5.0);
    EXPECT_DOUBLE_EQ(est->value(), 5.0);  // all seed on the first sample
  }
  cfg.estimator = "neural";  // not (yet) a thing
  EXPECT_THROW(make_estimator_factory(cfg), std::invalid_argument);
}

TEST(Estimators, MetricsDbWithCustomEstimator) {
  MetricsDb db(make_sliding_window_factory(2));
  db.update_executor_load(1, 100.0);
  db.update_executor_load(1, 50.0);
  db.update_executor_load(1, 30.0);
  EXPECT_DOUBLE_EQ(db.executor_load(1), 40.0);  // mean of last two
}

TEST(Estimators, TStormSystemRunsWithHoltEstimator) {
  sim::Simulation sim;
  CoreConfig core;
  core.estimator = "holt";
  TStormSystem sys(sim, {}, core);
  sys.submit(workload::make_throughput_test());
  sim.run_until(120.0);
  EXPECT_GT(sys.cluster().completion().total_completed(), 1000u);
  EXPECT_TRUE(sys.db().has_samples());
}

// ------------------------------------------------------------ EnergyMeter

TEST(EnergyMeter, CountsOnlyNodesHostingExecutors) {
  sim::Simulation sim;
  runtime::Cluster cluster(sim, {});
  EnergyMeter meter(cluster);
  meter.start();
  sim.run_until(100.0);
  EXPECT_DOUBLE_EQ(meter.node_seconds(), 0.0);  // nothing scheduled
  EXPECT_DOUBLE_EQ(meter.joules(), 0.0);
}

TEST(EnergyMeter, ConsolidationReducesEnergy) {
  struct Cost {
    double node_seconds;
    double kwh;
  };
  auto measure = [](double gamma) {
    sim::Simulation sim;
    CoreConfig core;
    core.gamma = gamma;
    TStormSystem sys(sim, {}, core);
    EnergyMeter meter(sys.cluster());
    meter.start();
    sys.submit(workload::make_throughput_test());
    sim.run_until(800.0);
    return Cost{meter.node_seconds(), meter.kwh()};
  };
  const auto spread = measure(1.0);
  const auto packed = measure(6.0);
  EXPECT_GT(spread.node_seconds, 0.0);
  // gamma=6 consolidates to ~2 nodes after t~310 s: far less node time
  // and energy than 10 always-on nodes.
  EXPECT_LT(packed.node_seconds, spread.node_seconds * 0.75);
  EXPECT_LT(packed.kwh, spread.kwh * 0.8);
}

TEST(EnergyMeter, MeanNodesOnMatchesUsage) {
  sim::Simulation sim;
  core::StormSystem sys(sim);
  EnergyMeter meter(sys.cluster());
  meter.start();
  sys.submit(workload::make_throughput_test());
  sim.run_until(500.0);
  // Storm uses all 10 nodes once started (~12 s startup).
  EXPECT_GT(meter.mean_nodes_on(), 9.0);
  EXPECT_LE(meter.mean_nodes_on(), 10.0);
}

// ------------------------------------------------------------ Node failure

TEST(NodeFailure, FailedNodeDropsOutOfSchedulerInput) {
  sim::Simulation sim;
  runtime::Cluster cluster(sim, {});
  EXPECT_TRUE(cluster.fail_node(3));
  EXPECT_FALSE(cluster.fail_node(3));  // already down
  EXPECT_FALSE(cluster.node_available(3));
  const auto input = cluster.scheduler_input({});
  for (const auto& slot : input.slots) EXPECT_NE(slot.node, 3);
  EXPECT_DOUBLE_EQ(input.node_capacity_mhz(3), 0.0);
  EXPECT_TRUE(cluster.recover_node(3));
  EXPECT_EQ(cluster.scheduler_input({}).slots.size(), 40u);
}

TEST(NodeFailure, WorkersDieWithTheNode) {
  sim::Simulation sim;
  core::StormSystem sys(sim);
  sys.submit(workload::make_throughput_test());
  sim.run_until(60.0);
  auto& cluster = sys.cluster();
  ASSERT_FALSE(cluster.executors_on_node(0).empty());
  cluster.fail_node(0);
  EXPECT_TRUE(cluster.executors_on_node(0).empty());
  // Stock Storm: nobody reschedules; the dead node's supervisor is gone
  // and its executors stay missing.
  sim.run_until(120.0);
  EXPECT_TRUE(cluster.executors_on_node(0).empty());
}

TEST(NodeFailure, TStormReschedulesAroundDeadNode) {
  sim::Simulation sim;
  CoreConfig core;
  core.gamma = 2.0;
  TStormSystem sys(sim, {}, core);
  const auto id = sys.submit(workload::make_throughput_test());
  sim.run_until(100.0);
  auto& cluster = sys.cluster();

  // Pick a node hosting executors of the topology and kill the machine.
  sched::NodeId victim = -1;
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    if (!cluster.executors_on_node(n).empty()) {
      victim = n;
      break;
    }
  }
  ASSERT_GE(victim, 0);
  cluster.fail_node(victim);

  // The generator notices the dead assignment within a monitor period,
  // publishes a repaired schedule, the custom scheduler applies it, and
  // supervisors rebuild the workers elsewhere.
  sim.run_until(200.0);
  EXPECT_TRUE(cluster.executors_on_node(victim).empty());
  const auto* record = cluster.coordination().get(id);
  ASSERT_NE(record, nullptr);
  for (const auto& [task, slot] : record->placement) {
    EXPECT_NE(cluster.slot_node(slot), victim);
  }
  // Every task has a live instance again and completions continue.
  const auto completed = cluster.completion().total_completed();
  sim.run_until(300.0);
  EXPECT_GT(cluster.completion().total_completed(), completed);
}

TEST(NodeFailure, RecoveredNodeBecomesSchedulableAgain) {
  sim::Simulation sim;
  CoreConfig core;
  TStormSystem sys(sim, {}, core);
  sys.submit(workload::make_throughput_test());
  sim.run_until(100.0);
  sys.cluster().fail_node(5);
  sim.run_until(200.0);
  sys.cluster().recover_node(5);
  EXPECT_TRUE(sys.cluster().node_available(5));
  // Nothing forces executors back, but the node's slots are offered again.
  const auto input = sys.cluster().scheduler_input({});
  bool node5_present = false;
  for (const auto& slot : input.slots) node5_present |= slot.node == 5;
  EXPECT_TRUE(node5_present);
}

}  // namespace
}  // namespace tstorm::core

namespace tstorm::metrics {
namespace {

// -------------------------------------------------------- LatencyHistogram

TEST(LatencyHistogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogram, PercentilesOrdered) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  EXPECT_LE(h.percentile(50), h.percentile(90));
  EXPECT_LE(h.percentile(90), h.percentile(99));
  EXPECT_LE(h.percentile(99), h.percentile(100));
}

TEST(LatencyHistogram, PercentileAccurateWithinBinResolution) {
  LatencyHistogram h;
  for (int i = 1; i <= 10000; ++i) h.add(static_cast<double>(i) / 10.0);
  // p50 of uniform [0.1, 1000] is ~500; bins are ~4.4% wide.
  EXPECT_NEAR(h.percentile(50), 500.0, 500.0 * 0.06);
  EXPECT_NEAR(h.percentile(99), 990.0, 990.0 * 0.06);
}

TEST(LatencyHistogram, OutOfRangeClamped) {
  LatencyHistogram h;
  h.add(1e-9);
  h.add(1e12);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.max(), 1e12);
  EXPECT_GT(h.percentile(100), 9e5);
}

TEST(LatencyHistogram, MeanAndMaxExact) {
  LatencyHistogram h;
  h.add(1.0);
  h.add(3.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
}

}  // namespace
}  // namespace tstorm::metrics
