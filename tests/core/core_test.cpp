// Tests for the T-Storm control plane: metrics database, load monitors,
// schedule generator (hot-swap, gamma, publish rules, overload trigger),
// custom scheduler, and the Table II defaults.
#include <gtest/gtest.h>

#include "core/system.h"
#include "workload/topologies.h"

namespace tstorm::core {
namespace {

// ---------------------------------------------------------- Table II pins

TEST(CoreConfig, TableTwoDefaults) {
  const CoreConfig c;
  EXPECT_DOUBLE_EQ(c.alpha, 0.5);            // estimation coefficient
  EXPECT_DOUBLE_EQ(c.monitor_period, 20.0);  // load monitoring period
  EXPECT_DOUBLE_EQ(c.fetch_period, 10.0);    // schedule fetching period
  EXPECT_DOUBLE_EQ(c.generation_period, 300.0);  // schedule generation
  EXPECT_EQ(c.algorithm, "traffic-aware");
}

TEST(ClusterConfig, PaperTestbedDefaults) {
  const runtime::ClusterConfig c;
  EXPECT_EQ(c.num_nodes, 10);  // 10 available worker nodes
  EXPECT_DOUBLE_EQ(c.supervisor_sync_period, 10.0);
  EXPECT_DOUBLE_EQ(c.tuple_timeout, 30.0);  // Storm default
  EXPECT_DOUBLE_EQ(c.shutdown_delay, 20.0);  // 2x checking period
  EXPECT_DOUBLE_EQ(c.spout_halt_delay, 10.0);
  EXPECT_DOUBLE_EQ(c.per_core_mhz, 2000.0);  // 2.0 GHz Xeons
}

// -------------------------------------------------------------- MetricsDb

TEST(MetricsDb, EwmaUpdatesPerKey) {
  MetricsDb db(0.5);
  db.update_executor_load(1, 100.0);
  EXPECT_DOUBLE_EQ(db.executor_load(1), 100.0);
  db.update_executor_load(1, 200.0);
  EXPECT_DOUBLE_EQ(db.executor_load(1), 150.0);
  EXPECT_DOUBLE_EQ(db.executor_load(2), 0.0);  // unknown -> 0
}

TEST(MetricsDb, TrafficSnapshotFiltersZeroRates) {
  MetricsDb db(0.5);
  db.update_traffic(1, 2, 50.0);
  db.update_traffic(2, 3, 0.0);
  const auto snap = db.traffic_snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].src, 1);
  EXPECT_EQ(snap[0].dst, 2);
  EXPECT_DOUBLE_EQ(snap[0].rate, 50.0);
}

TEST(MetricsDb, TrafficIsDirectional) {
  MetricsDb db(0.5);
  db.update_traffic(1, 2, 10.0);
  db.update_traffic(2, 1, 30.0);
  const auto snap = db.traffic_snapshot();
  EXPECT_EQ(snap.size(), 2u);
}

TEST(MetricsDb, NodeLoadTracked) {
  MetricsDb db(0.5);
  db.update_node_load(3, 4000.0);
  db.update_node_load(3, 6000.0);
  EXPECT_DOUBLE_EQ(db.node_load(3), 5000.0);
}

TEST(MetricsDb, ForgetTaskRemovesLoadsAndTraffic) {
  MetricsDb db(0.5);
  db.update_executor_load(1, 10.0);
  db.update_traffic(1, 2, 5.0);
  db.update_traffic(3, 1, 5.0);
  db.update_traffic(3, 4, 5.0);
  db.forget_task(1);
  EXPECT_DOUBLE_EQ(db.executor_load(1), 0.0);
  EXPECT_EQ(db.traffic_snapshot().size(), 1u);
}

TEST(MetricsDb, SetAlphaAppliesToExistingEstimators) {
  MetricsDb db(0.5);
  db.update_executor_load(1, 100.0);
  db.set_alpha(1.0);  // freeze
  db.update_executor_load(1, 0.0);
  EXPECT_DOUBLE_EQ(db.executor_load(1), 100.0);
}

TEST(MetricsDb, PublishedScheduleRoundTrip) {
  MetricsDb db(0.5);
  EXPECT_EQ(db.published_version(), 0);
  db.publish_schedule({{1, 5}, {2, 6}}, 42);
  EXPECT_EQ(db.published_version(), 42);
  EXPECT_EQ(db.published_schedule().at(1), 5);
}

// ------------------------------------------------------------ LoadMonitor

TEST(LoadMonitor, MeasuresExecutorMhzAndTraffic) {
  sim::Simulation sim;
  CoreConfig core;
  TStormSystem sys(sim, {}, core);
  sys.submit(workload::make_throughput_test());
  sim.run_until(100.0);
  // After several 20 s samples the DB must hold loads and traffic.
  auto& db = sys.db();
  EXPECT_TRUE(db.has_samples());
  const auto traffic = db.traffic_snapshot();
  EXPECT_GT(traffic.size(), 10u);
  double total_load = 0;
  for (auto id : sys.cluster().topology_ids()) {
    for (auto t : sys.cluster().tasks_of(id)) {
      total_load += db.executor_load(t);
    }
  }
  EXPECT_GT(total_load, 100.0);  // the topology consumes real CPU
}

TEST(LoadMonitor, NodeLoadIsSumOfResidentExecutors) {
  sim::Simulation sim;
  TStormSystem sys(sim, {}, {});
  sys.submit(workload::make_throughput_test());
  sim.run_until(100.0);
  double node_total = 0;
  for (int n = 0; n < sys.cluster().num_nodes(); ++n) {
    node_total += sys.db().node_load(n);
  }
  EXPECT_GT(node_total, 100.0);
}

// ------------------------------------------------------ ScheduleGenerator

TEST(ScheduleGenerator, UnknownAlgorithmThrows) {
  sim::Simulation sim;
  runtime::Cluster cluster(sim, {});
  MetricsDb db;
  CoreConfig cfg;
  cfg.algorithm = "no-such-algorithm";
  EXPECT_THROW(ScheduleGenerator(cluster, db, cfg), std::invalid_argument);
}

TEST(ScheduleGenerator, HotSwapByName) {
  sim::Simulation sim;
  runtime::Cluster cluster(sim, {});
  MetricsDb db;
  ScheduleGenerator gen(cluster, db, {});
  EXPECT_EQ(gen.algorithm_name(), "traffic-aware");
  EXPECT_TRUE(gen.set_algorithm("round-robin"));
  EXPECT_EQ(gen.algorithm_name(), "round-robin");
  EXPECT_FALSE(gen.set_algorithm("bogus"));
  EXPECT_EQ(gen.algorithm_name(), "round-robin");  // unchanged
}

TEST(ScheduleGenerator, GammaAdjustableOnTheFly) {
  sim::Simulation sim;
  runtime::Cluster cluster(sim, {});
  MetricsDb db;
  ScheduleGenerator gen(cluster, db, {});
  EXPECT_DOUBLE_EQ(gen.gamma(), 1.0);
  gen.set_gamma(2.5);
  EXPECT_DOUBLE_EQ(gen.gamma(), 2.5);
}

TEST(ScheduleGenerator, NoTopologiesNothingPublished) {
  sim::Simulation sim;
  runtime::Cluster cluster(sim, {});
  MetricsDb db;
  ScheduleGenerator gen(cluster, db, {});
  EXPECT_FALSE(gen.generate_now());
  EXPECT_EQ(db.published_version(), 0);
}

TEST(ScheduleGenerator, ConsolidationPublishesWithLargeGamma) {
  sim::Simulation sim;
  CoreConfig core;
  core.gamma = 6.0;
  TStormSystem sys(sim, {}, core);
  sys.submit(workload::make_throughput_test());
  sim.run_until(120.0);  // enough monitor samples
  EXPECT_TRUE(sys.generator().generate_now());
  EXPECT_GT(sys.db().published_version(), 0);
  // The published schedule uses far fewer nodes than the initial one.
  sched::SchedulerInput in =
      sys.cluster().scheduler_input(sys.cluster().topology_ids());
  EXPECT_LE(sched::nodes_used(in, sys.db().published_schedule()), 4);
}

TEST(ScheduleGenerator, HysteresisSuppressesMarginalChanges) {
  sim::Simulation sim;
  CoreConfig core;
  core.gamma = 1.0;
  core.min_improvement = 0.9;              // nearly impossible to beat
  core.consolidation_min_nodes_freed = 99;  // and no consolidation path
  TStormSystem sys(sim, {}, core);
  sys.submit(workload::make_throughput_test());
  sim.run_until(120.0);
  EXPECT_FALSE(sys.generator().generate_now());
  EXPECT_EQ(sys.db().published_version(), 0);
}

TEST(ScheduleGenerator, OverloadTriggerBypassesHysteresis) {
  sim::Simulation sim;
  CoreConfig core;
  core.min_improvement = 0.9;
  TStormSystem sys(sim, {}, core);
  sys.submit(workload::make_throughput_test());
  sim.run_until(120.0);
  // A forced overload-mode generation publishes despite the hysteresis
  // (if the schedule differs at all).
  const bool published = sys.generator().generate_now(true);
  EXPECT_EQ(published, sys.db().published_version() > 0);
}

// -------------------------------------------------------- CustomScheduler

TEST(CustomScheduler, AppliesOnlyNewerVersions) {
  sim::Simulation sim;
  CoreConfig core;
  TStormSystem sys(sim, {}, core);
  const auto id = sys.submit(workload::make_throughput_test());
  sim.run_until(50.0);

  auto& db = sys.db();
  EXPECT_FALSE(sys.scheduler().fetch_and_apply());  // nothing published

  // Publish the identity schedule under a fresh version.
  sched::Placement p = sys.cluster().coordination().get(id)->placement;
  const auto v = sys.cluster().nimbus().next_version();
  db.publish_schedule(p, v);
  EXPECT_TRUE(sys.scheduler().fetch_and_apply());
  EXPECT_EQ(sys.scheduler().applied_version(), v);
  EXPECT_EQ(sys.cluster().coordination().get(id)->version, v);

  // Same version again: no-op.
  EXPECT_FALSE(sys.scheduler().fetch_and_apply());
}

// ----------------------------------------------------------------- System

TEST(System, TStormUsesOneWorkerPerNodeInitially) {
  sim::Simulation sim;
  TStormSystem sys(sim, {}, {});
  const auto id = sys.submit(workload::make_throughput_test());
  const auto* rec = sys.cluster().coordination().get(id);
  ASSERT_NE(rec, nullptr);
  sched::SchedulerInput in = sys.cluster().scheduler_input({id});
  EXPECT_TRUE(sched::one_slot_per_topology_per_node(in, rec->placement));
  EXPECT_EQ(sched::slots_used(rec->placement), 10);  // min(40, 10 nodes)
}

TEST(System, StormUsesAllRequestedWorkers) {
  sim::Simulation sim;
  StormSystem sys(sim);
  const auto id = sys.submit(workload::make_throughput_test());
  const auto* rec = sys.cluster().coordination().get(id);
  EXPECT_EQ(sched::slots_used(rec->placement), 40);
}

TEST(System, SmoothReassignmentFlagFollowsSystemKind) {
  sim::Simulation sim;
  StormSystem storm(sim);
  EXPECT_FALSE(storm.cluster().config().smooth_reassignment);
  sim::Simulation sim2;
  TStormSystem tstorm(sim2, {}, {});
  EXPECT_TRUE(tstorm.cluster().config().smooth_reassignment);
}

TEST(System, PinnedSubmissionUsesGivenSlots) {
  sim::Simulation sim;
  TStormSystem sys(sim, {}, {});
  auto wc = workload::make_word_count();
  sched::Placement pin;
  // All tasks onto node 0 slot 0 (round-robin fills unpinned tasks).
  pin[0] = 0;
  const auto id = sys.submit_pinned(std::move(wc.topology), pin);
  const auto* rec = sys.cluster().coordination().get(id);
  for (const auto& [task, slot] : rec->placement) EXPECT_EQ(slot, 0);
}

}  // namespace
}  // namespace tstorm::core
