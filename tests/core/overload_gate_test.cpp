// The hardened overload trigger: needs BOTH high node CPU and deep
// executor queues, for several consecutive checks, outside the
// post-reassignment settling window.
#include <gtest/gtest.h>

#include "core/schedule_generator.h"
#include "core/system.h"
#include "workload/topologies.h"

namespace tstorm::core {
namespace {

struct GateFixture {
  sim::Simulation sim;
  runtime::Cluster cluster{sim, {}};
  MetricsDb db{0.5};
  CoreConfig cfg;

  GateFixture() {
    cfg.monitor_period = 20.0;
    cfg.generation_period = 100000.0;  // periodic path out of the way
    cfg.overload_min_interval = 1.0;
  }
};

TEST(OverloadGate, HighLoadAloneDoesNotTrigger) {
  GateFixture f;
  ScheduleGenerator gen(f.cluster, f.db, f.cfg);
  gen.start();
  f.cluster.submit(workload::make_throughput_test());
  sim::PeriodicTask feeder(f.sim, 20.0, [&] {
    f.db.update_executor_load(0, 500.0);  // has_samples()
    f.db.update_node_load(0, 7900.0);     // way past 0.70 * 8000
    f.db.update_node_queue(0, 1.0);       // but queues are empty
  });
  feeder.start(10.0);
  f.sim.run_until(400.0);
  EXPECT_EQ(gen.overload_triggers(), 0u);
}

TEST(OverloadGate, DeepQueuesAloneDoNotTrigger) {
  GateFixture f;
  ScheduleGenerator gen(f.cluster, f.db, f.cfg);
  gen.start();
  f.cluster.submit(workload::make_throughput_test());
  sim::PeriodicTask feeder(f.sim, 20.0, [&] {
    f.db.update_executor_load(0, 500.0);
    f.db.update_node_load(0, 1000.0);   // lightly loaded
    f.db.update_node_queue(0, 5000.0);  // deep queues (e.g. io-bound)
  });
  feeder.start(10.0);
  f.sim.run_until(400.0);
  EXPECT_EQ(gen.overload_triggers(), 0u);
}

TEST(OverloadGate, BothSignalsTriggerAfterStreak) {
  GateFixture f;
  ScheduleGenerator gen(f.cluster, f.db, f.cfg);
  gen.start();
  f.cluster.submit(workload::make_throughput_test());
  sim::PeriodicTask feeder(f.sim, 20.0, [&] {
    f.db.update_executor_load(0, 500.0);
    f.db.update_node_load(0, 7900.0);
    f.db.update_node_queue(0, 5000.0);
  });
  feeder.start(10.0);
  // Checks land at 21, 41, 61, ... streak of 3 completes at the third.
  f.sim.run_until(55.0);
  EXPECT_EQ(gen.overload_triggers(), 0u);  // streak not yet complete
  f.sim.run_until(100.0);
  EXPECT_GE(gen.overload_triggers(), 1u);
}

TEST(OverloadGate, StreakResetsWhenSignalClears) {
  GateFixture f;
  ScheduleGenerator gen(f.cluster, f.db, f.cfg);
  gen.start();
  f.cluster.submit(workload::make_throughput_test());
  int tick = 0;
  sim::PeriodicTask feeder(f.sim, 20.0, [&] {
    f.db.update_executor_load(0, 500.0);
    // Alternate: two hot samples, then a cold one — the streak of 3 never
    // completes.
    const bool hot = (tick++ % 3) != 2;
    f.db.update_node_load(0, hot ? 7900.0 : 100.0);
    f.db.update_node_queue(0, hot ? 5000.0 : 0.0);
  });
  feeder.start(10.0);
  f.sim.run_until(600.0);
  EXPECT_EQ(gen.overload_triggers(), 0u);
}

TEST(OverloadGate, SettleWindowSuppressesAfterPublish) {
  GateFixture f;
  f.cfg.gamma = 6.0;  // guarantees the generator publishes a consolidation
  ScheduleGenerator gen(f.cluster, f.db, f.cfg);
  gen.start();
  f.cluster.submit(workload::make_throughput_test());

  // Seed plausible loads/traffic so generate_now computes a placement.
  for (auto task : f.cluster.tasks_of(0)) {
    f.db.update_executor_load(task, 20.0);
  }
  f.sim.run_until(30.0);
  ASSERT_TRUE(gen.generate_now());  // consolidation published at t=30

  // Saturation signals right after the publish...
  sim::PeriodicTask feeder(f.sim, 20.0, [&] {
    f.db.update_node_load(0, 7900.0);
    f.db.update_node_queue(0, 5000.0);
  });
  feeder.start(5.0);
  // ...are ignored during the settle window...
  f.sim.run_until(30.0 + f.cfg.post_reassignment_settle - 5.0);
  EXPECT_EQ(gen.overload_triggers(), 0u);
  // ...and honoured afterwards (streak of 3 checks past the window).
  f.sim.run_until(30.0 + f.cfg.post_reassignment_settle + 100.0);
  EXPECT_GE(gen.overload_triggers(), 1u);
}

TEST(OverloadGate, DisabledTriggerNeverFires) {
  GateFixture f;
  f.cfg.enable_overload_trigger = false;
  ScheduleGenerator gen(f.cluster, f.db, f.cfg);
  gen.start();
  f.cluster.submit(workload::make_throughput_test());
  sim::PeriodicTask feeder(f.sim, 20.0, [&] {
    f.db.update_executor_load(0, 500.0);
    f.db.update_node_load(0, 7900.0);
    f.db.update_node_queue(0, 5000.0);
  });
  feeder.start(10.0);
  f.sim.run_until(400.0);
  EXPECT_EQ(gen.overload_triggers(), 0u);
}

}  // namespace
}  // namespace tstorm::core
