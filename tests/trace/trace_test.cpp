// TraceLog unit tests plus end-to-end control-plane trace assertions.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/system.h"
#include "trace/trace.h"
#include "workload/topologies.h"

namespace tstorm::trace {
namespace {

TEST(TraceLog, RecordAndQuery) {
  TraceLog log;
  log.record({1.0, EventKind::kWorkerStarted, 0, 2, 8, 100, "4 tasks"});
  log.record({2.0, EventKind::kWorkerStopped, 0, 2, 8, 100, ""});
  log.record({3.0, EventKind::kWorkerStarted, 1, 3, 12, 200, ""});
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.count(EventKind::kWorkerStarted), 2u);
  EXPECT_EQ(log.of_kind(EventKind::kWorkerStopped).size(), 1u);
  const auto mid = log.between(1.5, 2.5);
  ASSERT_EQ(mid.size(), 1u);
  EXPECT_EQ(mid[0].kind, EventKind::kWorkerStopped);
}

TEST(TraceLog, RingBufferBounded) {
  TraceLog log(10);
  for (int i = 0; i < 100; ++i) {
    log.record({static_cast<double>(i), EventKind::kWorkerStarted, -1, -1,
                -1, 0, ""});
  }
  EXPECT_EQ(log.size(), 10u);
  EXPECT_EQ(log.total_recorded(), 100u);
  EXPECT_DOUBLE_EQ(log.events().front().time, 90.0);
}

TEST(TraceLog, ListenerTap) {
  TraceLog log;
  int called = 0;
  log.set_listener([&](const Event&) { ++called; });
  log.record({0, EventKind::kNodeFailed, -1, 4, -1, 0, ""});
  EXPECT_EQ(called, 1);
}

TEST(TraceLog, FormatContainsFields) {
  const Event e{42.5, EventKind::kSchedulePublished, 3, -1, -1, 77,
                "traffic-aware"};
  const auto s = format_event(e);
  EXPECT_NE(s.find("schedule-published"), std::string::npos);
  EXPECT_NE(s.find("topology=3"), std::string::npos);
  EXPECT_NE(s.find("version=77"), std::string::npos);
  EXPECT_NE(s.find("traffic-aware"), std::string::npos);
}

TEST(TraceLog, DumpRespectsRange) {
  TraceLog log;
  log.record({1.0, EventKind::kNodeFailed, -1, 0, -1, 0, ""});
  log.record({5.0, EventKind::kNodeRecovered, -1, 0, -1, 0, ""});
  std::ostringstream os;
  log.dump(os, 0, 2.0);
  EXPECT_NE(os.str().find("node-failed"), std::string::npos);
  EXPECT_EQ(os.str().find("node-recovered"), std::string::npos);
}

TEST(TraceLog, KindNamesComplete) {
  for (auto kind :
       {EventKind::kTopologySubmitted, EventKind::kSchedulePublished,
        EventKind::kScheduleApplied, EventKind::kWorkerStarted,
        EventKind::kWorkerDraining, EventKind::kWorkerStopped,
        EventKind::kSpoutsHalted, EventKind::kOverloadTriggered,
        EventKind::kNodeFailed, EventKind::kNodeRecovered,
        EventKind::kTopologyKilled}) {
    EXPECT_STRNE(to_string(kind), "?");
  }
}

// --- End-to-end: the runtime actually emits the expected events. ---

TEST(TraceIntegration, SubmissionAndWorkerLifecycle) {
  sim::Simulation sim;
  core::StormSystem sys(sim);
  sys.submit(workload::make_throughput_test());
  sim.run_until(60.0);
  auto& log = sys.cluster().trace_log();
  EXPECT_EQ(log.count(EventKind::kTopologySubmitted), 1u);
  EXPECT_EQ(log.count(EventKind::kScheduleApplied), 1u);  // initial
  EXPECT_EQ(log.count(EventKind::kWorkerStarted), 40u);   // 40 workers
  EXPECT_EQ(log.count(EventKind::kWorkerStopped), 0u);
}

TEST(TraceIntegration, ConsolidationLeavesFullAuditTrail) {
  sim::Simulation sim;
  core::CoreConfig core;
  core.gamma = 6.0;
  core::TStormSystem sys(sim, {}, core);
  sys.submit(workload::make_throughput_test());
  sim.run_until(500.0);
  auto& log = sys.cluster().trace_log();
  // Generator published at t=300, custom scheduler applied it, supervisors
  // started replacement workers, drained and stopped the old ones, spouts
  // were halted during the handover.
  EXPECT_GE(log.count(EventKind::kSchedulePublished), 1u);
  EXPECT_GE(log.count(EventKind::kScheduleApplied), 2u);  // initial + new
  EXPECT_GT(log.count(EventKind::kWorkerDraining), 0u);
  EXPECT_GT(log.count(EventKind::kWorkerStopped), 0u);
  EXPECT_GT(log.count(EventKind::kSpoutsHalted), 0u);
  // The publication names the algorithm and node count.
  const auto pubs = log.of_kind(EventKind::kSchedulePublished);
  EXPECT_NE(pubs.front().detail.find("traffic-aware"), std::string::npos);
  EXPECT_NE(pubs.front().detail.find("nodes"), std::string::npos);
}

TEST(TraceIntegration, SmoothHandoverOrdering) {
  // Section IV-D's core guarantee, asserted from the trace: replacement
  // workers start BEFORE the displaced workers stop, and displaced
  // workers drain for the configured delay.
  sim::Simulation sim;
  core::CoreConfig core;
  core.gamma = 6.0;
  core::TStormSystem sys(sim, {}, core);
  sys.submit(workload::make_throughput_test());
  sim.run_until(500.0);
  auto& log = sys.cluster().trace_log();

  const auto pubs = log.of_kind(EventKind::kSchedulePublished);
  ASSERT_FALSE(pubs.empty());
  const double reassign_time = pubs.front().time;

  double first_new_start = 1e18;
  for (const auto& e : log.of_kind(EventKind::kWorkerStarted)) {
    if (e.time > reassign_time) {
      first_new_start = std::min(first_new_start, e.time);
    }
  }
  double first_stop = 1e18;
  for (const auto& e : log.of_kind(EventKind::kWorkerStopped)) {
    if (e.time > reassign_time) first_stop = std::min(first_stop, e.time);
  }
  ASSERT_LT(first_new_start, 1e18);
  ASSERT_LT(first_stop, 1e18);
  EXPECT_LT(first_new_start, first_stop);

  // Draining precedes stopping by the shutdown delay (20 s).
  const auto drains = log.of_kind(EventKind::kWorkerDraining);
  ASSERT_FALSE(drains.empty());
  const auto& d = drains.front();
  bool matched = false;
  for (const auto& s : log.of_kind(EventKind::kWorkerStopped)) {
    if (s.slot == d.slot && s.time > d.time) {
      EXPECT_NEAR(s.time - d.time,
                  sys.cluster().config().shutdown_delay, 1e-6);
      matched = true;
      break;
    }
  }
  EXPECT_TRUE(matched);
}

TEST(TraceIntegration, NodeFailureRecorded) {
  sim::Simulation sim;
  core::TStormSystem sys(sim);
  sys.submit(workload::make_throughput_test());
  sim.run_until(60.0);
  sys.cluster().fail_node(2);
  sys.cluster().recover_node(2);
  auto& log = sys.cluster().trace_log();
  ASSERT_EQ(log.count(EventKind::kNodeFailed), 1u);
  EXPECT_EQ(log.of_kind(EventKind::kNodeFailed)[0].node, 2);
  EXPECT_EQ(log.count(EventKind::kNodeRecovered), 1u);
}

}  // namespace
}  // namespace tstorm::trace
