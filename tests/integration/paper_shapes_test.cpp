// Integration tests pinning the paper's qualitative results (shortened
// runs of the bench scenarios — the full 1000 s versions live in bench/).
// If a code change breaks one of the reproduced shapes, these fail.
#include <gtest/gtest.h>

#include "core/system.h"
#include "sched/manual.h"
#include "workload/topologies.h"

namespace tstorm {
namespace {

double storm_tt_mean(double duration) {
  sim::Simulation sim;
  core::StormSystem sys(sim);
  sys.submit(workload::make_throughput_test());
  sim.run_until(duration);
  return sys.cluster()
      .completion()
      .proc_time_ms()
      .mean_between(duration / 2, duration)
      .value_or(-1);
}

struct TStormOutcome {
  double mean_ms = -1;
  int nodes = 0;
};

TStormOutcome tstorm_tt(double gamma, double duration) {
  sim::Simulation sim;
  core::CoreConfig core;
  core.gamma = gamma;
  core::TStormSystem sys(sim, {}, core);
  sys.submit(workload::make_throughput_test());
  sim.run_until(duration);
  TStormOutcome out;
  out.mean_ms = sys.cluster()
                    .completion()
                    .proc_time_ms()
                    .mean_between(duration - 150, duration)
                    .value_or(-1);
  out.nodes = sys.cluster().nodes_in_use();
  return out;
}

// Fig. 5(a): T-Storm beats Storm decisively at gamma=1 on the same nodes.
TEST(PaperShapes, Fig5TStormBeatsStormOnThroughputTest) {
  const double storm = storm_tt_mean(400);
  const auto tstorm = tstorm_tt(1.0, 400);
  ASSERT_GT(storm, 0);
  ASSERT_GT(tstorm.mean_ms, 0);
  // Paper: 83% reduction. Require at least 60% in the shortened run.
  EXPECT_LT(tstorm.mean_ms, storm * 0.4);
  EXPECT_EQ(tstorm.nodes, 10);
}

// Fig. 5(c): gamma=6 consolidates the light topology onto ~2 nodes while
// keeping the speedup.
TEST(PaperShapes, Fig5ConsolidationKeepsSpeedup) {
  const double storm = storm_tt_mean(500);
  const auto packed = tstorm_tt(6.0, 500);
  EXPECT_LE(packed.nodes, 3);
  EXPECT_LT(packed.mean_ms, storm * 0.5);
}

// Section III Observation 1 (Fig. 2): spreading a chain over more
// workers/nodes strictly increases processing time.
TEST(PaperShapes, Fig2SpreadingHurts) {
  auto run_pinned = [](const sched::Placement& pin) {
    sim::Simulation sim;
    core::StormSystem sys(sim);
    sys.submit_pinned(workload::make_chain(), pin);
    sim.run_until(300.0);
    return sys.cluster()
        .completion()
        .proc_time_ms()
        .mean_between(100, 300)
        .value_or(-1);
  };
  sched::Placement n1w1, n5w5, n5w10;
  for (int t = 0; t < 10; ++t) {
    n1w1[t] = 0;
    n5w5[t] = (t % 5) * 4;
    n5w10[t] = (t % 5) * 4 + t / 5;
  }
  const double one = run_pinned(n1w1);
  const double five = run_pinned(n5w5);
  const double ten = run_pinned(n5w10);
  EXPECT_LT(one, five);
  EXPECT_LT(five, ten);
}

// Section III Observation 2 (Fig. 3): overloading a node makes processing
// time skyrocket and tuples fail.
TEST(PaperShapes, Fig3OverloadSkyrockets) {
  sim::Simulation sim;
  runtime::ClusterConfig cfg;
  cfg.smooth_reassignment = false;
  cfg.max_replays = 0;
  runtime::Cluster cluster(sim, cfg);
  workload::ChainOptions opt;
  opt.spout_parallelism = 5;
  opt.bolt_cost_mc = 8.0;
  opt.max_pending = 0;
  sched::Placement pin;
  for (int t = 0; t < 14; ++t) pin[t] = 0;
  sched::ManualScheduler manual(std::move(pin));
  cluster.submit(workload::make_chain(opt), &manual);
  sim.run_until(180.0);
  EXPECT_GT(cluster.completion().total_failed(), 1000u);
  const auto late =
      cluster.completion().proc_time_ms().mean_between(120, 180);
  ASSERT_TRUE(late.has_value());
  EXPECT_GT(*late, 1000.0);  // multi-second queueing delays
}

// Figs. 9/10: pinned to one worker, overloaded by a second stream; the
// monitors detect it, the generator scales out, latency recovers.
TEST(PaperShapes, Fig9OverloadDetectionAndRecovery) {
  sim::Simulation sim;
  core::CoreConfig core;
  core.gamma = 2.0;
  core::TStormSystem sys(sim, {}, core);
  workload::WordCountOptions opt;
  opt.max_pending = 0;
  opt.emit_interval = 0.004;
  auto wc = workload::make_word_count(opt);
  workload::QueueProducer s1(sim, *wc.queue, 200.0);
  workload::QueueProducer s2(sim, *wc.queue, 200.0);
  s1.start();
  s2.start(60.0);
  sched::Placement pin;
  for (int t = 0; t < 27; ++t) pin[t] = 0;
  sys.submit_pinned(std::move(wc.topology), pin);

  sim.run_until(150.0);
  const auto during = sys.cluster()
                          .completion()
                          .proc_time_ms()
                          .mean_between(100, 150)
                          .value_or(0);
  EXPECT_GT(during, 500.0);  // overloaded
  EXPECT_EQ(sys.cluster().nodes_in_use(), 1);

  sim.run_until(600.0);
  EXPECT_GT(sys.generator().overload_triggers(), 0u);
  EXPECT_GT(sys.cluster().nodes_in_use(), 1);  // scaled out
  const auto after = sys.cluster()
                         .completion()
                         .proc_time_ms()
                         .mean_between(450, 600)
                         .value_or(1e9);
  EXPECT_LT(after, during / 10);  // sharp drop
}

// Transparency: the same topology object runs under both systems without
// modification.
TEST(PaperShapes, TransparencyAcrossSystems) {
  auto make = [] { return workload::make_throughput_test(); };
  sim::Simulation s1;
  core::StormSystem storm(s1);
  storm.submit(make());
  s1.run_until(100.0);
  sim::Simulation s2;
  core::TStormSystem tstorm(s2);
  tstorm.submit(make());
  s2.run_until(100.0);
  EXPECT_GT(storm.cluster().completion().total_completed(), 1000u);
  EXPECT_GT(tstorm.cluster().completion().total_completed(), 1000u);
}

// "Given M topologies": two topologies co-scheduled by one generator run,
// never sharing a slot, both making progress.
TEST(PaperShapes, MultipleTopologiesCoScheduled) {
  sim::Simulation sim;
  core::CoreConfig core;
  core.gamma = 2.0;
  core::TStormSystem sys(sim, {}, core);

  workload::ThroughputTestOptions small;
  small.spout_parallelism = 2;
  small.identity_parallelism = 4;
  small.counter_parallelism = 4;
  small.ackers = 2;
  small.workers = 10;
  small.name = "tt-a";
  const auto a = sys.submit(workload::make_throughput_test(small));
  small.name = "tt-b";
  small.seed = 77;
  const auto b = sys.submit(workload::make_throughput_test(small));

  sim.run_until(400.0);

  // Both made progress.
  EXPECT_GT(sys.cluster().completion().total_completed(), 10000u);
  // Slot exclusivity across topologies, after any reassignments.
  const auto* ra = sys.cluster().coordination().get(a);
  const auto* rb = sys.cluster().coordination().get(b);
  ASSERT_NE(ra, nullptr);
  ASSERT_NE(rb, nullptr);
  std::set<sched::SlotIndex> slots_a;
  for (const auto& [task, slot] : ra->placement) slots_a.insert(slot);
  for (const auto& [task, slot] : rb->placement) {
    EXPECT_FALSE(slots_a.contains(slot));
  }
}

// Energy: consolidation must reduce operational cost (the motivation in
// sections I and III).
TEST(PaperShapes, ConsolidationReducesNodeSeconds) {
  auto nodes_after = [](double gamma) {
    sim::Simulation sim;
    core::CoreConfig core;
    core.gamma = gamma;
    core::TStormSystem sys(sim, {}, core);
    sys.submit(workload::make_throughput_test());
    sim.run_until(400.0);
    return sys.cluster().nodes_in_use();
  };
  EXPECT_GT(nodes_after(1.0), nodes_after(6.0));
}

}  // namespace
}  // namespace tstorm
