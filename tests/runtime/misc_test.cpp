// Odds and ends: spout ack/fail callbacks, envelope sizing, repeated
// reassignment (three worker generations), and executor queue drop
// accounting.
#include <gtest/gtest.h>

#include "runtime/cluster.h"
#include "sched/manual.h"
#include "test_util.h"

namespace tstorm::runtime {
namespace {

using testutil::RecordingBolt;
using testutil::SlowBolt;

/// Spout that records its ack/fail callbacks.
class CallbackSpout : public topo::Spout {
 public:
  CallbackSpout(std::shared_ptr<std::int64_t> acks,
                std::shared_ptr<std::int64_t> fails, std::int64_t limit)
      : acks_(std::move(acks)), fails_(std::move(fails)), limit_(limit) {}

  std::optional<topo::Tuple> next_tuple() override {
    if (emitted_ >= limit_) return std::nullopt;
    return topo::Tuple{emitted_++};
  }
  void on_ack(std::uint64_t) override { ++*acks_; }
  void on_fail(std::uint64_t) override { ++*fails_; }
  double cpu_cost_mega_cycles() const override { return 0.1; }

 private:
  std::shared_ptr<std::int64_t> acks_;
  std::shared_ptr<std::int64_t> fails_;
  std::int64_t limit_;
  std::int64_t emitted_ = 0;
};

TEST(SpoutCallbacks, AcksDelivered) {
  sim::Simulation sim;
  Cluster c(sim, {});
  auto acks = std::make_shared<std::int64_t>(0);
  auto fails = std::make_shared<std::int64_t>(0);
  topo::TopologyBuilder b;
  b.set_spout("s",
              [acks, fails] {
                return std::make_unique<CallbackSpout>(acks, fails, 100000);
              },
              1)
      .output_fields({"v"})
      .emit_interval(0.005);
  auto log = std::make_shared<RecordingBolt::Log>();
  b.set_bolt("b", [log] { return std::make_unique<RecordingBolt>(log); }, 2)
      .shuffle_grouping("s");
  c.submit(b.build("cb", 2, 1));
  sim.run_until(120.0);
  EXPECT_GT(*acks, 1000);
  EXPECT_EQ(*acks,
            static_cast<std::int64_t>(c.completion().total_completed()));
}

TEST(SpoutCallbacks, FailsDeliveredOnTimeout) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.max_replays = 0;
  cfg.tuple_timeout = 5.0;
  Cluster c(sim, cfg);
  auto acks = std::make_shared<std::int64_t>(0);
  auto fails = std::make_shared<std::int64_t>(0);
  topo::TopologyBuilder b;
  b.set_spout("s",
              [acks, fails] {
                return std::make_unique<CallbackSpout>(acks, fails, 5);
              },
              1)
      .output_fields({"v"})
      .emit_interval(0.005);
  // 10 s service on a 2 GHz core: every tuple times out at 5 s.
  b.set_bolt("slow", [] { return std::make_unique<SlowBolt>(20000.0); }, 1)
      .shuffle_grouping("s");
  sched::ManualScheduler manual(sched::Placement{{0, 0}});
  c.submit(b.build("cbf", 1, 1), &manual);
  sim.run_until(120.0);
  EXPECT_EQ(*fails, 5);
}

TEST(Envelope, ByteSizing) {
  Envelope control;
  control.kind = MsgKind::kAck;
  EXPECT_EQ(control.bytes(), 28u);

  Envelope data;
  data.kind = MsgKind::kData;
  data.tuple = topo::TupleRef::make(topo::Tuple{std::string(100, 'x')});
  EXPECT_EQ(data.bytes(), 28u + 8u + 104u);
}

TEST(Dispatcher, SurvivesThreeGenerations) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.smooth_reassignment = true;
  Cluster c(sim, cfg);
  auto acks = std::make_shared<std::int64_t>(0);
  auto fails = std::make_shared<std::int64_t>(0);
  topo::TopologyBuilder b;
  b.set_spout("s",
              [acks, fails] {
                return std::make_unique<CallbackSpout>(acks, fails,
                                                       1'000'000);
              },
              1)
      .output_fields({"v"})
      .emit_interval(0.005);
  auto log = std::make_shared<RecordingBolt::Log>();
  b.set_bolt("b", [log] { return std::make_unique<RecordingBolt>(log); }, 2)
      .shuffle_grouping("s");
  const auto id = c.submit(b.build("gen3", 2, 1));
  sim.run_until(60.0);

  // Three successive migrations: node 5, node 7, node 9.
  for (int target : {5, 7, 9}) {
    sched::Placement p;
    for (auto t : c.tasks_of(id)) p[t] = c.slot_index(target, 0);
    ASSERT_TRUE(
        c.nimbus().apply_placement(id, p, c.nimbus().next_version()));
    sim.run_until(sim.now() + 60.0);
  }
  // Smooth handovers throughout: no drops, no failures; everything on 9.
  EXPECT_EQ(c.dropped_messages(), 0u);
  EXPECT_EQ(c.completion().total_failed(), 0u);
  EXPECT_EQ(c.nodes_in_use(), 1);
  for (auto* ex : c.executors_on_node(9)) {
    EXPECT_EQ(ex->info().topology, id);
  }
}

TEST(ExecutorDrops, ShutdownCountsQueuedDataTuples) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.max_replays = 0;
  Cluster c(sim, cfg);
  auto acks = std::make_shared<std::int64_t>(0);
  auto fails = std::make_shared<std::int64_t>(0);
  topo::TopologyBuilder b;
  b.set_spout("s",
              [acks, fails] {
                return std::make_unique<CallbackSpout>(acks, fails,
                                                       1'000'000);
              },
              1)
      .output_fields({"v"})
      .emit_interval(0.002);
  b.set_bolt("slow", [] { return std::make_unique<SlowBolt>(100.0); }, 1)
      .shuffle_grouping("s");
  const auto id = c.submit(b.build("drops", 2, 1));
  sim.run_until(60.0);
  // The slow bolt has a deep queue; killing its worker drops everything.
  const auto bolt = c.tasks_of_component(id, "slow").front();
  const auto slot = c.coordination().get(id)->placement.at(bolt);
  Executor* ex = c.instances_of(bolt).front();
  const auto queued = ex->queue_depth();
  EXPECT_GT(queued, 10u);
  const auto drops_before = c.dropped_messages();
  ASSERT_TRUE(c.kill_worker(c.slot_node(slot), c.slot_port(slot)));
  EXPECT_GE(c.dropped_messages(), drops_before + queued);
}

}  // namespace
}  // namespace tstorm::runtime
