// CPU/traffic accounting (the load monitor's raw inputs) and whole-system
// determinism.
#include <gtest/gtest.h>

#include "core/load_monitor.h"
#include "core/metrics_db.h"
#include "runtime/cluster.h"
#include "sched/manual.h"
#include "test_util.h"

namespace tstorm::runtime {
namespace {

using testutil::RecordingBolt;
using testutil::SeqSpout;

/// Emits forever at the poll rate with a fixed per-emission CPU cost.
class SteadySpout : public topo::Spout {
 public:
  explicit SteadySpout(double cost_mc) : cost_mc_(cost_mc) {}
  std::optional<topo::Tuple> next_tuple() override {
    return topo::Tuple{counter_++};
  }
  double cpu_cost_mega_cycles() const override { return cost_mc_; }

 private:
  double cost_mc_;
  std::int64_t counter_ = 0;
};

class FixedCostBolt : public topo::Bolt {
 public:
  explicit FixedCostBolt(double cost_mc) : cost_mc_(cost_mc) {}
  void execute(const topo::Tuple&, topo::BoltContext&) override {}
  double cpu_cost_mega_cycles(const topo::Tuple&) const override {
    return cost_mc_;
  }

 private:
  double cost_mc_;
};

topo::Topology steady_topology(double spout_cost, double bolt_cost,
                               double interval) {
  topo::TopologyBuilder b;
  b.set_spout("s",
              [spout_cost] { return std::make_unique<SteadySpout>(spout_cost); },
              1)
      .output_fields({"v"})
      .emit_interval(interval);
  b.set_bolt("b",
             [bolt_cost] { return std::make_unique<FixedCostBolt>(bolt_cost); },
             1)
      .shuffle_grouping("s");
  return b.build("steady", 1, 1);
}

TEST(Accounting, ExecutorLoadMatchesRateTimesCost) {
  sim::Simulation sim;
  Cluster c(sim, {});
  // 100 tuples/s, bolt costs 2 mega-cycles each => 200 MHz.
  sched::ManualScheduler manual(sched::Placement{{0, 0}});
  const auto id = c.submit(steady_topology(0.5, 2.0, 0.01), &manual);
  sim.run_until(60.0);  // past startup

  core::MetricsDb db(0.5);
  core::LoadMonitor monitor(c, db, 0, 20.0);
  monitor.start(20.0);
  sim.run_until(200.0);  // several EWMA samples of steady state

  const auto bolt_task = c.tasks_of_component(id, "b").front();
  EXPECT_NEAR(db.executor_load(bolt_task), 200.0, 20.0);
  const auto spout_task = c.tasks_of_component(id, "s").front();
  // Spout: 100 emits/s * 0.5 mc + ~100 ack-completes/s * control cost.
  EXPECT_NEAR(db.executor_load(spout_task), 51.0, 10.0);
}

TEST(Accounting, NodeLoadSumsExecutors) {
  sim::Simulation sim;
  Cluster c(sim, {});
  sched::ManualScheduler manual(sched::Placement{{0, 0}});
  c.submit(steady_topology(0.5, 2.0, 0.01), &manual);
  sim.run_until(60.0);
  core::MetricsDb db(0.5);
  core::LoadMonitor monitor(c, db, 0, 20.0);
  monitor.start(20.0);
  sim.run_until(200.0);
  // Node load ~ spout + bolt + acker contribution.
  EXPECT_GT(db.node_load(0), 230.0);
  EXPECT_LT(db.node_load(0), 320.0);
}

TEST(Accounting, TrafficRateMatchesTupleRate) {
  sim::Simulation sim;
  Cluster c(sim, {});
  sched::ManualScheduler manual(sched::Placement{{0, 0}});
  const auto id = c.submit(steady_topology(0.5, 2.0, 0.01), &manual);
  sim.run_until(60.0);
  core::MetricsDb db(0.5);
  core::LoadMonitor monitor(c, db, 0, 20.0);
  monitor.start(20.0);
  sim.run_until(200.0);

  const auto spout = c.tasks_of_component(id, "s").front();
  const auto bolt = c.tasks_of_component(id, "b").front();
  bool found = false;
  for (const auto& e : db.traffic_snapshot()) {
    if (e.src == spout && e.dst == bolt) {
      EXPECT_NEAR(e.rate, 100.0, 10.0);  // 100 tuples/s
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Accounting, TakeSentResetsBetweenSamples) {
  sim::Simulation sim;
  Cluster c(sim, {});
  sched::ManualScheduler manual(sched::Placement{{0, 0}});
  const auto id = c.submit(steady_topology(0.5, 2.0, 0.01), &manual);
  sim.run_until(60.0);
  const auto spout = c.tasks_of_component(id, "s").front();
  Executor* ex = c.instances_of(spout).front();
  ex->drain_sent([](sched::TaskId, std::uint64_t) {});
  (void)ex->take_mega_cycles();
  sim.run_until(70.0);
  std::uint64_t total = 0;
  ex->drain_sent(
      [&total](sched::TaskId, std::uint64_t n) { total += n; });
  // ~100 data tuples + ~100 ack-inits over 10 s.
  EXPECT_NEAR(static_cast<double>(total), 2000.0, 300.0);
  // Second drain immediately after sees nothing.
  std::uint64_t again = 0;
  ex->drain_sent([&again](sched::TaskId, std::uint64_t n) { again += n; });
  EXPECT_EQ(again, 0u);
}

TEST(Accounting, QueueDepthGrowsUnderSaturation) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.max_replays = 0;
  Cluster c(sim, cfg);
  sched::ManualScheduler manual(sched::Placement{{0, 0}});
  // 100 tuples/s into a bolt that takes 50 ms each: 5x overload.
  const auto id = c.submit(steady_topology(0.5, 100.0, 0.01), &manual);
  sim.run_until(120.0);
  const auto bolt = c.tasks_of_component(id, "b").front();
  Executor* ex = c.instances_of(bolt).front();
  EXPECT_GT(ex->queue_depth(), 100u);
}

TEST(Determinism, IdenticalRunsProduceIdenticalResults) {
  auto run_once = [] {
    sim::Simulation sim;
    ClusterConfig cfg;
    cfg.seed = 123;
    Cluster c(sim, cfg);
    auto counter = std::make_shared<std::int64_t>(0);
    auto log = std::make_shared<RecordingBolt::Log>();
    topo::TopologyBuilder b;
    b.set_spout("s",
                [counter] {
                  return std::make_unique<SeqSpout>(counter, 1'000'000);
                },
                2)
        .output_fields({"v"})
        .emit_interval(0.003);
    b.set_bolt("x", [log] { return std::make_unique<RecordingBolt>(log); },
               3)
        .shuffle_grouping("s");
    c.submit(b.build("det", 4, 2));
    sim.run_until(120.0);
    return std::tuple{c.completion().total_completed(),
                      c.completion().total_failed(),
                      sim.events_executed(), *counter, log->size()};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Determinism, SeedChangesTrajectory) {
  auto run_with_seed = [](std::uint64_t seed) {
    sim::Simulation sim;
    ClusterConfig cfg;
    cfg.seed = seed;
    Cluster c(sim, cfg);
    auto counter = std::make_shared<std::int64_t>(0);
    auto log = std::make_shared<RecordingBolt::Log>();
    topo::TopologyBuilder b;
    b.set_spout("s",
                [counter] {
                  return std::make_unique<SeqSpout>(counter, 1'000'000);
                },
                1)
        .output_fields({"v"})
        .emit_interval(0.003);
    b.set_bolt("x", [log] { return std::make_unique<RecordingBolt>(log); },
               3)
        .shuffle_grouping("s");
    c.submit(b.build("det", 4, 2));
    sim.run_until(60.0);
    // The shuffle counters differ with the seed offsets... routing is
    // seeded by task ids (deterministic), but XOR edge ids come from the
    // cluster RNG; event interleavings shift slightly.
    return sim.events_executed();
  };
  // Different seeds may legitimately coincide in event count, but the
  // deterministic path must at least be stable per seed.
  EXPECT_EQ(run_with_seed(7), run_with_seed(7));
  EXPECT_EQ(run_with_seed(8), run_with_seed(8));
}

}  // namespace
}  // namespace tstorm::runtime
