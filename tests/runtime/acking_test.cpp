// End-to-end acking / grouping semantics: tuples flow through executors
// over the modeled network, ack XOR trees complete at acker tasks, the
// tracker records completion times, and each grouping routes as specified.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "runtime/cluster.h"
#include "test_util.h"

namespace tstorm::runtime {
namespace {

using testutil::RecordingBolt;
using testutil::SeqSpout;

struct Built {
  std::shared_ptr<std::int64_t> counter = std::make_shared<std::int64_t>(0);
  std::shared_ptr<RecordingBolt::Log> log =
      std::make_shared<RecordingBolt::Log>();
  std::shared_ptr<bool> gate = std::make_shared<bool>(false);
};

/// Lets the staggered supervisors start every worker, then opens the gate.
void open_after_startup(sim::Simulation& sim, Built& built,
                        sim::Time t = 15.0) {
  sim.run_until(t);
  *built.gate = true;
}

topo::Topology grouping_topology(Built& built, topo::GroupingType g,
                                 int bolt_parallelism, int n_tuples,
                                 int ackers = 2) {
  topo::TopologyBuilder b;
  auto counter = built.counter;
  auto gate = built.gate;
  b.set_spout(
       "s", [counter, gate, n_tuples] {
         return std::make_unique<SeqSpout>(counter, n_tuples, gate);
       },
       1)
      .output_fields({"v"})
      .emit_interval(0.001);
  auto log = built.log;
  auto decl = b.set_bolt(
      "b", [log] { return std::make_unique<RecordingBolt>(log); },
      bolt_parallelism);
  switch (g) {
    case topo::GroupingType::kShuffle:
      decl.shuffle_grouping("s");
      break;
    case topo::GroupingType::kFields:
      decl.fields_grouping("s", "v");
      break;
    case topo::GroupingType::kAll:
      decl.all_grouping("s");
      break;
    case topo::GroupingType::kGlobal:
      decl.global_grouping("s");
      break;
    case topo::GroupingType::kDirect:
      decl.direct_grouping("s");
      break;
  }
  return b.build("grouping", 4, ackers);
}

TEST(Acking, AllTuplesCompleteOnHealthyTopology) {
  sim::Simulation sim;
  Cluster c(sim, {});
  Built built;
  c.submit(grouping_topology(built, topo::GroupingType::kShuffle, 3, 200));
  open_after_startup(sim, built);
  sim.run_until(60.0);
  EXPECT_EQ(c.completion().total_completed(), 200u);
  EXPECT_EQ(c.completion().total_failed(), 0u);
  EXPECT_EQ(built.log->size(), 200u);
}

TEST(Acking, ProcessingTimesArePositiveAndSmall) {
  sim::Simulation sim;
  Cluster c(sim, {});
  Built built;
  c.submit(grouping_topology(built, topo::GroupingType::kShuffle, 3, 100));
  open_after_startup(sim, built);
  sim.run_until(60.0);
  const auto mean = c.completion().proc_time_ms().mean_between(0, 60);
  ASSERT_TRUE(mean.has_value());
  EXPECT_GT(*mean, 0.0);
  EXPECT_LT(*mean, 100.0);
}

TEST(Acking, ZeroAckersMeansNoTracking) {
  sim::Simulation sim;
  Cluster c(sim, {});
  Built built;
  c.submit(grouping_topology(built, topo::GroupingType::kShuffle, 3, 100,
                             /*ackers=*/0));
  open_after_startup(sim, built);
  sim.run_until(60.0);
  EXPECT_EQ(c.completion().total_completed(), 0u);  // nothing tracked
  EXPECT_EQ(c.completion().total_failed(), 0u);
  EXPECT_EQ(built.log->size(), 100u);  // data still flows
}

TEST(Grouping, ShuffleDistributesEvenly) {
  sim::Simulation sim;
  Cluster c(sim, {});
  Built built;
  c.submit(grouping_topology(built, topo::GroupingType::kShuffle, 4, 400));
  open_after_startup(sim, built);
  sim.run_until(60.0);
  std::map<int, int> per_task;
  for (const auto& [idx, v] : *built.log) per_task[idx]++;
  ASSERT_EQ(per_task.size(), 4u);
  // Storm guarantee: "each task is guaranteed to receive an equal number
  // of tuples" (round-robin shuffle).
  for (const auto& [idx, n] : per_task) EXPECT_EQ(n, 100);
}

TEST(Grouping, FieldsSendsEqualKeysToSameTask) {
  sim::Simulation sim;
  Cluster c(sim, {});
  Built built;
  c.submit(grouping_topology(built, topo::GroupingType::kFields, 4, 300));
  open_after_startup(sim, built);
  sim.run_until(60.0);
  std::map<std::int64_t, std::set<int>> tasks_per_key;
  for (const auto& [idx, v] : *built.log) {
    tasks_per_key[v % 7].insert(idx);  // SeqSpout values are unique...
  }
  // Re-run logic: keys are the raw values (all unique), so instead check
  // determinism directly: same value never lands on two tasks.
  std::map<std::int64_t, std::set<int>> by_value;
  for (const auto& [idx, v] : *built.log) by_value[v].insert(idx);
  for (const auto& [v, tasks] : by_value) EXPECT_EQ(tasks.size(), 1u);
}

TEST(Grouping, AllBroadcastsToEveryTask) {
  sim::Simulation sim;
  Cluster c(sim, {});
  Built built;
  c.submit(grouping_topology(built, topo::GroupingType::kAll, 3, 100));
  open_after_startup(sim, built);
  sim.run_until(60.0);
  EXPECT_EQ(built.log->size(), 300u);
  std::map<int, int> per_task;
  for (const auto& [idx, v] : *built.log) per_task[idx]++;
  for (const auto& [idx, n] : per_task) EXPECT_EQ(n, 100);
  // Acking still completes: every broadcast copy is part of the tree.
  EXPECT_EQ(c.completion().total_completed(), 100u);
}

TEST(Grouping, GlobalRoutesToSingleTask) {
  sim::Simulation sim;
  Cluster c(sim, {});
  Built built;
  c.submit(grouping_topology(built, topo::GroupingType::kGlobal, 3, 100));
  open_after_startup(sim, built);
  sim.run_until(60.0);
  std::set<int> tasks;
  for (const auto& [idx, v] : *built.log) tasks.insert(idx);
  EXPECT_EQ(tasks.size(), 1u);
  EXPECT_EQ(built.log->size(), 100u);
}

TEST(Grouping, DirectWithoutEmitDirectDeliversNothing) {
  sim::Simulation sim;
  Cluster c(sim, {});
  Built built;
  c.submit(grouping_topology(built, topo::GroupingType::kDirect, 3, 50));
  open_after_startup(sim, built);
  sim.run_until(60.0);
  EXPECT_TRUE(built.log->empty());
  // The spout's tree is just the (empty) emission: completes immediately.
  EXPECT_EQ(c.completion().total_completed(), 50u);
}

// A bolt that fans out via emit_direct, round-robin over consumer tasks.
class DirectFanBolt : public topo::Bolt {
 public:
  explicit DirectFanBolt(int consumers) : consumers_(consumers) {}
  void execute(const topo::Tuple& input, topo::BoltContext& ctx) override {
    ctx.emit_direct("sink", static_cast<int>(input.get_int(0)) % consumers_,
                    input);
  }
  double cpu_cost_mega_cycles(const topo::Tuple&) const override {
    return 0.1;
  }

 private:
  int consumers_;
};

TEST(Grouping, EmitDirectTargetsChosenTask) {
  sim::Simulation sim;
  Cluster c(sim, {});
  auto counter = std::make_shared<std::int64_t>(0);
  auto log = std::make_shared<RecordingBolt::Log>();
  auto gate = std::make_shared<bool>(false);
  topo::TopologyBuilder b;
  b.set_spout("s",
              [counter, gate] {
                return std::make_unique<SeqSpout>(counter, 90, gate);
              },
              1)
      .output_fields({"v"})
      .emit_interval(0.001);
  b.set_bolt("fan", [] { return std::make_unique<DirectFanBolt>(3); }, 1)
      .output_fields({"v"})
      .shuffle_grouping("s");
  b.set_bolt("sink", [log] { return std::make_unique<RecordingBolt>(log); },
             3)
      .direct_grouping("fan");
  c.submit(b.build("direct", 4, 2));
  sim.run_until(15.0);
  *gate = true;
  sim.run_until(60.0);
  ASSERT_EQ(log->size(), 90u);
  for (const auto& [idx, v] : *log) EXPECT_EQ(idx, v % 3);
  EXPECT_EQ(c.completion().total_completed(), 90u);
}

TEST(Acking, MultiStageTreeCompletes) {
  // spout -> forward -> forward -> sink; the XOR tree spans three bolts.
  sim::Simulation sim;
  Cluster c(sim, {});
  auto counter = std::make_shared<std::int64_t>(0);
  auto log = std::make_shared<RecordingBolt::Log>();
  auto gate = std::make_shared<bool>(false);
  topo::TopologyBuilder b;
  b.set_spout("s",
              [counter, gate] {
                return std::make_unique<SeqSpout>(counter, 150, gate);
              },
              2)
      .output_fields({"v"})
      .emit_interval(0.001);
  b.set_bolt("f1",
             [log] { return std::make_unique<RecordingBolt>(log, 0.1, true); },
             2)
      .output_fields({"v"})
      .shuffle_grouping("s");
  b.set_bolt("f2",
             [log] { return std::make_unique<RecordingBolt>(log, 0.1, true); },
             2)
      .output_fields({"v"})
      .shuffle_grouping("f1");
  b.set_bolt("sink",
             [log] { return std::make_unique<RecordingBolt>(log); }, 2)
      .shuffle_grouping("f2");
  c.submit(b.build("chain3", 6, 3));
  sim.run_until(15.0);
  *gate = true;
  sim.run_until(60.0);
  EXPECT_EQ(c.completion().total_completed(), 150u);
  EXPECT_EQ(c.completion().total_failed(), 0u);
  EXPECT_EQ(log->size(), 450u);
}

TEST(Acking, SharedSpoutStateSplitsWorkAcrossTasks) {
  sim::Simulation sim;
  Cluster c(sim, {});
  Built built;
  auto t = grouping_topology(built, topo::GroupingType::kShuffle, 2, 400);
  c.submit(std::move(t));
  open_after_startup(sim, built);
  sim.run_until(120.0);
  // Exactly n tuples total despite 1 spout task + shared counter.
  EXPECT_EQ(c.completion().total_completed(), 400u);
}

}  // namespace
}  // namespace tstorm::runtime
