// Heterogeneous clusters: "different worker nodes may have different
// numbers of slots" (paper section II) — and, in this implementation,
// different core counts and clock speeds too.
#include <gtest/gtest.h>

#include "core/system.h"
#include "runtime/cluster.h"
#include "sched/manual.h"
#include "workload/external_queue.h"
#include "test_util.h"
#include "workload/topologies.h"

namespace tstorm::runtime {
namespace {

ClusterConfig mixed_cluster() {
  ClusterConfig cfg;
  cfg.nodes = {
      {2, 2, 1000.0},  // small node: 2 slots, 2 cores, 1 GHz
      {4, 4, 2000.0},  // the reference blade
      {8, 8, 3000.0},  // big node
  };
  return cfg;
}

TEST(Heterogeneous, SlotIndexingWithVariableSlotCounts) {
  sim::Simulation sim;
  Cluster c(sim, mixed_cluster());
  EXPECT_EQ(c.num_nodes(), 3);
  EXPECT_EQ(c.total_slots(), 14);
  EXPECT_EQ(c.slots_on_node(0), 2);
  EXPECT_EQ(c.slots_on_node(1), 4);
  EXPECT_EQ(c.slots_on_node(2), 8);

  // Round trips across the node boundaries.
  int expected_slot = 0;
  for (int n = 0; n < 3; ++n) {
    for (int p = 0; p < c.slots_on_node(n); ++p) {
      const auto s = c.slot_index(n, p);
      EXPECT_EQ(s, expected_slot++);
      EXPECT_EQ(c.slot_node(s), n);
      EXPECT_EQ(c.slot_port(s), p);
    }
  }
  EXPECT_EQ(c.all_slots().size(), 14u);
}

TEST(Heterogeneous, NodeHardwareFromSpecs) {
  sim::Simulation sim;
  Cluster c(sim, mixed_cluster());
  EXPECT_EQ(c.node(0).cores(), 2);
  EXPECT_DOUBLE_EQ(c.node(0).capacity_mhz(), 2000.0);
  EXPECT_EQ(c.node(2).cores(), 8);
  EXPECT_DOUBLE_EQ(c.node(2).capacity_mhz(), 24000.0);
}

TEST(Heterogeneous, SchedulerInputCarriesPerNodeCapacity) {
  sim::Simulation sim;
  Cluster c(sim, mixed_cluster());
  const auto in = c.scheduler_input({});
  ASSERT_EQ(in.nodes.size(), 3u);
  EXPECT_DOUBLE_EQ(in.node_capacity_mhz(0), 2000.0);
  EXPECT_DOUBLE_EQ(in.node_capacity_mhz(1), 8000.0);
  EXPECT_DOUBLE_EQ(in.node_capacity_mhz(2), 24000.0);
  EXPECT_EQ(in.slots.size(), 14u);
}

TEST(Heterogeneous, TopologyRunsEndToEnd) {
  sim::Simulation sim;
  Cluster c(sim, mixed_cluster());
  auto counter = std::make_shared<std::int64_t>(0);
  auto gate = std::make_shared<bool>(false);
  auto log = std::make_shared<testutil::RecordingBolt::Log>();
  topo::TopologyBuilder b;
  b.set_spout("s",
              [counter, gate] {
                return std::make_unique<testutil::SeqSpout>(counter, 500,
                                                            gate);
              },
              1)
      .output_fields({"v"})
      .emit_interval(0.002);
  b.set_bolt("b",
             [log] { return std::make_unique<testutil::RecordingBolt>(log); },
             3)
      .shuffle_grouping("s");
  c.submit(b.build("hetero", 3, 2));
  sim.run_until(15.0);
  *gate = true;
  sim.run_until(120.0);
  EXPECT_EQ(c.completion().total_completed(), 500u);
  EXPECT_EQ(c.completion().total_failed(), 0u);
}

TEST(Heterogeneous, TStormSchedulesWithinPerNodeCapacity) {
  sim::Simulation sim;
  core::CoreConfig core;
  core.gamma = 10.0;  // packing limited by capacity, not count
  ClusterConfig cfg = mixed_cluster();
  core::TStormSystem sys(sim, cfg, core);
  auto wc = workload::make_word_count();
  workload::QueueProducer producer(sim, *wc.queue, 200.0);
  producer.start();
  sys.submit(std::move(wc.topology));
  sim.run_until(600.0);
  // The big node can absorb far more than the small one; the system stays
  // healthy either way.
  EXPECT_EQ(sys.cluster().completion().total_failed(), 0u);
  EXPECT_GT(sys.cluster().completion().total_completed(), 10000u);
}

TEST(Heterogeneous, SlowNodeRunsSlower) {
  // The same bolt cost takes twice as long on a 1 GHz node as on a 2 GHz
  // node: pin one topology to each and compare.
  auto run_on_node = [](int node) {
    sim::Simulation sim;
    ClusterConfig cfg;
    cfg.nodes = {{4, 4, 1000.0}, {4, 4, 2000.0}};
    Cluster c(sim, cfg);
    auto counter = std::make_shared<std::int64_t>(0);
    auto gate = std::make_shared<bool>(false);
    auto log = std::make_shared<testutil::RecordingBolt::Log>();
    topo::TopologyBuilder b;
    b.set_spout("s",
                [counter, gate] {
                  return std::make_unique<testutil::SeqSpout>(counter, 2000,
                                                              gate);
                },
                1)
        .output_fields({"v"})
        .emit_interval(0.005);
    b.set_bolt("b",
               [log] {
                 return std::make_unique<testutil::RecordingBolt>(log, 10.0);
               },
               1)
        .shuffle_grouping("s");
    sched::Placement pin;
    for (int t = 0; t < 3; ++t) pin[t] = c.slot_index(node, 0);
    sched::ManualScheduler manual(std::move(pin));
    c.submit(b.build("pinned", 1, 1), &manual);
    sim.run_until(15.0);
    *gate = true;
    sim.run_until(120.0);
    return c.completion().proc_time_ms().mean_between(20, 120).value_or(0);
  };
  const double slow = run_on_node(0);
  const double fast = run_on_node(1);
  EXPECT_GT(slow, fast * 1.5);
}

}  // namespace
}  // namespace tstorm::runtime
