// Determinism invariant: two runs with the same seed must be bytewise
// identical — same event count, same completions, and a byte-identical
// control-plane trace dump. The pooled tuple path recycles blocks and
// buffers in LIFO order, so any hidden dependence on allocation addresses
// or pool state would show up here as a diverged run.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "core/system.h"
#include "runtime/cluster.h"
#include "workload/external_queue.h"
#include "workload/topologies.h"

namespace tstorm::runtime {
namespace {

struct RunResult {
  std::uint64_t events = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::string trace;
};

RunResult run_once(std::uint64_t seed, bool with_faults) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.seed = seed;
  if (with_faults) {
    cfg.failure_detection = true;
    cfg.network.control_drop_prob = 0.02;
    cfg.network.inter_node_drop_prob = 0.01;
  }
  core::StormSystem sys(sim, cfg);

  workload::WordCountOptions opt;
  opt.spouts = 1;
  opt.splitters = 2;
  opt.counters = 2;
  opt.mongos = 1;
  opt.ackers = 2;
  opt.workers = 4;
  opt.text.vocabulary = 256;
  auto wc = workload::make_word_count(opt);
  workload::QueueProducer producer(sim, *wc.queue, 120.0);
  producer.start();
  sys.submit(std::move(wc.topology));

  sim.run_until(90.0);

  RunResult r;
  r.events = sim.events_executed();
  r.completed = sys.cluster().completion().total_completed();
  r.failed = sys.cluster().completion().total_failed();
  std::ostringstream os;
  sys.cluster().trace_log().dump(os);
  r.trace = os.str();
  return r;
}

TEST(Determinism, SameSeedByteIdenticalTrace) {
  const RunResult a = run_once(42, /*with_faults=*/false);
  const RunResult b = run_once(42, /*with_faults=*/false);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.trace, b.trace);  // byte-identical
  EXPECT_GT(a.completed, 0u);
  EXPECT_FALSE(a.trace.empty());
}

TEST(Determinism, SameSeedByteIdenticalUnderFaults) {
  // Lossy-network paths draw from the cluster RNG too; replay/backoff must
  // not perturb the sequence between identical runs.
  const RunResult a = run_once(7, /*with_faults=*/true);
  const RunResult b = run_once(7, /*with_faults=*/true);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.trace, b.trace);
}

TEST(Determinism, DifferentSeedsDiverge) {
  // Sanity: the comparison is not vacuous — different seeds must produce
  // different executions.
  const RunResult a = run_once(1, /*with_faults=*/true);
  const RunResult b = run_once(2, /*with_faults=*/true);
  EXPECT_NE(a.events, b.events);
}

}  // namespace
}  // namespace tstorm::runtime
