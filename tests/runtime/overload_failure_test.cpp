// Overload behaviour (paper Observation 2 / Fig. 3), tuple timeout +
// replay semantics, and worker fault tolerance.
#include <gtest/gtest.h>

#include "runtime/cluster.h"
#include "sched/manual.h"
#include "test_util.h"

namespace tstorm::runtime {
namespace {

using testutil::RecordingBolt;
using testutil::SeqSpout;
using testutil::SlowBolt;

/// Spout that emits forever at its poll rate.
class FirehoseSpout : public topo::Spout {
 public:
  std::optional<topo::Tuple> next_tuple() override {
    return topo::Tuple{counter_++};
  }
  double cpu_cost_mega_cycles() const override { return 0.1; }

 private:
  std::int64_t counter_ = 0;
};

topo::Topology overload_topology(double bolt_cost_mc) {
  // Paper Fig. 3 setup: 5 spout executors, one bolt executor.
  topo::TopologyBuilder b;
  b.set_spout("s", [] { return std::make_unique<FirehoseSpout>(); }, 5)
      .output_fields({"v"})
      .emit_interval(0.005);
  b.set_bolt("b",
             [bolt_cost_mc] { return std::make_unique<SlowBolt>(bolt_cost_mc); },
             1)
      .shuffle_grouping("s");
  return b.build("overload", 1, 2);
}

TEST(Overload, SaturatedBoltCausesTimeoutsAndSkyrocketingLatency) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.max_replays = 0;  // isolate timeout behaviour
  Cluster c(sim, cfg);
  // 5 spouts at 200/s = 1000 tuples/s; bolt service 4 ms => 4x overload.
  sched::Placement pin;
  // Manual pin: all executors into node 0, slot 0.
  {
    auto topo = overload_topology(/*bolt_cost_mc=*/8.0);
    sched::ManualScheduler manual([&] {
      sched::Placement p;
      // tasks not known before submit; pin everything via empty placement
      // is impossible — use round-robin over one slot instead.
      p[0] = 0;
      return p;
    }());
    c.submit(std::move(topo), &manual);
  }
  sim.run_until(200.0);
  EXPECT_GT(c.completion().total_failed(), 0u);
  // Queue growth: late-window latency far exceeds early-window latency.
  const auto early = c.completion().proc_time_ms().mean_between(10, 60);
  const auto late = c.completion().proc_time_ms().mean_between(150, 200);
  if (early.has_value() && late.has_value()) {
    EXPECT_GT(*late, *early * 3);
  }
  // Failed tuples keep accumulating (Fig. 3(b)).
  const auto& failures = c.completion().failures();
  EXPECT_GT(failures.total(), 100u);
}

TEST(Overload, HealthyRateHasNoFailures) {
  sim::Simulation sim;
  Cluster c(sim, {});
  sched::ManualScheduler manual(sched::Placement{{0, 0}});
  c.submit(overload_topology(/*bolt_cost_mc=*/0.5), &manual);
  sim.run_until(120.0);
  EXPECT_EQ(c.completion().total_failed(), 0u);
  EXPECT_GT(c.completion().total_completed(), 1000u);
}

TEST(Replay, FailedTuplesAreReplayedUpToLimit) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.max_replays = 2;
  Cluster c(sim, cfg);
  sched::ManualScheduler manual(sched::Placement{{0, 0}});
  c.submit(overload_topology(/*bolt_cost_mc=*/8.0), &manual);
  sim.run_until(150.0);
  EXPECT_GT(c.completion().total_replayed(), 0u);
  EXPECT_LE(c.completion().total_replayed(), c.completion().total_failed());
}

TEST(Replay, DisabledWhenMaxReplaysZero) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.max_replays = 0;
  Cluster c(sim, cfg);
  sched::ManualScheduler manual(sched::Placement{{0, 0}});
  c.submit(overload_topology(/*bolt_cost_mc=*/8.0), &manual);
  sim.run_until(120.0);
  EXPECT_EQ(c.completion().total_replayed(), 0u);
}

TEST(Timeout, LateAcksRecordedAsLateCompletions) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.max_replays = 0;
  cfg.tuple_timeout = 5.0;  // tight timeout
  Cluster c(sim, cfg);
  auto counter = std::make_shared<std::int64_t>(0);
  topo::TopologyBuilder b;
  b.set_spout("s",
              [counter] { return std::make_unique<SeqSpout>(counter, 3); }, 1)
      .output_fields({"v"})
      .emit_interval(0.001);
  // 20 000 mega-cycles = 10 s service on a 2000 MHz core: acks arrive
  // after the 5 s timeout.
  b.set_bolt("b", [] { return std::make_unique<SlowBolt>(20000.0); }, 1)
      .shuffle_grouping("s");
  sched::ManualScheduler manual(sched::Placement{{0, 0}});
  c.submit(b.build("slow", 1, 1), &manual);
  sim.run_until(120.0);
  EXPECT_EQ(c.completion().total_failed(), 3u);
  EXPECT_EQ(c.completion().total_late(), 3u);
  EXPECT_EQ(c.completion().total_completed(), 3u);
}

TEST(Timeout, MaxPendingThrottlesSpout) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.max_replays = 0;
  Cluster c(sim, cfg);
  topo::TopologyBuilder b;
  b.set_spout("s", [] { return std::make_unique<FirehoseSpout>(); }, 1)
      .output_fields({"v"})
      .emit_interval(0.001)
      .max_pending(10);
  b.set_bolt("b", [] { return std::make_unique<SlowBolt>(2000.0); }, 1)
      .shuffle_grouping("s");  // 1 s service each
  sched::ManualScheduler manual(sched::Placement{{0, 0}});
  c.submit(b.build("throttled", 1, 1), &manual);
  sim.run_until(60.0);
  // Unthrottled the spout would have emitted ~50 000 tuples; max_pending
  // caps in-flight roots at 10.
  EXPECT_LE(c.tracker().in_flight(), 10u);
}

TEST(FaultTolerance, KilledWorkerIsRestartedBySupervisor) {
  sim::Simulation sim;
  Cluster c(sim, {});
  auto counter = std::make_shared<std::int64_t>(0);
  auto log = std::make_shared<RecordingBolt::Log>();
  topo::TopologyBuilder b;
  b.set_spout("s",
              [counter] {
                return std::make_unique<SeqSpout>(counter, 1'000'000);
              },
              1)
      .output_fields({"v"})
      .emit_interval(0.005);
  b.set_bolt("b", [log] { return std::make_unique<RecordingBolt>(log); }, 2)
      .shuffle_grouping("s");
  const auto id = c.submit(b.build("ft", 2, 1));
  sim.run_until(60.0);

  // Kill the worker hosting the spout.
  const auto* rec = c.coordination().get(id);
  const auto spout_task = c.tasks_of_component(id, "s").front();
  const auto slot = rec->placement.at(spout_task);
  ASSERT_TRUE(c.kill_worker(c.slot_node(slot), c.slot_port(slot)));
  EXPECT_TRUE(c.instances_of(spout_task).empty());

  // Supervisor restarts it within one sync + spawn delay.
  sim.run_until(75.0);
  EXPECT_FALSE(c.instances_of(spout_task).empty());

  // The topology keeps making progress afterwards.
  const auto completed = c.completion().total_completed();
  sim.run_until(120.0);
  EXPECT_GT(c.completion().total_completed(), completed);
}

TEST(FaultTolerance, KillUnknownWorkerReturnsFalse) {
  sim::Simulation sim;
  Cluster c(sim, {});
  EXPECT_FALSE(c.kill_worker(0, 0));
}

TEST(FaultTolerance, InFlightTuplesOfKilledWorkerTimeOut) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.max_replays = 1;
  Cluster c(sim, cfg);
  topo::TopologyBuilder b;
  b.set_spout("s", [] { return std::make_unique<FirehoseSpout>(); }, 1)
      .output_fields({"v"})
      .emit_interval(0.005);
  b.set_bolt("b", [] { return std::make_unique<SlowBolt>(100.0); }, 1)
      .shuffle_grouping("s");
  const auto id = c.submit(b.build("ft2", 2, 1));
  sim.run_until(60.0);
  const auto bolt_task = c.tasks_of_component(id, "b").front();
  const auto slot = c.coordination().get(id)->placement.at(bolt_task);
  ASSERT_TRUE(c.kill_worker(c.slot_node(slot), c.slot_port(slot)));
  sim.run_until(120.0);
  // Tuples queued at the killed bolt were dropped and timed out.
  EXPECT_GT(c.completion().total_failed(), 0u);
  EXPECT_GT(c.completion().total_replayed(), 0u);
}

}  // namespace
}  // namespace tstorm::runtime
