// Shared fixtures for runtime tests: instrumented spouts/bolts and small
// topology builders.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "topo/builder.h"
#include "topo/component.h"

namespace tstorm::runtime::testutil {

/// Emits the integers [0, limit) then goes quiet. When a `gate` is given,
/// stays quiet until the test flips it — lets tests wait out the cluster's
/// staggered worker startup so exact tuple counts are deterministic.
class SeqSpout : public topo::Spout {
 public:
  SeqSpout(std::shared_ptr<std::int64_t> next, std::int64_t limit,
           std::shared_ptr<bool> gate = nullptr, double cost_mc = 0.1)
      : next_(std::move(next)),
        limit_(limit),
        gate_(std::move(gate)),
        cost_mc_(cost_mc) {}

  std::optional<topo::Tuple> next_tuple() override {
    if (gate_ != nullptr && !*gate_) return std::nullopt;
    if (*next_ >= limit_) return std::nullopt;
    return topo::Tuple{(*next_)++};
  }
  double cpu_cost_mega_cycles() const override { return cost_mc_; }

 private:
  std::shared_ptr<std::int64_t> next_;  // shared across spout tasks
  std::int64_t limit_;
  std::shared_ptr<bool> gate_;
  double cost_mc_;
};

/// Records (task_index, value) for every tuple it sees, into shared state.
class RecordingBolt : public topo::Bolt {
 public:
  using Log = std::vector<std::pair<int, std::int64_t>>;

  RecordingBolt(std::shared_ptr<Log> log, double cost_mc = 0.1,
                bool forward = false)
      : log_(std::move(log)), cost_mc_(cost_mc), forward_(forward) {}

  void prepare(int task_index, int /*parallelism*/) override {
    index_ = task_index;
  }
  void execute(const topo::Tuple& input, topo::BoltContext& ctx) override {
    log_->emplace_back(index_, input.get_int(0));
    if (forward_) ctx.emit(input);
  }
  double cpu_cost_mega_cycles(const topo::Tuple&) const override {
    return cost_mc_;
  }

 private:
  std::shared_ptr<Log> log_;
  double cost_mc_;
  bool forward_;
  int index_ = 0;
};

/// A bolt whose service time is configurable (for overload/timeout tests).
class SlowBolt : public topo::Bolt {
 public:
  explicit SlowBolt(double cost_mc) : cost_mc_(cost_mc) {}
  void execute(const topo::Tuple&, topo::BoltContext&) override {}
  double cpu_cost_mega_cycles(const topo::Tuple&) const override {
    return cost_mc_;
  }

 private:
  double cost_mc_;
};

}  // namespace tstorm::runtime::testutil
