// Tick tuples: periodic unanchored signals delivered to bolts (Storm's
// topology.tick.tuple.freq.secs), used for windowed flushes.
#include <gtest/gtest.h>

#include "runtime/cluster.h"
#include "test_util.h"

namespace tstorm::runtime {
namespace {

using testutil::RecordingBolt;
using testutil::SeqSpout;

/// Accumulates inputs, flushes the count downstream on every tick.
class WindowBolt : public topo::Bolt {
 public:
  explicit WindowBolt(std::shared_ptr<std::vector<std::int64_t>> flushes)
      : flushes_(std::move(flushes)) {}

  void execute(const topo::Tuple&, topo::BoltContext&) override {
    ++accumulated_;
  }
  void on_tick(topo::BoltContext& ctx) override {
    flushes_->push_back(accumulated_);
    ctx.emit(topo::Tuple{accumulated_});
    accumulated_ = 0;
  }
  double cpu_cost_mega_cycles(const topo::Tuple&) const override {
    return 0.1;
  }

 private:
  std::shared_ptr<std::vector<std::int64_t>> flushes_;
  std::int64_t accumulated_ = 0;
};

struct TickFixture {
  std::shared_ptr<std::int64_t> counter = std::make_shared<std::int64_t>(0);
  std::shared_ptr<bool> gate = std::make_shared<bool>(false);
  std::shared_ptr<std::vector<std::int64_t>> flushes =
      std::make_shared<std::vector<std::int64_t>>();
  std::shared_ptr<RecordingBolt::Log> sink =
      std::make_shared<RecordingBolt::Log>();

  topo::Topology topology(double tick_interval) {
    topo::TopologyBuilder b;
    auto c = counter;
    auto g = gate;
    b.set_spout("s",
                [c, g] {
                  return std::make_unique<SeqSpout>(c, 1'000'000, g);
                },
                1)
        .output_fields({"v"})
        .emit_interval(0.01);  // 100 tuples/s
    auto f = flushes;
    b.set_bolt("window", [f] { return std::make_unique<WindowBolt>(f); }, 1)
        .output_fields({"count"})
        .shuffle_grouping("s")
        .tick_interval(tick_interval);
    auto lg = sink;
    b.set_bolt("sink", [lg] { return std::make_unique<RecordingBolt>(lg); },
               1)
        .shuffle_grouping("window");
    return b.build("ticky", 2, 1);
  }
};

TEST(Tick, FiresAtConfiguredInterval) {
  sim::Simulation sim;
  Cluster c(sim, {});
  TickFixture f;
  c.submit(f.topology(5.0));
  sim.run_until(15.0);
  *f.gate = true;
  sim.run_until(120.0);
  // Worker starts ~2.5-12 s in; roughly one flush per 5 s afterwards.
  EXPECT_GE(f.flushes->size(), 18u);
  EXPECT_LE(f.flushes->size(), 24u);
}

TEST(Tick, WindowedCountsSumToInput) {
  sim::Simulation sim;
  Cluster c(sim, {});
  TickFixture f;
  c.submit(f.topology(5.0));
  sim.run_until(15.0);
  *f.gate = true;
  sim.run_until(300.0);
  std::int64_t flushed = 0;
  for (auto v : *f.flushes) flushed += v;
  // Everything emitted so far was either flushed or is in the current
  // window / in flight.
  EXPECT_GT(flushed, 0);
  EXPECT_LE(flushed, *f.counter);
  EXPECT_GE(flushed, *f.counter - 1000);
}

TEST(Tick, EmissionsReachDownstreamUnanchored) {
  sim::Simulation sim;
  Cluster c(sim, {});
  TickFixture f;
  c.submit(f.topology(5.0));
  sim.run_until(15.0);
  *f.gate = true;
  sim.run_until(120.0);
  // Sink received the flush tuples...
  EXPECT_GE(f.sink->size(), 18u);
  // ...and unanchored tick emissions caused no failures.
  EXPECT_EQ(c.completion().total_failed(), 0u);
}

TEST(Tick, ZeroIntervalMeansNoTicks) {
  sim::Simulation sim;
  Cluster c(sim, {});
  TickFixture f;
  c.submit(f.topology(0.0));
  *f.gate = true;
  sim.run_until(60.0);
  EXPECT_TRUE(f.flushes->empty());
}

TEST(Tick, NegativeIntervalRejected) {
  topo::TopologyBuilder b;
  EXPECT_THROW(b.set_bolt("x", [] {
                    return std::unique_ptr<topo::Bolt>();
                  },
                          1)
                   .tick_interval(-1.0),
               topo::TopologyError);
}

TEST(Tick, SurvivesReassignment) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.smooth_reassignment = true;
  Cluster c(sim, cfg);
  TickFixture f;
  const auto id = c.submit(f.topology(5.0));
  sim.run_until(15.0);
  *f.gate = true;
  sim.run_until(60.0);

  // Move everything to node 9.
  sched::Placement p;
  for (auto t : c.tasks_of(id)) p[t] = c.slot_index(9, 0);
  ASSERT_TRUE(c.nimbus().apply_placement(id, p, c.nimbus().next_version()));
  sim.run_until(150.0);

  // Ticks keep flowing after the handover (new instances re-arm them).
  const auto flushes_now = f.flushes->size();
  sim.run_until(200.0);
  EXPECT_GT(f.flushes->size(), flushes_now + 5);
}

}  // namespace
}  // namespace tstorm::runtime
