// Reassignment semantics: stock Storm's abrupt worker replacement versus
// T-Storm's smooth procedure (new workers first, delayed shutdown, spout
// halt, dispatcher routing by assignment version) — paper section IV-D.
#include <gtest/gtest.h>

#include "runtime/cluster.h"
#include "test_util.h"

namespace tstorm::runtime {
namespace {

using testutil::RecordingBolt;
using testutil::SeqSpout;

struct Fixture {
  std::shared_ptr<std::int64_t> counter = std::make_shared<std::int64_t>(0);
  std::shared_ptr<RecordingBolt::Log> log =
      std::make_shared<RecordingBolt::Log>();

  topo::Topology topology(std::int64_t n_tuples = 1'000'000) {
    topo::TopologyBuilder b;
    auto c = counter;
    b.set_spout("s",
                [c, n_tuples] { return std::make_unique<SeqSpout>(c, n_tuples); },
                1)
        .output_fields({"v"})
        .emit_interval(0.005);
    auto l = log;
    b.set_bolt("b", [l] { return std::make_unique<RecordingBolt>(l); }, 2)
        .shuffle_grouping("s");
    return b.build("reassign", 3, 1);
  }
};

/// Moves every task of `topo` to the slots of `target_node`.
void move_to_node(Cluster& c, sched::TopologyId topo, int target_node) {
  sched::Placement p;
  int port = 0;
  // One slot per topology per node: put everything in one worker.
  for (auto t : c.tasks_of(topo)) {
    p[t] = c.slot_index(target_node, port);
  }
  ASSERT_TRUE(c.nimbus().apply_placement(topo, p, c.nimbus().next_version()));
}

TEST(Reassignment, StormModeRestartsWorkersAbruptly) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.smooth_reassignment = false;
  Cluster c(sim, cfg);
  Fixture f;
  const auto id = c.submit(f.topology());
  sim.run_until(60.0);
  const auto completed_before = c.completion().total_completed();
  EXPECT_GT(completed_before, 0u);

  move_to_node(c, id, 9);
  sim.run_until(65.0);  // before the next supervisor sync completes startup
  // Old workers die at sync; new worker needs spawn delay: there is a
  // window with no live instance.
  sim.run_until(120.0);
  EXPECT_GT(c.dropped_messages(), 0u);
  // The topology recovers and continues completing tuples.
  const auto after = c.completion().total_completed();
  EXPECT_GT(after, completed_before);
  // Everything now runs on node 9, in a single worker.
  for (auto* ex : c.executors_on_node(9)) {
    EXPECT_EQ(ex->info().topology, id);
  }
  EXPECT_EQ(c.nodes_in_use(), 1);
}

TEST(Reassignment, TStormModeAvoidsTupleLoss) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.smooth_reassignment = true;
  Cluster c(sim, cfg);
  Fixture f;
  const auto id = c.submit(f.topology());
  sim.run_until(60.0);
  const auto drops_before = c.dropped_messages();
  const auto failed_before = c.completion().total_failed();

  move_to_node(c, id, 9);
  sim.run_until(150.0);
  // Smooth handover: no tuple loss and no failures beyond the baseline.
  EXPECT_EQ(c.completion().total_failed(), failed_before);
  EXPECT_EQ(c.dropped_messages(), drops_before);
  EXPECT_EQ(c.nodes_in_use(), 1);
}

TEST(Reassignment, TStormOldAndNewWorkersCoexist) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.smooth_reassignment = true;
  Cluster c(sim, cfg);
  Fixture f;
  const auto id = c.submit(f.topology());
  sim.run_until(60.0);

  const auto tasks = c.tasks_of(id);
  move_to_node(c, id, 9);
  // Wait for the next supervisor sync (<=10 s) + worker spawn (2 s); old
  // workers drain for 20 s, so both instances exist in between.
  bool coexisted = false;
  for (double t = 61; t <= 85 && !coexisted; t += 1.0) {
    sim.run_until(t);
    for (auto task : tasks) {
      if (c.instances_of(task).size() >= 2) {
        coexisted = true;
        break;
      }
    }
  }
  EXPECT_TRUE(coexisted);
  // After the drain delay everything converges to single instances.
  sim.run_until(130.0);
  for (auto task : tasks) {
    EXPECT_LE(c.instances_of(task).size(), 1u);
  }
}

TEST(Reassignment, UnchangedWorkerAdoptsNewVersionInPlace) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.smooth_reassignment = true;
  Cluster c(sim, cfg);
  Fixture f;
  const auto id = c.submit(f.topology());
  sim.run_until(30.0);

  // Re-publish the identical placement under a fresh version.
  const auto* rec = c.coordination().get(id);
  const auto placement = rec->placement;
  const auto v2 = c.nimbus().next_version();
  ASSERT_TRUE(c.nimbus().apply_placement(id, placement, v2));
  sim.run_until(45.0);  // one sync later

  // No restart happened (no drops), and live workers carry the new
  // version.
  EXPECT_EQ(c.dropped_messages(), 0u);
  for (auto task : c.tasks_of(id)) {
    for (auto* ex : c.instances_of(task)) {
      EXPECT_EQ(ex->worker().version(), v2);
    }
  }
}

TEST(Reassignment, SpoutsPauseDuringTStormHandover) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.smooth_reassignment = true;
  Cluster c(sim, cfg);
  Fixture f;
  const auto id = c.submit(f.topology());
  sim.run_until(60.0);
  move_to_node(c, id, 9);

  // Find the sync moment, then verify no *new* roots are emitted during
  // the halt window (completions of in-flight tuples may still arrive).
  sim.run_until(70.0);
  const auto emitted_at_70 = static_cast<std::uint64_t>(*f.counter);
  sim.run_until(76.0);  // inside halt (sync <=70, halt = start 2 s + 10 s)
  const auto emitted_at_76 = static_cast<std::uint64_t>(*f.counter);
  sim.run_until(120.0);
  const auto emitted_late = static_cast<std::uint64_t>(*f.counter);
  EXPECT_EQ(emitted_at_76, emitted_at_70);  // halted
  EXPECT_GT(emitted_late, emitted_at_76);   // resumed
}

TEST(Reassignment, WorkerStatesProgressThroughDrain) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.smooth_reassignment = true;
  Cluster c(sim, cfg);
  Fixture f;
  const auto id = c.submit(f.topology());
  sim.run_until(60.0);

  // Locate a current worker.
  const auto* rec = c.coordination().get(id);
  const auto slot = rec->placement.begin()->second;
  Worker* w = c.supervisor(c.slot_node(slot)).worker_at(c.slot_port(slot));
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->state(), WorkerState::kRunning);

  move_to_node(c, id, 9);
  sim.run_until(75.0);
  // The displaced worker is draining (owned by the supervisor's drain
  // list), its replacement at node 9 is running or starting.
  const auto& draining = c.supervisor(c.slot_node(slot)).draining();
  bool found_draining = false;
  for (const auto& d : draining) {
    if (d->state() == WorkerState::kDraining) found_draining = true;
  }
  EXPECT_TRUE(found_draining);
  sim.run_until(120.0);
  EXPECT_TRUE(c.supervisor(c.slot_node(slot)).draining().empty());
}

}  // namespace
}  // namespace tstorm::runtime
