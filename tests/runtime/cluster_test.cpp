#include "runtime/cluster.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "test_util.h"

namespace tstorm::runtime {
namespace {

using testutil::RecordingBolt;
using testutil::SeqSpout;

topo::Topology small_topology(int workers = 4, int ackers = 2) {
  topo::TopologyBuilder b;
  auto counter = std::make_shared<std::int64_t>(0);
  b.set_spout("s",
              [counter] { return std::make_unique<SeqSpout>(counter, 100); },
              2)
      .output_fields({"v"})
      .emit_interval(0.001);
  auto log = std::make_shared<RecordingBolt::Log>();
  b.set_bolt("b", [log] { return std::make_unique<RecordingBolt>(log); }, 3)
      .shuffle_grouping("s");
  return b.build("small", workers, ackers);
}

TEST(Cluster, SlotIndexRoundTrip) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.num_nodes = 10;
  cfg.slots_per_node = 4;
  Cluster c(sim, cfg);
  for (int n = 0; n < 10; ++n) {
    for (int p = 0; p < 4; ++p) {
      const auto s = c.slot_index(n, p);
      EXPECT_EQ(c.slot_node(s), n);
      EXPECT_EQ(c.slot_port(s), p);
    }
  }
  EXPECT_EQ(c.all_slots().size(), 40u);
}

TEST(Cluster, SubmitCreatesTasksInDeclarationOrder) {
  sim::Simulation sim;
  Cluster c(sim, {});
  const auto id = c.submit(small_topology());
  // 2 spouts + 3 bolts + 2 ackers.
  const auto tasks = c.tasks_of(id);
  EXPECT_EQ(tasks.size(), 7u);
  EXPECT_EQ(c.tasks_of_component(id, "s").size(), 2u);
  EXPECT_EQ(c.tasks_of_component(id, "b").size(), 3u);
  EXPECT_EQ(c.acker_tasks(id).size(), 2u);
  EXPECT_TRUE(c.task_info(tasks[0]).is_spout());
  EXPECT_EQ(c.task_info(tasks[0]).index, 0);
  EXPECT_EQ(c.task_info(tasks[1]).index, 1);
  EXPECT_TRUE(c.task_info(tasks[6]).is_acker());
}

TEST(Cluster, SecondTopologyGetsDistinctTaskIds) {
  sim::Simulation sim;
  Cluster c(sim, {});
  const auto a = c.submit(small_topology());
  const auto b = c.submit(small_topology());
  const auto ta = c.tasks_of(a);
  const auto tb = c.tasks_of(b);
  std::set<sched::TaskId> all(ta.begin(), ta.end());
  all.insert(tb.begin(), tb.end());
  EXPECT_EQ(all.size(), ta.size() + tb.size());
}

TEST(Cluster, SubmissionPublishesAssignment) {
  sim::Simulation sim;
  Cluster c(sim, {});
  const auto id = c.submit(small_topology());
  const auto* record = c.coordination().get(id);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->placement.size(), 7u);
  EXPECT_GT(record->version, 0);
}

TEST(Cluster, WorkersStartAfterSupervisorSyncAndSpawnDelay) {
  sim::Simulation sim;
  Cluster c(sim, {});
  c.submit(small_topology());
  EXPECT_EQ(c.nodes_in_use(), 0);
  // Supervisors sync within 10 s, workers spawn within 2 s more.
  sim.run_until(13.0);
  EXPECT_GT(c.nodes_in_use(), 0);
}

TEST(Cluster, SchedulerInputContainsEverything) {
  sim::Simulation sim;
  Cluster c(sim, {});
  const auto id = c.submit(small_topology(4, 2));
  const auto in = c.scheduler_input({id});
  EXPECT_EQ(in.executors.size(), 7u);
  EXPECT_EQ(in.slots.size(), 40u);
  ASSERT_EQ(in.topologies.size(), 1u);
  EXPECT_EQ(in.topologies[0].requested_workers, 4);
  EXPECT_EQ(in.nodes.size(), 10u);
  EXPECT_DOUBLE_EQ(in.node_capacity_mhz(0), 8000.0);
  // Default homogeneous memory / NIC capacities ride along.
  EXPECT_DOUBLE_EQ(in.nodes[0].capacity[sched::kMemoryMib], 16384.0);
  EXPECT_DOUBLE_EQ(in.nodes[0].capacity[sched::kNetworkMbps], 1000.0);
  // Task edges: 2 spouts x 3 bolts.
  EXPECT_EQ(in.topology_edges.size(), 6u);
  EXPECT_TRUE(in.occupied_slots.empty());
}

TEST(Cluster, SchedulerInputMarksOtherTopologiesSlotsOccupied) {
  sim::Simulation sim;
  Cluster c(sim, {});
  const auto a = c.submit(small_topology());
  const auto b = c.submit(small_topology());
  const auto in = c.scheduler_input({b});
  const auto* rec_a = c.coordination().get(a);
  std::set<sched::SlotIndex> a_slots;
  for (const auto& [t, s] : rec_a->placement) a_slots.insert(s);
  EXPECT_EQ(in.occupied_slots.size(), a_slots.size());
}

TEST(Cluster, KillTopologyStopsWorkers) {
  sim::Simulation sim;
  Cluster c(sim, {});
  const auto id = c.submit(small_topology());
  sim.run_until(15.0);
  EXPECT_GT(c.nodes_in_use(), 0);
  c.kill_topology(id);
  sim.run_until(30.0);  // next sync retires the workers
  EXPECT_EQ(c.nodes_in_use(), 0);
}

TEST(Cluster, NodeCapacityFromConfig) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.cores_per_node = 4;
  cfg.per_core_mhz = 2000.0;
  Cluster c(sim, cfg);
  EXPECT_DOUBLE_EQ(c.node(0).capacity_mhz(), 8000.0);
  EXPECT_DOUBLE_EQ(cfg.node_capacity_mhz(), 8000.0);
}

TEST(Cluster, ResolvePrefersDispatcherRule) {
  // Covered end-to-end in reassignment tests; here: unknown task.
  sim::Simulation sim;
  Cluster c(sim, {});
  EXPECT_EQ(c.resolve(123, 1), nullptr);
}

TEST(WorkerNode, ProcessorSharingFactor) {
  WorkerNode n(0, 4, 2000.0);
  for (int i = 0; i < 4; ++i) n.service_started();
  EXPECT_DOUBLE_EQ(n.processor_sharing_factor(), 1.0);
  for (int i = 0; i < 4; ++i) n.service_started();
  EXPECT_DOUBLE_EQ(n.processor_sharing_factor(), 2.0);
}

TEST(WorkerNode, CrowdingCountsWorkersAndBusyThreads) {
  WorkerNode n(0, 4, 2000.0);
  EXPECT_DOUBLE_EQ(n.crowding(2.5), 0.0);
  n.worker_started();
  n.worker_started();
  EXPECT_DOUBLE_EQ(n.crowding(2.5), 1.0);  // 5 - 4
  n.service_started();
  EXPECT_DOUBLE_EQ(n.crowding(2.5), 2.0);
  n.worker_finished();
  n.service_finished();
  EXPECT_DOUBLE_EQ(n.crowding(2.5), 0.0);
}

TEST(Nimbus, VersionsAreMonotone) {
  sim::Simulation sim;
  Cluster c(sim, {});
  const auto v1 = c.nimbus().next_version();
  const auto v2 = c.nimbus().next_version();
  EXPECT_GT(v2, v1);
  sim.run_until(5.0);
  const auto v3 = c.nimbus().next_version();
  EXPECT_GT(v3, v2);
  EXPECT_EQ(v3, 5000);  // milliseconds of simulated time
}

TEST(Nimbus, ApplyPlacementValidations) {
  sim::Simulation sim;
  Cluster c(sim, {});
  const auto id = c.submit(small_topology());
  const auto tasks = c.tasks_of(id);
  const auto current = c.coordination().get(id)->version;

  sched::Placement p;
  for (auto t : tasks) p[t] = 0;
  // Stale version rejected.
  EXPECT_FALSE(c.nimbus().apply_placement(id, p, current));
  // Missing task rejected.
  sched::Placement partial = p;
  partial.erase(tasks[0]);
  EXPECT_FALSE(
      c.nimbus().apply_placement(id, partial, c.nimbus().next_version()));
  // Out-of-range slot rejected.
  sched::Placement bad = p;
  bad[tasks[0]] = 9999;
  EXPECT_FALSE(c.nimbus().apply_placement(id, bad, c.nimbus().next_version()));
  // Valid placement accepted.
  EXPECT_TRUE(c.nimbus().apply_placement(id, p, c.nimbus().next_version()));
  EXPECT_EQ(c.coordination().get(id)->placement.at(tasks[0]), 0);
}

TEST(Nimbus, ApplyPlacementRejectsCrossTopologySlotCollision) {
  sim::Simulation sim;
  Cluster c(sim, {});
  const auto a = c.submit(small_topology());
  const auto b = c.submit(small_topology());
  const auto* rec_a = c.coordination().get(a);
  const auto slot_of_a = rec_a->placement.begin()->second;
  sched::Placement p;
  for (auto t : c.tasks_of(b)) p[t] = slot_of_a;
  EXPECT_FALSE(c.nimbus().apply_placement(b, p, c.nimbus().next_version()));
}

TEST(Nimbus, BulkApplyAtomicity) {
  sim::Simulation sim;
  Cluster c(sim, {});
  const auto a = c.submit(small_topology());
  const auto b = c.submit(small_topology());
  std::map<sched::TopologyId, sched::Placement> good;
  for (auto t : c.tasks_of(a)) good[a][t] = 0;
  for (auto t : c.tasks_of(b)) good[b][t] = 1;
  EXPECT_TRUE(c.nimbus().apply_placements(good, c.nimbus().next_version()));

  // Colliding placements rejected wholesale; nothing changes.
  const auto va = c.coordination().get(a)->version;
  std::map<sched::TopologyId, sched::Placement> bad;
  for (auto t : c.tasks_of(a)) bad[a][t] = 2;
  for (auto t : c.tasks_of(b)) bad[b][t] = 2;  // same slot
  EXPECT_FALSE(c.nimbus().apply_placements(bad, c.nimbus().next_version()));
  EXPECT_EQ(c.coordination().get(a)->version, va);
}

}  // namespace
}  // namespace tstorm::runtime
