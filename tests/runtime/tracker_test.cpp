// TupleTracker edge cases: per-spout pending bookkeeping must not leak
// map entries once counts return to zero, and a forced re-registration of
// a tracked root id (the spout path re-draws against contains(), but
// direct callers and replay paths can still collide) must settle the old
// entry without corrupting accounting — including when the predecessor is
// a failed entry sitting out its late-ack grace window.
#include <gtest/gtest.h>

#include <memory>

#include "runtime/cluster.h"
#include "test_util.h"

namespace tstorm::runtime {
namespace {

using testutil::SeqSpout;

topo::TupleRef make_tuple(std::int64_t v) {
  return topo::TupleRef::make(topo::Tuple{v});
}

TEST(Tracker, ContainsTracksRegistrationLifecycle) {
  sim::Simulation sim;
  Cluster cluster(sim, {});
  auto& tracker = cluster.tracker();
  EXPECT_FALSE(tracker.contains(7));
  tracker.register_root(7, /*spout_task=*/0, make_tuple(1), /*attempt=*/0);
  EXPECT_TRUE(tracker.contains(7));
  EXPECT_EQ(tracker.in_flight(), 1u);
  EXPECT_EQ(tracker.pending(0), 1);
  EXPECT_EQ(tracker.pending_spout_entries(), 1u);
  tracker.on_ack_complete(7);
  EXPECT_FALSE(tracker.contains(7));
  EXPECT_EQ(tracker.in_flight(), 0u);
  EXPECT_EQ(tracker.pending(0), 0);
  // The regression: a zero-count per-spout slot must be erased, not kept
  // forever (long-lived clusters cycle through many topologies/spouts).
  EXPECT_EQ(tracker.pending_spout_entries(), 0u);
  EXPECT_EQ(tracker.tracked_entries(), 0u);
}

TEST(Tracker, RetainsTupleAfterEmitterReleasesIt) {
  // The replay contract: the tracker's entry is the last owner of a root
  // tuple once the emitting executor shuts down and drops its queues. The
  // pooled block must stay live (not recycled out from under a pending
  // replay) until the root settles.
  sim::Simulation sim;
  Cluster cluster(sim, {});
  auto& tracker = cluster.tracker();
  const std::uint64_t live0 = topo::detail::tuple_pool_stats().live_blocks;
  {
    topo::TupleRef emitted = make_tuple(99);
    tracker.register_root(11, /*spout_task=*/0, emitted, /*attempt=*/0);
    // Emitter's handle dies at scope exit — executor shutdown in miniature.
  }
  EXPECT_EQ(topo::detail::tuple_pool_stats().live_blocks, live0 + 1);
  tracker.on_ack_complete(11);
  EXPECT_EQ(topo::detail::tuple_pool_stats().live_blocks, live0);
}

TEST(Tracker, ForcedCollisionOnLiveEntrySettlesPredecessor) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.tuple_timeout = 5.0;
  cfg.max_replays = 0;
  Cluster cluster(sim, cfg);
  auto& tracker = cluster.tracker();

  tracker.register_root(7, 0, make_tuple(1), 0);
  tracker.register_root(7, 0, make_tuple(2), 0);  // forced collision

  // The live predecessor was settled as a failure; the new entry owns the
  // id. Nothing double-counts.
  EXPECT_TRUE(tracker.contains(7));
  EXPECT_EQ(tracker.total_registered(), 2u);
  EXPECT_EQ(tracker.in_flight(), 1u);
  EXPECT_EQ(tracker.pending(0), 1);
  EXPECT_EQ(cluster.completion().total_failed(), 1u);

  tracker.on_ack_complete(7);
  EXPECT_EQ(cluster.completion().total_completed(), 1u);
  EXPECT_EQ(tracker.in_flight(), 0u);
  EXPECT_EQ(tracker.pending_spout_entries(), 0u);

  // The predecessor's cancelled timeout must never fire; conservation
  // holds after everything armed has elapsed.
  sim.run_until(60.0);
  EXPECT_EQ(cluster.completion().total_failed(), 1u);
  EXPECT_EQ(cluster.completion().total_completed(), 1u);
  EXPECT_EQ(tracker.tracked_entries(), 0u);
}

TEST(Tracker, CollisionWithFailedEntryInGraceWindowIsEpochGuarded) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.tuple_timeout = 5.0;  // grace erase at 5 + 6*5 = 35 s
  cfg.max_replays = 0;
  Cluster cluster(sim, cfg);
  auto& tracker = cluster.tracker();

  tracker.register_root(7, 0, make_tuple(1), 0);
  sim.run_until(6.0);  // timeout fired at t=5: entry failed, in grace
  EXPECT_TRUE(tracker.contains(7));
  EXPECT_EQ(tracker.in_flight(), 0u);
  EXPECT_EQ(cluster.completion().total_failed(), 1u);

  // Re-register over the failed entry. The old grace-erase closure (armed
  // for t=35) carries the stale epoch and must NOT erase the new entry.
  tracker.register_root(7, 0, make_tuple(2), 0);
  EXPECT_TRUE(tracker.contains(7));
  EXPECT_EQ(tracker.in_flight(), 1u);
  // Settling a failed predecessor records nothing extra.
  EXPECT_EQ(cluster.completion().total_failed(), 1u);

  // t=11: the new entry times out too. t=35: the stale grace closure
  // fires — the entry (epoch 2, grace until t=41) must survive it.
  sim.run_until(36.0);
  EXPECT_TRUE(tracker.contains(7));
  EXPECT_EQ(cluster.completion().total_failed(), 2u);

  // A late ack inside the second grace window still lands on the right
  // entry and is recorded as a late completion.
  tracker.on_ack_complete(7);
  EXPECT_FALSE(tracker.contains(7));
  EXPECT_EQ(cluster.completion().total_completed(), 1u);

  sim.run_until(60.0);
  EXPECT_EQ(tracker.tracked_entries(), 0u);
  EXPECT_EQ(tracker.pending_spout_entries(), 0u);
  EXPECT_EQ(cluster.completion().total_failed(), 2u);
  EXPECT_EQ(cluster.completion().total_completed(), 1u);
}

TEST(Tracker, PendingSpoutEntriesDrainToZeroAfterTopologyQuiesces) {
  sim::Simulation sim;
  Cluster cluster(sim, {});

  auto counter = std::make_shared<std::int64_t>(0);
  auto gate = std::make_shared<bool>(false);
  topo::TopologyBuilder b;
  b.set_spout(
       "s",
       [counter, gate] {
         return std::make_unique<SeqSpout>(counter, 150, gate);
       },
       1)
      .output_fields({"v"})
      .emit_interval(0.001);
  b.set_bolt(
       "b", [] { return std::make_unique<testutil::SlowBolt>(0.1); }, 2)
      .shuffle_grouping("s");
  cluster.submit(b.build("finite", 4, 2));

  sim.run_until(15.0);  // workers all started
  *gate = true;
  sim.run_until(120.0);  // everything emitted and acked long ago

  auto& tracker = cluster.tracker();
  EXPECT_EQ(cluster.completion().total_completed(), 150u);
  EXPECT_EQ(tracker.in_flight(), 0u);
  EXPECT_EQ(tracker.tracked_entries(), 0u);
  // The drained spout's pending slot is gone, not parked at zero.
  EXPECT_EQ(tracker.pending_spout_entries(), 0u);
}

}  // namespace
}  // namespace tstorm::runtime
