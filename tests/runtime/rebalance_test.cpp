// Nimbus rebalance (the paper uses Storm's `rebalance` command to enforce
// T-Storm's initial worker setting) and acker state expiry.
#include <gtest/gtest.h>

#include "runtime/cluster.h"
#include "sched/round_robin.h"
#include "test_util.h"

namespace tstorm::runtime {
namespace {

using testutil::RecordingBolt;
using testutil::SeqSpout;

topo::Topology simple_topology(int workers) {
  topo::TopologyBuilder b;
  auto counter = std::make_shared<std::int64_t>(0);
  b.set_spout("s",
              [counter] {
                return std::make_unique<SeqSpout>(counter, 1'000'000);
              },
              2)
      .output_fields({"v"})
      .emit_interval(0.005);
  auto log = std::make_shared<RecordingBolt::Log>();
  b.set_bolt("b", [log] { return std::make_unique<RecordingBolt>(log); }, 4)
      .shuffle_grouping("s");
  return b.build("rb", workers, 2);
}

TEST(Rebalance, ChangesWorkerCount) {
  sim::Simulation sim;
  Cluster c(sim, {});
  const auto id = c.submit(simple_topology(8));
  sim.run_until(30.0);
  EXPECT_EQ(sched::slots_used(c.coordination().get(id)->placement), 8);

  sched::RoundRobinScheduler rr;
  ASSERT_TRUE(c.nimbus().rebalance(id, rr, /*num_workers_override=*/2));
  EXPECT_EQ(sched::slots_used(c.coordination().get(id)->placement), 2);

  // Supervisors roll the change out; the topology keeps running.
  sim.run_until(90.0);
  EXPECT_EQ(c.slots_in_use(), 2);
  const auto completed = c.completion().total_completed();
  sim.run_until(150.0);
  EXPECT_GT(c.completion().total_completed(), completed);
}

TEST(Rebalance, KeepsOwnWorkerCountWhenNoOverride) {
  sim::Simulation sim;
  Cluster c(sim, {});
  const auto id = c.submit(simple_topology(4));
  sim.run_until(20.0);
  sched::RoundRobinScheduler rr;
  ASSERT_TRUE(c.nimbus().rebalance(id, rr));
  EXPECT_EQ(sched::slots_used(c.coordination().get(id)->placement), 4);
}

TEST(Rebalance, UnknownTopologyFails) {
  sim::Simulation sim;
  Cluster c(sim, {});
  sched::RoundRobinScheduler rr;
  EXPECT_FALSE(c.nimbus().rebalance(42, rr));
}

TEST(AckerExpiry, PendingStateBounded) {
  // A topology whose bolt never keeps up: most trees never complete, yet
  // the ackers' pending maps must not grow without bound.
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.max_replays = 0;
  cfg.tuple_timeout = 5.0;
  cfg.late_ack_grace_factor = 2.0;
  Cluster c(sim, cfg);
  topo::TopologyBuilder b;
  auto counter = std::make_shared<std::int64_t>(0);
  b.set_spout("s",
              [counter] {
                return std::make_unique<SeqSpout>(counter, 10'000'000);
              },
              1)
      .output_fields({"v"})
      .emit_interval(0.001);  // 1000 tuples/s
  b.set_bolt("slow", [] { return std::make_unique<testutil::SlowBolt>(500.0); },
             1)
      .shuffle_grouping("s");  // 0.25 s per tuple: hopeless backlog
  const auto id = c.submit(b.build("leak", 2, 1));
  sim.run_until(300.0);

  const auto acker_task = c.acker_tasks(id).front();
  auto instances = c.instances_of(acker_task);
  ASSERT_FALSE(instances.empty());
  auto* acker = dynamic_cast<AckerExecutor*>(instances.front());
  ASSERT_NE(acker, nullptr);
  // ~300 000 roots were registered; with expiry the map holds at most the
  // last grace window's worth (~10 s * 1000/s plus sweep slack).
  EXPECT_LT(acker->pending_entries(), 60'000u);
  EXPECT_GT(c.completion().total_failed(), 10'000u);
}

}  // namespace
}  // namespace tstorm::runtime
