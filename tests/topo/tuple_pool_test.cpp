// Tuple memory model tests: intrusive refcount lifecycle, slab/freelist
// block recycling, inline-vs-pooled string storage, and the cached wire
// size / memoized field hash. These pin the invariants the zero-alloc
// benchmark gate (core_event_bench --assert-zero-alloc) relies on.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "topo/tuple.h"

namespace tstorm::topo {
namespace {

using detail::tuple_pool_stats;

TEST(TupleRef, RefcountLifecycle) {
  TupleRef a = TupleRef::make(Tuple{std::int64_t{7}});
  EXPECT_TRUE(static_cast<bool>(a));
  EXPECT_EQ(a.use_count(), 1u);
  EXPECT_EQ(a->get_int(0), 7);

  TupleRef b = a;  // copy bumps
  EXPECT_EQ(a.use_count(), 2u);
  EXPECT_EQ(b.use_count(), 2u);

  TupleRef c = std::move(b);  // move transfers, no bump
  EXPECT_FALSE(static_cast<bool>(b));
  EXPECT_EQ(a.use_count(), 2u);
  EXPECT_EQ(c.use_count(), 2u);

  c.reset();
  EXPECT_EQ(a.use_count(), 1u);
  a.reset();
  EXPECT_FALSE(static_cast<bool>(a));
}

TEST(TupleRef, CopyAssignReleasesPrevious) {
  TupleRef a = TupleRef::make(Tuple{std::int64_t{1}});
  TupleRef b = TupleRef::make(Tuple{std::int64_t{2}});
  const std::uint64_t live = tuple_pool_stats().live_blocks;
  b = a;  // drops b's block (recycled), shares a's
  EXPECT_EQ(tuple_pool_stats().live_blocks, live - 1);
  EXPECT_EQ(a.use_count(), 2u);
  EXPECT_EQ(b->get_int(0), 1);
}

TEST(TupleRef, SelfAssignIsSafe) {
  TupleRef a = TupleRef::make(Tuple{std::int64_t{3}});
  TupleRef& alias = a;
  a = alias;
  EXPECT_EQ(a.use_count(), 1u);
  EXPECT_EQ(a->get_int(0), 3);
}

TEST(TupleRef, DropToZeroRecyclesBlock) {
  // Prime: slabs carve in batches of kBlocksPerSlab, so make sure at least
  // one block exists on the freelist before measuring.
  { TupleRef warm = TupleRef::make(Tuple{std::int64_t{0}}); }

  const std::uint64_t live0 = tuple_pool_stats().live_blocks;
  const std::uint64_t carved0 = tuple_pool_stats().blocks_carved;
  {
    TupleRef a = TupleRef::make(Tuple{std::int64_t{1}});
    EXPECT_EQ(tuple_pool_stats().live_blocks, live0 + 1);
  }
  EXPECT_EQ(tuple_pool_stats().live_blocks, live0);

  // The next make() must reuse the freed block, not carve a new slab.
  const std::uint64_t reuses0 = tuple_pool_stats().block_reuses;
  TupleRef b = TupleRef::make(Tuple{std::int64_t{2}});
  EXPECT_EQ(tuple_pool_stats().block_reuses, reuses0 + 1);
  EXPECT_EQ(tuple_pool_stats().blocks_carved, carved0);
  EXPECT_EQ(b->get_int(0), 2);
}

TEST(TupleRef, SteadyChurnCarvesNoNewBlocks) {
  // Prime the pool to this test's working-set depth, then churn: block and
  // string-buffer carve counts must both stay flat.
  {
    std::vector<TupleRef> warm;
    for (int i = 0; i < 64; ++i) {
      warm.push_back(TupleRef::make(Tuple{std::string(100, 'w'), i}));
    }
  }
  const std::uint64_t carved0 = tuple_pool_stats().blocks_carved;
  const std::uint64_t strings0 = tuple_pool_stats().string_carved;
  for (int round = 0; round < 100; ++round) {
    std::vector<TupleRef> batch;
    for (int i = 0; i < 64; ++i) {
      batch.push_back(TupleRef::make(Tuple{std::string(100, 'x'), i}));
    }
  }
  EXPECT_EQ(tuple_pool_stats().blocks_carved, carved0);
  EXPECT_EQ(tuple_pool_stats().string_carved, strings0);
}

TEST(Value, ShortStringsStayInline) {
  const std::uint64_t lent0 = tuple_pool_stats().string_buffers;
  Tuple t{std::string(Value::kInlineChars, 'a')};  // exactly at the limit
  EXPECT_EQ(tuple_pool_stats().string_buffers, lent0);
  EXPECT_EQ(t.get_string(0), std::string(Value::kInlineChars, 'a'));
}

TEST(Value, LongStringsBorrowAndReturnPooledBuffer) {
  const std::uint64_t lent0 = tuple_pool_stats().string_buffers;
  {
    Tuple t{std::string(Value::kInlineChars + 1, 'b')};
    EXPECT_EQ(tuple_pool_stats().string_buffers, lent0 + 1);
    EXPECT_EQ(t.get_string(0), std::string(Value::kInlineChars + 1, 'b'));
  }
  EXPECT_EQ(tuple_pool_stats().string_buffers, lent0);
}

TEST(Value, CopyDeepCopiesPooledString) {
  const std::string payload(200, 'c');
  Tuple a{payload};
  Tuple b = a;
  EXPECT_EQ(a.get_string(0), payload);
  EXPECT_EQ(b.get_string(0), payload);
  EXPECT_NE(a.get_string(0).data(), b.get_string(0).data());
}

TEST(Value, MoveTransfersPooledBuffer) {
  const std::uint64_t lent0 = tuple_pool_stats().string_buffers;
  Tuple a{std::string(200, 'd')};
  EXPECT_EQ(tuple_pool_stats().string_buffers, lent0 + 1);
  Tuple b = std::move(a);
  EXPECT_EQ(tuple_pool_stats().string_buffers, lent0 + 1);  // no extra lease
  EXPECT_EQ(b.get_string(0), std::string(200, 'd'));
}

TEST(Tuple, WideTupleSpillsAndReadsBack) {
  Tuple t{std::int64_t{0}, std::int64_t{1}, std::int64_t{2}, std::int64_t{3},
          std::int64_t{4}, std::int64_t{5}};
  ASSERT_EQ(t.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(t.get_int(i), static_cast<std::int64_t>(i));
  }
  Tuple copy = t;
  EXPECT_EQ(copy.get_int(5), 5);
}

TEST(Tuple, BytesCachedAtConstruction) {
  Tuple t{std::int64_t{1}, std::string(100, 'e')};
  const std::uint64_t expect = 8 + 8 + (4 + 100);
  EXPECT_EQ(t.bytes(), expect);
  // Copies and moves preserve the cached size.
  Tuple c = t;
  EXPECT_EQ(c.bytes(), expect);
  Tuple m = std::move(c);
  EXPECT_EQ(m.bytes(), expect);
}

TEST(Tuple, FieldHashMemoizedAndStable) {
  Tuple t{std::string("grouping-key"), std::int64_t{9}};
  const std::uint64_t h0 = t.field_hash(0);
  EXPECT_EQ(t.field_hash(0), h0);  // memoized read
  // Switching fields re-hashes; switching back must still be correct.
  const std::uint64_t h1 = t.field_hash(1);
  EXPECT_NE(h0, h1);
  EXPECT_EQ(t.field_hash(0), h0);

  // Hash agrees with the free function (the grouping contract).
  EXPECT_EQ(h0, hash_value(t.at(0)));

  // Same content, different tuple => same hash (routing stability).
  Tuple u{std::string("grouping-key")};
  EXPECT_EQ(u.field_hash(0), h0);
}

}  // namespace
}  // namespace tstorm::topo
