#include "topo/tuple.h"

#include <gtest/gtest.h>

namespace tstorm::topo {
namespace {

TEST(Tuple, AccessorsByType) {
  Tuple t{std::int64_t{42}, 3.5, std::string("hello")};
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.get_int(0), 42);
  EXPECT_DOUBLE_EQ(t.get_double(1), 3.5);
  EXPECT_EQ(t.get_string(2), "hello");
}

TEST(Tuple, EmptyTuple) {
  Tuple t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.bytes(), 8u);  // framing only
}

TEST(Tuple, WrongTypeThrows) {
  Tuple t{std::string("x")};
  EXPECT_THROW((void)t.get_int(0), std::bad_variant_access);
  // at() is unchecked in release builds (asserts in debug); out-of-range
  // access is no longer a throwing path.
}

TEST(Tuple, BytesCountsStringsByLength) {
  Tuple small{std::string(10, 'a')};
  Tuple large{std::string(10000, 'a')};
  EXPECT_EQ(large.bytes() - small.bytes(), 9990u);
}

TEST(Tuple, BytesNumericFixedSize) {
  Tuple t{std::int64_t{1}, 2.0};
  EXPECT_EQ(t.bytes(), 8u + 8u + 8u);
}

TEST(HashValue, DeterministicAndTypeSensitive) {
  EXPECT_EQ(hash_value(Value{std::string("word")}),
            hash_value(Value{std::string("word")}));
  EXPECT_NE(hash_value(Value{std::string("word")}),
            hash_value(Value{std::string("wird")}));
  EXPECT_EQ(hash_value(Value{std::int64_t{7}}),
            hash_value(Value{std::int64_t{7}}));
  EXPECT_NE(hash_value(Value{std::int64_t{7}}),
            hash_value(Value{std::int64_t{8}}));
}

TEST(HashValue, SpreadsAcrossBuckets) {
  // Fields grouping uses hash % n; verify reasonable spread over 8 tasks.
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) {
    const auto h = hash_value(Value{std::string("key") + std::to_string(i)});
    counts[h % 8]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 500);
    EXPECT_LT(c, 1500);
  }
}

TEST(ValueBytes, StringAndNumeric) {
  EXPECT_EQ(value_bytes(Value{std::string("abcd")}), 8u);  // 4 + len prefix
  EXPECT_EQ(value_bytes(Value{std::int64_t{1}}), 8u);
  EXPECT_EQ(value_bytes(Value{1.0}), 8u);
}

}  // namespace
}  // namespace tstorm::topo
