#include "topo/builder.h"

#include <gtest/gtest.h>

#include "topo/component.h"

namespace tstorm::topo {
namespace {

class NullSpout : public Spout {
 public:
  std::optional<Tuple> next_tuple() override { return std::nullopt; }
};

class NullBolt : public Bolt {
 public:
  void execute(const Tuple&, BoltContext&) override {}
  double cpu_cost_mega_cycles(const Tuple&) const override { return 0.1; }
};

std::unique_ptr<Spout> spout_factory() { return std::make_unique<NullSpout>(); }
std::unique_ptr<Bolt> bolt_factory() { return std::make_unique<NullBolt>(); }

TopologyBuilder two_stage() {
  TopologyBuilder b;
  b.set_spout("s", spout_factory, 2).output_fields({"a", "b"});
  b.set_bolt("x", bolt_factory, 3).output_fields({"c"}).shuffle_grouping("s");
  return b;
}

TEST(Builder, BuildsValidTopology) {
  const auto t = two_stage().build("demo", 4, 2);
  EXPECT_EQ(t.name(), "demo");
  EXPECT_EQ(t.num_workers(), 4);
  EXPECT_EQ(t.num_ackers(), 2);
  // s + x + __acker
  EXPECT_EQ(t.components().size(), 3u);
  EXPECT_EQ(t.total_executors(), 2 + 3 + 2);
}

TEST(Builder, AckerComponentAppendedLast) {
  const auto t = two_stage().build("demo", 1, 3);
  const auto& acker = t.components().back();
  EXPECT_EQ(acker.name, kAckerComponent);
  EXPECT_EQ(acker.kind, ComponentKind::kAcker);
  EXPECT_EQ(acker.parallelism, 3);
}

TEST(Builder, ZeroAckersOmitsComponent) {
  const auto t = two_stage().build("demo", 1, 0);
  EXPECT_EQ(t.components().size(), 2u);
  EXPECT_EQ(t.find(kAckerComponent), nullptr);
}

TEST(Builder, FieldsGroupingResolvesIndex) {
  TopologyBuilder b;
  b.set_spout("s", spout_factory, 1).output_fields({"a", "b"});
  b.set_bolt("x", bolt_factory, 1).fields_grouping("s", "b");
  const auto t = b.build("demo", 1, 1);
  const auto& sub = t.component("x").inputs.at(0);
  EXPECT_EQ(sub.grouping, GroupingType::kFields);
  EXPECT_EQ(sub.field_index, 1);
  EXPECT_EQ(sub.field_name, "b");
}

TEST(Builder, UnknownFieldThrows) {
  TopologyBuilder b;
  b.set_spout("s", spout_factory, 1).output_fields({"a"});
  b.set_bolt("x", bolt_factory, 1).fields_grouping("s", "nope");
  EXPECT_THROW(b.build("demo", 1, 1), TopologyError);
}

TEST(Builder, DuplicateComponentThrows) {
  TopologyBuilder b;
  b.set_spout("s", spout_factory, 1);
  b.set_bolt("s", bolt_factory, 1).shuffle_grouping("s");
  EXPECT_THROW(b.build("demo", 1, 1), TopologyError);
}

TEST(Builder, UnknownSourceThrows) {
  TopologyBuilder b;
  b.set_spout("s", spout_factory, 1);
  b.set_bolt("x", bolt_factory, 1).shuffle_grouping("ghost");
  EXPECT_THROW(b.build("demo", 1, 1), TopologyError);
}

TEST(Builder, BoltWithoutInputsThrows) {
  TopologyBuilder b;
  b.set_spout("s", spout_factory, 1);
  b.set_bolt("x", bolt_factory, 1);
  EXPECT_THROW(b.build("demo", 1, 1), TopologyError);
}

TEST(Builder, NoSpoutThrows) {
  TopologyBuilder b;
  b.set_bolt("x", bolt_factory, 1).shuffle_grouping("x");
  EXPECT_THROW(b.build("demo", 1, 1), TopologyError);
}

TEST(Builder, CycleThrows) {
  TopologyBuilder b;
  b.set_spout("s", spout_factory, 1).output_fields({"v"});
  b.set_bolt("x", bolt_factory, 1)
      .output_fields({"v"})
      .shuffle_grouping("s");
  // y <-> x cycle.
  b.set_bolt("y", bolt_factory, 1).output_fields({"v"}).shuffle_grouping("x");
  auto& comps = b;  // extend x to also consume y
  (void)comps;
  TopologyBuilder b2;
  b2.set_spout("s", spout_factory, 1).output_fields({"v"});
  b2.set_bolt("x", bolt_factory, 1)
      .output_fields({"v"})
      .shuffle_grouping("s")
      .shuffle_grouping("y");
  b2.set_bolt("y", bolt_factory, 1)
      .output_fields({"v"})
      .shuffle_grouping("x");
  EXPECT_THROW(b2.build("demo", 1, 1), TopologyError);
}

TEST(Builder, BadParallelismThrows) {
  TopologyBuilder b;
  b.set_spout("s", spout_factory, 0);
  EXPECT_THROW(b.build("demo", 1, 1), TopologyError);
}

TEST(Builder, BadWorkerCountThrows) {
  EXPECT_THROW(two_stage().build("demo", 0, 1), TopologyError);
  EXPECT_THROW(two_stage().build("demo", 1, -1), TopologyError);
}

TEST(Builder, SpoutCannotSubscribe) {
  // Not expressible through the fluent API; exercised via direct def
  // inspection: spouts simply expose no grouping methods. Validate that a
  // spout-only topology with dangling consumers is fine instead.
  TopologyBuilder b;
  b.set_spout("s", spout_factory, 1).output_fields({"v"});
  const auto t = b.build("only-spout", 1, 1);
  EXPECT_TRUE(t.consumers_of("s").empty());
}

TEST(Builder, ConsumersOfReportsGroupings) {
  TopologyBuilder b;
  b.set_spout("s", spout_factory, 1).output_fields({"v"});
  b.set_bolt("x", bolt_factory, 2).output_fields({"w"}).shuffle_grouping("s");
  b.set_bolt("y", bolt_factory, 2).all_grouping("s");
  const auto t = b.build("demo", 1, 1);
  const auto consumers = t.consumers_of("s");
  ASSERT_EQ(consumers.size(), 2u);
  EXPECT_EQ(consumers[0].component->name, "x");
  EXPECT_EQ(consumers[0].subscription.grouping, GroupingType::kShuffle);
  EXPECT_EQ(consumers[1].component->name, "y");
  EXPECT_EQ(consumers[1].subscription.grouping, GroupingType::kAll);
}

TEST(Builder, EmitIntervalAndMaxPendingStored) {
  TopologyBuilder b;
  b.set_spout("s", spout_factory, 1)
      .output_fields({"v"})
      .emit_interval(0.25)
      .max_pending(17);
  const auto t = b.build("demo", 1, 1);
  EXPECT_DOUBLE_EQ(t.component("s").emit_interval, 0.25);
  EXPECT_EQ(t.component("s").max_pending, 17);
}

TEST(Builder, NegativeEmitIntervalThrows) {
  TopologyBuilder b;
  EXPECT_THROW(b.set_spout("s", spout_factory, 1).emit_interval(-1.0),
               TopologyError);
}

TEST(Builder, AllGroupingTypesAccepted) {
  TopologyBuilder b;
  b.set_spout("s", spout_factory, 1).output_fields({"v"});
  b.set_bolt("a", bolt_factory, 1).output_fields({"v"}).shuffle_grouping("s");
  b.set_bolt("b", bolt_factory, 1).output_fields({"v"}).fields_grouping("s", "v");
  b.set_bolt("c", bolt_factory, 1).output_fields({"v"}).all_grouping("s");
  b.set_bolt("d", bolt_factory, 1).output_fields({"v"}).global_grouping("s");
  b.set_bolt("e", bolt_factory, 1).direct_grouping("s");
  const auto t = b.build("demo", 2, 1);
  EXPECT_EQ(t.component("b").inputs[0].grouping, GroupingType::kFields);
  EXPECT_EQ(t.component("e").inputs[0].grouping, GroupingType::kDirect);
}

TEST(Topology, ComponentLookup) {
  const auto t = two_stage().build("demo", 1, 1);
  EXPECT_EQ(t.component("s").parallelism, 2);
  EXPECT_THROW((void)t.component("ghost"), TopologyError);
  EXPECT_EQ(t.find("ghost"), nullptr);
}

TEST(GroupingNames, ToString) {
  EXPECT_STREQ(to_string(GroupingType::kShuffle), "shuffle");
  EXPECT_STREQ(to_string(GroupingType::kFields), "fields");
  EXPECT_STREQ(to_string(GroupingType::kAll), "all");
  EXPECT_STREQ(to_string(GroupingType::kGlobal), "global");
  EXPECT_STREQ(to_string(GroupingType::kDirect), "direct");
}

}  // namespace
}  // namespace tstorm::topo
