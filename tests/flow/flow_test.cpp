// Tests for the flow-control subsystem: bounded executor queues,
// backpressure propagation (coordination flag + spout pausing with
// hysteresis), the three load-shedding policies, shed attribution,
// observability (gauges, MetricsDb queue pressure, the traffic-aware
// scheduler's optional queue-pressure weight), and the determinism
// guarantees (same seed => byte-identical trace; flow disabled => no flow
// events at all).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/auditor.h"
#include "core/load_monitor.h"
#include "core/metrics_db.h"
#include "core/system.h"
#include "flow/flow.h"
#include "metrics/reporter.h"
#include "runtime/cluster.h"
#include "sched/traffic_aware.h"
#include "sim/simulation.h"
#include "trace/trace.h"
#include "workload/topologies.h"

namespace tstorm {
namespace {

using runtime::ClusterConfig;
using runtime::DropCause;
using runtime::ShedPolicy;
using trace::EventKind;

/// The Fig. 3 failure mode on purpose: 5 fast spouts feed one slow bolt
/// (10 ms/tuple at 2 GHz), everything in one worker, so the bolt's input
/// queue is the bottleneck of the whole topology.
workload::ChainOptions overload_chain() {
  workload::ChainOptions opt;
  opt.spout_parallelism = 5;
  opt.bolts = 1;
  opt.bolt_parallelism = 1;
  opt.ackers = 2;
  opt.workers = 1;
  opt.bolt_cost_mc = 20.0;
  // Lift the spouts' self-limiting pending cap: these tests measure what
  // flow control does, so the pending window must not be the thing that
  // bounds the queue.
  opt.max_pending = 1 << 20;
  return opt;
}

ClusterConfig flow_config(int capacity) {
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.flow.enabled = true;
  cfg.flow.queue_capacity = capacity;
  return cfg;
}

/// Deepest data queue across all registered executors.
std::size_t max_data_depth(runtime::Cluster& cluster) {
  std::size_t deepest = 0;
  for (runtime::Executor* e : cluster.registered_executors()) {
    deepest = std::max(deepest, e->data_queue_depth());
  }
  return deepest;
}

// ------------------------------------------------------- Bounded queues ---

TEST(BoundedQueues, DepthNeverExceedsCapacityUnderSustainedOverload) {
  sim::Simulation sim;
  const ClusterConfig cfg = flow_config(64);
  core::StormSystem sys(sim, cfg);
  sys.submit(workload::make_chain(overload_chain()));
  auto& cluster = sys.cluster();

  std::size_t observed_max = 0;
  sim::PeriodicTask sampler(sim, 0.1, [&] {
    observed_max = std::max(observed_max, max_data_depth(cluster));
  });
  sampler.start(5.0);
  sim.run_until(60.0);
  sampler.stop();

  // The bolt must actually have been pressed against the bound...
  EXPECT_GT(observed_max, static_cast<std::size_t>(cfg.flow.low_mark()));
  // ...and the bound must hold at every sample.
  EXPECT_LE(observed_max, static_cast<std::size_t>(cfg.flow.queue_capacity));
  // Overload was real: work still completed (graceful degradation, not
  // collapse).
  EXPECT_GT(cluster.completion().total_completed(), 0u);
}

TEST(BoundedQueues, DisabledFlowReproducesMonotoneGrowth) {
  // The failure mode this PR fixes: without flow control the same overload
  // grows the bolt queue without bound.
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.num_nodes = 2;  // flow disabled
  core::StormSystem sys(sim, cfg);
  sys.submit(workload::make_chain(overload_chain()));
  auto& cluster = sys.cluster();

  sim.run_until(30.0);
  const std::size_t at30 = max_data_depth(cluster);
  sim.run_until(60.0);
  const std::size_t at60 = max_data_depth(cluster);
  EXPECT_GT(at60, at30);
  EXPECT_GT(at60, 64u);  // far past any reasonable bound
  // And no flow-control artifacts exist anywhere.
  EXPECT_EQ(cluster.trace_log().count(EventKind::kBackpressureOn), 0u);
  EXPECT_EQ(cluster.trace_log().count(EventKind::kBackpressureOff), 0u);
  EXPECT_EQ(cluster.trace_log().count(EventKind::kTupleShed), 0u);
  EXPECT_EQ(cluster.dropped_by(DropCause::kLoadShed), 0u);
}

// --------------------------------------------------------- Backpressure ---

TEST(Backpressure, ThrottleFlagReachesCoordinationAndTracesTransitions) {
  sim::Simulation sim;
  const ClusterConfig cfg = flow_config(64);
  core::StormSystem sys(sim, cfg);
  const auto id = sys.submit(workload::make_chain(overload_chain()));
  auto& cluster = sys.cluster();

  sim.run_until(30.0);
  const auto on = cluster.trace_log().count(EventKind::kBackpressureOn);
  const auto off = cluster.trace_log().count(EventKind::kBackpressureOff);
  EXPECT_GE(on, 1u);
  // The flag's trace state, the controller state and the coordination
  // store must agree at all times.
  EXPECT_EQ(cluster.flow().throttled(id),
            cluster.coordination().backpressure(id));
  EXPECT_EQ(cluster.flow().throttled(id), on == off + 1);
  EXPECT_TRUE(on == off || on == off + 1);

  // Killing the topology unwinds everything: executors forget their
  // throttle contributions, so the flag must clear and every On must have
  // found its Off.
  cluster.kill_topology(id);
  sim.run_until(sim.now() + 2 * cfg.supervisor_sync_period + 5.0);
  EXPECT_FALSE(cluster.flow().throttled(id));
  EXPECT_FALSE(cluster.coordination().backpressure(id));
  EXPECT_EQ(cluster.trace_log().count(EventKind::kBackpressureOn),
            cluster.trace_log().count(EventKind::kBackpressureOff));
}

TEST(Backpressure, TransitionsAlternateWithHysteresis) {
  sim::Simulation sim;
  core::StormSystem sys(sim, flow_config(64));
  sys.submit(workload::make_chain(overload_chain()));
  sim.run_until(40.0);

  // Walk the trace: On and Off must strictly alternate, starting with On —
  // the hysteresis band means one queue cannot flap the flag per event.
  bool expect_on = true;
  std::size_t transitions = 0;
  for (const auto& e : sys.cluster().trace_log().events()) {
    if (e.kind != EventKind::kBackpressureOn &&
        e.kind != EventKind::kBackpressureOff) {
      continue;
    }
    ++transitions;
    EXPECT_EQ(e.kind == EventKind::kBackpressureOn, expect_on)
        << "transition " << transitions << " out of order at t=" << e.time;
    expect_on = !expect_on;
  }
  EXPECT_GE(transitions, 1u);
}

TEST(Backpressure, SpoutsActuallyPauseWhileThrottled) {
  // With backpressure holding spouts back, the spout side emits roughly
  // what the bolt can service — far below the unthrottled offered rate.
  sim::Simulation sim;
  core::StormSystem sys(sim, flow_config(64));
  sys.submit(workload::make_chain(overload_chain()));
  auto& cluster = sys.cluster();
  sim.run_until(60.0);

  // Offered (unthrottled) load: 5 spouts at 200 tuples/s for ~55 s of
  // steady state would register >> 10k roots; the 10 ms bolt caps useful
  // throughput near 100/s. Registration staying within a few multiples of
  // service capacity proves emission was held back at the source.
  const auto registered = cluster.tracker().total_registered();
  EXPECT_GT(registered, 1000u);
  EXPECT_LT(registered, 25000u);
  EXPECT_GE(cluster.flow().throttle_activations(), 1u);
}

// ------------------------------------------------------------- Shedding ---

TEST(Shedding, VictimSelectionFollowsPolicy) {
  sim::Simulation sim;
  runtime::CoordinationStore coord;
  trace::TraceLog log;

  runtime::FlowConfig newest;
  newest.enabled = true;
  newest.shed_policy = ShedPolicy::kDropNewest;
  flow::FlowController a(sim, newest, coord, log, 1);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(a.choose_victim(), flow::ShedVictim::kNewest);
  }

  runtime::FlowConfig oldest = newest;
  oldest.shed_policy = ShedPolicy::kDropOldest;
  flow::FlowController b(sim, oldest, coord, log, 1);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(b.choose_victim(), flow::ShedVictim::kOldest);
  }

  // Probabilistic extremes degenerate to the pure policies.
  runtime::FlowConfig always = newest;
  always.shed_policy = ShedPolicy::kProbabilistic;
  always.shed_probability = 1.0;
  flow::FlowController c(sim, always, coord, log, 1);
  runtime::FlowConfig never = always;
  never.shed_probability = 0.0;
  flow::FlowController d(sim, never, coord, log, 1);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(c.choose_victim(), flow::ShedVictim::kNewest);
    EXPECT_EQ(d.choose_victim(), flow::ShedVictim::kOldest);
  }
}

TEST(Shedding, ProbabilisticDrawsAreSeedDeterministic) {
  sim::Simulation sim;
  runtime::CoordinationStore coord;
  trace::TraceLog log;
  runtime::FlowConfig fc;
  fc.enabled = true;
  fc.shed_policy = ShedPolicy::kProbabilistic;
  fc.shed_probability = 0.5;

  flow::FlowController a(sim, fc, coord, log, 77);
  flow::FlowController b(sim, fc, coord, log, 77);
  flow::FlowController c(sim, fc, coord, log, 78);
  std::vector<int> sa, sb, sc;
  for (int i = 0; i < 256; ++i) {
    sa.push_back(static_cast<int>(a.choose_victim()));
    sb.push_back(static_cast<int>(b.choose_victim()));
    sc.push_back(static_cast<int>(c.choose_victim()));
  }
  EXPECT_EQ(sa, sb);
  EXPECT_NE(sa, sc);
  // Both outcomes actually occur at p=0.5.
  EXPECT_TRUE(std::count(sa.begin(), sa.end(), 0) > 0 &&
              std::count(sa.begin(), sa.end(), 1) > 0);
}

class ShedPolicyIntegration : public ::testing::TestWithParam<ShedPolicy> {};

TEST_P(ShedPolicyIntegration, HardFullQueueShedsAndStaysConserved) {
  sim::Simulation sim;
  // high_watermark = 1.0 collapses the backpressure margin onto the hard
  // cap, so arrivals race the spout pause and shedding must engage. Two
  // workers put network latency between spouts and the bolt — the in-flight
  // tuples that land after the pause are the ones that get shed (a chain in
  // one worker is all intra-process: the pause wins the race every time and
  // nothing ever sheds).
  ClusterConfig cfg = flow_config(32);
  cfg.flow.high_watermark = 1.0;
  cfg.flow.low_watermark = 0.4;
  cfg.flow.shed_policy = GetParam();
  workload::ChainOptions chain = overload_chain();
  chain.workers = 2;
  core::StormSystem sys(sim, cfg);
  sys.submit(workload::make_chain(chain));
  auto& cluster = sys.cluster();
  sim.run_until(30.0);

  const auto shed = cluster.dropped_by(DropCause::kLoadShed);
  EXPECT_GT(shed, 0u) << "policy " << runtime::to_string(GetParam());
  // Double-entry bookkeeping: controller counters, drop causes and trace
  // events all agree.
  EXPECT_EQ(shed, cluster.flow().shed_total());
  EXPECT_EQ(shed, cluster.trace_log().count(EventKind::kTupleShed));
  EXPECT_GT(cluster.flow().shed_window().total(), 0u);
  // And the cluster-wide conservation laws survive the carnage.
  const chaos::AuditReport report =
      chaos::InvariantAuditor(cluster).check_now();
  EXPECT_TRUE(report.ok()) << report.to_string();
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ShedPolicyIntegration,
                         ::testing::Values(ShedPolicy::kDropNewest,
                                           ShedPolicy::kDropOldest,
                                           ShedPolicy::kProbabilistic));

// -------------------------------------------------------- Observability ---

TEST(FlowGauges, PerExecutorRowsAndPrinter) {
  sim::Simulation sim;
  ClusterConfig cfg = flow_config(32);
  cfg.flow.high_watermark = 1.0;  // force some shedding
  core::StormSystem sys(sim, cfg);
  sys.submit(workload::make_chain(overload_chain()));
  auto& cluster = sys.cluster();
  sim.run_until(30.0);

  const auto rows = cluster.flow_gauges();
  ASSERT_FALSE(rows.empty());
  // Sorted by task; the shed totals across rows match the controller.
  std::uint64_t shed_sum = 0;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i - 1].task, rows[i].task);
  }
  for (const auto& r : rows) shed_sum += r.shed;
  EXPECT_EQ(shed_sum, cluster.flow().shed_total());

  std::ostringstream os;
  metrics::print_flow_gauges(os, rows, 1.25);
  EXPECT_NE(os.str().find("total"), std::string::npos);
  EXPECT_NE(os.str().find("1.25 shed/s"), std::string::npos);
}

TEST(QueuePressure, LoadMonitorFeedsExecutorQueueIntoMetricsDb) {
  sim::Simulation sim;
  core::StormSystem sys(sim, flow_config(64));
  const auto id = sys.submit(workload::make_chain(overload_chain()));
  auto& cluster = sys.cluster();

  core::MetricsDb db;
  // The chain runs in one worker; monitor whichever node hosts it.
  sim.run_until(10.0);
  sched::NodeId hosting = -1;
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    if (!cluster.executors_on_node(n).empty()) hosting = n;
  }
  ASSERT_GE(hosting, 0);
  core::LoadMonitor monitor(cluster, db, hosting, 1.0);
  monitor.start(0.5);
  sim.run_until(40.0);

  // The congested bolt's queue pressure must be visible to schedulers.
  double deepest = 0;
  for (sched::TaskId task : cluster.tasks_of_component(id, "bolt1")) {
    deepest = std::max(deepest, db.executor_queue(task));
  }
  EXPECT_GT(deepest, 1.0);
  // forget_task clears the estimate like the other per-task series.
  for (sched::TaskId task : cluster.tasks_of_component(id, "bolt1")) {
    db.forget_task(task);
    EXPECT_DOUBLE_EQ(db.executor_queue(task), 0.0);
  }
}

TEST(QueuePressure, TrafficAwareWeightInflatesEffectiveLoad) {
  // One executor whose CPU load fits the node but whose backlog does not:
  // with queue_pressure_weight = 0 (the paper's Algorithm 1) it places
  // cleanly; with a positive weight the capacity constraint must be
  // relaxed to place it.
  sched::SchedulerInput in;
  in.executors.push_back({/*task=*/0, /*topology=*/0,
                          /*demand=*/{/*load_mhz=*/50.0},
                          /*queue_depth=*/100.0});
  in.slots.push_back({0, 0, 0});
  in.topologies.push_back({0, 1});
  in.nodes = {{0, {100.0}}};

  sched::TrafficAwareScheduler plain;
  const auto base = plain.schedule(in);
  ASSERT_EQ(base.assignment.size(), 1u);
  EXPECT_FALSE(base.capacity_relaxed);

  sched::TrafficAwareOptions opt;
  opt.queue_pressure_weight = 1.0;  // effective load 50 + 100 > 100
  sched::TrafficAwareScheduler weighted(opt);
  const auto pressured = weighted.schedule(in);
  ASSERT_EQ(pressured.assignment.size(), 1u);
  EXPECT_TRUE(pressured.capacity_relaxed);
}

// ---------------------------------------------------------- Determinism ---

std::string run_overload_and_format(const ClusterConfig& cfg) {
  sim::Simulation sim;
  core::StormSystem sys(sim, cfg);
  // Two workers so spout->bolt hops have latency and the shed path runs
  // (see ShedPolicyIntegration for why one worker never sheds).
  workload::ChainOptions chain = overload_chain();
  chain.workers = 2;
  sys.submit(workload::make_chain(chain));
  sim.run_until(45.0);
  std::string out;
  for (const auto& e : sys.cluster().trace_log().events()) {
    out += trace::format_event(e);
    out += '\n';
  }
  out += "completed=" +
         std::to_string(sys.cluster().completion().total_completed()) +
         " shed=" +
         std::to_string(sys.cluster().dropped_by(DropCause::kLoadShed)) +
         " dropped=" + std::to_string(sys.cluster().dropped_messages());
  return out;
}

TEST(FlowDeterminism, SameSeedYieldsByteIdenticalTraceWithFlowOn) {
  ClusterConfig cfg = flow_config(32);
  cfg.flow.high_watermark = 1.0;  // exercise shedding too
  cfg.flow.shed_policy = ShedPolicy::kProbabilistic;
  cfg.seed = 1234;
  const std::string first = run_overload_and_format(cfg);
  EXPECT_EQ(first, run_overload_and_format(cfg));
  EXPECT_NE(first.find("tuple-shed"), std::string::npos);

  ClusterConfig other = cfg;
  other.seed = 1235;
  EXPECT_NE(first, run_overload_and_format(other));
}

TEST(FlowDeterminism, DisabledFlowEmitsNoFlowEventsAndShedsNothing) {
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  ASSERT_FALSE(cfg.flow.enabled);  // the documented default
  const std::string out = run_overload_and_format(cfg);
  EXPECT_EQ(out.find("backpressure"), std::string::npos);
  EXPECT_EQ(out.find("tuple-shed"), std::string::npos);
  EXPECT_NE(out.find("shed=0"), std::string::npos);
  // And it is reproducible, like every disabled-feature path.
  EXPECT_EQ(out, run_overload_and_format(cfg));
}

// --------------------------------------------------- Config validation ---

TEST(FlowConfigValidation, RejectsOrClampsBadValues) {
#ifndef NDEBUG
  ClusterConfig bad_cap;
  bad_cap.flow.queue_capacity = 0;
  EXPECT_DEATH((void)runtime::validated(bad_cap), "out of range");
  ClusterConfig bad_mark;
  bad_mark.flow.high_watermark = 1.5;
  EXPECT_DEATH((void)runtime::validated(bad_mark), "out of range");
  ClusterConfig inverted;
  inverted.flow.low_watermark = 0.9;
  inverted.flow.high_watermark = 0.5;
  EXPECT_DEATH((void)runtime::validated(inverted), "out of range");
  ClusterConfig bad_prob;
  bad_prob.flow.shed_probability = -0.25;
  EXPECT_DEATH((void)runtime::validated(bad_prob), "out of range");
#else
  ClusterConfig bad;
  bad.flow.queue_capacity = 0;
  bad.flow.high_watermark = 1.5;
  bad.flow.low_watermark = 2.0;
  bad.flow.throttle_refresh_period = 0.0;
  bad.flow.shed_probability = -0.25;
  const ClusterConfig v = runtime::validated(bad);
  EXPECT_EQ(v.flow.queue_capacity, 1);
  EXPECT_DOUBLE_EQ(v.flow.high_watermark, 1.0);
  EXPECT_LE(v.flow.low_watermark, v.flow.high_watermark);
  EXPECT_GT(v.flow.throttle_refresh_period, 0.0);
  EXPECT_DOUBLE_EQ(v.flow.shed_probability, 0.0);
#endif
}

TEST(FlowConfigValidation, WatermarkHelpersAndPolicyNames) {
  runtime::FlowConfig fc;
  fc.queue_capacity = 100;
  fc.high_watermark = 0.8;
  fc.low_watermark = 0.4;
  EXPECT_EQ(fc.high_mark(), 80);
  EXPECT_EQ(fc.low_mark(), 40);
  EXPECT_STREQ(runtime::to_string(ShedPolicy::kDropNewest), "drop-newest");
  EXPECT_STREQ(runtime::to_string(ShedPolicy::kDropOldest), "drop-oldest");
  EXPECT_STREQ(runtime::to_string(ShedPolicy::kProbabilistic),
               "probabilistic");
}

}  // namespace
}  // namespace tstorm
