// Workload generators, external queue, and the three paper topologies.
#include <gtest/gtest.h>

#include <set>

#include "core/system.h"
#include "workload/topologies.h"

namespace tstorm::workload {
namespace {

// ---------------------------------------------------------- TextGenerator

TEST(TextGenerator, VocabularyDistinctAndSized) {
  TextGenerator gen;
  const auto& vocab = gen.vocabulary();
  EXPECT_EQ(vocab.size(), 3000u);
  std::set<std::string> set(vocab.begin(), vocab.end());
  EXPECT_EQ(set.size(), vocab.size());
}

TEST(TextGenerator, LineRespectsWordBounds) {
  TextGenerator::Options opt;
  opt.min_words_per_line = 3;
  opt.max_words_per_line = 5;
  TextGenerator gen(opt);
  for (int i = 0; i < 100; ++i) {
    const auto words = split_words(gen.next_line());
    EXPECT_GE(words.size(), 3u);
    EXPECT_LE(words.size(), 5u);
  }
}

TEST(TextGenerator, WordFrequencyIsSkewed) {
  TextGenerator gen;
  std::map<std::string, int> counts;
  for (int i = 0; i < 20000; ++i) counts[gen.next_word()]++;
  int max_count = 0;
  for (const auto& [w, c] : counts) max_count = std::max(max_count, c);
  // Zipf: the hottest word appears far more often than average.
  EXPECT_GT(max_count, 20000 / 100);
}

TEST(TextGenerator, DeterministicForSeed) {
  TextGenerator::Options opt;
  opt.seed = 99;
  TextGenerator a(opt), b(opt);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.next_line(), b.next_line());
}

TEST(SplitWords, HandlesEdgeCases) {
  EXPECT_TRUE(split_words("").empty());
  EXPECT_EQ(split_words("one"), (std::vector<std::string>{"one"}));
  EXPECT_EQ(split_words("a b  c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_words(" x"), (std::vector<std::string>{"x"}));
}

// ----------------------------------------------------------- LogGenerator

TEST(LogGenerator, JsonLineHasExpectedFields) {
  LogGenerator gen;
  const auto line = gen.next_json_line();
  for (const char* field : {"\"ip\":", "\"method\":", "\"uri\":",
                            "\"status\":", "\"bytes\":", "\"agent\":"}) {
    EXPECT_NE(line.find(field), std::string::npos) << field;
  }
}

TEST(LogGenerator, RecordsVary) {
  LogGenerator gen;
  std::set<std::string> uris;
  for (int i = 0; i < 200; ++i) uris.insert(gen.next_record().uri);
  EXPECT_GT(uris.size(), 10u);
}

TEST(LogGenerator, StatusesFromRealisticSet) {
  LogGenerator gen;
  for (int i = 0; i < 200; ++i) {
    const auto s = gen.next_record().status;
    EXPECT_TRUE(s == 200 || s == 304 || s == 404 || s == 500);
  }
}

// ---------------------------------------------------------- ExternalQueue

TEST(ExternalQueue, PushPopAccounting) {
  ExternalQueue q;
  EXPECT_FALSE(q.try_pop());
  q.push(3);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_TRUE(q.try_pop());
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.total_pushed(), 3u);
  EXPECT_EQ(q.total_popped(), 1u);
}

TEST(ExternalQueue, CapacityDropsExcess) {
  ExternalQueue q(2);
  EXPECT_TRUE(q.push());
  EXPECT_TRUE(q.push());
  EXPECT_FALSE(q.push());
  EXPECT_EQ(q.dropped(), 1u);
  EXPECT_EQ(q.size(), 2u);
}

TEST(QueueProducer, PushesAtConfiguredRate) {
  sim::Simulation sim;
  ExternalQueue q;
  QueueProducer producer(sim, q, 100.0);
  producer.start();
  sim.run_until(1.0);
  EXPECT_NEAR(static_cast<double>(q.total_pushed()), 100.0, 2.0);
  producer.set_rate(1000.0);
  sim.run_until(2.0);
  EXPECT_NEAR(static_cast<double>(q.total_pushed()), 1100.0, 10.0);
  producer.stop();
  sim.run_until(3.0);
  EXPECT_NEAR(static_cast<double>(q.total_pushed()), 1100.0, 10.0);
}

// ------------------------------------------------------------- Topologies

TEST(ThroughputTest, MatchesPaperParallelism) {
  const auto t = make_throughput_test();
  EXPECT_EQ(t.num_workers(), 40);
  EXPECT_EQ(t.component("spout").parallelism, 5);
  EXPECT_EQ(t.component("identity").parallelism, 15);
  EXPECT_EQ(t.component("counter").parallelism, 15);
  EXPECT_EQ(t.component(topo::kAckerComponent).parallelism, 10);
  EXPECT_EQ(t.total_executors(), 45);
  EXPECT_DOUBLE_EQ(t.component("spout").emit_interval, 0.005);
}

TEST(ThroughputTest, SpoutEmitsTenKilobyteTuples) {
  const auto t = make_throughput_test();
  auto spout = t.component("spout").spout_factory();
  const auto tuple = spout->next_tuple();
  ASSERT_TRUE(tuple.has_value());
  EXPECT_EQ(tuple->get_string(0).size(), 10u * 1024u);
}

TEST(Chain, StructureMatchesSectionThree) {
  ChainOptions opt;  // 1 spout, 4 bolts, 5 ackers
  const auto t = make_chain(opt);
  EXPECT_EQ(t.total_executors(), 1 + 4 + 5);
  // bolt1 <- spout, bolt2 <- bolt1, ...
  EXPECT_EQ(t.component("bolt1").inputs[0].source, "spout");
  EXPECT_EQ(t.component("bolt4").inputs[0].source, "bolt3");
}

TEST(WordCount, MatchesPaperStructure) {
  const auto w = make_word_count();
  const auto& t = w.topology;
  EXPECT_EQ(t.num_workers(), 20);
  EXPECT_EQ(t.component("reader").parallelism, 2);
  EXPECT_EQ(t.component("split").parallelism, 5);
  EXPECT_EQ(t.component("count").parallelism, 5);
  EXPECT_EQ(t.component("mongo").parallelism, 5);
  // count subscribes with fields grouping on "word".
  const auto& sub = t.component("count").inputs[0];
  EXPECT_EQ(sub.grouping, topo::GroupingType::kFields);
  EXPECT_EQ(sub.field_name, "word");
  ASSERT_NE(w.queue, nullptr);
}

TEST(WordCount, ReaderConsumesFromQueue) {
  const auto w = make_word_count();
  auto reader = w.topology.component("reader").spout_factory();
  EXPECT_FALSE(reader->next_tuple().has_value());  // queue empty
  w.queue->push();
  const auto t = reader->next_tuple();
  ASSERT_TRUE(t.has_value());
  EXPECT_FALSE(t->get_string(0).empty());
  EXPECT_FALSE(reader->next_tuple().has_value());
}

TEST(LogStream, MatchesFigureSevenStructure) {
  const auto w = make_log_stream();
  const auto& t = w.topology;
  EXPECT_EQ(t.component("log-spout").parallelism, 5);
  EXPECT_EQ(t.component("log-rules").parallelism, 5);
  EXPECT_EQ(t.component("indexer").parallelism, 5);
  EXPECT_EQ(t.component("counter").parallelism, 5);
  EXPECT_EQ(t.component("mongo-index").parallelism, 2);
  EXPECT_EQ(t.component("mongo-count").parallelism, 2);
  // Both indexer and counter consume the rules bolt's stream.
  EXPECT_EQ(t.component("indexer").inputs[0].source, "log-rules");
  EXPECT_EQ(t.component("counter").inputs[0].source, "log-rules");
}

TEST(WordCount, RunsEndToEnd) {
  sim::Simulation sim;
  core::StormSystem sys(sim);
  auto w = make_word_count();
  QueueProducer producer(sim, *w.queue, 100.0);
  producer.start();
  sys.submit(std::move(w.topology));
  sim.run_until(120.0);
  EXPECT_GT(sys.cluster().completion().total_completed(), 1000u);
}

TEST(LogStream, RunsEndToEnd) {
  sim::Simulation sim;
  core::StormSystem sys(sim);
  auto w = make_log_stream();
  QueueProducer producer(sim, *w.queue, 100.0);
  producer.start();
  sys.submit(std::move(w.topology));
  sim.run_until(120.0);
  EXPECT_GT(sys.cluster().completion().total_completed(), 1000u);
}

}  // namespace
}  // namespace tstorm::workload
