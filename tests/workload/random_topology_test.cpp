// Fuzz-style property tests: any randomly generated topology must
// validate, schedule, run, and ack correctly under both systems.
#include <gtest/gtest.h>

#include "core/system.h"
#include "workload/randomgen.h"

namespace tstorm::workload {
namespace {

class RandomTopologySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTopologySweep, RunsWithoutFailuresUnderTStorm) {
  RandomTopologyOptions opt;
  opt.seed = GetParam();
  opt.name = "random-" + std::to_string(GetParam());

  sim::Simulation sim;
  core::CoreConfig core;
  core.gamma = 1.0 + static_cast<double>(GetParam() % 5);
  core::TStormSystem sys(sim, {}, core);
  sys.submit(make_random_topology(opt));
  sim.run_until(300.0);

  auto& completion = sys.cluster().completion();
  // Light load (max_pending 100, 5 ms interval): everything completes.
  EXPECT_GT(completion.total_completed(), 1000u);
  EXPECT_EQ(completion.total_failed(), 0u);
  // The generator may have reassigned; structural invariant must hold.
  for (auto id : sys.cluster().topology_ids()) {
    const auto* rec = sys.cluster().coordination().get(id);
    ASSERT_NE(rec, nullptr);
    auto input = sys.cluster().scheduler_input({id});
    EXPECT_TRUE(sched::one_slot_per_topology_per_node(input, rec->placement));
  }
}

TEST_P(RandomTopologySweep, DeterministicAcrossRuns) {
  auto run_once = [&] {
    RandomTopologyOptions opt;
    opt.seed = GetParam();
    sim::Simulation sim;
    core::StormSystem sys(sim);
    sys.submit(make_random_topology(opt));
    sim.run_until(120.0);
    return std::pair{sys.cluster().completion().total_completed(),
                     sim.events_executed()};
  };
  EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTopologySweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

TEST(RandomTopology, GeneratorIsDeterministic) {
  RandomTopologyOptions opt;
  opt.seed = 42;
  const auto a = make_random_topology(opt);
  const auto b = make_random_topology(opt);
  ASSERT_EQ(a.components().size(), b.components().size());
  for (std::size_t i = 0; i < a.components().size(); ++i) {
    EXPECT_EQ(a.components()[i].name, b.components()[i].name);
    EXPECT_EQ(a.components()[i].parallelism, b.components()[i].parallelism);
    EXPECT_EQ(a.components()[i].inputs.size(),
              b.components()[i].inputs.size());
  }
}

TEST(RandomTopology, SeedsProduceDifferentShapes) {
  int distinct = 0;
  std::size_t prev = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RandomTopologyOptions opt;
    opt.seed = seed;
    const auto t = make_random_topology(opt);
    if (t.components().size() != prev) ++distinct;
    prev = t.components().size();
  }
  EXPECT_GT(distinct, 3);
}

}  // namespace
}  // namespace tstorm::workload
