#include <gtest/gtest.h>

#include <cmath>

#include <sstream>

#include "metrics/completion.h"
#include "metrics/ewma.h"
#include "metrics/reporter.h"
#include "metrics/timeseries.h"

namespace tstorm::metrics {
namespace {

// ------------------------------------------------------------------ Ewma

TEST(Ewma, FirstSampleSeedsDirectly) {
  Ewma e(0.5);
  EXPECT_FALSE(e.seeded());
  e.update(10.0);
  EXPECT_TRUE(e.seeded());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, PaperFormula) {
  // Y = alpha*Y + (1-alpha)*S with alpha = 0.5 (Table II).
  Ewma e(0.5);
  e.update(10.0);
  e.update(20.0);
  EXPECT_DOUBLE_EQ(e.value(), 15.0);
  e.update(0.0);
  EXPECT_DOUBLE_EQ(e.value(), 7.5);
}

TEST(Ewma, SmallAlphaIsMoreSensitive) {
  Ewma sluggish(0.9), sensitive(0.1);
  sluggish.update(0.0);
  sensitive.update(0.0);
  sluggish.update(100.0);
  sensitive.update(100.0);
  EXPECT_LT(sluggish.value(), sensitive.value());
  EXPECT_DOUBLE_EQ(sensitive.value(), 90.0);
}

TEST(Ewma, AlphaOneNeverMoves) {
  Ewma e(1.0);
  e.update(5.0);
  e.update(500.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
}

TEST(Ewma, ResetClears) {
  Ewma e(0.5);
  e.update(3.0);
  e.reset();
  EXPECT_FALSE(e.seeded());
  e.update(7.0);
  EXPECT_DOUBLE_EQ(e.value(), 7.0);
}

TEST(Ewma, ConvergesToConstantInput) {
  Ewma e(0.5);
  for (int i = 0; i < 50; ++i) e.update(42.0);
  EXPECT_NEAR(e.value(), 42.0, 1e-9);
}

// --------------------------------------------------------- WindowedSeries

TEST(WindowedSeries, ObservationsLandInCorrectWindow) {
  WindowedSeries s(60.0);
  s.add(10.0, 1.0);
  s.add(59.9, 3.0);
  s.add(60.0, 5.0);
  ASSERT_EQ(s.windows().size(), 2u);
  EXPECT_EQ(s.windows()[0].count, 2u);
  EXPECT_DOUBLE_EQ(s.windows()[0].mean(), 2.0);
  EXPECT_EQ(s.windows()[1].count, 1u);
  EXPECT_DOUBLE_EQ(s.windows()[1].mean(), 5.0);
}

TEST(WindowedSeries, EmptyWindowsMaterialized) {
  WindowedSeries s(60.0);
  s.add(10.0, 1.0);
  s.add(200.0, 2.0);
  ASSERT_EQ(s.windows().size(), 4u);
  EXPECT_EQ(s.windows()[1].count, 0u);
  EXPECT_EQ(s.windows()[2].count, 0u);
  EXPECT_DOUBLE_EQ(s.windows()[1].start, 60.0);
}

TEST(WindowedSeries, MinMaxTracked) {
  WindowedSeries s(60.0);
  s.add(1.0, 5.0);
  s.add(2.0, -1.0);
  s.add(3.0, 10.0);
  EXPECT_DOUBLE_EQ(s.windows()[0].min, -1.0);
  EXPECT_DOUBLE_EQ(s.windows()[0].max, 10.0);
}

TEST(WindowedSeries, MeanBetweenExact) {
  WindowedSeries s(60.0);
  s.add(10.0, 1.0);
  s.add(70.0, 2.0);
  s.add(130.0, 6.0);
  EXPECT_DOUBLE_EQ(s.mean_between(0.0, 200.0).value(), 3.0);
  EXPECT_DOUBLE_EQ(s.mean_between(60.0, 200.0).value(), 4.0);
  EXPECT_FALSE(s.mean_between(300.0, 400.0).has_value());
}

TEST(WindowedSeries, MeanBetweenHalfOpen) {
  WindowedSeries s(60.0);
  s.add(100.0, 7.0);
  EXPECT_TRUE(s.mean_between(100.0, 100.1).has_value());
  EXPECT_FALSE(s.mean_between(99.0, 100.0).has_value());
}

TEST(WindowedSeries, TotalCount) {
  WindowedSeries s(1.0);
  for (int i = 0; i < 17; ++i) s.add(i * 0.1, 1.0);
  EXPECT_EQ(s.total_count(), 17u);
}

TEST(WindowedSeries, NegativeTimesClampToFirstWindow) {
  WindowedSeries s(60.0);
  s.add(-5.0, 2.0);
  EXPECT_EQ(s.windows()[0].count, 1u);
}

// -------------------------------------------------------- WindowedCounter

TEST(WindowedCounter, CountsPerWindow) {
  WindowedCounter c(60.0);
  c.add(10.0);
  c.add(20.0, 4);
  c.add(70.0);
  EXPECT_EQ(c.windows()[0].count, 5u);
  EXPECT_EQ(c.windows()[1].count, 1u);
  EXPECT_EQ(c.total(), 6u);
}

TEST(WindowedCounter, CountBetweenWholeWindowsOnly) {
  WindowedCounter c(60.0);
  c.add(10.0, 2);
  c.add(70.0, 3);
  c.add(130.0, 5);
  EXPECT_EQ(c.count_between(0.0, 120.0), 5u);
  EXPECT_EQ(c.count_between(60.0, 180.0), 8u);
}

// ------------------------------------------------------ CompletionRecorder

TEST(CompletionRecorder, RecordsProcessingTimeInMs) {
  CompletionRecorder r(60.0);
  r.record_completion(1.0, 1.005, false);  // 5 ms
  EXPECT_EQ(r.total_completed(), 1u);
  EXPECT_EQ(r.total_late(), 0u);
  EXPECT_NEAR(r.proc_time_ms().windows()[0].mean(), 5.0, 1e-9);
}

TEST(CompletionRecorder, LateAcksCounted) {
  CompletionRecorder r(60.0);
  r.record_completion(0.0, 45.0, true);
  EXPECT_EQ(r.total_completed(), 1u);
  EXPECT_EQ(r.total_late(), 1u);
}

TEST(CompletionRecorder, FailuresDropsReplays) {
  CompletionRecorder r(60.0);
  r.record_failure(30.0);
  r.record_failure(90.0);
  r.record_drop(5.0);
  r.record_replay(31.0);
  EXPECT_EQ(r.total_failed(), 2u);
  EXPECT_EQ(r.total_dropped(), 1u);
  EXPECT_EQ(r.total_replayed(), 1u);
  EXPECT_EQ(r.failures().windows()[0].count, 1u);
  EXPECT_EQ(r.failures().windows()[1].count, 1u);
}

TEST(CompletionRecorder, CompletionIndexedByAckTime) {
  CompletionRecorder r(60.0);
  r.record_completion(59.0, 61.0, false);  // acked in second window
  EXPECT_EQ(r.proc_time_ms().windows().size(), 2u);
  EXPECT_EQ(r.proc_time_ms().windows()[1].count, 1u);
}

// --------------------------------------------------------------- Reporter

TEST(Reporter, FormatsMs) {
  EXPECT_EQ(format_ms(1.23456), "1.23");
  EXPECT_EQ(format_ms(1.23456, 4), "1.2346");
  EXPECT_EQ(format_ms(std::nan("")), "-");
}

TEST(Reporter, TableHasHeaderAndRows) {
  WindowedSeries a(60.0), b(60.0);
  a.add(10.0, 1.0);
  a.add(70.0, 2.0);
  b.add(70.0, 4.0);
  std::ostringstream os;
  print_series_table(os, {{"Storm", &a}, {"T-Storm", &b}}, 600.0);
  const auto out = os.str();
  EXPECT_NE(out.find("Storm"), std::string::npos);
  EXPECT_NE(out.find("T-Storm"), std::string::npos);
  EXPECT_NE(out.find("1.00"), std::string::npos);
  EXPECT_NE(out.find("4.00"), std::string::npos);
}

TEST(Reporter, CsvShape) {
  WindowedSeries a(60.0);
  a.add(10.0, 1.5);
  std::ostringstream os;
  write_series_csv(os, {{"x", &a}}, 600.0);
  EXPECT_EQ(os.str(), "time_s,x\n60,1.50\n");
}

TEST(Reporter, TableRespectsHorizon) {
  WindowedSeries a(60.0);
  a.add(10.0, 1.0);
  a.add(1000.0, 2.0);
  std::ostringstream os;
  print_series_table(os, {{"x", &a}}, 120.0);
  EXPECT_EQ(os.str().find("2.00"), std::string::npos);
}

}  // namespace
}  // namespace tstorm::metrics
