// The observability layer: schedule provenance (every generation pass —
// published or rejected — leaves a DecisionRecord), sampled per-tuple
// causal tracing, the exporters (Chrome trace-event JSON / JSONL), the
// reporter summaries, and the determinism contract (sampling must never
// perturb the workload). Also the MetricsDb::set_alpha regression: the
// on-the-fly alpha update must reach every estimator map.
#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <sstream>
#include <string>

#include "core/metrics_db.h"
#include "core/schedule_generator.h"
#include "core/system.h"
#include "metrics/reporter.h"
#include "obs/export.h"
#include "obs/provenance.h"
#include "obs/tuple_trace.h"
#include "runtime/cluster.h"
#include "trace/trace.h"
#include "workload/topologies.h"

namespace tstorm::obs {
namespace {

// ------------------------------------------------- MetricsDb regression ---

TEST(MetricsDbAlpha, SetAlphaReachesEveryEstimatorMap) {
  // alpha = 0: the estimate tracks the latest sample exactly.
  core::MetricsDb db(0.0);
  db.update_executor_load(1, 100.0);
  db.update_executor_queue(1, 100.0);
  db.update_node_load(0, 100.0);
  db.update_node_queue(0, 100.0);
  db.update_traffic(1, 2, 100.0);
  db.update_executor_memory(1, 100.0);
  db.update_executor_network(1, 100.0);

  // alpha = 1 freezes every estimator (Y = 1*Y + 0*S). If set_alpha skips
  // a map — node_queues_ used to be skipped — that quantity keeps
  // tracking the new sample instead.
  db.set_alpha(1.0);
  db.update_executor_load(1, 999.0);
  db.update_executor_queue(1, 999.0);
  db.update_node_load(0, 999.0);
  db.update_node_queue(0, 999.0);
  db.update_traffic(1, 2, 999.0);
  db.update_executor_memory(1, 999.0);
  db.update_executor_network(1, 999.0);

  EXPECT_DOUBLE_EQ(db.executor_load(1), 100.0);
  EXPECT_DOUBLE_EQ(db.executor_memory(1), 100.0);
  EXPECT_DOUBLE_EQ(db.executor_network(1), 100.0);
  EXPECT_DOUBLE_EQ(db.executor_queue(1), 100.0);
  EXPECT_DOUBLE_EQ(db.node_load(0), 100.0);
  EXPECT_DOUBLE_EQ(db.node_queue(0), 100.0);
  const auto traffic = db.traffic_snapshot();
  ASSERT_EQ(traffic.size(), 1u);
  EXPECT_EQ(traffic[0].src, 1);
  EXPECT_EQ(traffic[0].dst, 2);
  EXPECT_DOUBLE_EQ(traffic[0].rate, 100.0);
}

TEST(MetricsDbAlpha, SetAlphaAppliesToFutureEstimators) {
  core::MetricsDb db(0.0);
  db.set_alpha(1.0);
  // Estimator created after the set_alpha call: first sample seeds it,
  // the second must be ignored (alpha 1).
  db.update_node_queue(3, 50.0);
  db.update_node_queue(3, 500.0);
  EXPECT_DOUBLE_EQ(db.node_queue(3), 50.0);
}

// ------------------------------------------------------- ProvenanceLog ---

DecisionRecord make_record(DecisionOutcome outcome, DecisionTrigger trigger,
                           sched::AssignmentVersion version = 0) {
  DecisionRecord r;
  r.time = 1.0;
  r.outcome = outcome;
  r.trigger = trigger;
  r.algorithm = "traffic-aware";
  r.version = version;
  r.reason = "test";
  return r;
}

TEST(ProvenanceLog, AssignsMonotoneSequenceNumbers) {
  ProvenanceLog log(8);
  const auto a = log.record(
      make_record(DecisionOutcome::kNoWin, DecisionTrigger::kPeriodic));
  const auto b = log.record(
      make_record(DecisionOutcome::kPublished, DecisionTrigger::kOverload, 7));
  EXPECT_LT(a, b);
  ASSERT_NE(log.last(), nullptr);
  EXPECT_EQ(log.last()->seq, b);
  EXPECT_EQ(log.total_recorded(), 2u);
}

TEST(ProvenanceLog, QueriesFilterByOutcomeAndTrigger) {
  ProvenanceLog log(8);
  log.record(make_record(DecisionOutcome::kNoWin, DecisionTrigger::kPeriodic));
  log.record(
      make_record(DecisionOutcome::kPublished, DecisionTrigger::kOverload, 1));
  log.record(
      make_record(DecisionOutcome::kEmptyInput, DecisionTrigger::kPeriodic));
  EXPECT_EQ(log.count(DecisionOutcome::kNoWin), 1u);
  EXPECT_EQ(log.count(DecisionOutcome::kApplyRejected), 0u);
  EXPECT_EQ(log.of_outcome(DecisionOutcome::kPublished).size(), 1u);
  EXPECT_EQ(log.of_trigger(DecisionTrigger::kPeriodic).size(), 2u);
  EXPECT_EQ(log.of_trigger(DecisionTrigger::kRecovery).size(), 0u);
}

TEST(ProvenanceLog, RingEvictionKeepsPublishedVersions) {
  ProvenanceLog log(2);
  log.record(
      make_record(DecisionOutcome::kPublished, DecisionTrigger::kInitial, 10));
  log.record(
      make_record(DecisionOutcome::kPublished, DecisionTrigger::kPeriodic, 20));
  log.record(
      make_record(DecisionOutcome::kPublished, DecisionTrigger::kPeriodic, 30));
  // The first record fell off the ring...
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.total_recorded(), 3u);
  EXPECT_EQ(log.records().front().version, 20);
  // ...but its published version is still known (the auditor's check must
  // not false-positive on long runs).
  EXPECT_TRUE(log.has_version(10));
  EXPECT_TRUE(log.has_version(30));
  EXPECT_FALSE(log.has_version(11));
  EXPECT_EQ(log.published_total(), 3u);
}

TEST(ProvenanceLog, OnlyPublishedOutcomesRegisterVersions) {
  ProvenanceLog log(4);
  log.record(make_record(DecisionOutcome::kNoWin, DecisionTrigger::kPeriodic,
                         5));  // version set but not published
  EXPECT_FALSE(log.has_version(5));
  EXPECT_EQ(log.published_total(), 0u);
}

TEST(ProvenanceLog, ClearResetsEverything) {
  ProvenanceLog log(4);
  log.record(
      make_record(DecisionOutcome::kPublished, DecisionTrigger::kManual, 3));
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.total_recorded(), 0u);
  EXPECT_FALSE(log.has_version(3));
  EXPECT_EQ(log.last(), nullptr);
}

TEST(ProvenanceLog, FormatDecisionMentionsOutcomeAndReason) {
  auto r = make_record(DecisionOutcome::kNoWin, DecisionTrigger::kPeriodic);
  r.reason = "improvement below threshold";
  const std::string line = format_decision(r);
  EXPECT_NE(line.find("no-win"), std::string::npos) << line;
  EXPECT_NE(line.find("periodic"), std::string::npos) << line;
}

// -------------------------------------------------- TupleTraceCollector ---

TEST(TupleTrace, DisabledCollectorIsInert) {
  TupleTraceCollector tt({0.0, 8, 8}, 42);
  EXPECT_FALSE(tt.enabled());
  EXPECT_FALSE(tt.sampled(1));
  tt.finish_root(1, 2.0, true);  // no-op, nothing began
  EXPECT_TRUE(tt.finished().empty());
  EXPECT_EQ(tt.sampled_total(), 0u);
}

TEST(TupleTrace, RateOneSamplesEveryRoot) {
  TupleTraceCollector tt({1.0, 8, 8}, 42);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(tt.should_sample());
}

TEST(TupleTrace, BreakdownSumsAndAckWaitSynthesis) {
  TupleTraceCollector tt({1.0, 8, 16}, 42);
  tt.begin_root(42, /*spout=*/3, /*attempt=*/0, 1.0);
  EXPECT_TRUE(tt.sampled(42));
  tt.add_span(42, {SpanKind::kEmit, 3, -1, 0, 1.0, 1.0});
  tt.add_span(42, {SpanKind::kNetworkHop, 5, 3, 1, 1.0, 1.2});
  tt.add_span(42, {SpanKind::kQueueWait, 5, -1, 1, 1.2, 1.7});
  tt.add_span(42, {SpanKind::kExecute, 5, -1, 1, 1.7, 1.9});
  tt.finish_root(42, 2.5, /*completed=*/true);

  EXPECT_FALSE(tt.sampled(42));
  ASSERT_EQ(tt.finished().size(), 1u);
  const RootTrace& t = tt.finished().front();
  EXPECT_EQ(t.root_id, 42u);
  EXPECT_EQ(t.spout, 3);
  EXPECT_TRUE(t.completed);
  EXPECT_DOUBLE_EQ(t.emit_time, 1.0);
  EXPECT_DOUBLE_EQ(t.end_time, 2.5);
  EXPECT_DOUBLE_EQ(t.network_s, 0.2);
  EXPECT_DOUBLE_EQ(t.queue_wait_s, 0.5);
  EXPECT_NEAR(t.execute_s, 0.2, 1e-12);
  // Synthesized tail: last observed span ends at 1.9, ack lands at 2.5.
  EXPECT_NEAR(t.ack_wait_s, 0.6, 1e-12);
  ASSERT_EQ(t.spans.size(), 5u);
  EXPECT_EQ(t.spans.back().kind, SpanKind::kAckWait);
  EXPECT_DOUBLE_EQ(t.spans.back().t1, 2.5);
}

TEST(TupleTrace, BeginRootIsIdempotent) {
  TupleTraceCollector tt({1.0, 8, 8}, 42);
  tt.begin_root(7, 0, 0, 1.0);
  tt.begin_root(7, 9, 9, 9.0);  // must not reset the existing trace
  tt.finish_root(7, 2.0, true);
  ASSERT_EQ(tt.finished().size(), 1u);
  EXPECT_EQ(tt.finished().front().spout, 0);
  EXPECT_EQ(tt.sampled_total(), 1u);
}

TEST(TupleTrace, SpanCapTruncatesButBreakdownStillAccumulates) {
  TupleTraceCollector tt({1.0, 8, /*max_spans_per_root=*/2}, 42);
  tt.begin_root(1, 0, 0, 0.0);
  for (int i = 0; i < 5; ++i) {
    tt.add_span(1, {SpanKind::kExecute, 0, -1, 0, i * 1.0, i * 1.0 + 0.5});
  }
  EXPECT_EQ(tt.spans_truncated(), 3u);
  tt.finish_root(1, 10.0, true);
  ASSERT_EQ(tt.finished().size(), 1u);
  const RootTrace& t = tt.finished().front();
  EXPECT_EQ(t.spans.size(), 2u);  // capped (no room for the ack span either)
  EXPECT_NEAR(t.execute_s, 2.5, 1e-12);  // all 5 spans counted
  EXPECT_GT(t.ack_wait_s, 0.0);
}

TEST(TupleTrace, FinishedRingIsBounded) {
  TupleTraceCollector tt({1.0, /*capacity=*/2, 8}, 42);
  for (std::uint64_t root = 1; root <= 3; ++root) {
    tt.begin_root(root, 0, 0, 0.0);
    tt.finish_root(root, 1.0, true);
  }
  ASSERT_EQ(tt.finished().size(), 2u);
  EXPECT_EQ(tt.finished().front().root_id, 2u);  // oldest evicted
  EXPECT_EQ(tt.sampled_total(), 3u);
}

TEST(TupleTrace, SpansForUnsampledRootsAreIgnored) {
  TupleTraceCollector tt({1.0, 8, 8}, 42);
  tt.add_span(99, {SpanKind::kExecute, 0, -1, 0, 0.0, 1.0});
  tt.finish_root(99, 1.0, true);
  EXPECT_TRUE(tt.finished().empty());
  EXPECT_EQ(tt.active(), 0u);
}

// ------------------------------------------------ Generator provenance ---

TEST(GeneratorProvenance, EmptyInputIsRecordedAndNotCountedAsGeneration) {
  sim::Simulation sim;
  runtime::Cluster cluster{sim, {}};
  core::MetricsDb db{0.5};
  core::ScheduleGenerator gen(cluster, db, {});

  // No assigned topologies: the pass is rejected, and — the regression —
  // must NOT count as a generation (it used to bump the counter first).
  EXPECT_FALSE(gen.generate_now());
  EXPECT_EQ(gen.generations(), 0u);
  ASSERT_EQ(cluster.provenance().total_recorded(), 1u);
  const DecisionRecord* rec = cluster.provenance().last();
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->outcome, DecisionOutcome::kEmptyInput);
  EXPECT_EQ(rec->trigger, DecisionTrigger::kPeriodic);
  EXPECT_FALSE(rec->reason.empty());

  // Overload-triggered passes carry their trigger in the record.
  EXPECT_FALSE(gen.generate_now(/*overload_triggered=*/true));
  EXPECT_EQ(gen.generations(), 0u);
  EXPECT_EQ(cluster.provenance().last()->trigger, DecisionTrigger::kOverload);
}

TEST(GeneratorProvenance, PublishedPassRecordsFullDecision) {
  sim::Simulation sim;
  runtime::Cluster cluster{sim, {}};
  core::MetricsDb db{0.5};
  core::CoreConfig cfg;
  cfg.gamma = 6.0;  // guarantees a consolidation publish
  core::ScheduleGenerator gen(cluster, db, cfg);
  cluster.submit(workload::make_throughput_test());
  const auto base = cluster.provenance().total_recorded();
  ASSERT_GE(base, 1u);  // the initial scheduling left a record too

  for (auto task : cluster.tasks_of(0)) db.update_executor_load(task, 20.0);
  sim.run_until(30.0);
  ASSERT_TRUE(gen.generate_now());
  EXPECT_EQ(gen.generations(), 1u);
  EXPECT_EQ(cluster.provenance().total_recorded(), base + 1);

  const auto published =
      cluster.provenance().of_outcome(DecisionOutcome::kPublished);
  ASSERT_FALSE(published.empty());
  const DecisionRecord& rec = published.back();
  EXPECT_EQ(rec.trigger, DecisionTrigger::kPeriodic);
  EXPECT_GT(rec.version, 0);
  EXPECT_TRUE(cluster.provenance().has_version(rec.version));
  EXPECT_GT(rec.executors, 0);
  EXPECT_FALSE(rec.node_loads.empty());
  EXPECT_GT(rec.node_loads.front().capacity_mhz, 0.0);
  EXPECT_FALSE(rec.algorithm.empty());
  EXPECT_FALSE(rec.reason.empty());
  EXPECT_FALSE(format_decision(rec).empty());
}

// --------------------------------------------------------- JSON checker ---

/// Minimal recursive-descent JSON validator. The exporter contract is
/// "the output parses" — so the test enforces real syntax (balanced
/// structure, quoted keys, no trailing commas), not substring presence.
class JsonChecker {
 public:
  static bool valid(const std::string& s) {
    JsonChecker c(s);
    c.ws();
    if (!c.value()) return false;
    c.ws();
    return c.i_ == s.size();
  }

 private:
  explicit JsonChecker(const std::string& s) : s_(s) {}
  [[nodiscard]] bool eof() const { return i_ >= s_.size(); }
  void ws() {
    while (!eof() && std::isspace(static_cast<unsigned char>(s_[i_]))) ++i_;
  }
  bool lit(const char* t) {
    const std::size_t n = std::strlen(t);
    if (s_.compare(i_, n, t) != 0) return false;
    i_ += n;
    return true;
  }
  bool string() {
    if (eof() || s_[i_] != '"') return false;
    ++i_;
    while (!eof() && s_[i_] != '"') {
      if (s_[i_] == '\\') ++i_;
      ++i_;
    }
    if (eof()) return false;
    ++i_;
    return true;
  }
  bool number() {
    const std::size_t start = i_;
    auto more = [&] {
      const char c = s_[i_];
      return std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
             c == 'e' || c == 'E' || c == '+' || c == '-';
    };
    while (!eof() && more()) ++i_;
    return i_ > start;
  }
  bool value() {
    ws();
    if (eof()) return false;
    switch (s_[i_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return lit("true");
      case 'f':
        return lit("false");
      case 'n':
        return lit("null");
      default:
        return number();
    }
  }
  bool object() {
    ++i_;
    ws();
    if (!eof() && s_[i_] == '}') {
      ++i_;
      return true;
    }
    while (true) {
      ws();
      if (!string()) return false;
      ws();
      if (eof() || s_[i_++] != ':') return false;
      if (!value()) return false;
      ws();
      if (eof()) return false;
      const char c = s_[i_++];
      if (c == '}') return true;
      if (c != ',') return false;
    }
  }
  bool array() {
    ++i_;
    ws();
    if (!eof() && s_[i_] == ']') {
      ++i_;
      return true;
    }
    while (true) {
      if (!value()) return false;
      ws();
      if (eof()) return false;
      const char c = s_[i_++];
      if (c == ']') return true;
      if (c != ',') return false;
    }
  }
  const std::string& s_;
  std::size_t i_ = 0;
};

TEST(JsonCheckerSelfTest, AcceptsValidRejectsBroken) {
  EXPECT_TRUE(JsonChecker::valid(R"({"a":[1,2.5,-3e4],"b":"x\"y","c":null})"));
  EXPECT_FALSE(JsonChecker::valid(R"({"a":1,})"));   // trailing comma
  EXPECT_FALSE(JsonChecker::valid(R"({"a":1)"));     // unbalanced
  EXPECT_FALSE(JsonChecker::valid(R"({"a":1}extra)"));
}

// ------------------------------------------------------------ Exporters ---

TEST(Export, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(json_escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(json_escape("plain"), "plain");
}

TEST(Export, HandwrittenLogsProduceValidJson) {
  ProvenanceLog log(8);
  auto rec = make_record(DecisionOutcome::kPublished,
                         DecisionTrigger::kPeriodic, 100);
  rec.node_loads.push_back({0, 1200.0, 8000.0});
  rec.reason = "published: \"traffic win\"\nwith newline";  // must escape
  log.record(std::move(rec));
  log.record(make_record(DecisionOutcome::kNoWin, DecisionTrigger::kOverload));

  TupleTraceCollector tt({1.0, 8, 16}, 1);
  tt.begin_root(5, 0, 0, 1.0);
  tt.add_span(5, {SpanKind::kQueueWait, 2, -1, 0, 1.0, 1.5});
  tt.finish_root(5, 2.0, true);

  std::ostringstream chrome;
  write_chrome_trace(chrome, log, tt);
  EXPECT_TRUE(JsonChecker::valid(chrome.str())) << chrome.str();
  EXPECT_NE(chrome.str().find("traceEvents"), std::string::npos);
  EXPECT_NE(chrome.str().find("\"ph\":\"i\""), std::string::npos)
      << "decision instants missing";
  EXPECT_NE(chrome.str().find("\"ph\":\"X\""), std::string::npos)
      << "tuple spans missing";

  std::ostringstream jsonl;
  write_jsonl(jsonl, log, tt);
  std::istringstream lines(jsonl.str());
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(JsonChecker::valid(line)) << line;
    ++n;
  }
  EXPECT_EQ(n, 3);  // 2 decisions + 1 root
}

// ------------------------------------ End-to-end system + determinism ---

TEST(ObsIntegration, FullRunRecordsExportsAndSummarizes) {
  sim::Simulation sim;
  runtime::ClusterConfig cfg;
  cfg.obs.tuple_sample_rate = 1.0;
  core::CoreConfig core_cfg;
  core_cfg.gamma = 1.7;
  core_cfg.trace_decisions = true;
  core::TStormSystem sys(sim, cfg, core_cfg);
  sys.submit(workload::make_throughput_test());
  sim.run_until(700.0);
  runtime::Cluster& c = sys.cluster();

  // Every generation pass left a decision record (plus the initial
  // scheduling), and the published count closes exactly.
  EXPECT_GE(c.provenance().total_recorded(), sys.generator().generations());
  EXPECT_EQ(c.provenance().count(DecisionOutcome::kPublished),
            sys.generator().publishes() + 1);  // +1: initial scheduling
  // Every applied schedule traces back to a published decision.
  const auto applied =
      c.trace_log().of_kind(trace::EventKind::kScheduleApplied);
  ASSERT_FALSE(applied.empty());
  for (const auto& e : applied) {
    EXPECT_TRUE(c.provenance().has_version(e.version)) << e.version;
  }
  // With trace_decisions on, every rejected pass surfaces in the control
  // trace (all records here come from the initial scheduling + generator).
  EXPECT_EQ(c.trace_log().count(trace::EventKind::kScheduleRejected),
            c.provenance().total_recorded() -
                c.provenance().count(DecisionOutcome::kPublished));
  // Rejected periodic passes carry the traffic comparison they were
  // judged on.
  const auto no_win = c.provenance().of_outcome(DecisionOutcome::kNoWin);
  for (const auto& r : no_win) {
    EXPECT_GE(r.current_traffic, 0.0);
    EXPECT_GE(r.proposed_traffic, 0.0);
    EXPECT_FALSE(r.reason.empty());
  }

  // Tuple tracing at rate 1 captured real work.
  EXPECT_GT(c.tuple_trace().sampled_total(), 0u);
  ASSERT_FALSE(c.tuple_trace().finished().empty());
  const RootTrace& t = c.tuple_trace().finished().back();
  EXPECT_GE(t.end_time, t.emit_time);
  EXPECT_FALSE(t.spans.empty());

  // Exports parse; the Chrome document carries decisions and spans.
  std::ostringstream chrome;
  write_chrome_trace(chrome, c.provenance(), c.tuple_trace(), &c.trace_log());
  EXPECT_TRUE(JsonChecker::valid(chrome.str()));
  EXPECT_NE(chrome.str().find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(chrome.str().find("\"ph\":\"X\""), std::string::npos);

  std::ostringstream jsonl;
  write_jsonl(jsonl, c.provenance(), c.tuple_trace());
  std::istringstream lines(jsonl.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    ASSERT_TRUE(JsonChecker::valid(line)) << line;
    ++n;
  }
  EXPECT_EQ(n, c.provenance().size() + c.tuple_trace().finished().size());

  // The text summaries render.
  std::ostringstream summary;
  metrics::print_decision_summary(summary, c.provenance());
  metrics::print_tuple_trace_summary(summary, c.tuple_trace());
  EXPECT_NE(summary.str().find("scheduling decisions:"), std::string::npos);
  EXPECT_NE(summary.str().find("published"), std::string::npos);
  EXPECT_NE(summary.str().find("tuple traces:"), std::string::npos);
  EXPECT_NE(summary.str().find("end-to-end"), std::string::npos);
}

std::string run_and_dump(double sample_rate) {
  sim::Simulation sim;
  runtime::ClusterConfig cfg;
  cfg.obs.tuple_sample_rate = sample_rate;
  core::TStormSystem sys(sim, cfg, {});
  sys.submit(workload::make_throughput_test());
  sim.run_until(120.0);
  std::string out;
  for (const auto& e : sys.cluster().trace_log().events()) {
    out += trace::format_event(e);
    out += '\n';
  }
  out += "completed=" +
         std::to_string(sys.cluster().completion().total_completed()) +
         " failed=" +
         std::to_string(sys.cluster().completion().total_failed());
  return out;
}

TEST(ObsDeterminism, SamplingDoesNotPerturbTheWorkload) {
  // The tracing RNG is a private substream and provenance is passive
  // bookkeeping: a fully-sampled run must be byte-identical (control
  // trace, completions) to an unsampled one.
  const std::string off = run_and_dump(0.0);
  EXPECT_EQ(off, run_and_dump(1.0));
  EXPECT_EQ(off, run_and_dump(0.0));
}

}  // namespace
}  // namespace tstorm::obs
