// Tests for the round-robin (Storm default), T-Storm initial, manual, and
// Aniello schedulers, the helper metrics, and the hot-swap registry.
#include <gtest/gtest.h>

#include <set>

#include "sched/aniello.h"
#include "sched/manual.h"
#include "sched/round_robin.h"
#include "sched/scheduler.h"
#include "sched/types.h"

namespace tstorm::sched {
namespace {

SchedulerInput make_input(int nodes, int slots_per_node) {
  SchedulerInput in;
  for (int n = 0; n < nodes; ++n) {
    for (int p = 0; p < slots_per_node; ++p) {
      in.slots.push_back({n * slots_per_node + p, n, p});
    }
    in.nodes.push_back({n, {8000.0}});
  }
  return in;
}

void add_executors(SchedulerInput& in, TopologyId topo, int count,
                   int requested_workers) {
  const int base = static_cast<int>(in.executors.size());
  for (int i = 0; i < count; ++i) {
    in.executors.push_back({base + i, topo});
  }
  in.topologies.push_back({topo, requested_workers});
}

NodeId node_of(const SchedulerInput& in, SlotIndex slot) {
  for (const auto& s : in.slots) {
    if (s.slot == slot) return s.node;
  }
  return -1;
}

// ------------------------------------------------------------ RoundRobin

TEST(RoundRobin, UsesExactlyNuWorkers) {
  auto in = make_input(10, 4);
  add_executors(in, 0, 45, 40);
  RoundRobinScheduler alg;
  const auto r = alg.schedule(in);
  EXPECT_EQ(r.assignment.size(), 45u);
  EXPECT_EQ(slots_used(r.assignment), 40);
}

TEST(RoundRobin, AlwaysSpreadsAcrossAllNodes) {
  // The paper's observation: "Storm always used all of 10 worker nodes".
  auto in = make_input(10, 4);
  add_executors(in, 0, 20, 20);
  RoundRobinScheduler alg;
  const auto r = alg.schedule(in);
  EXPECT_EQ(nodes_used(in, r.assignment), 10);
}

TEST(RoundRobin, EvenExecutorDistributionOverWorkers) {
  auto in = make_input(4, 4);
  add_executors(in, 0, 16, 8);
  RoundRobinScheduler alg;
  const auto r = alg.schedule(in);
  std::unordered_map<SlotIndex, int> per_worker;
  for (const auto& [t, s] : r.assignment) per_worker[s]++;
  for (const auto& [s, c] : per_worker) EXPECT_EQ(c, 2);
}

TEST(RoundRobin, InterleavesNodesBeforePorts) {
  auto in = make_input(4, 2);
  add_executors(in, 0, 4, 4);
  RoundRobinScheduler alg;
  const auto r = alg.schedule(in);
  // 4 workers over 4 nodes: each node's port 0.
  std::set<NodeId> nodes;
  for (const auto& [t, s] : r.assignment) {
    nodes.insert(node_of(in, s));
    EXPECT_EQ(s % 2, 0);  // port 0 slots (slot = node*2 + port)
  }
  EXPECT_EQ(nodes.size(), 4u);
}

TEST(RoundRobin, SkipsOccupiedSlots) {
  auto in = make_input(2, 1);
  add_executors(in, 0, 4, 2);
  in.occupied_slots = {0};
  RoundRobinScheduler alg;
  const auto r = alg.schedule(in);
  for (const auto& [t, s] : r.assignment) EXPECT_EQ(s, 1);
}

TEST(RoundRobin, CapsWorkersAtFreeSlots) {
  auto in = make_input(2, 1);
  add_executors(in, 0, 6, 10);  // asks for 10 workers, only 2 slots
  RoundRobinScheduler alg;
  const auto r = alg.schedule(in);
  EXPECT_EQ(r.assignment.size(), 6u);
  EXPECT_EQ(slots_used(r.assignment), 2);
}

TEST(RoundRobin, MultipleTopologiesGetDisjointSlots) {
  auto in = make_input(4, 2);
  add_executors(in, 0, 4, 2);
  add_executors(in, 1, 4, 2);
  RoundRobinScheduler alg;
  const auto r = alg.schedule(in);
  std::unordered_map<SlotIndex, TopologyId> owner;
  for (const auto& e : in.executors) {
    auto [it, inserted] = owner.emplace(r.assignment.at(e.task), e.topology);
    if (!inserted) {
      EXPECT_EQ(it->second, e.topology);
    }
  }
}

// --------------------------------------------------------- TStormInitial

TEST(TStormInitial, WorkerCountIsMinOfNuAndNodes) {
  // N*w = min(Nu, Nw), section IV-C.
  auto in = make_input(10, 4);
  add_executors(in, 0, 45, 40);  // user asks 40 workers
  TStormInitialScheduler alg;
  const auto r = alg.schedule(in);
  EXPECT_EQ(slots_used(r.assignment), 10);  // capped at node count
  EXPECT_TRUE(one_slot_per_topology_per_node(in, r.assignment));
}

TEST(TStormInitial, HonorsSmallNu) {
  auto in = make_input(10, 4);
  add_executors(in, 0, 12, 3);
  TStormInitialScheduler alg;
  const auto r = alg.schedule(in);
  EXPECT_EQ(slots_used(r.assignment), 3);
  EXPECT_EQ(nodes_used(in, r.assignment), 3);
}

TEST(TStormInitial, OneWorkerPerNode) {
  auto in = make_input(5, 4);
  add_executors(in, 0, 20, 20);
  TStormInitialScheduler alg;
  const auto r = alg.schedule(in);
  EXPECT_EQ(slots_used(r.assignment), 5);
  EXPECT_EQ(nodes_used(in, r.assignment), 5);
  EXPECT_TRUE(one_slot_per_topology_per_node(in, r.assignment));
}

TEST(TStormInitial, SecondTopologyUsesOtherSlots) {
  auto in = make_input(2, 2);
  add_executors(in, 0, 2, 2);
  add_executors(in, 1, 2, 2);
  TStormInitialScheduler alg;
  const auto r = alg.schedule(in);
  std::set<SlotIndex> slots;
  for (const auto& [t, s] : r.assignment) slots.insert(s);
  EXPECT_EQ(slots.size(), 4u);
}

// ---------------------------------------------------------------- Manual

TEST(Manual, PinsExactPlacement) {
  auto in = make_input(2, 2);
  add_executors(in, 0, 3, 1);
  ManualScheduler alg({{0, 2}, {1, 2}, {2, 3}});
  const auto r = alg.schedule(in);
  EXPECT_EQ(r.assignment.at(0), 2);
  EXPECT_EQ(r.assignment.at(1), 2);
  EXPECT_EQ(r.assignment.at(2), 3);
}

TEST(Manual, UnpinnedTasksRoundRobinOverUsedSlots) {
  auto in = make_input(2, 2);
  add_executors(in, 0, 4, 1);
  ManualScheduler alg(Placement{{0, 1}});
  const auto r = alg.schedule(in);
  EXPECT_EQ(r.assignment.size(), 4u);
  for (const auto& [t, s] : r.assignment) EXPECT_EQ(s, 1);
}

// --------------------------------------------------------------- Aniello

TEST(AnielloOnline, PlacesAllExecutors) {
  auto in = make_input(4, 4);
  add_executors(in, 0, 12, 4);
  for (int i = 0; i < 11; ++i) in.traffic.push_back({i, i + 1, 100.0});
  AnielloOnlineScheduler alg;
  const auto r = alg.schedule(in);
  EXPECT_EQ(r.assignment.size(), 12u);
  EXPECT_LE(slots_used(r.assignment), 4);
}

TEST(AnielloOnline, HeavyPairsShareWorker) {
  auto in = make_input(2, 2);
  add_executors(in, 0, 4, 2);
  in.traffic.push_back({0, 1, 1000.0});
  in.traffic.push_back({2, 3, 900.0});
  in.traffic.push_back({1, 2, 1.0});
  AnielloOnlineScheduler alg;
  const auto r = alg.schedule(in);
  EXPECT_EQ(r.assignment.at(0), r.assignment.at(1));
  EXPECT_EQ(r.assignment.at(2), r.assignment.at(3));
}

TEST(AnielloOffline, UsesTopologyEdgesOnly) {
  auto in = make_input(2, 2);
  add_executors(in, 0, 4, 2);
  in.topology_edges = {{0, 1}, {2, 3}};
  // Contradictory runtime traffic must be ignored by the offline variant.
  in.traffic.push_back({0, 3, 99999.0});
  AnielloOfflineScheduler alg;
  const auto r = alg.schedule(in);
  EXPECT_EQ(r.assignment.size(), 4u);
  EXPECT_EQ(r.assignment.at(0), r.assignment.at(1));
}

TEST(AnielloOnline, RespectsWorkerSizeCap) {
  auto in = make_input(4, 4);
  add_executors(in, 0, 12, 4);  // cap = ceil(12/4) = 3 per worker
  for (int i = 0; i < 12; ++i) {
    for (int j = i + 1; j < 12; ++j) in.traffic.push_back({i, j, 50.0});
  }
  AnielloOnlineScheduler alg;
  const auto r = alg.schedule(in);
  std::unordered_map<SlotIndex, int> per_worker;
  for (const auto& [t, s] : r.assignment) per_worker[s]++;
  for (const auto& [s, c] : per_worker) EXPECT_LE(c, 3);
}

// ---------------------------------------------------------------- Helpers

TEST(Helpers, InternodeAndInterprocessTraffic) {
  auto in = make_input(2, 2);
  add_executors(in, 0, 3, 1);
  in.traffic = {{0, 1, 10.0}, {1, 2, 20.0}, {0, 2, 40.0}};
  // 0 -> slot 0 (node 0), 1 -> slot 1 (node 0), 2 -> slot 2 (node 1).
  Placement p{{0, 0}, {1, 1}, {2, 2}};
  EXPECT_DOUBLE_EQ(internode_traffic(in, p), 60.0);   // 1-2 and 0-2
  EXPECT_DOUBLE_EQ(interprocess_traffic(in, p), 10.0);  // 0-1 same node
  EXPECT_EQ(nodes_used(in, p), 2);
  EXPECT_EQ(slots_used(p), 3);
}

TEST(Helpers, OneSlotPerTopologyDetectsViolation) {
  auto in = make_input(1, 2);
  add_executors(in, 0, 2, 2);
  Placement bad{{0, 0}, {1, 1}};  // same topology, two slots, one node
  EXPECT_FALSE(one_slot_per_topology_per_node(in, bad));
  Placement good{{0, 0}, {1, 0}};
  EXPECT_TRUE(one_slot_per_topology_per_node(in, good));
}

// --------------------------------------------------------------- Registry

TEST(Registry, BuiltinsPresent) {
  auto& reg = AlgorithmRegistry::instance();
  for (const char* name :
       {"traffic-aware", "round-robin", "tstorm-initial", "aniello-offline",
        "aniello-online"}) {
    auto alg = reg.create(name);
    ASSERT_NE(alg, nullptr) << name;
    EXPECT_EQ(alg->name(), name);
  }
}

TEST(Registry, UnknownNameReturnsNull) {
  EXPECT_EQ(AlgorithmRegistry::instance().create("nope"), nullptr);
}

TEST(Registry, CustomRegistrationAndDuplicateRejection) {
  class Dummy final : public ISchedulingAlgorithm {
   public:
    ScheduleResult schedule(const SchedulerInput&) override { return {}; }
    std::string name() const override { return "dummy-test-alg"; }
  };
  auto& reg = AlgorithmRegistry::instance();
  const bool first = reg.register_algorithm(
      "dummy-test-alg", [] { return std::make_unique<Dummy>(); });
  if (first) {
    EXPECT_NE(reg.create("dummy-test-alg"), nullptr);
  }
  EXPECT_FALSE(reg.register_algorithm("dummy-test-alg",
                                      [] { return std::make_unique<Dummy>(); }));
  EXPECT_FALSE(reg.register_algorithm("round-robin",
                                      [] { return std::make_unique<Dummy>(); }));
}

TEST(Registry, NamesListsEverything) {
  const auto names = AlgorithmRegistry::instance().names();
  EXPECT_GE(names.size(), 5u);
}

}  // namespace
}  // namespace tstorm::sched
