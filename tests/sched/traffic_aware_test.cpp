#include "sched/traffic_aware.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.h"

namespace tstorm::sched {
namespace {

/// 4 slots per node, like the reference cluster.
SchedulerInput make_input(int nodes, int slots_per_node, double capacity) {
  SchedulerInput in;
  for (int n = 0; n < nodes; ++n) {
    for (int p = 0; p < slots_per_node; ++p) {
      in.slots.push_back({n * slots_per_node + p, n, p});
    }
    in.nodes.push_back({n, {capacity}});
  }
  return in;
}

void add_executors(SchedulerInput& in, TopologyId topo, int count,
                   double load = 10.0) {
  const int base = static_cast<int>(in.executors.size());
  for (int i = 0; i < count; ++i) {
    in.executors.push_back({base + i, topo, {load}});
  }
  in.topologies.push_back({topo, count});
}

NodeId node_of(const SchedulerInput& in, const Placement& p, TaskId t) {
  for (const auto& s : in.slots) {
    if (s.slot == p.at(t)) return s.node;
  }
  return -1;
}

TEST(TrafficAware, EmptyInputYieldsEmptyResult) {
  TrafficAwareScheduler alg;
  SchedulerInput in;
  const auto r = alg.schedule(in);
  EXPECT_TRUE(r.assignment.empty());
}

TEST(TrafficAware, PlacesEveryExecutor) {
  auto in = make_input(4, 4, 1e9);
  add_executors(in, 0, 13);
  TrafficAwareScheduler alg;
  const auto r = alg.schedule(in);
  EXPECT_EQ(r.assignment.size(), 13u);
}

TEST(TrafficAware, ChattyPairColocated) {
  auto in = make_input(4, 4, 1e9);
  add_executors(in, 0, 8);
  in.traffic.push_back({0, 1, 1000.0});  // hot edge
  in.traffic.push_back({2, 3, 1.0});
  in.gamma = 4.0;  // allow packing
  TrafficAwareScheduler alg;
  const auto r = alg.schedule(in);
  EXPECT_EQ(node_of(in, r.assignment, 0), node_of(in, r.assignment, 1));
  // One slot per topology per node => same node means same slot.
  EXPECT_EQ(r.assignment.at(0), r.assignment.at(1));
}

TEST(TrafficAware, ChainPartitioningIsGreedy) {
  // Two independent chains a0-a1-a2 and b0-b1-b2 with room for 3 per node.
  // The optimum is zero inter-node traffic; the paper's greedy (like ours)
  // seeds both chain heads onto the same node before their neighbours are
  // placed, so it pays for some edges — but never more than it keeps.
  auto in = make_input(2, 4, 1e9);
  add_executors(in, 0, 6);
  in.gamma = 1.0;  // ceil(6/2)=3 per node
  double total = 0;
  for (auto [s, d] : {std::pair{0, 1}, {1, 2}, {3, 4}, {4, 5}}) {
    in.traffic.push_back({s, d, 100.0});
    total += 100.0;
  }
  TrafficAwareScheduler alg;
  const auto r = alg.schedule(in);
  EXPECT_EQ(r.assignment.size(), 6u);
  EXPECT_EQ(nodes_used(in, r.assignment), 2);
  EXPECT_LT(internode_traffic(in, r.assignment), total);
  EXPECT_TRUE(one_slot_per_topology_per_node(in, r.assignment));
}

TEST(TrafficAware, OneSlotPerTopologyPerNodeInvariant) {
  auto in = make_input(3, 4, 1e9);
  add_executors(in, 0, 9);
  add_executors(in, 1, 7);
  sim::Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    const auto a = rng.uniform_int(0, 15);
    const auto b = rng.uniform_int(0, 15);
    if (a != b) in.traffic.push_back({static_cast<TaskId>(a),
                                      static_cast<TaskId>(b),
                                      rng.uniform(1, 100)});
  }
  in.gamma = 3.0;
  TrafficAwareScheduler alg;
  const auto r = alg.schedule(in);
  EXPECT_EQ(r.assignment.size(), 16u);
  EXPECT_TRUE(one_slot_per_topology_per_node(in, r.assignment));
}

TEST(TrafficAware, TopologiesNeverShareASlot) {
  auto in = make_input(2, 2, 1e9);
  add_executors(in, 0, 4);
  add_executors(in, 1, 4);
  in.gamma = 8.0;
  TrafficAwareScheduler alg;
  const auto r = alg.schedule(in);
  std::unordered_map<SlotIndex, TopologyId> owner;
  for (const auto& e : in.executors) {
    auto it = r.assignment.find(e.task);
    ASSERT_NE(it, r.assignment.end());
    auto [oit, inserted] = owner.emplace(it->second, e.topology);
    if (!inserted) {
      EXPECT_EQ(oit->second, e.topology);
    }
  }
}

TEST(TrafficAware, RespectsCapacityConstraint) {
  auto in = make_input(4, 4, 100.0);  // each node fits 2 executors of 40
  add_executors(in, 0, 8, 40.0);
  in.gamma = 8.0;  // count constraint loose; capacity must bind
  // All-to-all traffic pulls toward one node.
  for (int i = 0; i < 8; ++i) {
    for (int j = i + 1; j < 8; ++j) in.traffic.push_back({i, j, 10.0});
  }
  TrafficAwareScheduler alg;
  const auto r = alg.schedule(in);
  EXPECT_FALSE(r.capacity_relaxed);
  std::unordered_map<NodeId, double> load;
  for (const auto& e : in.executors) {
    load[node_of(in, r.assignment, e.task)] += e.load_mhz();
  }
  for (const auto& [n, l] : load) EXPECT_LE(l, 100.0 + 1e-9);
  EXPECT_EQ(nodes_used(in, r.assignment), 4);
}

TEST(TrafficAware, GammaOneSpreadsAlmostEvenly) {
  auto in = make_input(10, 4, 1e9);
  add_executors(in, 0, 40);
  in.gamma = 1.0;  // ceil(40/10) = 4 per node
  for (int i = 0; i < 39; ++i) in.traffic.push_back({i, i + 1, 50.0});
  TrafficAwareScheduler alg;
  const auto r = alg.schedule(in);
  std::unordered_map<NodeId, int> counts;
  for (const auto& e : in.executors) {
    counts[node_of(in, r.assignment, e.task)]++;
  }
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [n, c] : counts) EXPECT_LE(c, 4);
}

TEST(TrafficAware, LargerGammaUsesFewerNodes) {
  TrafficAwareScheduler alg;
  int prev_nodes = 1000;
  for (double gamma : {1.0, 2.0, 4.0, 10.0}) {
    auto in = make_input(10, 4, 1e9);
    add_executors(in, 0, 40);
    in.gamma = gamma;
    for (int i = 0; i < 39; ++i) in.traffic.push_back({i, i + 1, 50.0});
    const auto r = alg.schedule(in);
    const int n = nodes_used(in, r.assignment);
    EXPECT_LE(n, prev_nodes);
    prev_nodes = n;
  }
  EXPECT_EQ(prev_nodes, 1);  // gamma=10 packs everything onto one node
}

TEST(TrafficAware, CountRelaxationWhenGammaInfeasible) {
  // 1 node, gamma limit would allow ceil(1*4/1)=4, fine; but force
  // infeasibility via a second topology locking slots.
  auto in = make_input(1, 2, 1e9);
  add_executors(in, 0, 6);
  in.gamma = 0.5;  // limit = ceil(0.5*6/1) = 3 < 6 executors
  TrafficAwareScheduler alg;
  const auto r = alg.schedule(in);
  EXPECT_EQ(r.assignment.size(), 6u);  // still placed
  EXPECT_TRUE(r.count_relaxed);
}

TEST(TrafficAware, CapacityRelaxationPlacesEveryone) {
  auto in = make_input(2, 2, 50.0);
  add_executors(in, 0, 4, 40.0);  // 160 demand, 100 capacity
  in.gamma = 10.0;
  TrafficAwareScheduler alg;
  const auto r = alg.schedule(in);
  EXPECT_EQ(r.assignment.size(), 4u);
  EXPECT_TRUE(r.capacity_relaxed);
  EXPECT_TRUE(one_slot_per_topology_per_node(in, r.assignment));
}

TEST(TrafficAware, NoRelaxationOptionLeavesUnplaced) {
  auto in = make_input(1, 1, 10.0);
  add_executors(in, 0, 3, 40.0);
  TrafficAwareScheduler alg(TrafficAwareOptions{.allow_relaxation = false});
  const auto r = alg.schedule(in);
  EXPECT_LT(r.assignment.size(), 3u);
}

TEST(TrafficAware, OccupiedSlotsAvoided) {
  auto in = make_input(2, 1, 1e9);
  add_executors(in, 0, 3);
  in.occupied_slots = {0};  // node 0's only slot taken
  TrafficAwareScheduler alg;
  const auto r = alg.schedule(in);
  for (const auto& [task, slot] : r.assignment) EXPECT_EQ(slot, 1);
}

TEST(TrafficAware, DeterministicAcrossRuns) {
  auto make = [] {
    auto in = make_input(5, 4, 1e6);
    add_executors(in, 0, 20, 5.0);
    sim::Rng rng(77);
    for (int i = 0; i < 60; ++i) {
      in.traffic.push_back({static_cast<TaskId>(rng.uniform_int(0, 19)),
                            static_cast<TaskId>(rng.uniform_int(0, 19)),
                            rng.uniform(0, 100)});
    }
    in.gamma = 2.0;
    return in;
  };
  TrafficAwareScheduler alg;
  const auto r1 = alg.schedule(make());
  const auto r2 = alg.schedule(make());
  EXPECT_EQ(r1.assignment, r2.assignment);
}

TEST(TrafficAware, HeaviestTrafficExecutorsPlacedFirst) {
  // The heavy pair should get the best (co-located) placement even when
  // listed last.
  auto in = make_input(2, 1, 1e9);
  add_executors(in, 0, 4);
  in.gamma = 1.0;  // 2 per node
  in.traffic.push_back({0, 1, 1.0});
  in.traffic.push_back({2, 3, 1000.0});
  TrafficAwareScheduler alg;
  const auto r = alg.schedule(in);
  EXPECT_EQ(node_of(in, r.assignment, 2), node_of(in, r.assignment, 3));
}

// Property sweep: across sizes and gammas the three invariants always hold.
struct SweepParam {
  int nodes;
  int executors;
  double gamma;
  std::uint64_t seed;
};

class TrafficAwareSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(TrafficAwareSweep, InvariantsHold) {
  const auto p = GetParam();
  auto in = make_input(p.nodes, 4, 8000.0 * 0.85);
  add_executors(in, 0, p.executors / 2 + p.executors % 2, 30.0);
  add_executors(in, 1, p.executors / 2, 30.0);
  sim::Rng rng(p.seed);
  for (int i = 0; i < p.executors * 3; ++i) {
    const auto a = static_cast<TaskId>(
        rng.uniform_int(0, p.executors - 1));
    const auto b = static_cast<TaskId>(
        rng.uniform_int(0, p.executors - 1));
    if (a != b) in.traffic.push_back({a, b, rng.uniform(0.1, 500)});
  }
  in.gamma = p.gamma;
  TrafficAwareScheduler alg;
  const auto r = alg.schedule(in);

  // 1. Everyone placed.
  EXPECT_EQ(r.assignment.size(), static_cast<std::size_t>(p.executors));
  // 2. Structural invariant.
  EXPECT_TRUE(one_slot_per_topology_per_node(in, r.assignment));
  // 3. Count constraint (when not relaxed).
  if (!r.count_relaxed) {
    const int limit = static_cast<int>(
        std::ceil(p.gamma * p.executors / p.nodes - 1e-9));
    std::unordered_map<NodeId, int> counts;
    for (const auto& e : in.executors) {
      counts[node_of(in, r.assignment, e.task)]++;
    }
    for (const auto& [n, c] : counts) EXPECT_LE(c, std::max(1, limit));
  }
  // 4. Capacity constraint (when not relaxed).
  if (!r.capacity_relaxed) {
    std::unordered_map<NodeId, double> load;
    for (const auto& e : in.executors) {
      load[node_of(in, r.assignment, e.task)] += e.load_mhz();
    }
    for (const auto& [n, l] : load) EXPECT_LE(l, 8000.0 * 0.85 + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, TrafficAwareSweep,
    ::testing::Values(SweepParam{2, 4, 1.0, 1}, SweepParam{2, 8, 2.0, 2},
                      SweepParam{5, 20, 1.0, 3}, SweepParam{5, 20, 1.7, 4},
                      SweepParam{10, 45, 1.0, 5}, SweepParam{10, 45, 1.7, 6},
                      SweepParam{10, 45, 6.0, 7}, SweepParam{10, 27, 2.2, 8},
                      SweepParam{10, 34, 2.0, 9}, SweepParam{3, 30, 1.2, 10},
                      SweepParam{8, 64, 3.0, 11},
                      SweepParam{16, 100, 1.5, 12}));

}  // namespace
}  // namespace tstorm::sched
