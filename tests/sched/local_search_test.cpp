// LocalSearchScheduler: must never be worse than Algorithm 1, must keep
// all constraints, and must fix the greedy's known chain-partitioning
// suboptimality.
#include <gtest/gtest.h>

#include <cmath>

#include "sched/local_search.h"
#include "sched/traffic_aware.h"
#include "sim/rng.h"

namespace tstorm::sched {
namespace {

SchedulerInput make_input(int nodes, int slots_per_node, double capacity) {
  SchedulerInput in;
  for (int n = 0; n < nodes; ++n) {
    for (int p = 0; p < slots_per_node; ++p) {
      in.slots.push_back({n * slots_per_node + p, n, p});
    }
    in.nodes.push_back({n, {capacity}});
  }
  return in;
}

void add_executors(SchedulerInput& in, TopologyId topo, int count,
                   double load = 10.0) {
  const int base = static_cast<int>(in.executors.size());
  for (int i = 0; i < count; ++i) {
    in.executors.push_back({base + i, topo, {load}});
  }
  in.topologies.push_back({topo, count});
}

TEST(LocalSearch, FixesChainPartitioning) {
  // The case the greedy gets wrong (see ChainPartitioningIsGreedy): two
  // disjoint chains; the optimum is zero inter-node traffic.
  auto in = make_input(2, 4, 1e9);
  add_executors(in, 0, 6);
  in.gamma = 1.0;
  for (auto [s, d] : {std::pair{0, 1}, {1, 2}, {3, 4}, {4, 5}}) {
    in.traffic.push_back({s, d, 100.0});
  }
  TrafficAwareScheduler greedy;
  LocalSearchScheduler search;
  const double greedy_traffic =
      internode_traffic(in, greedy.schedule(in).assignment);
  const auto refined = search.schedule(in);
  const double refined_traffic =
      internode_traffic(in, refined.assignment);
  EXPECT_GT(greedy_traffic, 0.0);      // the greedy pays
  EXPECT_DOUBLE_EQ(refined_traffic, 0.0);  // local search reaches optimum
  EXPECT_TRUE(one_slot_per_topology_per_node(in, refined.assignment));
}

TEST(LocalSearch, NeverWorseThanGreedyOnRandomInputs) {
  TrafficAwareScheduler greedy;
  LocalSearchScheduler search;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    auto in = make_input(6, 4, 8000.0 * 0.85);
    add_executors(in, 0, 20, 25.0);
    add_executors(in, 1, 13, 25.0);
    sim::Rng rng(seed);
    for (int i = 0; i < 120; ++i) {
      const auto a = static_cast<TaskId>(rng.uniform_int(0, 32));
      const auto b = static_cast<TaskId>(rng.uniform_int(0, 32));
      if (a != b) in.traffic.push_back({a, b, rng.uniform(0.1, 300.0)});
    }
    in.gamma = 1.0 + static_cast<double>(seed % 4);
    const double g = internode_traffic(in, greedy.schedule(in).assignment);
    const auto r = search.schedule(in);
    const double ls = internode_traffic(in, r.assignment);
    EXPECT_LE(ls, g + 1e-9) << "seed " << seed;
    EXPECT_EQ(r.assignment.size(), 33u);
    EXPECT_TRUE(one_slot_per_topology_per_node(in, r.assignment));
  }
}

TEST(LocalSearch, RespectsCountAndCapacityConstraints) {
  auto in = make_input(4, 4, 100.0);
  add_executors(in, 0, 8, 40.0);  // 2 per node by capacity
  in.gamma = 8.0;
  for (int i = 0; i < 8; ++i) {
    for (int j = i + 1; j < 8; ++j) in.traffic.push_back({i, j, 10.0});
  }
  LocalSearchScheduler search;
  const auto r = search.schedule(in);
  std::unordered_map<NodeId, double> load;
  for (const auto& [task, slot] : r.assignment) {
    load[slot / 4] += 40.0;
  }
  for (const auto& [n, l] : load) EXPECT_LE(l, 100.0 + 1e-9);
}

TEST(LocalSearch, RegisteredInRegistry) {
  auto alg = AlgorithmRegistry::instance().create("local-search");
  ASSERT_NE(alg, nullptr);
  EXPECT_EQ(alg->name(), "local-search");
}

TEST(LocalSearch, EmptyInput) {
  LocalSearchScheduler search;
  SchedulerInput in;
  EXPECT_TRUE(search.schedule(in).assignment.empty());
}

TEST(LocalSearch, DeterministicAcrossRuns) {
  auto make = [] {
    auto in = make_input(5, 4, 1e6);
    add_executors(in, 0, 18, 5.0);
    sim::Rng rng(31);
    for (int i = 0; i < 60; ++i) {
      in.traffic.push_back({static_cast<TaskId>(rng.uniform_int(0, 17)),
                            static_cast<TaskId>(rng.uniform_int(0, 17)),
                            rng.uniform(0, 100)});
    }
    in.gamma = 2.0;
    return in;
  };
  LocalSearchScheduler search;
  EXPECT_EQ(search.schedule(make()).assignment,
            search.schedule(make()).assignment);
}

}  // namespace
}  // namespace tstorm::sched
