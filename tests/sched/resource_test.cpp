// The resource-vector scheduler API: checked capacity lookup, the shared
// effective-load / occupied-slot helpers every algorithm now goes through,
// R-Storm's distance-based placement, and the hard-constraint contract —
// every registered scheduler either respects node capacities or says so
// via the relaxation flags (randomized heterogeneous sweep).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <unordered_map>

#include "sched/rstorm.h"
#include "sched/scheduler.h"
#include "sched/types.h"
#include "sim/rng.h"

namespace tstorm::sched {
namespace {

// -------------------------------------------------- checked capacity ---

TEST(ResourceVector, EmptyNodesMeansUnconstrained) {
  SchedulerInput in;
  const auto cap = in.node_capacity(7);
  for (double c : cap) EXPECT_TRUE(std::isinf(c));
  EXPECT_TRUE(std::isinf(in.node_capacity_mhz(0)));
}

TEST(ResourceVector, InRangeLookupReturnsTheNodeVector) {
  SchedulerInput in;
  in.nodes = {{0, {8000.0, 1024.0, 100.0}}, {1, {4000.0, 512.0, 50.0}}};
  EXPECT_DOUBLE_EQ(in.node_capacity_mhz(1), 4000.0);
  EXPECT_DOUBLE_EQ(in.node_capacity(1)[kMemoryMib], 512.0);
  EXPECT_DOUBLE_EQ(in.node_capacity(1)[kNetworkMbps], 50.0);
}

TEST(ResourceVectorDeathTest, OutOfRangeNodeIdFailsLoudly) {
  // Out-of-range ids used to silently resolve to "unconstrained",
  // masking caller bugs. Debug builds assert; release builds clamp to the
  // nearest valid entry with a one-time trace.
  SchedulerInput in;
  in.nodes = {{0, {8000.0}}};
  EXPECT_DEBUG_DEATH((void)in.node_capacity(3), "out of range");
#ifdef NDEBUG
  EXPECT_DOUBLE_EQ(in.node_capacity_mhz(3), 8000.0);  // clamped
#endif
}

TEST(ResourceVector, FitsChecksEveryDimension) {
  const ResourceVector cap{100.0, 10.0, 5.0};
  EXPECT_TRUE(resource_fits({50.0, 5.0, 2.0}, {50.0, 5.0, 3.0}, cap));
  EXPECT_FALSE(resource_fits({50.0, 5.0, 2.0}, {50.0, 6.0, 0.0}, cap));
  // Zero demand fits zero capacity: CPU-only inputs leave mem/net at 0-0.
  EXPECT_TRUE(resource_fits({100.0, 0.0, 0.0}, {}, cap));
}

TEST(ResourceVector, EffectiveLoadFoldsQueuePressure) {
  ExecutorSpec e{/*task=*/0, /*topology=*/0, /*demand=*/{50.0, 8.0, 2.0},
                 /*queue_depth=*/100.0};
  EXPECT_DOUBLE_EQ(e.effective_load(0.0), 50.0);
  EXPECT_DOUBLE_EQ(e.effective_load(0.5), 100.0);
  const auto d = e.effective_demand(0.5);
  EXPECT_DOUBLE_EQ(d[kCpuMhz], 100.0);
  EXPECT_DOUBLE_EQ(d[kMemoryMib], 8.0);  // pressure only inflates CPU
}

// ----------------------------------------- queue pressure, all schedulers

SchedulerInput pressured_input() {
  // One executor whose CPU load fits the node but whose backlog does not.
  SchedulerInput in;
  in.executors.push_back({0, 0, {50.0}, /*queue_depth=*/100.0});
  in.slots.push_back({0, 0, 0});
  in.topologies.push_back({0, 1});
  in.nodes = {{0, {100.0}}};
  return in;
}

TEST(QueuePressure, InputWeightReachesEverySchedulerUniformly) {
  // The input-level weight (CoreConfig::queue_pressure_weight) must steer
  // every capacity-respecting scheduler, not just traffic-aware — the old
  // option was consumed by one algorithm and silently ignored elsewhere.
  for (const char* name : {"traffic-aware", "local-search"}) {
    auto alg = AlgorithmRegistry::instance().create(name);
    auto in = pressured_input();
    auto plain = alg->schedule(in);
    ASSERT_EQ(plain.assignment.size(), 1u) << name;
    EXPECT_FALSE(plain.capacity_relaxed) << name;

    in.queue_pressure_weight = 1.0;  // effective load 150 > 100
    auto pressured = AlgorithmRegistry::instance().create(name)->schedule(in);
    ASSERT_EQ(pressured.assignment.size(), 1u) << name;
    EXPECT_TRUE(pressured.capacity_relaxed) << name;
  }
}

TEST(QueuePressure, RoundRobinDealsBackloggedExecutorsFirst) {
  // 3 executors, 2 workers. Weight 0 deals in input order: {e0,e2} on the
  // first worker. With pressure, e0's backlog makes it heaviest, so the
  // deal becomes e0, e2, e1 and e0 shares with e1 instead.
  SchedulerInput in;
  in.executors.push_back({0, 0, {10.0}, /*queue_depth=*/100.0});
  in.executors.push_back({1, 0, {20.0}});
  in.executors.push_back({2, 0, {30.0}});
  in.slots = {{0, 0, 0}, {1, 1, 0}};
  in.topologies.push_back({0, 2});

  auto alg = AlgorithmRegistry::instance().create("round-robin");
  const auto plain = alg->schedule(in);
  EXPECT_EQ(plain.assignment.at(0), plain.assignment.at(2));

  in.queue_pressure_weight = 1.0;  // effective: e0=110, e1=20, e2=30
  const auto pressured =
      AlgorithmRegistry::instance().create("round-robin")->schedule(in);
  EXPECT_EQ(pressured.assignment.at(0), pressured.assignment.at(1));
  EXPECT_NE(pressured.assignment.at(0), pressured.assignment.at(2));
}

TEST(QueuePressure, CapacityBlindSchedulersFlagOvercommit) {
  // Round-robin ignores capacity when placing, but audit_capacity must
  // still set the flag so the relaxation contract holds.
  auto in = pressured_input();
  in.queue_pressure_weight = 1.0;
  for (const char* name : {"round-robin", "tstorm-initial",
                           "aniello-online"}) {
    const auto r = AlgorithmRegistry::instance().create(name)->schedule(in);
    ASSERT_EQ(r.assignment.size(), 1u) << name;
    EXPECT_TRUE(r.capacity_relaxed) << name;
  }
}

// ------------------------------------------------- occupied slots, all ---

TEST(OccupiedSlots, NoRegisteredSchedulerTouchesForeignSlots) {
  // Regression for the five copy-pasted occupied-set blocks: every
  // registered algorithm must treat a slot held by a topology outside the
  // run as untouchable.
  SchedulerInput in;
  for (int n = 0; n < 2; ++n) {
    for (int p = 0; p < 2; ++p) in.slots.push_back({n * 2 + p, n, p});
    in.nodes.push_back({n, {8000.0}});
  }
  in.topologies.push_back({0, 4});
  for (int e = 0; e < 3; ++e) in.executors.push_back({e, 0, {10.0}});
  in.traffic = {{0, 1, 50.0}, {1, 2, 25.0}};
  in.topology_edges = {{0, 1}, {1, 2}};
  in.occupied_slots = {0, 3};  // held by another topology

  for (const auto& name : AlgorithmRegistry::instance().names()) {
    const auto r = AlgorithmRegistry::instance().create(name)->schedule(in);
    for (const auto& [task, slot] : r.assignment) {
      EXPECT_NE(slot, 0) << name;
      EXPECT_NE(slot, 3) << name;
    }
  }
}

// ------------------------------------------------------------- R-Storm ---

SchedulerInput two_node_input() {
  SchedulerInput in;
  for (int n = 0; n < 2; ++n) {
    for (int p = 0; p < 2; ++p) in.slots.push_back({n * 2 + p, n, p});
  }
  in.topologies.push_back({0, 2});
  return in;
}

TEST(RStorm, MemoryIsAHardConstraint) {
  auto in = two_node_input();
  in.nodes = {{0, {8000.0, 64.0, 1000.0}}, {1, {8000.0, 4096.0, 1000.0}}};
  // Needs 512 MiB: node 0 can't hold it even though its CPU is free.
  in.executors.push_back({0, 0, {100.0, 512.0, 1.0}});
  RStormScheduler alg;
  const auto r = alg.schedule(in);
  ASSERT_EQ(r.assignment.size(), 1u);
  EXPECT_FALSE(r.capacity_relaxed);
  EXPECT_EQ(r.assignment.at(0), 2);  // node 1's first slot
}

TEST(RStorm, CommunicatingTasksCoLocateWhenResourcesAllow) {
  auto in = two_node_input();
  in.nodes = {{0, {8000.0, 4096.0, 1000.0}}, {1, {8000.0, 4096.0, 1000.0}}};
  in.executors.push_back({0, 0, {100.0, 10.0, 1.0}});
  in.executors.push_back({1, 0, {100.0, 10.0, 1.0}});
  in.topology_edges = {{0, 1}};
  in.traffic = {{0, 1, 500.0}};
  RStormScheduler alg;
  const auto r = alg.schedule(in);
  ASSERT_EQ(r.assignment.size(), 2u);
  // Same node, same slot (one worker per topology per node).
  EXPECT_EQ(r.assignment.at(0), r.assignment.at(1));
  EXPECT_FALSE(r.capacity_relaxed);
}

TEST(RStorm, SpreadsWhenTheReferenceNodeIsFull) {
  auto in = two_node_input();
  // Each node only has CPU room for one of the two heavy executors, so
  // the second cannot join its upstream neighbour's node.
  in.nodes = {{0, {150.0, 4096.0, 1000.0}}, {1, {150.0, 4096.0, 1000.0}}};
  in.executors.push_back({0, 0, {100.0, 10.0, 1.0}});
  in.executors.push_back({1, 0, {100.0, 10.0, 1.0}});
  in.topology_edges = {{0, 1}};
  in.traffic = {{0, 1, 500.0}};
  RStormScheduler alg;
  const auto r = alg.schedule(in);
  ASSERT_EQ(r.assignment.size(), 2u);
  EXPECT_NE(r.assignment.at(0), r.assignment.at(1));
  EXPECT_FALSE(r.capacity_relaxed);
}

TEST(RStorm, RelaxesSoftConstraintsWithFlagWhenNothingFits) {
  SchedulerInput in;
  in.slots = {{0, 0, 0}};
  in.nodes = {{0, {100.0, 1024.0, 10.0}}};
  in.topologies.push_back({0, 1});
  // CPU demand exceeds every node: soft relaxation must place it anyway
  // and say so.
  in.executors.push_back({0, 0, {500.0, 10.0, 1.0}});
  RStormScheduler alg;
  const auto r = alg.schedule(in);
  ASSERT_EQ(r.assignment.size(), 1u);
  EXPECT_TRUE(r.capacity_relaxed);
}

TEST(RStorm, StructurallySoundOnTopologyGraphsWithoutTraffic) {
  // Before any traffic is measured R-Storm falls back to topology edges;
  // placement must still be complete and one-slot-per-topology-per-node.
  SchedulerInput in;
  for (int n = 0; n < 3; ++n) {
    for (int p = 0; p < 2; ++p) in.slots.push_back({n * 2 + p, n, p});
    in.nodes.push_back({n, {8000.0, 4096.0, 1000.0}});
  }
  in.topologies.push_back({0, 3});
  for (int e = 0; e < 6; ++e) {
    in.executors.push_back({e, 0, {1000.0, 128.0, 50.0}});
  }
  in.topology_edges = {{0, 1}, {0, 2}, {1, 3}, {2, 4}, {3, 5}, {4, 5}};
  RStormScheduler alg;
  const auto r = alg.schedule(in);
  EXPECT_EQ(r.assignment.size(), 6u);
  EXPECT_TRUE(one_slot_per_topology_per_node(in, r.assignment));
}

// ------------------------------- hard-constraint contract, 50-seed sweep

/// True when the placement keeps every node within its capacity vector
/// (using effective demands, the same accounting the schedulers use).
bool respects_capacity(const SchedulerInput& in, const Placement& p) {
  std::unordered_map<SlotIndex, NodeId> s2n;
  for (const auto& s : in.slots) s2n.emplace(s.slot, s.node);
  std::unordered_map<NodeId, ResourceVector> used;
  for (const auto& e : in.executors) {
    auto a = p.find(e.task);
    if (a == p.end()) continue;
    used[s2n.at(a->second)] = resource_add(
        used[s2n.at(a->second)], e.effective_demand(in.queue_pressure_weight));
  }
  for (const auto& [node, total] : used) {
    if (!resource_fits(total, ResourceVector{}, in.node_capacity(node))) {
      return false;
    }
  }
  return true;
}

SchedulerInput random_heterogeneous_input(std::uint64_t seed) {
  sim::Rng rng(seed);
  SchedulerInput in;
  const int nodes = static_cast<int>(rng.uniform_int(2, 6));
  int slot = 0;
  for (int n = 0; n < nodes; ++n) {
    const int slots_here = static_cast<int>(rng.uniform_int(1, 4));
    for (int p = 0; p < slots_here; ++p) in.slots.push_back({slot++, n, p});
    in.nodes.push_back({n,
                        {rng.uniform(2000.0, 10000.0),
                         rng.uniform(256.0, 8192.0),
                         rng.uniform(100.0, 1000.0)}});
  }
  const int topologies = static_cast<int>(rng.uniform_int(1, 3));
  int task = 0;
  for (int t = 0; t < topologies; ++t) {
    in.topologies.push_back({t, static_cast<int>(rng.uniform_int(1, nodes))});
    const int first = task;
    const int execs = static_cast<int>(rng.uniform_int(2, 8));
    for (int e = 0; e < execs; ++e) {
      in.executors.push_back({task++,
                              t,
                              {rng.uniform(10.0, 3000.0),
                               rng.uniform(1.0, 2048.0),
                               rng.uniform(1.0, 300.0)},
                              rng.uniform(0.0, 200.0)});
    }
    for (int e = first; e < task - 1; ++e) {
      in.traffic.push_back({e, e + 1, rng.uniform(1.0, 500.0)});
      in.topology_edges.emplace_back(e, e + 1);
    }
  }
  in.gamma = seed % 2 == 0 ? 1.0 : 2.0;
  in.queue_pressure_weight = seed % 3 == 0 ? rng.uniform(0.1, 2.0) : 0.0;
  return in;
}

TEST(ResourceContract, EverySchedulerRespectsCapacityOrSetsFlags) {
  // 50 seeded heterogeneous inputs x every registered algorithm: a
  // placement that exceeds some node's capacity vector is only legal when
  // the result carries a relaxation flag.
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const auto in = random_heterogeneous_input(seed);
    for (const auto& name : AlgorithmRegistry::instance().names()) {
      auto alg = AlgorithmRegistry::instance().create(name);
      ASSERT_NE(alg, nullptr);
      const auto r = alg->schedule(in);
      if (!respects_capacity(in, r.assignment)) {
        EXPECT_TRUE(r.capacity_relaxed || r.count_relaxed)
            << name << " seed " << seed
            << ": over-capacity placement without a relaxation flag";
      }
      // One-slot-per-topology-per-node is T-Storm-specific consolidation,
      // not asserted here: the round-robin/Aniello family legitimately
      // spreads one topology across several slots of a node.
    }
  }
}

}  // namespace
}  // namespace tstorm::sched
