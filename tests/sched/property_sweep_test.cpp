// Parameterized property sweeps across all scheduling algorithms: for any
// cluster size, executor count and topology mix, every algorithm must
// produce a placement that (a) covers every executor when capacity allows,
// (b) never co-locates two topologies in one slot, and (c) only uses slots
// that exist and are unoccupied.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <unordered_map>

#include "sched/aniello.h"
#include "sched/round_robin.h"
#include "sched/scheduler.h"
#include "sched/traffic_aware.h"
#include "sim/rng.h"

namespace tstorm::sched {
namespace {

struct SweepCase {
  std::string algorithm;
  int nodes;
  int slots_per_node;
  int topologies;
  int executors_per_topology;
  std::uint64_t seed;
};

void PrintTo(const SweepCase& c, std::ostream* os) {
  *os << c.algorithm << "/n" << c.nodes << "s" << c.slots_per_node << "t"
      << c.topologies << "e" << c.executors_per_topology << "seed" << c.seed;
}

class AlgorithmSweep : public ::testing::TestWithParam<SweepCase> {};

SchedulerInput build_input(const SweepCase& c) {
  SchedulerInput in;
  sim::Rng rng(c.seed);
  for (int n = 0; n < c.nodes; ++n) {
    for (int p = 0; p < c.slots_per_node; ++p) {
      in.slots.push_back({n * c.slots_per_node + p, n, p});
    }
    in.nodes.push_back({n, {8000.0}});
  }
  int task = 0;
  for (int t = 0; t < c.topologies; ++t) {
    in.topologies.push_back(
        {t, static_cast<int>(rng.uniform_int(1, c.nodes * 2))});
    const int first = task;
    for (int e = 0; e < c.executors_per_topology; ++e) {
      in.executors.push_back({task++, t, {rng.uniform(1.0, 80.0)}});
    }
    // Random intra-topology traffic + chain edges.
    for (int e = first; e < task - 1; ++e) {
      in.traffic.push_back({e, e + 1, rng.uniform(1.0, 200.0)});
      in.topology_edges.emplace_back(e, e + 1);
    }
    for (int k = 0; k < c.executors_per_topology; ++k) {
      const auto a =
          static_cast<TaskId>(rng.uniform_int(first, task - 1));
      const auto b =
          static_cast<TaskId>(rng.uniform_int(first, task - 1));
      if (a != b) in.traffic.push_back({a, b, rng.uniform(0.1, 100.0)});
    }
  }
  return in;
}

TEST_P(AlgorithmSweep, StructuralInvariants) {
  const auto& c = GetParam();
  const auto in = build_input(c);
  auto alg = AlgorithmRegistry::instance().create(c.algorithm);
  ASSERT_NE(alg, nullptr);
  const auto r = alg->schedule(in);

  const std::size_t total =
      static_cast<std::size_t>(c.topologies * c.executors_per_topology);
  const std::size_t slots = in.slots.size();
  // Coverage: every executor placed when there is any slot at all. The
  // round-robin family can run out of free slots for later topologies.
  if (slots >= static_cast<std::size_t>(c.topologies)) {
    EXPECT_GE(r.assignment.size(), std::min(total, slots));
  }

  std::set<SlotIndex> valid;
  for (const auto& s : in.slots) valid.insert(s.slot);
  std::unordered_map<TaskId, TopologyId> topo_of;
  for (const auto& e : in.executors) topo_of[e.task] = e.topology;

  std::unordered_map<SlotIndex, TopologyId> owner;
  for (const auto& [task, slot] : r.assignment) {
    // Only real slots.
    EXPECT_TRUE(valid.contains(slot));
    // One topology per slot.
    auto [it, inserted] = owner.emplace(slot, topo_of.at(task));
    if (!inserted) {
      EXPECT_EQ(it->second, topo_of.at(task));
    }
  }

  // Determinism: same input, same output.
  auto alg2 = AlgorithmRegistry::instance().create(c.algorithm);
  EXPECT_EQ(alg2->schedule(build_input(c)).assignment, r.assignment);
}

std::vector<SweepCase> make_cases() {
  std::vector<SweepCase> cases;
  std::uint64_t seed = 1;
  for (const char* alg : {"traffic-aware", "round-robin", "tstorm-initial",
                          "aniello-offline", "aniello-online", "local-search",
                          "rstorm"}) {
    for (const auto& [nodes, spn, topos, execs] :
         {std::tuple{1, 1, 1, 1}, {1, 4, 1, 9}, {3, 2, 2, 5},
          {10, 4, 1, 45}, {10, 4, 3, 12}, {16, 8, 4, 25},
          {2, 2, 3, 2}}) {
      cases.push_back({alg, nodes, spn, topos, execs, seed++});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, AlgorithmSweep,
                         ::testing::ValuesIn(make_cases()));

TEST(AlgorithmSweep, TrafficAwareHandlesMassiveInput) {
  SweepCase c{"traffic-aware", 50, 4, 5, 100, 99};
  const auto in = build_input(c);
  TrafficAwareScheduler alg;
  const auto r = alg.schedule(in);
  EXPECT_EQ(r.assignment.size(), 500u);
  EXPECT_TRUE(one_slot_per_topology_per_node(in, r.assignment));
}

TEST(AlgorithmSweep, NoSlotsProducesEmptyPlacement) {
  SchedulerInput in;
  in.executors.push_back({0, 0, {1.0}});
  in.topologies.push_back({0, 1});
  for (const char* name : {"traffic-aware", "round-robin", "tstorm-initial",
                           "aniello-online", "rstorm"}) {
    auto alg = AlgorithmRegistry::instance().create(name);
    const auto r = alg->schedule(in);
    EXPECT_TRUE(r.assignment.empty()) << name;
  }
}

TEST(AlgorithmSweep, AllSlotsOccupiedProducesEmptyPlacement) {
  SchedulerInput in;
  in.slots = {{0, 0, 0}, {1, 0, 1}};
  in.nodes = {{0, {8000.0}}};
  in.occupied_slots = {0, 1};
  in.executors.push_back({0, 0, {1.0}});
  in.topologies.push_back({0, 1});
  for (const char* name : {"round-robin", "tstorm-initial"}) {
    auto alg = AlgorithmRegistry::instance().create(name);
    const auto r = alg->schedule(in);
    EXPECT_TRUE(r.assignment.empty()) << name;
  }
}

}  // namespace
}  // namespace tstorm::sched
