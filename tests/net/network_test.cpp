#include "net/network.h"

#include <gtest/gtest.h>

#include "sim/simulation.h"

namespace tstorm::net {
namespace {

struct NetworkTest : ::testing::Test {
  sim::Simulation sim;
  NetworkConfig cfg;
};

double deliver_and_time(sim::Simulation& sim, Network& net, int src, int dst,
                        LinkType type, std::uint64_t bytes,
                        double extra = 0.0) {
  double at = -1;
  net.send(src, dst, type, bytes, [&] { at = sim.now(); }, extra);
  sim.run();
  return at;
}

TEST_F(NetworkTest, IntraProcessIsCheapest) {
  Network net(sim, cfg, 4);
  const double intra =
      deliver_and_time(sim, net, 0, 0, LinkType::kIntraProcess, 1000);
  sim::Simulation sim2;
  Network net2(sim2, cfg, 4);
  const double ipc =
      deliver_and_time(sim2, net2, 0, 0, LinkType::kInterProcess, 1000);
  sim::Simulation sim3;
  Network net3(sim3, cfg, 4);
  const double inode =
      deliver_and_time(sim3, net3, 0, 1, LinkType::kInterNode, 1000);
  EXPECT_LT(intra, ipc);
  EXPECT_LT(ipc, inode);
}

TEST_F(NetworkTest, IntraProcessLatencyExact) {
  Network net(sim, cfg, 2);
  const double t =
      deliver_and_time(sim, net, 1, 1, LinkType::kIntraProcess, 123456);
  EXPECT_DOUBLE_EQ(t, cfg.intra_process_latency);
}

TEST_F(NetworkTest, InterNodeIncludesTransmissionTime) {
  cfg.inter_node_latency = 0;
  cfg.serialization_per_byte = 0;
  cfg.header_bytes = 0;
  Network net(sim, cfg, 2);
  const std::uint64_t bytes = 125'000'000;  // exactly 1 s at 1 Gbps
  const double t =
      deliver_and_time(sim, net, 0, 1, LinkType::kInterNode, bytes);
  EXPECT_NEAR(t, 1.0, 1e-9);
}

TEST_F(NetworkTest, NicEgressIsFifo) {
  cfg.inter_node_latency = 0;
  cfg.serialization_per_byte = 0;
  cfg.header_bytes = 0;
  Network net(sim, cfg, 2);
  const std::uint64_t mb = 12'500'000;  // 0.1 s each
  std::vector<double> deliveries;
  for (int i = 0; i < 3; ++i) {
    net.send(0, 1, LinkType::kInterNode, mb,
             [&] { deliveries.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(deliveries.size(), 3u);
  EXPECT_NEAR(deliveries[0], 0.1, 1e-9);
  EXPECT_NEAR(deliveries[1], 0.2, 1e-9);  // queued behind the first
  EXPECT_NEAR(deliveries[2], 0.3, 1e-9);
}

TEST_F(NetworkTest, SeparateNodesDoNotContend) {
  cfg.inter_node_latency = 0;
  cfg.serialization_per_byte = 0;
  cfg.header_bytes = 0;
  Network net(sim, cfg, 3);
  const std::uint64_t mb = 12'500'000;
  std::vector<double> deliveries;
  net.send(0, 2, LinkType::kInterNode, mb,
           [&] { deliveries.push_back(sim.now()); });
  net.send(1, 2, LinkType::kInterNode, mb,
           [&] { deliveries.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_NEAR(deliveries[0], 0.1, 1e-9);
  EXPECT_NEAR(deliveries[1], 0.1, 1e-9);  // different NICs, parallel
}

TEST_F(NetworkTest, ExtraLatencyAdds) {
  Network net(sim, cfg, 2);
  const double base =
      deliver_and_time(sim, net, 0, 0, LinkType::kIntraProcess, 100);
  sim::Simulation sim2;
  Network net2(sim2, cfg, 2);
  const double with_extra = deliver_and_time(
      sim2, net2, 0, 0, LinkType::kIntraProcess, 100, 0.005);
  EXPECT_NEAR(with_extra - base, 0.005, 1e-12);
}

TEST_F(NetworkTest, StatsTrackPerLinkClass) {
  Network net(sim, cfg, 2);
  net.send(0, 0, LinkType::kIntraProcess, 100, [] {});
  net.send(0, 0, LinkType::kInterProcess, 200, [] {});
  net.send(0, 1, LinkType::kInterNode, 300, [] {});
  net.send(0, 1, LinkType::kInterNode, 400, [] {});
  sim.run();
  EXPECT_EQ(net.stats(LinkType::kIntraProcess).messages, 1u);
  EXPECT_EQ(net.stats(LinkType::kIntraProcess).bytes, 100u);
  EXPECT_EQ(net.stats(LinkType::kInterProcess).messages, 1u);
  EXPECT_EQ(net.stats(LinkType::kInterNode).messages, 2u);
  EXPECT_EQ(net.stats(LinkType::kInterNode).bytes, 700u);
  net.reset_stats();
  EXPECT_EQ(net.stats(LinkType::kInterNode).messages, 0u);
}

TEST_F(NetworkTest, HeaderAmortizedByBatchFactor) {
  cfg.inter_node_latency = 0;
  cfg.serialization_per_byte = 0;
  cfg.header_bytes = 400;
  cfg.batch_factor = 4.0;
  Network net(sim, cfg, 2);
  // framed = payload + 400/4 = payload + 100 bytes.
  const double t =
      deliver_and_time(sim, net, 0, 1, LinkType::kInterNode, 125'000'000 - 100);
  EXPECT_NEAR(t, 1.0, 1e-9);
}

TEST_F(NetworkTest, EstimateDelayMatchesActualForIdleLink) {
  Network net(sim, cfg, 2);
  const auto est = net.estimate_delay(0, LinkType::kInterNode, 5000);
  const double t =
      deliver_and_time(sim, net, 0, 1, LinkType::kInterNode, 5000);
  EXPECT_NEAR(est, t, 1e-12);
}

TEST_F(NetworkTest, EstimateDelayReflectsQueueWait) {
  cfg.inter_node_latency = 0;
  cfg.serialization_per_byte = 0;
  cfg.header_bytes = 0;
  Network net(sim, cfg, 2);
  net.send(0, 1, LinkType::kInterNode, 125'000'000, [] {});  // 1 s tx
  const auto est = net.estimate_delay(0, LinkType::kInterNode, 125'000'000);
  EXPECT_NEAR(est, 2.0, 1e-9);  // 1 s queue wait + 1 s tx
}

TEST_F(NetworkTest, LinkTypeNames) {
  EXPECT_STREQ(to_string(LinkType::kIntraProcess), "intra-process");
  EXPECT_STREQ(to_string(LinkType::kInterProcess), "inter-process");
  EXPECT_STREQ(to_string(LinkType::kInterNode), "inter-node");
}

}  // namespace
}  // namespace tstorm::net
