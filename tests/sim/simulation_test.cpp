#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/rng.h"

namespace tstorm::sim {
namespace {

TEST(Simulation, StartsAtTimeZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(Simulation, ExecutesEventAtScheduledTime) {
  Simulation sim;
  double seen = -1;
  sim.schedule_at(5.0, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 5.0);
  EXPECT_EQ(sim.now(), 5.0);
}

TEST(Simulation, ScheduleAfterIsRelative) {
  Simulation sim;
  std::vector<double> times;
  sim.schedule_at(2.0, [&] {
    sim.schedule_after(3.0, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(times[0], 5.0);
}

TEST(Simulation, EventsOrderedByTime) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, EqualTimesRunInSchedulingOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulation, PastTimesClampToNow) {
  Simulation sim;
  double seen = -1;
  sim.schedule_at(10.0, [&] {
    sim.schedule_at(3.0, [&] { seen = sim.now(); });  // in the past
  });
  sim.run();
  EXPECT_EQ(seen, 10.0);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool ran = false;
  const EventId id = sim.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulation, CancelReturnsFalseForUnknownOrRepeated) {
  Simulation sim;
  const EventId id = sim.schedule_at(1.0, [] {});
  EXPECT_FALSE(sim.cancel(kInvalidEvent));
  EXPECT_FALSE(sim.cancel(id + 100));  // never issued
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // already cancelled
}

TEST(Simulation, CancelAfterExecutionIsNoOp) {
  Simulation sim;
  const EventId id = sim.schedule_at(1.0, [] {});
  sim.run();
  // The id was consumed; cancelling must not corrupt the live count.
  sim.cancel(id);
  EXPECT_EQ(sim.pending(), 0u);
  bool ran = false;
  sim.schedule_at(2.0, [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
}

// Regression: the tombstone-based queue accepted cancels of
// already-executed ids — it returned true, leaked a tombstone, and
// decremented the live count below the real pending count.
TEST(Simulation, CancelOfExecutedIdDoesNotCorruptPending) {
  Simulation sim;
  bool b_ran = false;
  const EventId a = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [&] { b_ran = true; });
  sim.run_until(1.5);  // A executed, B still pending
  EXPECT_FALSE(sim.cancel(a));
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_FALSE(sim.cancel(a));  // still a no-op on repeat
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_TRUE(b_ran);
  EXPECT_EQ(sim.pending(), 0u);
  // A fresh schedule/run cycle is unaffected by the stale id.
  bool c_ran = false;
  sim.schedule_after(1.0, [&] { c_ran = true; });
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_TRUE(c_ran);
}

// A slot recycled after cancellation must not fire for its old event, and
// the old event's id must not cancel the new occupant.
TEST(Simulation, RecycledSlotDoesNotMisfire) {
  Simulation sim;
  int old_fires = 0;
  int new_fires = 0;
  const EventId old_id = sim.schedule_at(1.0, [&] { ++old_fires; });
  EXPECT_TRUE(sim.cancel(old_id));
  const EventId new_id = sim.schedule_at(1.0, [&] { ++new_fires; });
  EXPECT_FALSE(sim.cancel(old_id));  // stale id, recycled slot
  sim.run();
  EXPECT_EQ(old_fires, 0);
  EXPECT_EQ(new_fires, 1);
  EXPECT_FALSE(sim.cancel(new_id));  // already executed
}

TEST(Simulation, PendingTracksLiveEvents) {
  Simulation sim;
  const EventId a = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulation, RunUntilExecutesInclusiveBoundary) {
  Simulation sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  sim.schedule_at(2.5, [&] { ++count; });
  const auto n = sim.run_until(2.0);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), 2.0);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulation, RunUntilAdvancesClockWithoutEvents) {
  Simulation sim;
  sim.run_until(42.0);
  EXPECT_EQ(sim.now(), 42.0);
}

TEST(Simulation, RunUntilCanBeResumed) {
  Simulation sim;
  std::vector<double> seen;
  for (double t : {1.0, 5.0, 9.0}) {
    sim.schedule_at(t, [&seen, &sim] { seen.push_back(sim.now()); });
  }
  sim.run_until(4.0);
  EXPECT_EQ(seen.size(), 1u);
  sim.run_until(10.0);
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Simulation, StopHaltsRun) {
  Simulation sim;
  int count = 0;
  sim.schedule_at(1.0, [&] {
    ++count;
    sim.stop();
  });
  sim.schedule_at(2.0, [&] { ++count; });
  sim.run();
  EXPECT_EQ(count, 1);
  sim.clear_stop();
  sim.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulation, EventsExecutedAccumulates) {
  Simulation sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Simulation, EventCanScheduleAtSameTime) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] {
    order.push_back(1);
    sim.schedule_at(1.0, [&] { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), 1.0);
}

TEST(PeriodicTask, FiresAtFixedPeriod) {
  Simulation sim;
  std::vector<double> fires;
  PeriodicTask task(sim, 10.0, [&] { fires.push_back(sim.now()); });
  task.start(10.0);
  sim.run_until(35.0);
  EXPECT_EQ(fires, (std::vector<double>{10.0, 20.0, 30.0}));
}

TEST(PeriodicTask, StartWithPhase) {
  Simulation sim;
  std::vector<double> fires;
  PeriodicTask task(sim, 10.0, [&] { fires.push_back(sim.now()); });
  task.start(3.0);
  sim.run_until(25.0);
  EXPECT_EQ(fires, (std::vector<double>{3.0, 13.0, 23.0}));
}

TEST(PeriodicTask, StopCancelsFutureTicks) {
  Simulation sim;
  int count = 0;
  PeriodicTask task(sim, 1.0, [&] { ++count; });
  task.start(1.0);
  sim.run_until(2.5);
  task.stop();
  EXPECT_FALSE(task.running());
  sim.run_until(10.0);
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTask, SetPeriodTakesEffectNextTick) {
  Simulation sim;
  std::vector<double> fires;
  PeriodicTask task(sim, 10.0, [&] { fires.push_back(sim.now()); });
  task.start(10.0);
  sim.run_until(10.0);  // first fire re-arms with old period first
  task.set_period(5.0);
  sim.run_until(40.0);
  // Fire at 10 re-armed at 20 (already scheduled with old period), then 25,
  // 30, 35, 40.
  ASSERT_GE(fires.size(), 3u);
  EXPECT_EQ(fires[0], 10.0);
  EXPECT_EQ(fires[1], 20.0);
  EXPECT_EQ(fires[2], 25.0);
}

TEST(PeriodicTask, CallbackMayStopItself) {
  Simulation sim;
  int count = 0;
  PeriodicTask task(sim, 1.0, [&] {
    if (++count == 3) task.stop();
  });
  task.start(1.0);
  sim.run_until(100.0);
  EXPECT_EQ(count, 3);
}

TEST(PeriodicTask, RestartResetsPhase) {
  Simulation sim;
  std::vector<double> fires;
  PeriodicTask task(sim, 10.0, [&] { fires.push_back(sim.now()); });
  task.start(10.0);
  sim.run_until(15.0);
  task.start(2.0);  // restart from t=15
  sim.run_until(18.0);
  EXPECT_EQ(fires, (std::vector<double>{10.0, 17.0}));
}

TEST(PeriodicTask, RejectsInvalidPeriods) {
#ifndef NDEBUG
  Simulation sim;
  EXPECT_DEATH(PeriodicTask(sim, 0.0, [] {}), "period");
  EXPECT_DEATH(PeriodicTask(sim, -1.0, [] {}), "period");
  {
    PeriodicTask task(sim, 1.0, [] {});
    EXPECT_DEATH(task.set_period(0.0), "period");
    EXPECT_DEATH(task.set_period(-5.0), "period");
  }
#else
  // Release builds clamp/ignore instead of aborting: the constructor clamps
  // to kMinPeriod and set_period keeps the current period.
  Simulation sim;
  PeriodicTask clamped(sim, 0.0, [] {});
  EXPECT_GE(clamped.period(), PeriodicTask::kMinPeriod);
  PeriodicTask task(sim, 1.0, [] {});
  task.set_period(0.0);
  EXPECT_EQ(task.period(), 1.0);
  task.set_period(-3.0);
  EXPECT_EQ(task.period(), 1.0);
  task.set_period(2.0);
  EXPECT_EQ(task.period(), 2.0);
#endif
}

// Randomized schedule/cancel/run workload; two identical runs must produce
// identical execution orders and events_executed() counts.
TEST(Simulation, FuzzedScheduleCancelRunIsDeterministic) {
  auto run_once = [](std::uint64_t seed) {
    Simulation sim;
    Rng rng(seed);
    std::vector<std::pair<double, int>> log;  // (time, tag) per execution
    std::vector<EventId> open;
    int next_tag = 0;
    for (int round = 0; round < 200; ++round) {
      const int burst = static_cast<int>(rng.uniform_int(1, 8));
      for (int i = 0; i < burst; ++i) {
        const double dt = rng.uniform(0.0, 5.0);
        const int tag = next_tag++;
        open.push_back(sim.schedule_after(
            dt, [&log, &sim, tag] { log.emplace_back(sim.now(), tag); }));
      }
      // Cancel a random subset of still-open ids (some already executed or
      // cancelled — cancel() must tolerate both).
      const int cancels = static_cast<int>(rng.uniform_int(0, 3));
      for (int i = 0; i < cancels && !open.empty(); ++i) {
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(open.size()) - 1));
        sim.cancel(open[pick]);
      }
      sim.run_until(sim.now() + rng.uniform(0.0, 2.0));
    }
    sim.run();
    return std::make_pair(log, sim.events_executed());
  };
  const auto a = run_once(42);
  const auto b = run_once(42);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_FALSE(a.first.empty());
  // A different seed should exercise a different trajectory.
  EXPECT_NE(run_once(7).first, a.first);
}

TEST(Simulation, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulation sim;
    std::vector<double> log;
    PeriodicTask a(sim, 0.7, [&] { log.push_back(sim.now()); });
    PeriodicTask b(sim, 1.1, [&] { log.push_back(-sim.now()); });
    a.start(0.7);
    b.start(1.1);
    sim.run_until(50.0);
    return log;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace tstorm::sim
