#include "sim/inline_fn.h"

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace tstorm::sim {
namespace {

detail::InlineFnStats snapshot() { return detail::inline_fn_stats(); }

// Padded callable templates to hit each storage tier exactly.
template <std::size_t Bytes>
struct Padded {
  int* counter;
  std::array<unsigned char, Bytes> pad{};
  void operator()() { ++*counter; }
};

TEST(InlineFn, EmptyByDefault) {
  InlineFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  fn.reset();  // resetting an empty fn is a no-op
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InlineFn, SmallCaptureStaysInline) {
  const auto before = snapshot();
  int count = 0;
  InlineFn fn = Padded<16>{&count};
  const auto after = snapshot();
  EXPECT_EQ(after.inline_ctor, before.inline_ctor + 1);
  EXPECT_EQ(after.pooled_ctor, before.pooled_ctor);
  EXPECT_EQ(after.oversize_ctor, before.oversize_ctor);
  fn();
  fn();
  EXPECT_EQ(count, 2);
}

TEST(InlineFn, ExactlyInlineBytesStaysInline) {
  struct Exact {
    int* counter;
    std::array<unsigned char, InlineFn::kInlineBytes - sizeof(int*)> pad{};
    void operator()() { ++*counter; }
  };
  static_assert(sizeof(Exact) == InlineFn::kInlineBytes);
  const auto before = snapshot();
  int count = 0;
  InlineFn fn = Exact{&count};
  EXPECT_EQ(snapshot().inline_ctor, before.inline_ctor + 1);
  fn();
  EXPECT_EQ(count, 1);
}

TEST(InlineFn, MediumCaptureUsesPool) {
  const auto before = snapshot();
  int count = 0;
  InlineFn fn = Padded<64>{&count};
  const auto after = snapshot();
  EXPECT_EQ(after.pooled_ctor, before.pooled_ctor + 1);
  EXPECT_EQ(after.oversize_ctor, before.oversize_ctor);
  fn();
  EXPECT_EQ(count, 1);
}

TEST(InlineFn, HugeCaptureFallsBackToOperatorNew) {
  const auto before = snapshot();
  int count = 0;
  InlineFn fn = Padded<512>{&count};
  EXPECT_EQ(snapshot().oversize_ctor, before.oversize_ctor + 1);
  fn();
  EXPECT_EQ(count, 1);
}

TEST(InlineFn, PoolRecyclesSlots) {
  // Churn through many pooled callbacks; the pool should hand back the same
  // slot each time once warmed (observable as the address captured below).
  int count = 0;
  {
    InlineFn warm = Padded<64>{&count};
  }
  const auto before = snapshot();
  for (int i = 0; i < 1000; ++i) {
    InlineFn fn = Padded<64>{&count};
    fn();
  }
  EXPECT_EQ(snapshot().pooled_ctor, before.pooled_ctor + 1000);
  EXPECT_EQ(count, 1000);
}

TEST(InlineFn, MoveTransfersOwnership) {
  int count = 0;
  InlineFn a = Padded<16>{&count};
  InlineFn b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(count, 1);

  InlineFn c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));  // NOLINT(bugprone-use-after-move)
  c();
  EXPECT_EQ(count, 2);
}

TEST(InlineFn, MoveAssignDestroysPreviousTarget) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  InlineFn holder = [t = std::move(token)] { (void)*t; };
  EXPECT_FALSE(watch.expired());
  int count = 0;
  holder = InlineFn(Padded<16>{&count});
  EXPECT_TRUE(watch.expired());  // old capture destroyed on assignment
  holder();
  EXPECT_EQ(count, 1);
}

TEST(InlineFn, DestructorRunsCaptureDestructor) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  {
    InlineFn fn = [t = std::move(token)] { (void)*t; };
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(InlineFn, PooledCaptureDestructorRunsOnReset) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  InlineFn fn = [t = std::move(token),
                 pad = std::array<unsigned char, 64>{}] { (void)*t; };
  EXPECT_FALSE(watch.expired());
  fn.reset();
  EXPECT_TRUE(watch.expired());
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InlineFn, EmplaceReplacesInPlace) {
  int first = 0;
  int second = 0;
  InlineFn fn = Padded<16>{&first};
  fn.emplace(Padded<16>{&second});
  fn();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(InlineFn, PooledMoveStealsPointer) {
  // Relocating a pooled callback must not re-enter the pool: only one
  // pooled construction for the whole move chain.
  const auto before = snapshot();
  int count = 0;
  InlineFn a = Padded<64>{&count};
  InlineFn b = std::move(a);
  InlineFn c = std::move(b);
  EXPECT_EQ(snapshot().pooled_ctor, before.pooled_ctor + 1);
  c();
  EXPECT_EQ(count, 1);
}

TEST(InlineFn, WorksWithStdFunctionStyleUsage) {
  std::vector<int> seen;
  std::vector<InlineFn> queue;
  for (int i = 0; i < 5; ++i) {
    queue.emplace_back([&seen, i] { seen.push_back(i); });
  }
  for (auto& fn : queue) fn();
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace tstorm::sim
