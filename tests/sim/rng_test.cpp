#include "sim/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace tstorm::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-5.0, 5.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(2, 6);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-10, -1);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -1);
  }
}

TEST(Rng, UniformIntApproximatelyUniform) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    counts[static_cast<size_t>(rng.uniform_int(0, 9))]++;
  }
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(19);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, ExponentialNonNegative) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.exponential(1.0), 0.0);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, PoissonMean) {
  Rng rng(31);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(4.0));
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(37);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(200.0));
  EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(37);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, ZipfInRange) {
  Rng rng(41);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.zipf(100, 1.2), 100u);
  }
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  Rng rng(43);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) {
    counts[static_cast<size_t>(rng.zipf(1000, 1.3))]++;
  }
  // Rank 0 should dominate the tail by a wide margin.
  EXPECT_GT(counts[0], counts[500] * 10);
  EXPECT_GT(counts[0], 10000);
}

TEST(Rng, RandomStringLengthAndAlphabet) {
  Rng rng(47);
  const auto s = rng.random_string(64);
  EXPECT_EQ(s.size(), 64u);
  for (char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(51);
  Rng b = a.fork();
  // The fork must not replay the parent's stream.
  std::vector<std::uint64_t> pa, pb;
  for (int i = 0; i < 50; ++i) {
    pa.push_back(a.next_u64());
    pb.push_back(b.next_u64());
  }
  EXPECT_NE(pa, pb);
}

TEST(Rng, ForkDeterministic) {
  Rng a(99), b(99);
  Rng fa = a.fork(), fb = b.fork();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(fa.next_u64(), fb.next_u64());
}

}  // namespace
}  // namespace tstorm::sim
