// FlatMap and RingDeque: randomized differential tests against the
// std containers they replaced on the tuple hot path. The interesting
// machinery is FlatMap's backward-shift erase (a wrong cyclic-interval
// check silently breaks probe chains, i.e. loses acker XOR state) and
// RingDeque's wrap-around erase_at, so the sweeps run at high erase rates
// with small capacities to force wraps and shifts constantly.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <random>
#include <unordered_map>

#include "sim/flat_map.h"
#include "sim/ring_deque.h"

namespace tstorm::sim {
namespace {

TEST(FlatMap, BasicInsertFindErase) {
  FlatMap<std::uint64_t, int, 0> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(42), nullptr);
  m[42] = 7;
  ASSERT_NE(m.find(42), nullptr);
  EXPECT_EQ(*m.find(42), 7);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.erase(42));
  EXPECT_FALSE(m.erase(42));
  EXPECT_EQ(m.find(42), nullptr);
  EXPECT_TRUE(m.empty());
}

TEST(FlatMap, GetOrInsertReportsInsertion) {
  FlatMap<int, int, -1> m;
  bool inserted = false;
  m.get_or_insert(5, &inserted) = 50;
  EXPECT_TRUE(inserted);
  EXPECT_EQ(m.get_or_insert(5, &inserted), 50);
  EXPECT_FALSE(inserted);
}

TEST(FlatMap, RandomizedMatchesUnorderedMap) {
  FlatMap<std::uint64_t, std::uint64_t, 0> flat;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  std::mt19937_64 rng(1234);
  // Small key domain => constant collisions, erases mid-chain, re-inserts
  // into shifted chains.
  std::uniform_int_distribution<std::uint64_t> key(1, 300);
  for (int op = 0; op < 200000; ++op) {
    const std::uint64_t k = key(rng);
    switch (rng() % 3) {
      case 0: {  // insert/overwrite
        const std::uint64_t v = rng();
        flat[k] = v;
        ref[k] = v;
        break;
      }
      case 1: {  // erase
        EXPECT_EQ(flat.erase(k), ref.erase(k) > 0);
        break;
      }
      default: {  // lookup
        const auto* f = flat.find(k);
        const auto r = ref.find(k);
        ASSERT_EQ(f != nullptr, r != ref.end()) << "key " << k;
        if (f != nullptr) {
          EXPECT_EQ(*f, r->second);
        }
      }
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
  // Full-content sweep at the end.
  std::uint64_t seen = 0;
  flat.for_each([&](std::uint64_t k, std::uint64_t v) {
    ++seen;
    auto it = ref.find(k);
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(v, it->second);
  });
  EXPECT_EQ(seen, ref.size());
}

TEST(FlatMap, EraseIfDrainsToEmptyAcrossSweeps) {
  FlatMap<std::uint64_t, std::uint64_t, 0> m;
  for (std::uint64_t k = 1; k <= 1000; ++k) m[k] = k * 2;
  // erase_if is lazy (a backward shift can move an entry across the scan
  // position); repeated sweeps must still converge to empty.
  int sweeps = 0;
  while (!m.empty() && sweeps < 10) {
    m.erase_if([](std::uint64_t, std::uint64_t) { return true; });
    ++sweeps;
  }
  EXPECT_TRUE(m.empty());
  EXPECT_LE(sweeps, 2) << "erase_if should converge almost immediately";
}

TEST(FlatMap, ClearKeepsCapacityAndWorks) {
  FlatMap<int, int, -1> m;
  for (int k = 0; k < 100; ++k) m[k] = k;
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(50), nullptr);
  m[7] = 70;
  EXPECT_EQ(*m.find(7), 70);
}

TEST(RingDeque, FifoOrderAcrossWrap) {
  RingDeque<int> q;
  // Interleave pushes and pops so head walks around the ring repeatedly.
  int next_in = 0;
  int next_out = 0;
  for (int round = 0; round < 1000; ++round) {
    for (int i = 0; i < 3; ++i) q.push_back(next_in++);
    for (int i = 0; i < 2; ++i) {
      ASSERT_FALSE(q.empty());
      EXPECT_EQ(q.pop_front(), next_out++);
    }
  }
  while (!q.empty()) EXPECT_EQ(q.pop_front(), next_out++);
  EXPECT_EQ(next_out, next_in);
}

TEST(RingDeque, RandomizedMatchesStdDeque) {
  RingDeque<std::uint64_t> ring;
  std::deque<std::uint64_t> ref;
  std::mt19937_64 rng(99);
  for (int op = 0; op < 100000; ++op) {
    switch (rng() % 4) {
      case 0:
      case 1: {  // push (biased: keeps some depth)
        const std::uint64_t v = rng();
        ring.push_back(v);
        ref.push_back(v);
        break;
      }
      case 2: {  // pop_front
        if (ref.empty()) break;
        EXPECT_EQ(ring.pop_front(), ref.front());
        ref.pop_front();
        break;
      }
      default: {  // erase_at a random index (the load-shedding path)
        if (ref.empty()) break;
        const std::size_t i = rng() % ref.size();
        ring.erase_at(i);
        ref.erase(ref.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
    ASSERT_EQ(ring.size(), ref.size());
    if (!ref.empty()) {
      const std::size_t probe = rng() % ref.size();
      ASSERT_EQ(ring[probe], ref[probe]);
    }
  }
}

TEST(RingDeque, CapacityPlateausUnderSteadyChurn) {
  RingDeque<int> q;
  for (int i = 0; i < 100; ++i) q.push_back(i);
  const std::size_t cap = q.capacity();
  for (int round = 0; round < 10000; ++round) {
    q.push_back(round);
    (void)q.pop_front();
  }
  EXPECT_EQ(q.capacity(), cap);
}

TEST(RingDeque, ClearResetsButKeepsStorage) {
  RingDeque<int> q;
  for (int i = 0; i < 20; ++i) q.push_back(i);
  const std::size_t cap = q.capacity();
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.capacity(), cap);
  q.push_back(5);
  EXPECT_EQ(q.front(), 5);
}

}  // namespace
}  // namespace tstorm::sim
