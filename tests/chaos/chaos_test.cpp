// Tests for the self-healing control plane (heartbeats + failure
// detection), the lossy-network fault model's end-to-end behaviour, replay
// backoff, drop-cause attribution, config validation, and the chaos
// harness (fault plans, invariant auditor, determinism).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "chaos/auditor.h"
#include "chaos/fault_plan.h"
#include "core/system.h"
#include "obs/provenance.h"
#include "runtime/cluster.h"
#include "sched/round_robin.h"
#include "trace/trace.h"
#include "workload/external_queue.h"
#include "workload/topologies.h"

namespace tstorm::chaos {
namespace {

using runtime::ClusterConfig;
using runtime::DropCause;
using trace::EventKind;

/// A node currently hosting executors, or -1.
sched::NodeId node_with_executors(runtime::Cluster& cluster) {
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    if (!cluster.executors_on_node(n).empty()) return n;
  }
  return -1;
}

workload::ThroughputTestOptions small_throughput() {
  workload::ThroughputTestOptions opt;
  opt.spout_parallelism = 2;
  opt.identity_parallelism = 4;
  opt.counter_parallelism = 4;
  opt.ackers = 4;
  opt.workers = 12;
  return opt;
}

// --------------------------------------------------- Failure detection ---

TEST(FailureDetection, CrashedNodeIsDeclaredDeadAndRescheduled) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.failure_detection = true;
  core::StormSystem sys(sim, cfg);
  const auto id = sys.submit(workload::make_throughput_test(small_throughput()));
  sim.run_until(100.0);
  auto& cluster = sys.cluster();

  const sched::NodeId victim = node_with_executors(cluster);
  ASSERT_GE(victim, 0);
  cluster.fail_node(victim);

  // Within ~node_timeout + monitor_period the monitor declares the node
  // dead and reschedules; supervisors then rebuild workers elsewhere.
  sim.run_until(100.0 + cfg.node_timeout + 2 * cfg.monitor_period +
                cfg.supervisor_sync_period + cfg.worker_start_delay + 5.0);

  const auto dead = cluster.trace_log().of_kind(EventKind::kNodeDeclaredDead);
  ASSERT_FALSE(dead.empty());
  EXPECT_EQ(dead.front().node, victim);
  EXPECT_FALSE(cluster.nimbus().node_believed_alive(victim));

  const auto* record = cluster.coordination().get(id);
  ASSERT_NE(record, nullptr);
  for (const auto& [task, slot] : record->placement) {
    EXPECT_NE(cluster.slot_node(slot), victim) << "task " << task;
  }
  EXPECT_TRUE(cluster.executors_on_node(victim).empty());
}

TEST(FailureDetection, ThroughputRecoversWithoutManualRepair) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.failure_detection = true;
  core::StormSystem sys(sim, cfg);
  sys.submit(workload::make_throughput_test(small_throughput()));
  auto& cluster = sys.cluster();

  sim.run_until(70.0);
  const auto at70 = cluster.completion().total_completed();
  sim.run_until(100.0);
  const auto pre_fault = cluster.completion().total_completed() - at70;
  ASSERT_GT(pre_fault, 0u);

  const sched::NodeId victim = node_with_executors(cluster);
  ASSERT_GE(victim, 0);
  cluster.fail_node(victim);
  // No recover_node, no manual rebalance: the detector alone must heal
  // the topology within three detection windows...
  const sim::Time recovered_by = 100.0 + 3 * cfg.node_timeout;
  sim.run_until(recovered_by);
  // ...after which a 30 s window sustains >= 90% of pre-fault throughput.
  const auto at_rec = cluster.completion().total_completed();
  sim.run_until(recovered_by + 30.0);
  const auto post_fault = cluster.completion().total_completed() - at_rec;
  EXPECT_GE(static_cast<double>(post_fault),
            0.9 * static_cast<double>(pre_fault))
      << "pre-fault window completed " << pre_fault
      << ", post-recovery window completed " << post_fault;
}

TEST(FailureDetection, RecoveredNodeIsDeclaredAliveAgain) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.failure_detection = true;
  core::StormSystem sys(sim, cfg);
  sys.submit(workload::make_throughput_test(small_throughput()));
  sim.run_until(60.0);
  auto& cluster = sys.cluster();

  cluster.fail_node(4);
  sim.run_until(60.0 + cfg.node_timeout + 2 * cfg.monitor_period);
  ASSERT_FALSE(cluster.nimbus().node_believed_alive(4));

  cluster.recover_node(4);
  sim.run_until(sim.now() + cfg.heartbeat_period + 2 * cfg.monitor_period);
  EXPECT_TRUE(cluster.nimbus().node_believed_alive(4));
  const auto alive =
      cluster.trace_log().of_kind(EventKind::kNodeDeclaredAlive);
  ASSERT_FALSE(alive.empty());
  EXPECT_EQ(alive.back().node, 4);
}

TEST(FailureDetection, MasterPartitionCausesFalsePositiveAndHeals) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.failure_detection = true;
  core::StormSystem sys(sim, cfg);
  sys.submit(workload::make_throughput_test(small_throughput()));
  sim.run_until(60.0);
  auto& cluster = sys.cluster();

  // The machine stays healthy; only its heartbeats stop reaching the
  // master. The detector must (wrongly) declare it dead...
  const sim::Time heal_at = 60.0 + cfg.node_timeout + 3 * cfg.monitor_period;
  cluster.network().add_partition(2, net::Network::kMaster, 60.0, heal_at);
  sim.run_until(heal_at);
  EXPECT_TRUE(cluster.node_available(2));  // ground truth: alive
  EXPECT_FALSE(cluster.nimbus().node_believed_alive(2));  // belief: dead

  // ...and un-declare it once heartbeats resume.
  sim.run_until(heal_at + cfg.heartbeat_period + 2 * cfg.monitor_period);
  EXPECT_TRUE(cluster.nimbus().node_believed_alive(2));
  EXPECT_GE(cluster.trace_log().count(EventKind::kNodeDeclaredDead), 1u);
  EXPECT_GE(cluster.trace_log().count(EventKind::kNodeDeclaredAlive), 1u);
}

// ------------------------------------------------------ Network faults ---

TEST(NetworkFaults, LostDataTuplesFlowThroughReplayPath) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.network.inter_node_drop_prob = 0.05;
  cfg.tuple_timeout = 5.0;
  cfg.replay_backoff_base = 0.5;
  cfg.max_replays = 5;
  core::StormSystem sys(sim, cfg);
  sys.submit(workload::make_throughput_test(small_throughput()));
  sim.run_until(200.0);
  auto& cluster = sys.cluster();

  EXPECT_GT(cluster.dropped_by(DropCause::kNetworkLoss), 0u);
  // Drops killed ack trees -> timeouts -> backoff-scheduled replays.
  EXPECT_GT(cluster.completion().total_failed(), 0u);
  EXPECT_GT(cluster.completion().total_replayed(), 0u);
  EXPECT_GT(cluster.completion().total_completed(), 0u);

  const AuditReport report = InvariantAuditor(cluster).check_now();
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(NetworkFaults, DropCausesAreAttributedSeparately) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.network.inter_node_drop_prob = 0.02;
  core::StormSystem sys(sim, cfg);
  sys.submit(workload::make_throughput_test(small_throughput()));
  sim.run_until(100.0);
  auto& cluster = sys.cluster();
  // Kill one worker: its queued tuples die as dead-instance/drain drops,
  // distinct from the network's in-flight losses.
  const sched::NodeId n = node_with_executors(cluster);
  ASSERT_GE(n, 0);
  const int port = cluster.slot_port(cluster.executors_on_node(n)
                                         .front()
                                         ->worker()
                                         .slot());
  cluster.kill_worker(n, port);
  sim.run_until(150.0);

  EXPECT_GT(cluster.dropped_by(DropCause::kNetworkLoss), 0u);
  EXPECT_EQ(cluster.dropped_messages(),
            cluster.dropped_by(DropCause::kDeadInstance) +
                cluster.dropped_by(DropCause::kNetworkLoss) +
                cluster.dropped_by(DropCause::kShutdownDrain));
  // Attribution must match the network's own counters exactly.
  const AuditReport report = InvariantAuditor(cluster).check_now();
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(NetworkFaults, ControlLossCausesFalsePositiveDetection) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.failure_detection = true;
  // Heartbeats almost never get through; data plane is untouched.
  cfg.network.control_drop_prob = 0.95;
  core::StormSystem sys(sim, cfg);
  sim.run_until(300.0);
  auto& cluster = sys.cluster();
  EXPECT_GT(cluster.network().control_drops(), 0u);
  // With ~3 heartbeats per timeout window at 5% delivery, false positives
  // are near-certain over 300 s; flapping back alive is likely too.
  EXPECT_GE(cluster.trace_log().count(EventKind::kNodeDeclaredDead), 1u);
}

// ------------------------------------------------------ Replay backoff ---

TEST(ReplayBackoff, GrowsExponentiallyAndCaps) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.replay_backoff_base = 1.0;
  cfg.replay_backoff_max = 60.0;
  cfg.replay_backoff_jitter = 0.0;
  runtime::Cluster cluster(sim, cfg);
  auto& tracker = cluster.tracker();
  EXPECT_DOUBLE_EQ(tracker.backoff_delay(1), 1.0);
  EXPECT_DOUBLE_EQ(tracker.backoff_delay(2), 2.0);
  EXPECT_DOUBLE_EQ(tracker.backoff_delay(3), 4.0);
  EXPECT_DOUBLE_EQ(tracker.backoff_delay(4), 8.0);
  EXPECT_DOUBLE_EQ(tracker.backoff_delay(10), 60.0);  // capped
}

TEST(ReplayBackoff, JitterStaysWithinConfiguredFraction) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.replay_backoff_base = 2.0;
  cfg.replay_backoff_max = 600.0;
  cfg.replay_backoff_jitter = 0.5;
  runtime::Cluster cluster(sim, cfg);
  for (int i = 0; i < 50; ++i) {
    const double d = cluster.tracker().backoff_delay(2);  // nominal 4 s
    EXPECT_GE(d, 4.0);
    EXPECT_LT(d, 6.0);  // 4 * (1 + 0.5)
  }
}

TEST(ReplayBackoff, ZeroBaseRestoresImmediateReplay) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.replay_backoff_base = 0.0;
  runtime::Cluster cluster(sim, cfg);
  EXPECT_DOUBLE_EQ(cluster.tracker().backoff_delay(1), 0.0);
  EXPECT_DOUBLE_EQ(cluster.tracker().backoff_delay(5), 0.0);
}

TEST(ReplayBackoff, PendingCapWithReplaysInBackoffDrainsAfterRecovery) {
  // The nasty interaction: a total loss spike times out every in-flight
  // tuple, so spouts sit at the max_pending cap with all their slots tied
  // up in replays that are themselves waiting out exponential backoff.
  // Nothing may deadlock — once the network recovers, replays must land,
  // free pending slots, and emission must resume.
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.tuple_timeout = 5.0;
  cfg.replay_backoff_base = 0.5;
  cfg.replay_backoff_max = 8.0;
  cfg.max_replays = 20;
  core::StormSystem sys(sim, cfg);
  auto opt = small_throughput();
  opt.max_pending = 8;  // tiny pending window: the cap binds immediately
  sys.submit(workload::make_throughput_test(opt));
  auto& cluster = sys.cluster();

  FaultPlan plan;
  plan.loss_spike(20.0, 1.0, 15.0);  // drop EVERY data message for 15 s
  plan.inject(cluster);

  sim.run_until(30.0);  // mid-spike: pending caps hit, replays backing off
  const auto completed_mid = cluster.completion().total_completed();
  sim.run_until(120.0);  // spike long over; backoffs (<= 8 s) all elapsed

  // The system came back: completions grew well past the mid-spike count
  // and the replay path did real work.
  EXPECT_GT(cluster.completion().total_completed(), completed_mid + 100);
  EXPECT_GT(cluster.completion().total_replayed(), 0u);
  EXPECT_GT(cluster.completion().total_failed(), 0u);
  EXPECT_GT(cluster.dropped_by(DropCause::kNetworkLoss), 0u);
  const AuditReport report = InvariantAuditor(cluster).check_now();
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ChaosFaults, OverlappingLossSpikesRestoreBaseline) {
  // Regression: each spike's restore target is resolved against the whole
  // plan at inject time. Reading the live probability when a spike starts
  // would capture an overlapping spike's elevated value and re-install it
  // permanently when the later window closes — turning a bounded fault
  // into steady-state loss for the rest of the run.
  sim::Simulation sim;
  ClusterConfig cfg;
  core::StormSystem sys(sim, cfg);
  auto& cluster = sys.cluster();

  FaultPlan plan;
  plan.loss_spike(10.0, 0.5, 20.0, /*control=*/true);  // [10, 30)
  plan.loss_spike(25.0, 0.2, 15.0, /*control=*/true);  // [25, 40) overlaps
  plan.inject(cluster);

  auto data_drop = [&] {
    return cluster.network().drop_prob(net::LinkType::kInterNode);
  };
  sim.run_until(12.0);
  EXPECT_DOUBLE_EQ(data_drop(), 0.5);
  sim.run_until(27.0);  // second spike's value rules while both are open
  EXPECT_DOUBLE_EQ(data_drop(), 0.2);
  sim.run_until(35.0);  // first closed mid-second: second's value persists
  EXPECT_DOUBLE_EQ(data_drop(), 0.2);
  sim.run_until(50.0);  // all closed: back to the fault-free baseline
  EXPECT_DOUBLE_EQ(data_drop(), 0.0);
  EXPECT_DOUBLE_EQ(cluster.network().control_drop_prob(), 0.0);
}

// ------------------------------------------- Flow control under faults ---

TEST(FlowChaos, LossSpikeWithBackpressureBalancesEveryTuple) {
  // Overload + network loss + backpressure + shedding, all at once: every
  // emitted tuple must still be accounted for — delivered, shed (kLoadShed)
  // or lost (kNetworkLoss) — with nothing double-counted or vanished.
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.tuple_timeout = 8.0;
  cfg.flow.enabled = true;
  cfg.flow.queue_capacity = 32;
  // Collapse the backpressure margin onto the hard cap so shedding engages
  // alongside the throttle (see tests/flow/flow_test.cpp).
  cfg.flow.high_watermark = 1.0;
  cfg.flow.low_watermark = 0.4;
  core::StormSystem sys(sim, cfg);

  // 5 fast spouts, one 10 ms bolt, two workers: the bolt's queue is the
  // bottleneck and spout->bolt hops cross the network (so both the loss
  // spike and the shed race have traffic to act on).
  workload::ChainOptions chain;
  chain.spout_parallelism = 5;
  chain.bolts = 1;
  chain.bolt_parallelism = 1;
  chain.ackers = 2;
  chain.workers = 2;
  chain.bolt_cost_mc = 20.0;
  chain.max_pending = 1 << 20;
  const auto id = sys.submit(workload::make_chain(chain));
  auto& cluster = sys.cluster();

  FaultPlan plan;
  plan.loss_spike(20.0, 0.3, 10.0);
  plan.inject(cluster);
  sim.run_until(60.0);

  // All three mechanisms actually fired together.
  EXPECT_GT(cluster.dropped_by(DropCause::kLoadShed), 0u);
  EXPECT_GT(cluster.dropped_by(DropCause::kNetworkLoss), 0u);
  EXPECT_GE(cluster.trace_log().count(EventKind::kBackpressureOn), 1u);
  EXPECT_GT(cluster.completion().total_completed(), 0u);

  // Exact balance: the total equals the per-cause sum, the flow
  // controller's shed count matches kLoadShed, the network's own drop
  // counters match kNetworkLoss, and tuple conservation holds
  // (delivered + failed == registered - in_flight) — i.e. shed + lost +
  // delivered covers every emitted tuple exactly.
  EXPECT_EQ(cluster.dropped_messages(),
            cluster.dropped_by(DropCause::kDeadInstance) +
                cluster.dropped_by(DropCause::kNetworkLoss) +
                cluster.dropped_by(DropCause::kShutdownDrain) +
                cluster.dropped_by(DropCause::kLoadShed));
  InvariantAuditor auditor(cluster);
  const AuditReport mid = auditor.check_now();
  EXPECT_TRUE(mid.ok()) << mid.to_string();

  // And the books still close after a full drain.
  cluster.kill_topology(id);
  sim.run_until(sim.now() +
                (1.0 + cfg.late_ack_grace_factor) * cfg.tuple_timeout +
                2.0 * cfg.supervisor_sync_period + 5.0);
  EXPECT_FALSE(cluster.flow().throttled(id));
  const AuditReport quiesced = auditor.check_quiesced();
  EXPECT_TRUE(quiesced.ok()) << quiesced.to_string();
}

// --------------------------------------------------- Config validation ---

TEST(ConfigValidation, ClusterConfigRejectsOrClampsBadValues) {
#ifndef NDEBUG
  ClusterConfig bad_nodes;
  bad_nodes.num_nodes = 0;
  EXPECT_DEATH((void)runtime::validated(bad_nodes), "out of range");
  ClusterConfig bad_timeout;
  bad_timeout.tuple_timeout = -1.0;
  EXPECT_DEATH((void)runtime::validated(bad_timeout), "out of range");
  ClusterConfig bad_backoff;
  bad_backoff.replay_backoff_base = -2.0;
  EXPECT_DEATH((void)runtime::validated(bad_backoff), "out of range");
#else
  ClusterConfig bad;
  bad.num_nodes = 0;
  bad.slots_per_node = -3;
  bad.tuple_timeout = -1.0;
  bad.replay_backoff_base = -2.0;
  bad.heartbeat_period = 0.0;
  const ClusterConfig v = runtime::validated(bad);
  EXPECT_EQ(v.num_nodes, 1);
  EXPECT_EQ(v.slots_per_node, 1);
  EXPECT_GT(v.tuple_timeout, 0.0);
  EXPECT_DOUBLE_EQ(v.replay_backoff_base, 0.0);
  EXPECT_GT(v.heartbeat_period, 0.0);
#endif
}

TEST(ConfigValidation, NetworkConfigRejectsOrClampsBadValues) {
#ifndef NDEBUG
  net::NetworkConfig bad_prob;
  bad_prob.inter_node_drop_prob = 1.5;
  EXPECT_DEATH((void)net::validated(bad_prob), "probability");
  net::NetworkConfig bad_bw;
  bad_bw.nic_bandwidth = 0.0;
  EXPECT_DEATH((void)net::validated(bad_bw), "positive");
#else
  net::NetworkConfig bad;
  bad.inter_node_drop_prob = 1.5;
  bad.control_drop_prob = -0.2;
  bad.latency_jitter_frac = 7.0;
  bad.nic_bandwidth = 0.0;
  const net::NetworkConfig v = net::validated(bad);
  EXPECT_DOUBLE_EQ(v.inter_node_drop_prob, 1.0);
  EXPECT_DOUBLE_EQ(v.control_drop_prob, 0.0);
  EXPECT_DOUBLE_EQ(v.latency_jitter_frac, 1.0);
  EXPECT_DOUBLE_EQ(v.nic_bandwidth, net::NetworkConfig{}.nic_bandwidth);
#endif
}

// ---------------------------------------------- Reassignment regression ---

// fail_node while old and new workers of a smooth reassignment co-exist
// (the drain window): the dying node may hold draining workers, running
// replacements, or both. Nothing may dangle and the topology must keep
// completing tuples afterwards.
TEST(Regression, FailNodeDuringSmoothReassignmentCoexistence) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.smooth_reassignment = true;
  cfg.failure_detection = true;
  core::StormSystem sys(sim, cfg);
  const auto id = sys.submit(workload::make_throughput_test(small_throughput()));
  sim.run_until(80.0);
  auto& cluster = sys.cluster();

  // Force a reassignment (different worker count -> different placement);
  // old workers drain for shutdown_delay while new ones run.
  sched::RoundRobinScheduler rr;
  ASSERT_TRUE(cluster.nimbus().rebalance(id, rr, /*num_workers_override=*/6));
  // Let supervisors pick it up and enter the co-existence window...
  sim.run_until(80.0 + cfg.supervisor_sync_period + 2.0);
  // ...then kill a machine mid-window.
  const sched::NodeId victim = node_with_executors(cluster);
  ASSERT_GE(victim, 0);
  cluster.fail_node(victim);

  sim.run_until(250.0);
  const AuditReport report = InvariantAuditor(cluster).check_now();
  EXPECT_TRUE(report.ok()) << report.to_string();
  const auto completed = cluster.completion().total_completed();
  sim.run_until(300.0);
  EXPECT_GT(cluster.completion().total_completed(), completed);
  EXPECT_TRUE(cluster.executors_on_node(victim).empty());
}

// --------------------------------------------------- Schedule provenance ---

// Every schedule the control plane applies — including the automatic
// rebalances the failure detector issues — must trace back to a recorded
// scheduling decision. The auditor enforces it; this exercises the law
// under an actual node failure.
TEST(Provenance, AutoRebalanceAfterNodeFailureLeavesDecisionRecords) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.failure_detection = true;
  core::StormSystem sys(sim, cfg);
  sys.submit(workload::make_throughput_test(small_throughput()));
  sim.run_until(100.0);
  auto& cluster = sys.cluster();

  const sched::NodeId victim = node_with_executors(cluster);
  ASSERT_GE(victim, 0);
  cluster.fail_node(victim);
  sim.run_until(250.0);

  // The detector rescheduled the stranded topology at least once, and the
  // rebalance shows up as a recovery-triggered published decision.
  const auto applied = cluster.trace_log().of_kind(EventKind::kScheduleApplied);
  ASSERT_GE(applied.size(), 2u);  // initial + post-failure rebalance
  for (const auto& e : applied) {
    EXPECT_TRUE(cluster.provenance().has_version(e.version))
        << "applied schedule version " << e.version
        << " has no decision record";
  }
  const auto recovery =
      cluster.provenance().of_trigger(obs::DecisionTrigger::kRecovery);
  ASSERT_FALSE(recovery.empty());
  EXPECT_EQ(recovery.back().outcome, obs::DecisionOutcome::kPublished);
  EXPECT_FALSE(recovery.back().reason.empty());

  // The auditor's provenance law holds alongside the older invariants.
  const AuditReport report = InvariantAuditor(cluster).check_now();
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// ------------------------------------------------------- Chaos harness ---

TEST(FaultPlan, RandomPlanIsSeedDeterministic) {
  RandomPlanOptions opt;
  const FaultPlan a = FaultPlan::random(opt, 7, 10, 4);
  const FaultPlan b = FaultPlan::random(opt, 7, 10, 4);
  const FaultPlan c = FaultPlan::random(opt, 8, 10, 4);
  ASSERT_EQ(a.actions().size(), b.actions().size());
  for (std::size_t i = 0; i < a.actions().size(); ++i) {
    EXPECT_EQ(describe(a.actions()[i]), describe(b.actions()[i]));
    EXPECT_DOUBLE_EQ(a.actions()[i].at, b.actions()[i].at);
  }
  // A different seed produces a different plan.
  bool differs = a.actions().size() != c.actions().size();
  for (std::size_t i = 0; !differs && i < a.actions().size(); ++i) {
    differs = describe(a.actions()[i]) != describe(c.actions()[i]) ||
              a.actions()[i].at != c.actions()[i].at;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, CrashWindowsAreDisjointAndRecoverInTime) {
  RandomPlanOptions opt;
  opt.crashes = 4;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const FaultPlan plan = FaultPlan::random(opt, seed, 8, 4);
    int down = 0;
    sim::Time last = 0;
    for (const auto& a : plan.actions()) {
      EXPECT_GE(a.at, last);  // sorted
      last = a.at;
      if (a.kind == FaultKind::kNodeCrash) {
        EXPECT_EQ(++down, 1) << "two nodes down at once, seed " << seed;
      }
      if (a.kind == FaultKind::kNodeRecover) {
        --down;
        EXPECT_LE(a.at, opt.end);
      }
    }
    EXPECT_EQ(down, 0) << "a crashed node never recovers, seed " << seed;
  }
}

TEST(FaultPlan, InjectionsFireAndAreTraced) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.failure_detection = true;
  core::StormSystem sys(sim, cfg);
  sys.submit(workload::make_throughput_test(small_throughput()));

  FaultPlan plan;
  plan.crash_node(50.0, 3, 60.0)
      .kill_worker(60.0, 1, 0)
      .partition(70.0, 2, net::Network::kMaster, 20.0)
      .loss_spike(80.0, 0.5, 15.0, /*control=*/true);
  plan.inject(sys.cluster());

  sim.run_until(85.0);
  auto& cluster = sys.cluster();
  EXPECT_FALSE(cluster.node_available(3));
  EXPECT_TRUE(cluster.network().partitioned(2, net::Network::kMaster));
  EXPECT_DOUBLE_EQ(
      cluster.network().drop_prob(net::LinkType::kInterNode), 0.5);
  EXPECT_DOUBLE_EQ(cluster.network().control_drop_prob(), 0.5);
  // 5 scheduled actions (crash_node adds crash + recover), 4 fired so far.
  EXPECT_EQ(cluster.trace_log().count(EventKind::kChaosFault), 4u);

  sim.run_until(120.0);
  EXPECT_TRUE(cluster.node_available(3));  // recovered
  EXPECT_FALSE(cluster.network().partitioned(2, net::Network::kMaster));
  // Spike reverted to the pre-spike probabilities.
  EXPECT_DOUBLE_EQ(
      cluster.network().drop_prob(net::LinkType::kInterNode), 0.0);
  EXPECT_DOUBLE_EQ(cluster.network().control_drop_prob(), 0.0);
  EXPECT_EQ(cluster.trace_log().count(EventKind::kChaosFault), 5u);
}

// ---------------------------------------------------------- Determinism ---

std::string run_chaos_and_format_trace(std::uint64_t seed) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.num_nodes = 6;
  cfg.failure_detection = true;
  cfg.seed = seed;
  cfg.network.inter_node_drop_prob = 0.01;
  cfg.network.control_drop_prob = 0.02;
  cfg.network.latency_jitter_frac = 0.1;
  core::StormSystem sys(sim, cfg);

  workload::WordCountOptions wc_opt;
  wc_opt.spouts = 1;
  wc_opt.splitters = 2;
  wc_opt.counters = 2;
  wc_opt.mongos = 2;
  wc_opt.ackers = 2;
  wc_opt.workers = 6;
  auto wc = workload::make_word_count(wc_opt);
  workload::QueueProducer producer(sim, *wc.queue, 100.0);
  producer.start();
  sys.submit(std::move(wc.topology));

  RandomPlanOptions opt;
  opt.start = 30.0;
  opt.end = 200.0;
  opt.crashes = 1;
  opt.worker_kills = 2;
  opt.partitions = 1;
  opt.loss_spikes = 1;
  FaultPlan::random(opt, seed, cfg.num_nodes, cfg.slots_per_node)
      .inject(sys.cluster());

  sim.run_until(250.0);
  std::string out;
  for (const auto& e : sys.cluster().trace_log().events()) {
    out += trace::format_event(e);
    out += '\n';
  }
  out += "completed=" +
         std::to_string(sys.cluster().completion().total_completed()) +
         " failed=" +
         std::to_string(sys.cluster().completion().total_failed()) +
         " dropped=" + std::to_string(sys.cluster().dropped_messages());
  return out;
}

TEST(Determinism, SameChaosSeedYieldsByteIdenticalTrace) {
  const std::string first = run_chaos_and_format_trace(99);
  const std::string second = run_chaos_and_format_trace(99);
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("chaos-fault"), std::string::npos);  // faults fired
}

TEST(Determinism, DifferentSeedsDiverge) {
  EXPECT_NE(run_chaos_and_format_trace(99), run_chaos_and_format_trace(100));
}

}  // namespace
}  // namespace tstorm::chaos
