// Chaos soak: a multi-seed sweep of randomized fault schedules against the
// word-count topology with failure detection enabled. Every seed must end
// with the invariant auditor clean — tuple conservation, no dangling
// executor registrations, exact drop attribution, a drained tracker, and a
// bounded pending-event population after quiesce.
//
// Kept deliberately small per seed (6 nodes, reduced parallelism, shortened
// timeouts) so the whole sweep stays within interactive ctest budgets; the
// point is breadth of fault interleavings, not per-run scale.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "chaos/auditor.h"
#include "chaos/fault_plan.h"
#include "core/system.h"
#include "runtime/cluster.h"
#include "topo/tuple.h"
#include "workload/external_queue.h"
#include "workload/topologies.h"

namespace tstorm::chaos {
namespace {

constexpr std::uint64_t kSeeds = 20;

struct SoakOutcome {
  AuditReport report;
  std::uint64_t completed = 0;
  std::uint64_t chaos_events = 0;
};

SoakOutcome soak_one(std::uint64_t seed) {
  sim::Simulation sim;
  runtime::ClusterConfig cfg;
  cfg.num_nodes = 6;
  cfg.failure_detection = true;
  cfg.seed = seed;
  // Shortened timeouts: more detection/replay/grace cycles per simulated
  // second, so each seed exercises the full loop quickly.
  cfg.tuple_timeout = 10.0;
  cfg.late_ack_grace_factor = 2.0;
  cfg.replay_backoff_base = 0.5;
  cfg.replay_backoff_max = 8.0;
  cfg.node_timeout = 9.0;
  cfg.heartbeat_period = 2.0;
  cfg.monitor_period = 3.0;
  // Flow control on with a deliberately small capacity: fault-induced
  // backlogs (a recovering bolt absorbing replays) must trip backpressure
  // and shedding during the sweep, and the auditor still has to balance —
  // shed tuples are conserved as kLoadShed drops, not vanished.
  cfg.flow.enabled = true;
  cfg.flow.queue_capacity = 24;
  cfg.flow.shed_policy = runtime::ShedPolicy::kProbabilistic;
  // Checkpointing on: barriers, snapshot writes, restores, and dedup all
  // interleave with the fault schedule; the auditor's double-entry checks
  // (incl. kStateDedup) must still balance under shedding + replay.
  cfg.state.enabled = true;
  cfg.state.checkpoint_interval = 6.0;
  core::StormSystem sys(sim, cfg);
  auto& cluster = sys.cluster();

  workload::WordCountOptions wc_opt;
  wc_opt.spouts = 1;
  wc_opt.splitters = 2;
  wc_opt.counters = 2;
  wc_opt.mongos = 2;
  wc_opt.ackers = 2;
  wc_opt.workers = 6;
  auto wc = workload::make_word_count(wc_opt);
  workload::QueueProducer producer(sim, *wc.queue, 80.0);
  producer.start();
  const auto id = sys.submit(std::move(wc.topology));

  RandomPlanOptions opt;
  opt.start = 30.0;
  opt.end = 240.0;
  opt.crashes = 2;
  opt.min_downtime = 15.0;
  opt.max_downtime = 40.0;
  opt.worker_kills = 3;
  opt.partitions = 2;
  opt.loss_spikes = 2;
  opt.max_drop_prob = 0.08;
  FaultPlan::random(opt, seed, cfg.num_nodes, cfg.slots_per_node)
      .inject(cluster);

  sim.run_until(260.0);
  InvariantAuditor auditor(cluster);
  SoakOutcome out;
  // Mid-flight audit with faults settled but traffic still flowing.
  out.report = auditor.check_now();

  // Quiesce: stop the source, kill the topology, and let the tracker's
  // late-ack grace window fully elapse; then the strict audit must hold.
  producer.stop();
  cluster.kill_topology(id);
  sim.run_until(sim.now() +
                (1.0 + cfg.late_ack_grace_factor) * cfg.tuple_timeout +
                2.0 * cfg.supervisor_sync_period + 5.0);
  const AuditReport quiesced = auditor.check_quiesced();
  out.report.violations.insert(out.report.violations.end(),
                               quiesced.violations.begin(),
                               quiesced.violations.end());
  out.completed = cluster.completion().total_completed();
  out.chaos_events =
      cluster.trace_log().count(trace::EventKind::kChaosFault);
  return out;
}

// --- State-consistency sweep ---------------------------------------------
//
// Exactly-once verification: for each seed, run the same workload twice —
// once fault-free, once under the seed's random FaultPlan — with
// checkpointing enabled and a config where every tuple tree eventually
// completes (no shedding, generous replay budget). After both runs drain,
// every keyed count in the chaos run must equal the fault-free reference:
// zero lost updates, zero double-applied updates, across crash + replay +
// restore interleavings.

struct ConsistencyRun {
  AuditReport report;
  KeyedState state;
  std::uint64_t completed = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t restores = 0;
  bool drained = false;
  std::string drain_diag;
};

// `expected` non-null runs the auditor's state-consistency check against
// it (violations land in the returned report) before the topology dies.
ConsistencyRun consistency_run(std::uint64_t seed, bool with_faults,
                               const KeyedState* expected = nullptr) {
  sim::Simulation sim;
  runtime::ClusterConfig cfg;
  cfg.num_nodes = 6;
  cfg.failure_detection = true;
  cfg.seed = seed;
  // Stateful bolts defer their acks until the covering checkpoint round
  // commits, so completion latency carries an O(checkpoint_interval) tax —
  // the timeout must sit well above it or healthy trees time out en masse.
  cfg.tuple_timeout = 20.0;
  cfg.late_ack_grace_factor = 2.0;
  cfg.replay_backoff_base = 0.5;
  cfg.replay_backoff_max = 8.0;
  cfg.node_timeout = 9.0;
  cfg.heartbeat_period = 2.0;
  cfg.monitor_period = 3.0;
  // Every tree must land for the keyed counts to be comparable: no load
  // shedding, and a replay budget far beyond what any fault needs.
  cfg.flow.enabled = false;
  cfg.max_replays = 200;
  cfg.state.enabled = true;
  cfg.state.checkpoint_interval = 2.0;
  cfg.state.dedup_horizon_factor = 3.0;
  core::StormSystem sys(sim, cfg);
  auto& cluster = sys.cluster();

  workload::WordCountOptions wc_opt;
  wc_opt.spouts = 1;
  wc_opt.splitters = 2;
  wc_opt.counters = 2;
  wc_opt.mongos = 2;
  wc_opt.ackers = 2;
  wc_opt.workers = 6;
  auto wc = workload::make_word_count(wc_opt);
  workload::QueueProducer producer(sim, *wc.queue, 60.0);
  producer.start();
  const auto id = sys.submit(std::move(wc.topology));

  if (with_faults) {
    RandomPlanOptions opt;
    opt.start = 30.0;
    opt.end = 150.0;
    opt.crashes = 1;
    opt.min_downtime = 15.0;
    opt.max_downtime = 30.0;
    opt.worker_kills = 3;
    opt.partitions = 1;
    opt.loss_spikes = 2;
    opt.max_drop_prob = 0.08;
    FaultPlan::random(opt, seed, cfg.num_nodes, cfg.slots_per_node)
        .inject(cluster);
  }

  sim.run_until(170.0);
  producer.stop();

  // Drain until every registered tree is resolved (completed exactly once
  // or erased after its grace window) — the keyed counts are final only
  // then. Capped so a livelock fails the test instead of hanging it.
  const double drain_cap = sim.now() + 900.0;
  while (sim.now() < drain_cap &&
         (cluster.tracker().in_flight() != 0 ||
          cluster.tracker().tracked_entries() != 0)) {
    sim.run_until(sim.now() + 5.0);
  }

  ConsistencyRun out;
  out.drained = cluster.tracker().in_flight() == 0 &&
                cluster.tracker().tracked_entries() == 0;
  if (!out.drained) {
    out.drain_diag =
        "in_flight=" + std::to_string(cluster.tracker().in_flight()) +
        " tracked=" + std::to_string(cluster.tracker().tracked_entries()) +
        " registered=" +
        std::to_string(cluster.tracker().total_registered()) +
        " completed=" +
        std::to_string(cluster.completion().total_completed()) +
        " failed=" + std::to_string(cluster.completion().total_failed()) +
        " replays_dropped=" +
        std::to_string(cluster.tracker().replays_dropped()) + " ckpt_ok=" +
        std::to_string(cluster.trace_log().count(
            trace::EventKind::kCheckpointComplete)) +
        " ckpt_abort=" + std::to_string(cluster.trace_log().count(
                             trace::EventKind::kCheckpointAborted)) +
        " restores=" + std::to_string(cluster.trace_log().count(
                           trace::EventKind::kStateRestored)) +
        " dedup=" + std::to_string(cluster.state_dedup_suppressed());
    // Tail of the checkpoint timeline + gated-ack queues: a drain failure
    // here is almost always "rounds stopped committing, acks stayed gated".
    const auto oks =
        cluster.trace_log().of_kind(trace::EventKind::kCheckpointComplete);
    out.drain_diag += "\nlast commits:";
    for (std::size_t i = oks.size() > 6 ? oks.size() - 6 : 0; i < oks.size();
         ++i) {
      out.drain_diag += " " + std::to_string(oks[i].time) + "(" +
                        oks[i].detail + ")";
    }
    const auto aborts =
        cluster.trace_log().of_kind(trace::EventKind::kCheckpointAborted);
    out.drain_diag += "\nlast aborts:";
    for (std::size_t i = aborts.size() > 6 ? aborts.size() - 6 : 0;
         i < aborts.size(); ++i) {
      out.drain_diag +=
          " " + std::to_string(aborts[i].time) + "(" + aborts[i].detail + ")";
    }
    out.drain_diag += "\ngated acks:";
    for (const runtime::Executor* e : cluster.registered_executors()) {
      if (e->state_store() == nullptr) continue;
      out.drain_diag += " task" + std::to_string(e->task()) + "=" +
                        std::to_string(e->deferred_ack_count()) + "@" +
                        std::to_string(e->deferred_head_round());
    }
  }
  // Loss accounting (always on): lets a state-divergence failure show at a
  // glance where each run's tuples went — replay exhaustion, queue
  // residue, or which drop cause dominated.
  out.drain_diag +=
      "\nreplays_dropped=" + std::to_string(cluster.tracker().replays_dropped()) +
      " failed=" + std::to_string(cluster.completion().total_failed()) +
      " queue_left=" + std::to_string(wc.queue->size()) +
      " registered=" + std::to_string(cluster.tracker().total_registered());
  for (int c = 0; c < 5; ++c) {
    const auto cause = static_cast<runtime::DropCause>(c);
    out.drain_diag += std::string(" ") + runtime::to_string(cause) + "=" +
                      std::to_string(cluster.dropped_by(cause));
  }
  InvariantAuditor auditor(cluster);
  // Collect while the topology (and its executors) still exist.
  out.state = auditor.collect_keyed_state();
  out.report = auditor.check_now();
  if (expected != nullptr) {
    auditor.check_state_consistency(out.report, *expected);
  }
  out.completed = cluster.completion().total_completed();
  out.checkpoints =
      cluster.trace_log().count(trace::EventKind::kCheckpointComplete);
  out.restores =
      cluster.trace_log().count(trace::EventKind::kStateRestored);
  cluster.kill_topology(id);
  sim.run_until(sim.now() +
                (1.0 + cfg.late_ack_grace_factor) * cfg.tuple_timeout +
                2.0 * cfg.supervisor_sync_period + 5.0);
  const AuditReport quiesced = auditor.check_quiesced();
  out.report.violations.insert(out.report.violations.end(),
                               quiesced.violations.begin(),
                               quiesced.violations.end());
  return out;
}

TEST(ChaosSoak, TwentySeedStateConsistencySweep) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const ConsistencyRun reference = consistency_run(seed, /*with_faults=*/false);
    ASSERT_TRUE(reference.drained)
        << "seed " << seed << " reference run failed to drain";
    ASSERT_TRUE(reference.report.ok())
        << "seed " << seed << " reference run violated invariants:\n"
        << reference.report.to_string();

    const ConsistencyRun chaos =
        consistency_run(seed, /*with_faults=*/true, &reference.state);
    ASSERT_TRUE(chaos.drained)
        << "seed " << seed << " chaos run failed to drain: "
        << chaos.drain_diag;
    EXPECT_TRUE(chaos.report.ok())
        << "seed " << seed << " chaos run violated invariants:\n"
        << chaos.report.to_string();
    EXPECT_GT(chaos.checkpoints, 0u)
        << "seed " << seed << " completed no checkpoints";
    // Note: completion counts legitimately differ — a timed-out attempt
    // that later completes via replay records an extra (late) completion.
    // The exactly-once contract is on the state, not the attempt count:
    EXPECT_EQ(chaos.state, reference.state)
        << "seed " << seed << " keyed state diverged ("
        << chaos.state.size() << " keys vs " << reference.state.size()
        << " in reference)\nchaos:" << chaos.drain_diag
        << "\nreference:" << reference.drain_diag;
  }
}

TEST(ChaosSoak, TwentySeedSweepPassesAuditor) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const SoakOutcome out = soak_one(seed);
    EXPECT_TRUE(out.report.ok())
        << "seed " << seed << " violated invariants:\n"
        << out.report.to_string();
    EXPECT_GT(out.completed, 0u) << "seed " << seed << " completed nothing";
    EXPECT_GT(out.chaos_events, 0u)
        << "seed " << seed << " injected no faults";
    // Tuple-pool hygiene: with the cluster destroyed, every pooled tuple
    // block and string buffer must be back on its freelist — a nonzero
    // count here is a refcount leak on some crash/replay/drain path.
    EXPECT_EQ(topo::detail::tuple_pool_stats().live_blocks, 0u)
        << "seed " << seed << " leaked tuple blocks";
    EXPECT_EQ(topo::detail::tuple_pool_stats().string_buffers, 0u)
        << "seed " << seed << " leaked pooled string buffers";
  }
}

}  // namespace
}  // namespace tstorm::chaos
