// Chaos soak: a multi-seed sweep of randomized fault schedules against the
// word-count topology with failure detection enabled. Every seed must end
// with the invariant auditor clean — tuple conservation, no dangling
// executor registrations, exact drop attribution, a drained tracker, and a
// bounded pending-event population after quiesce.
//
// Kept deliberately small per seed (6 nodes, reduced parallelism, shortened
// timeouts) so the whole sweep stays within interactive ctest budgets; the
// point is breadth of fault interleavings, not per-run scale.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "chaos/auditor.h"
#include "chaos/fault_plan.h"
#include "core/system.h"
#include "runtime/cluster.h"
#include "topo/tuple.h"
#include "workload/external_queue.h"
#include "workload/topologies.h"

namespace tstorm::chaos {
namespace {

constexpr std::uint64_t kSeeds = 20;

struct SoakOutcome {
  AuditReport report;
  std::uint64_t completed = 0;
  std::uint64_t chaos_events = 0;
};

SoakOutcome soak_one(std::uint64_t seed) {
  sim::Simulation sim;
  runtime::ClusterConfig cfg;
  cfg.num_nodes = 6;
  cfg.failure_detection = true;
  cfg.seed = seed;
  // Shortened timeouts: more detection/replay/grace cycles per simulated
  // second, so each seed exercises the full loop quickly.
  cfg.tuple_timeout = 10.0;
  cfg.late_ack_grace_factor = 2.0;
  cfg.replay_backoff_base = 0.5;
  cfg.replay_backoff_max = 8.0;
  cfg.node_timeout = 9.0;
  cfg.heartbeat_period = 2.0;
  cfg.monitor_period = 3.0;
  // Flow control on with a deliberately small capacity: fault-induced
  // backlogs (a recovering bolt absorbing replays) must trip backpressure
  // and shedding during the sweep, and the auditor still has to balance —
  // shed tuples are conserved as kLoadShed drops, not vanished.
  cfg.flow.enabled = true;
  cfg.flow.queue_capacity = 24;
  cfg.flow.shed_policy = runtime::ShedPolicy::kProbabilistic;
  core::StormSystem sys(sim, cfg);
  auto& cluster = sys.cluster();

  workload::WordCountOptions wc_opt;
  wc_opt.spouts = 1;
  wc_opt.splitters = 2;
  wc_opt.counters = 2;
  wc_opt.mongos = 2;
  wc_opt.ackers = 2;
  wc_opt.workers = 6;
  auto wc = workload::make_word_count(wc_opt);
  workload::QueueProducer producer(sim, *wc.queue, 80.0);
  producer.start();
  const auto id = sys.submit(std::move(wc.topology));

  RandomPlanOptions opt;
  opt.start = 30.0;
  opt.end = 240.0;
  opt.crashes = 2;
  opt.min_downtime = 15.0;
  opt.max_downtime = 40.0;
  opt.worker_kills = 3;
  opt.partitions = 2;
  opt.loss_spikes = 2;
  opt.max_drop_prob = 0.08;
  FaultPlan::random(opt, seed, cfg.num_nodes, cfg.slots_per_node)
      .inject(cluster);

  sim.run_until(260.0);
  InvariantAuditor auditor(cluster);
  SoakOutcome out;
  // Mid-flight audit with faults settled but traffic still flowing.
  out.report = auditor.check_now();

  // Quiesce: stop the source, kill the topology, and let the tracker's
  // late-ack grace window fully elapse; then the strict audit must hold.
  producer.stop();
  cluster.kill_topology(id);
  sim.run_until(sim.now() +
                (1.0 + cfg.late_ack_grace_factor) * cfg.tuple_timeout +
                2.0 * cfg.supervisor_sync_period + 5.0);
  const AuditReport quiesced = auditor.check_quiesced();
  out.report.violations.insert(out.report.violations.end(),
                               quiesced.violations.begin(),
                               quiesced.violations.end());
  out.completed = cluster.completion().total_completed();
  out.chaos_events =
      cluster.trace_log().count(trace::EventKind::kChaosFault);
  return out;
}

TEST(ChaosSoak, TwentySeedSweepPassesAuditor) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const SoakOutcome out = soak_one(seed);
    EXPECT_TRUE(out.report.ok())
        << "seed " << seed << " violated invariants:\n"
        << out.report.to_string();
    EXPECT_GT(out.completed, 0u) << "seed " << seed << " completed nothing";
    EXPECT_GT(out.chaos_events, 0u)
        << "seed " << seed << " injected no faults";
    // Tuple-pool hygiene: with the cluster destroyed, every pooled tuple
    // block and string buffer must be back on its freelist — a nonzero
    // count here is a refcount leak on some crash/replay/drain path.
    EXPECT_EQ(topo::detail::tuple_pool_stats().live_blocks, 0u)
        << "seed " << seed << " leaked tuple blocks";
    EXPECT_EQ(topo::detail::tuple_pool_stats().string_buffers, 0u)
        << "seed " << seed << " leaked pooled string buffers";
  }
}

}  // namespace
}  // namespace tstorm::chaos
