#include "chaos/auditor.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "runtime/cluster.h"
#include "runtime/executor.h"

namespace tstorm::chaos {

std::string AuditReport::to_string() const {
  std::string out;
  for (const std::string& v : violations) {
    out += v;
    out += '\n';
  }
  return out;
}

namespace {

void violate(AuditReport& report, std::string message) {
  report.violations.push_back(std::move(message));
}

}  // namespace

void InvariantAuditor::check_conservation(AuditReport& report) const {
  const metrics::CompletionRecorder& rec = cluster_.completion();
  const runtime::TupleTracker& tracker = cluster_.tracker();
  // Late completions re-resolve roots already counted as failures.
  const std::uint64_t on_time = rec.total_completed() - rec.total_late();
  const std::uint64_t resolved = on_time + rec.total_failed();
  const std::uint64_t expected =
      tracker.total_registered() - tracker.in_flight();
  if (resolved != expected) {
    violate(report,
            "tuple conservation broken: on_time(" + std::to_string(on_time) +
                ") + failed(" + std::to_string(rec.total_failed()) +
                ") = " + std::to_string(resolved) + " but registered(" +
                std::to_string(tracker.total_registered()) + ") - in_flight(" +
                std::to_string(tracker.in_flight()) + ") = " +
                std::to_string(expected));
  }
  if (rec.total_late() > rec.total_failed()) {
    violate(report, "more late completions (" +
                        std::to_string(rec.total_late()) +
                        ") than failures (" +
                        std::to_string(rec.total_failed()) + ")");
  }
}

void InvariantAuditor::check_executor_registrations(
    AuditReport& report) const {
  // Collect every worker a supervisor still owns (current or draining).
  std::unordered_set<const runtime::Worker*> owned;
  for (int n = 0; n < cluster_.num_nodes(); ++n) {
    runtime::Supervisor& sup = cluster_.supervisor(n);
    for (int port = 0; port < cluster_.slots_on_node(n); ++port) {
      if (const runtime::Worker* w = sup.worker_at(port)) owned.insert(w);
    }
    for (const auto& w : sup.draining()) owned.insert(w.get());
  }
  for (runtime::Executor* e : cluster_.registered_executors()) {
    const runtime::Worker& w = e->worker();
    if (owned.find(&w) == owned.end()) {
      violate(report, "dangling executor registration: task " +
                          std::to_string(e->task()) +
                          " registered but its worker (slot " +
                          std::to_string(w.slot()) +
                          ") is not owned by any supervisor");
      continue;
    }
    if (w.state() != runtime::WorkerState::kRunning &&
        w.state() != runtime::WorkerState::kDraining) {
      violate(report, "executor for task " + std::to_string(e->task()) +
                          " registered but its worker is " +
                          runtime::to_string(w.state()));
    }
    if (!e->running()) {
      violate(report, "executor for task " + std::to_string(e->task()) +
                          " registered but not running");
    }
  }
}

void InvariantAuditor::check_drop_attribution(AuditReport& report) const {
  // Cluster::send is the only caller of Network::send, and it files every
  // fault-model loss under kNetworkLoss — the two counters must agree.
  std::uint64_t net_dropped = 0;
  for (net::LinkType type :
       {net::LinkType::kIntraProcess, net::LinkType::kInterProcess,
        net::LinkType::kInterNode}) {
    net_dropped += cluster_.network().stats(type).dropped;
  }
  const std::uint64_t attributed =
      cluster_.dropped_by(runtime::DropCause::kNetworkLoss);
  if (net_dropped != attributed) {
    violate(report, "drop attribution mismatch: network dropped " +
                        std::to_string(net_dropped) +
                        " data messages but kNetworkLoss counts " +
                        std::to_string(attributed));
  }
  // Same double-entry check for load shedding: every tuple the flow
  // controller counted as shed must appear under kLoadShed, and vice
  // versa — a shed without attribution would silently break tuple
  // conservation downstream.
  const std::uint64_t shed_counted = cluster_.flow().shed_total();
  const std::uint64_t shed_attributed =
      cluster_.dropped_by(runtime::DropCause::kLoadShed);
  if (shed_counted != shed_attributed) {
    violate(report, "shed attribution mismatch: flow controller shed " +
                        std::to_string(shed_counted) +
                        " tuples but kLoadShed counts " +
                        std::to_string(shed_attributed));
  }
  // And for exactly-once dedup: every replayed duplicate the state layer
  // suppressed must be filed under kStateDedup — otherwise a suppressed
  // tuple would look like a silent loss to the balance sheet.
  const std::uint64_t dedup_counted = cluster_.state_dedup_suppressed();
  const std::uint64_t dedup_attributed =
      cluster_.dropped_by(runtime::DropCause::kStateDedup);
  if (dedup_counted != dedup_attributed) {
    violate(report, "dedup attribution mismatch: state layer suppressed " +
                        std::to_string(dedup_counted) +
                        " duplicates but kStateDedup counts " +
                        std::to_string(dedup_attributed));
  }
}

void InvariantAuditor::check_tracker_shape(AuditReport& report) const {
  const runtime::TupleTracker& tracker = cluster_.tracker();
  if (tracker.in_flight() > tracker.tracked_entries()) {
    violate(report, "tracker in_flight (" +
                        std::to_string(tracker.in_flight()) +
                        ") exceeds tracked entries (" +
                        std::to_string(tracker.tracked_entries()) + ")");
  }
}

void InvariantAuditor::check_schedule_provenance(AuditReport& report) const {
  // Every applied schedule must be explainable: the version stamped on a
  // kScheduleApplied trace event has to exist in the provenance log's
  // published-version set (which survives ring eviction). This catches a
  // scheduling path that publishes placements without recording why —
  // exactly the class of silent decision the provenance layer exists to
  // eliminate, and the auto-rebalance path chaos runs exercise hardest.
  for (const trace::Event& e :
       cluster_.trace_log().of_kind(trace::EventKind::kScheduleApplied)) {
    if (!cluster_.provenance().has_version(e.version)) {
      violate(report,
              "schedule applied without provenance: version " +
                  std::to_string(e.version) + " (topology " +
                  std::to_string(e.topology) + ", t=" +
                  std::to_string(e.time) + ") has no DecisionRecord");
    }
  }
}

void InvariantAuditor::check_tracker_drained(AuditReport& report) const {
  const runtime::TupleTracker& tracker = cluster_.tracker();
  if (tracker.in_flight() != 0) {
    violate(report, "tracker leak: " + std::to_string(tracker.in_flight()) +
                        " roots still in flight after quiesce");
  }
  if (tracker.tracked_entries() != 0) {
    violate(report, "tracker leak: " +
                        std::to_string(tracker.tracked_entries()) +
                        " entries still tracked after quiesce");
  }
}

void InvariantAuditor::check_pending_bounded(AuditReport& report) const {
  // Quiesced baseline: per active node a sync + heartbeat tick, the
  // detector sweep, per live executor a poll/tick event, plus generous
  // slack for one-shot straggler events (drain timers, spike restores).
  const std::size_t executors = cluster_.registered_executors().size();
  const std::size_t bound = 3 * static_cast<std::size_t>(
                                    std::max(1, cluster_.num_nodes())) +
                            3 * executors + 64;
  if (cluster_.sim().pending() > bound) {
    violate(report, "pending-event leak: " +
                        std::to_string(cluster_.sim().pending()) +
                        " events pending after quiesce (baseline bound " +
                        std::to_string(bound) + ")");
  }
}

KeyedState InvariantAuditor::collect_keyed_state() const {
  KeyedState out;
  std::unordered_set<sched::TaskId> seen;
  for (runtime::Executor* e : cluster_.registered_executors()) {
    const state::StateStore* store = e->state_store();
    if (store == nullptr) continue;
    if (!seen.insert(e->task()).second) continue;
    // Only the instance the router currently resolves to counts; a
    // superseded instance draining out still holds a stale copy.
    if (cluster_.resolve(e->task(),
                         std::numeric_limits<sched::AssignmentVersion>::max()) !=
        e) {
      continue;
    }
    const std::string& comp = cluster_.task_info(e->task()).component->name;
    store->for_each([&](const topo::Value& key, const topo::Value& value) {
      if (value.kind() != topo::Value::Kind::kInt) return;
      std::string flat = comp;
      flat += '|';
      switch (key.kind()) {
        case topo::Value::Kind::kInt:
          flat += std::to_string(key.as_int());
          break;
        case topo::Value::Kind::kDouble:
          flat += std::to_string(key.as_double());
          break;
        case topo::Value::Kind::kString:
          flat += key.as_string();
          break;
      }
      out[flat] += value.as_int();
    });
  }
  return out;
}

void InvariantAuditor::check_state_consistency(
    AuditReport& report, const KeyedState& expected) const {
  const KeyedState actual = collect_keyed_state();
  for (const auto& [key, want] : expected) {
    const auto it = actual.find(key);
    const long long got = it == actual.end() ? 0 : it->second;
    if (got != want) {
      violate(report, "state divergence: key '" + key + "' counts " +
                          std::to_string(got) + " but fault-free reference " +
                          "counts " + std::to_string(want) +
                          (got < want ? " (lost update)"
                                      : " (double-applied update)"));
    }
  }
  for (const auto& [key, got] : actual) {
    if (expected.find(key) == expected.end() && got != 0) {
      violate(report, "state divergence: key '" + key + "' counts " +
                          std::to_string(got) +
                          " but is absent from the fault-free reference");
    }
  }
}

AuditReport InvariantAuditor::check_now() const {
  AuditReport report;
  check_conservation(report);
  check_executor_registrations(report);
  check_drop_attribution(report);
  check_tracker_shape(report);
  check_schedule_provenance(report);
  return report;
}

AuditReport InvariantAuditor::check_quiesced() const {
  AuditReport report = check_now();
  check_tracker_drained(report);
  check_pending_bounded(report);
  return report;
}

}  // namespace tstorm::chaos
