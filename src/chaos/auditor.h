// InvariantAuditor: cross-checks a cluster's internal accounting against
// the conservation laws a correct runtime must obey under arbitrary fault
// schedules. The chaos soak runs it against every seed; a single violation
// fails the run with a human-readable explanation.
//
// Instant invariants (hold at any time, faults in progress or not):
//   * Tuple conservation: every registered root is in exactly one state —
//       total_registered == on_time_completions + failures + in_flight
//     (late completions re-resolve an already-counted failure, so they are
//     excluded from the left-hand completion term).
//   * No dangling executor registrations: every executor in the cluster's
//     router belongs to a live (running/draining) worker that is still
//     owned by a supervisor.
//   * Drop attribution: the network's per-link dropped counters sum to the
//     cluster's kNetworkLoss drop cause.
//   * Tracker shape: in_flight <= tracked entries (failed entries linger
//     for the late-ack grace window, live ones are a subset).
//   * Schedule provenance: every schedule-applied trace event (initial
//     placements, manual rebalances, auto-rebalances around dead nodes,
//     generator publishes) carries an assignment version the provenance
//     log knows — no placement may ever reach the coordination store
//     without a DecisionRecord explaining it.
//
// Quiesced invariants (hold once spouts are silenced and the late-ack
// grace window has elapsed):
//   * The tracker drained: no entries, nothing in flight.
//   * Pending-event accounting: only the periodic daemon baseline remains
//     (supervisor sync/heartbeat loops, detector sweep, executor polls) —
//     a per-tuple event leak shows up here as an unbounded count.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace tstorm::runtime {
class Cluster;
}

namespace tstorm::chaos {

/// Keyed-state aggregate: "component|key" -> summed integer value across
/// the live tasks of every stateful bolt. Comparable across clusters, so
/// a chaos run can be checked against a fault-free reference run.
using KeyedState = std::map<std::string, long long>;

struct AuditReport {
  std::vector<std::string> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  /// All violations joined as lines (empty string when ok).
  [[nodiscard]] std::string to_string() const;
};

class InvariantAuditor {
 public:
  explicit InvariantAuditor(runtime::Cluster& cluster) : cluster_(cluster) {}

  /// Instant invariants — safe to call at any simulation time.
  [[nodiscard]] AuditReport check_now() const;

  /// Instant + quiesced invariants. Call only after the workload has been
  /// stopped and at least (1 + late_ack_grace_factor) * tuple_timeout of
  /// simulated time has passed since the last emission.
  [[nodiscard]] AuditReport check_quiesced() const;

  /// Sums the live keyed state of every stateful bolt task (the instance
  /// the router currently resolves to) into a comparable aggregate. Only
  /// integer-valued entries participate; collect before kill_topology,
  /// while the executors still exist.
  [[nodiscard]] KeyedState collect_keyed_state() const;

  /// State-consistency check: after quiesce, every keyed count must equal
  /// the fault-free reference run's — a mismatch means an update was lost
  /// or double-applied across crash/replay/restore.
  void check_state_consistency(AuditReport& report,
                               const KeyedState& expected) const;

 private:
  void check_conservation(AuditReport& report) const;
  void check_executor_registrations(AuditReport& report) const;
  void check_drop_attribution(AuditReport& report) const;
  void check_tracker_shape(AuditReport& report) const;
  void check_schedule_provenance(AuditReport& report) const;
  void check_tracker_drained(AuditReport& report) const;
  void check_pending_bounded(AuditReport& report) const;

  runtime::Cluster& cluster_;
};

}  // namespace tstorm::chaos
