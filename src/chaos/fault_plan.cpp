#include "chaos/fault_plan.h"

#include <algorithm>

#include "runtime/cluster.h"
#include "sim/rng.h"
#include "trace/trace.h"

namespace tstorm::chaos {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNodeCrash:
      return "node-crash";
    case FaultKind::kNodeRecover:
      return "node-recover";
    case FaultKind::kWorkerKill:
      return "worker-kill";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kLossSpike:
      return "loss-spike";
  }
  return "?";
}

std::string describe(const FaultAction& a) {
  std::string s = to_string(a.kind);
  switch (a.kind) {
    case FaultKind::kNodeCrash:
    case FaultKind::kNodeRecover:
      s += " node=" + std::to_string(a.node);
      break;
    case FaultKind::kWorkerKill:
      s += " node=" + std::to_string(a.node) + " port=" +
           std::to_string(a.port);
      break;
    case FaultKind::kPartition:
      s += " node=" + std::to_string(a.node);
      if (a.peer == net::Network::kMaster) {
        s += " peer=master";
      } else if (a.peer == net::Network::kAnyPeer) {
        s += " peer=any";
      } else {
        s += " peer=" + std::to_string(a.peer);
      }
      s += " duration=" + std::to_string(a.duration);
      break;
    case FaultKind::kLossSpike:
      s += " p=" + std::to_string(a.drop_prob) + " duration=" +
           std::to_string(a.duration) + (a.control ? " +control" : "");
      break;
  }
  return s;
}

FaultPlan& FaultPlan::add(FaultAction action) {
  actions_.push_back(action);
  return *this;
}

FaultPlan& FaultPlan::crash_node(sim::Time at, int node, sim::Time downtime) {
  FaultAction crash;
  crash.at = at;
  crash.kind = FaultKind::kNodeCrash;
  crash.node = node;
  add(crash);
  FaultAction recover;
  recover.at = at + downtime;
  recover.kind = FaultKind::kNodeRecover;
  recover.node = node;
  return add(recover);
}

FaultPlan& FaultPlan::kill_worker(sim::Time at, int node, int port) {
  FaultAction a;
  a.at = at;
  a.kind = FaultKind::kWorkerKill;
  a.node = node;
  a.port = port;
  return add(a);
}

FaultPlan& FaultPlan::partition(sim::Time at, int node, int peer,
                                sim::Time duration) {
  FaultAction a;
  a.at = at;
  a.kind = FaultKind::kPartition;
  a.node = node;
  a.peer = peer;
  a.duration = duration;
  return add(a);
}

FaultPlan& FaultPlan::loss_spike(sim::Time at, double drop_prob,
                                 sim::Time duration, bool control) {
  FaultAction a;
  a.at = at;
  a.kind = FaultKind::kLossSpike;
  a.drop_prob = drop_prob;
  a.duration = duration;
  a.control = control;
  return add(a);
}

FaultPlan FaultPlan::random(const RandomPlanOptions& opt, std::uint64_t seed,
                            int num_nodes, int slots_per_node) {
  FaultPlan plan;
  sim::Rng rng(seed ^ 0x6368616f732d706cULL);
  const sim::Time span = std::max<sim::Time>(opt.end - opt.start, 1.0);

  // Crash/recover pairs: one per disjoint segment of [start, end], downtime
  // confined to the segment — at most one node down at a time, and every
  // node is back before the plan ends.
  if (opt.crashes > 0 && num_nodes > 1) {
    const sim::Time seg = span / opt.crashes;
    for (int i = 0; i < opt.crashes; ++i) {
      const sim::Time seg_start = opt.start + i * seg;
      const sim::Time latest_start =
          std::max<sim::Time>(seg_start, seg_start + seg - opt.min_downtime);
      const sim::Time at = rng.uniform(seg_start, latest_start);
      const sim::Time cap =
          std::max<sim::Time>(opt.min_downtime, seg_start + seg - at);
      const sim::Time downtime = rng.uniform(
          opt.min_downtime, std::min<sim::Time>(opt.max_downtime, cap));
      const int node =
          static_cast<int>(rng.uniform_int(0, num_nodes - 1));
      plan.crash_node(at, node, downtime);
    }
  }

  for (int i = 0; i < opt.worker_kills; ++i) {
    const sim::Time at = rng.uniform(opt.start, opt.end);
    const int node = static_cast<int>(rng.uniform_int(0, num_nodes - 1));
    const int port =
        static_cast<int>(rng.uniform_int(0, std::max(0, slots_per_node - 1)));
    plan.kill_worker(at, node, port);
  }

  // Half the partitions sever a node from the master (heartbeat starvation
  // -> false-positive detection), half sever a data path between two nodes.
  for (int i = 0; i < opt.partitions; ++i) {
    const sim::Time at =
        rng.uniform(opt.start, std::max(opt.start, opt.end - opt.min_partition));
    const sim::Time duration =
        rng.uniform(opt.min_partition, opt.max_partition);
    const int node = static_cast<int>(rng.uniform_int(0, num_nodes - 1));
    int peer = net::Network::kMaster;
    if (num_nodes > 1 && rng.bernoulli(0.5)) {
      peer = static_cast<int>(rng.uniform_int(0, num_nodes - 2));
      if (peer >= node) ++peer;  // distinct from `node`
    }
    plan.partition(at, node, peer, duration);
  }

  for (int i = 0; i < opt.loss_spikes; ++i) {
    const sim::Time at =
        rng.uniform(opt.start, std::max(opt.start, opt.end - opt.min_spike));
    const sim::Time duration = rng.uniform(opt.min_spike, opt.max_spike);
    const double p = rng.uniform(0.0, opt.max_drop_prob);
    plan.loss_spike(at, p, duration, rng.bernoulli(0.5));
  }

  std::stable_sort(plan.actions_.begin(), plan.actions_.end(),
                   [](const FaultAction& a, const FaultAction& b) {
                     return a.at < b.at;
                   });
  return plan;
}

namespace {

// `restore_data` / `restore_ctl`: the drop probabilities to revert to when
// a kLossSpike window closes (precomputed at inject time; unused for other
// kinds). Reading them live at the spike's start would capture another
// overlapping spike's elevated value and re-install it permanently at this
// spike's end — a leak that turns a bounded fault window into steady-state
// loss for the rest of the run.
void apply(runtime::Cluster& cluster, const FaultAction& a,
           double restore_data, double restore_ctl) {
  trace::Event ev;
  ev.time = cluster.sim().now();
  ev.kind = trace::EventKind::kChaosFault;
  ev.node = a.node;
  ev.detail = describe(a);
  cluster.trace_log().record(std::move(ev));

  switch (a.kind) {
    case FaultKind::kNodeCrash:
      cluster.fail_node(a.node);
      break;
    case FaultKind::kNodeRecover:
      cluster.recover_node(a.node);
      break;
    case FaultKind::kWorkerKill:
      cluster.kill_worker(a.node, a.port);
      break;
    case FaultKind::kPartition:
      cluster.network().add_partition(a.node, a.peer, cluster.sim().now(),
                                      cluster.sim().now() + a.duration);
      break;
    case FaultKind::kLossSpike: {
      net::Network& net = cluster.network();
      net.set_drop_prob(net::LinkType::kInterNode, a.drop_prob);
      if (a.control) net.set_control_drop_prob(a.drop_prob);
      runtime::Cluster* c = &cluster;
      const bool control = a.control;
      cluster.sim().schedule_after(
          a.duration, [c, restore_data, restore_ctl, control] {
            c->network().set_drop_prob(net::LinkType::kInterNode,
                                       restore_data);
            if (control) c->network().set_control_drop_prob(restore_ctl);
          });
      break;
    }
  }
}

}  // namespace

void FaultPlan::inject(runtime::Cluster& cluster) const {
  // Baseline drop probabilities before any spike fires. Each spike's
  // restore target is resolved now, against the whole plan: the baseline,
  // lifted to the magnitude of any other spike whose window is still open
  // when this one ends. That keeps overlapping spikes from leaking an
  // elevated probability past the last window.
  const double base_data =
      cluster.network().drop_prob(net::LinkType::kInterNode);
  const double base_ctl = cluster.network().control_drop_prob();
  for (const FaultAction& action : actions_) {
    runtime::Cluster* c = &cluster;
    // The action is copied into the closure (FaultAction is 48 bytes, so
    // with the cluster pointer this takes the callback pool's slow path —
    // fine for a handful of cold injections).
    FaultAction a = action;
    double restore_data = base_data;
    double restore_ctl = base_ctl;
    if (a.kind == FaultKind::kLossSpike) {
      const sim::Time end = a.at + a.duration;
      for (const FaultAction& b : actions_) {
        if (&b == &action || b.kind != FaultKind::kLossSpike) continue;
        if (b.at <= end && end < b.at + b.duration) {
          restore_data = std::max(restore_data, b.drop_prob);
          if (b.control) restore_ctl = std::max(restore_ctl, b.drop_prob);
        }
      }
    }
    cluster.sim().schedule_at(a.at, [c, a, restore_data, restore_ctl] {
      apply(*c, a, restore_data, restore_ctl);
    });
  }
}

}  // namespace tstorm::chaos
