// FaultPlan: a deterministic schedule of fault injections against a running
// cluster. Plans are either scripted (builder methods) or generated from a
// seed (FaultPlan::random) — the same seed always yields the same plan, and
// because every injection runs as an ordinary simulation event, a chaos run
// is exactly as reproducible as a fault-free one. Each firing is recorded in
// the cluster's trace log as kChaosFault.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/network.h"
#include "sim/simulation.h"

namespace tstorm::runtime {
class Cluster;
}

namespace tstorm::chaos {

enum class FaultKind : std::uint8_t {
  /// The machine goes down (Cluster::fail_node): workers die, supervisor
  /// stops syncing and heartbeating.
  kNodeCrash,
  /// The machine comes back empty (Cluster::recover_node); its supervisor
  /// resumes syncing and heartbeating.
  kNodeRecover,
  /// One worker process dies (Cluster::kill_worker); the supervisor
  /// restarts it on its next sync.
  kWorkerKill,
  /// A time-windowed partition between `node` and `peer` (peer may be
  /// net::Network::kMaster or kAnyPeer).
  kPartition,
  /// A transient loss spike: inter-node drop probability (and optionally
  /// the control plane's) jumps to `drop_prob` for `duration`, then reverts
  /// to whatever it was when the spike began.
  kLossSpike,
};

const char* to_string(FaultKind kind);

struct FaultAction {
  sim::Time at = 0;
  FaultKind kind = FaultKind::kNodeCrash;
  int node = -1;
  /// Partition peer (kPartition only).
  int peer = net::Network::kMaster;
  /// Worker port (kWorkerKill only).
  int port = 0;
  /// Window length (kPartition, kLossSpike).
  sim::Time duration = 0;
  /// Spike magnitude (kLossSpike only).
  double drop_prob = 0.0;
  /// kLossSpike: also spike the control plane (heartbeats).
  bool control = false;
};

/// One-line human-readable description (used as the trace event detail).
std::string describe(const FaultAction& action);

/// Knobs for FaultPlan::random. Crash windows are confined to disjoint time
/// segments, so at most one node is down at any instant and every crashed
/// node recovers before `end` — random plans are violent but survivable.
struct RandomPlanOptions {
  sim::Time start = 60.0;  ///< leave topology warm-up alone
  sim::Time end = 540.0;
  int crashes = 2;  ///< crash/recover pairs
  sim::Time min_downtime = 20.0;
  sim::Time max_downtime = 60.0;
  int worker_kills = 3;
  int partitions = 2;
  sim::Time min_partition = 10.0;
  sim::Time max_partition = 30.0;
  int loss_spikes = 2;
  double max_drop_prob = 0.05;
  sim::Time min_spike = 10.0;
  sim::Time max_spike = 40.0;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  /// --- Scripted construction. ---
  FaultPlan& add(FaultAction action);
  /// Crash at `at`, recover `downtime` later.
  FaultPlan& crash_node(sim::Time at, int node, sim::Time downtime);
  FaultPlan& kill_worker(sim::Time at, int node, int port);
  FaultPlan& partition(sim::Time at, int node, int peer, sim::Time duration);
  FaultPlan& loss_spike(sim::Time at, double drop_prob, sim::Time duration,
                        bool control = false);

  /// Seed-deterministic random plan for a cluster of `num_nodes` nodes with
  /// `slots_per_node` ports each. Same (options, seed, shape) => same plan.
  static FaultPlan random(const RandomPlanOptions& options,
                          std::uint64_t seed, int num_nodes,
                          int slots_per_node);

  [[nodiscard]] const std::vector<FaultAction>& actions() const {
    return actions_;
  }
  [[nodiscard]] bool empty() const { return actions_.empty(); }

  /// Schedules every action into the cluster's simulation. The plan itself
  /// is copied into the scheduled closures — it need not outlive the call.
  void inject(runtime::Cluster& cluster) const;

 private:
  std::vector<FaultAction> actions_;
};

}  // namespace tstorm::chaos
