#include "core/estimator.h"

#include <algorithm>

namespace tstorm::core {

SlidingWindowEstimator::SlidingWindowEstimator(std::size_t window)
    : window_(std::max<std::size_t>(1, window)) {}

double SlidingWindowEstimator::update(double sample) {
  samples_.push_back(sample);
  sum_ += sample;
  if (samples_.size() > window_) {
    sum_ -= samples_.front();
    samples_.pop_front();
  }
  return value();
}

double SlidingWindowEstimator::value() const {
  if (samples_.empty()) return 0;
  return sum_ / static_cast<double>(samples_.size());
}

double HoltTrendEstimator::update(double sample) {
  if (!seeded_) {
    level_ = sample;
    trend_ = 0;
    seeded_ = true;
    return value();
  }
  const double prev_level = level_;
  // Note the paper's alpha convention: alpha weights the OLD value.
  level_ = alpha_ * (prev_level + trend_) + (1.0 - alpha_) * sample;
  trend_ = beta_ * (level_ - prev_level) + (1.0 - beta_) * trend_;
  return value();
}

double HoltTrendEstimator::value() const {
  return std::max(0.0, level_ + trend_);
}

EstimatorFactory make_ewma_factory(double alpha) {
  return [alpha] { return std::make_unique<EwmaEstimator>(alpha); };
}

EstimatorFactory make_sliding_window_factory(std::size_t window) {
  return [window] { return std::make_unique<SlidingWindowEstimator>(window); };
}

EstimatorFactory make_holt_factory(double alpha, double beta) {
  return [alpha, beta] {
    return std::make_unique<HoltTrendEstimator>(alpha, beta);
  };
}

}  // namespace tstorm::core
