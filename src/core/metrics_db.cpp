#include "core/metrics_db.h"

namespace tstorm::core {

IEstimator& MetricsDb::estimator(
    std::unordered_map<std::uint64_t, std::unique_ptr<IEstimator>>& map,
    std::uint64_t key) {
  auto it = map.find(key);
  if (it == map.end()) {
    it = map.emplace(key, factory_()).first;
  }
  return *it->second;
}

void MetricsDb::set_alpha(double alpha) {
  factory_ = make_ewma_factory(alpha);
  for (auto* map : {&loads_, &queues_, &node_loads_, &node_queues_,
                    &traffic_, &memories_, &networks_}) {
    for (auto& [key, est] : *map) {
      if (auto* ewma = dynamic_cast<EwmaEstimator*>(est.get());
          ewma != nullptr) {
        ewma->set_alpha(alpha);
      }
    }
  }
}

void MetricsDb::update_executor_load(sched::TaskId task, double mhz_sample) {
  estimator(loads_, static_cast<std::uint32_t>(task)).update(mhz_sample);
}

void MetricsDb::update_executor_queue(sched::TaskId task,
                                      double depth_sample) {
  estimator(queues_, static_cast<std::uint32_t>(task)).update(depth_sample);
}

void MetricsDb::update_executor_memory(sched::TaskId task,
                                       double mib_sample) {
  estimator(memories_, static_cast<std::uint32_t>(task)).update(mib_sample);
}

void MetricsDb::update_executor_network(sched::TaskId task,
                                        double mbps_sample) {
  estimator(networks_, static_cast<std::uint32_t>(task)).update(mbps_sample);
}

double MetricsDb::executor_memory(sched::TaskId task) const {
  auto it = memories_.find(static_cast<std::uint32_t>(task));
  return it == memories_.end() ? 0.0 : it->second->value();
}

double MetricsDb::executor_network(sched::TaskId task) const {
  auto it = networks_.find(static_cast<std::uint32_t>(task));
  return it == networks_.end() ? 0.0 : it->second->value();
}

void MetricsDb::update_traffic(sched::TaskId src, sched::TaskId dst,
                               double rate_sample) {
  estimator(traffic_, pair_key(src, dst)).update(rate_sample);
}

void MetricsDb::update_node_load(sched::NodeId node, double mhz_sample) {
  estimator(node_loads_, static_cast<std::uint32_t>(node))
      .update(mhz_sample);
}

double MetricsDb::executor_load(sched::TaskId task) const {
  auto it = loads_.find(static_cast<std::uint32_t>(task));
  return it == loads_.end() ? 0.0 : it->second->value();
}

double MetricsDb::executor_queue(sched::TaskId task) const {
  auto it = queues_.find(static_cast<std::uint32_t>(task));
  return it == queues_.end() ? 0.0 : it->second->value();
}

void MetricsDb::update_node_queue(sched::NodeId node, double depth_sample) {
  estimator(node_queues_, static_cast<std::uint32_t>(node))
      .update(depth_sample);
}

double MetricsDb::node_load(sched::NodeId node) const {
  auto it = node_loads_.find(static_cast<std::uint32_t>(node));
  return it == node_loads_.end() ? 0.0 : it->second->value();
}

double MetricsDb::node_queue(sched::NodeId node) const {
  auto it = node_queues_.find(static_cast<std::uint32_t>(node));
  return it == node_queues_.end() ? 0.0 : it->second->value();
}

std::vector<sched::TrafficEntry> MetricsDb::traffic_snapshot() const {
  std::vector<sched::TrafficEntry> out;
  out.reserve(traffic_.size());
  for (const auto& [key, est] : traffic_) {
    sched::TrafficEntry e;
    e.src = static_cast<sched::TaskId>(key >> 32);
    e.dst = static_cast<sched::TaskId>(key & 0xffffffffu);
    e.rate = est->value();
    if (e.rate > 0) out.push_back(e);
  }
  return out;
}

void MetricsDb::forget_task(sched::TaskId task) {
  loads_.erase(static_cast<std::uint32_t>(task));
  queues_.erase(static_cast<std::uint32_t>(task));
  memories_.erase(static_cast<std::uint32_t>(task));
  networks_.erase(static_cast<std::uint32_t>(task));
  std::erase_if(traffic_, [task](const auto& kv) {
    const auto src = static_cast<sched::TaskId>(kv.first >> 32);
    const auto dst = static_cast<sched::TaskId>(kv.first & 0xffffffffu);
    return src == task || dst == task;
  });
}

void MetricsDb::publish_schedule(sched::Placement placement,
                                 sched::AssignmentVersion version) {
  published_ = std::move(placement);
  published_version_ = version;
}

}  // namespace tstorm::core
