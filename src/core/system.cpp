#include "core/system.h"

#include <stdexcept>

namespace tstorm::core {

EstimatorFactory make_estimator_factory(const CoreConfig& core) {
  if (core.estimator == "ewma") return make_ewma_factory(core.alpha);
  if (core.estimator == "sliding-window") {
    return make_sliding_window_factory(core.sliding_window);
  }
  if (core.estimator == "holt") {
    return make_holt_factory(core.alpha, core.holt_beta);
  }
  throw std::invalid_argument("unknown estimator: " + core.estimator);
}

namespace {

runtime::ClusterConfig storm_mode(runtime::ClusterConfig config) {
  config.smooth_reassignment = false;
  return config;
}

runtime::ClusterConfig tstorm_mode(runtime::ClusterConfig config) {
  config.smooth_reassignment = true;
  return config;
}

}  // namespace

StormSystem::StormSystem(sim::Simulation& sim, runtime::ClusterConfig config)
    : cluster_(sim, storm_mode(config)) {}

sched::TopologyId StormSystem::submit(topo::Topology topology) {
  return cluster_.submit(std::move(topology), &round_robin_);
}

sched::TopologyId StormSystem::submit_pinned(topo::Topology topology,
                                             sched::Placement placement) {
  sched::ManualScheduler manual(std::move(placement));
  return cluster_.submit(std::move(topology), &manual);
}

TStormSystem::TStormSystem(sim::Simulation& sim,
                           runtime::ClusterConfig config, CoreConfig core)
    : cluster_(sim, tstorm_mode(config)), db_(make_estimator_factory(core)) {
  const int nodes = cluster_.config().num_nodes;
  monitors_.reserve(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    monitors_.push_back(std::make_unique<LoadMonitor>(
        cluster_, db_, n, core.monitor_period));
    // Stagger the daemons across one period, as real per-node daemons
    // drift; node n's first sample lands at period * (n+1)/(nodes+1).
    const double phase = core.monitor_period *
                         (static_cast<double>(n) + 1.0) /
                         (static_cast<double>(nodes) + 1.0);
    monitors_.back()->start(phase);
  }
  generator_ = std::make_unique<ScheduleGenerator>(cluster_, db_, core);
  generator_->start();
  custom_scheduler_ =
      std::make_unique<CustomScheduler>(cluster_, db_, core.fetch_period);
  custom_scheduler_->start();
}

sched::TopologyId TStormSystem::submit(topo::Topology topology) {
  return cluster_.submit(std::move(topology), &initial_);
}

sched::TopologyId TStormSystem::submit_pinned(topo::Topology topology,
                                              sched::Placement placement) {
  sched::ManualScheduler manual(std::move(placement));
  return cluster_.submit(std::move(topology), &manual);
}

}  // namespace tstorm::core
