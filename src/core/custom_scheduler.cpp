#include "core/custom_scheduler.h"

namespace tstorm::core {

CustomScheduler::CustomScheduler(runtime::Cluster& cluster, MetricsDb& db,
                                 double fetch_period)
    : cluster_(cluster), db_(db) {
  fetch_task_ = std::make_unique<sim::PeriodicTask>(
      cluster_.sim(), fetch_period, [this] { fetch_and_apply(); });
}

void CustomScheduler::start() { fetch_task_->start(fetch_task_->period()); }

void CustomScheduler::stop() { fetch_task_->stop(); }

bool CustomScheduler::fetch_and_apply() {
  const auto version = db_.published_version();
  if (version <= applied_version_) return false;
  applied_version_ = version;

  // Split the global schedule per topology and apply atomically.
  std::map<sched::TopologyId, sched::Placement> per_topo;
  for (const auto& [task, slot] : db_.published_schedule()) {
    per_topo[cluster_.task_info(task).topology].emplace(task, slot);
  }
  if (per_topo.empty()) return false;
  const bool ok = cluster_.nimbus().apply_placements(per_topo, version);
  if (ok) ++applications_;
  return ok;
}

}  // namespace tstorm::core
