#include "core/schedule_generator.h"

#include <stdexcept>

namespace tstorm::core {

ScheduleGenerator::ScheduleGenerator(runtime::Cluster& cluster, MetricsDb& db,
                                     CoreConfig config)
    : cluster_(cluster), db_(db), config_(config) {
  algorithm_ = sched::AlgorithmRegistry::instance().create(config_.algorithm);
  if (algorithm_ == nullptr) {
    throw std::invalid_argument("unknown scheduling algorithm: " +
                                config_.algorithm);
  }
  generate_task_ = std::make_unique<sim::PeriodicTask>(
      cluster_.sim(), config_.generation_period,
      [this] { generate_now(false); });
  overload_task_ = std::make_unique<sim::PeriodicTask>(
      cluster_.sim(), config_.monitor_period, [this] { overload_check(); });
}

void ScheduleGenerator::start() {
  generate_task_->start(config_.generation_period);
  // Check for overload one tick after each monitor sample lands.
  overload_task_->start(config_.monitor_period + 1.0);
}

void ScheduleGenerator::stop() {
  generate_task_->stop();
  overload_task_->stop();
}

void ScheduleGenerator::set_algorithm(
    std::unique_ptr<sched::ISchedulingAlgorithm> algorithm) {
  if (algorithm != nullptr) algorithm_ = std::move(algorithm);
}

bool ScheduleGenerator::set_algorithm(const std::string& name) {
  auto a = sched::AlgorithmRegistry::instance().create(name);
  if (a == nullptr) return false;
  algorithm_ = std::move(a);
  config_.algorithm = name;
  return true;
}

std::string ScheduleGenerator::algorithm_name() const {
  return algorithm_->name();
}

sched::SchedulerInput ScheduleGenerator::build_input() const {
  // All topologies currently assigned are rescheduled together ("Given M
  // topologies...", section IV-C).
  std::vector<sched::TopologyId> topos;
  for (auto id : cluster_.topology_ids()) {
    if (cluster_.coordination().get(id) != nullptr) topos.push_back(id);
  }
  auto input = cluster_.scheduler_input(topos);
  for (auto& e : input.executors) {
    e.demand = db_.executor_demand(e.task);
    e.queue_depth = db_.executor_queue(e.task);
  }
  input.traffic = db_.traffic_snapshot();
  // "C_k can be set to a fraction of its actual capacity" applies to every
  // resource dimension, not just CPU.
  for (auto& n : input.nodes) {
    for (auto& c : n.capacity) c *= config_.capacity_fraction;
  }
  input.gamma = config_.gamma;
  input.queue_pressure_weight = config_.queue_pressure_weight;
  return input;
}

bool ScheduleGenerator::generate_now(bool overload_triggered) {
  return generate_pass(overload_triggered,
                       overload_triggered ? obs::DecisionTrigger::kOverload
                                          : obs::DecisionTrigger::kPeriodic);
}

bool ScheduleGenerator::finish(obs::DecisionRecord rec) {
  const bool published = rec.outcome == obs::DecisionOutcome::kPublished;
  if (!published && config_.trace_decisions) {
    cluster_.trace_log().record(
        {rec.time, trace::EventKind::kScheduleRejected, -1, -1, -1, 0,
         std::string(obs::to_string(rec.outcome)) + ": " + rec.reason});
  }
  cluster_.provenance().record(std::move(rec));
  return published;
}

bool ScheduleGenerator::generate_pass(bool overload_triggered,
                                      obs::DecisionTrigger trigger) {
  obs::DecisionRecord rec;
  rec.time = cluster_.sim().now();
  rec.trigger = trigger;
  rec.algorithm = algorithm_->name();
  rec.min_improvement = config_.min_improvement;

  auto input = build_input();
  rec.executors = static_cast<int>(input.executors.size());
  for (sched::NodeId n = 0;
       n < static_cast<sched::NodeId>(input.nodes.size()); ++n) {
    rec.node_loads.push_back(
        {n, db_.node_load(n), input.node_capacity_mhz(n)});
  }

  // An empty pass (no assigned topologies) is not a generation: counting
  // one would skew the publishes/generations ratio on an idle cluster.
  if (input.executors.empty()) {
    rec.outcome = obs::DecisionOutcome::kEmptyInput;
    rec.reason = "no assigned topologies to schedule";
    return finish(std::move(rec));
  }
  ++generations_;

  auto result = algorithm_->schedule(input);
  rec.count_relaxed = result.count_relaxed;
  rec.capacity_relaxed = result.capacity_relaxed;
  int unplaced = 0;
  for (const auto& e : input.executors) {
    if (!result.assignment.contains(e.task)) ++unplaced;
  }
  if (unplaced > 0) {
    rec.outcome = obs::DecisionOutcome::kIncompleteAssignment;
    rec.reason = std::to_string(unplaced) + " of " +
                 std::to_string(input.executors.size()) +
                 " executors left unplaced by " + algorithm_->name();
    return finish(std::move(rec));
  }

  // Current placement (union over topologies) for comparison.
  sched::Placement current;
  for (const auto& [topo, record] : cluster_.coordination().all()) {
    for (const auto& [task, slot] : record.placement) {
      current.emplace(task, slot);
    }
  }

  // Evaluate the publication gate's inputs whenever a current placement
  // exists — even for overload passes that bypass the gate — so every
  // DecisionRecord carries the traffic comparison it was (or would have
  // been) judged on. Pure arithmetic: no RNG, no events.
  if (!current.empty()) {
    rec.current_traffic = sched::internode_traffic(input, current);
    rec.proposed_traffic =
        sched::internode_traffic(input, result.assignment);
    if (rec.current_traffic > 0.0) {
      rec.improvement =
          (rec.current_traffic - rec.proposed_traffic) / rec.current_traffic;
    }
    rec.nodes_freed = sched::nodes_used(input, current) -
                      sched::nodes_used(input, result.assignment);
    rec.traffic_win =
        rec.proposed_traffic <
        rec.current_traffic * (1.0 - config_.min_improvement);
    rec.consolidation_win =
        rec.nodes_freed >= config_.consolidation_min_nodes_freed &&
        rec.proposed_traffic <=
            rec.current_traffic *
                (1.0 + config_.consolidation_traffic_tolerance);
  }

  if (result.assignment == current) {
    rec.outcome = obs::DecisionOutcome::kNoChange;
    rec.reason = "proposal identical to the current placement";
    return finish(std::move(rec));
  }

  if (!overload_triggered && !current.empty() && !rec.traffic_win &&
      !rec.consolidation_win) {
    rec.outcome = obs::DecisionOutcome::kNoWin;
    rec.reason = "reassignment cost not justified: improvement below "
                 "min_improvement and " +
                 std::to_string(rec.nodes_freed) + " nodes freed < " +
                 std::to_string(config_.consolidation_min_nodes_freed);
    return finish(std::move(rec));
  }

  const auto version = cluster_.nimbus().next_version();
  cluster_.trace_log().record(
      {cluster_.sim().now(), trace::EventKind::kSchedulePublished, -1, -1,
       -1, version,
       algorithm_->name() + ", " +
           std::to_string(sched::nodes_used(input, result.assignment)) +
           " nodes" + (overload_triggered ? ", overload" : "")});
  db_.publish_schedule(result.assignment, version);
  ++publishes_;
  last_publish_time_ = cluster_.sim().now();
  overload_streak_ = 0;
  rec.outcome = obs::DecisionOutcome::kPublished;
  rec.version = version;
  rec.reason = overload_triggered
                   ? "published: overload/recovery pass bypasses hysteresis"
                   : (current.empty() ? "published: first placement"
                                      : (rec.traffic_win
                                             ? "published: traffic win"
                                             : "published: consolidation "
                                               "win"));
  return finish(std::move(rec));
}

void ScheduleGenerator::overload_check() {
  if (!config_.enable_overload_trigger) return;

  // Node failure: any assignment pointing at a dead node must be repaired
  // immediately — no streak requirement, the signal is unambiguous.
  bool dead_assignment = false;
  for (const auto& [topo, record] : cluster_.coordination().all()) {
    for (const auto& [task, slot] : record.placement) {
      if (!cluster_.node_available(cluster_.slot_node(slot))) {
        dead_assignment = true;
        break;
      }
    }
    if (dead_assignment) break;
  }
  if (dead_assignment) {
    generate_pass(/*overload_triggered=*/true,
                  obs::DecisionTrigger::kRecovery);
    return;
  }

  if (!db_.has_samples()) return;
  // Let the system settle after a reassignment before trusting the
  // overload signals again.
  if (cluster_.sim().now() - last_publish_time_ <
      config_.post_reassignment_settle) {
    overload_streak_ = 0;
    return;
  }
  bool overloaded = false;
  for (int n = 0; n < cluster_.num_nodes(); ++n) {
    const double cap = cluster_.node(n).capacity_mhz();
    if (db_.node_load(n) > config_.overload_threshold * cap &&
        db_.node_queue(n) > config_.overload_queue_depth) {
      overloaded = true;
      break;
    }
  }
  if (!overloaded) {
    overload_streak_ = 0;
    return;
  }
  if (++overload_streak_ < config_.overload_consecutive_checks) return;
  const sim::Time now = cluster_.sim().now();
  if (now - last_overload_generation_ < config_.overload_min_interval) {
    return;
  }
  last_overload_generation_ = now;
  ++overload_triggers_;
  cluster_.trace_log().record(
      {now, trace::EventKind::kOverloadTriggered, -1, -1, -1, 0, {}});
  generate_now(/*overload_triggered=*/true);
}

}  // namespace tstorm::core
