// ScheduleGenerator: the component at the heart of T-Storm's architecture
// (Fig. 4 / section IV-C). Independent of Nimbus, it periodically (300 s)
// reads the estimated load information from the MetricsDb, runs the
// current scheduling algorithm over *all* assigned topologies, and
// publishes the resulting executor-to-slot schedule back to the database
// for the custom scheduler to fetch.
//
// Because it is decoupled from Storm's scheduler it supports:
//   - hot-swapping the algorithm at runtime (set_algorithm), and
//   - adjusting parameters like gamma on the fly (set_gamma);
// and because it watches the monitors' node-load estimates, it detects
// overloaded worker nodes and regenerates immediately instead of waiting
// out the period (the recovery behaviour of Figs. 9 and 10).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/config.h"
#include "core/metrics_db.h"
#include "obs/provenance.h"
#include "runtime/cluster.h"
#include "sched/scheduler.h"
#include "sim/simulation.h"

namespace tstorm::core {

class ScheduleGenerator {
 public:
  ScheduleGenerator(runtime::Cluster& cluster, MetricsDb& db,
                    CoreConfig config);
  // Non-copyable and non-movable: the periodic task's callback captures
  // `this`.
  ScheduleGenerator(const ScheduleGenerator&) = delete;
  ScheduleGenerator& operator=(const ScheduleGenerator&) = delete;


  /// Starts the periodic generation loop and the overload watchdog.
  void start();
  void stop();

  /// Runs one generation pass immediately. `overload_triggered` bypasses
  /// the min-improvement hysteresis. Returns true if a new schedule was
  /// published. Every pass — published or rejected — records one
  /// DecisionRecord in the cluster's ProvenanceLog explaining the outcome.
  bool generate_now(bool overload_triggered = false);

  /// --- Hot-swap / on-the-fly tuning. ---
  void set_algorithm(std::unique_ptr<sched::ISchedulingAlgorithm> algorithm);
  /// Registry lookup; returns false for unknown names.
  bool set_algorithm(const std::string& name);
  [[nodiscard]] std::string algorithm_name() const;

  void set_gamma(double gamma) { config_.gamma = gamma; }
  [[nodiscard]] double gamma() const { return config_.gamma; }
  [[nodiscard]] CoreConfig& config() { return config_; }

  /// The exact SchedulerInput a generation pass would run on right now
  /// (estimated demands, measured traffic, capacity-fraction-scaled node
  /// vectors). Pure inspection — no events, no RNG; benches and tools use
  /// it to evaluate placements with the generator's own view of the world.
  [[nodiscard]] sched::SchedulerInput build_input() const;

  /// --- Stats. ---
  [[nodiscard]] std::uint64_t generations() const { return generations_; }
  [[nodiscard]] std::uint64_t publishes() const { return publishes_; }
  [[nodiscard]] std::uint64_t overload_triggers() const {
    return overload_triggers_;
  }

 private:
  void overload_check();
  bool generate_pass(bool overload_triggered, obs::DecisionTrigger trigger);
  /// Records the pass's DecisionRecord (and, with trace_decisions on, a
  /// kScheduleRejected trace event for rejections). Returns "published?".
  bool finish(obs::DecisionRecord rec);

  runtime::Cluster& cluster_;
  MetricsDb& db_;
  CoreConfig config_;
  std::unique_ptr<sched::ISchedulingAlgorithm> algorithm_;
  std::unique_ptr<sim::PeriodicTask> generate_task_;
  std::unique_ptr<sim::PeriodicTask> overload_task_;
  sim::Time last_overload_generation_ = -1e18;
  sim::Time last_publish_time_ = -1e18;
  int overload_streak_ = 0;
  std::uint64_t generations_ = 0;
  std::uint64_t publishes_ = 0;
  std::uint64_t overload_triggers_ = 0;
};

}  // namespace tstorm::core
