// T-Storm control-plane configuration. Defaults are the paper's common
// experimental settings (Table II): alpha = 0.5, 20 s load monitoring,
// 10 s schedule fetching, 300 s schedule generation, plus the section IV-C
// knobs (consolidation factor gamma, capacity fraction, overload
// detection). Every value can be adjusted on the fly.
#pragma once

#include <string>

namespace tstorm::core {

struct CoreConfig {
  /// EWMA estimation coefficient (Table II).
  double alpha = 0.5;

  /// Load monitoring and estimation period, seconds (Table II).
  double monitor_period = 20.0;

  /// Custom-scheduler fetch period, seconds (Table II).
  double fetch_period = 10.0;

  /// Schedule generation period, seconds (Table II).
  double generation_period = 300.0;

  /// Consolidation factor gamma (section IV-C): 1 spreads executors almost
  /// evenly; larger values pack onto fewer worker nodes.
  double gamma = 1.0;

  /// Scheduler-visible capacity as a fraction of physical capacity
  /// ("C_k can be set to a fraction of its actual capacity to prevent
  /// overloading", section IV-C). Applied to every resource dimension.
  double capacity_fraction = 0.85;

  /// MHz of effective load charged per queued envelope when schedulers
  /// account capacity (SchedulerInput::queue_pressure_weight). 0 (default)
  /// reproduces the paper exactly: capacity is CPU load only.
  double queue_pressure_weight = 0.0;

  /// A node whose estimated workload exceeds this fraction of its actual
  /// capacity is considered overloaded. Context switching on a crowded
  /// node wastes a slice of the physical capacity, so sustained consumption
  /// above ~75% of nominal already means the node runs flat out; the generator reacts immediately
  /// instead of waiting for the 300 s period (Figs. 9/10).
  double overload_threshold = 0.70;
  bool enable_overload_trigger = true;

  /// Second overload condition: the node's deepest executor input queue
  /// (EWMA) must also exceed this depth. CPU load alone cannot tell a
  /// deliberately packed node (capacity_fraction allows up to 85 %) from a
  /// saturated one — queues only grow when executors fall behind, so
  /// requiring both signals prevents pack-then-reassign thrashing.
  double overload_queue_depth = 100.0;

  /// The node must stay overloaded for this many consecutive monitor
  /// periods before the generator reacts — transient spikes (a GC pause, a
  /// reassignment) should not trigger a cluster-wide reshuffle. With the
  /// 20 s monitor period this puts detection around one minute after
  /// saturation, matching the paper's observed detection delays.
  int overload_consecutive_checks = 3;

  /// Minimum spacing between overload-triggered generations, seconds.
  double overload_min_interval = 60.0;

  /// Overload triggers are suppressed for this long after any published
  /// schedule: a reassignment halts spouts and migrates queues, which
  /// looks exactly like overload to the monitors until the backlog drains
  /// and the EWMAs flush. Without the settling window a consolidation
  /// reassignment can re-trigger itself indefinitely.
  double post_reassignment_settle = 150.0;

  /// A new schedule is published only if it reduces estimated inter-node
  /// traffic by at least this fraction (hysteresis against thrashing) —
  /// overload-triggered generations bypass this check.
  double min_improvement = 0.05;

  /// ... or if it frees at least this many worker nodes without increasing
  /// inter-node traffic by more than consolidation_traffic_tolerance
  /// (worker-node consolidation is a first-class goal: idle nodes can be
  /// shut down to cut operational cost, sections I/III).
  int consolidation_min_nodes_freed = 2;
  double consolidation_traffic_tolerance = 0.10;

  /// When true, rejected generation passes also surface in the
  /// control-plane trace as kScheduleRejected events. Provenance records
  /// (obs::ProvenanceLog) are always kept regardless; this flag only
  /// controls the trace stream, and is off by default so existing trace
  /// dumps are byte-identical.
  bool trace_decisions = false;

  /// Initial scheduling algorithm (registry name).
  std::string algorithm = "traffic-aware";

  /// Estimation method for loads/traffic: "ewma" (the paper's, using
  /// `alpha`), "sliding-window" (mean of `sliding_window` samples), or
  /// "holt" (double exponential smoothing with `alpha` and `holt_beta`,
  /// predicting one monitor period ahead).
  std::string estimator = "ewma";
  std::size_t sliding_window = 5;
  double holt_beta = 0.3;
};

}  // namespace tstorm::core
