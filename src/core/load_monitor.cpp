#include "core/load_monitor.h"

namespace tstorm::core {

LoadMonitor::LoadMonitor(runtime::Cluster& cluster, MetricsDb& db,
                         sched::NodeId node, double period)
    : cluster_(cluster), db_(db), node_(node), period_(period) {
  task_ = std::make_unique<sim::PeriodicTask>(cluster_.sim(), period,
                                              [this] { sample(); });
}

void LoadMonitor::start(sim::Time phase) { task_->start(phase); }

void LoadMonitor::stop() { task_->stop(); }

void LoadMonitor::sample() {
  period_ = task_->period();
  double node_mhz = 0;
  double max_queue = 0;
  for (runtime::Executor* ex : cluster_.executors_on_node(node_)) {
    // Mega-cycles consumed over the window / window seconds == MHz.
    const double mhz = ex->take_mega_cycles() / period_;
    node_mhz += mhz;
    const auto depth = static_cast<double>(ex->queue_depth());
    max_queue = std::max(max_queue, depth);
    db_.update_executor_load(ex->task(), mhz);
    db_.update_executor_queue(ex->task(), depth);
    // Memory demand: bytes resident in the input queue plus keyed state
    // (stateful bolts), in MiB. Network demand: wire bytes emitted over
    // the window, in Mbit/s. Together with MHz these form the executor's
    // resource-demand vector.
    std::uint64_t resident = ex->queued_bytes();
    if (const auto* store = ex->state_store(); store != nullptr) {
      resident += store->bytes();
    }
    db_.update_executor_memory(ex->task(),
                               static_cast<double>(resident) / (1024.0 * 1024.0));
    db_.update_executor_network(
        ex->task(),
        static_cast<double>(ex->take_sent_bytes()) * 8.0 / period_ / 1e6);
    ex->drain_sent([this, ex](sched::TaskId dst, std::uint64_t count) {
      db_.update_traffic(ex->task(), dst,
                         static_cast<double>(count) / period_);
    });
  }
  last_node_mhz_ = node_mhz;
  db_.update_node_load(node_, node_mhz);
  db_.update_node_queue(node_, max_queue);
}

}  // namespace tstorm::core
