// Convenience wrappers wiring a full system:
//
//   StormSystem  — stock Storm: default round-robin scheduler, immediate
//                  worker kills on reassignment, no monitoring/generation.
//   TStormSystem — the paper's system: load monitors on every node, the
//                  metrics database, the schedule generator (Algorithm 1 by
//                  default, hot-swappable), the custom scheduler, T-Storm's
//                  modified initial assignment, and smooth reassignment.
//
// Benches and examples construct one of these, submit topologies, and run
// the simulation.
#pragma once

#include <memory>
#include <vector>

#include "core/config.h"
#include "core/custom_scheduler.h"
#include "core/load_monitor.h"
#include "core/metrics_db.h"
#include "core/schedule_generator.h"
#include "runtime/cluster.h"
#include "sched/manual.h"
#include "sched/round_robin.h"

namespace tstorm::core {

class StormSystem {
 public:
  explicit StormSystem(sim::Simulation& sim,
                       runtime::ClusterConfig config = {});

  [[nodiscard]] runtime::Cluster& cluster() { return cluster_; }

  /// Submits with Storm's default scheduler.
  sched::TopologyId submit(topo::Topology topology);

  /// Submits with a pinned placement (Section III experiments).
  sched::TopologyId submit_pinned(topo::Topology topology,
                                  sched::Placement placement);

 private:
  runtime::Cluster cluster_;
  sched::RoundRobinScheduler round_robin_;
};

/// Builds the estimator factory selected by `core.estimator`. Throws
/// std::invalid_argument for unknown names.
EstimatorFactory make_estimator_factory(const CoreConfig& core);

class TStormSystem {
 public:
  TStormSystem(sim::Simulation& sim, runtime::ClusterConfig config = {},
               CoreConfig core = {});

  [[nodiscard]] runtime::Cluster& cluster() { return cluster_; }
  [[nodiscard]] MetricsDb& db() { return db_; }
  [[nodiscard]] ScheduleGenerator& generator() { return *generator_; }
  [[nodiscard]] CustomScheduler& scheduler() { return *custom_scheduler_; }
  [[nodiscard]] LoadMonitor& monitor(sched::NodeId node) {
    return *monitors_.at(static_cast<std::size_t>(node));
  }

  /// Submits with T-Storm's modified initial scheduler
  /// (N*w = min(Nu, Nw), one worker per node).
  sched::TopologyId submit(topo::Topology topology);

  /// Submits pinned to an explicit placement — used by the overload
  /// experiments that confine a topology to one worker on one node
  /// (Figs. 9 and 10). The online scheduler still reassigns it later.
  sched::TopologyId submit_pinned(topo::Topology topology,
                                  sched::Placement placement);

 private:
  runtime::Cluster cluster_;
  MetricsDb db_;
  sched::TStormInitialScheduler initial_;
  std::vector<std::unique_ptr<LoadMonitor>> monitors_;
  std::unique_ptr<ScheduleGenerator> generator_;
  std::unique_ptr<CustomScheduler> custom_scheduler_;
};

}  // namespace tstorm::core
