// CustomScheduler: the thin component plugged into Nimbus (as Storm's
// pluggable IScheduler). Every fetch period (10 s, shorter than the 300 s
// generation period so overload recovery is timely) it fetches the current
// schedule from the database and applies it to Nimbus *without computing
// anything itself* — the separation that enables hot-swapping (section
// IV-C).
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "core/metrics_db.h"
#include "runtime/cluster.h"
#include "sim/simulation.h"

namespace tstorm::core {

class CustomScheduler {
 public:
  CustomScheduler(runtime::Cluster& cluster, MetricsDb& db,
                  double fetch_period);
  // Non-copyable and non-movable: the periodic task's callback captures
  // `this`.
  CustomScheduler(const CustomScheduler&) = delete;
  CustomScheduler& operator=(const CustomScheduler&) = delete;


  void start();
  void stop();

  /// One fetch-and-apply pass. Returns true if a new assignment was
  /// applied to Nimbus.
  bool fetch_and_apply();

  [[nodiscard]] sched::AssignmentVersion applied_version() const {
    return applied_version_;
  }
  [[nodiscard]] std::uint64_t applications() const { return applications_; }

 private:
  runtime::Cluster& cluster_;
  MetricsDb& db_;
  std::unique_ptr<sim::PeriodicTask> fetch_task_;
  sched::AssignmentVersion applied_version_ = 0;
  std::uint64_t applications_ = 0;
};

}  // namespace tstorm::core
