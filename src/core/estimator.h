// Pluggable load/traffic estimators. The paper uses EWMA (section IV-B)
// and explicitly notes that "other machine learning based (usually more
// complicated) estimation/prediction methods can be easily integrated" —
// this interface is that integration point. The MetricsDb instantiates one
// estimator per measured quantity via a factory, so swapping the cluster's
// estimation method is one constructor argument.
#pragma once

#include <deque>
#include <functional>
#include <memory>

#include "metrics/ewma.h"

namespace tstorm::core {

class IEstimator {
 public:
  virtual ~IEstimator() = default;

  /// Feeds one sample; returns the updated estimate.
  virtual double update(double sample) = 0;

  /// Current estimate (what the scheduler sees).
  [[nodiscard]] virtual double value() const = 0;
};

using EstimatorFactory = std::function<std::unique_ptr<IEstimator>()>;

/// The paper's estimator: Y = alpha*Y + (1-alpha)*S.
class EwmaEstimator final : public IEstimator {
 public:
  explicit EwmaEstimator(double alpha = 0.5) : ewma_(alpha) {}

  double update(double sample) override { return ewma_.update(sample); }
  [[nodiscard]] double value() const override { return ewma_.value(); }

  [[nodiscard]] double alpha() const { return ewma_.alpha(); }
  void set_alpha(double alpha) { ewma_.set_alpha(alpha); }

 private:
  metrics::Ewma ewma_;
};

/// Mean over the last `window` samples: less smooth than EWMA but with a
/// hard memory horizon (old workload regimes drop out completely).
class SlidingWindowEstimator final : public IEstimator {
 public:
  explicit SlidingWindowEstimator(std::size_t window = 5);

  double update(double sample) override;
  [[nodiscard]] double value() const override;

 private:
  std::size_t window_;
  std::deque<double> samples_;
  double sum_ = 0;
};

/// Holt double exponential smoothing: tracks level and trend and predicts
/// one sampling period ahead — anticipates ramping load instead of
/// trailing it (useful for earlier overload detection).
class HoltTrendEstimator final : public IEstimator {
 public:
  HoltTrendEstimator(double alpha = 0.5, double beta = 0.3)
      : alpha_(alpha), beta_(beta) {}

  double update(double sample) override;
  /// One-step-ahead forecast: level + trend, floored at zero.
  [[nodiscard]] double value() const override;

 private:
  double alpha_;
  double beta_;
  double level_ = 0;
  double trend_ = 0;
  bool seeded_ = false;
};

/// Factories for the built-in estimators.
EstimatorFactory make_ewma_factory(double alpha = 0.5);
EstimatorFactory make_sliding_window_factory(std::size_t window = 5);
EstimatorFactory make_holt_factory(double alpha = 0.5, double beta = 0.3);

}  // namespace tstorm::core
