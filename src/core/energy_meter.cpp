#include "core/energy_meter.h"

#include <algorithm>

namespace tstorm::core {

EnergyMeter::EnergyMeter(runtime::Cluster& cluster, EnergyModelConfig config)
    : cluster_(cluster), config_(config) {
  task_ = std::make_unique<sim::PeriodicTask>(cluster_.sim(), config_.period,
                                              [this] { sample(); });
}

void EnergyMeter::start(sim::Time phase) {
  task_->start(phase > 0 ? phase : config_.period);
}

void EnergyMeter::stop() { task_->stop(); }

void EnergyMeter::sample() {
  const double dt = config_.period;
  metered_time_ += dt;
  for (int n = 0; n < cluster_.num_nodes(); ++n) {
    auto& node = cluster_.node(n);
    if (!node.available()) continue;
    if (cluster_.executors_on_node(n).empty()) continue;  // powered down
    node_seconds_ += dt;
    const double utilization =
        std::min(1.0, static_cast<double>(node.busy_threads()) /
                          static_cast<double>(node.cores()));
    joules_ += (config_.idle_watts + config_.dynamic_watts * utilization) *
               dt;
  }
}

double EnergyMeter::mean_nodes_on() const {
  return metered_time_ > 0 ? node_seconds_ / metered_time_ : 0.0;
}

}  // namespace tstorm::core
