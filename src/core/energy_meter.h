// EnergyMeter: quantifies the operational-cost motivation behind worker
// node consolidation (paper sections I and III: "consolidating worker
// nodes and shutting down idle ones can significantly reduce operational
// costs [such as electricity cost]").
//
// A node is "on" while it hosts at least one live executor; idle nodes are
// assumed powered down. Power draw follows the standard linear server
// model: idle watts plus dynamic watts scaled by CPU utilization.
#pragma once

#include <memory>

#include "runtime/cluster.h"
#include "sim/simulation.h"

namespace tstorm::core {

struct EnergyModelConfig {
  /// Power of a powered-on but idle blade (W).
  double idle_watts = 120.0;
  /// Additional power at 100 % CPU utilization (W).
  double dynamic_watts = 80.0;
  /// Sampling period (seconds).
  double period = 5.0;
};

class EnergyMeter {
 public:
  EnergyMeter(runtime::Cluster& cluster, EnergyModelConfig config = {});
  // Non-copyable and non-movable: the periodic task's callback captures
  // `this`.
  EnergyMeter(const EnergyMeter&) = delete;
  EnergyMeter& operator=(const EnergyMeter&) = delete;


  void start(sim::Time phase = 0.0);
  void stop();

  /// Accumulated node-on time (node-seconds): 10 nodes for 100 s = 1000.
  [[nodiscard]] double node_seconds() const { return node_seconds_; }

  /// Accumulated energy in joules under the linear power model.
  [[nodiscard]] double joules() const { return joules_; }

  /// Convenience: kWh.
  [[nodiscard]] double kwh() const { return joules_ / 3.6e6; }

  /// Average number of powered-on nodes over the metering interval.
  [[nodiscard]] double mean_nodes_on() const;

 private:
  void sample();

  runtime::Cluster& cluster_;
  EnergyModelConfig config_;
  std::unique_ptr<sim::PeriodicTask> task_;
  double node_seconds_ = 0;
  double joules_ = 0;
  double metered_time_ = 0;
};

}  // namespace tstorm::core
