// LoadMonitor: the per-node daemon of section IV-B. Every monitor period
// (20 s) it samples, for each executor thread resident on its node:
//   1) executor workload — CPU consumed during the window, in MHz (the
//      JMX getThreadCpuTime equivalent: the simulator's cycle accounting);
//   2) inter-executor traffic — envelopes sent per destination task; and
//   3) node workload — the sum of its executors' CPU usage;
// then EWMA-updates the MetricsDb.
#pragma once

#include <memory>

#include "core/metrics_db.h"
#include "runtime/cluster.h"
#include "sim/simulation.h"

namespace tstorm::core {

class LoadMonitor {
 public:
  LoadMonitor(runtime::Cluster& cluster, MetricsDb& db, sched::NodeId node,
              double period);
  // Non-copyable and non-movable: the periodic task's callback captures
  // `this`.
  LoadMonitor(const LoadMonitor&) = delete;
  LoadMonitor& operator=(const LoadMonitor&) = delete;


  /// Starts periodic sampling; `phase` staggers the per-node daemons.
  void start(sim::Time phase);
  void stop();

  /// One sampling pass (also callable directly from tests).
  void sample();

  [[nodiscard]] sched::NodeId node() const { return node_; }

  /// Node workload from the most recent sample (instantaneous, pre-EWMA).
  [[nodiscard]] double last_node_mhz() const { return last_node_mhz_; }

  void set_period(double period) { task_->set_period(period); }

 private:
  runtime::Cluster& cluster_;
  MetricsDb& db_;
  sched::NodeId node_;
  double period_;
  double last_node_mhz_ = 0;
  std::unique_ptr<sim::PeriodicTask> task_;
};

}  // namespace tstorm::core
