// MetricsDb: the database of section IV-A. Load monitors write estimates
// of executor workload (MHz), inter-executor traffic (tuples/s) and node
// workload; the schedule generator reads them and publishes the computed
// schedule; the custom scheduler fetches it. A plain in-memory store in
// the simulation (the paper used an external DB for deployment
// flexibility; the data model is the same).
//
// Estimation is pluggable (core/estimator.h): the paper's EWMA
// (Y = alpha*Y + (1-alpha)*sample) is the default; sliding-window and
// Holt-trend estimators implement the "other estimation/prediction
// methods" extension the paper calls future work.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/estimator.h"
#include "sched/types.h"

namespace tstorm::core {

class MetricsDb {
 public:
  /// EWMA estimation with the given alpha (the paper's configuration).
  explicit MetricsDb(double alpha = 0.5)
      : factory_(make_ewma_factory(alpha)) {}

  /// Custom estimation method for every measured quantity.
  explicit MetricsDb(EstimatorFactory factory)
      : factory_(std::move(factory)) {}

  /// Changes the EWMA coefficient of existing and future estimators ("any
  /// scheduling parameters can be adjusted on the fly"). No-op on
  /// non-EWMA estimators.
  void set_alpha(double alpha);

  /// --- Written by load monitors. ---
  void update_executor_load(sched::TaskId task, double mhz_sample);
  /// Input-queue depth of one executor (queue pressure: lets schedulers
  /// distinguish an executor that is merely busy from one falling behind).
  void update_executor_queue(sched::TaskId task, double depth_sample);
  void update_traffic(sched::TaskId src, sched::TaskId dst,
                      double rate_sample);
  /// Resident bytes of one executor (queued tuples + keyed state), MiB —
  /// the memory component of its resource-demand vector.
  void update_executor_memory(sched::TaskId task, double mib_sample);
  /// Emitted wire traffic of one executor, Mbit/s — the network component
  /// of its resource-demand vector.
  void update_executor_network(sched::TaskId task, double mbps_sample);
  void update_node_load(sched::NodeId node, double mhz_sample);
  /// Deepest executor input queue on the node (overload indicator: CPU
  /// load alone cannot distinguish a deliberately packed node from a
  /// saturated one, but queues only grow when executors fall behind).
  void update_node_queue(sched::NodeId node, double depth_sample);

  /// --- Read by the schedule generator. ---
  [[nodiscard]] double executor_load(sched::TaskId task) const;
  [[nodiscard]] double executor_queue(sched::TaskId task) const;
  [[nodiscard]] double executor_memory(sched::TaskId task) const;
  [[nodiscard]] double executor_network(sched::TaskId task) const;
  /// Full estimated demand vector of one executor (CPU MHz, memory MiB,
  /// network Mbps) — what the schedule generator feeds ExecutorSpec.
  [[nodiscard]] sched::ResourceVector executor_demand(
      sched::TaskId task) const {
    return {executor_load(task), executor_memory(task),
            executor_network(task)};
  }
  [[nodiscard]] double node_load(sched::NodeId node) const;
  [[nodiscard]] double node_queue(sched::NodeId node) const;
  [[nodiscard]] std::vector<sched::TrafficEntry> traffic_snapshot() const;
  [[nodiscard]] bool has_samples() const { return !loads_.empty(); }

  void forget_task(sched::TaskId task);

  /// --- Published schedule (generator -> custom scheduler). ---
  void publish_schedule(sched::Placement placement,
                        sched::AssignmentVersion version);
  [[nodiscard]] sched::AssignmentVersion published_version() const {
    return published_version_;
  }
  [[nodiscard]] const sched::Placement& published_schedule() const {
    return published_;
  }

 private:
  static std::uint64_t pair_key(sched::TaskId src, sched::TaskId dst) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
            << 32) |
           static_cast<std::uint32_t>(dst);
  }

  IEstimator& estimator(
      std::unordered_map<std::uint64_t, std::unique_ptr<IEstimator>>& map,
      std::uint64_t key);

  EstimatorFactory factory_;
  std::unordered_map<std::uint64_t, std::unique_ptr<IEstimator>> loads_;
  std::unordered_map<std::uint64_t, std::unique_ptr<IEstimator>> queues_;
  std::unordered_map<std::uint64_t, std::unique_ptr<IEstimator>> node_loads_;
  std::unordered_map<std::uint64_t, std::unique_ptr<IEstimator>> node_queues_;
  std::unordered_map<std::uint64_t, std::unique_ptr<IEstimator>> traffic_;
  std::unordered_map<std::uint64_t, std::unique_ptr<IEstimator>> memories_;
  std::unordered_map<std::uint64_t, std::unique_ptr<IEstimator>> networks_;
  sched::Placement published_;
  sched::AssignmentVersion published_version_ = 0;
};

}  // namespace tstorm::core
