#include "net/network.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace tstorm::net {

const char* to_string(LinkType type) {
  switch (type) {
    case LinkType::kIntraProcess:
      return "intra-process";
    case LinkType::kInterProcess:
      return "inter-process";
    case LinkType::kInterNode:
      return "inter-node";
  }
  return "?";
}

Network::Network(sim::Simulation& sim, NetworkConfig config, int num_nodes)
    : sim_(sim), config_(config), num_nodes_(num_nodes) {
  assert(num_nodes > 0);
  nic_free_.assign(static_cast<std::size_t>(num_nodes), 0.0);
}

std::uint64_t Network::framed_bytes(std::uint64_t payload) const {
  // Header amortized over the average batch size.
  const double header =
      static_cast<double>(config_.header_bytes) /
      std::max(1.0, config_.batch_factor);
  return payload + static_cast<std::uint64_t>(std::ceil(header));
}

void Network::send(int src_node, [[maybe_unused]] int dst_node, LinkType type,
                   std::uint64_t payload_bytes, sim::InlineFn on_delivery,
                   double extra_latency) {
  assert(src_node >= 0 && src_node < num_nodes_);
  assert(dst_node >= 0 && dst_node < num_nodes_);
  assert(type == LinkType::kInterNode || src_node == dst_node);

  auto& st = stats_[static_cast<int>(type)];
  ++st.messages;
  st.bytes += payload_bytes;

  sim::Time delivery = sim_.now();
  switch (type) {
    case LinkType::kIntraProcess:
      delivery += config_.intra_process_latency;
      break;
    case LinkType::kInterProcess: {
      const auto bytes = framed_bytes(payload_bytes);
      delivery += config_.inter_process_latency +
                  static_cast<double>(bytes) * config_.serialization_per_byte +
                  static_cast<double>(bytes) / config_.loopback_bandwidth;
      break;
    }
    case LinkType::kInterNode: {
      const auto bytes = framed_bytes(payload_bytes);
      const double tx = static_cast<double>(bytes) / config_.nic_bandwidth;
      auto& free_at = nic_free_[static_cast<std::size_t>(src_node)];
      const sim::Time start = std::max(sim_.now(), free_at);
      free_at = start + tx;
      delivery = free_at + config_.inter_node_latency +
                 static_cast<double>(bytes) * config_.serialization_per_byte;
      break;
    }
  }
  sim_.schedule_at(delivery + extra_latency, std::move(on_delivery));
}

double Network::estimate_delay(int src_node, LinkType type,
                               std::uint64_t payload_bytes) const {
  switch (type) {
    case LinkType::kIntraProcess:
      return config_.intra_process_latency;
    case LinkType::kInterProcess: {
      const auto bytes = framed_bytes(payload_bytes);
      return config_.inter_process_latency +
             static_cast<double>(bytes) * config_.serialization_per_byte +
             static_cast<double>(bytes) / config_.loopback_bandwidth;
    }
    case LinkType::kInterNode: {
      const auto bytes = framed_bytes(payload_bytes);
      const double tx = static_cast<double>(bytes) / config_.nic_bandwidth;
      const double queue_wait = std::max(
          0.0, nic_free_[static_cast<std::size_t>(src_node)] - sim_.now());
      return queue_wait + tx + config_.inter_node_latency +
             static_cast<double>(bytes) * config_.serialization_per_byte;
    }
  }
  return 0;
}

const LinkStats& Network::stats(LinkType type) const {
  return stats_[static_cast<int>(type)];
}

void Network::reset_stats() {
  for (auto& s : stats_) s = LinkStats{};
}

}  // namespace tstorm::net
