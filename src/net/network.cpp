#include "net/network.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace tstorm::net {

const char* to_string(LinkType type) {
  switch (type) {
    case LinkType::kIntraProcess:
      return "intra-process";
    case LinkType::kInterProcess:
      return "inter-process";
    case LinkType::kInterNode:
      return "inter-node";
  }
  return "?";
}

namespace {

double clamp_nonneg(double v, const char* what) {
  (void)what;
  assert(v >= 0.0 && "NetworkConfig: value must be non-negative");
  return std::max(0.0, v);
}

double clamp_prob(double v, const char* what) {
  (void)what;
  assert(v >= 0.0 && v <= 1.0 &&
         "NetworkConfig: probability must be in [0, 1]");
  return std::clamp(v, 0.0, 1.0);
}

double clamp_positive(double v, double fallback, const char* what) {
  (void)what;
  assert(v > 0.0 && "NetworkConfig: value must be positive");
  return v > 0.0 ? v : fallback;
}

}  // namespace

NetworkConfig validated(NetworkConfig config) {
  config.intra_process_latency =
      clamp_nonneg(config.intra_process_latency, "intra_process_latency");
  config.inter_process_latency =
      clamp_nonneg(config.inter_process_latency, "inter_process_latency");
  config.inter_node_latency =
      clamp_nonneg(config.inter_node_latency, "inter_node_latency");
  config.serialization_per_byte =
      clamp_nonneg(config.serialization_per_byte, "serialization_per_byte");
  config.nic_bandwidth = clamp_positive(
      config.nic_bandwidth, NetworkConfig{}.nic_bandwidth, "nic_bandwidth");
  config.loopback_bandwidth =
      clamp_positive(config.loopback_bandwidth,
                     NetworkConfig{}.loopback_bandwidth, "loopback_bandwidth");
  config.batch_factor = clamp_positive(
      config.batch_factor, NetworkConfig{}.batch_factor, "batch_factor");
  config.intra_process_drop_prob =
      clamp_prob(config.intra_process_drop_prob, "intra_process_drop_prob");
  config.inter_process_drop_prob =
      clamp_prob(config.inter_process_drop_prob, "inter_process_drop_prob");
  config.inter_node_drop_prob =
      clamp_prob(config.inter_node_drop_prob, "inter_node_drop_prob");
  config.control_drop_prob =
      clamp_prob(config.control_drop_prob, "control_drop_prob");
  config.latency_jitter_frac =
      clamp_prob(config.latency_jitter_frac, "latency_jitter_frac");
  return config;
}

Network::Network(sim::Simulation& sim, NetworkConfig config, int num_nodes,
                 std::uint64_t seed)
    : sim_(sim),
      config_(validated(config)),
      num_nodes_(num_nodes),
      rng_(seed) {
  assert(num_nodes > 0);
  nic_free_.assign(static_cast<std::size_t>(num_nodes), 0.0);
}

std::uint64_t Network::framed_bytes(std::uint64_t payload) const {
  // Header amortized over the average batch size.
  const double header =
      static_cast<double>(config_.header_bytes) /
      std::max(1.0, config_.batch_factor);
  return payload + static_cast<std::uint64_t>(std::ceil(header));
}

void Network::set_drop_prob(LinkType type, double prob) {
  prob = clamp_prob(prob, "drop_prob");
  switch (type) {
    case LinkType::kIntraProcess:
      config_.intra_process_drop_prob = prob;
      break;
    case LinkType::kInterProcess:
      config_.inter_process_drop_prob = prob;
      break;
    case LinkType::kInterNode:
      config_.inter_node_drop_prob = prob;
      break;
  }
}

double Network::drop_prob(LinkType type) const {
  switch (type) {
    case LinkType::kIntraProcess:
      return config_.intra_process_drop_prob;
    case LinkType::kInterProcess:
      return config_.inter_process_drop_prob;
    case LinkType::kInterNode:
      return config_.inter_node_drop_prob;
  }
  return 0.0;
}

void Network::set_control_drop_prob(double prob) {
  config_.control_drop_prob = clamp_prob(prob, "control_drop_prob");
}

void Network::set_latency_jitter(double frac) {
  config_.latency_jitter_frac = clamp_prob(frac, "latency_jitter_frac");
}

void Network::add_partition(int a, int b, sim::Time from, sim::Time until) {
  assert(a >= 0 && a < num_nodes_);
  assert(b == kMaster || b == kAnyPeer || (b >= 0 && b < num_nodes_));
  if (until <= from) return;
  prune_partitions();
  partitions_.push_back({a, b, from, until});
}

void Network::isolate(int node, sim::Time from, sim::Time until) {
  add_partition(node, kAnyPeer, from, until);
}

bool Network::partitioned(int a, int b) const {
  const sim::Time now = sim_.now();
  for (const auto& p : partitions_) {
    if (now < p.from || now >= p.until) continue;
    const bool fwd = p.a == a && (p.b == b || p.b == kAnyPeer);
    const bool rev = p.a == b && (p.b == a || p.b == kAnyPeer);
    if (fwd || rev) return true;
  }
  return false;
}

void Network::prune_partitions() {
  if (partitions_.empty()) return;
  const sim::Time now = sim_.now();
  std::erase_if(partitions_,
                [now](const Partition& p) { return p.until <= now; });
}

bool Network::message_lost(int src_node, int dst_node, LinkType type) {
  if (!partitions_.empty()) {
    prune_partitions();
    // Partitions sever machine-to-machine paths only; co-located workers
    // keep talking through local IPC / in-process queues.
    if (type == LinkType::kInterNode && partitioned(src_node, dst_node)) {
      return true;
    }
  }
  const double p = drop_prob(type);
  return p > 0.0 && rng_.bernoulli(p);
}

double Network::jitter_factor() {
  const double j = config_.latency_jitter_frac;
  if (j <= 0.0) return 1.0;
  return 1.0 + j * rng_.uniform(-1.0, 1.0);
}

bool Network::send(int src_node, int dst_node, LinkType type,
                   std::uint64_t payload_bytes, sim::InlineFn on_delivery,
                   double extra_latency) {
  assert(src_node >= 0 && src_node < num_nodes_);
  assert(dst_node >= 0 && dst_node < num_nodes_);
  assert(type == LinkType::kInterNode || src_node == dst_node);

  auto& st = stats_[static_cast<int>(type)];
  ++st.messages;
  st.bytes += payload_bytes;

  if (message_lost(src_node, dst_node, type)) {
    ++st.dropped;
    return false;
  }

  sim::Time delivery = sim_.now();
  switch (type) {
    case LinkType::kIntraProcess:
      delivery += config_.intra_process_latency * jitter_factor();
      break;
    case LinkType::kInterProcess: {
      const auto bytes = framed_bytes(payload_bytes);
      delivery += config_.inter_process_latency * jitter_factor() +
                  static_cast<double>(bytes) * config_.serialization_per_byte +
                  static_cast<double>(bytes) / config_.loopback_bandwidth;
      break;
    }
    case LinkType::kInterNode: {
      const auto bytes = framed_bytes(payload_bytes);
      const double tx = static_cast<double>(bytes) / config_.nic_bandwidth;
      auto& free_at = nic_free_[static_cast<std::size_t>(src_node)];
      const sim::Time start = std::max(sim_.now(), free_at);
      free_at = start + tx;
      delivery = free_at + config_.inter_node_latency * jitter_factor() +
                 static_cast<double>(bytes) * config_.serialization_per_byte;
      break;
    }
  }
  sim_.schedule_at(delivery + extra_latency, std::move(on_delivery));
  return true;
}

bool Network::control_lost(int src_node) {
  assert(src_node >= 0 && src_node < num_nodes_);
  bool lost = false;
  if (!partitions_.empty()) {
    prune_partitions();
    lost = partitioned(src_node, kMaster);
  }
  if (!lost && config_.control_drop_prob > 0.0) {
    lost = rng_.bernoulli(config_.control_drop_prob);
  }
  if (lost) ++control_drops_;
  return lost;
}

double Network::estimate_delay(int src_node, LinkType type,
                               std::uint64_t payload_bytes) const {
  switch (type) {
    case LinkType::kIntraProcess:
      return config_.intra_process_latency;
    case LinkType::kInterProcess: {
      const auto bytes = framed_bytes(payload_bytes);
      return config_.inter_process_latency +
             static_cast<double>(bytes) * config_.serialization_per_byte +
             static_cast<double>(bytes) / config_.loopback_bandwidth;
    }
    case LinkType::kInterNode: {
      const auto bytes = framed_bytes(payload_bytes);
      const double tx = static_cast<double>(bytes) / config_.nic_bandwidth;
      const double queue_wait = std::max(
          0.0, nic_free_[static_cast<std::size_t>(src_node)] - sim_.now());
      return queue_wait + tx + config_.inter_node_latency +
             static_cast<double>(bytes) * config_.serialization_per_byte;
    }
  }
  return 0;
}

const LinkStats& Network::stats(LinkType type) const {
  return stats_[static_cast<int>(type)];
}

void Network::reset_stats() {
  for (auto& s : stats_) s = LinkStats{};
  control_drops_ = 0;
}

}  // namespace tstorm::net
