// Cluster network model. Messages between executors travel over one of
// three link classes whose costs differ by orders of magnitude — the core
// phenomenon behind the paper's Observation 1 (inter-node/inter-process
// traffic significantly hurts processing time):
//
//   intra-process : queue handoff inside one worker (JVM); ~microseconds.
//   inter-process : local IPC between workers on one node; adds
//                   serialization + loopback cost.
//   inter-node    : serialization + NIC egress (FIFO, bandwidth-limited,
//                   shared by all flows leaving the node) + propagation.
//
// The NIC egress queue gives bandwidth contention: many large tuples leaving
// one node queue behind each other, which is what makes spreading a hot
// topology across nodes expensive for 10 KB tuples (Throughput Test).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulation.h"

namespace tstorm::net {

enum class LinkType { kIntraProcess, kInterProcess, kInterNode };

/// Human-readable label, e.g. for stats dumps.
const char* to_string(LinkType type);

struct NetworkConfig {
  /// One-way delivery latencies (seconds) excluding transmission time.
  double intra_process_latency = 5e-6;
  double inter_process_latency = 80e-6;
  double inter_node_latency = 350e-6;

  /// NIC egress bandwidth (bytes/second). 1 Gbps per the paper's cluster.
  double nic_bandwidth = 125.0e6;

  /// Loopback bandwidth for inter-process messages (bytes/second).
  double loopback_bandwidth = 1.25e9;

  /// CPU serialization/deserialization latency per byte (seconds). Applies
  /// to inter-process and inter-node messages only; intra-process handoff
  /// passes object references.
  double serialization_per_byte = 4e-9;

  /// Fixed framing overhead per message (bytes). T-Storm's assignment-ID
  /// header (paper section IV-D) is part of this; the paper argues it is
  /// amortized because many tuples share one message.
  std::uint64_t header_bytes = 48;

  /// Average number of tuples batched per physical message; amortizes
  /// header_bytes and per-message latency (Storm batches transfers).
  double batch_factor = 4.0;
};

/// Per-link-class running totals.
struct LinkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

/// Event-driven network: computes a delivery time for each message and
/// schedules the receiver callback. Single-threaded; owned by the cluster.
class Network {
 public:
  Network(sim::Simulation& sim, NetworkConfig config, int num_nodes);

  /// Sends `payload_bytes` from `src_node` to `dst_node` over the given link
  /// class, invoking `on_delivery` when the message arrives. For intra-node
  /// link classes `src_node == dst_node` is required. `extra_latency` adds
  /// caller-computed delay (e.g. endpoint crowding) to the delivery time.
  /// `on_delivery` is the simulator's inline callback type: keep captures
  /// within sim::InlineFn::kInlineBytes (a handle, not a payload) so the
  /// per-message hot path stays allocation-free.
  void send(int src_node, int dst_node, LinkType type,
            std::uint64_t payload_bytes, sim::InlineFn on_delivery,
            double extra_latency = 0.0);

  /// Computes the one-way delay the next message of this size would see,
  /// without sending (used by tests and capacity planning).
  [[nodiscard]] double estimate_delay(int src_node, LinkType type,
                                      std::uint64_t payload_bytes) const;

  [[nodiscard]] const LinkStats& stats(LinkType type) const;
  [[nodiscard]] const NetworkConfig& config() const { return config_; }
  [[nodiscard]] int num_nodes() const { return num_nodes_; }

  /// Resets counters (not queue state); used between measurement windows.
  void reset_stats();

 private:
  [[nodiscard]] std::uint64_t framed_bytes(std::uint64_t payload) const;

  sim::Simulation& sim_;
  NetworkConfig config_;
  int num_nodes_;
  /// Earliest time each node's NIC egress is free.
  std::vector<sim::Time> nic_free_;
  LinkStats stats_[3];
};

}  // namespace tstorm::net
