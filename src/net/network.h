// Cluster network model. Messages between executors travel over one of
// three link classes whose costs differ by orders of magnitude — the core
// phenomenon behind the paper's Observation 1 (inter-node/inter-process
// traffic significantly hurts processing time):
//
//   intra-process : queue handoff inside one worker (JVM); ~microseconds.
//   inter-process : local IPC between workers on one node; adds
//                   serialization + loopback cost.
//   inter-node    : serialization + NIC egress (FIFO, bandwidth-limited,
//                   shared by all flows leaving the node) + propagation.
//
// The NIC egress queue gives bandwidth contention: many large tuples leaving
// one node queue behind each other, which is what makes spreading a hot
// topology across nodes expensive for 10 KB tuples (Throughput Test).
//
// On top of the delay model sits a deterministic fault model (all off by
// default): per-link-class drop probabilities, multiplicative latency
// jitter, and time-windowed node-pair partitions. Faults are sampled from
// the network's own RNG substream so enabling them never perturbs workload
// or scheduling randomness. Lost messages are counted in LinkStats::dropped
// and surface to callers as send() returning false — the data path turns
// that into a tuple timeout + replay, the control path into a missed
// heartbeat.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.h"
#include "sim/simulation.h"

namespace tstorm::net {

enum class LinkType { kIntraProcess, kInterProcess, kInterNode };

/// Human-readable label, e.g. for stats dumps.
const char* to_string(LinkType type);

struct NetworkConfig {
  /// One-way delivery latencies (seconds) excluding transmission time.
  double intra_process_latency = 5e-6;
  double inter_process_latency = 80e-6;
  double inter_node_latency = 350e-6;

  /// NIC egress bandwidth (bytes/second). 1 Gbps per the paper's cluster.
  double nic_bandwidth = 125.0e6;

  /// Loopback bandwidth for inter-process messages (bytes/second).
  double loopback_bandwidth = 1.25e9;

  /// CPU serialization/deserialization latency per byte (seconds). Applies
  /// to inter-process and inter-node messages only; intra-process handoff
  /// passes object references.
  double serialization_per_byte = 4e-9;

  /// Fixed framing overhead per message (bytes). T-Storm's assignment-ID
  /// header (paper section IV-D) is part of this; the paper argues it is
  /// amortized because many tuples share one message.
  std::uint64_t header_bytes = 48;

  /// Average number of tuples batched per physical message; amortizes
  /// header_bytes and per-message latency (Storm batches transfers).
  double batch_factor = 4.0;

  /// --- Fault model (all zero: the seed's perfect network). ---
  /// Independent per-message loss probability by link class, in [0, 1].
  double intra_process_drop_prob = 0.0;
  double inter_process_drop_prob = 0.0;
  double inter_node_drop_prob = 0.0;

  /// Loss probability of control-plane messages (supervisor heartbeats to
  /// the coordination store), sampled by control_lost(). Kept separate from
  /// inter_node_drop_prob so heartbeat loss (false-positive detection) and
  /// data loss (replay pressure) can be injected independently.
  double control_drop_prob = 0.0;

  /// Multiplicative jitter on the fixed-latency component of a delivery:
  /// latency *= 1 + frac * U(-1, 1). Queueing/transmission terms are not
  /// jittered (they model capacity, not path noise). Must be in [0, 1].
  double latency_jitter_frac = 0.0;
};

/// Debug builds assert on invalid values (negative latencies/probabilities,
/// probabilities > 1, non-positive bandwidths or batch factors); release
/// builds clamp them to the nearest valid value — the same
/// assert-in-debug / reject-in-release pattern as PeriodicTask::set_period.
/// Network's constructor applies this to its config.
[[nodiscard]] NetworkConfig validated(NetworkConfig config);

/// Per-link-class running totals.
struct LinkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  /// Messages lost by the fault model (random drop or partition). Counted
  /// messages include dropped ones.
  std::uint64_t dropped = 0;
};

/// Event-driven network: computes a delivery time for each message and
/// schedules the receiver callback. Single-threaded; owned by the cluster.
class Network {
 public:
  /// Partition peer designating the control-plane endpoint (the machine
  /// hosting Nimbus + the coordination store, outside the worker cluster).
  static constexpr int kMaster = -1;
  /// Wildcard peer: partitions the node from every peer including kMaster.
  static constexpr int kAnyPeer = -2;

  /// `seed` drives the fault model's private RNG substream; two networks
  /// built with the same config/seed drop and jitter identically.
  Network(sim::Simulation& sim, NetworkConfig config, int num_nodes,
          std::uint64_t seed = 0x6e65742d6661756cULL);

  /// Sends `payload_bytes` from `src_node` to `dst_node` over the given link
  /// class, invoking `on_delivery` when the message arrives. For intra-node
  /// link classes `src_node == dst_node` is required. `extra_latency` adds
  /// caller-computed delay (e.g. endpoint crowding) to the delivery time.
  /// `on_delivery` is the simulator's inline callback type: keep captures
  /// within sim::InlineFn::kInlineBytes (a handle, not a payload) so the
  /// per-message hot path stays allocation-free.
  ///
  /// Returns false when the fault model lost the message: `on_delivery`
  /// will never run and the caller owns the cleanup (for data tuples the
  /// tracker timeout eventually replays the root).
  bool send(int src_node, int dst_node, LinkType type,
            std::uint64_t payload_bytes, sim::InlineFn on_delivery,
            double extra_latency = 0.0);

  /// Computes the one-way delay the next message of this size would see,
  /// without sending (used by tests and capacity planning). Ignores faults.
  [[nodiscard]] double estimate_delay(int src_node, LinkType type,
                                      std::uint64_t payload_bytes) const;

  /// --- Fault injection (chaos layer). ---
  /// Runtime overrides of the config's drop probabilities / jitter.
  void set_drop_prob(LinkType type, double prob);
  void set_control_drop_prob(double prob);
  void set_latency_jitter(double frac);
  [[nodiscard]] double drop_prob(LinkType type) const;
  [[nodiscard]] double control_drop_prob() const {
    return config_.control_drop_prob;
  }

  /// Severs traffic between `a` and `b` (either direction) during
  /// [from, until). `b` may be kMaster (heartbeats only) or kAnyPeer
  /// (isolates `a` completely). Expired windows are pruned lazily.
  void add_partition(int a, int b, sim::Time from, sim::Time until);
  /// Convenience: partitions `node` from every peer and from the master.
  void isolate(int node, sim::Time from, sim::Time until);
  /// True if an active partition currently severs a <-> b.
  [[nodiscard]] bool partitioned(int a, int b) const;

  /// Samples the fate of one control-plane message (heartbeat) from
  /// `src_node` to the master endpoint: true = lost (partitioned away or
  /// dropped). Lost control messages are counted in control_drops().
  bool control_lost(int src_node);
  [[nodiscard]] std::uint64_t control_drops() const { return control_drops_; }

  [[nodiscard]] const LinkStats& stats(LinkType type) const;
  [[nodiscard]] const NetworkConfig& config() const { return config_; }
  [[nodiscard]] int num_nodes() const { return num_nodes_; }

  /// Resets counters (not queue state); used between measurement windows.
  void reset_stats();

 private:
  struct Partition {
    int a;
    int b;
    sim::Time from;
    sim::Time until;
  };

  [[nodiscard]] std::uint64_t framed_bytes(std::uint64_t payload) const;
  /// Samples the fault model for one data message; true = lost.
  bool message_lost(int src_node, int dst_node, LinkType type);
  /// Jitter multiplier for one message's fixed-latency component.
  double jitter_factor();
  void prune_partitions();

  sim::Simulation& sim_;
  NetworkConfig config_;
  int num_nodes_;
  /// Earliest time each node's NIC egress is free.
  std::vector<sim::Time> nic_free_;
  LinkStats stats_[3];
  std::uint64_t control_drops_ = 0;
  std::vector<Partition> partitions_;
  sim::Rng rng_;
};

}  // namespace tstorm::net
