#include "flow/flow.h"

#include <string>

namespace tstorm::runtime {

// Defined here (not in cluster.cpp) so tstorm_flow is self-contained: it is
// the only library that needs the name at link time.
const char* to_string(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::kDropNewest:
      return "drop-newest";
    case ShedPolicy::kDropOldest:
      return "drop-oldest";
    case ShedPolicy::kProbabilistic:
      return "probabilistic";
  }
  return "?";
}

}  // namespace tstorm::runtime

namespace tstorm::flow {

FlowController::FlowController(sim::Simulation& sim,
                               const runtime::FlowConfig& config,
                               runtime::CoordinationStore& coordination,
                               trace::TraceLog& trace, std::uint64_t seed)
    : sim_(sim),
      config_(config),
      coordination_(coordination),
      trace_(trace),
      // Dedicated substream: derived from the cluster seed but never shared
      // with it, so probabilistic shedding adds no draws to any other
      // module's stream.
      rng_(seed ^ 0x666c6f772d637472ULL) {}

ShedVictim FlowController::choose_victim() {
  switch (config_.shed_policy) {
    case runtime::ShedPolicy::kDropNewest:
      return ShedVictim::kNewest;
    case runtime::ShedPolicy::kDropOldest:
      return ShedVictim::kOldest;
    case runtime::ShedPolicy::kProbabilistic:
      return rng_.bernoulli(config_.shed_probability) ? ShedVictim::kNewest
                                                      : ShedVictim::kOldest;
  }
  return ShedVictim::kNewest;
}

void FlowController::note_shed(sched::TopologyId topo, sched::TaskId task,
                               sched::NodeId node) {
  ++shed_total_;
  ++shed_by_task_[task];
  shed_window_.add(sim_.now());
  trace_.record({sim_.now(), trace::EventKind::kTupleShed, topo, node, -1, 0,
                 "task=" + std::to_string(task) + " policy=" +
                     runtime::to_string(config_.shed_policy)});
}

void FlowController::on_enqueue(const void* key, sched::TopologyId topo,
                                std::size_t depth) {
  if (!config_.enabled) return;
  if (depth < static_cast<std::size_t>(config_.high_mark())) return;
  if (!over_high_.insert(key).second) return;  // already counted
  auto& state = topologies_[topo];
  if (++state.over_high == 1) throttle_on(topo, state);
}

void FlowController::on_dequeue(const void* key, sched::TopologyId topo,
                                std::size_t depth) {
  if (!config_.enabled) return;
  // Hysteresis: an executor that tripped the high watermark keeps its
  // throttle contribution until it drains below the LOW watermark, not
  // merely below high — otherwise one service completion at the boundary
  // would flap the flag every event.
  if (depth > static_cast<std::size_t>(config_.low_mark())) return;
  if (over_high_.erase(key) == 0) return;
  auto& state = topologies_[topo];
  if (--state.over_high == 0) throttle_off(topo, state);
}

void FlowController::forget(const void* key, sched::TopologyId topo) {
  if (over_high_.erase(key) == 0) return;
  auto it = topologies_.find(topo);
  if (it == topologies_.end()) return;
  if (--it->second.over_high == 0) throttle_off(topo, it->second);
}

bool FlowController::throttled(sched::TopologyId topo) const {
  auto it = topologies_.find(topo);
  return it != topologies_.end() && it->second.over_high > 0;
}

std::uint64_t FlowController::shed_for_task(sched::TaskId task) const {
  auto it = shed_by_task_.find(task);
  return it == shed_by_task_.end() ? 0 : it->second;
}

void FlowController::throttle_on(sched::TopologyId topo, TopoState& state) {
  ++throttle_activations_;
  coordination_.set_backpressure(topo, true);
  trace_.record(
      {sim_.now(), trace::EventKind::kBackpressureOn, topo, -1, -1, 0, ""});
  pause_spouts(topo);
  if (!state.refresher) {
    state.refresher = std::make_unique<sim::PeriodicTask>(
        sim_, config_.throttle_refresh_period,
        [this, topo] { pause_spouts(topo); });
  }
  state.refresher->start(config_.throttle_refresh_period);
}

void FlowController::throttle_off(sched::TopologyId topo, TopoState& state) {
  coordination_.set_backpressure(topo, false);
  trace_.record(
      {sim_.now(), trace::EventKind::kBackpressureOff, topo, -1, -1, 0, ""});
  // Stop re-arming the spout pause; the last pause expires within two
  // refresh periods and the spouts resume on their own. Stopping (rather
  // than letting the task idle forever) also keeps the post-quiesce
  // pending-event audit clean.
  if (state.refresher) state.refresher->stop();
}

void FlowController::pause_spouts(sched::TopologyId topo) {
  // Pause beyond the next refresh tick so coverage is gapless while the
  // flag is set, but expires promptly after throttle-off.
  if (pauser_) pauser_(topo, sim_.now() + 2.0 * config_.throttle_refresh_period);
}

}  // namespace tstorm::flow
