// FlowController: the flow-control subsystem — bounded executor queues,
// Storm-1.x-style backpressure propagation, and last-resort load shedding.
//
// Executors report queue-depth transitions here. When a queue crosses the
// configured high watermark the controller publishes a topology-wide
// throttle flag through the CoordinationStore (the ZooKeeper backpressure
// znode of Storm 1.x) and pauses the topology's spouts via the existing
// pause_spout_until hook, re-arming the pause on a refresh cadence for as
// long as the flag is set. The flag clears only when every contributing
// executor has drained below the low watermark — the hysteresis band keeps
// the signal from flapping on every enqueue/dequeue. Shedding decisions
// (what to do with a tuple arriving at a hard-full queue) are made here
// too, so the probabilistic policy draws from a dedicated RNG substream
// and determinism is preserved: the same seed produces the same shed
// sequence, and a disabled FlowConfig produces no draws, no events and no
// trace entries at all.
//
// The controller never dereferences executors — they identify themselves
// by opaque key and pass their topology/task/node explicitly — so the flow
// layer stays decoupled from the runtime's object graph.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "metrics/timeseries.h"
#include "runtime/config.h"
#include "runtime/coordination.h"
#include "sched/types.h"
#include "sim/rng.h"
#include "sim/simulation.h"
#include "trace/trace.h"

namespace tstorm::flow {

/// Which tuple a hard-full queue sheds.
enum class ShedVictim : std::uint8_t {
  kNewest,  // reject the arriving tuple
  kOldest,  // evict the oldest queued data tuple, admit the arrival
};

class FlowController {
 public:
  FlowController(sim::Simulation& sim, const runtime::FlowConfig& config,
                 runtime::CoordinationStore& coordination,
                 trace::TraceLog& trace, std::uint64_t seed);
  // Non-copyable/movable: refresher tasks capture `this`.
  FlowController(const FlowController&) = delete;
  FlowController& operator=(const FlowController&) = delete;

  [[nodiscard]] const runtime::FlowConfig& config() const { return config_; }
  [[nodiscard]] bool enabled() const { return config_.enabled; }
  [[nodiscard]] int capacity() const { return config_.queue_capacity; }

  /// Installed by the cluster: pauses every live spout executor of `topo`
  /// until the given time (quiet variant of Cluster::pause_spouts).
  void set_spout_pauser(
      std::function<void(sched::TopologyId, sim::Time)> pauser) {
    pauser_ = std::move(pauser);
  }

  /// --- Shedding (executor deliver path, hard-full queues only). ---

  /// Victim selection per the configured policy. kProbabilistic draws from
  /// the controller's private RNG substream.
  [[nodiscard]] ShedVictim choose_victim();

  /// Accounts one shed tuple: per-task and total counters, the 60 s shed
  /// window (shed-rate gauge), and a kTupleShed trace event.
  void note_shed(sched::TopologyId topo, sched::TaskId task,
                 sched::NodeId node);

  /// --- Backpressure (executor queue transitions). ---
  /// `key` identifies the executor instance (opaque; two instances of one
  /// task during reassignment co-existence are tracked independently).
  void on_enqueue(const void* key, sched::TopologyId topo, std::size_t depth);
  void on_dequeue(const void* key, sched::TopologyId topo, std::size_t depth);

  /// Executor shutdown: removes its throttle contribution (may clear the
  /// topology flag).
  void forget(const void* key, sched::TopologyId topo);

  /// Current throttle flag (mirror of the CoordinationStore publication).
  [[nodiscard]] bool throttled(sched::TopologyId topo) const;

  /// --- Stats / gauges. ---
  [[nodiscard]] std::uint64_t shed_total() const { return shed_total_; }
  [[nodiscard]] std::uint64_t shed_for_task(sched::TaskId task) const;
  /// Shed events bucketed into 60 s windows (rate gauge).
  [[nodiscard]] const metrics::WindowedCounter& shed_window() const {
    return shed_window_;
  }
  /// Number of 0->1 throttle transitions observed (== kBackpressureOn
  /// trace events recorded).
  [[nodiscard]] std::uint64_t throttle_activations() const {
    return throttle_activations_;
  }

 private:
  struct TopoState {
    int over_high = 0;  // executors currently above the high watermark
    std::unique_ptr<sim::PeriodicTask> refresher;
  };

  void throttle_on(sched::TopologyId topo, TopoState& state);
  void throttle_off(sched::TopologyId topo, TopoState& state);
  void pause_spouts(sched::TopologyId topo);

  sim::Simulation& sim_;
  runtime::FlowConfig config_;
  runtime::CoordinationStore& coordination_;
  trace::TraceLog& trace_;
  std::function<void(sched::TopologyId, sim::Time)> pauser_;

  /// Private substream: probabilistic shedding never perturbs the main
  /// cluster RNG (workloads, edge ids).
  sim::Rng rng_;

  std::unordered_set<const void*> over_high_;
  std::unordered_map<sched::TopologyId, TopoState> topologies_;
  std::unordered_map<sched::TaskId, std::uint64_t> shed_by_task_;
  std::uint64_t shed_total_ = 0;
  std::uint64_t throttle_activations_ = 0;
  metrics::WindowedCounter shed_window_{60.0};
};

}  // namespace tstorm::flow
