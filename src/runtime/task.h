// Task bookkeeping: the cluster assigns globally unique task ids across all
// submitted topologies (as Nimbus does) and remembers which component each
// task instantiates.
#pragma once

#include "sched/types.h"
#include "topo/topology.h"

namespace tstorm::runtime {

struct TaskInfo {
  sched::TaskId task = -1;
  sched::TopologyId topology = -1;
  /// Points into the Topology owned by the cluster; stable for the
  /// cluster's lifetime.
  const topo::ComponentDef* component = nullptr;
  /// Index of this task within its component [0, parallelism).
  int index = 0;

  [[nodiscard]] bool is_spout() const {
    return component->kind == topo::ComponentKind::kSpout;
  }
  [[nodiscard]] bool is_bolt() const {
    return component->kind == topo::ComponentKind::kBolt;
  }
  [[nodiscard]] bool is_acker() const {
    return component->kind == topo::ComponentKind::kAcker;
  }
};

}  // namespace tstorm::runtime
