// Cluster configuration. Defaults model the paper's testbed: 10 IBM blade
// servers, each with two dual-core 2.0 GHz Xeon CPUs (4 cores -> 4 slots,
// 8000 MHz capacity), connected by a 1 Gbps network (NetworkConfig), with
// Storm 0.8.2 timing constants (10 s supervisor sync, 30 s tuple timeout).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/network.h"

namespace tstorm::runtime {

/// Per-node hardware override for heterogeneous clusters ("different
/// worker nodes may have different numbers of slots", paper section II).
/// Memory and NIC capacity feed the scheduler's resource vector; they do
/// not constrain the simulation itself (the network fault model has its
/// own bandwidth), so resource-blind runs behave exactly as before.
struct NodeSpec {
  int slots = 4;
  int cores = 4;
  double per_core_mhz = 2000.0;
  double memory_mib = 16384.0;
  double network_mbps = 1000.0;
};

/// A run of identical nodes — the compact way to describe a heterogeneous
/// fleet ("8 small + 2 big"). validated() expands ClusterConfig::node_groups
/// into the flat per-node list.
struct NodeGroup {
  int count = 0;
  NodeSpec spec;
};

/// What to do with a data tuple arriving at a hard-full executor queue.
/// Control messages (acks, emit signals, ticks, replays) are never shed:
/// dropping them would wedge the ack protocol instead of degrading it.
enum class ShedPolicy : std::uint8_t {
  /// Reject the arriving tuple (tail drop, Storm's receive-queue default).
  kDropNewest,
  /// Evict the oldest queued data tuple to admit the new one (freshness
  /// wins — the evicted tuple was closest to its timeout anyway).
  kDropOldest,
  /// With probability shed_probability reject the arrival, otherwise evict
  /// the oldest (randomized tail/head mix; uses a dedicated RNG substream
  /// so enabling it never perturbs workload randomness).
  kProbabilistic,
};

const char* to_string(ShedPolicy policy);

/// --- Flow control: bounded queues, backpressure, load shedding. ---
/// Disabled by default; with `enabled == false` the runtime's behaviour
/// (and its event/RNG sequence) is bit-identical to a build without flow
/// control. When enabled:
///   * every executor input queue is bounded at queue_capacity *data*
///     envelopes (control messages are always admitted — they are tiny and
///     shedding them would break the ack protocol, not relieve overload);
///   * an executor whose queue crosses high_watermark publishes a
///     topology-wide throttle flag through the CoordinationStore
///     (Storm-1.x style backpressure znode); spouts of that topology are
///     paused via pause_spout_until and stay paused, refreshed every
///     throttle_refresh_period, until every executor contributing to the
///     flag has drained below low_watermark (hysteresis: one queue cannot
///     flap the signal per event);
///   * a tuple arriving at a hard-full queue is shed per shed_policy,
///     counted under DropCause::kLoadShed and traced as kTupleShed.
struct FlowConfig {
  bool enabled = false;

  /// Hard cap on queued data envelopes per executor.
  int queue_capacity = 512;

  /// Throttle-on threshold as a fraction of queue_capacity.
  double high_watermark = 0.8;

  /// Throttle-off threshold as a fraction of queue_capacity; must be
  /// strictly below high_watermark for the hysteresis band to exist.
  double low_watermark = 0.4;

  /// While a topology is throttled its spouts are re-paused (for twice
  /// this period) on this cadence; after throttle-off they resume within
  /// at most two periods.
  double throttle_refresh_period = 0.05;

  ShedPolicy shed_policy = ShedPolicy::kDropNewest;

  /// kProbabilistic only: probability the arriving tuple (rather than the
  /// oldest queued one) is the victim.
  double shed_probability = 0.5;

  [[nodiscard]] int high_mark() const {
    return static_cast<int>(static_cast<double>(queue_capacity) *
                            high_watermark);
  }
  [[nodiscard]] int low_mark() const {
    return static_cast<int>(static_cast<double>(queue_capacity) *
                            low_watermark);
  }
};

/// --- Observability: schedule provenance + sampled tuple tracing. ---
/// Provenance recording is always on (it is passive bookkeeping — no RNG,
/// no simulation events). Tuple tracing is off by default; its sampling
/// decisions draw from a private RNG substream, so enabling it never
/// perturbs workload randomness, and with sample_rate == 0 the collector
/// is fully inert.
struct ObsConfig {
  /// Fraction of root emissions traced end to end ([0,1]; 0 disables).
  double tuple_sample_rate = 0.0;

  /// Scheduling DecisionRecords retained (ring buffer).
  std::size_t provenance_capacity = 1024;

  /// Finished root traces retained (ring buffer).
  std::size_t tuple_trace_capacity = 2048;
};

/// --- Stateful operators: barrier checkpoints + restore-on-reschedule. ---
/// Disabled by default; with `enabled == false` the runtime's behaviour
/// (and its event/RNG sequence) is bit-identical to a build without the
/// state subsystem. When enabled:
///   * bolts of components marked BoltDecl::stateful(true) get a
///     runtime-managed state::StateStore that survives reassignment;
///   * a coordinator injects checkpoint barriers at the spouts every
///     checkpoint_interval; bolts align barriers across their input
///     channels, stateful ones snapshot their store to a simulated durable
///     service (a dedicated storage pseudo-node on the network, so writes
///     pay latency/bandwidth and can be partitioned away);
///   * acks at stateful bolts are deferred until the covering checkpoint
///     round completes, and replayed duplicates have their state effects
///     suppressed through per-task dedup sets (DropCause::kStateDedup)
///     while still re-emitting their children (delivery downstream stays
///     at-least-once) — together: a tree is acked only once its updates
///     are durable, and re-applied never.
struct StateConfig {
  bool enabled = false;

  /// Coordinator round period (seconds): how often a new round *starts*.
  double checkpoint_interval = 5.0;

  /// Abort horizon (seconds): a round still open this long after it
  /// started is aborted by the next tick and superseded. Must exceed the
  /// interval — barriers ride the data path, so under queue backlog a
  /// round can take longer than one interval, and aborting it at the next
  /// tick would mean no round ever completes (with checkpoint-gated acks
  /// that is a livelock: acks wait on a commit, trees time out, replays
  /// deepen the backlog). 0 resolves to 3x checkpoint_interval.
  double checkpoint_timeout = 0;

  /// Durable-service write latency (seconds) added to each snapshot write
  /// on top of network transmission, and read latency paid by a restoring
  /// executor before it serves data.
  double store_write_latency = 2e-3;
  double store_read_latency = 5e-3;

  /// Restore read bandwidth (bytes/s): rehydration time scales with
  /// snapshot size.
  double store_read_bandwidth = 250e6;

  /// CPU cost (mega-cycles) of processing one barrier at a bolt.
  double barrier_cost_mc = 0.01;

  /// Dedup entries untouched for longer than
  ///   dedup_horizon_factor * (1 + late_ack_grace_factor) * tuple_timeout
  /// are swept at checkpoint time. Duplicates refresh their entry, so the
  /// horizon only needs to cover the gap between consecutive attempts of
  /// one tree (timeout + backoff + redelivery), not its whole lifetime.
  double dedup_horizon_factor = 2.0;
};

struct ClusterConfig {
  int num_nodes = 10;
  int slots_per_node = 4;
  int cores_per_node = 4;
  double per_core_mhz = 2000.0;

  /// Homogeneous memory / NIC capacity per node (scheduler-visible only;
  /// see NodeSpec). Overridden per node by `nodes` / `node_groups`.
  double memory_mib_per_node = 16384.0;
  double network_mbps_per_node = 1000.0;

  /// Non-empty => heterogeneous cluster: one NodeSpec per node (overrides
  /// num_nodes/slots_per_node/cores_per_node/per_core_mhz above).
  std::vector<NodeSpec> nodes;

  /// Compact heterogeneous-fleet form: runs of identical nodes, expanded
  /// into `nodes` by validated(). Mutually exclusive with a non-empty
  /// `nodes` (groups win; debug builds assert).
  std::vector<NodeGroup> node_groups;

  net::NetworkConfig network;

  /// JVM worker spawn time (seconds).
  double worker_start_delay = 2.0;

  /// Supervisors poll ZooKeeper for new assignments every 10 s (section
  /// IV-D).
  double supervisor_sync_period = 10.0;

  /// Tuples not fully acked within this window fail and may be replayed
  /// (Storm's default of 30 s, section II).
  double tuple_timeout = 30.0;

  /// Maximum automatic replays of a failed root tuple (0 disables replay).
  int max_replays = 3;

  /// --- Replay backoff. ---
  /// A failed root is re-emitted after
  ///   min(replay_backoff_base * 2^attempt, replay_backoff_max)
  ///     * (1 + replay_backoff_jitter * U[0,1))
  /// seconds instead of immediately, so a node failure does not produce a
  /// synchronized replay storm into the recovering bolts. Set
  /// replay_backoff_base = 0 for the old immediate-replay behaviour.
  double replay_backoff_base = 1.0;
  double replay_backoff_max = 60.0;
  double replay_backoff_jitter = 0.1;

  /// A failed root's tracking entry is kept for late-ack recording for
  /// grace_factor * tuple_timeout after the failure (the paper's Fig. 3
  /// reports processing times far beyond the 30 s timeout, so late
  /// completions must stay observable), then dropped to bound memory.
  double late_ack_grace_factor = 6.0;

  /// --- Self-healing control plane (heartbeats + failure detection). ---
  /// When true, Nimbus runs a failure detector: supervisors publish
  /// periodic heartbeats through the coordination store, nodes that miss
  /// heartbeats for node_timeout are declared dead (trace
  /// kNodeDeclaredDead), their topologies are rescheduled onto surviving
  /// nodes automatically, and nodes whose heartbeats resume are declared
  /// alive again. Off by default: the seed's benches deliberately contrast
  /// "nobody reschedules" stock Storm against T-Storm's generator repair.
  bool failure_detection = false;

  /// Supervisor heartbeat publication period (Storm supervisors beat every
  /// few seconds). Heartbeats are published whether or not the detector
  /// runs, and traverse the network fault model's control path — lossy
  /// links can cause (and heal) false-positive detections.
  double heartbeat_period = 3.0;

  /// Nimbus declares a node dead after this long without a heartbeat (the
  /// nimbus.task.timeout.secs analog).
  double node_timeout = 12.0;

  /// Period of the Nimbus detector sweep.
  double monitor_period = 4.0;

  /// Service-time inflation per crowding thread (see crowd model below):
  /// models context switching (paper Observation 1 mentions context
  /// switching as part of the spreading penalty).
  double context_switch_coeff = 0.008;

  /// --- Worker-process crowding model. ---
  /// Every running worker (JVM) contributes this many overhead threads
  /// (transfer/receiver/heartbeat/GC) to its node. Threads beyond the core
  /// count make up the node's "crowding".
  double worker_overhead_threads = 2.8;

  /// Additional latency per crowding thread (seconds), applied to every
  /// message that crosses a process boundary, at both the sending and the
  /// receiving node. This is the first-order cost of running many workers
  /// per node that T-Storm's worker consolidation removes (the 9.25 ms ->
  /// 0.99 ms drop of Fig. 5(a) while still using all 10 nodes).
  double crowd_latency_coeff = 0.15e-3;

  /// --- T-Storm smooth reassignment (section IV-D). ---
  /// When true: new workers start before old ones stop, old workers drain
  /// for shutdown_delay, spouts halt spout_halt_delay, and per-slot
  /// dispatchers route in-flight tuples by assignment ID. When false:
  /// stock Storm behaviour (affected workers are killed immediately and
  /// queued tuples are lost).
  bool smooth_reassignment = false;

  /// Delay before an old worker is shut down (2x the supervisor check
  /// period in the paper).
  double shutdown_delay = 20.0;

  /// Additional halt applied to spout executors until bolts are ready.
  double spout_halt_delay = 10.0;

  /// CPU cost (mega-cycles) of processing one ack message in an acker
  /// executor, and of spout control handling.
  double acker_cost_mc = 0.02;
  double spout_control_cost_mc = 0.01;

  /// Flow control (bounded queues + backpressure + shedding); off by
  /// default so existing runs are bit-identical.
  FlowConfig flow;

  /// Observability (schedule provenance + sampled tuple tracing); tracing
  /// off by default so existing runs are bit-identical.
  ObsConfig obs;

  /// Stateful operators (keyed state + barrier checkpoints + restore);
  /// off by default so existing runs are bit-identical.
  StateConfig state;

  /// RNG seed for the whole simulation.
  std::uint64_t seed = 42;

  [[nodiscard]] double node_capacity_mhz() const {
    return static_cast<double>(cores_per_node) * per_core_mhz;
  }
  [[nodiscard]] int total_slots() const { return num_nodes * slots_per_node; }
};

/// Sanity-checks a ClusterConfig: node/slot/core counts must be positive,
/// delays and backoffs non-negative, periods and timeouts positive. Debug
/// builds assert on violations; release builds clamp to the nearest valid
/// value (same pattern as PeriodicTask::set_period and net::validated).
/// Cluster's constructor applies this, so every running cluster has a
/// well-formed config.
[[nodiscard]] ClusterConfig validated(ClusterConfig config);

}  // namespace tstorm::runtime
