#include "runtime/worker.h"

#include <limits>

#include <cassert>

#include "runtime/cluster.h"

namespace tstorm::runtime {

const char* to_string(WorkerState s) {
  switch (s) {
    case WorkerState::kStarting:
      return "starting";
    case WorkerState::kRunning:
      return "running";
    case WorkerState::kDraining:
      return "draining";
    case WorkerState::kDead:
      return "dead";
  }
  return "?";
}

Worker::Worker(Cluster& cluster, sched::TopologyId topology,
               sched::SlotIndex slot, sched::AssignmentVersion version,
               std::vector<sched::TaskId> tasks)
    : cluster_(cluster),
      topology_(topology),
      slot_(slot),
      node_id_(cluster.slot_node(slot)),
      version_(version),
      tasks_(std::move(tasks)) {}

Worker::~Worker() {
  if (state_ != WorkerState::kDead) stop();
}

void Worker::start(sim::Time delay, sim::Time spout_halt_delay) {
  assert(state_ == WorkerState::kStarting);
  pending_event_ = cluster_.sim().schedule_after(
      delay, [this, spout_halt_delay] { activate(spout_halt_delay); });
}

void Worker::activate(sim::Time spout_halt_delay) {
  pending_event_ = sim::kInvalidEvent;
  if (state_ != WorkerState::kStarting) return;
  state_ = WorkerState::kRunning;
  cluster_.node(node_id()).worker_started();
  cluster_.trace_log().record({cluster_.sim().now(),
                               trace::EventKind::kWorkerStarted, topology_,
                               node_id(), slot_, version_,
                               std::to_string(tasks_.size()) + " tasks"});
  for (sched::TaskId t : tasks_) {
    const TaskInfo& info = cluster_.task_info(t);
    std::unique_ptr<Executor> ex;
    switch (info.component->kind) {
      case topo::ComponentKind::kSpout:
        ex = std::make_unique<SpoutExecutor>(cluster_, *this, info);
        break;
      case topo::ComponentKind::kBolt:
        ex = std::make_unique<BoltExecutor>(cluster_, *this, info);
        break;
      case topo::ComponentKind::kAcker:
        ex = std::make_unique<AckerExecutor>(cluster_, *this, info);
        break;
    }
    executors_.push_back(std::move(ex));
  }
  for (auto& ex : executors_) ex->start();
  if (spout_halt_delay > 0) {
    const sim::Time until = cluster_.sim().now() + spout_halt_delay;
    for (auto& ex : executors_) ex->pause_spout_until(until);
  }
}

void Worker::drain_then_stop(sim::Time delay) {
  if (state_ == WorkerState::kStarting) {
    // Never activated: nothing to drain.
    stop();
    return;
  }
  if (state_ != WorkerState::kRunning) return;
  state_ = WorkerState::kDraining;
  cluster_.trace_log().record({cluster_.sim().now(),
                               trace::EventKind::kWorkerDraining, topology_,
                               node_id(), slot_, version_, {}});
  // A draining worker must not originate new root tuples.
  for (auto& ex : executors_) {
    ex->pause_spout_until(std::numeric_limits<sim::Time>::max());
  }
  pending_event_ =
      cluster_.sim().schedule_after(delay, [this] { stop(); });
}

void Worker::stop() {
  if (state_ == WorkerState::kDead) return;
  if (pending_event_ != sim::kInvalidEvent) {
    cluster_.sim().cancel(pending_event_);
    pending_event_ = sim::kInvalidEvent;
  }
  const bool was_active = state_ == WorkerState::kRunning ||
                          state_ == WorkerState::kDraining;
  for (auto& ex : executors_) ex->shutdown();
  executors_.clear();
  if (was_active) {
    cluster_.node(node_id()).worker_finished();
    cluster_.trace_log().record({cluster_.sim().now(),
                                 trace::EventKind::kWorkerStopped, topology_,
                                 node_id(), slot_, version_, {}});
  }
  state_ = WorkerState::kDead;
}

void Worker::update_version(sched::AssignmentVersion version) {
  version_ = version;
}

}  // namespace tstorm::runtime
