// TupleTracker: registry of in-flight root tuples. Implements the
// guaranteed-message-processing contract around the acker protocol:
// registers each spout emission, arms the 30 s timeout, records
// completions/failures into the CompletionRecorder, and requests replays of
// failed tuples (bounded attempts).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "metrics/completion.h"
#include "sched/types.h"
#include "sim/simulation.h"
#include "topo/tuple.h"

namespace tstorm::runtime {

class Cluster;

class TupleTracker {
 public:
  TupleTracker(Cluster& cluster, metrics::CompletionRecorder& recorder);

  /// Registers a freshly emitted root tuple and arms its timeout. The
  /// tuple is retained for replay. Returns nothing; the caller generated
  /// root_id (it is also the acking key).
  void register_root(std::uint64_t root_id, sched::TaskId spout_task,
                     std::shared_ptr<const topo::Tuple> tuple, int attempt);

  /// Called when the spout receives kAckComplete for root_id. Records
  /// completion (late if the timeout already fired) and releases state.
  void on_ack_complete(std::uint64_t root_id);

  /// Unacked root tuples for a spout task (drives max_pending).
  [[nodiscard]] int pending(sched::TaskId spout_task) const;

  /// All live (unacked, not-yet-failed) roots.
  [[nodiscard]] std::size_t in_flight() const { return in_flight_; }

  [[nodiscard]] metrics::CompletionRecorder& recorder() { return recorder_; }

 private:
  void on_timeout(std::uint64_t root_id);

  struct Entry {
    sched::TaskId spout_task = -1;
    sim::Time emit_time = 0;
    std::shared_ptr<const topo::Tuple> tuple;
    int attempt = 0;
    sim::EventId timeout_event = sim::kInvalidEvent;
    bool failed = false;
  };

  Cluster& cluster_;
  metrics::CompletionRecorder& recorder_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::unordered_map<sched::TaskId, int> pending_;
  std::size_t in_flight_ = 0;
};

}  // namespace tstorm::runtime
