// TupleTracker: registry of in-flight root tuples. Implements the
// guaranteed-message-processing contract around the acker protocol:
// registers each spout emission, arms the 30 s timeout, records
// completions/failures into the CompletionRecorder, and requests replays of
// failed tuples (bounded attempts, exponential backoff with seeded jitter
// so correlated failures do not produce synchronized replay storms).
#pragma once

#include <cstdint>

#include "metrics/completion.h"
#include "runtime/envelope.h"
#include "sched/types.h"
#include "sim/flat_map.h"
#include "sim/rng.h"
#include "sim/simulation.h"
#include "topo/tuple.h"

namespace tstorm::runtime {

class Cluster;

class TupleTracker {
 public:
  TupleTracker(Cluster& cluster, metrics::CompletionRecorder& recorder);

  /// Registers a freshly emitted root tuple and arms its timeout. The
  /// tuple is retained for replay (one refcount bump, no copy). Returns
  /// nothing; the caller generated root_id (it is also the acking key).
  /// `uid` is the tree's stable exactly-once lineage id (the attempt-0
  /// root id); 0 defaults it to root_id.
  void register_root(std::uint64_t root_id, sched::TaskId spout_task,
                     topo::TupleRef tuple, int attempt,
                     std::uint64_t uid = 0);

  /// Takes back a kReplay envelope that was queued at a dying executor
  /// (state mode only) and re-dispatches it after a short delay, so worker
  /// churn cannot terminally strand a tree that replay would have saved.
  void requeue_replay(Envelope env);

  /// Called when the spout receives kAckComplete for root_id. Records
  /// completion (late if the timeout already fired) and releases state.
  void on_ack_complete(std::uint64_t root_id);

  /// True while root_id has a tracking entry (live, or failed and inside
  /// its late-ack grace window). Spouts re-draw colliding ids against
  /// this, so a fresh registration can never overwrite tracked state.
  [[nodiscard]] bool contains(std::uint64_t root_id) const {
    return entries_.contains(root_id);
  }

  /// Unacked root tuples for a spout task (drives max_pending).
  [[nodiscard]] int pending(sched::TaskId spout_task) const;

  /// Spout tasks with a nonzero pending count. Entries are erased when
  /// their count returns to zero, so long-lived clusters cycling through
  /// many topologies do not accumulate dead per-spout slots.
  [[nodiscard]] std::size_t pending_spout_entries() const {
    return pending_.size();
  }

  /// All live (unacked, not-yet-failed) roots.
  [[nodiscard]] std::size_t in_flight() const { return in_flight_; }

  /// --- Conservation accounting (chaos auditor). ---
  /// Total register_root() calls (every attempt counts). At any instant
  ///   total_registered == on-time completions + failures + in_flight
  /// must hold; the auditor checks it.
  [[nodiscard]] std::uint64_t total_registered() const {
    return total_registered_;
  }
  /// Replays the tracker decided to schedule (recorded at re-dispatch).
  /// replays_dropped counts replay requests whose spout had no live
  /// instance at dispatch time — the root is terminally failed.
  [[nodiscard]] std::uint64_t replays_dropped() const {
    return replays_dropped_;
  }
  /// Tracking entries currently held (live + failed-awaiting-late-ack).
  /// After a quiesce window of (1 + late_ack_grace_factor) * tuple_timeout
  /// with spouts silent this must reach zero — a nonzero value is a leak.
  [[nodiscard]] std::size_t tracked_entries() const {
    return entries_.size();
  }

  /// Backoff delay before replaying attempt `attempt` (exposed for tests;
  /// deterministic given the tracker's RNG state).
  [[nodiscard]] double backoff_delay(int attempt) const;

  [[nodiscard]] metrics::CompletionRecorder& recorder() { return recorder_; }

 private:
  void on_timeout(std::uint64_t root_id, std::uint64_t epoch);
  /// `record=false` on retries/requeues: the replay was already counted at
  /// its first dispatch.
  void dispatch_replay(sched::TaskId spout_task, topo::TupleRef tuple,
                       int attempt, std::uint64_t uid, bool record = true);
  /// Delay before a retry/requeue re-dispatch.
  [[nodiscard]] double retry_delay() const;

  struct Entry {
    sched::TaskId spout_task = -1;
    sim::Time emit_time = 0;
    topo::TupleRef tuple;
    int attempt = 0;
    /// Stable tree uid across attempts (exactly-once lineage).
    std::uint64_t uid = 0;
    sim::EventId timeout_event = sim::kInvalidEvent;
    bool failed = false;
    /// Registration generation. Timeout and grace-erase closures carry the
    /// epoch they were armed for and no-op on mismatch, so even a forced
    /// re-registration of the same root id (contains() makes it impossible
    /// through the spout path) cannot let a stale closure double-count or
    /// prematurely erase the new entry.
    std::uint64_t epoch = 0;
  };

  Cluster& cluster_;
  metrics::CompletionRecorder& recorder_;
  /// Flat maps: per-root insert/erase cycles reuse plateaued capacity, so
  /// the steady-state tracking churn performs no heap allocation. Root
  /// ids are never 0 and task ids never -1 (the empty-slot sentinels).
  sim::FlatMap<std::uint64_t, Entry, 0> entries_;
  sim::FlatMap<sched::TaskId, int, -1> pending_;
  std::size_t in_flight_ = 0;
  std::uint64_t next_epoch_ = 0;
  std::uint64_t total_registered_ = 0;
  std::uint64_t replays_dropped_ = 0;
  /// Private substream for backoff jitter: replay scheduling never
  /// perturbs the cluster's main RNG stream.
  mutable sim::Rng rng_;
};

}  // namespace tstorm::runtime
