// Supervisor: the per-node daemon. Polls the coordination store every
// sync period (10 s, Table II), publishes liveness heartbeats to it every
// heartbeat period (feeding Nimbus's failure detector; heartbeats traverse
// the network fault model's control path, so lossy links starve the
// detector), starts/stops/restarts workers to match the published
// assignment, and implements both reassignment styles:
//   Storm:   kill affected workers immediately; replacements start after
//            the JVM spawn delay; in-flight tuples are lost.
//   T-Storm: start replacements first, drain old workers for
//            shutdown_delay, halt spouts, and let the dispatcher route by
//            assignment version (section IV-D).
// Also restarts dead workers (fault tolerance, section II).
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "runtime/worker.h"
#include "sim/simulation.h"

namespace tstorm::runtime {

class Cluster;

class Supervisor {
 public:
  Supervisor(Cluster& cluster, sched::NodeId node);

  /// Starts the periodic sync and heartbeat loops; `phase` staggers
  /// supervisors so they do not all sync at the same instant.
  void start(sim::Time phase);

  /// Forces an immediate reconciliation (tests).
  void sync();

  /// Publishes one liveness heartbeat into the coordination store, unless
  /// the machine is down or the network fault model loses the message.
  void publish_heartbeat();

  [[nodiscard]] sched::NodeId node() const { return node_; }

  /// Worker currently bound to a port (may be starting); nullptr if none.
  [[nodiscard]] Worker* worker_at(int port);

  /// Kills the worker at `port` (failure injection). Returns false if no
  /// worker is there. The supervisor restarts it on its next sync.
  bool kill_worker(int port);

  /// Node failure / recovery: an inactive supervisor kills every worker
  /// (the machine is gone) and stops syncing until reactivated.
  void set_active(bool active);
  [[nodiscard]] bool active() const { return active_; }

  [[nodiscard]] const std::vector<std::unique_ptr<Worker>>& draining() const {
    return draining_;
  }

 private:
  void retire(std::unique_ptr<Worker> worker);

  Cluster& cluster_;
  sched::NodeId node_;
  std::map<int, std::unique_ptr<Worker>> workers_;  // port -> current worker
  std::vector<std::unique_ptr<Worker>> draining_;
  std::unique_ptr<sim::PeriodicTask> sync_task_;
  std::unique_ptr<sim::PeriodicTask> heartbeat_task_;
  bool active_ = true;
  /// Fingerprint of the published assignments at the last full sync; when
  /// unchanged (and no worker is dead or draining) the sync is a no-op, so
  /// the periodic rebuild of the desired-state maps — the last steady-state
  /// allocation source in the control plane — is skipped entirely.
  std::uint64_t sync_fingerprint_ = 0;
};

}  // namespace tstorm::runtime
