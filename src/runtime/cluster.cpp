#include "runtime/cluster.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <unordered_set>

#include "sched/round_robin.h"

namespace tstorm::runtime {

namespace {

double clamp_min(double v, double lo, const char* what) {
  (void)what;
  assert(v >= lo && "ClusterConfig: value out of range");
  return std::max(v, lo);
}

int clamp_min_int(int v, int lo, const char* what) {
  (void)what;
  assert(v >= lo && "ClusterConfig: value out of range");
  return std::max(v, lo);
}

double clamp_range(double v, double lo, double hi, const char* what) {
  (void)what;
  assert(v >= lo && v <= hi && "ClusterConfig: value out of range");
  return std::min(std::max(v, lo), hi);
}

}  // namespace

ClusterConfig validated(ClusterConfig config) {
  config.num_nodes = clamp_min_int(config.num_nodes, 1, "num_nodes");
  config.slots_per_node =
      clamp_min_int(config.slots_per_node, 1, "slots_per_node");
  config.cores_per_node =
      clamp_min_int(config.cores_per_node, 1, "cores_per_node");
  config.per_core_mhz = clamp_min(config.per_core_mhz, 1.0, "per_core_mhz");
  config.memory_mib_per_node =
      clamp_min(config.memory_mib_per_node, 1.0, "memory_mib_per_node");
  config.network_mbps_per_node =
      clamp_min(config.network_mbps_per_node, 1.0, "network_mbps_per_node");
  if (!config.node_groups.empty()) {
    // Groups are the compact fleet description; expand them to the flat
    // per-node list (which they override — debug builds flag the clash).
    assert(config.nodes.empty() &&
           "ClusterConfig: node_groups and nodes are mutually exclusive");
    config.nodes.clear();
    for (auto& group : config.node_groups) {
      group.count = clamp_min_int(group.count, 0, "NodeGroup::count");
      for (int i = 0; i < group.count; ++i) config.nodes.push_back(group.spec);
    }
  }
  for (auto& spec : config.nodes) {
    spec.slots = clamp_min_int(spec.slots, 1, "NodeSpec::slots");
    spec.cores = clamp_min_int(spec.cores, 1, "NodeSpec::cores");
    spec.per_core_mhz =
        clamp_min(spec.per_core_mhz, 1.0, "NodeSpec::per_core_mhz");
    spec.memory_mib = clamp_min(spec.memory_mib, 1.0, "NodeSpec::memory_mib");
    spec.network_mbps =
        clamp_min(spec.network_mbps, 1.0, "NodeSpec::network_mbps");
  }
  config.network = net::validated(config.network);
  config.worker_start_delay =
      clamp_min(config.worker_start_delay, 0.0, "worker_start_delay");
  config.supervisor_sync_period =
      clamp_min(config.supervisor_sync_period, sim::PeriodicTask::kMinPeriod,
                "supervisor_sync_period");
  config.tuple_timeout = clamp_min(config.tuple_timeout,
                                   sim::PeriodicTask::kMinPeriod,
                                   "tuple_timeout");
  config.max_replays = clamp_min_int(config.max_replays, 0, "max_replays");
  config.replay_backoff_base =
      clamp_min(config.replay_backoff_base, 0.0, "replay_backoff_base");
  config.replay_backoff_max = clamp_min(
      config.replay_backoff_max, config.replay_backoff_base,
      "replay_backoff_max");
  config.replay_backoff_jitter =
      clamp_min(config.replay_backoff_jitter, 0.0, "replay_backoff_jitter");
  config.late_ack_grace_factor =
      clamp_min(config.late_ack_grace_factor, 0.0, "late_ack_grace_factor");
  config.heartbeat_period =
      clamp_min(config.heartbeat_period, sim::PeriodicTask::kMinPeriod,
                "heartbeat_period");
  config.node_timeout = clamp_min(config.node_timeout,
                                  sim::PeriodicTask::kMinPeriod,
                                  "node_timeout");
  config.monitor_period =
      clamp_min(config.monitor_period, sim::PeriodicTask::kMinPeriod,
                "monitor_period");
  config.shutdown_delay =
      clamp_min(config.shutdown_delay, 0.0, "shutdown_delay");
  config.spout_halt_delay =
      clamp_min(config.spout_halt_delay, 0.0, "spout_halt_delay");
  config.flow.queue_capacity =
      clamp_min_int(config.flow.queue_capacity, 1, "flow.queue_capacity");
  config.flow.high_watermark = clamp_range(config.flow.high_watermark, 0.0,
                                           1.0, "flow.high_watermark");
  // The hysteresis band requires low <= high (strictly below in sane
  // configs; equal degenerates to a single threshold but stays correct).
  config.flow.low_watermark =
      clamp_range(config.flow.low_watermark, 0.0, config.flow.high_watermark,
                  "flow.low_watermark");
  config.flow.throttle_refresh_period =
      clamp_min(config.flow.throttle_refresh_period,
                sim::PeriodicTask::kMinPeriod, "flow.throttle_refresh_period");
  config.flow.shed_probability = clamp_range(
      config.flow.shed_probability, 0.0, 1.0, "flow.shed_probability");
  config.obs.tuple_sample_rate = clamp_range(
      config.obs.tuple_sample_rate, 0.0, 1.0, "obs.tuple_sample_rate");
  config.state.checkpoint_interval =
      clamp_min(config.state.checkpoint_interval,
                sim::PeriodicTask::kMinPeriod, "state.checkpoint_interval");
  if (config.state.checkpoint_timeout <= 0) {
    config.state.checkpoint_timeout = 3 * config.state.checkpoint_interval;
  }
  config.state.checkpoint_timeout =
      clamp_min(config.state.checkpoint_timeout,
                config.state.checkpoint_interval, "state.checkpoint_timeout");
  config.state.store_write_latency = clamp_min(
      config.state.store_write_latency, 0.0, "state.store_write_latency");
  config.state.store_read_latency = clamp_min(
      config.state.store_read_latency, 0.0, "state.store_read_latency");
  config.state.store_read_bandwidth = clamp_min(
      config.state.store_read_bandwidth, 1.0, "state.store_read_bandwidth");
  config.state.barrier_cost_mc =
      clamp_min(config.state.barrier_cost_mc, 0.0, "state.barrier_cost_mc");
  config.state.dedup_horizon_factor =
      clamp_min(config.state.dedup_horizon_factor, 0.0,
                "state.dedup_horizon_factor");
  return config;
}

Cluster::Cluster(sim::Simulation& sim, ClusterConfig config)
    : sim_(sim),
      config_(validated(std::move(config))),
      rng_(config_.seed),
      network_(sim, config_.network,
               // One extra endpoint when state is enabled: the durable
               // storage pseudo-node snapshot writes travel to.
               (config_.nodes.empty() ? config_.num_nodes
                                      : static_cast<int>(
                                            config_.nodes.size())) +
                   (config_.state.enabled ? 1 : 0),
               // Dedicated fault-model substream derived from the cluster
               // seed: enabling network faults never perturbs the main RNG
               // stream (edge ids, workloads).
               config_.seed ^ 0x6e65742d6661756cULL),
      provenance_(config_.obs.provenance_capacity),
      tuple_trace_(
          obs::TupleTraceConfig{config_.obs.tuple_sample_rate,
                                config_.obs.tuple_trace_capacity,
                                /*max_spans_per_root=*/512},
          // Dedicated sampling substream: tracing never perturbs the main
          // RNG stream (edge ids, workloads).
          config_.seed ^ 0x6f62732d74726163ULL),
      flow_(sim, config_.flow, coordination_, trace_, config_.seed),
      tracker_(*this, recorder_),
      nimbus_(*this),
      default_initial_(std::make_unique<sched::RoundRobinScheduler>()) {
  // Heterogeneous override: per-node hardware specs.
  std::vector<NodeSpec> specs;
  if (!config_.nodes.empty()) {
    specs = config_.nodes;
    config_.num_nodes = static_cast<int>(specs.size());
  } else {
    specs.assign(static_cast<std::size_t>(config_.num_nodes),
                 NodeSpec{config_.slots_per_node, config_.cores_per_node,
                          config_.per_core_mhz, config_.memory_mib_per_node,
                          config_.network_mbps_per_node});
  }
  nodes_.reserve(static_cast<std::size_t>(config_.num_nodes));
  slot_offsets_.reserve(static_cast<std::size_t>(config_.num_nodes) + 1);
  slot_offsets_.push_back(0);
  for (int i = 0; i < config_.num_nodes; ++i) {
    const auto& spec = specs[static_cast<std::size_t>(i)];
    nodes_.emplace_back(i, spec.cores, spec.per_core_mhz, spec.memory_mib,
                        spec.network_mbps);
    slot_offsets_.push_back(slot_offsets_.back() + spec.slots);
  }
  supervisors_.reserve(static_cast<std::size_t>(config_.num_nodes));
  for (int i = 0; i < config_.num_nodes; ++i) {
    supervisors_.push_back(std::make_unique<Supervisor>(*this, i));
    // Stagger sync phases across the period, as real daemons drift.
    const double phase = config_.supervisor_sync_period *
                         (static_cast<double>(i) + 0.5) /
                         static_cast<double>(config_.num_nodes);
    supervisors_.back()->start(phase);
  }
  // Self-healing loop: supervisors heartbeat unconditionally; the Nimbus
  // monitor that acts on them is opt-in.
  if (config_.failure_detection) nimbus_.start_failure_detector();
  // Backpressure spout pauser: the quiet variant of pause_spouts — the
  // refresher re-arms it every throttle_refresh_period, so tracing each
  // call (as pause_spouts does with kSpoutsHalted) would flood the ring.
  // Throttle transitions are traced as kBackpressureOn/Off instead.
  flow_.set_spout_pauser([this](sched::TopologyId topo, sim::Time until) {
    for (const auto& instances : router_) {
      for (Executor* e : instances) {
        if (e->info().topology == topo && e->info().is_spout()) {
          e->pause_spout_until(until);
        }
      }
    }
  });
  // Stateful operators: checkpoint coordinator + its tick. The durable
  // service sits on the pseudo-node appended after the workers (the +1 in
  // network_'s construction above), so snapshot writes traverse the fault
  // model like any inter-node message.
  if (config_.state.enabled) {
    storage_node_ = config_.num_nodes;
    state::CheckpointCoordinator::Callbacks callbacks;
    callbacks.inject_barriers = [this](int topo, std::uint64_t ckpt) {
      inject_barriers(topo, ckpt);
    };
    callbacks.on_complete = [this](int topo, std::uint64_t ckpt,
                                   double duration, std::uint64_t bytes) {
      on_checkpoint_complete(topo, ckpt, duration, bytes);
    };
    callbacks.on_abort = [this](int topo, std::uint64_t ckpt) {
      std::string detail = "round " + std::to_string(ckpt) + ", awaiting";
      for (int task : checkpoints_->awaiting_tasks(topo)) {
        detail += " " + std::to_string(task);
      }
      trace_.record({sim_.now(), trace::EventKind::kCheckpointAborted, topo,
                     -1, -1, 0, std::move(detail)});
    };
    checkpoints_ = std::make_unique<state::CheckpointCoordinator>(
        std::move(callbacks), config_.state.checkpoint_timeout);
    checkpoint_tick_ = std::make_unique<sim::PeriodicTask>(
        sim_, config_.state.checkpoint_interval,
        sim::InlineFn([this] { checkpoints_->tick(sim_.now()); }));
    checkpoint_tick_->start(config_.state.checkpoint_interval);
  }
}

const char* to_string(DropCause cause) {
  switch (cause) {
    case DropCause::kDeadInstance:
      return "dead-instance";
    case DropCause::kNetworkLoss:
      return "network-loss";
    case DropCause::kShutdownDrain:
      return "shutdown-drain";
    case DropCause::kLoadShed:
      return "load-shed";
    case DropCause::kStateDedup:
      return "state-dedup";
  }
  return "?";
}

Cluster::~Cluster() = default;

WorkerNode& Cluster::node(sched::NodeId id) {
  return nodes_.at(static_cast<std::size_t>(id));
}

Supervisor& Cluster::supervisor(sched::NodeId id) {
  return *supervisors_.at(static_cast<std::size_t>(id));
}

int Cluster::total_slots() const { return slot_offsets_.back(); }

int Cluster::slots_on_node(sched::NodeId node) const {
  return slot_offsets_.at(static_cast<std::size_t>(node) + 1) -
         slot_offsets_.at(static_cast<std::size_t>(node));
}

sched::SlotIndex Cluster::slot_index(sched::NodeId node, int port) const {
  assert(node >= 0 && node < config_.num_nodes);
  assert(port >= 0 && port < slots_on_node(node));
  return slot_offsets_[static_cast<std::size_t>(node)] + port;
}

sched::NodeId Cluster::slot_node(sched::SlotIndex slot) const {
  // First offset strictly greater than slot, minus one.
  const auto it = std::upper_bound(slot_offsets_.begin(),
                                   slot_offsets_.end(), slot);
  return static_cast<sched::NodeId>(it - slot_offsets_.begin()) - 1;
}

int Cluster::slot_port(sched::SlotIndex slot) const {
  return slot - slot_offsets_[static_cast<std::size_t>(slot_node(slot))];
}

std::vector<sched::SlotSpec> Cluster::all_slots() const {
  std::vector<sched::SlotSpec> out;
  out.reserve(static_cast<std::size_t>(total_slots()));
  for (int n = 0; n < config_.num_nodes; ++n) {
    for (int p = 0; p < slots_on_node(n); ++p) {
      out.push_back({slot_index(n, p), n, p});
    }
  }
  return out;
}

sched::TopologyId Cluster::submit(topo::Topology topology,
                                  sched::ISchedulingAlgorithm*
                                      initial_algorithm) {
  const auto id = static_cast<sched::TopologyId>(topologies_.size());
  topologies_.push_back(std::move(topology));
  topology_ids_.push_back(id);
  const topo::Topology& t = topologies_.back();

  std::vector<sched::TaskId> ackers;
  for (const auto& component : t.components()) {
    for (int i = 0; i < component.parallelism; ++i) {
      const auto task = static_cast<sched::TaskId>(tasks_.size());
      tasks_.push_back(TaskInfo{task, id, &component, i});
      if (component.kind == topo::ComponentKind::kAcker) {
        ackers.push_back(task);
      }
    }
  }
  acker_tasks_[id] = std::move(ackers);

  if (checkpoints_ != nullptr) {
    std::vector<int> stateful;
    for (const auto& info : tasks_) {
      if (info.topology == id && info.component->stateful &&
          info.component->kind == topo::ComponentKind::kBolt) {
        stateful.push_back(info.task);
      }
    }
    checkpoints_->register_topology(id, std::move(stateful));
  }

  trace_.record({sim_.now(), trace::EventKind::kTopologySubmitted, id, -1,
                 -1, 0,
                 t.name() + ", " + std::to_string(t.total_executors()) +
                     " executors"});
  nimbus_.schedule_initial(
      id, initial_algorithm != nullptr ? *initial_algorithm
                                       : *default_initial_);
  return id;
}

void Cluster::kill_topology(sched::TopologyId topo) {
  if (checkpoints_ != nullptr) checkpoints_->deregister_topology(topo);
  coordination_.remove(topo);
  trace_.record({sim_.now(), trace::EventKind::kTopologyKilled, topo, -1,
                 -1, 0, {}});
}

const topo::Topology& Cluster::topology(sched::TopologyId topo) const {
  return topologies_.at(static_cast<std::size_t>(topo));
}

std::vector<sched::TopologyId> Cluster::topology_ids() const {
  return topology_ids_;
}

const TaskInfo& Cluster::task_info(sched::TaskId task) const {
  return tasks_.at(static_cast<std::size_t>(task));
}

std::vector<sched::TaskId> Cluster::tasks_of(sched::TopologyId topo) const {
  std::vector<sched::TaskId> out;
  for (const auto& t : tasks_) {
    if (t.topology == topo) out.push_back(t.task);
  }
  return out;
}

std::vector<sched::TaskId> Cluster::tasks_of_component(
    sched::TopologyId topo, const std::string& component) const {
  std::vector<sched::TaskId> out;
  for (const auto& t : tasks_) {
    if (t.topology == topo && t.component->name == component) {
      out.push_back(t.task);
    }
  }
  return out;
}

const std::vector<sched::TaskId>& Cluster::acker_tasks(
    sched::TopologyId topo) const {
  static const std::vector<sched::TaskId> kEmpty;
  auto it = acker_tasks_.find(topo);
  return it == acker_tasks_.end() ? kEmpty : it->second;
}

sched::SchedulerInput Cluster::scheduler_input(
    const std::vector<sched::TopologyId>& topos) const {
  sched::SchedulerInput input;
  // Failed nodes contribute no slots (and zero capacity, defensively).
  // Nodes the failure detector believes dead are withheld too — including
  // false positives, whose healthy workers will be retired by their own
  // supervisor once the reassignment publishes.
  const auto usable = [this](sched::NodeId n) {
    return nodes_[static_cast<std::size_t>(n)].available() &&
           nimbus_.node_believed_alive(n);
  };
  for (const auto& slot : all_slots()) {
    if (usable(slot.node)) input.slots.push_back(slot);
  }
  input.nodes.reserve(static_cast<std::size_t>(config_.num_nodes));
  for (const auto& node : nodes_) {
    // A dead node keeps its entry with zero capacity (and no slots above).
    input.nodes.push_back({node.id(), usable(node.id())
                                          ? node.capacity_vector()
                                          : sched::ResourceVector{}});
  }

  std::unordered_set<sched::TopologyId> included(topos.begin(), topos.end());
  for (sched::TopologyId id : topos) {
    const topo::Topology& t = topology(id);
    input.topologies.push_back({id, t.num_workers()});
    for (sched::TaskId task : tasks_of(id)) {
      input.executors.push_back({task, id});
    }
    // Task-level topology edges (producer tasks x consumer tasks).
    for (const auto& component : t.components()) {
      for (const auto& sub : component.inputs) {
        const auto srcs = tasks_of_component(id, sub.source);
        const auto dsts = tasks_of_component(id, component.name);
        for (auto s : srcs) {
          for (auto d : dsts) input.topology_edges.emplace_back(s, d);
        }
      }
    }
  }

  // Slots already used by topologies outside this scheduling run.
  for (const auto& [other, record] : coordination_.all()) {
    if (included.contains(other)) continue;
    for (const auto& [task, slot] : record.placement) {
      input.occupied_slots.push_back(slot);
    }
  }
  std::sort(input.occupied_slots.begin(), input.occupied_slots.end());
  input.occupied_slots.erase(
      std::unique(input.occupied_slots.begin(), input.occupied_slots.end()),
      input.occupied_slots.end());
  return input;
}

void Cluster::register_executor(Executor* executor) {
  const auto task = static_cast<std::size_t>(executor->task());
  if (task >= router_.size()) router_.resize(task + 1);
  router_[task].push_back(executor);
}

void Cluster::unregister_executor(Executor* executor) {
  const auto task = static_cast<std::size_t>(executor->task());
  if (task >= router_.size()) return;
  std::erase(router_[task], executor);
}

Executor* Cluster::resolve(sched::TaskId task,
                           sched::AssignmentVersion sender_version) const {
  const auto t = static_cast<std::size_t>(task);
  if (t >= router_.size() || router_[t].empty()) return nullptr;
  // Dispatcher rule (section IV-D): old senders reach old instances, new
  // senders reach new instances. Concretely: newest instance not newer
  // than the sender; if none, the oldest newer instance.
  Executor* best_le = nullptr;
  Executor* best_gt = nullptr;
  for (Executor* e : router_[t]) {
    const auto v = e->worker().version();
    if (v <= sender_version) {
      if (best_le == nullptr || v > best_le->worker().version()) best_le = e;
    } else {
      if (best_gt == nullptr || v < best_gt->worker().version()) best_gt = e;
    }
  }
  return best_le != nullptr ? best_le : best_gt;
}

bool Cluster::is_current_instance(const Executor& e) const {
  return resolve(e.task(),
                 std::numeric_limits<sched::AssignmentVersion>::max()) == &e;
}

void Cluster::send(Executor& from, sched::TaskId dst, Envelope env) {
  env.src = from.task();
  env.dst = dst;
  env.version = from.worker().version();

  Executor* target = resolve(dst, env.version);
  if (target == nullptr) {
    note_drop(DropCause::kDeadInstance);
    return;
  }
  net::LinkType type;
  if (&target->worker() == &from.worker()) {
    type = net::LinkType::kIntraProcess;
  } else if (target->node_id() == from.node_id()) {
    type = net::LinkType::kInterProcess;
  } else {
    type = net::LinkType::kInterNode;
  }
  const auto src_node = from.node_id();
  const auto dst_node = target->node_id();
  const auto bytes = env.bytes();
  const auto version = env.version;

  // Tuple tracing: stamp the network-hop start on envelopes of sampled
  // roots (acks included — acker traffic is part of the causal tree). The
  // receiving executor closes the hop span and starts the queue wait.
  if (tuple_trace_.enabled() && env.root_id != 0 &&
      tuple_trace_.sampled(env.root_id)) {
    env.trace_t0 = sim_.now();
  }

  // Crowding penalty: a message crossing a process boundary is handled by
  // sender/receiver threads that contend with every other thread on their
  // nodes. Intra-process handoffs skip this entirely — the benefit of
  // T-Storm's worker consolidation.
  double extra = 0.0;
  if (type != net::LinkType::kIntraProcess) {
    const double overhead = config_.worker_overhead_threads;
    extra = config_.crowd_latency_coeff *
            (node(src_node).crowding(overhead) +
             node(dst_node).crowding(overhead));
  }

  // Park the envelope and capture only its handle: the delivery closure
  // must fit InlineFn's inline buffer for the send path to stay
  // allocation-free (the envelope itself is 56 bytes).
  const std::uint32_t handle = stash_envelope(std::move(env));
  const bool delivered =
      network_.send(src_node, dst_node, type, bytes,
                    [this, dst, version, handle] {
                      Envelope e = take_envelope(handle);
                      Executor* t = resolve(dst, version);
                      if (t == nullptr) {
                        note_drop(DropCause::kDeadInstance);
                        return;
                      }
                      t->deliver(std::move(e));
                    },
                    extra);
  if (!delivered) {
    // Lost on the wire: reclaim the parked envelope; a lost data tuple
    // surfaces as a tracker timeout (and replay) at its spout.
    take_envelope(handle);
    note_drop(DropCause::kNetworkLoss);
  }
}

std::uint32_t Cluster::stash_envelope(Envelope env) {
  if (!in_flight_free_.empty()) {
    const std::uint32_t handle = in_flight_free_.back();
    in_flight_free_.pop_back();
    in_flight_[handle] = std::move(env);
    return handle;
  }
  in_flight_.push_back(std::move(env));
  return static_cast<std::uint32_t>(in_flight_.size() - 1);
}

Envelope Cluster::take_envelope(std::uint32_t handle) {
  Envelope env = std::move(in_flight_[handle]);
  in_flight_free_.push_back(handle);
  return env;
}

bool Cluster::deliver_control(sched::TaskId dst, Envelope env) {
  Executor* t =
      resolve(dst, std::numeric_limits<sched::AssignmentVersion>::max());
  if (t == nullptr) return false;
  env.dst = dst;
  t->deliver(std::move(env));
  return true;
}

std::vector<Executor*> Cluster::executors_on_node(sched::NodeId node) const {
  std::vector<Executor*> out;
  for (const auto& instances : router_) {
    for (Executor* e : instances) {
      if (e->node_id() == node) out.push_back(e);
    }
  }
  return out;
}

std::vector<Executor*> Cluster::instances_of(sched::TaskId task) const {
  const auto t = static_cast<std::size_t>(task);
  return t < router_.size() ? router_[t] : std::vector<Executor*>{};
}

std::vector<Executor*> Cluster::registered_executors() const {
  std::vector<Executor*> out;
  for (const auto& instances : router_) {
    out.insert(out.end(), instances.begin(), instances.end());
  }
  return out;
}

int Cluster::nodes_in_use() const {
  std::unordered_set<sched::NodeId> nodes;
  for (const auto& instances : router_) {
    for (Executor* e : instances) nodes.insert(e->node_id());
  }
  return static_cast<int>(nodes.size());
}

int Cluster::slots_in_use() const {
  std::unordered_set<sched::SlotIndex> slots;
  for (const auto& instances : router_) {
    for (Executor* e : instances) slots.insert(e->worker().slot());
  }
  return static_cast<int>(slots.size());
}

void Cluster::pause_spouts(sched::TopologyId topo, sim::Time until) {
  trace_.record({sim_.now(), trace::EventKind::kSpoutsHalted, topo, -1, -1,
                 0, "until t=" + std::to_string(until)});
  for (const auto& instances : router_) {
    for (Executor* e : instances) {
      if (e->info().topology == topo && e->info().is_spout()) {
        e->pause_spout_until(until);
      }
    }
  }
}

bool Cluster::kill_worker(sched::NodeId node, int port) {
  return supervisors_.at(static_cast<std::size_t>(node))->kill_worker(port);
}

bool Cluster::fail_node(sched::NodeId node) {
  auto& n = nodes_.at(static_cast<std::size_t>(node));
  if (!n.available()) return false;
  n.set_available(false);
  supervisors_.at(static_cast<std::size_t>(node))->set_active(false);
  trace_.record({sim_.now(), trace::EventKind::kNodeFailed, -1, node, -1, 0,
                 {}});
  return true;
}

bool Cluster::recover_node(sched::NodeId node) {
  auto& n = nodes_.at(static_cast<std::size_t>(node));
  if (n.available()) return false;
  n.set_available(true);
  supervisors_.at(static_cast<std::size_t>(node))->set_active(true);
  trace_.record({sim_.now(), trace::EventKind::kNodeRecovered, -1, node, -1,
                 0, {}});
  return true;
}

bool Cluster::node_available(sched::NodeId node) const {
  return nodes_.at(static_cast<std::size_t>(node)).available();
}

std::uint64_t Cluster::dropped_messages() const {
  return dropped_by_cause_[0] + dropped_by_cause_[1] + dropped_by_cause_[2] +
         dropped_by_cause_[3] + dropped_by_cause_[4];
}

std::uint64_t Cluster::dropped_by(DropCause cause) const {
  return dropped_by_cause_[static_cast<int>(cause)];
}

void Cluster::note_drop(DropCause cause) {
  ++dropped_by_cause_[static_cast<int>(cause)];
  recorder_.record_drop(sim_.now());
}

std::vector<metrics::FlowGaugeRow> Cluster::flow_gauges() const {
  std::vector<metrics::FlowGaugeRow> rows;
  for (const auto& instances : router_) {
    for (Executor* e : instances) {
      rows.push_back({e->task(), e->node_id(), e->data_queue_depth(),
                      flow_.shed_for_task(e->task())});
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const metrics::FlowGaugeRow& a, const metrics::FlowGaugeRow& b) {
              return a.task != b.task ? a.task < b.task : a.node < b.node;
            });
  return rows;
}

void Cluster::inject_barriers(sched::TopologyId topo, std::uint64_t ckpt) {
  for (const auto& info : tasks_) {
    if (info.topology != topo || !info.is_spout()) continue;
    Envelope barrier;
    barrier.kind = MsgKind::kBarrier;
    barrier.root_id = ckpt;
    // Control-plane delivery: the coordinator reaches spouts the way the
    // tracker reaches them for replays. A dead spout instance simply means
    // its barriers never flow and the round aborts at the next tick.
    deliver_control(info.task, std::move(barrier));
  }
}

void Cluster::on_checkpoint_complete(sched::TopologyId topo,
                                     std::uint64_t ckpt, double duration,
                                     std::uint64_t bytes) {
  durable_.mark_completed(ckpt);
  trace_.record({sim_.now(), trace::EventKind::kCheckpointComplete, topo, -1,
                 -1, 0,
                 "round " + std::to_string(ckpt) + ", " +
                     std::to_string(bytes) + " B, " +
                     std::to_string(duration) + " s"});
  // Release the acks the topology's stateful bolts deferred against this
  // round (and any earlier one) — but only at each task's current
  // incarnation. A superseded incarnation still draining a reschedule
  // handoff holds updates its successor never saw (the successor restored
  // an earlier round before this one committed); releasing its acks would
  // complete trees whose updates exist nowhere the successor will ever
  // read. Left deferred, the acks die with the old incarnation and the
  // trees replay against the successor.
  for (const auto& instances : router_) {
    for (Executor* e : instances) {
      if (e->info().topology != topo) continue;
      if (!is_current_instance(*e)) continue;
      e->on_checkpoint_committed(ckpt);
    }
  }
}

void Cluster::state_write(Executor& from, std::uint64_t ckpt,
                          state::Snapshot snap) {
  assert(storage_node_ >= 0 && "state_write with state disabled");
  // A superseded incarnation must not contribute snapshots: its write
  // could satisfy the coordinator and commit a round containing updates
  // its successor — already restored from an earlier round — will never
  // apply. Dropping the write keeps the round honest: it completes from
  // the successor's snapshot or aborts at the timeout, and the old
  // incarnation's unreleased trees replay.
  if (!is_current_instance(from)) {
    if (checkpoints_ != nullptr) {
      checkpoints_->note_stale_write(from.info().topology);
    }
    return;
  }
  const auto src_node = from.node_id();
  // Serialized frame: entries + header/framing overhead.
  const std::uint64_t bytes = snap.bytes + 64;
  const std::uint32_t handle = stash_write(
      {from.info().topology, from.task(), ckpt, bytes, std::move(snap)});
  // Service-side write latency plus the sender's crowding penalty (the
  // storage pseudo-node runs no workers, so only the source side crowds).
  const double extra =
      config_.state.store_write_latency +
      config_.crowd_latency_coeff *
          node(src_node).crowding(config_.worker_overhead_threads);
  const bool delivered = network_.send(
      src_node, storage_node_, net::LinkType::kInterNode, bytes,
      [this, handle] {
        PendingWrite w = take_write(handle);
        durable_.put_pending(w.task, w.ckpt, std::move(w.snap));
        if (checkpoints_ != nullptr) {
          checkpoints_->on_snapshot_written(w.topo, w.ckpt, w.task, w.bytes,
                                            sim_.now());
        }
      },
      extra);
  if (!delivered) {
    // Lost on the wire: the round's write never acknowledges and the
    // coordinator aborts it at the next tick.
    take_write(handle);
    note_drop(DropCause::kNetworkLoss);
  }
}

std::uint32_t Cluster::stash_write(PendingWrite write) {
  if (!pending_writes_free_.empty()) {
    const std::uint32_t handle = pending_writes_free_.back();
    pending_writes_free_.pop_back();
    pending_writes_[handle] = std::move(write);
    return handle;
  }
  pending_writes_.push_back(std::move(write));
  return static_cast<std::uint32_t>(pending_writes_.size() - 1);
}

Cluster::PendingWrite Cluster::take_write(std::uint32_t handle) {
  PendingWrite write = std::move(pending_writes_[handle]);
  pending_writes_free_.push_back(handle);
  return write;
}

void Cluster::note_state_dedup() {
  ++state_dedup_suppressed_;
  note_drop(DropCause::kStateDedup);
}

double Cluster::dedup_horizon() const {
  return config_.state.dedup_horizon_factor *
         (1.0 + config_.late_ack_grace_factor) * config_.tuple_timeout;
}

std::vector<metrics::CheckpointGaugeRow> Cluster::checkpoint_gauges() const {
  std::vector<metrics::CheckpointGaugeRow> rows;
  if (checkpoints_ == nullptr) return rows;
  for (int topo : checkpoints_->topologies()) {
    const state::CheckpointGauges* g = checkpoints_->gauges(topo);
    if (g == nullptr) continue;
    rows.push_back({topo, g->completed, g->aborted, g->stale_writes,
                    g->last_id, g->last_bytes, g->last_duration,
                    g->mean_interval, config_.state.checkpoint_interval});
  }
  return rows;
}

}  // namespace tstorm::runtime
