// Envelope: one message between executors. Data tuples, the acking
// protocol's control messages, and executor-internal signals all flow as
// envelopes so that every kind of traffic exercises the same queues and
// network links (acker placement is real traffic the scheduler sees).
#pragma once

#include <cstdint>

#include "sched/types.h"
#include "topo/tuple.h"

namespace tstorm::runtime {

enum class MsgKind : std::uint8_t {
  kData,         // a tuple, anchored to root_id with XOR edge id xor_val
  kAckInit,      // spout -> acker: xor_val = XOR of initial edge ids
  kAck,          // bolt -> acker: xor_val = input edge ^ emitted edges
  kAckComplete,  // acker -> spout: tuple tree fully processed
  kEmitSignal,   // spout-internal: rate-controlled emission slot
  kReplay,       // tracker -> spout: re-emit a failed tuple
  kTick,         // bolt-internal: periodic tick tuple
  kBarrier,      // checkpoint barrier (root_id = checkpoint round id)
  kStateRestore,  // executor-internal: rehydrate from a durable snapshot
};

struct Envelope {
  MsgKind kind = MsgKind::kData;
  sched::TaskId src = -1;
  sched::TaskId dst = -1;
  topo::TupleRef tuple;  // kData / kReplay only (pooled, intrusive refcount)
  std::uint64_t root_id = 0;
  std::uint64_t xor_val = 0;
  /// Assignment version of the sending worker; the dispatcher routes by it
  /// during reassignment (paper section IV-D).
  sched::AssignmentVersion version = 0;
  /// Replay attempt counter (kReplay).
  int attempt = 0;
  /// Exactly-once lineage (StateConfig::enabled only; 0 otherwise).
  /// kData: deterministic path of this emission within its tuple tree —
  /// identical across replay attempts, the key of the stateful bolts'
  /// dedup sets. kReplay: the tree uid (attempt-0 root id) the re-emission
  /// must derive its paths from.
  std::uint64_t path = 0;
  /// Tuple tracing: start time of the envelope's current phase (network
  /// hop, then queue wait, then execute); < 0 when the root is not
  /// sampled. Stamped by Cluster::send, advanced by the executor hooks.
  double trace_t0 = -1.0;

  /// Approximate wire size.
  [[nodiscard]] std::uint64_t bytes() const {
    // kind + ids + anchor info.
    std::uint64_t b = 28;
    if (tuple) b += tuple->bytes();
    return b;
  }
};

}  // namespace tstorm::runtime
