// Cluster: the root object wiring together the simulation clock, network,
// worker nodes, supervisors, Nimbus, the coordination store, the tuple
// tracker and the message router/dispatcher. One Cluster models the
// paper's 10-node Storm testbed end to end.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "flow/flow.h"
#include "metrics/completion.h"
#include "metrics/reporter.h"
#include "net/network.h"
#include "obs/provenance.h"
#include "obs/tuple_trace.h"
#include "runtime/config.h"
#include "runtime/coordination.h"
#include "runtime/envelope.h"
#include "runtime/nimbus.h"
#include "runtime/node.h"
#include "runtime/supervisor.h"
#include "runtime/task.h"
#include "runtime/tracker.h"
#include "runtime/worker.h"
#include "sched/scheduler.h"
#include "sim/rng.h"
#include "sim/simulation.h"
#include "state/checkpoint.h"
#include "state/durable_store.h"
#include "topo/topology.h"
#include "trace/trace.h"

namespace tstorm::runtime {

/// Why a message was lost. Tests and the chaos auditor assert on each
/// cause independently — a soak with no partitions must see zero
/// kNetworkLoss, a clean shutdown zero kShutdownDrain, and so on.
enum class DropCause : std::uint8_t {
  /// No live executor instance could receive the message (task's worker
  /// dead or not yet started, at send or at delivery time).
  kDeadInstance,
  /// The network fault model lost the message in flight (random drop or
  /// partition window).
  kNetworkLoss,
  /// The message was queued at an executor when its worker shut down.
  kShutdownDrain,
  /// Flow control shed the tuple at a hard-full executor queue (see
  /// FlowConfig::shed_policy).
  kLoadShed,
  /// A stateful bolt suppressed a replayed duplicate: the update's lineage
  /// path was already applied (exactly-once dedup, StateConfig::enabled).
  kStateDedup,
};

const char* to_string(DropCause cause);

/// Lifetime: the cluster schedules events (message deliveries, worker
/// activations) into the simulation that reference cluster-owned state.
/// Destroy the cluster only when you are done advancing the simulation —
/// do not call sim.run*() after the cluster is gone.
class Cluster {
 public:
  Cluster(sim::Simulation& sim, ClusterConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// --- Topology lifecycle. ---

  /// Registers the topology, creates its tasks, and schedules it with
  /// `initial_algorithm` (defaults to Storm's round-robin scheduler when
  /// null). Returns the topology id.
  sched::TopologyId submit(topo::Topology topology,
                           sched::ISchedulingAlgorithm* initial_algorithm =
                               nullptr);

  /// Removes the topology's assignment; supervisors stop its workers on
  /// their next sync.
  void kill_topology(sched::TopologyId topo);

  /// --- Introspection. ---
  [[nodiscard]] const ClusterConfig& config() const { return config_; }
  [[nodiscard]] sim::Simulation& sim() { return sim_; }
  [[nodiscard]] sim::Rng& rng() { return rng_; }
  [[nodiscard]] net::Network& network() { return network_; }
  [[nodiscard]] Nimbus& nimbus() { return nimbus_; }
  [[nodiscard]] CoordinationStore& coordination() { return coordination_; }
  [[nodiscard]] TupleTracker& tracker() { return tracker_; }
  [[nodiscard]] metrics::CompletionRecorder& completion() {
    return recorder_;
  }
  /// Control-plane event trace (see trace/trace.h).
  [[nodiscard]] trace::TraceLog& trace_log() { return trace_; }
  /// Schedule provenance: one DecisionRecord per scheduling pass,
  /// published or rejected (see obs/provenance.h).
  [[nodiscard]] obs::ProvenanceLog& provenance() { return provenance_; }
  [[nodiscard]] const obs::ProvenanceLog& provenance() const {
    return provenance_;
  }
  /// Sampled per-tuple causal tracing (config_.obs.tuple_sample_rate).
  [[nodiscard]] obs::TupleTraceCollector& tuple_trace() {
    return tuple_trace_;
  }
  [[nodiscard]] const obs::TupleTraceCollector& tuple_trace() const {
    return tuple_trace_;
  }
  /// Flow control: bounded queues, backpressure, shedding (config_.flow).
  [[nodiscard]] flow::FlowController& flow() { return flow_; }
  [[nodiscard]] const flow::FlowController& flow() const { return flow_; }

  /// --- Stateful operators (config_.state). ---
  [[nodiscard]] bool state_enabled() const { return config_.state.enabled; }
  /// Durable checkpoint storage (always constructed; empty when disabled).
  [[nodiscard]] state::DurableStore& durable_state() { return durable_; }
  [[nodiscard]] const state::DurableStore& durable_state() const {
    return durable_;
  }
  /// Checkpoint coordinator; nullptr when state is disabled.
  [[nodiscard]] state::CheckpointCoordinator* checkpoints() {
    return checkpoints_.get();
  }
  [[nodiscard]] const state::CheckpointCoordinator* checkpoints() const {
    return checkpoints_.get();
  }
  /// Network endpoint of the durable storage service (the pseudo-node
  /// appended after the worker nodes); -1 when state is disabled.
  [[nodiscard]] int storage_node() const { return storage_node_; }
  /// Ships `snap`, written by executor `from` for round `ckpt`, to the
  /// durable store through the network model (write latency + bandwidth +
  /// fault model). A lost write simply never acknowledges — the round
  /// aborts at the coordinator's next tick.
  void state_write(Executor& from, std::uint64_t ckpt, state::Snapshot snap);
  /// Records a duplicate suppressed by a stateful bolt's dedup set (both
  /// the independent counter and the kStateDedup drop-attribution entry;
  /// the auditor cross-checks them).
  void note_state_dedup();
  [[nodiscard]] std::uint64_t state_dedup_suppressed() const {
    return state_dedup_suppressed_;
  }
  /// Age horizon for dedup sweeps (see StateConfig::dedup_horizon_factor).
  [[nodiscard]] double dedup_horizon() const;

  [[nodiscard]] int num_nodes() const { return config_.num_nodes; }
  [[nodiscard]] WorkerNode& node(sched::NodeId id);
  [[nodiscard]] Supervisor& supervisor(sched::NodeId id);

  /// Total slots across the cluster (heterogeneous-aware).
  [[nodiscard]] int total_slots() const;
  /// Slots (ports) on one node.
  [[nodiscard]] int slots_on_node(sched::NodeId node) const;

  /// Slot indexing: slots are numbered contiguously node by node
  /// (node 0's ports first, then node 1's, ...).
  [[nodiscard]] sched::SlotIndex slot_index(sched::NodeId node,
                                            int port) const;
  [[nodiscard]] sched::NodeId slot_node(sched::SlotIndex slot) const;
  [[nodiscard]] int slot_port(sched::SlotIndex slot) const;
  [[nodiscard]] std::vector<sched::SlotSpec> all_slots() const;

  [[nodiscard]] const topo::Topology& topology(sched::TopologyId topo) const;
  [[nodiscard]] std::vector<sched::TopologyId> topology_ids() const;
  [[nodiscard]] const std::vector<TaskInfo>& tasks() const { return tasks_; }
  [[nodiscard]] const TaskInfo& task_info(sched::TaskId task) const;
  [[nodiscard]] std::vector<sched::TaskId> tasks_of(
      sched::TopologyId topo) const;
  [[nodiscard]] std::vector<sched::TaskId> tasks_of_component(
      sched::TopologyId topo, const std::string& component) const;
  /// Acker task ids of a topology (cached, sorted; empty if num_ackers=0).
  [[nodiscard]] const std::vector<sched::TaskId>& acker_tasks(
      sched::TopologyId topo) const;

  /// Builds the static part of a SchedulerInput (executors with zero load,
  /// slots, topology specs, topology edges, occupied slots from currently
  /// assigned topologies outside `topos`). Callers fill loads/traffic.
  [[nodiscard]] sched::SchedulerInput scheduler_input(
      const std::vector<sched::TopologyId>& topos) const;

  /// --- Routing (used by executors/workers). ---
  void register_executor(Executor* executor);
  void unregister_executor(Executor* executor);

  /// Resolves the executor instance that should receive a message sent by
  /// a worker running under `sender_version` — the T-Storm dispatcher
  /// rule: the newest instance not newer than the sender, else the oldest
  /// newer one. Returns nullptr if the task has no live instance.
  [[nodiscard]] Executor* resolve(sched::TaskId task,
                                  sched::AssignmentVersion sender_version)
      const;

  /// True when `e` is the newest live instance of its task. During a
  /// reschedule handoff the superseded incarnation keeps draining
  /// old-version traffic, but it must not participate in checkpointing
  /// (see state_write / on_checkpoint_complete).
  [[nodiscard]] bool is_current_instance(const Executor& e) const;

  /// Sends an envelope from `from` to task `dst` over the modeled network.
  void send(Executor& from, sched::TaskId dst, Envelope env);

  /// Zero-latency control-plane delivery to the latest instance of a task
  /// (tracker replay requests). Returns false if no instance is live.
  bool deliver_control(sched::TaskId dst, Envelope env);

  /// --- Monitoring / stats. ---
  [[nodiscard]] std::vector<Executor*> executors_on_node(
      sched::NodeId node) const;
  [[nodiscard]] std::vector<Executor*> instances_of(sched::TaskId task) const;
  [[nodiscard]] int nodes_in_use() const;
  [[nodiscard]] int slots_in_use() const;
  /// Total lost messages across all causes.
  [[nodiscard]] std::uint64_t dropped_messages() const;
  /// Lost messages attributed to one cause.
  [[nodiscard]] std::uint64_t dropped_by(DropCause cause) const;
  /// Every executor instance currently registered with the router. The
  /// chaos auditor cross-checks this against supervisor-owned workers to
  /// catch dangling registrations.
  [[nodiscard]] std::vector<Executor*> registered_executors() const;

  /// Pauses every live spout executor of the topology until `until`
  /// (T-Storm reassignment smoothing). New spout executors are paused via
  /// Worker::start's spout_halt_delay instead.
  void pause_spouts(sched::TopologyId topo, sim::Time until);

  /// Failure injection: kills the worker at (node, port) immediately.
  bool kill_worker(sched::NodeId node, int port);

  /// Node failure injection: the whole machine goes down — every worker on
  /// it dies, its supervisor stops syncing, and its slots disappear from
  /// scheduler inputs until recover_node(). Returns false if already down.
  bool fail_node(sched::NodeId node);
  /// Brings a failed node back (empty; schedulers may use it again).
  bool recover_node(sched::NodeId node);
  [[nodiscard]] bool node_available(sched::NodeId node) const;

  /// Records a lost message under its cause (internal bookkeeping; exposed
  /// for the executor/worker shutdown paths).
  void note_drop(DropCause cause);

  /// Per-executor flow gauges (data-queue depth + shed count) for every
  /// registered executor, sorted by task then node (stable output for
  /// metrics::print_flow_gauges).
  [[nodiscard]] std::vector<metrics::FlowGaugeRow> flow_gauges() const;

  /// Per-topology checkpoint gauges (completions, aborts, snapshot bytes,
  /// duration, interval adherence) for metrics::print_checkpoint_gauges.
  /// Empty when state is disabled.
  [[nodiscard]] std::vector<metrics::CheckpointGaugeRow> checkpoint_gauges()
      const;

 private:
  /// Checkpoint-coordinator callbacks (wired in the constructor).
  void inject_barriers(sched::TopologyId topo, std::uint64_t ckpt);
  void on_checkpoint_complete(sched::TopologyId topo, std::uint64_t ckpt,
                              double duration, std::uint64_t bytes);
  /// In-flight message slab. Envelopes awaiting network delivery are parked
  /// here and referenced by a 32-bit handle, so delivery closures capture
  /// {this, dst, version, handle} — 24 bytes, inside InlineFn's inline
  /// buffer — instead of a 56-byte envelope that would force every message
  /// through the callback pool.
  std::uint32_t stash_envelope(Envelope env);
  Envelope take_envelope(std::uint32_t handle);

  sim::Simulation& sim_;
  ClusterConfig config_;
  sim::Rng rng_;
  net::Network network_;
  CoordinationStore coordination_;
  metrics::CompletionRecorder recorder_;
  // Declared before supervisors_ so it outlives them: workers emit
  // worker-stopped events from their destructors.
  trace::TraceLog trace_;
  // Observability sinks. Like trace_, declared before supervisors_ so
  // executor teardown hooks can still reach them.
  obs::ProvenanceLog provenance_;
  obs::TupleTraceCollector tuple_trace_;
  // After coordination_/trace_ (it holds references to both), before
  // supervisors_ (executors call flow().forget from shutdown).
  flow::FlowController flow_;
  // Stateful-operator machinery. Before supervisors_: restoring executors
  // read the durable store from on_start, and snapshot-write delivery
  // closures reach both through `this`. The coordinator and its tick exist
  // only when config_.state.enabled.
  state::DurableStore durable_;
  std::unique_ptr<state::CheckpointCoordinator> checkpoints_;
  std::unique_ptr<sim::PeriodicTask> checkpoint_tick_;
  TupleTracker tracker_;
  Nimbus nimbus_;

  /// slot_offsets_[n] = first slot index of node n; back() = total slots.
  /// Declared before supervisors_ (like trace_): workers consult the slot
  /// math from their destructors.
  std::vector<int> slot_offsets_;
  std::vector<WorkerNode> nodes_;

  /// Live executor instances per task (usually 1; 2 during T-Storm
  /// reassignment co-existence). Indexed by TaskId — ids are small and
  /// dense, and resolve() runs twice per envelope, so the routing table is
  /// a flat array rather than a hash map. Declared before supervisors_:
  /// executors unregister themselves from it during worker shutdown.
  std::vector<std::vector<Executor*>> router_;

  /// Slot storage for stash_envelope()/take_envelope(); free slots are a
  /// freelist threaded through in_flight_free_. Declared before
  /// supervisors_: worker teardown reclaims stashed envelopes.
  std::vector<Envelope> in_flight_;
  std::vector<std::uint32_t> in_flight_free_;

  /// In-flight snapshot writes (same slab/handle idiom as in_flight_:
  /// delivery closures capture {this, handle} and stay inside InlineFn's
  /// inline buffer).
  struct PendingWrite {
    sched::TopologyId topo = -1;
    sched::TaskId task = -1;
    std::uint64_t ckpt = 0;
    std::uint64_t bytes = 0;
    state::Snapshot snap;
  };
  std::uint32_t stash_write(PendingWrite write);
  PendingWrite take_write(std::uint32_t handle);
  std::vector<PendingWrite> pending_writes_;
  std::vector<std::uint32_t> pending_writes_free_;

  std::vector<std::unique_ptr<Supervisor>> supervisors_;

  /// Topologies stored stably (ComponentDef pointers live in TaskInfo).
  std::deque<topo::Topology> topologies_;
  std::vector<sched::TopologyId> topology_ids_;
  std::vector<TaskInfo> tasks_;  // indexed by TaskId
  std::unordered_map<sched::TopologyId, std::vector<sched::TaskId>>
      acker_tasks_;

  std::uint64_t dropped_by_cause_[5] = {0, 0, 0, 0, 0};
  /// Independent side of the kStateDedup double-entry check.
  std::uint64_t state_dedup_suppressed_ = 0;
  /// Storage pseudo-node id (== number of worker nodes); -1 when disabled.
  int storage_node_ = -1;
  std::unique_ptr<sched::ISchedulingAlgorithm> default_initial_;
};

}  // namespace tstorm::runtime
