// Nimbus: the master daemon. Owns topology submission (initial assignment
// via a pluggable algorithm), accepts assignments pushed by T-Storm's
// custom scheduler, publishes everything to the coordination store for
// supervisors to pick up, and — when failure detection is enabled — runs
// the heartbeat monitor that declares nodes dead/alive and reschedules
// around dead machines (Storm's nimbus.task.timeout.secs reassignment).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/provenance.h"
#include "runtime/coordination.h"
#include "sched/round_robin.h"
#include "sched/scheduler.h"
#include "sim/simulation.h"

namespace tstorm::runtime {

class Cluster;

class Nimbus {
 public:
  explicit Nimbus(Cluster& cluster);

  /// Computes and publishes the initial placement for a newly submitted
  /// topology using `algorithm` (Storm: round-robin; T-Storm: the modified
  /// default, section IV-C). Throws std::runtime_error if the algorithm
  /// leaves executors unplaced.
  void schedule_initial(sched::TopologyId topo,
                        sched::ISchedulingAlgorithm& algorithm);

  /// Applies an externally computed placement (T-Storm custom scheduler
  /// path). Validates slots and structural sanity; returns false and
  /// changes nothing if `placement` does not cover the topology's tasks.
  /// Every call records a DecisionRecord (`trigger` says why it ran) —
  /// unless the version was already recorded by the schedule generator.
  bool apply_placement(sched::TopologyId topo,
                       const sched::Placement& placement,
                       sched::AssignmentVersion version,
                       obs::DecisionTrigger trigger =
                           obs::DecisionTrigger::kManual);

  /// Applies a consistent multi-topology schedule atomically (the T-Storm
  /// schedule generator reassigns all topologies in one run). Placements
  /// are validated against each other and against assigned topologies not
  /// present in the map; all-or-nothing.
  bool apply_placements(
      const std::map<sched::TopologyId, sched::Placement>& placements,
      sched::AssignmentVersion version);

  /// Storm's `rebalance` command: re-runs the initial scheduling algorithm
  /// for one topology, optionally overriding the requested worker count Nu
  /// (pass 0 to keep the topology's own value). The new assignment rolls
  /// out through the normal supervisor path.
  bool rebalance(sched::TopologyId topo,
                 sched::ISchedulingAlgorithm& algorithm,
                 int num_workers_override = 0,
                 obs::DecisionTrigger trigger =
                     obs::DecisionTrigger::kManual);

  /// Current assignment, nullptr if never scheduled.
  [[nodiscard]] const AssignmentRecord* assignment(
      sched::TopologyId topo) const;

  /// Monotone assignment version stamped from simulated time
  /// (milliseconds), the "timestamp of an assignment [used] as its ID".
  sched::AssignmentVersion next_version();

  /// --- Failure detection (the self-healing loop). ---

  /// Starts the periodic heartbeat monitor. Called by Cluster's
  /// constructor when config.failure_detection is set; idempotent.
  void start_failure_detector();

  [[nodiscard]] bool failure_detector_running() const {
    return monitor_task_ != nullptr && monitor_task_->running();
  }

  /// Nimbus's liveness view of a node. Always true while the detector is
  /// off (Nimbus has no evidence against any node). The view is belief,
  /// not ground truth: lost heartbeats can make a healthy node "dead"
  /// until its beats resume.
  [[nodiscard]] bool node_believed_alive(sched::NodeId node) const;

  /// Nodes currently believed dead (sorted). Empty while the detector is
  /// off.
  [[nodiscard]] std::vector<sched::NodeId> nodes_believed_dead() const;

  /// Algorithm used to recompute placements for topologies stranded on a
  /// dead node. Defaults to round-robin over the surviving slots. The
  /// pointee must outlive the cluster; pass nullptr to restore the default.
  void set_recovery_algorithm(sched::ISchedulingAlgorithm* algorithm);

  /// One detector sweep: reads heartbeats, flips node beliefs (tracing
  /// kNodeDeclaredDead / kNodeDeclaredAlive), and reschedules every
  /// topology whose placement touches a believed-dead node. Runs
  /// periodically once start_failure_detector() is called; exposed so
  /// tests can force a sweep.
  void check_heartbeats();

 private:
  void reschedule_stranded_topologies();
  /// Shorthand for Nimbus-side provenance (no metrics-db context).
  void record_decision(obs::DecisionTrigger trigger,
                       obs::DecisionOutcome outcome,
                       const std::string& algorithm, int executors,
                       sched::AssignmentVersion version, std::string reason);

  Cluster& cluster_;
  sched::AssignmentVersion last_version_ = 0;

  /// believed_alive_[n] — detector belief, all-true at startup.
  std::vector<char> believed_alive_;
  std::unique_ptr<sim::PeriodicTask> monitor_task_;
  sched::RoundRobinScheduler default_recovery_;
  sched::ISchedulingAlgorithm* recovery_ = nullptr;
};

}  // namespace tstorm::runtime
