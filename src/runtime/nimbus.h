// Nimbus: the master daemon. Owns topology submission (initial assignment
// via a pluggable algorithm), accepts assignments pushed by T-Storm's
// custom scheduler, and publishes everything to the coordination store for
// supervisors to pick up.
#pragma once

#include <map>
#include <memory>

#include "runtime/coordination.h"
#include "sched/scheduler.h"

namespace tstorm::runtime {

class Cluster;

class Nimbus {
 public:
  explicit Nimbus(Cluster& cluster);

  /// Computes and publishes the initial placement for a newly submitted
  /// topology using `algorithm` (Storm: round-robin; T-Storm: the modified
  /// default, section IV-C). Throws std::runtime_error if the algorithm
  /// leaves executors unplaced.
  void schedule_initial(sched::TopologyId topo,
                        sched::ISchedulingAlgorithm& algorithm);

  /// Applies an externally computed placement (T-Storm custom scheduler
  /// path). Validates slots and structural sanity; returns false and
  /// changes nothing if `placement` does not cover the topology's tasks.
  bool apply_placement(sched::TopologyId topo,
                       const sched::Placement& placement,
                       sched::AssignmentVersion version);

  /// Applies a consistent multi-topology schedule atomically (the T-Storm
  /// schedule generator reassigns all topologies in one run). Placements
  /// are validated against each other and against assigned topologies not
  /// present in the map; all-or-nothing.
  bool apply_placements(
      const std::map<sched::TopologyId, sched::Placement>& placements,
      sched::AssignmentVersion version);

  /// Storm's `rebalance` command: re-runs the initial scheduling algorithm
  /// for one topology, optionally overriding the requested worker count Nu
  /// (pass 0 to keep the topology's own value). The new assignment rolls
  /// out through the normal supervisor path.
  bool rebalance(sched::TopologyId topo,
                 sched::ISchedulingAlgorithm& algorithm,
                 int num_workers_override = 0);

  /// Current assignment, nullptr if never scheduled.
  [[nodiscard]] const AssignmentRecord* assignment(
      sched::TopologyId topo) const;

  /// Monotone assignment version stamped from simulated time
  /// (milliseconds), the "timestamp of an assignment [used] as its ID".
  sched::AssignmentVersion next_version();

 private:
  Cluster& cluster_;
  sched::AssignmentVersion last_version_ = 0;
};

}  // namespace tstorm::runtime
