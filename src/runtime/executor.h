// Executors: the threads that run tasks. Each executor is a single-server
// queue — envelopes wait FIFO, service time derives from the component's
// declared CPU cost, the node's processor-sharing factor (overload!) and
// context-switch inflation, plus any blocking I/O. Subclasses implement
// spout, bolt, and acker semantics.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "runtime/envelope.h"
#include "runtime/task.h"
#include "sim/flat_map.h"
#include "sim/ring_deque.h"
#include "sim/simulation.h"
#include "state/state_store.h"
#include "topo/component.h"

namespace tstorm::runtime {

class Cluster;
class Worker;

class Executor {
 public:
  Executor(Cluster& cluster, Worker& worker, const TaskInfo& info);
  virtual ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Registers with the cluster router and the node; prepares user code.
  void start();

  /// Unregisters; drops queued envelopes (they are lost, as when a Storm
  /// worker process is killed).
  void shutdown();

  /// Enqueues an envelope; starts service if idle. Dropped if not running.
  /// With flow control enabled, a data envelope arriving at a hard-full
  /// queue is shed per FlowConfig::shed_policy (control messages always
  /// pass — dropping acks would wedge the protocol, not relieve load).
  void deliver(Envelope env);

  [[nodiscard]] const TaskInfo& info() const { return info_; }
  [[nodiscard]] sched::TaskId task() const { return info_.task; }
  [[nodiscard]] Worker& worker() { return worker_; }
  [[nodiscard]] const Worker& worker() const { return worker_; }
  /// Cached at construction — an executor never migrates between workers
  /// (reassignment spawns a fresh instance), and this sits on the
  /// per-envelope service path.
  [[nodiscard]] sched::NodeId node_id() const { return node_id_; }
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  /// Queued *data* envelopes only — what the flow-control watermarks and
  /// capacity bound count (includes the in-service one while busy).
  [[nodiscard]] std::size_t data_queue_depth() const { return data_queued_; }

  /// --- Load-monitor hooks (paper section IV-B). ---
  /// Mega-cycles consumed since the last call (divide by the sampling
  /// period for MHz).
  double take_mega_cycles();
  /// Wire bytes sent since the last call (divide by the sampling period
  /// for the executor's network demand).
  std::uint64_t take_sent_bytes() {
    const std::uint64_t bytes = sent_bytes_;
    sent_bytes_ = 0;
    return bytes;
  }
  /// Wire bytes of everything currently queued (the executor's transient
  /// memory footprint). Walks the queue — sampling-path only, not hot.
  [[nodiscard]] std::uint64_t queued_bytes() const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < queue_.size(); ++i) total += queue_[i].bytes();
    return total;
  }
  /// Envelopes sent per destination task since the last call: invokes
  /// `fn(dst, count)` per destination, then resets the counters (capacity
  /// is kept — the sampling loop performs no steady-state allocations).
  template <typename Fn>
  void drain_sent(Fn&& fn) {
    sent_.for_each([&fn](sched::TaskId dst, std::uint64_t count) {
      fn(dst, count);
    });
    sent_.clear();
  }

  /// Spout-only hooks with no-op defaults (avoids downcasts in the
  /// tracker and the cluster's spout-pause path).
  virtual void on_root_failed(std::uint64_t /*root_id*/) {}
  virtual void pause_spout_until(sim::Time /*t*/) {}

  /// State hooks with no-op defaults. on_checkpoint_committed releases the
  /// acks a stateful bolt deferred against rounds <= ckpt; state_store is
  /// non-null only for bolt executors hosting a stateful component.
  virtual void on_checkpoint_committed(std::uint64_t /*ckpt*/) {}
  [[nodiscard]] virtual const state::StateStore* state_store() const {
    return nullptr;
  }
  /// Acks still gated on a checkpoint commit (observability: a stuck
  /// queue here means rounds stopped completing for this executor).
  [[nodiscard]] virtual std::size_t deferred_ack_count() const { return 0; }
  /// Covering round of the oldest gated ack (0 = untagged: enqueued since
  /// the last alignment here).
  [[nodiscard]] virtual std::uint64_t deferred_head_round() const {
    return 0;
  }

 protected:
  /// Runs the component logic for one envelope (after its service time).
  virtual void process(Envelope& env) = 0;
  /// CPU cost of servicing `env` in mega-cycles.
  [[nodiscard]] virtual double service_cost_mc(const Envelope& env) const = 0;
  /// Blocking I/O portion of the service (occupies the thread, not CPU).
  [[nodiscard]] virtual double service_io_s(const Envelope& /*env*/) const {
    return 0.0;
  }
  /// Called from start() after registration.
  virtual void on_start() {}
  /// Called from shutdown() before deregistration.
  virtual void on_shutdown() {}

  friend class EmissionHelper;

  /// Sends an envelope to a destination task through the cluster (records
  /// the send for the load monitor).
  void send_to(sched::TaskId dst, Envelope env);

  Cluster& cluster_;
  Worker& worker_;
  sched::NodeId node_id_;

 private:
  void begin_service();
  void finish_service();
  /// Evicts the oldest queued data envelope (skipping the in-service front
  /// while busy) to make room for an arrival. False if none is evictable.
  bool shed_oldest_data();

  // By value: the cluster's task table can reallocate on later submits.
  const TaskInfo info_;
  sim::RingDeque<Envelope> queue_;
  std::size_t data_queued_ = 0;
  bool running_ = false;
  bool busy_ = false;
  sim::EventId service_event_ = sim::kInvalidEvent;
  double mega_cycles_ = 0;
  std::uint64_t sent_bytes_ = 0;
  sim::FlatMap<sched::TaskId, std::uint64_t, -1> sent_;
};

/// Shared emission logic: computes target tasks per subscription and
/// grouping, assigns fresh XOR edge ids, and sends data envelopes.
/// Returns the XOR of all new edge ids (for the ack protocol).
class EmissionHelper {
 public:
  EmissionHelper(Cluster& cluster, Executor& self);

  /// Emits `tuple` from `self`'s component to all subscribers. Each send
  /// copies the ref (one refcount bump), never the tuple itself. `path` is
  /// the emission's exactly-once lineage id (0 outside state mode); when
  /// nonzero, shuffle grouping routes by hash of the path instead of the
  /// round-robin counter, so every replay attempt of a tree reaches the
  /// same consumer tasks (the dedup sets' locality requirement).
  std::uint64_t emit(const topo::TupleRef& tuple, std::uint64_t root_id,
                     std::uint64_t path = 0);

  /// Direct grouping emission to one task of a named consumer.
  std::uint64_t emit_direct(const std::string& consumer, int task_index,
                            const topo::TupleRef& tuple,
                            std::uint64_t root_id, std::uint64_t path = 0);

  /// Sends one kBarrier envelope (root_id = ckpt) to every consumer task
  /// on every subscription — each input channel sees the barrier once.
  void broadcast_barrier(std::uint64_t ckpt);

 private:
  struct Out {
    const topo::ComponentDef* consumer;
    topo::StreamSubscription sub;
    std::vector<sched::TaskId> targets;  // consumer tasks, sorted
    std::uint64_t shuffle_counter = 0;
  };

  Cluster& cluster_;
  Executor& self_;
  std::vector<Out> outs_;
};

class BoltExecutor final : public Executor, private topo::BoltContext {
 public:
  BoltExecutor(Cluster& cluster, Worker& worker, const TaskInfo& info);

  void on_checkpoint_committed(std::uint64_t ckpt) override;
  [[nodiscard]] const state::StateStore* state_store() const override {
    return store_.get();
  }
  [[nodiscard]] std::size_t deferred_ack_count() const override {
    return deferred_.size();
  }
  [[nodiscard]] std::uint64_t deferred_head_round() const override {
    return deferred_.empty() ? 0 : deferred_.front().ckpt;
  }

 protected:
  void process(Envelope& env) override;
  [[nodiscard]] double service_cost_mc(const Envelope& env) const override;
  [[nodiscard]] double service_io_s(const Envelope& env) const override;
  void on_start() override;

 private:
  // BoltContext:
  void emit(topo::Tuple tuple) override;
  void emit_direct(const std::string& consumer, int task_index,
                   topo::Tuple tuple) override;
  [[nodiscard]] int task_index() const override { return info().index; }
  [[nodiscard]] int component_parallelism() const override {
    return info().component->parallelism;
  }

  void ack_input(const Envelope& env, std::uint64_t emitted_xor);
  void schedule_tick();
  void on_shutdown() override;

  /// Runs one data envelope through dedup + execute + ack (the post-
  /// alignment-hold half of process()).
  void process_data(Envelope& env);
  /// Barrier alignment (state mode; all bolts align, stateful ones also
  /// snapshot). See the .cpp for the protocol.
  void on_barrier(const Envelope& env);
  void complete_alignment(std::uint64_t ckpt);
  void drain_held();
  void apply_restore();
  /// Lineage path of the next emission while current_ is being processed
  /// (0 outside state mode or for unanchored inputs).
  [[nodiscard]] std::uint64_t next_emission_path();

  std::unique_ptr<topo::Bolt> bolt_;
  std::unique_ptr<EmissionHelper> emitter_;
  const Envelope* current_ = nullptr;
  std::uint64_t emitted_xor_ = 0;
  sim::EventId tick_event_ = sim::kInvalidEvent;
  bool tick_queued_ = false;

  /// --- Stateful operators (cluster config state.enabled). ---
  bool state_mode_ = false;
  /// Keyed store; non-null only for stateful components (bound into the
  /// bolt before prepare(), snapshotted at barriers, restored on restart).
  std::unique_ptr<state::StateStore> store_;
  /// Producer tasks across all input subscriptions (sorted, unique): one
  /// barrier per round must arrive from each before alignment completes.
  std::vector<sched::TaskId> barrier_sources_;
  /// Highest barrier round seen per producer task.
  sim::FlatMap<sched::TaskId, std::uint64_t, -1> barrier_seen_;
  /// Round currently aligning (0 = none) and last round aligned here.
  std::uint64_t aligning_ = 0;
  std::uint64_t last_aligned_ = 0;
  /// Post-barrier data from already-barriered channels, parked until the
  /// round completes or aborts (their service time was already paid).
  sim::RingDeque<Envelope> held_;
  /// Acks awaiting durability: tagged with their covering round at
  /// alignment, released by on_checkpoint_committed.
  struct DeferredAck {
    Envelope ack;
    std::uint64_t ckpt = 0;  // 0 = not yet covered by a round
  };
  sim::RingDeque<DeferredAck> deferred_;
  /// Per-input emission counter feeding child_path().
  std::uint64_t emission_ordinal_ = 0;
  /// Pending rehydration (copied from the durable store at on_start; the
  /// kStateRestore envelope pays read latency + bytes/bandwidth first).
  std::unique_ptr<state::Snapshot> restore_snap_;
  std::uint64_t restore_ckpt_ = 0;
};

class SpoutExecutor final : public Executor {
 public:
  SpoutExecutor(Cluster& cluster, Worker& worker, const TaskInfo& info);

  /// Suspends emission until the given time (T-Storm reassignment halt).
  void pause_until(sim::Time t);

  void on_root_failed(std::uint64_t root_id) override;
  void pause_spout_until(sim::Time t) override { pause_until(t); }

 protected:
  void process(Envelope& env) override;
  [[nodiscard]] double service_cost_mc(const Envelope& env) const override;
  void on_start() override;
  void on_shutdown() override;

 private:
  void poll();
  /// Emits a root tuple. `uid` is the tree uid for exactly-once lineage:
  /// 0 for fresh emissions (the drawn root id becomes the uid), the
  /// original attempt-0 uid for replays (carried in Envelope::path), so
  /// every attempt derives identical emission paths.
  void emit_root(topo::TupleRef tuple, int attempt, std::uint64_t uid);

  std::unique_ptr<topo::Spout> spout_;
  std::unique_ptr<EmissionHelper> emitter_;
  sim::EventId poll_event_ = sim::kInvalidEvent;
  bool emit_queued_ = false;
  sim::Time paused_until_ = 0;
  std::vector<sched::TaskId> acker_tasks_;
  /// Failed tuples waiting to be re-emitted. Drained through the same
  /// rate-controlled emission path as fresh tuples (one per poll), exactly
  /// like a Storm spout replaying from its source on nextTuple — replays
  /// must not bypass rate control or an overloaded topology can never
  /// drain its failure backlog.
  sim::RingDeque<Envelope> replay_buffer_;
};

class AckerExecutor final : public Executor {
 public:
  AckerExecutor(Cluster& cluster, Worker& worker, const TaskInfo& info);

  [[nodiscard]] std::size_t pending_entries() const {
    return pending_.size();
  }

 protected:
  void process(Envelope& env) override;
  [[nodiscard]] double service_cost_mc(const Envelope& env) const override;

 private:
  struct AckState {
    std::uint64_t xor_val = 0;
    sched::TaskId spout_task = -1;
    sim::Time created = 0;
    bool init_seen = false;
  };

  /// Storm's acker keeps its pending map in a RotatingMap so trees whose
  /// tuples were lost don't leak: entries older than twice the tuple
  /// timeout are dropped. Swept lazily every kSweepInterval messages.
  void maybe_expire();

  static constexpr std::uint64_t kSweepInterval = 4096;
  /// Flat map keyed by root id (never 0): no node allocation per tree —
  /// capacity plateaus at the in-flight high-water mark.
  sim::FlatMap<std::uint64_t, AckState, 0> pending_;
  std::uint64_t processed_ = 0;
};

}  // namespace tstorm::runtime
