// WorkerNode: physical machine model. Tracks how many executor threads are
// resident and how many are actively consuming CPU; the executor service
// path uses these to compute processor-sharing slowdown (overload) and
// context-switch inflation (crowding).
#pragma once

#include <algorithm>
#include <cassert>

#include "sched/types.h"

namespace tstorm::runtime {

class WorkerNode {
 public:
  WorkerNode(sched::NodeId id, int cores, double per_core_mhz,
             double memory_mib = 16384.0, double network_mbps = 1000.0)
      : id_(id),
        cores_(cores),
        per_core_mhz_(per_core_mhz),
        memory_mib_(memory_mib),
        network_mbps_(network_mbps) {}

  [[nodiscard]] sched::NodeId id() const { return id_; }
  [[nodiscard]] int cores() const { return cores_; }

  /// Machine availability (node-failure injection). An unavailable node's
  /// slots are withheld from schedulers and its supervisor is down.
  [[nodiscard]] bool available() const { return available_; }
  void set_available(bool available) { available_ = available; }
  [[nodiscard]] double per_core_mhz() const { return per_core_mhz_; }
  [[nodiscard]] double capacity_mhz() const {
    return static_cast<double>(cores_) * per_core_mhz_;
  }

  /// Scheduler-visible RAM / NIC capacity (see runtime::NodeSpec).
  [[nodiscard]] double memory_mib() const { return memory_mib_; }
  [[nodiscard]] double network_mbps() const { return network_mbps_; }

  /// Full capacity vector in the scheduler's resource layout.
  [[nodiscard]] sched::ResourceVector capacity_vector() const {
    return {capacity_mhz(), memory_mib_, network_mbps_};
  }

  /// Executor thread lifecycle (resident whether or not it is busy).
  void thread_started() { ++resident_; }
  void thread_finished() {
    assert(resident_ > 0);
    --resident_;
  }

  /// Service accounting: an executor is "busy" while processing a tuple.
  void service_started() { ++busy_; }
  void service_finished() {
    assert(busy_ > 0);
    --busy_;
  }

  /// Worker-process lifecycle (each JVM adds overhead threads: transfer,
  /// receiver, heartbeat, GC — the crowding the paper's worker
  /// consolidation removes).
  void worker_started() { ++workers_; }
  void worker_finished() {
    assert(workers_ > 0);
    --workers_;
  }

  [[nodiscard]] int resident_threads() const { return resident_; }
  [[nodiscard]] int busy_threads() const { return busy_; }
  [[nodiscard]] int workers() const { return workers_; }

  /// Excess schedulable threads beyond the core count, counting busy
  /// executor threads plus per-worker overhead threads. Crowded nodes
  /// context-switch on every message handoff, inflating both service
  /// times and message latency.
  [[nodiscard]] double crowding(double overhead_threads_per_worker) const {
    const double threads =
        static_cast<double>(busy_) +
        overhead_threads_per_worker * static_cast<double>(workers_);
    return std::max(0.0, threads - static_cast<double>(cores_));
  }

  /// >= 1; how much slower a busy thread runs than on an idle node. When
  /// more threads compute than there are cores, each gets a core share.
  [[nodiscard]] double processor_sharing_factor() const {
    return std::max(1.0,
                    static_cast<double>(busy_) / static_cast<double>(cores_));
  }

 private:
  sched::NodeId id_;
  int cores_;
  double per_core_mhz_;
  double memory_mib_;
  double network_mbps_;
  int resident_ = 0;
  int busy_ = 0;
  int workers_ = 0;
  bool available_ = true;
};

}  // namespace tstorm::runtime
