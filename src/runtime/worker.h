// Worker: one worker process (a JVM in Storm) bound to a slot, executing
// the executors of exactly one topology. Carries the assignment version it
// was created under — T-Storm's dispatcher routes in-flight tuples between
// coexisting old and new workers by this version (paper section IV-D).
#pragma once

#include <memory>
#include <vector>

#include "runtime/executor.h"
#include "runtime/task.h"
#include "sim/simulation.h"

namespace tstorm::runtime {

class Cluster;

enum class WorkerState { kStarting, kRunning, kDraining, kDead };

const char* to_string(WorkerState s);

class Worker {
 public:
  /// `tasks` must be sorted. The worker does not start until start() runs.
  Worker(Cluster& cluster, sched::TopologyId topology, sched::SlotIndex slot,
         sched::AssignmentVersion version, std::vector<sched::TaskId> tasks);
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// Schedules activation after `delay` (JVM spawn time). If
  /// `spout_halt_delay` > 0, spout executors stay paused for that long
  /// after activation (T-Storm smoothing).
  void start(sim::Time delay, sim::Time spout_halt_delay = 0);

  /// Keeps processing for `delay`, then stops (T-Storm delayed shutdown).
  void drain_then_stop(sim::Time delay);

  /// Stops immediately: executors shut down, queued tuples are lost.
  void stop();

  /// Adopts a newer assignment version without restarting (the worker's
  /// task set is unchanged by the new assignment).
  void update_version(sched::AssignmentVersion version);

  [[nodiscard]] WorkerState state() const { return state_; }
  [[nodiscard]] sched::TopologyId topology() const { return topology_; }
  [[nodiscard]] sched::SlotIndex slot() const { return slot_; }
  /// Cached at construction (slots never move between nodes); this is on
  /// the per-envelope path, so no repeated slot->node search.
  [[nodiscard]] sched::NodeId node_id() const { return node_id_; }
  [[nodiscard]] sched::AssignmentVersion version() const { return version_; }
  [[nodiscard]] const std::vector<sched::TaskId>& tasks() const {
    return tasks_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<Executor>>& executors()
      const {
    return executors_;
  }

 private:
  void activate(sim::Time spout_halt_delay);

  Cluster& cluster_;
  sched::TopologyId topology_;
  sched::SlotIndex slot_;
  sched::NodeId node_id_;
  sched::AssignmentVersion version_;
  std::vector<sched::TaskId> tasks_;
  std::vector<std::unique_ptr<Executor>> executors_;
  WorkerState state_ = WorkerState::kStarting;
  sim::EventId pending_event_ = sim::kInvalidEvent;
};

}  // namespace tstorm::runtime
