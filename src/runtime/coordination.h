// CoordinationStore: the ZooKeeper stand-in. Nimbus publishes versioned
// executor-to-slot assignments here; supervisors poll it on their sync
// period, exactly like Storm's assignment znodes.
#pragma once

#include <map>

#include "sched/types.h"

namespace tstorm::runtime {

struct AssignmentRecord {
  sched::AssignmentVersion version = 0;
  sched::Placement placement;
};

class CoordinationStore {
 public:
  void publish(sched::TopologyId topo, AssignmentRecord record) {
    assignments_[topo] = std::move(record);
  }

  /// nullptr if the topology has no assignment.
  [[nodiscard]] const AssignmentRecord* get(sched::TopologyId topo) const {
    auto it = assignments_.find(topo);
    return it == assignments_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] const std::map<sched::TopologyId, AssignmentRecord>& all()
      const {
    return assignments_;
  }

  void remove(sched::TopologyId topo) { assignments_.erase(topo); }

 private:
  std::map<sched::TopologyId, AssignmentRecord> assignments_;
};

}  // namespace tstorm::runtime
