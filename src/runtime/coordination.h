// CoordinationStore: the ZooKeeper stand-in. Nimbus publishes versioned
// executor-to-slot assignments here; supervisors poll it on their sync
// period, exactly like Storm's assignment znodes. Supervisors also publish
// liveness heartbeats here (Storm's supervisor znodes with ephemeral
// heartbeat data); Nimbus's failure detector reads them to declare nodes
// dead or alive.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <unordered_map>

#include "sched/types.h"
#include "sim/simulation.h"

namespace tstorm::runtime {

struct AssignmentRecord {
  sched::AssignmentVersion version = 0;
  sched::Placement placement;
};

class CoordinationStore {
 public:
  void publish(sched::TopologyId topo, AssignmentRecord record) {
    assignments_[topo] = std::move(record);
  }

  /// nullptr if the topology has no assignment.
  [[nodiscard]] const AssignmentRecord* get(sched::TopologyId topo) const {
    auto it = assignments_.find(topo);
    return it == assignments_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] const std::map<sched::TopologyId, AssignmentRecord>& all()
      const {
    return assignments_;
  }

  void remove(sched::TopologyId topo) {
    assignments_.erase(topo);
    backpressure_.erase(topo);
  }

  /// --- Backpressure flags (Storm 1.x's backpressure znodes). ---
  /// A worker whose executor queue crosses the high watermark sets the
  /// topology's flag; it is cleared once every contributing executor has
  /// drained below the low watermark. Spout-side logic polls this flag to
  /// decide whether to keep emitting.
  void set_backpressure(sched::TopologyId topo, bool on) {
    if (on) {
      backpressure_.insert(topo);
    } else {
      backpressure_.erase(topo);
    }
  }

  [[nodiscard]] bool backpressure(sched::TopologyId topo) const {
    return backpressure_.count(topo) != 0;
  }

  /// --- Supervisor heartbeats. ---
  /// Records that `node`'s supervisor was alive at time `t` (monotone:
  /// stale writes are ignored, though the single-threaded simulation never
  /// produces them).
  void heartbeat(sched::NodeId node, sim::Time t) {
    auto [it, inserted] = heartbeats_.try_emplace(node, t);
    if (!inserted && t > it->second) it->second = t;
  }

  /// Time of the node's last recorded heartbeat; nullopt if none ever
  /// arrived (node never came up, or every beat was lost on the wire).
  [[nodiscard]] std::optional<sim::Time> last_heartbeat(
      sched::NodeId node) const {
    auto it = heartbeats_.find(node);
    if (it == heartbeats_.end()) return std::nullopt;
    return it->second;
  }

 private:
  std::map<sched::TopologyId, AssignmentRecord> assignments_;
  std::unordered_map<sched::NodeId, sim::Time> heartbeats_;
  std::set<sched::TopologyId> backpressure_;
};

}  // namespace tstorm::runtime
