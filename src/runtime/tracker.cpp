#include "runtime/tracker.h"

#include <limits>

#include "runtime/cluster.h"

namespace tstorm::runtime {

TupleTracker::TupleTracker(Cluster& cluster,
                           metrics::CompletionRecorder& recorder)
    : cluster_(cluster), recorder_(recorder) {}

void TupleTracker::register_root(std::uint64_t root_id,
                                 sched::TaskId spout_task,
                                 std::shared_ptr<const topo::Tuple> tuple,
                                 int attempt) {
  Entry e;
  e.spout_task = spout_task;
  e.emit_time = cluster_.sim().now();
  e.tuple = std::move(tuple);
  e.attempt = attempt;
  e.timeout_event = cluster_.sim().schedule_after(
      cluster_.config().tuple_timeout,
      [this, root_id] { on_timeout(root_id); });
  entries_[root_id] = std::move(e);
  ++pending_[spout_task];
  ++in_flight_;
}

void TupleTracker::on_ack_complete(std::uint64_t root_id) {
  auto it = entries_.find(root_id);
  if (it == entries_.end()) return;  // duplicate ack
  Entry& e = it->second;
  if (e.failed) {
    // Acked after the timeout fired: the work did complete, just too late
    // (paper Fig. 3 shows processing times far beyond the 30 s timeout).
    recorder_.record_completion(e.emit_time, cluster_.sim().now(),
                                /*late=*/true);
  } else {
    cluster_.sim().cancel(e.timeout_event);
    recorder_.record_completion(e.emit_time, cluster_.sim().now(),
                                /*late=*/false);
    --pending_[e.spout_task];
    --in_flight_;
  }
  entries_.erase(it);
}

void TupleTracker::on_timeout(std::uint64_t root_id) {
  auto it = entries_.find(root_id);
  if (it == entries_.end()) return;
  Entry& e = it->second;
  e.timeout_event = sim::kInvalidEvent;
  e.failed = true;
  recorder_.record_failure(cluster_.sim().now());
  --pending_[e.spout_task];
  --in_flight_;

  // Notify the (current) spout instance so user code sees fail().
  if (Executor* inst = cluster_.resolve(
          e.spout_task, std::numeric_limits<sched::AssignmentVersion>::max());
      inst != nullptr) {
    inst->on_root_failed(root_id);
  }

  const int max_replays = cluster_.config().max_replays;
  if (max_replays > 0 && e.attempt + 1 <= max_replays && e.tuple) {
    recorder_.record_replay(cluster_.sim().now());
    Envelope replay;
    replay.kind = MsgKind::kReplay;
    replay.tuple = e.tuple;
    replay.attempt = e.attempt + 1;
    cluster_.deliver_control(e.spout_task, std::move(replay));
  }
  // Keep the entry (minus the retained tuple) so a late ack can still be
  // recorded as a late completion — but only for a bounded grace period,
  // or overloaded runs would leak an entry per failed tuple.
  e.tuple.reset();
  cluster_.sim().schedule_after(
      cluster_.config().late_ack_grace_factor *
          cluster_.config().tuple_timeout,
      [this, root_id] {
        auto eit = entries_.find(root_id);
        if (eit != entries_.end() && eit->second.failed) {
          entries_.erase(eit);
        }
      });
}

int TupleTracker::pending(sched::TaskId spout_task) const {
  auto it = pending_.find(spout_task);
  return it == pending_.end() ? 0 : it->second;
}

}  // namespace tstorm::runtime
