#include "runtime/tracker.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "runtime/cluster.h"

namespace tstorm::runtime {

TupleTracker::TupleTracker(Cluster& cluster,
                           metrics::CompletionRecorder& recorder)
    : cluster_(cluster),
      recorder_(recorder),
      // Dedicated substream: backoff jitter draws must not perturb the
      // cluster's main RNG (which feeds workload generators).
      rng_(cluster.config().seed ^ 0x7265706c61796aULL) {}

void TupleTracker::register_root(std::uint64_t root_id,
                                 sched::TaskId spout_task,
                                 topo::TupleRef tuple, int attempt,
                                 std::uint64_t uid) {
  // A forced re-registration of a tracked root id (spouts re-draw against
  // contains(), but direct callers can still collide) must not overwrite
  // live accounting: settle the old entry first. A live predecessor is
  // recorded as failed (its ack can never be told apart from ours again);
  // a failed one just loses the rest of its late-ack grace window.
  if (Entry* stale = entries_.find(root_id); stale != nullptr) {
    if (!stale->failed) {
      cluster_.sim().cancel(stale->timeout_event);
      recorder_.record_failure(cluster_.sim().now());
      if (--pending_[stale->spout_task] <= 0) {
        pending_.erase(stale->spout_task);
      }
      --in_flight_;
    }
    entries_.erase(root_id);
  }
  Entry e;
  e.spout_task = spout_task;
  e.emit_time = cluster_.sim().now();
  e.tuple = std::move(tuple);
  e.attempt = attempt;
  e.uid = uid != 0 ? uid : root_id;
  e.epoch = ++next_epoch_;
  const std::uint64_t epoch = e.epoch;
  e.timeout_event = cluster_.sim().schedule_after(
      cluster_.config().tuple_timeout,
      [this, root_id, epoch] { on_timeout(root_id, epoch); });
  entries_[root_id] = std::move(e);
  ++pending_[spout_task];
  ++in_flight_;
  ++total_registered_;
}

void TupleTracker::on_ack_complete(std::uint64_t root_id) {
  Entry* it = entries_.find(root_id);
  if (it == nullptr) return;  // duplicate ack
  Entry& e = *it;
  if (e.failed) {
    // Acked after the timeout fired: the work did complete, just too late
    // (paper Fig. 3 shows processing times far beyond the 30 s timeout).
    recorder_.record_completion(e.emit_time, cluster_.sim().now(),
                                /*late=*/true);
  } else {
    cluster_.sim().cancel(e.timeout_event);
    recorder_.record_completion(e.emit_time, cluster_.sim().now(),
                                /*late=*/false);
    // Erase exhausted per-spout counters so the map tracks live spouts,
    // not every spout task ever seen.
    if (--pending_[e.spout_task] <= 0) pending_.erase(e.spout_task);
    --in_flight_;
  }
  entries_.erase(root_id);
  cluster_.tuple_trace().finish_root(root_id, cluster_.sim().now(),
                                     /*completed=*/true);
}

double TupleTracker::backoff_delay(int attempt) const {
  const ClusterConfig& cfg = cluster_.config();
  if (cfg.replay_backoff_base <= 0.0) return 0.0;
  // min(base * 2^attempt, max), with attempt counted from 1 (first replay
  // waits one base period).
  const int exponent = std::max(0, attempt - 1);
  double delay = cfg.replay_backoff_base * std::ldexp(1.0, exponent);
  delay = std::min(delay, cfg.replay_backoff_max);
  if (cfg.replay_backoff_jitter > 0.0) {
    delay *= 1.0 + cfg.replay_backoff_jitter * rng_.uniform();
  }
  return delay;
}

double TupleTracker::retry_delay() const {
  // At least a quarter second even with backoff disabled, or a dead spout
  // would be re-polled every event.
  return std::max(cluster_.config().replay_backoff_base, 0.25);
}

void TupleTracker::requeue_replay(Envelope env) {
  const sched::TaskId spout_task = env.dst;
  const int attempt = env.attempt;
  const std::uint64_t uid = env.path;
  topo::TupleRef tuple = std::move(env.tuple);
  // Already counted as a replay at its first dispatch: record=false.
  cluster_.sim().schedule_after(
      retry_delay(),
      [this, tuple = std::move(tuple), spout_task, attempt, uid] {
        dispatch_replay(spout_task, tuple, attempt, uid, /*record=*/false);
      });
}

void TupleTracker::dispatch_replay(sched::TaskId spout_task,
                                   topo::TupleRef tuple, int attempt,
                                   std::uint64_t uid, bool record) {
  if (record) recorder_.record_replay(cluster_.sim().now());
  Envelope replay;
  replay.kind = MsgKind::kReplay;
  replay.tuple = tuple;  // keep our ref: a failed delivery may retry
  replay.attempt = attempt;
  replay.path = uid;
  if (cluster_.deliver_control(spout_task, std::move(replay))) return;
  // No live spout instance at dispatch time (topology killed, or node
  // dead with no reassignment published yet). In state mode, retry while
  // the topology still has an assignment — exactly-once soaks need every
  // tree to land, and reassignment will revive the spout. Otherwise the
  // root fails terminally.
  if (cluster_.state_enabled() &&
      cluster_.coordination().get(cluster_.task_info(spout_task).topology) !=
          nullptr) {
    cluster_.sim().schedule_after(
        retry_delay(),
        [this, tuple = std::move(tuple), spout_task, attempt, uid] {
          dispatch_replay(spout_task, tuple, attempt, uid, /*record=*/false);
        });
    return;
  }
  ++replays_dropped_;
}

void TupleTracker::on_timeout(std::uint64_t root_id, std::uint64_t epoch) {
  Entry* it = entries_.find(root_id);
  if (it == nullptr || it->epoch != epoch) return;
  Entry& e = *it;
  e.timeout_event = sim::kInvalidEvent;
  e.failed = true;
  recorder_.record_failure(cluster_.sim().now());
  if (--pending_[e.spout_task] <= 0) pending_.erase(e.spout_task);
  --in_flight_;
  cluster_.tuple_trace().finish_root(root_id, cluster_.sim().now(),
                                     /*completed=*/false);

  // Notify the (current) spout instance so user code sees fail().
  if (Executor* inst = cluster_.resolve(
          e.spout_task, std::numeric_limits<sched::AssignmentVersion>::max());
      inst != nullptr) {
    inst->on_root_failed(root_id);
  }

  const int max_replays = cluster_.config().max_replays;
  if (max_replays > 0 && e.attempt + 1 <= max_replays && e.tuple) {
    const double delay = backoff_delay(e.attempt + 1);
    if (delay <= 0.0) {
      dispatch_replay(e.spout_task, e.tuple, e.attempt + 1, e.uid);
    } else {
      // Captures {this, TupleRef, task, attempt, uid} = 40 bytes: inside
      // InlineFn's inline buffer, no heap allocation per replay. The ref
      // keeps the pooled tuple alive until the replay dispatches, even if
      // the tracker entry is erased meanwhile.
      const sched::TaskId spout_task = e.spout_task;
      const int attempt = e.attempt + 1;
      const std::uint64_t uid = e.uid;
      topo::TupleRef tuple = e.tuple;
      cluster_.sim().schedule_after(
          delay, [this, tuple = std::move(tuple), spout_task, attempt, uid] {
            dispatch_replay(spout_task, tuple, attempt, uid);
          });
    }
  }
  // Keep the entry (minus the retained tuple) so a late ack can still be
  // recorded as a late completion — but only for a bounded grace period,
  // or overloaded runs would leak an entry per failed tuple.
  e.tuple.reset();
  cluster_.sim().schedule_after(
      cluster_.config().late_ack_grace_factor *
          cluster_.config().tuple_timeout,
      [this, root_id, epoch] {
        const Entry* eit = entries_.find(root_id);
        if (eit != nullptr && eit->epoch == epoch && eit->failed) {
          entries_.erase(root_id);
        }
      });
}

int TupleTracker::pending(sched::TaskId spout_task) const {
  const int* it = pending_.find(spout_task);
  return it == nullptr ? 0 : *it;
}

}  // namespace tstorm::runtime
