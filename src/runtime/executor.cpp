#include "runtime/executor.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "runtime/cluster.h"
#include "runtime/worker.h"

namespace tstorm::runtime {

// ---------------------------------------------------------------- Executor

Executor::Executor(Cluster& cluster, Worker& worker, const TaskInfo& info)
    : cluster_(cluster),
      worker_(worker),
      node_id_(worker.node_id()),
      info_(info) {}

Executor::~Executor() {
  // Workers call shutdown() before destruction; this is a backstop so a
  // destroyed executor can never stay registered.
  if (running_) shutdown();
}

void Executor::start() {
  assert(!running_);
  running_ = true;
  cluster_.node(node_id()).thread_started();
  cluster_.register_executor(this);
  on_start();
}

void Executor::shutdown() {
  if (!running_) return;
  on_shutdown();
  if (busy_) {
    cluster_.sim().cancel(service_event_);
    service_event_ = sim::kInvalidEvent;
    cluster_.node(node_id()).service_finished();
    busy_ = false;
  }
  // Queued envelopes are lost with the worker process; data tuples will
  // surface as timeouts at their spouts. Replay envelopes carry tuples
  // too — a replay queued at a dying spout is just as lost as fresh data,
  // so it must be attributed or conservation audits under-count.
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Envelope& env = queue_[i];
    if (env.kind == MsgKind::kData || env.kind == MsgKind::kReplay) {
      cluster_.note_drop(DropCause::kShutdownDrain);
    }
  }
  queue_.clear();
  data_queued_ = 0;
  cluster_.flow().forget(this, info_.topology);
  running_ = false;
  cluster_.unregister_executor(this);
  cluster_.node(node_id()).thread_finished();
}

void Executor::deliver(Envelope env) {
  if (!running_) {
    if (env.kind == MsgKind::kData) {
      cluster_.note_drop(DropCause::kDeadInstance);
    }
    return;
  }
  // Tuple tracing: close the network-hop span, open the queue wait.
  if (env.trace_t0 >= 0.0) {
    const sim::Time now = cluster_.sim().now();
    cluster_.tuple_trace().add_span(
        env.root_id, obs::Span{obs::SpanKind::kNetworkHop, task(), env.src,
                               node_id(), env.trace_t0, now});
    env.trace_t0 = now;
  }
  flow::FlowController& flow = cluster_.flow();
  if (flow.enabled() && env.kind == MsgKind::kData &&
      data_queued_ >= static_cast<std::size_t>(flow.capacity())) {
    // Hard-full: shed. Either the arrival is the victim, or the oldest
    // queued data tuple is evicted to admit it (falling back to the
    // arrival when nothing is evictable — e.g. the only queued data
    // envelope is the one in service).
    if (flow.choose_victim() == flow::ShedVictim::kNewest ||
        !shed_oldest_data()) {
      cluster_.note_drop(DropCause::kLoadShed);
      flow.note_shed(info_.topology, task(), node_id());
      return;
    }
  }
  if (env.kind == MsgKind::kData) ++data_queued_;
  queue_.push_back(std::move(env));
  flow.on_enqueue(this, info_.topology, data_queued_);
  if (!busy_) begin_service();
}

bool Executor::shed_oldest_data() {
  // While busy, queue_.front() is the in-service envelope — evicting it
  // would corrupt the service in flight, so the scan starts at 1.
  for (std::size_t i = busy_ ? 1 : 0; i < queue_.size(); ++i) {
    if (queue_[i].kind != MsgKind::kData) continue;
    queue_.erase_at(i);
    --data_queued_;
    cluster_.note_drop(DropCause::kLoadShed);
    cluster_.flow().note_shed(info_.topology, task(), node_id());
    return true;
  }
  return false;
}

void Executor::begin_service() {
  assert(!queue_.empty());
  busy_ = true;
  WorkerNode& node = cluster_.node(node_id());
  node.service_started();

  Envelope& env = queue_.front();
  // Tuple tracing: close the queue-wait span, open the execute phase.
  if (env.trace_t0 >= 0.0) {
    const sim::Time now = cluster_.sim().now();
    cluster_.tuple_trace().add_span(
        env.root_id, obs::Span{obs::SpanKind::kQueueWait, task(), -1,
                               node_id(), env.trace_t0, now});
    env.trace_t0 = now;
  }
  const double mc = service_cost_mc(env);
  mega_cycles_ += mc;

  // Processor sharing: when more threads compute than cores exist, each
  // runs proportionally slower (overload -> queueing -> Fig. 3). Context
  // switching adds a smaller penalty per crowding thread.
  const double ps = node.processor_sharing_factor();
  const double cs =
      1.0 + cluster_.config().context_switch_coeff *
                node.crowding(cluster_.config().worker_overhead_threads);
  const double dt = (mc / node.per_core_mhz()) * ps * cs + service_io_s(env);

  service_event_ =
      cluster_.sim().schedule_after(dt, [this] { finish_service(); });
}

void Executor::finish_service() {
  service_event_ = sim::kInvalidEvent;
  cluster_.node(node_id()).service_finished();
  Envelope env = queue_.pop_front();
  busy_ = false;
  if (env.kind == MsgKind::kData) {
    --data_queued_;
    cluster_.flow().on_dequeue(this, info_.topology, data_queued_);
  }
  // Tuple tracing: close the execute span. Downstream sends made by
  // process() open fresh network hops via Cluster::send.
  if (env.trace_t0 >= 0.0) {
    cluster_.tuple_trace().add_span(
        env.root_id, obs::Span{obs::SpanKind::kExecute, task(), -1, node_id(),
                               env.trace_t0, cluster_.sim().now()});
    env.trace_t0 = -1.0;
  }
  process(env);
  if (running_ && !busy_ && !queue_.empty()) begin_service();
}

void Executor::send_to(sched::TaskId dst, Envelope env) {
  ++sent_[dst];
  cluster_.send(*this, dst, std::move(env));
}

double Executor::take_mega_cycles() {
  const double v = mega_cycles_;
  mega_cycles_ = 0;
  return v;
}

// --------------------------------------------------------- EmissionHelper

EmissionHelper::EmissionHelper(Cluster& cluster, Executor& self)
    : cluster_(cluster), self_(self) {
  const auto& info = self.info();
  const auto& topology = cluster.topology(info.topology);
  for (const auto& consumer : topology.consumers_of(info.component->name)) {
    Out out;
    out.consumer = consumer.component;
    out.sub = consumer.subscription;
    out.targets =
        cluster.tasks_of_component(info.topology, consumer.component->name);
    std::sort(out.targets.begin(), out.targets.end());
    // Offset shuffle round-robin by task id so parallel producers do not
    // all hit the same consumer task in lockstep.
    out.shuffle_counter = static_cast<std::uint64_t>(info.task);
    outs_.push_back(std::move(out));
  }
}

namespace {

Envelope make_data(sched::TaskId dst, const topo::TupleRef& tuple,
                   std::uint64_t root_id, std::uint64_t edge) {
  Envelope env;
  env.kind = MsgKind::kData;
  env.dst = dst;
  env.tuple = tuple;
  env.root_id = root_id;
  env.xor_val = edge;
  return env;
}

}  // namespace

std::uint64_t EmissionHelper::emit(const topo::TupleRef& tuple,
                                   std::uint64_t root_id) {
  std::uint64_t xor_edges = 0;
  for (auto& out : outs_) {
    if (out.targets.empty()) continue;
    switch (out.sub.grouping) {
      case topo::GroupingType::kShuffle: {
        const auto i = out.shuffle_counter++ % out.targets.size();
        const auto edge = cluster_.rng().next_u64();
        xor_edges ^= root_id != 0 ? edge : 0;
        self_.send_to(out.targets[i],
                      make_data(out.targets[i], tuple, root_id, edge));
        break;
      }
      case topo::GroupingType::kFields: {
        // Memoized per tuple: every hop that fields-groups on the same
        // declared field reuses the hash computed at first routing.
        const auto h = tuple->field_hash(
            static_cast<std::size_t>(std::max(0, out.sub.field_index)));
        const auto i = h % out.targets.size();
        const auto edge = cluster_.rng().next_u64();
        xor_edges ^= root_id != 0 ? edge : 0;
        self_.send_to(out.targets[i],
                      make_data(out.targets[i], tuple, root_id, edge));
        break;
      }
      case topo::GroupingType::kAll: {
        for (auto target : out.targets) {
          const auto edge = cluster_.rng().next_u64();
          xor_edges ^= root_id != 0 ? edge : 0;
          self_.send_to(target, make_data(target, tuple, root_id, edge));
        }
        break;
      }
      case topo::GroupingType::kGlobal: {
        const auto target = out.targets.front();  // lowest task id
        const auto edge = cluster_.rng().next_u64();
        xor_edges ^= root_id != 0 ? edge : 0;
        self_.send_to(target, make_data(target, tuple, root_id, edge));
        break;
      }
      case topo::GroupingType::kDirect:
        // Direct subscribers only receive via emit_direct().
        break;
    }
  }
  return xor_edges;
}

std::uint64_t EmissionHelper::emit_direct(const std::string& consumer,
                                          int task_index,
                                          const topo::TupleRef& tuple,
                                          std::uint64_t root_id) {
  for (auto& out : outs_) {
    if (out.consumer->name != consumer ||
        out.sub.grouping != topo::GroupingType::kDirect) {
      continue;
    }
    if (task_index < 0 ||
        task_index >= static_cast<int>(out.targets.size())) {
      return 0;
    }
    const auto target = out.targets[static_cast<std::size_t>(task_index)];
    const auto edge = cluster_.rng().next_u64();
    self_.send_to(target, make_data(target, tuple, root_id, edge));
    return root_id != 0 ? edge : 0;
  }
  return 0;
}

// ------------------------------------------------------------ BoltExecutor

BoltExecutor::BoltExecutor(Cluster& cluster, Worker& worker,
                           const TaskInfo& info)
    : Executor(cluster, worker, info) {}

void BoltExecutor::on_start() {
  bolt_ = info().component->bolt_factory();
  emitter_ = std::make_unique<EmissionHelper>(cluster_, *this);
  bolt_->prepare(info().index, info().component->parallelism);
  if (info().component->tick_interval > 0) schedule_tick();
}

void BoltExecutor::on_shutdown() {
  if (tick_event_ != sim::kInvalidEvent) {
    cluster_.sim().cancel(tick_event_);
    tick_event_ = sim::kInvalidEvent;
  }
}

void BoltExecutor::schedule_tick() {
  tick_event_ = cluster_.sim().schedule_after(
      info().component->tick_interval, [this] {
        schedule_tick();
        // Like the spout's emit signal: at most one tick in the queue.
        if (!tick_queued_) {
          tick_queued_ = true;
          Envelope tick;
          tick.kind = MsgKind::kTick;
          deliver(std::move(tick));
        }
      });
}

double BoltExecutor::service_cost_mc(const Envelope& env) const {
  if (env.kind == MsgKind::kData && env.tuple) {
    return bolt_->cpu_cost_mega_cycles(*env.tuple);
  }
  if (env.kind == MsgKind::kTick) return bolt_->tick_cost_mega_cycles();
  return 0.001;
}

double BoltExecutor::service_io_s(const Envelope& env) const {
  if (env.kind == MsgKind::kData && env.tuple) {
    return bolt_->io_time_seconds(*env.tuple);
  }
  return 0.0;
}

void BoltExecutor::process(Envelope& env) {
  if (env.kind == MsgKind::kTick) {
    tick_queued_ = false;
    // Tick emissions are unanchored (root id 0), like Storm tick tuples.
    current_ = nullptr;
    emitted_xor_ = 0;
    bolt_->on_tick(*this);
    return;
  }
  if (env.kind != MsgKind::kData || !env.tuple) return;
  current_ = &env;
  emitted_xor_ = 0;
  bolt_->execute(*env.tuple, *this);
  ack_input(env, emitted_xor_);
  current_ = nullptr;
}

void BoltExecutor::emit(topo::Tuple tuple) {
  const topo::TupleRef ref = topo::TupleRef::make(std::move(tuple));
  const std::uint64_t root = current_ != nullptr ? current_->root_id : 0;
  emitted_xor_ ^= emitter_->emit(ref, root);
}

void BoltExecutor::emit_direct(const std::string& consumer, int task_index,
                               topo::Tuple tuple) {
  const topo::TupleRef ref = topo::TupleRef::make(std::move(tuple));
  const std::uint64_t root = current_ != nullptr ? current_->root_id : 0;
  emitted_xor_ ^= emitter_->emit_direct(consumer, task_index, ref, root);
}

void BoltExecutor::ack_input(const Envelope& env, std::uint64_t emitted_xor) {
  if (env.root_id == 0) return;  // unanchored
  const auto& ackers = cluster_.acker_tasks(info().topology);
  if (ackers.empty()) return;
  Envelope ack;
  ack.kind = MsgKind::kAck;
  ack.root_id = env.root_id;
  ack.xor_val = env.xor_val ^ emitted_xor;
  const auto target = ackers[env.root_id % ackers.size()];
  ack.dst = target;
  send_to(target, std::move(ack));
}

// ----------------------------------------------------------- SpoutExecutor

SpoutExecutor::SpoutExecutor(Cluster& cluster, Worker& worker,
                             const TaskInfo& info)
    : Executor(cluster, worker, info) {}

void SpoutExecutor::on_start() {
  spout_ = info().component->spout_factory();
  emitter_ = std::make_unique<EmissionHelper>(cluster_, *this);
  acker_tasks_ = cluster_.acker_tasks(info().topology);
  spout_->prepare(info().index, info().component->parallelism);
  poll_event_ = cluster_.sim().schedule_after(
      info().component->emit_interval, [this] { poll(); });
}

void SpoutExecutor::on_shutdown() {
  if (poll_event_ != sim::kInvalidEvent) {
    cluster_.sim().cancel(poll_event_);
    poll_event_ = sim::kInvalidEvent;
  }
  // Replays parked for re-emission die with the spout; without a drop
  // record the conservation audit would see them vanish.
  for (std::size_t i = 0; i < replay_buffer_.size(); ++i) {
    cluster_.note_drop(DropCause::kShutdownDrain);
  }
  replay_buffer_.clear();
}

void SpoutExecutor::pause_until(sim::Time t) {
  paused_until_ = std::max(paused_until_, t);
}

void SpoutExecutor::on_root_failed(std::uint64_t root_id) {
  if (spout_) spout_->on_fail(root_id);
}

void SpoutExecutor::poll() {
  // Rate control: one poll per emit_interval (the paper's spout sleeps
  // 5 ms between emissions; the sleep is excluded from processing time by
  // construction here — emission is instantaneous in simulated time).
  poll_event_ = cluster_.sim().schedule_after(
      info().component->emit_interval, [this] { poll(); });
  if (cluster_.sim().now() < paused_until_) return;
  const int max_pending = info().component->max_pending;
  if (max_pending > 0 &&
      cluster_.tracker().pending(task()) >= max_pending) {
    return;
  }
  if (!emit_queued_) {
    emit_queued_ = true;
    Envelope e;
    e.kind = MsgKind::kEmitSignal;
    deliver(std::move(e));
  }
}

double SpoutExecutor::service_cost_mc(const Envelope& env) const {
  switch (env.kind) {
    case MsgKind::kEmitSignal:
    case MsgKind::kReplay:
      return spout_->cpu_cost_mega_cycles();
    default:
      return cluster_.config().spout_control_cost_mc;
  }
}

void SpoutExecutor::process(Envelope& env) {
  switch (env.kind) {
    case MsgKind::kEmitSignal: {
      emit_queued_ = false;
      if (cluster_.sim().now() < paused_until_) return;
      // Replays first (a Storm spout re-emits failed ids before reading
      // new input), then fresh tuples — one emission per rate-control
      // slot either way.
      if (!replay_buffer_.empty()) {
        Envelope replay = replay_buffer_.pop_front();
        emit_root(std::move(replay.tuple), replay.attempt);
        return;
      }
      auto next = spout_->next_tuple();
      if (next.has_value()) {
        emit_root(topo::TupleRef::make(std::move(*next)), /*attempt=*/0);
      }
      break;
    }
    case MsgKind::kReplay:
      if (env.tuple) replay_buffer_.push_back(std::move(env));
      break;
    case MsgKind::kAckComplete:
      cluster_.tracker().on_ack_complete(env.root_id);
      spout_->on_ack(env.root_id);
      break;
    default:
      break;
  }
}

void SpoutExecutor::emit_root(topo::TupleRef tuple, int attempt) {
  if (acker_tasks_.empty()) {
    // No ackers: unanchored emission, no tracking (root id 0).
    emitter_->emit(tuple, 0);
    return;
  }
  std::uint64_t root = cluster_.rng().next_u64();
  if (root == 0) root = 1;
  // Root ids are drawn fresh per attempt, so a collision with a tracked
  // entry (live, or failed-in-grace) is a birthday accident — but an
  // overwrite would corrupt the tracker's pending/in-flight accounting.
  // Re-draw until unique among tracked roots.
  while (cluster_.tracker().contains(root)) {
    root = cluster_.rng().next_u64();
    if (root == 0) root = 1;
  }
  cluster_.tracker().register_root(root, task(), tuple, attempt);
  obs::TupleTraceCollector& tt = cluster_.tuple_trace();
  if (tt.enabled() && tt.should_sample()) {
    const sim::Time now = cluster_.sim().now();
    tt.begin_root(root, task(), attempt, now);
    tt.add_span(root, obs::Span{obs::SpanKind::kEmit, task(), -1, node_id(),
                                now, now});
  }
  const std::uint64_t xor_edges = emitter_->emit(tuple, root);
  Envelope init;
  init.kind = MsgKind::kAckInit;
  init.root_id = root;
  init.xor_val = xor_edges;
  const auto target = acker_tasks_[root % acker_tasks_.size()];
  init.dst = target;
  send_to(target, std::move(init));
}

// ----------------------------------------------------------- AckerExecutor

AckerExecutor::AckerExecutor(Cluster& cluster, Worker& worker,
                             const TaskInfo& info)
    : Executor(cluster, worker, info) {}

double AckerExecutor::service_cost_mc(const Envelope& /*env*/) const {
  return cluster_.config().acker_cost_mc;
}

void AckerExecutor::maybe_expire() {
  if (++processed_ % kSweepInterval != 0) return;
  // Same horizon as the tracker's late-ack grace: trees that can still
  // complete observably must keep their XOR state.
  const sim::Time horizon =
      cluster_.sim().now() - cluster_.config().late_ack_grace_factor *
                                 cluster_.config().tuple_timeout;
  pending_.erase_if([horizon](std::uint64_t /*root*/, const AckState& st) {
    return st.created < horizon;
  });
}

void AckerExecutor::process(Envelope& env) {
  maybe_expire();
  AckState* st = nullptr;
  switch (env.kind) {
    case MsgKind::kAckInit: {
      st = &pending_[env.root_id];
      if (st->xor_val == 0 && !st->init_seen) {
        st->created = cluster_.sim().now();
      }
      st->xor_val ^= env.xor_val;
      st->spout_task = env.src;
      st->init_seen = true;
      break;
    }
    case MsgKind::kAck: {
      bool inserted = false;
      st = &pending_.get_or_insert(env.root_id, &inserted);
      if (inserted) st->created = cluster_.sim().now();
      st->xor_val ^= env.xor_val;
      break;
    }
    default:
      return;
  }
  if (st->init_seen && st->xor_val == 0) {
    const auto spout = st->spout_task;
    Envelope done;
    done.kind = MsgKind::kAckComplete;
    done.root_id = env.root_id;
    done.dst = spout;
    pending_.erase(env.root_id);  // invalidates st
    send_to(spout, std::move(done));
  }
}

}  // namespace tstorm::runtime
