#include "runtime/executor.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "runtime/cluster.h"
#include "runtime/worker.h"

namespace tstorm::runtime {

// ---------------------------------------------------------------- Executor

Executor::Executor(Cluster& cluster, Worker& worker, const TaskInfo& info)
    : cluster_(cluster),
      worker_(worker),
      node_id_(worker.node_id()),
      info_(info) {}

Executor::~Executor() {
  // Workers call shutdown() before destruction; this is a backstop so a
  // destroyed executor can never stay registered.
  if (running_) shutdown();
}

void Executor::start() {
  assert(!running_);
  running_ = true;
  cluster_.node(node_id()).thread_started();
  cluster_.register_executor(this);
  on_start();
}

void Executor::shutdown() {
  if (!running_) return;
  on_shutdown();
  if (busy_) {
    cluster_.sim().cancel(service_event_);
    service_event_ = sim::kInvalidEvent;
    cluster_.node(node_id()).service_finished();
    busy_ = false;
  }
  // Queued envelopes are lost with the worker process; data tuples will
  // surface as timeouts at their spouts. Replay envelopes carry tuples
  // too — a replay queued at a dying spout is just as lost as fresh data,
  // so it must be attributed or conservation audits under-count. In state
  // mode replays are instead handed back to the tracker for re-dispatch:
  // exactly-once soaks need every tree to eventually land, and the dedup
  // sets make the extra attempt harmless.
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    Envelope& env = queue_[i];
    if (env.kind == MsgKind::kReplay && cluster_.state_enabled() &&
        env.tuple) {
      cluster_.tracker().requeue_replay(std::move(env));
    } else if (env.kind == MsgKind::kData || env.kind == MsgKind::kReplay) {
      cluster_.note_drop(DropCause::kShutdownDrain);
    }
  }
  queue_.clear();
  data_queued_ = 0;
  cluster_.flow().forget(this, info_.topology);
  running_ = false;
  cluster_.unregister_executor(this);
  cluster_.node(node_id()).thread_finished();
}

void Executor::deliver(Envelope env) {
  if (!running_) {
    if (env.kind == MsgKind::kData) {
      cluster_.note_drop(DropCause::kDeadInstance);
    }
    return;
  }
  // Tuple tracing: close the network-hop span, open the queue wait.
  if (env.trace_t0 >= 0.0) {
    const sim::Time now = cluster_.sim().now();
    cluster_.tuple_trace().add_span(
        env.root_id, obs::Span{obs::SpanKind::kNetworkHop, task(), env.src,
                               node_id(), env.trace_t0, now});
    env.trace_t0 = now;
  }
  flow::FlowController& flow = cluster_.flow();
  if (flow.enabled() && env.kind == MsgKind::kData &&
      data_queued_ >= static_cast<std::size_t>(flow.capacity())) {
    // Hard-full: shed. Either the arrival is the victim, or the oldest
    // queued data tuple is evicted to admit it (falling back to the
    // arrival when nothing is evictable — e.g. the only queued data
    // envelope is the one in service).
    if (flow.choose_victim() == flow::ShedVictim::kNewest ||
        !shed_oldest_data()) {
      cluster_.note_drop(DropCause::kLoadShed);
      flow.note_shed(info_.topology, task(), node_id());
      return;
    }
  }
  if (env.kind == MsgKind::kData) ++data_queued_;
  queue_.push_back(std::move(env));
  flow.on_enqueue(this, info_.topology, data_queued_);
  if (!busy_) begin_service();
}

bool Executor::shed_oldest_data() {
  // While busy, queue_.front() is the in-service envelope — evicting it
  // would corrupt the service in flight, so the scan starts at 1.
  for (std::size_t i = busy_ ? 1 : 0; i < queue_.size(); ++i) {
    if (queue_[i].kind != MsgKind::kData) continue;
    queue_.erase_at(i);
    --data_queued_;
    cluster_.note_drop(DropCause::kLoadShed);
    cluster_.flow().note_shed(info_.topology, task(), node_id());
    return true;
  }
  return false;
}

void Executor::begin_service() {
  assert(!queue_.empty());
  busy_ = true;
  WorkerNode& node = cluster_.node(node_id());
  node.service_started();

  Envelope& env = queue_.front();
  // Tuple tracing: close the queue-wait span, open the execute phase.
  if (env.trace_t0 >= 0.0) {
    const sim::Time now = cluster_.sim().now();
    cluster_.tuple_trace().add_span(
        env.root_id, obs::Span{obs::SpanKind::kQueueWait, task(), -1,
                               node_id(), env.trace_t0, now});
    env.trace_t0 = now;
  }
  const double mc = service_cost_mc(env);
  mega_cycles_ += mc;

  // Processor sharing: when more threads compute than cores exist, each
  // runs proportionally slower (overload -> queueing -> Fig. 3). Context
  // switching adds a smaller penalty per crowding thread.
  const double ps = node.processor_sharing_factor();
  const double cs =
      1.0 + cluster_.config().context_switch_coeff *
                node.crowding(cluster_.config().worker_overhead_threads);
  const double dt = (mc / node.per_core_mhz()) * ps * cs + service_io_s(env);

  service_event_ =
      cluster_.sim().schedule_after(dt, [this] { finish_service(); });
}

void Executor::finish_service() {
  service_event_ = sim::kInvalidEvent;
  cluster_.node(node_id()).service_finished();
  Envelope env = queue_.pop_front();
  busy_ = false;
  if (env.kind == MsgKind::kData) {
    --data_queued_;
    cluster_.flow().on_dequeue(this, info_.topology, data_queued_);
  }
  // Tuple tracing: close the execute span. Downstream sends made by
  // process() open fresh network hops via Cluster::send.
  if (env.trace_t0 >= 0.0) {
    cluster_.tuple_trace().add_span(
        env.root_id, obs::Span{obs::SpanKind::kExecute, task(), -1, node_id(),
                               env.trace_t0, cluster_.sim().now()});
    env.trace_t0 = -1.0;
  }
  process(env);
  if (running_ && !busy_ && !queue_.empty()) begin_service();
}

void Executor::send_to(sched::TaskId dst, Envelope env) {
  ++sent_[dst];
  sent_bytes_ += env.bytes();
  cluster_.send(*this, dst, std::move(env));
}

double Executor::take_mega_cycles() {
  const double v = mega_cycles_;
  mega_cycles_ = 0;
  return v;
}

// --------------------------------------------------------- EmissionHelper

EmissionHelper::EmissionHelper(Cluster& cluster, Executor& self)
    : cluster_(cluster), self_(self) {
  const auto& info = self.info();
  const auto& topology = cluster.topology(info.topology);
  for (const auto& consumer : topology.consumers_of(info.component->name)) {
    Out out;
    out.consumer = consumer.component;
    out.sub = consumer.subscription;
    out.targets =
        cluster.tasks_of_component(info.topology, consumer.component->name);
    std::sort(out.targets.begin(), out.targets.end());
    // Offset shuffle round-robin by task id so parallel producers do not
    // all hit the same consumer task in lockstep.
    out.shuffle_counter = static_cast<std::uint64_t>(info.task);
    outs_.push_back(std::move(out));
  }
}

namespace {

Envelope make_data(sched::TaskId dst, const topo::TupleRef& tuple,
                   std::uint64_t root_id, std::uint64_t edge,
                   std::uint64_t path) {
  Envelope env;
  env.kind = MsgKind::kData;
  env.dst = dst;
  env.tuple = tuple;
  env.root_id = root_id;
  env.xor_val = edge;
  env.path = path;
  return env;
}

}  // namespace

std::uint64_t EmissionHelper::emit(const topo::TupleRef& tuple,
                                   std::uint64_t root_id,
                                   std::uint64_t path) {
  std::uint64_t xor_edges = 0;
  for (auto& out : outs_) {
    if (out.targets.empty()) continue;
    switch (out.sub.grouping) {
      case topo::GroupingType::kShuffle: {
        // Path-hash routing in state mode: the counter would desynchronize
        // across replay attempts, sending the retry to a task whose dedup
        // set never saw the original.
        const auto i = path != 0
                           ? state::mix64(path) % out.targets.size()
                           : out.shuffle_counter++ % out.targets.size();
        const auto edge = cluster_.rng().next_u64();
        xor_edges ^= root_id != 0 ? edge : 0;
        self_.send_to(out.targets[i],
                      make_data(out.targets[i], tuple, root_id, edge, path));
        break;
      }
      case topo::GroupingType::kFields: {
        // Memoized per tuple: every hop that fields-groups on the same
        // declared field reuses the hash computed at first routing.
        const auto h = tuple->field_hash(
            static_cast<std::size_t>(std::max(0, out.sub.field_index)));
        const auto i = h % out.targets.size();
        const auto edge = cluster_.rng().next_u64();
        xor_edges ^= root_id != 0 ? edge : 0;
        self_.send_to(out.targets[i],
                      make_data(out.targets[i], tuple, root_id, edge, path));
        break;
      }
      case topo::GroupingType::kAll: {
        for (auto target : out.targets) {
          const auto edge = cluster_.rng().next_u64();
          xor_edges ^= root_id != 0 ? edge : 0;
          self_.send_to(target,
                        make_data(target, tuple, root_id, edge, path));
        }
        break;
      }
      case topo::GroupingType::kGlobal: {
        const auto target = out.targets.front();  // lowest task id
        const auto edge = cluster_.rng().next_u64();
        xor_edges ^= root_id != 0 ? edge : 0;
        self_.send_to(target, make_data(target, tuple, root_id, edge, path));
        break;
      }
      case topo::GroupingType::kDirect:
        // Direct subscribers only receive via emit_direct().
        break;
    }
  }
  return xor_edges;
}

std::uint64_t EmissionHelper::emit_direct(const std::string& consumer,
                                          int task_index,
                                          const topo::TupleRef& tuple,
                                          std::uint64_t root_id,
                                          std::uint64_t path) {
  for (auto& out : outs_) {
    if (out.consumer->name != consumer ||
        out.sub.grouping != topo::GroupingType::kDirect) {
      continue;
    }
    if (task_index < 0 ||
        task_index >= static_cast<int>(out.targets.size())) {
      return 0;
    }
    const auto target = out.targets[static_cast<std::size_t>(task_index)];
    const auto edge = cluster_.rng().next_u64();
    self_.send_to(target, make_data(target, tuple, root_id, edge, path));
    return root_id != 0 ? edge : 0;
  }
  return 0;
}

void EmissionHelper::broadcast_barrier(std::uint64_t ckpt) {
  // One barrier per input channel: every consumer task hears from this
  // producer task once per round, on every subscription (direct included —
  // a direct subscriber is still an aligned input channel).
  for (auto& out : outs_) {
    for (auto target : out.targets) {
      Envelope barrier;
      barrier.kind = MsgKind::kBarrier;
      barrier.root_id = ckpt;
      barrier.dst = target;
      self_.send_to(target, std::move(barrier));
    }
  }
}

// ------------------------------------------------------------ BoltExecutor

BoltExecutor::BoltExecutor(Cluster& cluster, Worker& worker,
                           const TaskInfo& info)
    : Executor(cluster, worker, info) {}

void BoltExecutor::on_start() {
  bolt_ = info().component->bolt_factory();
  emitter_ = std::make_unique<EmissionHelper>(cluster_, *this);
  // Stateful components get their runtime-managed store whether or not
  // checkpointing is on — the bolt's keyed API must work either way; only
  // durability (barriers, snapshots, restore) is gated on state mode.
  if (info().component->stateful) {
    if (topo::StatefulBolt* stateful = bolt_->as_stateful();
        stateful != nullptr) {
      store_ = std::make_unique<state::StateStore>();
      stateful->bind_state(store_.get());
    }
  }
  state_mode_ = cluster_.state_enabled();
  if (state_mode_) {
    // Alignment channels: every producer task across all inputs.
    for (const auto& sub : info().component->inputs) {
      const auto srcs =
          cluster_.tasks_of_component(info().topology, sub.source);
      barrier_sources_.insert(barrier_sources_.end(), srcs.begin(),
                              srcs.end());
    }
    std::sort(barrier_sources_.begin(), barrier_sources_.end());
    barrier_sources_.erase(
        std::unique(barrier_sources_.begin(), barrier_sources_.end()),
        barrier_sources_.end());
    // Restore-on-(re)start: rehydrate from the last *completed* checkpoint
    // before serving data. The snapshot is staged here; the kStateRestore
    // envelope pays the read latency + bytes/bandwidth as service I/O.
    if (store_ != nullptr) {
      std::uint64_t ckpt = 0;
      if (const state::Snapshot* snap =
              cluster_.durable_state().completed(task(), &ckpt);
          snap != nullptr) {
        restore_snap_ = std::make_unique<state::Snapshot>(*snap);
        restore_ckpt_ = ckpt;
        Envelope restore;
        restore.kind = MsgKind::kStateRestore;
        deliver(std::move(restore));
      }
    }
  }
  bolt_->prepare(info().index, info().component->parallelism);
  if (info().component->tick_interval > 0) schedule_tick();
}

void BoltExecutor::on_shutdown() {
  if (tick_event_ != sim::kInvalidEvent) {
    cluster_.sim().cancel(tick_event_);
    tick_event_ = sim::kInvalidEvent;
  }
  // Held post-barrier data dies with the executor exactly like queued
  // data; deferred acks just vanish (their trees time out and replay).
  for (std::size_t i = 0; i < held_.size(); ++i) {
    if (held_[i].kind == MsgKind::kData) {
      cluster_.note_drop(DropCause::kShutdownDrain);
    }
  }
  held_.clear();
  deferred_.clear();
  aligning_ = 0;
}

void BoltExecutor::on_checkpoint_committed(std::uint64_t ckpt) {
  // deferred_ is FIFO with non-decreasing round tags, untagged (0) last:
  // release the covered prefix.
  while (!deferred_.empty() && deferred_[0].ckpt != 0 &&
         deferred_[0].ckpt <= ckpt) {
    DeferredAck d = deferred_.pop_front();
    send_to(d.ack.dst, std::move(d.ack));
  }
}

void BoltExecutor::schedule_tick() {
  tick_event_ = cluster_.sim().schedule_after(
      info().component->tick_interval, [this] {
        schedule_tick();
        // Like the spout's emit signal: at most one tick in the queue.
        if (!tick_queued_) {
          tick_queued_ = true;
          Envelope tick;
          tick.kind = MsgKind::kTick;
          deliver(std::move(tick));
        }
      });
}

double BoltExecutor::service_cost_mc(const Envelope& env) const {
  if (env.kind == MsgKind::kData && env.tuple) {
    return bolt_->cpu_cost_mega_cycles(*env.tuple);
  }
  if (env.kind == MsgKind::kTick) return bolt_->tick_cost_mega_cycles();
  if (env.kind == MsgKind::kBarrier) {
    return cluster_.config().state.barrier_cost_mc;
  }
  return 0.001;
}

double BoltExecutor::service_io_s(const Envelope& env) const {
  if (env.kind == MsgKind::kData && env.tuple) {
    return bolt_->io_time_seconds(*env.tuple);
  }
  if (env.kind == MsgKind::kStateRestore && restore_snap_ != nullptr) {
    const auto& cfg = cluster_.config().state;
    return cfg.store_read_latency +
           static_cast<double>(restore_snap_->bytes) /
               cfg.store_read_bandwidth;
  }
  return 0.0;
}

void BoltExecutor::process(Envelope& env) {
  if (env.kind == MsgKind::kTick) {
    tick_queued_ = false;
    // Tick emissions are unanchored (root id 0), like Storm tick tuples.
    current_ = nullptr;
    emitted_xor_ = 0;
    bolt_->on_tick(*this);
    return;
  }
  if (env.kind == MsgKind::kBarrier) {
    on_barrier(env);
    return;
  }
  if (env.kind == MsgKind::kStateRestore) {
    apply_restore();
    return;
  }
  if (env.kind != MsgKind::kData || !env.tuple) return;
  // Mid-alignment, data on an already-barriered channel belongs to the
  // next epoch: park it until the round completes or aborts.
  if (aligning_ != 0) {
    const std::uint64_t* seen = barrier_seen_.find(env.src);
    if (seen != nullptr && *seen >= aligning_) {
      held_.push_back(std::move(env));
      return;
    }
  }
  process_data(env);
}

void BoltExecutor::process_data(Envelope& env) {
  current_ = &env;
  emitted_xor_ = 0;
  emission_ordinal_ = 0;
  // Exactly-once dedup: an update path already applied means this envelope
  // is a replayed duplicate. Its state effect must not re-apply, but its
  // children must still flow — a stateless consumer downstream may never
  // have received the original attempt's child if it was lost below this
  // bolt, and skipping the emission would ack the tree while that consumer
  // never sees the tuple in any attempt. Re-execute with the store in
  // replay mode (mutations suppressed, reads see post-application totals):
  // children re-emit on the same deterministic lineage paths, so stateful
  // descendants dedup them and stateless descendants keep at-least-once
  // delivery.
  const bool duplicate = state_mode_ && store_ != nullptr && env.path != 0 &&
                         !store_->dedup_insert(env.path, cluster_.sim().now());
  if (duplicate) {
    cluster_.note_state_dedup();
    store_->set_replay(true);
  }
  bolt_->execute(*env.tuple, *this);
  if (duplicate) store_->set_replay(false);
  ack_input(env, emitted_xor_);
  current_ = nullptr;
}

std::uint64_t BoltExecutor::next_emission_path() {
  if (!state_mode_ || current_ == nullptr || current_->path == 0) return 0;
  return state::child_path(current_->path, emission_ordinal_++);
}

void BoltExecutor::emit(topo::Tuple tuple) {
  const topo::TupleRef ref = topo::TupleRef::make(std::move(tuple));
  const std::uint64_t root = current_ != nullptr ? current_->root_id : 0;
  emitted_xor_ ^= emitter_->emit(ref, root, next_emission_path());
}

void BoltExecutor::emit_direct(const std::string& consumer, int task_index,
                               topo::Tuple tuple) {
  const topo::TupleRef ref = topo::TupleRef::make(std::move(tuple));
  const std::uint64_t root = current_ != nullptr ? current_->root_id : 0;
  emitted_xor_ ^= emitter_->emit_direct(consumer, task_index, ref, root,
                                        next_emission_path());
}

void BoltExecutor::ack_input(const Envelope& env, std::uint64_t emitted_xor) {
  if (env.root_id == 0) return;  // unanchored
  const auto& ackers = cluster_.acker_tasks(info().topology);
  if (ackers.empty()) return;
  Envelope ack;
  ack.kind = MsgKind::kAck;
  ack.root_id = env.root_id;
  ack.xor_val = env.xor_val ^ emitted_xor;
  const auto target = ackers[env.root_id % ackers.size()];
  ack.dst = target;
  // Checkpoint-gated acks at stateful bolts: completing a tree whose
  // update exists only in memory would let a crash lose an "acked" update.
  // The ack leaves when the covering round is durably complete. Duplicates
  // defer too — the dedup entry that suppressed them is just as volatile.
  if (state_mode_ && store_ != nullptr) {
    deferred_.push_back({std::move(ack), 0});
    return;
  }
  send_to(target, std::move(ack));
}

void BoltExecutor::on_barrier(const Envelope& env) {
  if (!state_mode_) return;
  const std::uint64_t ckpt = env.root_id;
  std::uint64_t& seen = barrier_seen_[env.src];
  if (ckpt <= seen) return;  // duplicate channel copy of this round
  seen = ckpt;
  if (ckpt <= last_aligned_) return;  // stale round already finished here
  // A straggler barrier for a round older than the one mid-alignment
  // (its round was aborted before this copy arrived): adopting it would
  // regress aligning_ and drain data parked behind the newer barrier
  // before the newer snapshot. The channel's seen mark is recorded above;
  // its barrier for the current round is still awaited.
  if (aligning_ != 0 && ckpt < aligning_) return;
  if (aligning_ != 0 && ckpt > aligning_) {
    // A newer round's barrier means the coordinator aborted the one we
    // were aligning: abandon it and serve what we held.
    aligning_ = 0;
    drain_held();
  }
  aligning_ = ckpt;
  for (sched::TaskId src : barrier_sources_) {
    const std::uint64_t* s = barrier_seen_.find(src);
    if (s == nullptr || *s < ckpt) return;  // still waiting on a channel
  }
  complete_alignment(ckpt);
}

void BoltExecutor::complete_alignment(std::uint64_t ckpt) {
  aligning_ = 0;
  last_aligned_ = ckpt;
  if (store_ != nullptr) {
    // Atomic unit: dedup sweep + keyed entries + dedup set snapshot
    // together, then tag the deferred acks this round covers. Crash before
    // the write lands -> state and dedup die together, the round aborts,
    // and the un-acked trees replay against the restored store.
    store_->sweep_dedup(cluster_.sim().now() - cluster_.dedup_horizon());
    for (std::size_t i = 0; i < deferred_.size(); ++i) {
      if (deferred_[i].ckpt == 0) deferred_[i].ckpt = ckpt;
    }
    cluster_.state_write(*this, ckpt, store_->snapshot());
  }
  // Forward the barrier downstream, then serve the parked epoch.
  emitter_->broadcast_barrier(ckpt);
  drain_held();
}

void BoltExecutor::drain_held() {
  while (!held_.empty()) {
    Envelope env = held_.pop_front();
    process_data(env);
  }
}

void BoltExecutor::apply_restore() {
  if (store_ == nullptr || restore_snap_ == nullptr) return;
  store_->restore(*restore_snap_);
  trace::TraceLog& log = cluster_.trace_log();
  log.record({cluster_.sim().now(), trace::EventKind::kStateRestored,
              info().topology, node_id(), -1, 0,
              "task " + std::to_string(task()) + " round " +
                  std::to_string(restore_ckpt_) + ", " +
                  std::to_string(restore_snap_->entries.size()) +
                  " entries"});
  obs::DecisionRecord record;
  record.time = cluster_.sim().now();
  record.trigger = obs::DecisionTrigger::kRecovery;
  record.outcome = obs::DecisionOutcome::kNoChange;
  record.algorithm = "state-restore";
  record.reason = "task " + std::to_string(task()) +
                  " rehydrated from checkpoint " +
                  std::to_string(restore_ckpt_);
  cluster_.provenance().record(std::move(record));
  restore_snap_.reset();
}

// ----------------------------------------------------------- SpoutExecutor

SpoutExecutor::SpoutExecutor(Cluster& cluster, Worker& worker,
                             const TaskInfo& info)
    : Executor(cluster, worker, info) {}

void SpoutExecutor::on_start() {
  spout_ = info().component->spout_factory();
  emitter_ = std::make_unique<EmissionHelper>(cluster_, *this);
  acker_tasks_ = cluster_.acker_tasks(info().topology);
  spout_->prepare(info().index, info().component->parallelism);
  poll_event_ = cluster_.sim().schedule_after(
      info().component->emit_interval, [this] { poll(); });
}

void SpoutExecutor::on_shutdown() {
  if (poll_event_ != sim::kInvalidEvent) {
    cluster_.sim().cancel(poll_event_);
    poll_event_ = sim::kInvalidEvent;
  }
  // Replays parked for re-emission die with the spout; without a drop
  // record the conservation audit would see them vanish. In state mode
  // they return to the tracker instead (see Executor::shutdown).
  for (std::size_t i = 0; i < replay_buffer_.size(); ++i) {
    if (cluster_.state_enabled() && replay_buffer_[i].tuple) {
      cluster_.tracker().requeue_replay(std::move(replay_buffer_[i]));
    } else {
      cluster_.note_drop(DropCause::kShutdownDrain);
    }
  }
  replay_buffer_.clear();
}

void SpoutExecutor::pause_until(sim::Time t) {
  paused_until_ = std::max(paused_until_, t);
}

void SpoutExecutor::on_root_failed(std::uint64_t root_id) {
  if (spout_) spout_->on_fail(root_id);
}

void SpoutExecutor::poll() {
  // Rate control: one poll per emit_interval (the paper's spout sleeps
  // 5 ms between emissions; the sleep is excluded from processing time by
  // construction here — emission is instantaneous in simulated time).
  poll_event_ = cluster_.sim().schedule_after(
      info().component->emit_interval, [this] { poll(); });
  if (cluster_.sim().now() < paused_until_) return;
  const int max_pending = info().component->max_pending;
  if (max_pending > 0 &&
      cluster_.tracker().pending(task()) >= max_pending) {
    return;
  }
  if (!emit_queued_) {
    emit_queued_ = true;
    Envelope e;
    e.kind = MsgKind::kEmitSignal;
    deliver(std::move(e));
  }
}

double SpoutExecutor::service_cost_mc(const Envelope& env) const {
  switch (env.kind) {
    case MsgKind::kEmitSignal:
    case MsgKind::kReplay:
      return spout_->cpu_cost_mega_cycles();
    default:
      return cluster_.config().spout_control_cost_mc;
  }
}

void SpoutExecutor::process(Envelope& env) {
  switch (env.kind) {
    case MsgKind::kEmitSignal: {
      emit_queued_ = false;
      if (cluster_.sim().now() < paused_until_) return;
      // Replays first (a Storm spout re-emits failed ids before reading
      // new input), then fresh tuples — one emission per rate-control
      // slot either way.
      if (!replay_buffer_.empty()) {
        Envelope replay = replay_buffer_.pop_front();
        emit_root(std::move(replay.tuple), replay.attempt, replay.path);
        return;
      }
      auto next = spout_->next_tuple();
      if (next.has_value()) {
        emit_root(topo::TupleRef::make(std::move(*next)), /*attempt=*/0,
                  /*uid=*/0);
      }
      break;
    }
    case MsgKind::kReplay:
      if (env.tuple) replay_buffer_.push_back(std::move(env));
      break;
    case MsgKind::kBarrier:
      // Checkpoint round start: stamp the barrier into every output
      // channel. Pauses do not gate barriers — a throttled spout still
      // checkpoints.
      emitter_->broadcast_barrier(env.root_id);
      break;
    case MsgKind::kAckComplete:
      cluster_.tracker().on_ack_complete(env.root_id);
      spout_->on_ack(env.root_id);
      break;
    default:
      break;
  }
}

void SpoutExecutor::emit_root(topo::TupleRef tuple, int attempt,
                              std::uint64_t uid) {
  if (acker_tasks_.empty()) {
    // No ackers: unanchored emission, no tracking (root id 0).
    emitter_->emit(tuple, 0);
    return;
  }
  std::uint64_t root = cluster_.rng().next_u64();
  if (root == 0) root = 1;
  // Root ids are drawn fresh per attempt, so a collision with a tracked
  // entry (live, or failed-in-grace) is a birthday accident — but an
  // overwrite would corrupt the tracker's pending/in-flight accounting.
  // Re-draw until unique among tracked roots.
  while (cluster_.tracker().contains(root)) {
    root = cluster_.rng().next_u64();
    if (root == 0) root = 1;
  }
  // Tree uid: attempt 0 coins it from its root id; replays inherit it, so
  // the lineage paths below are identical across attempts.
  if (uid == 0) uid = root;
  cluster_.tracker().register_root(root, task(), tuple, attempt, uid);
  obs::TupleTraceCollector& tt = cluster_.tuple_trace();
  if (tt.enabled() && tt.should_sample()) {
    const sim::Time now = cluster_.sim().now();
    tt.begin_root(root, task(), attempt, now);
    tt.add_span(root, obs::Span{obs::SpanKind::kEmit, task(), -1, node_id(),
                                now, now});
  }
  const std::uint64_t path =
      cluster_.state_enabled() ? state::root_path(uid) : 0;
  const std::uint64_t xor_edges = emitter_->emit(tuple, root, path);
  Envelope init;
  init.kind = MsgKind::kAckInit;
  init.root_id = root;
  init.xor_val = xor_edges;
  const auto target = acker_tasks_[root % acker_tasks_.size()];
  init.dst = target;
  send_to(target, std::move(init));
}

// ----------------------------------------------------------- AckerExecutor

AckerExecutor::AckerExecutor(Cluster& cluster, Worker& worker,
                             const TaskInfo& info)
    : Executor(cluster, worker, info) {}

double AckerExecutor::service_cost_mc(const Envelope& /*env*/) const {
  return cluster_.config().acker_cost_mc;
}

void AckerExecutor::maybe_expire() {
  if (++processed_ % kSweepInterval != 0) return;
  // Same horizon as the tracker's late-ack grace: trees that can still
  // complete observably must keep their XOR state.
  const sim::Time horizon =
      cluster_.sim().now() - cluster_.config().late_ack_grace_factor *
                                 cluster_.config().tuple_timeout;
  pending_.erase_if([horizon](std::uint64_t /*root*/, const AckState& st) {
    return st.created < horizon;
  });
}

void AckerExecutor::process(Envelope& env) {
  maybe_expire();
  AckState* st = nullptr;
  switch (env.kind) {
    case MsgKind::kAckInit: {
      st = &pending_[env.root_id];
      if (st->xor_val == 0 && !st->init_seen) {
        st->created = cluster_.sim().now();
      }
      st->xor_val ^= env.xor_val;
      st->spout_task = env.src;
      st->init_seen = true;
      break;
    }
    case MsgKind::kAck: {
      bool inserted = false;
      st = &pending_.get_or_insert(env.root_id, &inserted);
      if (inserted) st->created = cluster_.sim().now();
      st->xor_val ^= env.xor_val;
      break;
    }
    default:
      return;
  }
  if (st->init_seen && st->xor_val == 0) {
    const auto spout = st->spout_task;
    Envelope done;
    done.kind = MsgKind::kAckComplete;
    done.root_id = env.root_id;
    done.dst = spout;
    pending_.erase(env.root_id);  // invalidates st
    send_to(spout, std::move(done));
  }
}

}  // namespace tstorm::runtime
