#include "runtime/nimbus.h"

#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "runtime/cluster.h"

namespace tstorm::runtime {

Nimbus::Nimbus(Cluster& cluster) : cluster_(cluster) {}

void Nimbus::record_decision(obs::DecisionTrigger trigger,
                             obs::DecisionOutcome outcome,
                             const std::string& algorithm, int executors,
                             sched::AssignmentVersion version,
                             std::string reason) {
  obs::DecisionRecord rec;
  rec.time = cluster_.sim().now();
  rec.trigger = trigger;
  rec.outcome = outcome;
  rec.algorithm = algorithm;
  rec.executors = executors;
  rec.version = version;
  rec.reason = std::move(reason);
  cluster_.provenance().record(std::move(rec));
}

sched::AssignmentVersion Nimbus::next_version() {
  auto v = static_cast<sched::AssignmentVersion>(
      std::llround(cluster_.sim().now() * 1000.0));
  if (v <= last_version_) v = last_version_ + 1;
  last_version_ = v;
  return v;
}

void Nimbus::schedule_initial(sched::TopologyId topo,
                              sched::ISchedulingAlgorithm& algorithm) {
  auto input = cluster_.scheduler_input({topo});
  auto result = algorithm.schedule(input);
  const auto tasks = cluster_.tasks_of(topo);
  for (sched::TaskId t : tasks) {
    if (!result.assignment.contains(t)) {
      record_decision(obs::DecisionTrigger::kInitial,
                      obs::DecisionOutcome::kIncompleteAssignment,
                      algorithm.name(), static_cast<int>(tasks.size()), 0,
                      "initial scheduler left tasks of topology " +
                          std::to_string(topo) + " unplaced");
      throw std::runtime_error("initial scheduler '" + algorithm.name() +
                               "' left tasks of topology unplaced");
    }
  }
  AssignmentRecord record;
  record.version = next_version();
  record.placement = std::move(result.assignment);
  record_decision(obs::DecisionTrigger::kInitial,
                  obs::DecisionOutcome::kPublished, algorithm.name(),
                  static_cast<int>(tasks.size()), record.version,
                  "initial placement of topology " + std::to_string(topo));
  cluster_.trace_log().record({cluster_.sim().now(),
                               trace::EventKind::kScheduleApplied, topo, -1,
                               -1, record.version,
                               "initial: " + algorithm.name()});
  cluster_.coordination().publish(topo, std::move(record));
}

bool Nimbus::apply_placement(sched::TopologyId topo,
                             const sched::Placement& placement,
                             sched::AssignmentVersion version,
                             obs::DecisionTrigger trigger) {
  const auto tasks = cluster_.tasks_of(topo);
  const auto reject = [&](const std::string& why) {
    record_decision(trigger, obs::DecisionOutcome::kApplyRejected, {},
                    static_cast<int>(tasks.size()), 0,
                    "placement for topology " + std::to_string(topo) +
                        " rejected: " + why);
    return false;
  };
  if (tasks.empty()) return reject("unknown topology");
  const int total_slots = cluster_.total_slots();

  std::unordered_set<sched::SlotIndex> my_slots;
  sched::Placement filtered;
  for (sched::TaskId t : tasks) {
    auto it = placement.find(t);
    if (it == placement.end()) {
      return reject("does not cover task " + std::to_string(t));
    }
    if (it->second < 0 || it->second >= total_slots) {
      return reject("slot out of range for task " + std::to_string(t));
    }
    my_slots.insert(it->second);
    filtered.emplace(t, it->second);
  }

  // A slot hosts one topology: reject collisions with other topologies'
  // current assignments.
  for (const auto& [other, record] : cluster_.coordination().all()) {
    if (other == topo) continue;
    for (const auto& [task, slot] : record.placement) {
      if (my_slots.contains(slot)) {
        return reject("slot " + std::to_string(slot) +
                      " already owned by topology " + std::to_string(other));
      }
    }
  }

  const auto* current = cluster_.coordination().get(topo);
  if (current != nullptr && version <= current->version) {
    return reject("stale version " + std::to_string(version) +
                  " <= current " + std::to_string(current->version));
  }

  // The schedule generator records its own (richer) DecisionRecord at
  // publication; only applies of versions it never saw get one here.
  if (!cluster_.provenance().has_version(version)) {
    record_decision(trigger, obs::DecisionOutcome::kPublished, {},
                    static_cast<int>(tasks.size()), version,
                    "placement applied for topology " + std::to_string(topo));
  }
  AssignmentRecord record;
  record.version = version;
  record.placement = std::move(filtered);
  cluster_.trace_log().record({cluster_.sim().now(),
                               trace::EventKind::kScheduleApplied, topo, -1,
                               -1, version, {}});
  cluster_.coordination().publish(topo, std::move(record));
  return true;
}

bool Nimbus::rebalance(sched::TopologyId topo,
                       sched::ISchedulingAlgorithm& algorithm,
                       int num_workers_override,
                       obs::DecisionTrigger trigger) {
  const auto tasks = cluster_.tasks_of(topo);
  if (tasks.empty()) {
    record_decision(trigger, obs::DecisionOutcome::kEmptyInput,
                    algorithm.name(), 0, 0,
                    "rebalance of unknown topology " + std::to_string(topo));
    return false;
  }
  auto input = cluster_.scheduler_input({topo});
  if (num_workers_override > 0) {
    for (auto& t : input.topologies) {
      if (t.id == topo) t.requested_workers = num_workers_override;
    }
  }
  // The topology's own current slots are free to reuse: drop them from the
  // occupied set (scheduler_input only lists other topologies' slots, so
  // nothing to do) and schedule.
  auto result = algorithm.schedule(input);
  for (sched::TaskId t : tasks) {
    if (!result.assignment.contains(t)) {
      record_decision(trigger, obs::DecisionOutcome::kIncompleteAssignment,
                      algorithm.name(), static_cast<int>(tasks.size()), 0,
                      "rebalance left tasks of topology " +
                          std::to_string(topo) + " unplaced");
      return false;
    }
  }
  return apply_placement(topo, result.assignment, next_version(), trigger);
}

bool Nimbus::apply_placements(
    const std::map<sched::TopologyId, sched::Placement>& placements,
    sched::AssignmentVersion version) {
  int executors = 0;
  for (const auto& [topo, placement] : placements) {
    executors += static_cast<int>(placement.size());
  }
  const auto reject = [&](const std::string& why) {
    record_decision(obs::DecisionTrigger::kManual,
                    obs::DecisionOutcome::kApplyRejected, {}, executors, 0,
                    "multi-topology apply of version " +
                        std::to_string(version) + " rejected: " + why);
    return false;
  };
  const int total_slots = cluster_.total_slots();
  // Validate coverage, ranges, and slot exclusivity across the new set.
  std::unordered_map<sched::SlotIndex, sched::TopologyId> slot_owner;
  for (const auto& [topo, placement] : placements) {
    const auto tasks = cluster_.tasks_of(topo);
    if (tasks.empty()) return reject("unknown topology");
    for (sched::TaskId t : tasks) {
      auto it = placement.find(t);
      if (it == placement.end()) return reject("incomplete coverage");
      if (it->second < 0 || it->second >= total_slots) {
        return reject("slot out of range");
      }
      auto [oit, inserted] = slot_owner.emplace(it->second, topo);
      if (!inserted && oit->second != topo) {
        return reject("slot shared by two topologies");
      }
    }
    const auto* current = cluster_.coordination().get(topo);
    if (current != nullptr && version <= current->version) {
      return reject("stale version");
    }
  }
  // Conflicts with assigned topologies outside the set.
  for (const auto& [other, record] : cluster_.coordination().all()) {
    if (placements.contains(other)) continue;
    for (const auto& [task, slot] : record.placement) {
      auto it = slot_owner.find(slot);
      if (it != slot_owner.end()) {
        return reject("slot owned by a topology outside the set");
      }
    }
  }
  // The schedule generator records its own DecisionRecord when it
  // publishes `version`; only externally computed versions get one here.
  if (!cluster_.provenance().has_version(version)) {
    record_decision(obs::DecisionTrigger::kManual,
                    obs::DecisionOutcome::kPublished, {}, executors, version,
                    "multi-topology placement applied");
  }
  for (const auto& [topo, placement] : placements) {
    AssignmentRecord record;
    record.version = version;
    const auto tasks = cluster_.tasks_of(topo);
    for (sched::TaskId t : tasks) record.placement.emplace(t, placement.at(t));
    cluster_.trace_log().record({cluster_.sim().now(),
                                 trace::EventKind::kScheduleApplied, topo,
                                 -1, -1, version, {}});
    cluster_.coordination().publish(topo, std::move(record));
  }
  return true;
}

const AssignmentRecord* Nimbus::assignment(sched::TopologyId topo) const {
  return cluster_.coordination().get(topo);
}

// ------------------------------------------------------- Failure detection

void Nimbus::start_failure_detector() {
  const auto nodes = static_cast<std::size_t>(cluster_.num_nodes());
  if (believed_alive_.size() != nodes) believed_alive_.assign(nodes, 1);
  if (monitor_task_ == nullptr) {
    monitor_task_ = std::make_unique<sim::PeriodicTask>(
        cluster_.sim(), cluster_.config().monitor_period,
        [this] { check_heartbeats(); });
  }
  if (!monitor_task_->running()) {
    monitor_task_->start(cluster_.config().monitor_period);
  }
}

bool Nimbus::node_believed_alive(sched::NodeId node) const {
  const auto i = static_cast<std::size_t>(node);
  // All-alive until the detector has been started: with no heartbeat
  // monitoring, Nimbus has no evidence against any node.
  if (i >= believed_alive_.size()) return true;
  return believed_alive_[i] != 0;
}

std::vector<sched::NodeId> Nimbus::nodes_believed_dead() const {
  std::vector<sched::NodeId> out;
  for (std::size_t i = 0; i < believed_alive_.size(); ++i) {
    if (believed_alive_[i] == 0) out.push_back(static_cast<sched::NodeId>(i));
  }
  return out;
}

void Nimbus::set_recovery_algorithm(sched::ISchedulingAlgorithm* algorithm) {
  recovery_ = algorithm;
}

void Nimbus::check_heartbeats() {
  const ClusterConfig& cfg = cluster_.config();
  const auto nodes = static_cast<std::size_t>(cluster_.num_nodes());
  if (believed_alive_.size() != nodes) believed_alive_.assign(nodes, 1);
  const sim::Time now = cluster_.sim().now();

  for (std::size_t i = 0; i < nodes; ++i) {
    const auto node = static_cast<sched::NodeId>(i);
    // A node that never heartbeated is treated as "last beat at t=0": it
    // gets one full timeout of startup grace, then counts as dead.
    const sim::Time last =
        cluster_.coordination().last_heartbeat(node).value_or(0.0);
    const bool fresh = now - last <= cfg.node_timeout;
    if (believed_alive_[i] != 0 && !fresh) {
      believed_alive_[i] = 0;
      cluster_.trace_log().record(
          {now, trace::EventKind::kNodeDeclaredDead, -1, node, -1, 0,
           "last heartbeat t=" + std::to_string(last)});
    } else if (believed_alive_[i] == 0 && fresh) {
      believed_alive_[i] = 1;
      cluster_.trace_log().record(
          {now, trace::EventKind::kNodeDeclaredAlive, -1, node, -1, 0, {}});
    }
  }
  reschedule_stranded_topologies();
}

void Nimbus::reschedule_stranded_topologies() {
  // Topologies whose current placement touches a believed-dead node. The
  // rebalance below publishes into the coordination map, so collect ids
  // first instead of mutating while iterating.
  std::vector<sched::TopologyId> stranded;
  for (const auto& [topo, record] : cluster_.coordination().all()) {
    for (const auto& [task, slot] : record.placement) {
      if (!node_believed_alive(cluster_.slot_node(slot))) {
        stranded.push_back(topo);
        break;
      }
    }
  }
  for (sched::TopologyId topo : stranded) {
    sched::ISchedulingAlgorithm& algo =
        recovery_ != nullptr ? *recovery_ : default_recovery_;
    // May fail when the surviving slots cannot host the topology; the next
    // sweep retries, so capacity returning (node declared alive) heals it.
    rebalance(topo, algo, 0, obs::DecisionTrigger::kRecovery);
  }
}

}  // namespace tstorm::runtime
