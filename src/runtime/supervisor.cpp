#include "runtime/supervisor.h"

#include <algorithm>
#include <set>

#include "runtime/cluster.h"

namespace tstorm::runtime {

Supervisor::Supervisor(Cluster& cluster, sched::NodeId node)
    : cluster_(cluster), node_(node) {
  sync_task_ = std::make_unique<sim::PeriodicTask>(
      cluster_.sim(), cluster_.config().supervisor_sync_period,
      [this] { sync(); });
  heartbeat_task_ = std::make_unique<sim::PeriodicTask>(
      cluster_.sim(), cluster_.config().heartbeat_period,
      [this] { publish_heartbeat(); });
}

void Supervisor::start(sim::Time phase) {
  sync_task_->start(phase);
  // First heartbeat right at the sync phase: the node announces itself as
  // soon as its daemon is up, then beats every heartbeat period.
  heartbeat_task_->start(
      std::min<sim::Time>(phase, cluster_.config().heartbeat_period));
}

void Supervisor::publish_heartbeat() {
  if (!active_) return;
  // Heartbeats ride the control plane: a partition from the master or
  // control-message loss silently eats them, which is exactly how a healthy
  // node gets falsely declared dead.
  if (cluster_.network().control_lost(node_)) return;
  cluster_.coordination().heartbeat(node_, cluster_.sim().now());
}

Worker* Supervisor::worker_at(int port) {
  auto it = workers_.find(port);
  return it == workers_.end() ? nullptr : it->second.get();
}

bool Supervisor::kill_worker(int port) {
  auto it = workers_.find(port);
  if (it == workers_.end() || it->second->state() == WorkerState::kDead) {
    return false;
  }
  it->second->stop();
  return true;
}

void Supervisor::retire(std::unique_ptr<Worker> worker) {
  if (cluster_.config().smooth_reassignment &&
      worker->state() == WorkerState::kRunning) {
    worker->drain_then_stop(cluster_.config().shutdown_delay);
    draining_.push_back(std::move(worker));
  } else {
    worker->stop();
  }
}

void Supervisor::set_active(bool active) {
  if (active == active_) return;
  active_ = active;
  if (!active_) {
    // The machine died: every worker process dies with it.
    for (auto& [port, worker] : workers_) worker->stop();
    workers_.clear();
    for (auto& worker : draining_) worker->stop();
    draining_.clear();
    sync_task_->stop();
    heartbeat_task_->stop();
  } else {
    sync_task_->start(cluster_.config().supervisor_sync_period);
    heartbeat_task_->start(cluster_.config().heartbeat_period);
  }
}

void Supervisor::sync() {
  if (!active_) return;
  const ClusterConfig& cfg = cluster_.config();

  // Steady-state early exit: hash the published assignments (versions and
  // placements). If nothing changed and no worker needs reaping or
  // restarting, the rebuild below would be a no-op — skip it so a quiesced
  // control plane performs no per-period work (or allocations).
  std::uint64_t fp = 0xcbf29ce484222325ULL;
  const auto mix = [&fp](std::uint64_t v) {
    fp ^= v;
    fp *= 0x100000001b3ULL;
  };
  for (const auto& [topo, record] : cluster_.coordination().all()) {
    mix(static_cast<std::uint64_t>(topo));
    mix(record.version);
    for (const auto& [task, slot] : record.placement) {
      mix(static_cast<std::uint64_t>(task));
      mix(static_cast<std::uint64_t>(slot));
    }
  }
  bool quiet = draining_.empty();
  for (const auto& [port, w] : workers_) {
    if (w->state() == WorkerState::kDead) quiet = false;
  }
  if (quiet && fp == sync_fingerprint_) return;
  sync_fingerprint_ = fp;

  // Reap drained workers.
  std::erase_if(draining_, [](const std::unique_ptr<Worker>& w) {
    return w->state() == WorkerState::kDead;
  });

  // Desired worker per port, from the published assignments.
  struct Desired {
    sched::TopologyId topo = -1;
    sched::AssignmentVersion version = 0;
    std::vector<sched::TaskId> tasks;
  };
  std::map<int, Desired> desired;
  for (const auto& [topo, record] : cluster_.coordination().all()) {
    for (const auto& [task, slot] : record.placement) {
      if (cluster_.slot_node(slot) != node_) continue;
      const int port = cluster_.slot_port(slot);
      Desired& d = desired[port];
      if (d.tasks.empty()) {
        d.topo = topo;
        d.version = record.version;
      }
      if (d.topo == topo) d.tasks.push_back(task);
    }
  }
  for (auto& [port, d] : desired) std::sort(d.tasks.begin(), d.tasks.end());

  std::set<sched::TopologyId> reassigned;

  for (int port = 0; port < cluster_.slots_on_node(node_); ++port) {
    auto wit = workers_.find(port);
    Worker* cur = wit != workers_.end() ? wit->second.get() : nullptr;
    if (cur != nullptr && cur->state() == WorkerState::kDead) {
      // Crashed (or externally killed): treat as missing so it is
      // restarted below — Storm's supervisor restart path.
      workers_.erase(wit);
      wit = workers_.end();
      cur = nullptr;
    }

    auto dit = desired.find(port);
    if (dit == desired.end()) {
      if (cur != nullptr) {
        reassigned.insert(cur->topology());
        retire(std::move(wit->second));
        workers_.erase(wit);
      }
      continue;
    }
    const Desired& d = dit->second;

    if (cur != nullptr && cur->topology() == d.topo &&
        cur->tasks() == d.tasks) {
      // Same worker under a newer assignment: adopt the new version (the
      // "re-register with the dispatcher" step).
      if (cur->version() != d.version) cur->update_version(d.version);
      continue;
    }

    if (cur != nullptr) {
      reassigned.insert(d.topo);
      reassigned.insert(cur->topology());
      retire(std::move(wit->second));
      workers_.erase(wit);
    }

    auto w = std::make_unique<Worker>(
        cluster_, d.topo, cluster_.slot_index(node_, port), d.version,
        d.tasks);
    w->start(cfg.worker_start_delay,
             cfg.smooth_reassignment ? cfg.spout_halt_delay : 0.0);
    workers_[port] = std::move(w);
  }

  // T-Storm smoothing: halt the affected topologies' live spouts until the
  // replacement workers (and their bolts) are up.
  if (cfg.smooth_reassignment) {
    const sim::Time until = cluster_.sim().now() + cfg.worker_start_delay +
                            cfg.spout_halt_delay;
    for (sched::TopologyId topo : reassigned) {
      cluster_.pause_spouts(topo, until);
    }
  }
}

}  // namespace tstorm::runtime
