// LocalSearchScheduler: an extension beyond the paper. Algorithm 1 is a
// single-pass greedy ("finding the best scheduling solution is quite
// challenging", section III); this scheduler starts from Algorithm 1's
// placement and hill-climbs with single-executor moves, accepting any move
// that strictly reduces inter-node traffic while preserving all three of
// Algorithm 1's constraints. It quantifies how much traffic the greedy
// leaves on the table at a bounded extra cost (the move pass is
// O(iterations * Ne * Ns)).
#pragma once

#include "sched/scheduler.h"

namespace tstorm::sched {

struct LocalSearchOptions {
  /// Maximum full improvement passes over all executors.
  int max_passes = 8;
  /// Stop when a full pass improves traffic by less than this fraction.
  double min_gain = 1e-3;
};

class LocalSearchScheduler final : public ISchedulingAlgorithm {
 public:
  explicit LocalSearchScheduler(LocalSearchOptions options = {})
      : options_(options) {}

  ScheduleResult schedule(const SchedulerInput& input) override;

  [[nodiscard]] std::string name() const override { return "local-search"; }

 private:
  LocalSearchOptions options_;
};

}  // namespace tstorm::sched
