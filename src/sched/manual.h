// ManualScheduler: a pinned executor-to-slot placement. Used to reproduce
// the paper's Section III experiments (n1w1 / n5w5 / n5w10 in Fig. 2, the
// deliberately overloaded node in Fig. 3) and to pin topologies to one
// worker for the overload-handling experiments (Figs. 9 and 10).
#pragma once

#include "sched/scheduler.h"

namespace tstorm::sched {

class ManualScheduler final : public ISchedulingAlgorithm {
 public:
  /// `placement` maps every task that should be placed to its slot. Tasks
  /// missing from the map are assigned round-robin over the placement's
  /// distinct slots (convenient for ackers).
  explicit ManualScheduler(Placement placement)
      : placement_(std::move(placement)) {}

  ScheduleResult schedule(const SchedulerInput& input) override;

  [[nodiscard]] std::string name() const override { return "manual"; }

 private:
  Placement placement_;
};

}  // namespace tstorm::sched
