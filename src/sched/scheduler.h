// Scheduling algorithm interface and the hot-swap registry.
//
// T-Storm decouples schedule *generation* from schedule *application*
// (paper section IV-C): the schedule generator owns an ISchedulingAlgorithm
// that can be replaced at runtime ("hot-swapping of scheduling algorithms")
// without touching Nimbus or the supervisors. The registry maps algorithm
// names to factories so a swap is just a name lookup.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sched/types.h"

namespace tstorm::sched {

class ISchedulingAlgorithm {
 public:
  virtual ~ISchedulingAlgorithm() = default;

  /// Computes an executor-to-slot assignment for the given input. Must
  /// place every executor (relaxing soft constraints if needed) and never
  /// place two topologies in one slot.
  virtual ScheduleResult schedule(const SchedulerInput& input) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Global name -> factory registry. Built-in algorithms self-register:
///   "traffic-aware"   Algorithm 1 (the paper's contribution)
///   "round-robin"     Storm's default scheduler
///   "tstorm-initial"  T-Storm's modified default (N*w = min(Nu, Nw))
///   "aniello-offline" Aniello et al. DEBS'13 offline scheduler
///   "aniello-online"  Aniello et al. DEBS'13 online scheduler
///   "local-search"    Algorithm 1 + hill-climbing move/swap passes
///   "rstorm"          R-Storm resource-aware placement (Middleware '15)
class AlgorithmRegistry {
 public:
  using Factory = std::function<std::unique_ptr<ISchedulingAlgorithm>()>;

  static AlgorithmRegistry& instance();

  /// Returns false if the name is already taken.
  bool register_algorithm(const std::string& name, Factory factory);

  /// Returns nullptr for unknown names.
  [[nodiscard]] std::unique_ptr<ISchedulingAlgorithm> create(
      const std::string& name) const;

  [[nodiscard]] std::vector<std::string> names() const;

 private:
  AlgorithmRegistry() = default;
  std::vector<std::pair<std::string, Factory>> factories_;
};

}  // namespace tstorm::sched
