// Re-implementations of the two schedulers from the closest related work,
// Aniello, Baldoni and Querzoni, "Adaptive online scheduling in Storm"
// (ACM DEBS 2013), which the paper compares against in sections III and V.
//
// Both are two-phase: executors -> workers, then workers -> slots. The
// offline variant only sees the topology graph (it is "oblivious with
// respect to runtime workload"); the online variant uses measured
// inter-executor traffic. Unlike Algorithm 1, neither derives the worker
// count (they honour the user's Nu) nor enforces the one-slot-per-node
// invariant, so inter-process traffic can remain after scheduling.
#pragma once

#include "sched/scheduler.h"

namespace tstorm::sched {

class AnielloOfflineScheduler final : public ISchedulingAlgorithm {
 public:
  ScheduleResult schedule(const SchedulerInput& input) override;
  [[nodiscard]] std::string name() const override { return "aniello-offline"; }
};

class AnielloOnlineScheduler final : public ISchedulingAlgorithm {
 public:
  ScheduleResult schedule(const SchedulerInput& input) override;
  [[nodiscard]] std::string name() const override { return "aniello-online"; }
};

}  // namespace tstorm::sched
