// R-Storm: resource-aware placement (Peng et al., Middleware '15).
// Traverses each topology breadth-first from its spouts and places every
// task on the node minimizing a soft-constraint distance, with memory as
// a hard constraint and a dominant network-distance term that pulls
// communicating tasks onto the same node. The resource terms rank
// feasible nodes by post-placement utilization (most headroom first)
// rather than the paper's strict best-fit — with measured demand
// estimates, best-fit systematically overloads the weakest node of a
// heterogeneous fleet (see the comment at the distance computation).
#pragma once

#include "sched/scheduler.h"

namespace tstorm::sched {

struct RStormOptions {
  /// Term weights of the squared distance. Network distance dominates —
  /// R-Storm's ordering is network proximity first, then resource fit
  /// (the paper's theta_1 >> theta_2, theta_3).
  double network_distance_weight = 10.0;
  double cpu_weight = 1.0;
  double bandwidth_weight = 1.0;
  /// When no node satisfies the constraints, retry with soft constraints
  /// (CPU, bandwidth) dropped, then with the memory hard constraint
  /// dropped too, setting ScheduleResult::capacity_relaxed. When false,
  /// infeasible tasks stay unassigned.
  bool allow_relaxation = true;
};

class RStormScheduler final : public ISchedulingAlgorithm {
 public:
  explicit RStormScheduler(RStormOptions options = {}) : options_(options) {}

  ScheduleResult schedule(const SchedulerInput& input) override;

  [[nodiscard]] std::string name() const override { return "rstorm"; }

 private:
  RStormOptions options_;
};

}  // namespace tstorm::sched
