#include "sched/aniello.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace tstorm::sched {
namespace {

struct WeightedEdge {
  TaskId a;
  TaskId b;
  double w;
};

int requested_workers(const SchedulerInput& in, TopologyId topo) {
  for (const auto& t : in.topologies) {
    if (t.id == topo) return t.requested_workers;
  }
  return 1;
}

/// Phase 1 of both DEBS'13 schedulers: partition one topology's executors
/// into `n_workers` groups, greedily co-locating the heaviest edges first,
/// subject to a per-group size cap of ceil(Ne / n_workers).
std::vector<std::vector<TaskId>> partition_executors(
    const std::vector<TaskId>& tasks, const std::vector<WeightedEdge>& edges,
    int n_workers) {
  std::vector<std::vector<TaskId>> groups(
      static_cast<std::size_t>(std::max(1, n_workers)));
  const int cap = static_cast<int>(
      std::ceil(static_cast<double>(tasks.size()) / groups.size()));
  std::unordered_map<TaskId, int> group_of;

  auto sorted = edges;
  std::sort(sorted.begin(), sorted.end(),
            [](const WeightedEdge& x, const WeightedEdge& y) {
              if (x.w != y.w) return x.w > y.w;
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });

  const auto least_loaded = [&]() -> int {
    int best = 0;
    for (std::size_t g = 1; g < groups.size(); ++g) {
      if (groups[g].size() < groups[static_cast<std::size_t>(best)].size()) {
        best = static_cast<int>(g);
      }
    }
    return best;
  };
  const auto place = [&](TaskId t, int g) {
    groups[static_cast<std::size_t>(g)].push_back(t);
    group_of[t] = g;
  };

  for (const auto& e : sorted) {
    const bool ha = group_of.contains(e.a);
    const bool hb = group_of.contains(e.b);
    if (ha && hb) continue;
    if (!ha && !hb) {
      int g = least_loaded();
      if (groups[static_cast<std::size_t>(g)].size() + 2 <=
          static_cast<std::size_t>(cap)) {
        place(e.a, g);
        place(e.b, g);
      } else {
        place(e.a, least_loaded());
        place(e.b, least_loaded());
      }
      continue;
    }
    const TaskId placed = ha ? e.a : e.b;
    const TaskId loose = ha ? e.b : e.a;
    const int g = group_of[placed];
    if (groups[static_cast<std::size_t>(g)].size() <
        static_cast<std::size_t>(cap)) {
      place(loose, g);
    } else {
      place(loose, least_loaded());
    }
  }
  for (TaskId t : tasks) {
    if (!group_of.contains(t)) place(t, least_loaded());
  }
  return groups;
}

/// Phase 2: place worker groups onto free slots, heaviest inter-group
/// traffic first, co-locating groups on the same node when a free slot
/// exists there.
ScheduleResult place_groups(const SchedulerInput& in,
                            const std::vector<std::vector<TaskId>>& groups,
                            const std::vector<WeightedEdge>& edges) {
  ScheduleResult result;
  const auto occupied = occupied_slot_set(in);
  // Free slots grouped per node, in (node, port) order.
  std::map<NodeId, std::vector<SlotIndex>> free_slots;
  {
    auto slots = in.slots;
    std::sort(slots.begin(), slots.end(),
              [](const SlotSpec& a, const SlotSpec& b) {
                if (a.node != b.node) return a.node < b.node;
                return a.port < b.port;
              });
    for (const auto& s : slots) {
      if (!occupied.contains(s.slot)) free_slots[s.node].push_back(s.slot);
    }
  }

  std::unordered_map<TaskId, int> group_of;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (TaskId t : groups[g]) group_of[t] = static_cast<int>(g);
  }
  // Inter-group weights.
  std::map<std::pair<int, int>, double> gw;
  for (const auto& e : edges) {
    auto ia = group_of.find(e.a);
    auto ib = group_of.find(e.b);
    if (ia == group_of.end() || ib == group_of.end()) continue;
    if (ia->second == ib->second) continue;
    auto key = std::minmax(ia->second, ib->second);
    gw[{key.first, key.second}] += e.w;
  }
  std::vector<std::pair<std::pair<int, int>, double>> pairs(gw.begin(),
                                                            gw.end());
  std::sort(pairs.begin(), pairs.end(), [](const auto& x, const auto& y) {
    if (x.second != y.second) return x.second > y.second;
    return x.first < y.first;
  });

  std::vector<NodeId> group_node(groups.size(), -1);
  std::vector<SlotIndex> group_slot(groups.size(), kUnassigned);

  const auto take_slot_on = [&](NodeId preferred) -> std::pair<NodeId, SlotIndex> {
    if (preferred >= 0) {
      auto it = free_slots.find(preferred);
      if (it != free_slots.end() && !it->second.empty()) {
        SlotIndex s = it->second.front();
        it->second.erase(it->second.begin());
        return {preferred, s};
      }
    }
    // Node with the most free slots (spreads load), lowest id on ties.
    NodeId best = -1;
    std::size_t best_free = 0;
    for (const auto& [node, v] : free_slots) {
      if (v.size() > best_free) {
        best = node;
        best_free = v.size();
      }
    }
    if (best < 0) return {-1, kUnassigned};
    SlotIndex s = free_slots[best].front();
    free_slots[best].erase(free_slots[best].begin());
    return {best, s};
  };
  const auto ensure_placed = [&](int g, NodeId preferred) {
    if (group_slot[static_cast<std::size_t>(g)] != kUnassigned) return;
    auto [node, slot] = take_slot_on(preferred);
    group_node[static_cast<std::size_t>(g)] = node;
    group_slot[static_cast<std::size_t>(g)] = slot;
  };

  for (const auto& [key, w] : pairs) {
    const auto [ga, gb] = key;
    const bool pa = group_slot[static_cast<std::size_t>(ga)] != kUnassigned;
    const bool pb = group_slot[static_cast<std::size_t>(gb)] != kUnassigned;
    if (pa && pb) continue;
    if (!pa && !pb) {
      ensure_placed(ga, -1);
      ensure_placed(gb, group_node[static_cast<std::size_t>(ga)]);
    } else if (pa) {
      ensure_placed(gb, group_node[static_cast<std::size_t>(ga)]);
    } else {
      ensure_placed(ga, group_node[static_cast<std::size_t>(gb)]);
    }
  }
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (!groups[g].empty()) ensure_placed(static_cast<int>(g), -1);
  }

  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (group_slot[g] == kUnassigned) continue;
    for (TaskId t : groups[g]) result.assignment[t] = group_slot[g];
  }
  return result;
}

ScheduleResult run_two_phase(const SchedulerInput& in,
                             const std::vector<WeightedEdge>& edges) {
  // Partition per topology, then place all groups together.
  std::map<TopologyId, std::vector<TaskId>> tasks_by_topo;
  for (const auto& e : in.executors) {
    tasks_by_topo[e.topology].push_back(e.task);
  }
  std::unordered_map<TaskId, TopologyId> topo_of;
  for (const auto& e : in.executors) topo_of[e.task] = e.topology;

  std::vector<std::vector<TaskId>> all_groups;
  for (auto& [topo, tasks] : tasks_by_topo) {
    std::vector<WeightedEdge> topo_edges;
    for (const auto& e : edges) {
      auto a = topo_of.find(e.a);
      auto b = topo_of.find(e.b);
      if (a != topo_of.end() && b != topo_of.end() && a->second == topo &&
          b->second == topo) {
        topo_edges.push_back(e);
      }
    }
    auto groups =
        partition_executors(tasks, topo_edges, requested_workers(in, topo));
    for (auto& g : groups) {
      if (!g.empty()) all_groups.push_back(std::move(g));
    }
  }
  ScheduleResult result = place_groups(in, all_groups, edges);
  audit_capacity(in, result);  // capacity-blind: flag overcommit post hoc
  return result;
}

}  // namespace

ScheduleResult AnielloOfflineScheduler::schedule(const SchedulerInput& in) {
  // Offline: unit weights from the topology graph only.
  std::vector<WeightedEdge> edges;
  edges.reserve(in.topology_edges.size());
  for (const auto& [a, b] : in.topology_edges) {
    edges.push_back({a, b, 1.0});
  }
  return run_two_phase(in, edges);
}

ScheduleResult AnielloOnlineScheduler::schedule(const SchedulerInput& in) {
  // Online: weights are the measured traffic rates.
  std::vector<WeightedEdge> edges;
  edges.reserve(in.traffic.size());
  for (const auto& t : in.traffic) {
    if (t.rate > 0) edges.push_back({t.src, t.dst, t.rate});
  }
  return run_two_phase(in, edges);
}

}  // namespace tstorm::sched
