#include "sched/rstorm.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <queue>
#include <unordered_map>
#include <unordered_set>

namespace tstorm::sched {
namespace {

struct NodeState {
  ResourceVector used{};
  /// topology -> slot locked for it on this node (one worker per topology
  /// per node, same structural invariant as Algorithm 1).
  std::unordered_map<TopologyId, SlotIndex> topo_slot;
};

struct SlotState {
  NodeId node = -1;
  TopologyId owner = -1;
  bool blocked = false;
};

/// Breadth-first task order per topology, spouts first — R-Storm walks the
/// topology DAG so each task is placed right after its upstream
/// neighbours, letting the network-distance term pull it next to them.
/// Deterministic: roots and adjacency are visited in ascending task id;
/// tasks unreachable from any root are appended in ascending id.
std::vector<TaskId> bfs_order(
    const std::vector<TaskId>& tasks,
    const std::vector<std::pair<TaskId, TaskId>>& edges) {
  std::unordered_set<TaskId> members(tasks.begin(), tasks.end());
  std::map<TaskId, std::vector<TaskId>> out;
  std::unordered_map<TaskId, int> in_degree;
  for (TaskId t : tasks) in_degree[t] = 0;
  for (const auto& [a, b] : edges) {
    if (!members.contains(a) || !members.contains(b)) continue;
    out[a].push_back(b);
    in_degree[b] += 1;
  }
  for (auto& [t, v] : out) std::sort(v.begin(), v.end());

  std::vector<TaskId> sorted_tasks(tasks);
  std::sort(sorted_tasks.begin(), sorted_tasks.end());

  std::vector<TaskId> order;
  order.reserve(tasks.size());
  std::unordered_set<TaskId> seen;
  std::queue<TaskId> frontier;
  for (TaskId t : sorted_tasks) {
    if (in_degree[t] == 0 && seen.insert(t).second) frontier.push(t);
  }
  while (!frontier.empty()) {
    const TaskId t = frontier.front();
    frontier.pop();
    order.push_back(t);
    auto it = out.find(t);
    if (it == out.end()) continue;
    for (TaskId next : it->second) {
      if (seen.insert(next).second) frontier.push(next);
    }
  }
  for (TaskId t : sorted_tasks) {  // cycles / isolated tasks
    if (seen.insert(t).second) order.push_back(t);
  }
  return order;
}

}  // namespace

ScheduleResult RStormScheduler::schedule(const SchedulerInput& in) {
  ScheduleResult result;
  if (in.executors.empty()) return result;

  // --- Index the input. ---
  std::unordered_map<TaskId, const ExecutorSpec*> spec_of;
  std::map<TopologyId, std::vector<TaskId>> tasks_by_topo;
  for (const auto& e : in.executors) {
    spec_of.emplace(e.task, &e);
    tasks_by_topo[e.topology].push_back(e.task);
  }
  // Traffic adjacency (for the reference node); falls back to topology
  // edges with unit weight when no traffic has been measured yet.
  std::unordered_map<TaskId, std::vector<std::pair<TaskId, double>>> adj;
  for (const auto& t : in.traffic) {
    if (t.rate <= 0) continue;
    if (!spec_of.contains(t.src) || !spec_of.contains(t.dst)) continue;
    adj[t.src].emplace_back(t.dst, t.rate);
    adj[t.dst].emplace_back(t.src, t.rate);
  }
  if (adj.empty()) {
    for (const auto& [a, b] : in.topology_edges) {
      if (!spec_of.contains(a) || !spec_of.contains(b)) continue;
      adj[a].emplace_back(b, 1.0);
      adj[b].emplace_back(a, 1.0);
    }
  }

  // --- Slot / node state. ---
  std::unordered_map<SlotIndex, SlotState> slots;
  NodeId max_node = -1;
  for (const auto& s : in.slots) {
    slots[s.slot] = SlotState{s.node, -1, false};
    max_node = std::max(max_node, s.node);
  }
  const auto occupied = occupied_slot_set(in);
  for (SlotIndex blocked : occupied) {
    auto it = slots.find(blocked);
    if (it != slots.end()) it->second.blocked = true;
  }
  std::vector<NodeState> nodes(static_cast<std::size_t>(max_node) + 1);

  const double qw = in.queue_pressure_weight;
  std::unordered_map<TaskId, NodeId> task_node;

  // The slot this topology would use on node k: its locked slot if it has
  // one, else the lowest-index free slot there.
  const auto eligible_slot = [&](TopologyId topo, NodeId k) -> SlotIndex {
    const NodeState& nst = nodes[static_cast<std::size_t>(k)];
    auto lock = nst.topo_slot.find(topo);
    if (lock != nst.topo_slot.end()) return lock->second;
    SlotIndex best = kUnassigned;
    for (const auto& s : in.slots) {
      if (s.node != k) continue;
      const SlotState& st = slots[s.slot];
      if (st.blocked || st.owner != -1) continue;
      if (best == kUnassigned || s.slot < best) best = s.slot;
    }
    return best;
  };

  for (const auto& [topo, tasks] : tasks_by_topo) {
    for (TaskId t : bfs_order(tasks, in.topology_edges)) {
      const ExecutorSpec& e = *spec_of.at(t);
      const ResourceVector demand = e.effective_demand(qw);

      // Reference node: where the heaviest-traffic already-placed
      // neighbour lives (R-Storm measures network distance from there).
      NodeId ref_node = -1;
      double ref_rate = -1;
      auto ai = adj.find(t);
      if (ai != adj.end()) {
        for (const auto& [peer, rate] : ai->second) {
          auto pn = task_node.find(peer);
          if (pn == task_node.end()) continue;
          if (rate > ref_rate || (rate == ref_rate && pn->second < ref_node)) {
            ref_rate = rate;
            ref_node = pn->second;
          }
        }
      }

      // Passes: all constraints -> soft (CPU, bandwidth) relaxed -> memory
      // relaxed too. Memory is R-Storm's only hard resource constraint.
      SlotIndex best = kUnassigned;
      NodeId best_node = -1;
      for (int pass = 0; pass < (options_.allow_relaxation ? 3 : 1); ++pass) {
        const bool enforce_soft = pass == 0;
        const bool enforce_memory = pass <= 1;
        double best_dist = std::numeric_limits<double>::infinity();

        for (NodeId k = 0; k <= max_node; ++k) {
          const NodeState& nst = nodes[static_cast<std::size_t>(k)];
          const SlotIndex slot = eligible_slot(topo, k);
          if (slot == kUnassigned) continue;
          const ResourceVector cap = in.node_capacity(k);

          const bool mem_ok =
              nst.used[kMemoryMib] + demand[kMemoryMib] <= cap[kMemoryMib];
          if (enforce_memory && !mem_ok) continue;
          if (enforce_soft && !resource_fits(nst.used, demand, cap)) continue;

          // Network distance dominates (co-locate with the chatty
          // neighbour whenever the node fits); the resource terms score
          // the node's utilization *after* placement, so among feasible
          // nodes the one left with the most headroom wins. The original
          // R-Storm distance is a best-fit (smallest leftover gap), which
          // is sound for the paper's user-declared demands but crams
          // measured, EWMA-lagged demands onto the weakest node of a
          // heterogeneous fleet; production resource-aware schedulers
          // order candidates by available headroom for the same reason.
          // Terms are normalized by capacity so "almost full" means the
          // same on a big and a small node; an unconstrained (infinite or
          // zero-capacity) dimension contributes nothing.
          double dist = options_.network_distance_weight *
                        (ref_node >= 0 && k != ref_node ? 1.0 : 0.0);
          const auto fit_term = [&](std::size_t d) {
            if (!(cap[d] > 0) || std::isinf(cap[d])) return 0.0;
            const double util = (nst.used[d] + demand[d]) / cap[d];
            return util * util;
          };
          dist += options_.cpu_weight * fit_term(kCpuMhz);
          dist += options_.bandwidth_weight * fit_term(kNetworkMbps);

          if (dist < best_dist - 1e-12 ||
              (dist < best_dist + 1e-12 && k < best_node)) {
            best_dist = dist;
            best = slot;
            best_node = k;
          }
        }

        if (best != kUnassigned) {
          if (pass >= 1) result.capacity_relaxed = true;
          break;
        }
      }

      if (best == kUnassigned) continue;  // out of slots entirely

      SlotState& st = slots[best];
      NodeState& nst = nodes[static_cast<std::size_t>(best_node)];
      st.owner = topo;
      nst.topo_slot[topo] = best;
      nst.used = resource_add(nst.used, demand);
      task_node[t] = best_node;
      result.assignment[t] = best;
    }
  }

  return result;
}

}  // namespace tstorm::sched
