#include "sched/types.h"

#include <set>
#include <unordered_set>

namespace tstorm::sched {
namespace {

std::unordered_map<SlotIndex, NodeId> slot_to_node(const SchedulerInput& in) {
  std::unordered_map<SlotIndex, NodeId> m;
  m.reserve(in.slots.size());
  for (const auto& s : in.slots) m.emplace(s.slot, s.node);
  return m;
}

}  // namespace

double internode_traffic(const SchedulerInput& in, const Placement& p) {
  const auto s2n = slot_to_node(in);
  double total = 0;
  for (const auto& t : in.traffic) {
    auto a = p.find(t.src);
    auto b = p.find(t.dst);
    if (a == p.end() || b == p.end()) continue;
    auto na = s2n.find(a->second);
    auto nb = s2n.find(b->second);
    if (na == s2n.end() || nb == s2n.end()) continue;
    if (na->second != nb->second) total += t.rate;
  }
  return total;
}

double interprocess_traffic(const SchedulerInput& in, const Placement& p) {
  const auto s2n = slot_to_node(in);
  double total = 0;
  for (const auto& t : in.traffic) {
    auto a = p.find(t.src);
    auto b = p.find(t.dst);
    if (a == p.end() || b == p.end()) continue;
    if (a->second == b->second) continue;
    auto na = s2n.find(a->second);
    auto nb = s2n.find(b->second);
    if (na == s2n.end() || nb == s2n.end()) continue;
    if (na->second == nb->second) total += t.rate;
  }
  return total;
}

int nodes_used(const SchedulerInput& in, const Placement& p) {
  const auto s2n = slot_to_node(in);
  std::unordered_set<NodeId> nodes;
  for (const auto& [task, slot] : p) {
    auto it = s2n.find(slot);
    if (it != s2n.end()) nodes.insert(it->second);
  }
  return static_cast<int>(nodes.size());
}

int slots_used(const Placement& p) {
  std::unordered_set<SlotIndex> slots;
  for (const auto& [task, slot] : p) slots.insert(slot);
  return static_cast<int>(slots.size());
}

bool one_slot_per_topology_per_node(const SchedulerInput& in,
                                    const Placement& p) {
  const auto s2n = slot_to_node(in);
  std::unordered_map<TaskId, TopologyId> topo_of;
  for (const auto& e : in.executors) topo_of.emplace(e.task, e.topology);
  // (topology, node) -> slot used there; any second distinct slot fails.
  std::set<std::pair<TopologyId, NodeId>> seen_key;
  std::unordered_map<long long, SlotIndex> used;
  for (const auto& [task, slot] : p) {
    auto ti = topo_of.find(task);
    auto ni = s2n.find(slot);
    if (ti == topo_of.end() || ni == s2n.end()) continue;
    const long long key =
        (static_cast<long long>(ti->second) << 32) | static_cast<unsigned int>(ni->second);
    auto [it, inserted] = used.emplace(key, slot);
    if (!inserted && it->second != slot) return false;
  }
  return true;
}

}  // namespace tstorm::sched
