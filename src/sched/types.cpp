#include "sched/types.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <set>
#include <unordered_set>

namespace tstorm::sched {
namespace {

std::unordered_map<SlotIndex, NodeId> slot_to_node(const SchedulerInput& in) {
  std::unordered_map<SlotIndex, NodeId> m;
  m.reserve(in.slots.size());
  for (const auto& s : in.slots) m.emplace(s.slot, s.node);
  return m;
}

}  // namespace

ResourceVector resource_add(const ResourceVector& a, const ResourceVector& b) {
  ResourceVector r;
  for (std::size_t d = 0; d < kResourceDims; ++d) r[d] = a[d] + b[d];
  return r;
}

bool resource_fits(const ResourceVector& used, const ResourceVector& demand,
                   const ResourceVector& capacity) {
  for (std::size_t d = 0; d < kResourceDims; ++d) {
    if (used[d] + demand[d] > capacity[d]) return false;
  }
  return true;
}

ResourceVector SchedulerInput::node_capacity(NodeId k) const {
  if (nodes.empty()) return unconstrained_capacity();
  if (k < 0 || static_cast<std::size_t>(k) >= nodes.size()) {
    assert(false && "node_capacity: NodeId out of range");
    static bool warned = false;
    if (!warned) {
      warned = true;
      std::fprintf(stderr,
                   "[sched] node_capacity: NodeId %d out of range [0, %zu); "
                   "clamping (further warnings suppressed)\n",
                   k, nodes.size());
    }
    k = std::clamp<NodeId>(k, 0, static_cast<NodeId>(nodes.size()) - 1);
  }
  return nodes[static_cast<std::size_t>(k)].capacity;
}

std::unordered_set<SlotIndex> occupied_slot_set(const SchedulerInput& in) {
  return {in.occupied_slots.begin(), in.occupied_slots.end()};
}

void audit_capacity(const SchedulerInput& in, ScheduleResult& result) {
  if (in.nodes.empty()) return;
  const auto s2n = slot_to_node(in);
  std::unordered_map<NodeId, ResourceVector> used;
  for (const auto& e : in.executors) {
    auto a = result.assignment.find(e.task);
    if (a == result.assignment.end()) continue;
    auto n = s2n.find(a->second);
    if (n == s2n.end()) continue;
    auto [it, inserted] = used.emplace(n->second, ResourceVector{});
    it->second = resource_add(
        it->second, e.effective_demand(in.queue_pressure_weight));
  }
  for (const auto& [node, total] : used) {
    if (!resource_fits(total, ResourceVector{}, in.node_capacity(node))) {
      result.capacity_relaxed = true;
      return;
    }
  }
}

double internode_traffic(const SchedulerInput& in, const Placement& p) {
  const auto s2n = slot_to_node(in);
  double total = 0;
  for (const auto& t : in.traffic) {
    auto a = p.find(t.src);
    auto b = p.find(t.dst);
    if (a == p.end() || b == p.end()) continue;
    auto na = s2n.find(a->second);
    auto nb = s2n.find(b->second);
    if (na == s2n.end() || nb == s2n.end()) continue;
    if (na->second != nb->second) total += t.rate;
  }
  return total;
}

double interprocess_traffic(const SchedulerInput& in, const Placement& p) {
  const auto s2n = slot_to_node(in);
  double total = 0;
  for (const auto& t : in.traffic) {
    auto a = p.find(t.src);
    auto b = p.find(t.dst);
    if (a == p.end() || b == p.end()) continue;
    if (a->second == b->second) continue;
    auto na = s2n.find(a->second);
    auto nb = s2n.find(b->second);
    if (na == s2n.end() || nb == s2n.end()) continue;
    if (na->second == nb->second) total += t.rate;
  }
  return total;
}

int nodes_used(const SchedulerInput& in, const Placement& p) {
  const auto s2n = slot_to_node(in);
  std::unordered_set<NodeId> nodes;
  for (const auto& [task, slot] : p) {
    auto it = s2n.find(slot);
    if (it != s2n.end()) nodes.insert(it->second);
  }
  return static_cast<int>(nodes.size());
}

int slots_used(const Placement& p) {
  std::unordered_set<SlotIndex> slots;
  for (const auto& [task, slot] : p) slots.insert(slot);
  return static_cast<int>(slots.size());
}

bool one_slot_per_topology_per_node(const SchedulerInput& in,
                                    const Placement& p) {
  const auto s2n = slot_to_node(in);
  std::unordered_map<TaskId, TopologyId> topo_of;
  for (const auto& e : in.executors) topo_of.emplace(e.task, e.topology);
  // (topology, node) -> slot used there; any second distinct slot fails.
  std::set<std::pair<TopologyId, NodeId>> seen_key;
  std::unordered_map<long long, SlotIndex> used;
  for (const auto& [task, slot] : p) {
    auto ti = topo_of.find(task);
    auto ni = s2n.find(slot);
    if (ti == topo_of.end() || ni == s2n.end()) continue;
    const long long key =
        (static_cast<long long>(ti->second) << 32) | static_cast<unsigned int>(ni->second);
    auto [it, inserted] = used.emplace(key, slot);
    if (!inserted && it->second != slot) return false;
  }
  return true;
}

}  // namespace tstorm::sched
