#include "sched/local_search.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "sched/traffic_aware.h"

namespace tstorm::sched {
namespace {

struct State {
  // Inputs, indexed for O(1) access.
  std::unordered_map<TaskId, const ExecutorSpec*> executors;
  std::unordered_map<TaskId, std::vector<std::pair<TaskId, double>>> adj;
  std::unordered_map<SlotIndex, NodeId> slot_node;
  std::unordered_map<NodeId, std::vector<SlotIndex>> node_slots;
  std::unordered_set<SlotIndex> blocked;

  // Mutable placement state.
  Placement placement;
  std::unordered_map<SlotIndex, TopologyId> slot_owner;  // -1 none
  std::unordered_map<SlotIndex, int> slot_count;
  std::unordered_map<NodeId, double> node_load;
  std::unordered_map<NodeId, int> node_count;
  // (topology, node) -> slot used there.
  std::unordered_map<long long, SlotIndex> topo_slot;

  static long long key(TopologyId t, NodeId n) {
    return (static_cast<long long>(t) << 32) |
           static_cast<unsigned int>(n);
  }

  /// Traffic between executor e and executors currently on `node`
  /// (excluding e itself).
  double local_traffic(TaskId e, NodeId node) const {
    double total = 0;
    auto it = adj.find(e);
    if (it == adj.end()) return 0;
    for (const auto& [peer, rate] : it->second) {
      if (peer == e) continue;
      auto p = placement.find(peer);
      if (p == placement.end()) continue;
      if (slot_node.at(p->second) == node) total += rate;
    }
    return total;
  }

  void remove(TaskId e) {
    const SlotIndex slot = placement.at(e);
    const NodeId node = slot_node.at(slot);
    const TopologyId topo = executors.at(e)->topology;
    placement.erase(e);
    node_load[node] -= executors.at(e)->load_mhz;
    node_count[node] -= 1;
    if (--slot_count[slot] == 0) {
      slot_owner.erase(slot);
      topo_slot.erase(key(topo, node));
    }
  }

  void place(TaskId e, SlotIndex slot) {
    const NodeId node = slot_node.at(slot);
    const TopologyId topo = executors.at(e)->topology;
    placement[e] = slot;
    node_load[node] += executors.at(e)->load_mhz;
    node_count[node] += 1;
    slot_count[slot] += 1;
    slot_owner[slot] = topo;
    topo_slot[key(topo, node)] = slot;
  }
};

}  // namespace

ScheduleResult LocalSearchScheduler::schedule(const SchedulerInput& in) {
  // Seed with Algorithm 1.
  TrafficAwareScheduler greedy;
  ScheduleResult result = greedy.schedule(in);
  if (result.assignment.size() != in.executors.size()) return result;

  State st;
  for (const auto& e : in.executors) {
    st.executors.emplace(e.task, &e);
    st.adj[e.task];
  }
  for (const auto& t : in.traffic) {
    if (t.rate <= 0) continue;
    if (!st.executors.contains(t.src) || !st.executors.contains(t.dst)) {
      continue;
    }
    st.adj[t.src].emplace_back(t.dst, t.rate);
    st.adj[t.dst].emplace_back(t.src, t.rate);
  }
  for (const auto& s : in.slots) {
    st.slot_node.emplace(s.slot, s.node);
    st.node_slots[s.node].push_back(s.slot);
  }
  st.blocked.insert(in.occupied_slots.begin(), in.occupied_slots.end());
  st.placement = result.assignment;
  for (const auto& [task, slot] : st.placement) {
    const NodeId node = st.slot_node.at(slot);
    const TopologyId topo = st.executors.at(task)->topology;
    st.node_load[node] += st.executors.at(task)->load_mhz;
    st.node_count[node] += 1;
    st.slot_count[slot] += 1;
    st.slot_owner[slot] = topo;
    st.topo_slot[State::key(topo, node)] = slot;
  }

  const double ne = static_cast<double>(in.executors.size());
  const double kk = static_cast<double>(st.node_slots.size());
  const int count_limit = std::max(
      1, static_cast<int>(std::ceil(in.gamma * ne / std::max(1.0, kk) -
                                    1e-9)));
  const auto capacity = [&](NodeId k) {
    return k >= 0 && k < static_cast<NodeId>(in.node_capacity_mhz.size())
               ? in.node_capacity_mhz[static_cast<std::size_t>(k)]
               : std::numeric_limits<double>::infinity();
  };

  for (int pass = 0; pass < options_.max_passes; ++pass) {
    double pass_gain = 0;
    for (const auto& e : in.executors) {
      const SlotIndex cur_slot = st.placement.at(e.task);
      const NodeId cur_node = st.slot_node.at(cur_slot);
      const double cur_local = st.local_traffic(e.task, cur_node);

      // Find the best alternative node.
      NodeId best_node = -1;
      SlotIndex best_slot = kUnassigned;
      double best_gain = 0;
      for (const auto& [node, slots] : st.node_slots) {
        if (node == cur_node) continue;
        // Feasible slot on this node for e's topology.
        SlotIndex target = kUnassigned;
        auto lock = st.topo_slot.find(State::key(e.topology, node));
        if (lock != st.topo_slot.end()) {
          target = lock->second;
        } else {
          for (SlotIndex s : slots) {
            if (st.blocked.contains(s)) continue;
            if (!st.slot_owner.contains(s)) {
              target = s;
              break;
            }
          }
        }
        if (target == kUnassigned) continue;
        if (st.node_load[node] + e.load_mhz > capacity(node)) continue;
        if (st.node_count[node] + 1 > count_limit) continue;
        const double gain =
            st.local_traffic(e.task, node) - cur_local;
        if (gain > best_gain + 1e-12) {
          best_gain = gain;
          best_node = node;
          best_slot = target;
        }
      }
      if (best_node >= 0) {
        st.remove(e.task);
        // Re-resolve the target slot: removing e may have freed its old
        // slot but cannot invalidate the chosen one.
        st.place(e.task, best_slot);
        pass_gain += best_gain;
      }
    }

    // Swap pass: when nodes sit at the count limit, single moves are
    // infeasible but exchanging two same-topology executors is not.
    for (std::size_t i = 0; i < in.executors.size(); ++i) {
      const auto& e = in.executors[i];
      for (std::size_t j = i + 1; j < in.executors.size(); ++j) {
        const auto& f = in.executors[j];
        if (e.topology != f.topology) continue;
        const SlotIndex se = st.placement.at(e.task);
        const SlotIndex sf = st.placement.at(f.task);
        const NodeId na = st.slot_node.at(se);
        const NodeId nb = st.slot_node.at(sf);
        if (na == nb) continue;
        // Direct traffic between the pair stays inter-node either way.
        double r_ef = 0;
        for (const auto& [peer, rate] : st.adj.at(e.task)) {
          if (peer == f.task) r_ef += rate;
        }
        const double gain = st.local_traffic(e.task, nb) +
                            st.local_traffic(f.task, na) -
                            st.local_traffic(e.task, na) -
                            st.local_traffic(f.task, nb) - 2.0 * r_ef;
        if (gain <= 1e-9) continue;
        // Capacity after the exchange (counts are unchanged).
        if (st.node_load[na] - e.load_mhz + f.load_mhz > capacity(na)) {
          continue;
        }
        if (st.node_load[nb] - f.load_mhz + e.load_mhz > capacity(nb)) {
          continue;
        }
        st.remove(e.task);
        st.remove(f.task);
        st.place(e.task, sf);
        st.place(f.task, se);
        pass_gain += gain;
      }
    }

    const double total = internode_traffic(in, st.placement);
    if (pass_gain <= options_.min_gain * std::max(1.0, total)) break;
  }

  result.assignment = st.placement;
  return result;
}

}  // namespace tstorm::sched
