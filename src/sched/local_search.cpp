#include "sched/local_search.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "sched/traffic_aware.h"

namespace tstorm::sched {
namespace {

struct State {
  // Inputs, indexed for O(1) access.
  std::unordered_map<TaskId, const ExecutorSpec*> executors;
  std::unordered_map<TaskId, std::vector<std::pair<TaskId, double>>> adj;
  std::unordered_map<SlotIndex, NodeId> slot_node;
  std::unordered_map<NodeId, std::vector<SlotIndex>> node_slots;
  std::unordered_set<SlotIndex> blocked;

  // Mutable placement state.
  Placement placement;
  std::unordered_map<SlotIndex, TopologyId> slot_owner;  // -1 none
  std::unordered_map<SlotIndex, int> slot_count;
  std::unordered_map<NodeId, ResourceVector> node_used;
  std::unordered_map<NodeId, int> node_count;
  /// Queue-pressure weight used for effective demands (from the input).
  double qw = 0;
  // (topology, node) -> slot used there.
  std::unordered_map<long long, SlotIndex> topo_slot;

  static long long key(TopologyId t, NodeId n) {
    return (static_cast<long long>(t) << 32) |
           static_cast<unsigned int>(n);
  }

  /// Traffic between executor e and executors currently on `node`
  /// (excluding e itself).
  double local_traffic(TaskId e, NodeId node) const {
    double total = 0;
    auto it = adj.find(e);
    if (it == adj.end()) return 0;
    for (const auto& [peer, rate] : it->second) {
      if (peer == e) continue;
      auto p = placement.find(peer);
      if (p == placement.end()) continue;
      if (slot_node.at(p->second) == node) total += rate;
    }
    return total;
  }

  ResourceVector demand(TaskId e) const {
    return executors.at(e)->effective_demand(qw);
  }

  void remove(TaskId e) {
    const SlotIndex slot = placement.at(e);
    const NodeId node = slot_node.at(slot);
    const TopologyId topo = executors.at(e)->topology;
    placement.erase(e);
    const ResourceVector d = demand(e);
    auto& used = node_used[node];
    for (std::size_t i = 0; i < kResourceDims; ++i) used[i] -= d[i];
    node_count[node] -= 1;
    if (--slot_count[slot] == 0) {
      slot_owner.erase(slot);
      topo_slot.erase(key(topo, node));
    }
  }

  void place(TaskId e, SlotIndex slot) {
    const NodeId node = slot_node.at(slot);
    const TopologyId topo = executors.at(e)->topology;
    placement[e] = slot;
    node_used[node] = resource_add(node_used[node], demand(e));
    node_count[node] += 1;
    slot_count[slot] += 1;
    slot_owner[slot] = topo;
    topo_slot[key(topo, node)] = slot;
  }
};

}  // namespace

ScheduleResult LocalSearchScheduler::schedule(const SchedulerInput& in) {
  // Seed with Algorithm 1.
  TrafficAwareScheduler greedy;
  ScheduleResult result = greedy.schedule(in);
  if (result.assignment.size() != in.executors.size()) return result;

  State st;
  st.qw = in.queue_pressure_weight;
  for (const auto& e : in.executors) {
    st.executors.emplace(e.task, &e);
    st.adj[e.task];
  }
  for (const auto& t : in.traffic) {
    if (t.rate <= 0) continue;
    if (!st.executors.contains(t.src) || !st.executors.contains(t.dst)) {
      continue;
    }
    st.adj[t.src].emplace_back(t.dst, t.rate);
    st.adj[t.dst].emplace_back(t.src, t.rate);
  }
  for (const auto& s : in.slots) {
    st.slot_node.emplace(s.slot, s.node);
    st.node_slots[s.node].push_back(s.slot);
  }
  st.blocked = occupied_slot_set(in);
  st.placement = result.assignment;
  for (const auto& [task, slot] : st.placement) {
    const NodeId node = st.slot_node.at(slot);
    const TopologyId topo = st.executors.at(task)->topology;
    st.node_used[node] =
        resource_add(st.node_used[node], st.demand(task));
    st.node_count[node] += 1;
    st.slot_count[slot] += 1;
    st.slot_owner[slot] = topo;
    st.topo_slot[State::key(topo, node)] = slot;
  }

  const double ne = static_cast<double>(in.executors.size());
  const double kk = static_cast<double>(st.node_slots.size());
  const int count_limit = std::max(
      1, static_cast<int>(std::ceil(in.gamma * ne / std::max(1.0, kk) -
                                    1e-9)));

  for (int pass = 0; pass < options_.max_passes; ++pass) {
    double pass_gain = 0;
    for (const auto& e : in.executors) {
      const SlotIndex cur_slot = st.placement.at(e.task);
      const NodeId cur_node = st.slot_node.at(cur_slot);
      const double cur_local = st.local_traffic(e.task, cur_node);

      // Find the best alternative node.
      NodeId best_node = -1;
      SlotIndex best_slot = kUnassigned;
      double best_gain = 0;
      for (const auto& [node, slots] : st.node_slots) {
        if (node == cur_node) continue;
        // Feasible slot on this node for e's topology.
        SlotIndex target = kUnassigned;
        auto lock = st.topo_slot.find(State::key(e.topology, node));
        if (lock != st.topo_slot.end()) {
          target = lock->second;
        } else {
          for (SlotIndex s : slots) {
            if (st.blocked.contains(s)) continue;
            if (!st.slot_owner.contains(s)) {
              target = s;
              break;
            }
          }
        }
        if (target == kUnassigned) continue;
        if (!resource_fits(st.node_used[node], st.demand(e.task),
                           in.node_capacity(node))) {
          continue;
        }
        if (st.node_count[node] + 1 > count_limit) continue;
        const double gain =
            st.local_traffic(e.task, node) - cur_local;
        if (gain > best_gain + 1e-12) {
          best_gain = gain;
          best_node = node;
          best_slot = target;
        }
      }
      if (best_node >= 0) {
        st.remove(e.task);
        // Re-resolve the target slot: removing e may have freed its old
        // slot but cannot invalidate the chosen one.
        st.place(e.task, best_slot);
        pass_gain += best_gain;
      }
    }

    // Swap pass: when nodes sit at the count limit, single moves are
    // infeasible but exchanging two same-topology executors is not.
    for (std::size_t i = 0; i < in.executors.size(); ++i) {
      const auto& e = in.executors[i];
      for (std::size_t j = i + 1; j < in.executors.size(); ++j) {
        const auto& f = in.executors[j];
        if (e.topology != f.topology) continue;
        const SlotIndex se = st.placement.at(e.task);
        const SlotIndex sf = st.placement.at(f.task);
        const NodeId na = st.slot_node.at(se);
        const NodeId nb = st.slot_node.at(sf);
        if (na == nb) continue;
        // Direct traffic between the pair stays inter-node either way.
        double r_ef = 0;
        for (const auto& [peer, rate] : st.adj.at(e.task)) {
          if (peer == f.task) r_ef += rate;
        }
        const double gain = st.local_traffic(e.task, nb) +
                            st.local_traffic(f.task, na) -
                            st.local_traffic(e.task, na) -
                            st.local_traffic(f.task, nb) - 2.0 * r_ef;
        if (gain <= 1e-9) continue;
        // Capacity after the exchange (counts are unchanged).
        const ResourceVector de = st.demand(e.task);
        const ResourceVector df = st.demand(f.task);
        const auto swap_fits = [&](NodeId n, const ResourceVector& out,
                                   const ResourceVector& inc) {
          ResourceVector used = st.node_used[n];
          for (std::size_t d = 0; d < kResourceDims; ++d) used[d] -= out[d];
          return resource_fits(used, inc, in.node_capacity(n));
        };
        if (!swap_fits(na, de, df) || !swap_fits(nb, df, de)) continue;
        st.remove(e.task);
        st.remove(f.task);
        st.place(e.task, sf);
        st.place(f.task, se);
        pass_gain += gain;
      }
    }

    const double total = internode_traffic(in, st.placement);
    if (pass_gain <= options_.min_gain * std::max(1.0, total)) break;
  }

  result.assignment = st.placement;
  return result;
}

}  // namespace tstorm::sched
