#include "sched/scheduler.h"

#include <algorithm>

#include "sched/aniello.h"
#include "sched/local_search.h"
#include "sched/round_robin.h"
#include "sched/rstorm.h"
#include "sched/traffic_aware.h"

namespace tstorm::sched {

AlgorithmRegistry& AlgorithmRegistry::instance() {
  static AlgorithmRegistry registry;
  static const bool builtins_registered = [] {
    registry.register_algorithm("traffic-aware", [] {
      return std::unique_ptr<ISchedulingAlgorithm>(
          new TrafficAwareScheduler());
    });
    registry.register_algorithm("round-robin", [] {
      return std::unique_ptr<ISchedulingAlgorithm>(new RoundRobinScheduler());
    });
    registry.register_algorithm("tstorm-initial", [] {
      return std::unique_ptr<ISchedulingAlgorithm>(
          new TStormInitialScheduler());
    });
    registry.register_algorithm("aniello-offline", [] {
      return std::unique_ptr<ISchedulingAlgorithm>(
          new AnielloOfflineScheduler());
    });
    registry.register_algorithm("aniello-online", [] {
      return std::unique_ptr<ISchedulingAlgorithm>(
          new AnielloOnlineScheduler());
    });
    registry.register_algorithm("local-search", [] {
      return std::unique_ptr<ISchedulingAlgorithm>(
          new LocalSearchScheduler());
    });
    registry.register_algorithm("rstorm", [] {
      return std::unique_ptr<ISchedulingAlgorithm>(new RStormScheduler());
    });
    return true;
  }();
  (void)builtins_registered;
  return registry;
}

bool AlgorithmRegistry::register_algorithm(const std::string& name,
                                           Factory factory) {
  for (const auto& [n, f] : factories_) {
    if (n == name) return false;
  }
  factories_.emplace_back(name, std::move(factory));
  return true;
}

std::unique_ptr<ISchedulingAlgorithm> AlgorithmRegistry::create(
    const std::string& name) const {
  for (const auto& [n, f] : factories_) {
    if (n == name) return f();
  }
  return nullptr;
}

std::vector<std::string> AlgorithmRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [n, f] : factories_) out.push_back(n);
  return out;
}

}  // namespace tstorm::sched
