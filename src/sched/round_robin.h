// Storm's default scheduler and T-Storm's modified initial scheduler.
//
// Default (Storm 0.8.2 EvenScheduler): executors are dealt round-robin into
// the Nu workers the user configured, and those workers are spread evenly
// across the cluster's free slots, interleaving nodes — which is why stock
// Storm always uses every available worker node regardless of workload
// (paper section III).
//
// T-Storm initial (section IV-C): before any runtime load information
// exists, T-Storm assigns almost like the default scheduler but first caps
// the worker count at N*w = min(Nu, Nw) where Nw is the number of nodes
// with a free slot, and gives each worker its own node — guaranteeing that
// a topology occupies at most one slot per node from the start.
#pragma once

#include "sched/scheduler.h"

namespace tstorm::sched {

class RoundRobinScheduler final : public ISchedulingAlgorithm {
 public:
  ScheduleResult schedule(const SchedulerInput& input) override;
  [[nodiscard]] std::string name() const override { return "round-robin"; }
};

class TStormInitialScheduler final : public ISchedulingAlgorithm {
 public:
  ScheduleResult schedule(const SchedulerInput& input) override;
  [[nodiscard]] std::string name() const override { return "tstorm-initial"; }
};

}  // namespace tstorm::sched
