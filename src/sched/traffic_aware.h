// Algorithm 1 from the paper: traffic-aware online scheduling.
//
// Sorts executors by descending total (incoming + outgoing) traffic, then
// greedily assigns each to the feasible slot with minimum incremental
// inter-node traffic, subject to three per-node constraints:
//   (1) executors of one topology occupy at most one slot per node
//       (eliminates inter-process traffic within a topology);
//   (2) node workload stays within capacity C_k;
//   (3) at most ceil(gamma * Ne / K) executors per node (consolidation
//       factor gamma: 1 = spread evenly, larger = pack onto fewer nodes).
// Complexity O(Ne log Ne + Ne * Ns), as claimed in section IV-C.
#pragma once

#include "sched/scheduler.h"

namespace tstorm::sched {

struct TrafficAwareOptions {
  /// When no slot satisfies all constraints, relax the count constraint
  /// first, then capacity. The structural constraint (1) is never relaxed.
  bool allow_relaxation = true;

  /// MHz of effective load attributed per queued envelope: an executor's
  /// capacity footprint becomes load_mhz + weight * queue_depth, steering
  /// the greedy pass away from packing backlogged executors onto
  /// near-capacity nodes. 0 (default) reproduces the paper's Algorithm 1
  /// exactly — CPU load only.
  double queue_pressure_weight = 0.0;
};

class TrafficAwareScheduler final : public ISchedulingAlgorithm {
 public:
  explicit TrafficAwareScheduler(TrafficAwareOptions options = {})
      : options_(options) {}

  ScheduleResult schedule(const SchedulerInput& input) override;

  [[nodiscard]] std::string name() const override { return "traffic-aware"; }

 private:
  TrafficAwareOptions options_;
};

}  // namespace tstorm::sched
