#include "sched/traffic_aware.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

namespace tstorm::sched {
namespace {

struct NodeState {
  /// Resources already committed on this node (CPU dim carries effective
  /// load, i.e. includes queue pressure when enabled).
  ResourceVector used{};
  int count = 0;
  /// topology -> slot locked for it on this node (constraint 1).
  std::unordered_map<TopologyId, SlotIndex> topo_slot;
};

struct SlotState {
  NodeId node = -1;
  /// Topology owning this slot, or -1 if free. A slot hosts one worker, a
  /// worker belongs to one topology.
  TopologyId owner = -1;
  bool blocked = false;  // occupied by a topology outside this run
};

}  // namespace

ScheduleResult TrafficAwareScheduler::schedule(const SchedulerInput& in) {
  ScheduleResult result;
  if (in.executors.empty()) return result;

  // --- Build adjacency (incoming + outgoing rates per executor). ---
  std::unordered_map<TaskId, std::vector<std::pair<TaskId, double>>> adj;
  std::unordered_map<TaskId, double> total_traffic;
  adj.reserve(in.executors.size());
  for (const auto& e : in.executors) {
    adj[e.task];
    total_traffic[e.task] = 0;
  }
  for (const auto& t : in.traffic) {
    if (t.rate <= 0) continue;
    if (!adj.contains(t.src) || !adj.contains(t.dst)) continue;
    adj[t.src].emplace_back(t.dst, t.rate);
    adj[t.dst].emplace_back(t.src, t.rate);
    total_traffic[t.src] += t.rate;
    total_traffic[t.dst] += t.rate;
  }

  // --- Line 2: sort executors by descending total traffic. ---
  std::vector<const ExecutorSpec*> order;
  order.reserve(in.executors.size());
  for (const auto& e : in.executors) order.push_back(&e);
  std::sort(order.begin(), order.end(),
            [&](const ExecutorSpec* a, const ExecutorSpec* b) {
              const double ta = total_traffic[a->task];
              const double tb = total_traffic[b->task];
              if (ta != tb) return ta > tb;
              return a->task < b->task;  // deterministic tie-break
            });

  // --- Slot / node state. ---
  std::unordered_map<SlotIndex, SlotState> slots;
  NodeId max_node = -1;
  for (const auto& s : in.slots) {
    slots[s.slot] = SlotState{s.node, -1, false};
    max_node = std::max(max_node, s.node);
  }
  const auto occupied = occupied_slot_set(in);
  for (SlotIndex blocked : occupied) {
    auto it = slots.find(blocked);
    if (it != slots.end()) it->second.blocked = true;
  }
  std::vector<NodeState> nodes(static_cast<std::size_t>(max_node) + 1);

  const double ne = static_cast<double>(in.executors.size());
  const double kk = static_cast<double>(max_node + 1);
  const int count_limit = std::max(
      1, static_cast<int>(std::ceil(in.gamma * ne / kk - 1e-9)));

  // Assigned executors grouped by node, for incremental-traffic costs.
  std::unordered_map<TaskId, NodeId> task_node;

  // Effective capacity footprint: CPU load plus optional queue pressure
  // (weight 0 == the paper's Algorithm 1, CPU only). The option overrides
  // the input-level weight when set explicitly.
  const double qw = options_.queue_pressure_weight != 0.0
                        ? options_.queue_pressure_weight
                        : in.queue_pressure_weight;

  // --- Line 3-7: greedy assignment. ---
  for (const ExecutorSpec* e : order) {
    // Traffic from e to executors already assigned, grouped by node.
    std::unordered_map<NodeId, double> traffic_on_node;
    double assigned_traffic = 0;
    for (const auto& [peer, rate] : adj[e->task]) {
      auto it = task_node.find(peer);
      if (it == task_node.end()) continue;
      traffic_on_node[it->second] += rate;
      assigned_traffic += rate;
    }
    const ResourceVector demand = e->effective_demand(qw);

    // Three passes: full constraints, then count relaxed, then capacity
    // relaxed. Constraint (1) always holds.
    SlotIndex best = kUnassigned;
    for (int pass = 0; pass < (options_.allow_relaxation ? 3 : 1); ++pass) {
      const bool enforce_count = pass == 0;
      const bool enforce_capacity = pass <= 1;
      double best_cost = std::numeric_limits<double>::infinity();
      double best_load = std::numeric_limits<double>::infinity();
      int best_count = -1;

      for (const auto& s : in.slots) {
        const SlotState& st = slots[s.slot];
        if (st.blocked) continue;
        const NodeId k = st.node;
        NodeState& nst = nodes[static_cast<std::size_t>(k)];

        // Constraint (1): if the topology already has a slot on this node,
        // only that slot is eligible; and a slot owned by another topology
        // is never eligible.
        auto lock = nst.topo_slot.find(e->topology);
        if (lock != nst.topo_slot.end() && lock->second != s.slot) continue;
        if (st.owner != -1 && st.owner != e->topology) continue;

        if (enforce_capacity &&
            !resource_fits(nst.used, demand, in.node_capacity(k))) {
          continue;
        }
        if (enforce_count && nst.count + 1 > count_limit) continue;

        // Line 5: incremental inter-node traffic of placing e on node k.
        double cost = assigned_traffic;
        auto tn = traffic_on_node.find(k);
        if (tn != traffic_on_node.end()) cost -= tn->second;

        // Tie-breaks: prefer fuller nodes (consolidation — this is what
        // lets a large gamma pack a light topology onto few nodes, Fig.
        // 5(c)), then lower CPU load in the capacity-relaxed pass, then
        // lower slot index (determinism). Like the paper's Algorithm 1,
        // ties are resolved greedily, which is not optimal for
        // partitioning disjoint chains (see ChainPartitioningIsGreedy
        // test).
        bool better = false;
        if (cost < best_cost - 1e-12) {
          better = true;
        } else if (cost < best_cost + 1e-12) {
          if (!enforce_capacity) {
            better = nst.used[kCpuMhz] < best_load;
          } else {
            better = nst.count > best_count ||
                     (nst.count == best_count && s.slot < best);
          }
        }
        if (better) {
          best = s.slot;
          best_cost = cost;
          best_load = nst.used[kCpuMhz];
          best_count = nst.count;
        }
      }

      if (best != kUnassigned) {
        if (pass >= 1) result.count_relaxed = true;
        if (pass >= 2) result.capacity_relaxed = true;
        break;
      }
    }

    if (best == kUnassigned) {
      // No slot at all (every slot owned by other topologies). Leave the
      // executor unassigned; callers treat a partial placement as failure.
      continue;
    }

    // Line 6: commit x_{i j*} = 1.
    SlotState& st = slots[best];
    NodeState& nst = nodes[static_cast<std::size_t>(st.node)];
    st.owner = e->topology;
    nst.topo_slot[e->topology] = best;
    nst.used = resource_add(nst.used, demand);
    nst.count += 1;
    task_node[e->task] = st.node;
    result.assignment[e->task] = best;
  }

  return result;
}

}  // namespace tstorm::sched
