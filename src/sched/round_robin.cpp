#include "sched/round_robin.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

namespace tstorm::sched {
namespace {

/// Free slots interleaved across nodes: (port 0, node 0), (port 0, node 1),
/// ..., (port 1, node 0), ... — Storm's slot ordering.
std::vector<SlotSpec> interleaved_free_slots(const SchedulerInput& in) {
  const auto occupied = occupied_slot_set(in);
  std::vector<SlotSpec> slots;
  for (const auto& s : in.slots) {
    if (!occupied.contains(s.slot)) slots.push_back(s);
  }
  std::sort(slots.begin(), slots.end(),
            [](const SlotSpec& a, const SlotSpec& b) {
              if (a.port != b.port) return a.port < b.port;
              return a.node < b.node;
            });
  return slots;
}

int requested_workers(const SchedulerInput& in, TopologyId topo) {
  for (const auto& t : in.topologies) {
    if (t.id == topo) return t.requested_workers;
  }
  return 1;
}

/// Executors grouped by topology, preserving input (task) order. With
/// queue pressure enabled, each group is dealt heaviest-effective-load
/// first so backlogged executors land on distinct workers before the deal
/// wraps around (weight 0 keeps the historical input order exactly).
std::map<TopologyId, std::vector<const ExecutorSpec*>> by_topology(
    const SchedulerInput& in) {
  std::map<TopologyId, std::vector<const ExecutorSpec*>> groups;
  for (const auto& e : in.executors) groups[e.topology].push_back(&e);
  const double qw = in.queue_pressure_weight;
  if (qw > 0) {
    for (auto& [topo, execs] : groups) {
      std::stable_sort(execs.begin(), execs.end(),
                       [qw](const ExecutorSpec* a, const ExecutorSpec* b) {
                         return a->effective_load(qw) > b->effective_load(qw);
                       });
    }
  }
  return groups;
}

}  // namespace

ScheduleResult RoundRobinScheduler::schedule(const SchedulerInput& in) {
  ScheduleResult result;
  auto slots = interleaved_free_slots(in);
  std::size_t next_slot = 0;

  for (auto& [topo, execs] : by_topology(in)) {
    const int nu = std::max(1, requested_workers(in, topo));
    // Claim min(Nu, free) slots for this topology's workers.
    std::vector<SlotIndex> workers;
    while (static_cast<int>(workers.size()) < nu && next_slot < slots.size()) {
      workers.push_back(slots[next_slot++].slot);
    }
    if (workers.empty()) continue;  // cluster out of slots
    // Deal executors round-robin into the workers.
    for (std::size_t i = 0; i < execs.size(); ++i) {
      result.assignment[execs[i]->task] = workers[i % workers.size()];
    }
  }
  audit_capacity(in, result);  // capacity-blind: flag overcommit post hoc
  return result;
}

ScheduleResult TStormInitialScheduler::schedule(const SchedulerInput& in) {
  ScheduleResult result;
  auto occupied = occupied_slot_set(in);

  for (auto& [topo, execs] : by_topology(in)) {
    // First free slot on each node, nodes in ascending order.
    std::map<NodeId, SlotSpec> per_node;
    for (const auto& s : in.slots) {
      if (occupied.contains(s.slot)) continue;
      auto it = per_node.find(s.node);
      if (it == per_node.end() || s.port < it->second.port) {
        per_node[s.node] = s;
      }
    }
    const int nw = static_cast<int>(per_node.size());
    const int nu = std::max(1, requested_workers(in, topo));
    const int n_workers = std::min(nu, nw);
    if (n_workers == 0) continue;

    std::vector<SlotIndex> workers;
    for (const auto& [node, slot] : per_node) {
      if (static_cast<int>(workers.size()) >= n_workers) break;
      workers.push_back(slot.slot);
      occupied.insert(slot.slot);  // not reusable by the next topology
    }
    for (std::size_t i = 0; i < execs.size(); ++i) {
      result.assignment[execs[i]->task] = workers[i % workers.size()];
    }
  }
  audit_capacity(in, result);  // capacity-blind: flag overcommit post hoc
  return result;
}

}  // namespace tstorm::sched
