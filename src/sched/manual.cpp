#include "sched/manual.h"

#include <algorithm>
#include <set>
#include <vector>

namespace tstorm::sched {

ScheduleResult ManualScheduler::schedule(const SchedulerInput& in) {
  ScheduleResult result;
  std::set<SlotIndex> used;
  for (const auto& [task, slot] : placement_) used.insert(slot);
  const std::vector<SlotIndex> ring(used.begin(), used.end());

  std::size_t next = 0;
  for (const auto& e : in.executors) {
    auto it = placement_.find(e.task);
    if (it != placement_.end()) {
      result.assignment[e.task] = it->second;
    } else if (!ring.empty()) {
      result.assignment[e.task] = ring[next++ % ring.size()];
    }
  }
  audit_capacity(in, result);  // capacity-blind: flag overcommit post hoc
  return result;
}

}  // namespace tstorm::sched
