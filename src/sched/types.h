// Scheduling problem types shared by every algorithm and by the runtime.
// Matches the paper's notation (Table I): executors i with workloads l_i,
// traffic r_ii', slots j on worker nodes k with capacities C_k, and the
// consolidation factor gamma — generalized from the paper's scalar CPU
// capacity to a small fixed resource vector (CPU, memory, network) in the
// style of ytsaurus's TResourceCapacities, so resource-aware schedulers
// (R-Storm) and heterogeneous fleets share one input format with
// Algorithm 1.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace tstorm::sched {

using TaskId = int;
using NodeId = int;
using SlotIndex = int;
using TopologyId = int;

/// Assignment versions are timestamps (T-Storm uses the assignment
/// timestamp as its ID to tell old and new workers apart, section IV-D).
using AssignmentVersion = std::int64_t;

inline constexpr SlotIndex kUnassigned = -1;

/// --- Resource vectors. ---
/// Fixed dimensions, one slot per resource kind. Executor demands and node
/// capacities use the same layout; a dimension nobody fills (capacity
/// +infinity, demand 0) is simply unconstrained, which is how
/// single-resource (CPU-only) inputs stay exactly as expressive as before.
enum ResourceDim : std::size_t {
  kCpuMhz = 0,      // estimated CPU consumption / capacity, MHz
  kMemoryMib = 1,   // resident bytes (queues + keyed state) / RAM, MiB
  kNetworkMbps = 2  // emitted traffic / NIC egress, Mbit/s
};
inline constexpr std::size_t kResourceDims = 3;
using ResourceVector = std::array<double, kResourceDims>;

/// Capacity vector of a node nobody constrained (every dimension open).
[[nodiscard]] constexpr ResourceVector unconstrained_capacity() {
  constexpr double inf = std::numeric_limits<double>::infinity();
  return {inf, inf, inf};
}

/// a + b, element-wise.
[[nodiscard]] ResourceVector resource_add(const ResourceVector& a,
                                          const ResourceVector& b);

/// True when `used + demand` stays within `capacity` in every dimension
/// (the multi-dimensional generalization of the paper's constraint (2)).
[[nodiscard]] bool resource_fits(const ResourceVector& used,
                                 const ResourceVector& demand,
                                 const ResourceVector& capacity);

/// One executor (task) to place. In this system each executor runs exactly
/// one task (Storm's default), so executor == task.
struct ExecutorSpec {
  TaskId task = -1;
  TopologyId topology = -1;
  /// Estimated demand per resource dimension: demand[kCpuMhz] is the
  /// paper's workload l_i (EWMA of measured CPU usage); memory is resident
  /// bytes (queued tuples + keyed state), network the emitted-traffic
  /// rate. Single-resource callers initialize just the first element
  /// (`{task, topo, {load_mhz}}`) and leave the rest zero.
  ResourceVector demand{};
  /// Estimated input-queue depth (EWMA of sampled envelopes waiting).
  /// Queue pressure distinguishes an executor that is busy from one that
  /// is falling behind; SchedulerInput::queue_pressure_weight folds it
  /// into effective_load() for every scheduler uniformly.
  double queue_depth = 0;

  /// CPU demand, the paper's l_i.
  [[nodiscard]] double load_mhz() const { return demand[kCpuMhz]; }

  /// Capacity footprint in the CPU dimension: CPU load plus weighted queue
  /// pressure (weight 0 == the paper's Algorithm 1, CPU only). Every
  /// capacity-respecting scheduler must charge this — not bare load_mhz()
  /// — so enabling queue pressure steers all of them, not just one.
  [[nodiscard]] double effective_load(double queue_pressure_weight) const {
    return demand[kCpuMhz] + queue_pressure_weight * queue_depth;
  }

  /// Full demand vector with the CPU dimension replaced by
  /// effective_load().
  [[nodiscard]] ResourceVector effective_demand(
      double queue_pressure_weight) const {
    ResourceVector d = demand;
    d[kCpuMhz] = effective_load(queue_pressure_weight);
    return d;
  }
};

struct SlotSpec {
  SlotIndex slot = -1;
  NodeId node = -1;
  /// Port index within the node (Storm slots are ports).
  int port = 0;
};

/// Scheduler-visible worker node: its id and capacity vector. Replaces the
/// bare per-node capacity-MHz array; the runtime usually passes a fraction
/// of the physical capacities to keep overload improbable (section IV-C).
/// A failed node keeps its entry with all-zero capacity (and contributes
/// no slots).
struct NodeSpec {
  NodeId node = -1;
  ResourceVector capacity{};
};

struct TopologySpec {
  TopologyId id = -1;
  /// Workers requested by the user (Nu); only round-robin-style schedulers
  /// honour it, Algorithm 1 derives the worker count itself (section IV-C).
  int requested_workers = 1;
};

/// Estimated traffic r_{src,dst} in tuples/second between two executors.
struct TrafficEntry {
  TaskId src = -1;
  TaskId dst = -1;
  double rate = 0;
};

struct SchedulerInput {
  std::vector<ExecutorSpec> executors;
  std::vector<SlotSpec> slots;
  std::vector<TopologySpec> topologies;
  /// Scheduler-visible nodes, indexed by NodeId (nodes[k].node == k).
  /// Empty means "no capacity information": every node is unconstrained,
  /// the pre-resource-vector behaviour of inputs that never set
  /// capacities.
  std::vector<NodeSpec> nodes;
  std::vector<TrafficEntry> traffic;
  /// Task-level edges of the topology graphs (every producer task to every
  /// consumer task). Input for topology-structure-only schedulers
  /// (Aniello et al.'s offline scheduler) and for R-Storm's breadth-first
  /// placement order.
  std::vector<std::pair<TaskId, TaskId>> topology_edges;
  /// Slots unavailable to this run (used by topologies outside it).
  std::vector<SlotIndex> occupied_slots;
  /// Consolidation factor gamma (>= 1): caps executors per node at
  /// ceil(gamma * Ne / K).
  double gamma = 1.0;
  /// MHz of effective load attributed per queued envelope (see
  /// ExecutorSpec::effective_load). 0 (default) reproduces the paper's
  /// algorithms exactly; > 0 makes every capacity-respecting scheduler
  /// steer away from packing backlogged executors onto near-full nodes.
  double queue_pressure_weight = 0.0;

  /// Checked capacity lookup (the one true way to read C_k): returns the
  /// capacity vector of node `k`. An empty `nodes` vector means
  /// unconstrained everywhere. An out-of-range `k` against a non-empty
  /// `nodes` vector is a malformed input — debug builds assert; release
  /// builds clamp to the nearest valid entry and warn once on stderr
  /// (same convention as runtime's validated()). Out-of-range ids used to
  /// silently resolve to a made-up capacity, hiding caller bugs.
  [[nodiscard]] ResourceVector node_capacity(NodeId k) const;

  /// CPU component of node_capacity() — the paper's scalar C_k.
  [[nodiscard]] double node_capacity_mhz(NodeId k) const {
    return node_capacity(k)[kCpuMhz];
  }
};

using Placement = std::unordered_map<TaskId, SlotIndex>;

struct ScheduleResult {
  Placement assignment;
  /// True when the gamma count constraint had to be relaxed to place all
  /// executors.
  bool count_relaxed = false;
  /// True when a resource-capacity constraint had to be relaxed — or, for
  /// capacity-blind algorithms (round-robin family, Aniello, manual), when
  /// the returned placement was found to exceed some node's capacity
  /// (audit_capacity). Contract: a result with both flags false respects
  /// every hard resource constraint of the input.
  bool capacity_relaxed = false;
};

/// The occupied_slots list as a set (every algorithm needs this lookup).
[[nodiscard]] std::unordered_set<SlotIndex> occupied_slot_set(
    const SchedulerInput& in);

/// Post-hoc capacity audit for capacity-blind algorithms: sums each node's
/// effective demand and sets result.capacity_relaxed when any dimension
/// exceeds the node's capacity. Keeps the relaxation-flag contract honest
/// without changing the placement.
void audit_capacity(const SchedulerInput& in, ScheduleResult& result);

/// Sum of traffic between executors placed on different nodes. The
/// objective Algorithm 1 minimizes.
double internode_traffic(const SchedulerInput& in, const Placement& p);

/// Sum of traffic between executors on the same node but different slots
/// (workers). Algorithm 1's per-topology one-slot-per-node invariant forces
/// this to zero for co-scheduled topologies.
double interprocess_traffic(const SchedulerInput& in, const Placement& p);

/// Number of distinct nodes hosting at least one executor.
int nodes_used(const SchedulerInput& in, const Placement& p);

/// Number of distinct slots (workers) used.
int slots_used(const Placement& p);

/// Checks Algorithm 1's structural invariant: each topology uses at most
/// one slot per node. Returns true when the invariant holds.
bool one_slot_per_topology_per_node(const SchedulerInput& in,
                                    const Placement& p);

}  // namespace tstorm::sched
