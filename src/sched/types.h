// Scheduling problem types shared by every algorithm and by the runtime.
// Matches the paper's notation (Table I): executors i with workloads l_i,
// traffic r_ii', slots j on worker nodes k with capacities C_k, and the
// consolidation factor gamma.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace tstorm::sched {

using TaskId = int;
using NodeId = int;
using SlotIndex = int;
using TopologyId = int;

/// Assignment versions are timestamps (T-Storm uses the assignment
/// timestamp as its ID to tell old and new workers apart, section IV-D).
using AssignmentVersion = std::int64_t;

inline constexpr SlotIndex kUnassigned = -1;

/// One executor (task) to place. In this system each executor runs exactly
/// one task (Storm's default), so executor == task.
struct ExecutorSpec {
  TaskId task = -1;
  TopologyId topology = -1;
  /// Estimated workload l_i in MHz (EWMA of measured CPU usage).
  double load_mhz = 0;
  /// Estimated input-queue depth (EWMA of sampled envelopes waiting).
  /// Queue pressure distinguishes an executor that is busy from one that
  /// is falling behind; schedulers may weigh it (see
  /// TrafficAwareOptions::queue_pressure_weight) or ignore it.
  double queue_depth = 0;
};

struct SlotSpec {
  SlotIndex slot = -1;
  NodeId node = -1;
  /// Port index within the node (Storm slots are ports).
  int port = 0;
};

struct TopologySpec {
  TopologyId id = -1;
  /// Workers requested by the user (Nu); only round-robin-style schedulers
  /// honour it, Algorithm 1 derives the worker count itself (section IV-C).
  int requested_workers = 1;
};

/// Estimated traffic r_{src,dst} in tuples/second between two executors.
struct TrafficEntry {
  TaskId src = -1;
  TaskId dst = -1;
  double rate = 0;
};

struct SchedulerInput {
  std::vector<ExecutorSpec> executors;
  std::vector<SlotSpec> slots;
  std::vector<TopologySpec> topologies;
  /// Scheduler-visible capacity C_k per node id; the runtime usually passes
  /// a fraction of the physical capacity to keep overload improbable
  /// (section IV-C).
  std::vector<double> node_capacity_mhz;
  std::vector<TrafficEntry> traffic;
  /// Task-level edges of the topology graphs (every producer task to every
  /// consumer task). Input for topology-structure-only schedulers
  /// (Aniello et al.'s offline scheduler).
  std::vector<std::pair<TaskId, TaskId>> topology_edges;
  /// Slots unavailable to this run (used by topologies outside it).
  std::vector<SlotIndex> occupied_slots;
  /// Consolidation factor gamma (>= 1): caps executors per node at
  /// ceil(gamma * Ne / K).
  double gamma = 1.0;
};

using Placement = std::unordered_map<TaskId, SlotIndex>;

struct ScheduleResult {
  Placement assignment;
  /// True when the gamma count constraint had to be relaxed to place all
  /// executors.
  bool count_relaxed = false;
  /// True when the capacity constraint had to be relaxed.
  bool capacity_relaxed = false;
};

/// Sum of traffic between executors placed on different nodes. The
/// objective Algorithm 1 minimizes.
double internode_traffic(const SchedulerInput& in, const Placement& p);

/// Sum of traffic between executors on the same node but different slots
/// (workers). Algorithm 1's per-topology one-slot-per-node invariant forces
/// this to zero for co-scheduled topologies.
double interprocess_traffic(const SchedulerInput& in, const Placement& p);

/// Number of distinct nodes hosting at least one executor.
int nodes_used(const SchedulerInput& in, const Placement& p);

/// Number of distinct slots (workers) used.
int slots_used(const Placement& p);

/// Checks Algorithm 1's structural invariant: each topology uses at most
/// one slot per node. Returns true when the invariant holds.
bool one_slot_per_topology_per_node(const SchedulerInput& in,
                                    const Placement& p);

}  // namespace tstorm::sched
