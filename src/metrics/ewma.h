// Exponentially weighted moving average, the estimator T-Storm uses for
// workload and traffic (paper section IV-B):  Y = alpha*Y + (1-alpha)*S.
// The smaller alpha, the more sensitive Y is to the latest sample.
#pragma once

namespace tstorm::metrics {

class Ewma {
 public:
  /// alpha in [0, 1]; the paper sets 0.5.
  explicit Ewma(double alpha = 0.5) : alpha_(alpha) {}

  /// Feeds one sample and returns the updated estimate. The first sample
  /// initializes the estimate directly (no bias toward zero).
  double update(double sample) {
    if (!seeded_) {
      value_ = sample;
      seeded_ = true;
    } else {
      value_ = alpha_ * value_ + (1.0 - alpha_) * sample;
    }
    return value_;
  }

  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] bool seeded() const { return seeded_; }
  [[nodiscard]] double alpha() const { return alpha_; }
  void set_alpha(double alpha) { alpha_ = alpha; }

  void reset() {
    value_ = 0;
    seeded_ = false;
  }

 private:
  double alpha_;
  double value_ = 0;
  bool seeded_ = false;
};

}  // namespace tstorm::metrics
