#include "metrics/histogram.h"

#include <algorithm>
#include <cmath>

namespace tstorm::metrics {

namespace {
const double kLogMin = std::log(LatencyHistogram::kMinMs);
const double kLogMax = std::log(LatencyHistogram::kMaxMs);
}  // namespace

int LatencyHistogram::bin_for(double ms) {
  if (ms <= kMinMs) return 0;
  if (ms >= kMaxMs) return kBins - 1;
  const double f = (std::log(ms) - kLogMin) / (kLogMax - kLogMin);
  return std::clamp(static_cast<int>(f * kBins), 0, kBins - 1);
}

double LatencyHistogram::bin_upper_edge(int bin) {
  const double f = static_cast<double>(bin + 1) / kBins;
  return std::exp(kLogMin + f * (kLogMax - kLogMin));
}

void LatencyHistogram::add(double ms) {
  ++bins_[static_cast<std::size_t>(bin_for(ms))];
  ++count_;
  sum_ += ms;
  max_ = std::max(max_, ms);
}

double LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBins; ++b) {
    seen += bins_[static_cast<std::size_t>(b)];
    if (seen >= rank && seen > 0) return bin_upper_edge(b);
  }
  return bin_upper_edge(kBins - 1);
}

void LatencyHistogram::reset() {
  bins_.fill(0);
  count_ = 0;
  sum_ = 0;
  max_ = 0;
}

}  // namespace tstorm::metrics
