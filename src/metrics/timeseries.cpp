#include "metrics/timeseries.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tstorm::metrics {

WindowedSeries::WindowedSeries(sim::Time window) : width_(window) {
  assert(window > 0);
}

WindowedSeries::Window& WindowedSeries::window_for(sim::Time t) {
  const auto idx = static_cast<std::size_t>(std::max(0.0, t) / width_);
  while (windows_.size() <= idx) {
    Window w;
    w.start = static_cast<sim::Time>(windows_.size()) * width_;
    windows_.push_back(w);
  }
  return windows_[idx];
}

void WindowedSeries::add(sim::Time t, double value) {
  auto& w = window_for(t);
  if (w.count == 0) {
    w.min = value;
    w.max = value;
  } else {
    w.min = std::min(w.min, value);
    w.max = std::max(w.max, value);
  }
  ++w.count;
  w.sum += value;
  ++total_count_;
  points_.emplace_back(t, value);
}

std::optional<double> WindowedSeries::mean_between(sim::Time from,
                                                   sim::Time to) const {
  double sum = 0;
  std::uint64_t n = 0;
  for (const auto& [t, v] : points_) {
    if (t >= from && t < to) {
      sum += v;
      ++n;
    }
  }
  if (n == 0) return std::nullopt;
  return sum / static_cast<double>(n);
}

WindowedCounter::WindowedCounter(sim::Time window) : width_(window) {
  assert(window > 0);
}

void WindowedCounter::add(sim::Time t, std::uint64_t n) {
  const auto idx = static_cast<std::size_t>(std::max(0.0, t) / width_);
  while (windows_.size() <= idx) {
    Window w;
    w.start = static_cast<sim::Time>(windows_.size()) * width_;
    windows_.push_back(w);
  }
  windows_[idx].count += n;
  total_ += n;
}

std::uint64_t WindowedCounter::count_between(sim::Time from,
                                             sim::Time to) const {
  std::uint64_t n = 0;
  for (const auto& w : windows_) {
    if (w.start >= from && w.start + width_ <= to) n += w.count;
  }
  return n;
}

}  // namespace tstorm::metrics
