// CompletionRecorder: the evaluation's primary metric pipeline. Records the
// processing time of every root tuple (spout emission -> full ack), failed
// tuples (30 s timeout), late acks, and drop/replay counts. Mirrors the
// paper's measurement: 1-minute averages of average processing time.
#pragma once

#include <cstdint>

#include "metrics/histogram.h"
#include "metrics/timeseries.h"

namespace tstorm::metrics {

class CompletionRecorder {
 public:
  explicit CompletionRecorder(sim::Time window = 60.0)
      : proc_time_ms_(window), failures_(window), completions_(window) {}

  /// Records a fully acked root tuple. `late` marks tuples acked after
  /// their timeout already fired (they are also counted as failures).
  void record_completion(sim::Time emit_time, sim::Time ack_time, bool late);

  /// Records a tuple that hit its timeout.
  void record_failure(sim::Time t);

  /// Records a tuple/message dropped in flight (worker shut down, no route).
  void record_drop(sim::Time t);

  /// Records a replayed emission.
  void record_replay(sim::Time t);

  /// Pre-sizes the series for an expected completion count over a run of
  /// `horizon` simulated seconds (zero-alloc steady-state benches).
  void reserve(std::size_t completions, sim::Time horizon) {
    proc_time_ms_.reserve(completions, horizon);
    failures_.reserve(horizon);
    completions_.reserve(horizon);
  }

  /// Average processing time (ms) per 1-minute window — the y-axis of the
  /// paper's Figs. 2, 3(a), 5, 6, 8, 9, 10.
  [[nodiscard]] const WindowedSeries& proc_time_ms() const {
    return proc_time_ms_;
  }

  /// Failed tuples per window — Fig. 3(b).
  [[nodiscard]] const WindowedCounter& failures() const { return failures_; }

  [[nodiscard]] const WindowedCounter& completions() const {
    return completions_;
  }

  /// Full-run latency distribution (percentiles over all completions).
  [[nodiscard]] const LatencyHistogram& latency_histogram() const {
    return histogram_;
  }

  [[nodiscard]] std::uint64_t total_completed() const {
    return total_completed_;
  }
  [[nodiscard]] std::uint64_t total_failed() const { return total_failed_; }
  [[nodiscard]] std::uint64_t total_late() const { return total_late_; }
  [[nodiscard]] std::uint64_t total_dropped() const { return total_dropped_; }
  [[nodiscard]] std::uint64_t total_replayed() const {
    return total_replayed_;
  }

 private:
  WindowedSeries proc_time_ms_;
  WindowedCounter failures_;
  WindowedCounter completions_;
  LatencyHistogram histogram_;
  std::uint64_t total_completed_ = 0;
  std::uint64_t total_failed_ = 0;
  std::uint64_t total_late_ = 0;
  std::uint64_t total_dropped_ = 0;
  std::uint64_t total_replayed_ = 0;
};

}  // namespace tstorm::metrics
