// Log-scale latency histogram with percentile queries. Fixed memory,
// O(1) insert — suitable for millions of tuple completions per run. Bins
// span 1 µs to 1000 s of processing time with ~4.4 % relative resolution.
#pragma once

#include <array>
#include <cstdint>

namespace tstorm::metrics {

class LatencyHistogram {
 public:
  static constexpr int kBins = 512;
  static constexpr double kMinMs = 1e-3;  // 1 microsecond
  static constexpr double kMaxMs = 1e6;   // 1000 seconds

  void add(double ms);

  /// Value (ms) at the given percentile in [0, 100]; 0 when empty. The
  /// result is the upper edge of the bin containing the requested rank.
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double max() const { return max_; }

  void reset();

 private:
  static int bin_for(double ms);
  static double bin_upper_edge(int bin);

  std::array<std::uint64_t, kBins> bins_{};
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double max_ = 0;
};

}  // namespace tstorm::metrics
