#include "metrics/completion.h"

namespace tstorm::metrics {

void CompletionRecorder::record_completion(sim::Time emit_time,
                                           sim::Time ack_time, bool late) {
  const double ms = (ack_time - emit_time) * 1e3;
  proc_time_ms_.add(ack_time, ms);
  completions_.add(ack_time);
  histogram_.add(ms);
  ++total_completed_;
  if (late) ++total_late_;
}

void CompletionRecorder::record_failure(sim::Time t) {
  failures_.add(t);
  ++total_failed_;
}

void CompletionRecorder::record_drop(sim::Time t) {
  (void)t;
  ++total_dropped_;
}

void CompletionRecorder::record_replay(sim::Time t) {
  (void)t;
  ++total_replayed_;
}

}  // namespace tstorm::metrics
