// Text/CSV reporters used by the bench harness to print the same series the
// paper plots: running time vs. average processing time, per scheduler.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "metrics/timeseries.h"
#include "obs/provenance.h"
#include "obs/tuple_trace.h"

namespace tstorm::metrics {

/// One plotted line (e.g. "Storm", "T-Storm").
struct SeriesColumn {
  std::string label;
  const WindowedSeries* series = nullptr;
};

/// Prints aligned columns: window start time, then one mean per column
/// ("-" where a column has no observations in that window).
void print_series_table(std::ostream& os, const std::vector<SeriesColumn>& cols,
                        sim::Time until);

/// Same data as CSV (for re-plotting the figures).
void write_series_csv(std::ostream& os, const std::vector<SeriesColumn>& cols,
                      sim::Time until);

/// Formats a double with fixed precision, "-" for NaN.
std::string format_ms(double v, int precision = 2);

/// --- Flow-control gauges. ---
/// One per-executor row: input-queue depth and tuples shed so far.
/// Assembled by callers from runtime state (Cluster::flow_gauges()).
struct FlowGaugeRow {
  int task = -1;
  int node = -1;
  std::size_t queue_depth = 0;
  std::uint64_t shed = 0;
};

/// Aligned table of per-executor queue depth and shed counts, with a
/// totals footer including the recent shed rate (events/s over the shed
/// window). Rows with zero depth and zero shed are elided.
void print_flow_gauges(std::ostream& os, const std::vector<FlowGaugeRow>& rows,
                       double shed_rate_per_s);

/// --- Checkpoint gauges. ---
/// One per-topology row mirroring state::CheckpointGauges, plus the
/// configured interval for adherence at a glance. Assembled by
/// Cluster::checkpoint_gauges().
struct CheckpointGaugeRow {
  int topology = -1;
  std::uint64_t completed = 0;
  std::uint64_t aborted = 0;
  /// Snapshot writes rejected from superseded task incarnations.
  std::uint64_t stale_writes = 0;
  std::uint64_t last_id = 0;
  std::uint64_t last_bytes = 0;
  double last_duration = 0;
  double mean_interval = 0;
  double target_interval = 0;
};

/// Aligned table of per-topology checkpoint progress: completed/aborted
/// rounds, last snapshot size and barrier-to-durable duration, and mean
/// completion interval vs the configured one (interval adherence).
void print_checkpoint_gauges(std::ostream& os,
                             const std::vector<CheckpointGaugeRow>& rows);

/// --- Observability summaries. ---

/// Scheduling decisions: totals by outcome and trigger, then the most
/// recent `tail` records as one line each (why the scheduler last acted —
/// or declined to).
void print_decision_summary(std::ostream& os, const obs::ProvenanceLog& log,
                            std::size_t tail = 5);

/// Sampled tuple traces: how many roots were traced, completion split, and
/// the mean end-to-end latency breakdown (queue wait / execute / network /
/// ack wait) over finished roots — the Fig. 3 "where does latency come
/// from" answer, per run.
void print_tuple_trace_summary(std::ostream& os,
                               const obs::TupleTraceCollector& tuples);

}  // namespace tstorm::metrics
