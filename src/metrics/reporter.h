// Text/CSV reporters used by the bench harness to print the same series the
// paper plots: running time vs. average processing time, per scheduler.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "metrics/timeseries.h"

namespace tstorm::metrics {

/// One plotted line (e.g. "Storm", "T-Storm").
struct SeriesColumn {
  std::string label;
  const WindowedSeries* series = nullptr;
};

/// Prints aligned columns: window start time, then one mean per column
/// ("-" where a column has no observations in that window).
void print_series_table(std::ostream& os, const std::vector<SeriesColumn>& cols,
                        sim::Time until);

/// Same data as CSV (for re-plotting the figures).
void write_series_csv(std::ostream& os, const std::vector<SeriesColumn>& cols,
                      sim::Time until);

/// Formats a double with fixed precision, "-" for NaN.
std::string format_ms(double v, int precision = 2);

}  // namespace tstorm::metrics
