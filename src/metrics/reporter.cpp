#include "metrics/reporter.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace tstorm::metrics {
namespace {

std::size_t max_windows(const std::vector<SeriesColumn>& cols,
                        sim::Time until) {
  std::size_t n = 0;
  for (const auto& c : cols) {
    if (c.series == nullptr) continue;
    const auto width = c.series->window_width();
    const auto horizon = static_cast<std::size_t>(until / width);
    n = std::max(n, std::min(c.series->windows().size(), horizon));
  }
  return n;
}

}  // namespace

std::string format_ms(double v, int precision) {
  if (std::isnan(v)) return "-";
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void print_series_table(std::ostream& os,
                        const std::vector<SeriesColumn>& cols,
                        sim::Time until) {
  if (cols.empty()) return;
  os << std::setw(10) << "time(s)";
  for (const auto& c : cols) os << std::setw(16) << c.label;
  os << '\n';
  const std::size_t n = max_windows(cols, until);
  for (std::size_t i = 0; i < n; ++i) {
    bool any = false;
    std::ostringstream row;
    double start = 0;
    for (const auto& c : cols) {
      const auto& ws = c.series->windows();
      if (i < ws.size() && ws[i].count > 0) {
        any = true;
        start = ws[i].start + c.series->window_width();
        row << std::setw(16) << format_ms(ws[i].mean());
      } else {
        if (i < ws.size()) start = ws[i].start + c.series->window_width();
        row << std::setw(16) << "-";
      }
    }
    if (!any) continue;
    os << std::setw(10) << static_cast<long long>(start) << row.str() << '\n';
  }
}

void write_series_csv(std::ostream& os, const std::vector<SeriesColumn>& cols,
                      sim::Time until) {
  os << "time_s";
  for (const auto& c : cols) os << ',' << c.label;
  os << '\n';
  const std::size_t n = max_windows(cols, until);
  for (std::size_t i = 0; i < n; ++i) {
    double start = 0;
    std::ostringstream row;
    for (const auto& c : cols) {
      const auto& ws = c.series->windows();
      if (i < ws.size()) {
        start = ws[i].start + c.series->window_width();
        row << ',';
        if (ws[i].count > 0) row << format_ms(ws[i].mean());
      } else {
        row << ',';
      }
    }
    os << static_cast<long long>(start) << row.str() << '\n';
  }
}

void print_flow_gauges(std::ostream& os,
                       const std::vector<FlowGaugeRow>& rows,
                       double shed_rate_per_s) {
  os << std::setw(8) << "task" << std::setw(8) << "node" << std::setw(12)
     << "queue" << std::setw(12) << "shed" << '\n';
  std::size_t depth_total = 0;
  std::uint64_t shed_total = 0;
  for (const auto& r : rows) {
    depth_total += r.queue_depth;
    shed_total += r.shed;
    if (r.queue_depth == 0 && r.shed == 0) continue;
    os << std::setw(8) << r.task << std::setw(8) << r.node << std::setw(12)
       << r.queue_depth << std::setw(12) << r.shed << '\n';
  }
  os << std::setw(8) << "total" << std::setw(8) << "-" << std::setw(12)
     << depth_total << std::setw(12) << shed_total << "  ("
     << format_ms(shed_rate_per_s) << " shed/s recent)\n";
}

void print_checkpoint_gauges(std::ostream& os,
                             const std::vector<CheckpointGaugeRow>& rows) {
  os << std::setw(10) << "topology" << std::setw(11) << "completed"
     << std::setw(9) << "aborted" << std::setw(7) << "stale" << std::setw(9)
     << "last-id" << std::setw(12) << "last-bytes" << std::setw(12)
     << "last-ms" << std::setw(13) << "interval-s" << std::setw(11)
     << "target-s" << '\n';
  for (const auto& r : rows) {
    os << std::setw(10) << r.topology << std::setw(11) << r.completed
       << std::setw(9) << r.aborted << std::setw(7) << r.stale_writes
       << std::setw(9) << r.last_id << std::setw(12) << r.last_bytes
       << std::setw(12)
       << format_ms(r.last_duration * 1e3) << std::setw(13)
       << format_ms(r.mean_interval) << std::setw(11)
       << format_ms(r.target_interval) << '\n';
  }
  if (rows.empty()) os << "  (no topologies registered)\n";
}

void print_decision_summary(std::ostream& os, const obs::ProvenanceLog& log,
                            std::size_t tail) {
  os << "scheduling decisions: " << log.total_recorded() << " recorded ("
     << log.size() << " retained), " << log.published_total()
     << " published\n";
  static constexpr obs::DecisionOutcome kOutcomes[] = {
      obs::DecisionOutcome::kPublished,
      obs::DecisionOutcome::kEmptyInput,
      obs::DecisionOutcome::kIncompleteAssignment,
      obs::DecisionOutcome::kNoChange,
      obs::DecisionOutcome::kNoWin,
      obs::DecisionOutcome::kApplyRejected,
  };
  os << "  by outcome:";
  for (const auto outcome : kOutcomes) {
    const std::size_t n = log.count(outcome);
    if (n > 0) os << ' ' << obs::to_string(outcome) << '=' << n;
  }
  os << '\n';
  const auto& records = log.records();
  const std::size_t start =
      records.size() > tail ? records.size() - tail : 0;
  for (std::size_t i = start; i < records.size(); ++i) {
    os << "  " << obs::format_decision(records[i]) << '\n';
  }
}

void print_tuple_trace_summary(std::ostream& os,
                               const obs::TupleTraceCollector& tuples) {
  os << "tuple traces: " << tuples.sampled_total() << " roots sampled, "
     << tuples.finished().size() << " finished retained, " << tuples.active()
     << " active";
  if (tuples.spans_truncated() > 0) {
    os << ", " << tuples.spans_truncated() << " spans truncated";
  }
  os << '\n';
  std::size_t completed = 0;
  double latency = 0, queue = 0, exec = 0, network = 0, ack = 0;
  for (const auto& root : tuples.finished()) {
    if (root.completed) ++completed;
    latency += root.end_time - root.emit_time;
    queue += root.queue_wait_s;
    exec += root.execute_s;
    network += root.network_s;
    ack += root.ack_wait_s;
  }
  const auto n = static_cast<double>(tuples.finished().size());
  if (n == 0) return;
  os << "  completed " << completed << " / timed out "
     << (tuples.finished().size() - completed) << '\n';
  os << "  mean per root (ms): end-to-end "
     << format_ms(latency / n * 1e3) << ", queue-wait "
     << format_ms(queue / n * 1e3) << ", execute "
     << format_ms(exec / n * 1e3) << ", network "
     << format_ms(network / n * 1e3) << ", ack-wait "
     << format_ms(ack / n * 1e3) << '\n';
}

}  // namespace tstorm::metrics
