// Windowed time series. The paper reports 1-minute averages of tuple
// processing time (instead of Storm UI's 10-minute averages); WindowedSeries
// implements exactly that aggregation.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/simulation.h"

namespace tstorm::metrics {

/// Aggregates (time, value) observations into fixed-width windows.
class WindowedSeries {
 public:
  explicit WindowedSeries(sim::Time window = 60.0);

  void add(sim::Time t, double value);

  /// Pre-sizes storage for a run of the given horizon and expected
  /// observation count, so steady-state recording never reallocates
  /// (benchmarks asserting a zero-alloc hot path call this up front).
  void reserve(std::size_t observations, sim::Time horizon) {
    points_.reserve(observations);
    windows_.reserve(static_cast<std::size_t>(horizon / width_) + 2);
  }

  struct Window {
    sim::Time start = 0;  // window covers [start, start + width)
    std::uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
  };

  [[nodiscard]] sim::Time window_width() const { return width_; }

  /// All windows from t=0 through the last observation; empty windows are
  /// materialized (count==0) so series align across runs.
  [[nodiscard]] const std::vector<Window>& windows() const { return windows_; }

  /// Mean of all observations with time in [from, to); nullopt if none.
  /// Used for the paper's "counting measurements after stabilization".
  [[nodiscard]] std::optional<double> mean_between(sim::Time from,
                                                   sim::Time to) const;

  /// Total observation count.
  [[nodiscard]] std::uint64_t total_count() const { return total_count_; }

 private:
  Window& window_for(sim::Time t);

  sim::Time width_;
  std::vector<Window> windows_;
  std::uint64_t total_count_ = 0;
  // Exact per-observation aggregation for mean_between (window-granular
  // would bias the stabilized means the paper quotes). Stored compactly.
  std::vector<std::pair<sim::Time, double>> points_;
};

/// Counts events per window (e.g. failed tuples, Fig. 3(b)).
class WindowedCounter {
 public:
  explicit WindowedCounter(sim::Time window = 60.0);

  void add(sim::Time t, std::uint64_t n = 1);

  /// Pre-sizes the window vector for a run of the given horizon.
  void reserve(sim::Time horizon) {
    windows_.reserve(static_cast<std::size_t>(horizon / width_) + 2);
  }

  struct Window {
    sim::Time start = 0;
    std::uint64_t count = 0;
  };

  [[nodiscard]] const std::vector<Window>& windows() const { return windows_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t count_between(sim::Time from, sim::Time to) const;

 private:
  sim::Time width_;
  std::vector<Window> windows_;
  std::uint64_t total_ = 0;
};

}  // namespace tstorm::metrics
