#include "state/checkpoint.h"

#include <algorithm>
#include <utility>

namespace tstorm::state {

CheckpointCoordinator::CheckpointCoordinator(Callbacks callbacks,
                                             double abort_timeout)
    : callbacks_(std::move(callbacks)), abort_timeout_(abort_timeout) {}

void CheckpointCoordinator::register_topology(int topo,
                                              std::vector<int> tasks) {
  deregister_topology(topo);
  Topo t;
  t.topo = topo;
  t.stateful_tasks = std::move(tasks);
  std::sort(t.stateful_tasks.begin(), t.stateful_tasks.end());
  topologies_.push_back(std::move(t));
}

void CheckpointCoordinator::deregister_topology(int topo) {
  std::erase_if(topologies_, [topo](const Topo& t) { return t.topo == topo; });
}

CheckpointCoordinator::Topo* CheckpointCoordinator::find(int topo) {
  for (Topo& t : topologies_) {
    if (t.topo == topo) return &t;
  }
  return nullptr;
}

const CheckpointCoordinator::Topo* CheckpointCoordinator::find(
    int topo) const {
  for (const Topo& t : topologies_) {
    if (t.topo == topo) return &t;
  }
  return nullptr;
}

void CheckpointCoordinator::start_round(Topo& t, double now) {
  t.round = ++next_round_;
  t.awaiting = t.stateful_tasks;
  t.started = now;
  t.bytes = 0;
  if (callbacks_.inject_barriers) callbacks_.inject_barriers(t.topo, t.round);
}

void CheckpointCoordinator::tick(double now) {
  for (Topo& t : topologies_) {
    if (t.round != 0) {
      // Barriers ride the data path, so under backlog a round can
      // legitimately outlive one tick interval — give it until the abort
      // timeout before declaring its barriers or writes lost. (Aborting
      // on every tick would starve commits whenever barrier latency
      // exceeds the interval, wedging checkpoint-gated acks.)
      if (now - t.started < abort_timeout_) continue;
      const std::uint64_t stale = t.round;
      t.round = 0;
      ++t.gauges.aborted;
      if (callbacks_.on_abort) callbacks_.on_abort(t.topo, stale);
    }
    start_round(t, now);
  }
}

void CheckpointCoordinator::on_snapshot_written(int topo, std::uint64_t ckpt,
                                                int task, std::uint64_t bytes,
                                                double now) {
  Topo* t = find(topo);
  if (t == nullptr || t->round != ckpt) return;  // stale write, ignore
  const auto it = std::find(t->awaiting.begin(), t->awaiting.end(), task);
  if (it == t->awaiting.end()) return;  // duplicate write for this round
  t->awaiting.erase(it);
  t->bytes += bytes;
  if (!t->awaiting.empty()) return;

  // Round complete: every stateful task's snapshot is durable.
  const double duration = now - t->started;
  t->round = 0;
  ++t->gauges.completed;
  t->gauges.last_id = ckpt;
  t->gauges.last_bytes = t->bytes;
  t->gauges.last_duration = duration;
  if (t->last_complete_time >= 0) {
    t->interval_sum += now - t->last_complete_time;
    t->gauges.mean_interval =
        t->interval_sum / static_cast<double>(t->gauges.completed - 1);
  }
  t->last_complete_time = now;
  if (callbacks_.on_complete) {
    callbacks_.on_complete(topo, ckpt, duration, t->bytes);
  }
}

void CheckpointCoordinator::note_stale_write(int topo) {
  Topo* t = find(topo);
  if (t != nullptr) ++t->gauges.stale_writes;
}

const CheckpointGauges* CheckpointCoordinator::gauges(int topo) const {
  const Topo* t = find(topo);
  return t != nullptr ? &t->gauges : nullptr;
}

std::vector<int> CheckpointCoordinator::topologies() const {
  std::vector<int> out;
  out.reserve(topologies_.size());
  for (const Topo& t : topologies_) out.push_back(t.topo);
  return out;
}

std::vector<int> CheckpointCoordinator::awaiting_tasks(int topo) const {
  const Topo* t = find(topo);
  return t != nullptr ? t->awaiting : std::vector<int>{};
}

std::uint64_t CheckpointCoordinator::inflight_round(int topo) const {
  const Topo* t = find(topo);
  return t != nullptr ? t->round : 0;
}

}  // namespace tstorm::state
