// Checkpoint coordinator: drives Chandy-Lamport-style barrier rounds.
// Per registered topology it starts a round each tick (injecting barrier
// envelopes at the spouts through a runtime callback), collects the
// durable-write acknowledgements of every stateful task, and declares the
// round completed when all have landed. The tick interval paces round
// *starts*; an in-flight round is aborted only once it has been open
// longer than the abort timeout (lost barriers, dead tasks, dropped
// writes). Keeping the timeout well above the interval matters: barrier
// propagation shares the data path, so under queue backlog a round can
// legitimately take longer than one interval — aborting it on the next
// tick would mean no round ever completes while the backlog lasts, and
// with checkpoint-gated acks that becomes a livelock (acks wait for a
// commit, trees time out, replays deepen the backlog). Runtime-agnostic:
// all side effects go through the Callbacks, so the protocol logic is
// unit-testable without a cluster.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace tstorm::state {

/// Per-topology checkpoint gauges (metrics::print_checkpoint_gauges).
struct CheckpointGauges {
  std::uint64_t completed = 0;
  std::uint64_t aborted = 0;
  /// Snapshot writes rejected because they came from a superseded task
  /// incarnation during a reschedule handoff (see Cluster::state_write).
  std::uint64_t stale_writes = 0;
  /// Round id / snapshot bytes / barrier-to-durable duration of the last
  /// completed round.
  std::uint64_t last_id = 0;
  std::uint64_t last_bytes = 0;
  double last_duration = 0;
  /// Mean gap between consecutive completions — interval adherence: under
  /// a healthy cluster this tracks the configured checkpoint interval;
  /// aborted rounds stretch it.
  double mean_interval = 0;
};

class CheckpointCoordinator {
 public:
  struct Callbacks {
    /// Inject barrier envelopes for round `ckpt` at the topology's spouts.
    std::function<void(int topo, std::uint64_t ckpt)> inject_barriers;
    /// Round completed: every stateful task's snapshot landed durably.
    std::function<void(int topo, std::uint64_t ckpt, double duration,
                       std::uint64_t bytes)>
        on_complete;
    /// Round aborted (superseded by the next tick while incomplete).
    std::function<void(int topo, std::uint64_t ckpt)> on_abort;
  };

  /// `abort_timeout`: how long a round may stay open before a tick aborts
  /// it (seconds). 0 keeps the legacy behaviour — every tick aborts a
  /// still-open round, i.e. timeout == interval.
  explicit CheckpointCoordinator(Callbacks callbacks,
                                 double abort_timeout = 0);

  /// Registers a topology's stateful tasks; each round waits for a write
  /// from every one of them.
  void register_topology(int topo, std::vector<int> stateful_tasks);
  void deregister_topology(int topo);

  /// One coordinator tick: per registered topology, starts the next round
  /// — unless one is still open and younger than the abort timeout, in
  /// which case the tick is skipped to let it finish. An open round older
  /// than the timeout is aborted first. Round ids are globally unique and
  /// increase monotonically.
  void tick(double now);

  /// A stateful task's snapshot for round `ckpt` landed in the durable
  /// store. Ignored when the round is no longer in flight (late writes of
  /// aborted rounds — exactly the torn snapshots restore must not see).
  void on_snapshot_written(int topo, std::uint64_t ckpt, int task,
                           std::uint64_t bytes, double now);

  /// Counts a snapshot write rejected before shipping because its author
  /// was a superseded incarnation (observability only; the round is
  /// unaffected — it completes from the successor or aborts).
  void note_stale_write(int topo);

  [[nodiscard]] const CheckpointGauges* gauges(int topo) const;
  [[nodiscard]] std::vector<int> topologies() const;
  /// Round id currently in flight for the topology (0 = none).
  [[nodiscard]] std::uint64_t inflight_round(int topo) const;
  /// Stateful tasks whose write has not landed for the open (or, right
  /// after an abort, the just-aborted) round.
  [[nodiscard]] std::vector<int> awaiting_tasks(int topo) const;

 private:
  struct Topo {
    int topo = -1;
    std::vector<int> stateful_tasks;
    /// In-flight round state. awaiting shrinks as writes land.
    std::uint64_t round = 0;  // 0 = no round open
    std::vector<int> awaiting;
    double started = 0;
    std::uint64_t bytes = 0;
    CheckpointGauges gauges;
    double last_complete_time = -1;
    double interval_sum = 0;
  };

  [[nodiscard]] Topo* find(int topo);
  [[nodiscard]] const Topo* find(int topo) const;
  void start_round(Topo& t, double now);

  Callbacks callbacks_;
  double abort_timeout_ = 0;
  std::vector<Topo> topologies_;
  std::uint64_t next_round_ = 0;
};

}  // namespace tstorm::state
