#include "state/state_store.h"

#include <cassert>

namespace tstorm::state {

namespace {

/// Per-entry framing overhead in the serialized form (tags + lengths).
constexpr std::uint64_t kEntryOverhead = 16;
constexpr std::uint64_t kDedupEntryBytes = 16;  // path + timestamp

}  // namespace

std::uint64_t StateStore::slot_hash(const topo::Value& key) {
  // Re-mix the FNV output: hash_value is well distributed over its full
  // width but the table masks to the low bits, and 0 is the empty
  // sentinel.
  const std::uint64_t h = mix64(topo::hash_value(key));
  return h != 0 ? h : 1;
}

std::size_t StateStore::probe(const topo::Value& key, std::uint64_t h) const {
  assert(!slots_.empty());
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(h) & mask;
  while (slots_[i].hash != 0 &&
         (slots_[i].hash != h || !(slots_[i].key == key))) {
    i = (i + 1) & mask;
  }
  return i;
}

void StateStore::grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.empty() ? 16 : old.size() * 2, Slot{});
  const std::size_t mask = slots_.size() - 1;
  for (Slot& s : old) {
    if (s.hash == 0) continue;
    std::size_t i = static_cast<std::size_t>(s.hash) & mask;
    while (slots_[i].hash != 0) i = (i + 1) & mask;
    slots_[i] = std::move(s);
  }
}

const topo::Value* StateStore::get(const topo::Value& key) const {
  if (slots_.empty()) return nullptr;
  const std::size_t i = probe(key, slot_hash(key));
  return slots_[i].hash != 0 ? &slots_[i].value : nullptr;
}

topo::Value& StateStore::slot_for(const topo::Value& key) {
  if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) grow();
  const std::uint64_t h = slot_hash(key);
  const std::size_t i = probe(key, h);
  if (slots_[i].hash == 0) {
    slots_[i].hash = h;
    slots_[i].key = key;
    ++size_;
    // The fresh slot's default value counts too — put()/increment()
    // subtract the old value's bytes before writing the new one.
    bytes_ += topo::value_bytes(key) + topo::value_bytes(slots_[i].value) +
              kEntryOverhead;
  }
  return slots_[i].value;
}

void StateStore::put(const topo::Value& key, topo::Value value) {
  if (replay_) return;  // suppressed duplicate: the update already applied
  topo::Value& v = slot_for(key);
  bytes_ -= topo::value_bytes(v);
  v = std::move(value);
  bytes_ += topo::value_bytes(v);
}

std::int64_t StateStore::increment(const topo::Value& key, std::int64_t by) {
  if (replay_) {
    // Suppressed duplicate: the stored total already includes this update,
    // so report it as-is — the replayed emission mirrors the original's
    // exactly-once application.
    const topo::Value* v = get(key);
    return v != nullptr && v->kind() == topo::Value::Kind::kInt ? v->as_int()
                                                                : by;
  }
  topo::Value& v = slot_for(key);
  // A freshly inserted slot holds the default Value (int 0), so the first
  // increment lands on zero.
  const std::int64_t next =
      (v.kind() == topo::Value::Kind::kInt ? v.as_int() : 0) + by;
  bytes_ -= topo::value_bytes(v);
  v = topo::Value(next);
  bytes_ += topo::value_bytes(v);
  return next;
}

bool StateStore::dedup_insert(std::uint64_t path, double now) {
  bool inserted = false;
  double& t = dedup_.get_or_insert(path, &inserted);
  t = now;  // refresh on duplicate: the tree is still being replayed
  return inserted;
}

void StateStore::sweep_dedup(double horizon) {
  dedup_.erase_if(
      [horizon](std::uint64_t /*path*/, double t) { return t < horizon; });
}

Snapshot StateStore::snapshot() const {
  Snapshot snap;
  snap.entries.reserve(size_);
  for_each([&snap](const topo::Value& k, const topo::Value& v) {
    snap.entries.emplace_back(k, v);
  });
  snap.dedup.reserve(dedup_.size());
  dedup_.for_each([&snap](std::uint64_t path, double t) {
    snap.dedup.emplace_back(path, t);
  });
  snap.bytes = bytes_ + kDedupEntryBytes * snap.dedup.size() + 32;
  return snap;
}

void StateStore::restore(const Snapshot& snap) {
  clear();
  for (const auto& [k, v] : snap.entries) put(k, v);
  for (const auto& [path, t] : snap.dedup) dedup_[path] = t;
}

void StateStore::clear() {
  slots_.clear();
  size_ = 0;
  bytes_ = 0;
  dedup_.clear();
}

}  // namespace tstorm::state
