#include "state/durable_store.h"

#include <utility>

namespace tstorm::state {

void DurableStore::put_pending(int task, std::uint64_t ckpt, Snapshot snap) {
  PerTask& t = tasks_[task];
  t.pending_id = ckpt;
  t.pending = std::move(snap);
  ++writes_;
}

void DurableStore::mark_completed(std::uint64_t ckpt) {
  ++completed_;
  for (auto& [task, t] : tasks_) {
    if (t.pending_id == ckpt) {
      t.completed_id = ckpt;
      t.completed = std::move(t.pending);
      t.pending_id = 0;
      t.pending = Snapshot{};
    }
  }
}

const Snapshot* DurableStore::completed(int task,
                                        std::uint64_t* ckpt_out) const {
  const auto it = tasks_.find(task);
  if (it == tasks_.end() || it->second.completed_id == 0) return nullptr;
  if (ckpt_out != nullptr) *ckpt_out = it->second.completed_id;
  return &it->second.completed;
}

std::uint64_t DurableStore::completed_bytes() const {
  std::uint64_t b = 0;
  for (const auto& [task, t] : tasks_) {
    if (t.completed_id != 0) b += t.completed.bytes;
  }
  return b;
}

}  // namespace tstorm::state
