// Simulated durable checkpoint storage (the HDFS/S3 stand-in). Snapshot
// writes arrive through the network model (the cluster gives the storage
// service its own pseudo-node, so checkpoint traffic shares links, can be
// partitioned away, and pays configurable write latency); this class is
// only the landing zone: per-task pending snapshots that a completed
// checkpoint round promotes to restorable.
//
// Two-phase visibility is the torn-snapshot guard: a snapshot written for
// a round that never completes (a crash mid-checkpoint, a lost barrier,
// a dropped write) stays pending forever and is overwritten by the next
// round — restore only ever reads the last *completed* checkpoint.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "state/state_store.h"

namespace tstorm::state {

class DurableStore {
 public:
  /// Lands a snapshot written by `task` for checkpoint round `ckpt`.
  /// Replaces any previous pending snapshot of the task (only the newest
  /// round can still complete).
  void put_pending(int task, std::uint64_t ckpt, Snapshot snap);

  /// Marks round `ckpt` completed: every pending snapshot written for it
  /// becomes the task's restorable checkpoint.
  void mark_completed(std::uint64_t ckpt);

  /// The task's last completed snapshot, or nullptr when it never
  /// completed a checkpoint. `ckpt_out` (optional) receives the round id.
  [[nodiscard]] const Snapshot* completed(int task,
                                          std::uint64_t* ckpt_out =
                                              nullptr) const;

  [[nodiscard]] std::uint64_t writes_landed() const { return writes_; }
  [[nodiscard]] std::uint64_t rounds_completed() const { return completed_; }
  /// Bytes across all currently retained completed snapshots.
  [[nodiscard]] std::uint64_t completed_bytes() const;

 private:
  struct PerTask {
    std::uint64_t pending_id = 0;  // 0 = none
    Snapshot pending;
    std::uint64_t completed_id = 0;  // 0 = none
    Snapshot completed;
  };

  std::unordered_map<int, PerTask> tasks_;
  std::uint64_t writes_ = 0;
  std::uint64_t completed_ = 0;
};

}  // namespace tstorm::state
