// Keyed operator state. A StateStore is the task-local map a StatefulBolt
// mutates from execute(): topo::Value keys to topo::Value values in an
// open-addressing table whose capacity plateaus at the key-space
// high-water mark, so steady-state updates perform no heap allocation
// (the same guarantee sim::FlatMap gives the runtime's bookkeeping —
// FlatMap itself needs trivially-copyable keys, which Value is not, so
// the keyed table reimplements its probing with stored hashes).
//
// The store also owns the runtime-facing half of exactly-once state:
//   * a dedup set of applied update paths (deterministic lineage ids of
//     tuple-tree branches) that suppresses re-application of replayed
//     updates, swept by age at checkpoint time;
//   * value-semantic Snapshots taken at barrier alignment, written to the
//     simulated durable store, and restored into a fresh executor after
//     reassignment. State and dedup set snapshot/restore atomically, so
//     "update applied" and "update remembered as applied" can never be
//     split by a crash.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/flat_map.h"
#include "topo/tuple.h"

namespace tstorm::state {

/// splitmix64 finalizer: the path/id mixer. Deterministic, well-mixed,
/// cheap enough for the per-emission routing path.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Lineage path of a spout root emission: stable across replay attempts
/// because it derives from the tree uid (the attempt-0 root id), never
/// from the per-attempt root id. Never returns 0 (the dedup sentinel).
[[nodiscard]] constexpr std::uint64_t root_path(std::uint64_t uid) noexcept {
  const std::uint64_t p = mix64(uid);
  return p != 0 ? p : 1;
}

/// Lineage path of the `ordinal`-th emission while processing an input
/// envelope with path `parent`. Bolt logic is deterministic given its
/// state keys, so attempt N and attempt N+1 of the same tree assign the
/// same paths to the same logical updates — the dedup invariant.
[[nodiscard]] constexpr std::uint64_t child_path(
    std::uint64_t parent, std::uint64_t ordinal) noexcept {
  const std::uint64_t p = mix64(parent ^ (ordinal + 0x517cc1b727220a95ULL));
  return p != 0 ? p : 1;
}

/// Value-semantic copy of a store: keyed entries + dedup set + serialized
/// size. Built once per checkpoint (allocation at checkpoint rate, not
/// tuple rate); shipped through the network model to the durable store.
struct Snapshot {
  std::vector<std::pair<topo::Value, topo::Value>> entries;
  std::vector<std::pair<std::uint64_t, double>> dedup;
  /// Approximate serialized size (drives write transmission time).
  std::uint64_t bytes = 0;
};

class StateStore {
 public:
  StateStore() = default;
  StateStore(const StateStore&) = delete;
  StateStore& operator=(const StateStore&) = delete;

  /// --- Keyed API (StatefulBolt-facing). ---
  [[nodiscard]] const topo::Value* get(const topo::Value& key) const;
  void put(const topo::Value& key, topo::Value value);
  /// Adds `by` to an integer-valued key (insert-at-zero when absent) and
  /// returns the new total. The workhorse of every counting bolt.
  std::int64_t increment(const topo::Value& key, std::int64_t by = 1);
  /// Invokes fn(const Value& key, const Value& value) per entry, in
  /// unspecified order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.hash != 0) fn(s.key, s.value);
    }
  }
  [[nodiscard]] std::size_t size() const { return size_; }
  /// Approximate serialized size of the keyed entries, maintained
  /// incrementally (no walk at checkpoint time).
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }

  /// --- Replay mode (runtime-facing). ---
  /// While set, mutations are suppressed — put() drops its value and
  /// increment() returns the stored total unchanged (the suppressed
  /// update is already in it) — while reads see post-application state.
  /// The hosting executor wraps re-execution of a dedup-suppressed
  /// duplicate in this mode, so the bolt re-emits its children without
  /// re-applying its state effects.
  void set_replay(bool on) { replay_ = on; }
  [[nodiscard]] bool in_replay() const { return replay_; }

  /// --- Exactly-once dedup (runtime-facing). ---
  /// Records that the update with lineage id `path` was applied at `now`.
  /// Returns false — and refreshes the timestamp — when the path was
  /// already applied (a replayed duplicate to suppress). Refreshing keeps
  /// an entry alive as long as attempts of its tree keep arriving, so the
  /// age sweep can never forget a path that might still be replayed.
  bool dedup_insert(std::uint64_t path, double now);
  /// Drops dedup entries last touched before `horizon`.
  void sweep_dedup(double horizon);
  [[nodiscard]] std::size_t dedup_size() const { return dedup_.size(); }

  /// --- Checkpoint / restore. ---
  [[nodiscard]] Snapshot snapshot() const;
  /// Replaces the full contents (keyed entries and dedup set) with the
  /// snapshot's. The pre-restore contents are discarded.
  void restore(const Snapshot& snap);
  void clear();

 private:
  struct Slot {
    std::uint64_t hash = 0;  // 0 = empty (hash_value output 0 maps to 1)
    topo::Value key;
    topo::Value value;
  };

  [[nodiscard]] static std::uint64_t slot_hash(const topo::Value& key);
  /// Index of the key's slot, or of the empty slot where it would insert.
  [[nodiscard]] std::size_t probe(const topo::Value& key,
                                  std::uint64_t h) const;
  topo::Value& slot_for(const topo::Value& key);
  void grow();

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::uint64_t bytes_ = 0;
  bool replay_ = false;
  /// Applied-update paths -> last-touched time. Paths are never 0.
  sim::FlatMap<std::uint64_t, double, 0> dedup_;
};

}  // namespace tstorm::state
