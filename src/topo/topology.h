// Topology: the validated, immutable description of a Storm application —
// components, parallelism, groupings, and the user-requested worker count.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "topo/component.h"

namespace tstorm::topo {

enum class GroupingType { kShuffle, kFields, kAll, kGlobal, kDirect };

const char* to_string(GroupingType g);

enum class ComponentKind { kSpout, kBolt, kAcker };

/// Name of the built-in acker component added to every topology.
inline constexpr const char* kAckerComponent = "__acker";

/// A bolt's subscription to an upstream component's output stream.
struct StreamSubscription {
  std::string source;
  GroupingType grouping = GroupingType::kShuffle;
  /// Fields grouping only: the partitioning field of the source's output.
  std::string field_name;
  /// Index into the source's output_fields; resolved during build().
  int field_index = -1;
};

struct ComponentDef {
  std::string name;
  ComponentKind kind = ComponentKind::kBolt;
  int parallelism = 1;
  std::vector<std::string> output_fields;
  std::vector<StreamSubscription> inputs;  // bolts only

  std::function<std::unique_ptr<Spout>()> spout_factory;
  std::function<std::unique_ptr<Bolt>()> bolt_factory;

  /// Spouts only: rate-control sleep between next_tuple() polls, seconds.
  /// Matches the paper's Throughput Test spout (5 ms per emission).
  double emit_interval = 0.005;

  /// Spouts only: cap on unacked root tuples per spout task (Storm's
  /// max.spout.pending). 0 = unlimited.
  int max_pending = 0;

  /// Bolts only: deliver a tick to each task every tick_interval seconds
  /// (Storm's topology.tick.tuple.freq.secs). 0 disables ticks.
  double tick_interval = 0;

  /// Bolts only: the bolt keeps keyed state in a runtime-managed
  /// state::StateStore (must implement StatefulBolt). Stateful tasks are
  /// checkpointed at barriers and rehydrated after reassignment when
  /// StateConfig::enabled is on.
  bool stateful = false;
};

/// Thrown by TopologyBuilder::build() on an invalid topology.
class TopologyError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Topology {
 public:
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Number of workers requested by the user (Nu in the paper). The
  /// effective count is decided by the scheduler in use.
  [[nodiscard]] int num_workers() const { return num_workers_; }

  [[nodiscard]] int num_ackers() const { return num_ackers_; }

  /// All components, including the built-in acker (last).
  [[nodiscard]] const std::vector<ComponentDef>& components() const {
    return components_;
  }

  [[nodiscard]] const ComponentDef& component(const std::string& name) const;
  [[nodiscard]] const ComponentDef* find(const std::string& name) const;

  /// Total executors across components (one task per executor).
  [[nodiscard]] int total_executors() const;

  /// Names of components subscribing to `source`, with the grouping used.
  struct Consumer {
    const ComponentDef* component;
    StreamSubscription subscription;
  };
  [[nodiscard]] std::vector<Consumer> consumers_of(
      const std::string& source) const;

 private:
  friend class TopologyBuilder;
  Topology() = default;

  std::string name_;
  int num_workers_ = 1;
  int num_ackers_ = 1;
  std::vector<ComponentDef> components_;
};

}  // namespace tstorm::topo
