#include "topo/tuple.h"

#include <algorithm>
#include <bit>
#include <new>
#include <vector>

namespace tstorm::topo {
namespace detail {
namespace {

// ------------------------------------------------------------- byte pool
// Power-of-two size classes 32 B .. 64 KiB. A freed buffer stores the next
// freelist pointer in its own first 8 bytes; the static class heads keep
// every parked buffer reachable for leak checkers. Buffers above the top
// class use plain operator new/delete (outside the pooled regime — large
// one-off payloads, not the steady-state tuple flow).
constexpr std::size_t kMinClassShift = 5;   // 32 B
constexpr std::size_t kMaxClassShift = 16;  // 64 KiB
constexpr std::size_t kNumClasses = kMaxClassShift - kMinClassShift + 1;

struct FreeNode {
  FreeNode* next;
};

FreeNode* g_free[kNumClasses] = {};

std::size_t class_for(std::size_t n) {
  const auto needed = std::max<std::size_t>(n, std::size_t{1}
                                                   << kMinClassShift);
  const auto shift = std::bit_width(needed - 1);
  return static_cast<std::size_t>(shift) - kMinClassShift;
}

// ------------------------------------------------------------ tuple slabs
// Blocks are carved 64 at a time; slab pointers are retained in a static
// vector so blocks stay reachable. Blocks are never destroyed — recycling
// move-assigns an empty Tuple (returning its buffers to the byte pool) and
// parks the block on the freelist.
constexpr std::size_t kBlocksPerSlab = 64;

}  // namespace

TuplePoolStats& tuple_pool_stats() {
  static TuplePoolStats stats;
  return stats;
}

void* byte_pool_alloc(std::size_t n, std::uint32_t& cap) {
  if (n > (std::size_t{1} << kMaxClassShift)) {
    cap = static_cast<std::uint32_t>(n);
    return ::operator new(n);
  }
  const std::size_t cls = class_for(n);
  cap = static_cast<std::uint32_t>(std::size_t{1}
                                   << (cls + kMinClassShift));
  TuplePoolStats& stats = tuple_pool_stats();
  ++stats.string_buffers;
  if (FreeNode* node = g_free[cls]; node != nullptr) {
    g_free[cls] = node->next;
    return node;
  }
  ++stats.string_carved;
  return ::operator new(cap);
}

void byte_pool_free(void* p, std::uint32_t cap) noexcept {
  if (cap > (std::uint32_t{1} << kMaxClassShift)) {
    ::operator delete(p);
    return;
  }
  const std::size_t cls = class_for(cap);
  auto* node = static_cast<FreeNode*>(p);
  node->next = g_free[cls];
  g_free[cls] = node;
  --tuple_pool_stats().string_buffers;
}

}  // namespace detail

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a(const void* data, std::size_t len,
                    std::uint64_t h = kFnvOffset) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

std::uint64_t hash_value(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kString: {
      const std::string_view s = v.as_string();
      return fnv1a(s.data(), s.size());
    }
    case Value::Kind::kDouble: {
      const auto bits = std::bit_cast<std::uint64_t>(v.as_double());
      return fnv1a(&bits, sizeof(bits));
    }
    case Value::Kind::kInt: {
      const std::int64_t x = v.as_int();
      return fnv1a(&x, sizeof(x));
    }
  }
  return kFnvOffset;  // unreachable
}

std::uint64_t value_bytes(const Value& v) {
  return v.kind() == Value::Kind::kString
             ? v.as_string().size() + 4  // length-prefixed string
             : 8;
}

bool operator==(const Value& a, const Value& b) {
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case Value::Kind::kInt:
      return a.as_int() == b.as_int();
    case Value::Kind::kDouble:
      return a.as_double() == b.as_double();
    case Value::Kind::kString:
      return a.as_string() == b.as_string();
  }
  return false;  // unreachable
}

// ------------------------------------------------------------------ Tuple

void Tuple::reserve(std::size_t n) {
  if (n <= cap_) return;
  std::uint32_t new_bytes = 0;
  auto* wider = static_cast<Value*>(
      detail::byte_pool_alloc(n * sizeof(Value), new_bytes));
  Value* old = slots();
  for (std::uint32_t i = 0; i < size_; ++i) {
    ::new (wider + i) Value(std::move(old[i]));
    old[i].~Value();
  }
  if (spill_ != nullptr) detail::byte_pool_free(spill_, spill_bytes_);
  spill_ = wider;
  spill_bytes_ = new_bytes;
  cap_ = new_bytes / sizeof(Value);
}

void Tuple::append(Value&& v) {
  if (size_ == cap_) reserve(static_cast<std::size_t>(cap_) * 2);
  bytes_ += value_bytes(v);
  if (spill_ != nullptr) {
    ::new (spill_ + size_) Value(std::move(v));
  } else {
    inline_[size_] = std::move(v);
  }
  ++size_;
}

void Tuple::destroy() noexcept {
  if (spill_ != nullptr) {
    for (std::uint32_t i = 0; i < size_; ++i) spill_[i].~Value();
    detail::byte_pool_free(spill_, spill_bytes_);
    spill_ = nullptr;
  } else {
    // Inline values release their pooled strings on assignment/dtor.
    for (std::uint32_t i = 0; i < size_; ++i) inline_[i] = Value();
  }
  size_ = 0;
  cap_ = kInlineValues;
  spill_bytes_ = 0;
  bytes_ = 8;
  hash_field_ = -1;
}

void Tuple::copy_from(const Tuple& o) {
  if (o.size_ > kInlineValues) reserve(o.size_);
  const Value* src = o.slots();
  Value* dst = slots();
  for (std::uint32_t i = 0; i < o.size_; ++i) {
    if (spill_ != nullptr) {
      ::new (dst + i) Value(src[i]);
    } else {
      dst[i] = src[i];
    }
  }
  size_ = o.size_;
  bytes_ = o.bytes_;
  hash_field_ = o.hash_field_;
  hash_cache_ = o.hash_cache_;
}

void Tuple::steal_from(Tuple& o) noexcept {
  if (o.spill_ != nullptr) {
    spill_ = o.spill_;
    spill_bytes_ = o.spill_bytes_;
    cap_ = o.cap_;
    o.spill_ = nullptr;
  } else {
    for (std::uint32_t i = 0; i < o.size_; ++i) {
      inline_[i] = std::move(o.inline_[i]);
    }
  }
  size_ = o.size_;
  bytes_ = o.bytes_;
  hash_field_ = o.hash_field_;
  hash_cache_ = o.hash_cache_;
  o.size_ = 0;
  o.cap_ = kInlineValues;
  o.spill_bytes_ = 0;
  o.bytes_ = 8;
  o.hash_field_ = -1;
}

// --------------------------------------------------------------- TupleRef

namespace {

std::vector<void*>& block_slabs() {
  static std::vector<void*> slabs;
  return slabs;
}

}  // namespace

TupleRef::Block*& TupleRef::free_head() noexcept {
  static Block* head = nullptr;
  return head;
}

TupleRef TupleRef::make(Tuple&& t) {
  detail::TuplePoolStats& stats = detail::tuple_pool_stats();
  Block*& g_block_free = free_head();
  Block* b = g_block_free;
  if (b != nullptr) {
    g_block_free = b->next_free;
    ++stats.block_reuses;
  } else {
    auto* slab = static_cast<Block*>(
        ::operator new(detail::kBlocksPerSlab * sizeof(Block)));
    block_slabs().push_back(slab);
    stats.blocks_carved += detail::kBlocksPerSlab;
    for (std::size_t i = 0; i < detail::kBlocksPerSlab; ++i) {
      Block* fresh = ::new (slab + i) Block;
      fresh->next_free = g_block_free;
      g_block_free = fresh;
    }
    b = g_block_free;
    g_block_free = b->next_free;
  }
  b->refs = 1;
  b->next_free = nullptr;
  b->tuple = std::move(t);
  ++stats.live_blocks;
  return TupleRef(b);
}

void TupleRef::release() noexcept {
  if (b_ == nullptr) return;
  if (--b_->refs == 0) {
    // Recycle: return the tuple's pooled buffers, park the block.
    Block*& head = free_head();
    b_->tuple = Tuple();
    b_->next_free = head;
    head = b_;
    --detail::tuple_pool_stats().live_blocks;
  }
}

}  // namespace tstorm::topo
