#include "topo/tuple.h"

#include <bit>
#include <cstring>

namespace tstorm::topo {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a(const void* data, std::size_t len,
                    std::uint64_t h = kFnvOffset) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

std::uint64_t hash_value(const Value& v) {
  return std::visit(
      [](const auto& x) -> std::uint64_t {
        using T = std::decay_t<decltype(x)>;
        if constexpr (std::is_same_v<T, std::string>) {
          return fnv1a(x.data(), x.size());
        } else if constexpr (std::is_same_v<T, double>) {
          const auto bits = std::bit_cast<std::uint64_t>(x);
          return fnv1a(&bits, sizeof(bits));
        } else {
          return fnv1a(&x, sizeof(x));
        }
      },
      v);
}

std::uint64_t value_bytes(const Value& v) {
  return std::visit(
      [](const auto& x) -> std::uint64_t {
        using T = std::decay_t<decltype(x)>;
        if constexpr (std::is_same_v<T, std::string>) {
          return x.size() + 4;  // length-prefixed string
        } else {
          return 8;
        }
      },
      v);
}

std::uint64_t Tuple::bytes() const {
  std::uint64_t total = 8;  // tuple framing
  for (const auto& v : values_) total += value_bytes(v);
  return total;
}

}  // namespace tstorm::topo
