#include "topo/builder.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace tstorm::topo {

SpoutDecl& SpoutDecl::output_fields(std::vector<std::string> fields) {
  def_.output_fields = std::move(fields);
  return *this;
}

SpoutDecl& SpoutDecl::emit_interval(double seconds) {
  if (seconds < 0) throw TopologyError("emit_interval must be >= 0");
  def_.emit_interval = seconds;
  return *this;
}

SpoutDecl& SpoutDecl::max_pending(int n) {
  if (n < 0) throw TopologyError("max_pending must be >= 0");
  def_.max_pending = n;
  return *this;
}

BoltDecl& BoltDecl::output_fields(std::vector<std::string> fields) {
  def_.output_fields = std::move(fields);
  return *this;
}

BoltDecl& BoltDecl::shuffle_grouping(const std::string& source) {
  def_.inputs.push_back({source, GroupingType::kShuffle, {}, -1});
  return *this;
}

BoltDecl& BoltDecl::fields_grouping(const std::string& source,
                                    const std::string& field) {
  // The field index is resolved against the source during build().
  def_.inputs.push_back({source, GroupingType::kFields, field, -1});
  return *this;
}

BoltDecl& BoltDecl::all_grouping(const std::string& source) {
  def_.inputs.push_back({source, GroupingType::kAll, {}, -1});
  return *this;
}

BoltDecl& BoltDecl::global_grouping(const std::string& source) {
  def_.inputs.push_back({source, GroupingType::kGlobal, {}, -1});
  return *this;
}

BoltDecl& BoltDecl::direct_grouping(const std::string& source) {
  def_.inputs.push_back({source, GroupingType::kDirect, {}, -1});
  return *this;
}

BoltDecl& BoltDecl::tick_interval(double seconds) {
  if (seconds < 0) throw TopologyError("tick_interval must be >= 0");
  def_.tick_interval = seconds;
  return *this;
}

BoltDecl& BoltDecl::stateful(bool on) {
  def_.stateful = on;
  return *this;
}

SpoutDecl TopologyBuilder::set_spout(
    const std::string& name, std::function<std::unique_ptr<Spout>()> factory,
    int parallelism) {
  ComponentDef def;
  def.name = name;
  def.kind = ComponentKind::kSpout;
  def.parallelism = parallelism;
  def.spout_factory = std::move(factory);
  components_.push_back(std::move(def));
  return SpoutDecl(components_.back());
}

BoltDecl TopologyBuilder::set_bolt(
    const std::string& name, std::function<std::unique_ptr<Bolt>()> factory,
    int parallelism) {
  ComponentDef def;
  def.name = name;
  def.kind = ComponentKind::kBolt;
  def.parallelism = parallelism;
  def.bolt_factory = std::move(factory);
  components_.push_back(std::move(def));
  return BoltDecl(components_.back());
}

Topology TopologyBuilder::build(const std::string& name, int num_workers,
                                int num_ackers) const {
  if (num_workers < 1) throw TopologyError("num_workers must be >= 1");
  if (num_ackers < 0) throw TopologyError("num_ackers must be >= 0");

  Topology t;
  t.name_ = name;
  t.num_workers_ = num_workers;
  t.num_ackers_ = num_ackers;
  t.components_ = components_;

  // Resolve fields-grouping field names to indices against each source's
  // declared output fields.
  std::unordered_map<std::string, const ComponentDef*> sources;
  for (const auto& c : t.components_) sources.emplace(c.name, &c);
  for (auto& c : t.components_) {
    for (auto& sub : c.inputs) {
      if (sub.grouping != GroupingType::kFields) continue;
      auto it = sources.find(sub.source);
      if (it == sources.end()) continue;  // validate() reports this
      const auto& fields = it->second->output_fields;
      const auto pos = std::find(fields.begin(), fields.end(), sub.field_name);
      sub.field_index =
          pos == fields.end() ? -1 : static_cast<int>(pos - fields.begin());
    }
  }

  if (num_ackers > 0) {
    ComponentDef acker;
    acker.name = kAckerComponent;
    acker.kind = ComponentKind::kAcker;
    acker.parallelism = num_ackers;
    t.components_.push_back(std::move(acker));
  }

  validate(t);
  return t;
}

void TopologyBuilder::validate(const Topology& t) const {
  std::unordered_map<std::string, const ComponentDef*> by_name;
  bool has_spout = false;
  for (const auto& c : t.components()) {
    if (c.name.empty()) throw TopologyError("component with empty name");
    if (!by_name.emplace(c.name, &c).second) {
      throw TopologyError("duplicate component: " + c.name);
    }
    if (c.parallelism < 1) {
      throw TopologyError("parallelism must be >= 1 for " + c.name);
    }
    switch (c.kind) {
      case ComponentKind::kSpout:
        has_spout = true;
        if (!c.spout_factory) {
          throw TopologyError("spout " + c.name + " has no factory");
        }
        if (!c.inputs.empty()) {
          throw TopologyError("spout " + c.name + " cannot subscribe");
        }
        break;
      case ComponentKind::kBolt:
        if (!c.bolt_factory) {
          throw TopologyError("bolt " + c.name + " has no factory");
        }
        if (c.inputs.empty()) {
          throw TopologyError("bolt " + c.name + " has no inputs");
        }
        break;
      case ComponentKind::kAcker:
        break;
    }
  }
  if (!has_spout) throw TopologyError("topology has no spout");

  for (const auto& c : t.components()) {
    for (const auto& sub : c.inputs) {
      auto it = by_name.find(sub.source);
      if (it == by_name.end()) {
        throw TopologyError("bolt " + c.name + " subscribes to unknown " +
                            sub.source);
      }
      if (sub.grouping == GroupingType::kFields) {
        const auto& fields = it->second->output_fields;
        if (sub.field_index < 0 ||
            sub.field_index >= static_cast<int>(fields.size())) {
          throw TopologyError("bolt " + c.name +
                              ": fields grouping references an unknown "
                              "field of " +
                              sub.source);
        }
      }
    }
  }

  // Reject cycles: topologies are DAGs. Kahn's algorithm over data edges.
  std::unordered_map<std::string, int> indegree;
  std::unordered_map<std::string, std::vector<std::string>> out_edges;
  for (const auto& c : t.components()) indegree[c.name] = 0;
  for (const auto& c : t.components()) {
    for (const auto& sub : c.inputs) {
      out_edges[sub.source].push_back(c.name);
      ++indegree[c.name];
    }
  }
  std::vector<std::string> frontier;
  for (const auto& [n, d] : indegree) {
    if (d == 0) frontier.push_back(n);
  }
  std::size_t visited = 0;
  while (!frontier.empty()) {
    const std::string n = frontier.back();
    frontier.pop_back();
    ++visited;
    for (const auto& m : out_edges[n]) {
      if (--indegree[m] == 0) frontier.push_back(m);
    }
  }
  if (visited != t.components().size()) {
    throw TopologyError("topology contains a cycle");
  }
}

}  // namespace tstorm::topo
