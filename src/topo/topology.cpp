#include "topo/topology.h"

namespace tstorm::topo {

const char* to_string(GroupingType g) {
  switch (g) {
    case GroupingType::kShuffle:
      return "shuffle";
    case GroupingType::kFields:
      return "fields";
    case GroupingType::kAll:
      return "all";
    case GroupingType::kGlobal:
      return "global";
    case GroupingType::kDirect:
      return "direct";
  }
  return "?";
}

const ComponentDef* Topology::find(const std::string& name) const {
  for (const auto& c : components_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const ComponentDef& Topology::component(const std::string& name) const {
  const auto* c = find(name);
  if (c == nullptr) throw TopologyError("unknown component: " + name);
  return *c;
}

int Topology::total_executors() const {
  int n = 0;
  for (const auto& c : components_) n += c.parallelism;
  return n;
}

std::vector<Topology::Consumer> Topology::consumers_of(
    const std::string& source) const {
  std::vector<Consumer> out;
  for (const auto& c : components_) {
    for (const auto& sub : c.inputs) {
      if (sub.source == source) out.push_back(Consumer{&c, sub});
    }
  }
  return out;
}

}  // namespace tstorm::topo
