// TopologyBuilder: fluent construction API mirroring Storm's
// TopologyBuilder (setSpout / setBolt / *Grouping), plus validation.
//
//   TopologyBuilder b;
//   b.set_spout("reader", [] { return std::make_unique<ReaderSpout>(); }, 2)
//       .output_fields({"line"})
//       .emit_interval(0.005);
//   b.set_bolt("split", [] { return std::make_unique<SplitBolt>(); }, 5)
//       .output_fields({"word"})
//       .shuffle_grouping("reader");
//   b.set_bolt("count", [] { return std::make_unique<CountBolt>(); }, 5)
//       .fields_grouping("split", "word");
//   Topology t = b.build("word-count", /*num_workers=*/20, /*num_ackers=*/10);
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "topo/topology.h"

namespace tstorm::topo {

class TopologyBuilder;

/// Fluent handle returned by set_spout(); configures one spout.
class SpoutDecl {
 public:
  SpoutDecl& output_fields(std::vector<std::string> fields);
  /// Rate-control sleep between emissions (seconds).
  SpoutDecl& emit_interval(double seconds);
  /// Cap on unacked root tuples per task (0 = unlimited).
  SpoutDecl& max_pending(int n);

 private:
  friend class TopologyBuilder;
  explicit SpoutDecl(ComponentDef& def) : def_(def) {}
  ComponentDef& def_;
};

/// Fluent handle returned by set_bolt(); configures one bolt.
class BoltDecl {
 public:
  BoltDecl& output_fields(std::vector<std::string> fields);
  BoltDecl& shuffle_grouping(const std::string& source);
  /// `field` must be an output field declared by `source`.
  BoltDecl& fields_grouping(const std::string& source,
                            const std::string& field);
  BoltDecl& all_grouping(const std::string& source);
  BoltDecl& global_grouping(const std::string& source);
  BoltDecl& direct_grouping(const std::string& source);
  /// Periodic tick delivery (Storm tick tuples); 0 disables.
  BoltDecl& tick_interval(double seconds);
  /// Marks the bolt's keyed state as runtime-managed (StatefulBolt +
  /// state::StateStore): checkpointed at barriers, restored on
  /// reassignment when StateConfig::enabled is on.
  BoltDecl& stateful(bool on = true);

 private:
  friend class TopologyBuilder;
  explicit BoltDecl(ComponentDef& def) : def_(def) {}
  ComponentDef& def_;
};

class TopologyBuilder {
 public:
  SpoutDecl set_spout(const std::string& name,
                      std::function<std::unique_ptr<Spout>()> factory,
                      int parallelism);

  BoltDecl set_bolt(const std::string& name,
                    std::function<std::unique_ptr<Bolt>()> factory,
                    int parallelism);

  /// Validates and assembles the topology. Appends the built-in acker
  /// component (`num_ackers` tasks) that implements Storm's guaranteed
  /// message processing. Throws TopologyError on invalid input: duplicate
  /// or unknown components, bad parallelism, unknown fields-grouping field,
  /// cycles, or a bolt with no inputs.
  [[nodiscard]] Topology build(const std::string& name, int num_workers,
                               int num_ackers) const;

 private:
  void validate(const Topology& t) const;

  std::vector<ComponentDef> components_;
};

}  // namespace tstorm::topo
