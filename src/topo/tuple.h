// Tuples: the unit of data flowing through a topology. A tuple is an
// ordered list of typed values; field names come from the emitting
// component's declared output fields (as in Storm's declareOutputFields).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace tstorm::topo {

using Value = std::variant<std::int64_t, double, std::string>;

/// Stable 64-bit hash of a value; drives fields grouping. Deterministic
/// across platforms (FNV-1a on the canonical byte representation).
std::uint64_t hash_value(const Value& v);

/// Approximate serialized size of a value in bytes.
std::uint64_t value_bytes(const Value& v);

class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] const Value& at(std::size_t i) const { return values_.at(i); }
  [[nodiscard]] const std::vector<Value>& values() const { return values_; }

  [[nodiscard]] std::int64_t get_int(std::size_t i) const {
    return std::get<std::int64_t>(values_.at(i));
  }
  [[nodiscard]] double get_double(std::size_t i) const {
    return std::get<double>(values_.at(i));
  }
  [[nodiscard]] const std::string& get_string(std::size_t i) const {
    return std::get<std::string>(values_.at(i));
  }

  /// Approximate wire size, used by the network model.
  [[nodiscard]] std::uint64_t bytes() const;

 private:
  std::vector<Value> values_;
};

}  // namespace tstorm::topo
