// Tuples: the unit of data flowing through a topology. A tuple is an
// ordered list of typed values; field names come from the emitting
// component's declared output fields (as in Storm's declareOutputFields).
//
// The whole tuple path is allocation-free in steady state (the same
// guarantee sim::InlineFn gives event closures):
//
//   Value    — 32-byte tagged union. Strings up to kInlineChars live
//              inline; longer payloads borrow a buffer from a size-class
//              freelist pool (returned on destruction, never freed).
//   Tuple    — up to kInlineValues values inline, wider tuples spill into
//              a pooled array. Wire size is computed once at construction
//              and the fields-grouping hash is memoized per field.
//   TupleRef — intrusive non-atomic refcount over a slab/freelist pool of
//              tuple blocks, replacing std::shared_ptr<const Tuple> (no
//              control-block allocation, no atomic traffic). The block is
//              recycled on last release.
//
// The simulator is single-threaded; the pools are process-wide statics
// (shared across Cluster instances, like the InlineFn closure pool) and
// are intentionally never torn down, so freed slots stay reachable for
// leak checkers. tuple_pool_stats().live_blocks must return to zero after
// a cluster is destroyed — the chaos soak asserts it.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <variant>  // std::bad_variant_access, thrown by typed getters

namespace tstorm::topo {

namespace detail {

/// Borrow/return byte buffers from power-of-two size-class freelists
/// (32 B .. 64 KiB). Larger requests fall through to operator new and are
/// the caller's signal that it left the pooled regime. `cap` receives the
/// usable capacity and must be passed back verbatim to free.
[[nodiscard]] void* byte_pool_alloc(std::size_t n, std::uint32_t& cap);
void byte_pool_free(void* p, std::uint32_t cap) noexcept;

struct TuplePoolStats {
  std::uint64_t blocks_carved = 0;    // tuple blocks ever carved from slabs
  std::uint64_t block_reuses = 0;     // make() calls served from the freelist
  std::uint64_t live_blocks = 0;      // blocks currently owned by TupleRefs
  std::uint64_t string_buffers = 0;   // byte-pool buffers currently lent out
  std::uint64_t string_carved = 0;    // byte-pool buffers ever created
};
TuplePoolStats& tuple_pool_stats();

}  // namespace detail

/// One typed value. 32 bytes; short strings never touch the heap.
class Value {
 public:
  enum class Kind : std::uint8_t { kInt, kDouble, kString };
  static constexpr std::size_t kInlineChars = 22;

  Value() noexcept { u_.i = 0; }
  Value(std::int64_t v) noexcept : tag_(Kind::kInt) { u_.i = v; }
  Value(int v) noexcept : Value(static_cast<std::int64_t>(v)) {}
  Value(double v) noexcept : tag_(Kind::kDouble) { u_.d = v; }
  Value(std::string_view s) : tag_(Kind::kString) { set_string(s); }
  Value(const std::string& s) : Value(std::string_view(s)) {}
  Value(const char* s) : Value(std::string_view(s)) {}

  Value(const Value& o) { copy_from(o); }
  Value(Value&& o) noexcept { steal_from(o); }
  Value& operator=(const Value& o) {
    if (this != &o) {
      release();
      copy_from(o);
    }
    return *this;
  }
  Value& operator=(Value&& o) noexcept {
    if (this != &o) {
      release();
      steal_from(o);
    }
    return *this;
  }
  ~Value() { release(); }

  [[nodiscard]] Kind kind() const noexcept { return tag_; }

  /// Unchecked typed reads (the Tuple getters enforce the tag).
  [[nodiscard]] std::int64_t as_int() const noexcept {
    assert(tag_ == Kind::kInt);
    return u_.i;
  }
  [[nodiscard]] double as_double() const noexcept {
    assert(tag_ == Kind::kDouble);
    return u_.d;
  }
  [[nodiscard]] std::string_view as_string() const noexcept {
    assert(tag_ == Kind::kString);
    return slen_ <= kInlineChars ? std::string_view(u_.inl, slen_)
                                 : std::string_view(u_.heap.ptr, slen_);
  }

 private:
  void set_string(std::string_view s) {
    slen_ = static_cast<std::uint32_t>(s.size());
    if (s.size() <= kInlineChars) {
      std::memcpy(u_.inl, s.data(), s.size());
    } else {
      u_.heap.ptr =
          static_cast<char*>(detail::byte_pool_alloc(s.size(), u_.heap.cap));
      std::memcpy(u_.heap.ptr, s.data(), s.size());
    }
  }
  void release() noexcept {
    if (tag_ == Kind::kString && slen_ > kInlineChars) {
      detail::byte_pool_free(u_.heap.ptr, u_.heap.cap);
    }
  }
  void copy_from(const Value& o) {
    tag_ = o.tag_;
    slen_ = o.slen_;
    if (tag_ == Kind::kString && slen_ > kInlineChars) {
      u_.heap.ptr =
          static_cast<char*>(detail::byte_pool_alloc(slen_, u_.heap.cap));
      std::memcpy(u_.heap.ptr, o.u_.heap.ptr, slen_);
    } else {
      u_ = o.u_;
    }
  }
  void steal_from(Value& o) noexcept {
    tag_ = o.tag_;
    slen_ = o.slen_;
    u_ = o.u_;
    o.tag_ = Kind::kInt;  // source no longer owns the pooled buffer
    o.u_.i = 0;
    o.slen_ = 0;
  }

  union Storage {
    std::int64_t i;
    double d;
    char inl[kInlineChars];
    struct {
      char* ptr;
      std::uint32_t cap;  // byte-pool capacity, echoed back on free
    } heap;
  } u_;
  Kind tag_ = Kind::kInt;
  std::uint32_t slen_ = 0;  // string length (both inline and pooled)
};
static_assert(sizeof(Value) == 32, "Value is sized for 4-per-cacheline-pair");

/// Stable 64-bit hash of a value; drives fields grouping. Deterministic
/// across platforms (FNV-1a on the canonical byte representation).
std::uint64_t hash_value(const Value& v);

/// Deep equality: same kind and same payload (strings compare by bytes
/// regardless of inline/pooled storage). Drives keyed-state lookups.
[[nodiscard]] bool operator==(const Value& a, const Value& b);
[[nodiscard]] inline bool operator!=(const Value& a, const Value& b) {
  return !(a == b);
}

/// Approximate serialized size of a value in bytes.
std::uint64_t value_bytes(const Value& v);

class Tuple {
 public:
  static constexpr std::size_t kInlineValues = 4;

  Tuple() noexcept = default;

  template <typename... Args,
            typename = std::enable_if_t<
                (sizeof...(Args) > 0) &&
                (std::is_constructible_v<Value, Args&&> && ...) &&
                !(sizeof...(Args) == 1 &&
                  (std::is_same_v<std::remove_cvref_t<Args>, Tuple> || ...))>>
  Tuple(Args&&... args) {
    reserve(sizeof...(Args));
    (append(Value(std::forward<Args>(args))), ...);
  }

  Tuple(const Tuple& o) { copy_from(o); }
  Tuple(Tuple&& o) noexcept { steal_from(o); }
  Tuple& operator=(const Tuple& o) {
    if (this != &o) {
      destroy();
      copy_from(o);
    }
    return *this;
  }
  Tuple& operator=(Tuple&& o) noexcept {
    if (this != &o) {
      destroy();
      steal_from(o);
    }
    return *this;
  }
  ~Tuple() { destroy(); }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Unchecked in release builds (debug asserts), per the engine's
  /// debug-assert/release-clamp convention — emitters index fields they
  /// declared, so the bound holds by construction.
  [[nodiscard]] const Value& at(std::size_t i) const noexcept {
    assert(i < size_);
    return slots()[i];
  }

  [[nodiscard]] std::int64_t get_int(std::size_t i) const {
    return checked(i, Value::Kind::kInt).as_int();
  }
  [[nodiscard]] double get_double(std::size_t i) const {
    return checked(i, Value::Kind::kDouble).as_double();
  }
  [[nodiscard]] std::string_view get_string(std::size_t i) const {
    return checked(i, Value::Kind::kString).as_string();
  }

  /// Approximate wire size, used by the network model. Computed once at
  /// construction — Envelope::bytes() runs per send and per network hop.
  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }

  /// hash_value(at(i)), memoized: fields grouping hashes the same declared
  /// field on every hop that routes this tuple.
  [[nodiscard]] std::uint64_t field_hash(std::size_t i) const {
    if (hash_field_ != static_cast<std::int32_t>(i)) {
      hash_cache_ = hash_value(at(i));
      hash_field_ = static_cast<std::int32_t>(i);
    }
    return hash_cache_;
  }

 private:
  [[nodiscard]] const Value* slots() const noexcept {
    return spill_ != nullptr ? spill_ : inline_;
  }
  [[nodiscard]] Value* slots() noexcept {
    return spill_ != nullptr ? spill_ : inline_;
  }
  [[nodiscard]] const Value& checked(std::size_t i, Value::Kind k) const {
    const Value& v = at(i);
    if (v.kind() != k) throw std::bad_variant_access{};
    return v;
  }

  void reserve(std::size_t n);
  void append(Value&& v);
  void destroy() noexcept;
  void copy_from(const Tuple& o);
  void steal_from(Tuple& o) noexcept;

  Value inline_[kInlineValues];
  Value* spill_ = nullptr;  // pooled Value array when size() > kInlineValues
  std::uint32_t size_ = 0;
  std::uint32_t cap_ = kInlineValues;
  std::uint32_t spill_bytes_ = 0;  // byte-pool capacity of spill_
  std::uint64_t bytes_ = 8;        // cached wire size (8 = tuple framing)
  mutable std::int32_t hash_field_ = -1;
  mutable std::uint64_t hash_cache_ = 0;
};

/// Intrusive refcounted handle to a pooled immutable tuple. Replaces
/// std::shared_ptr<const Tuple> on the envelope/tracker/replay path: one
/// 8-byte pointer, non-atomic count (single-threaded sim), block recycled
/// into a freelist on last release.
class TupleRef {
 public:
  TupleRef() noexcept = default;
  TupleRef(const TupleRef& o) noexcept : b_(o.b_) {
    if (b_ != nullptr) ++b_->refs;
  }
  TupleRef(TupleRef&& o) noexcept : b_(o.b_) { o.b_ = nullptr; }
  TupleRef& operator=(const TupleRef& o) noexcept {
    if (b_ != o.b_) {
      release();
      b_ = o.b_;
      if (b_ != nullptr) ++b_->refs;
    }
    return *this;
  }
  TupleRef& operator=(TupleRef&& o) noexcept {
    if (this != &o) {
      release();
      b_ = o.b_;
      o.b_ = nullptr;
    }
    return *this;
  }
  ~TupleRef() { release(); }

  /// Moves `t` into a pooled block with refcount 1.
  [[nodiscard]] static TupleRef make(Tuple&& t);

  void reset() noexcept {
    release();
    b_ = nullptr;
  }
  [[nodiscard]] explicit operator bool() const noexcept {
    return b_ != nullptr;
  }
  [[nodiscard]] const Tuple& operator*() const noexcept { return b_->tuple; }
  [[nodiscard]] const Tuple* operator->() const noexcept {
    return &b_->tuple;
  }
  [[nodiscard]] std::uint32_t use_count() const noexcept {
    return b_ != nullptr ? b_->refs : 0;
  }

 private:
  struct Block {
    std::uint32_t refs = 0;
    Block* next_free = nullptr;
    Tuple tuple;
  };

  explicit TupleRef(Block* b) noexcept : b_(b) {}
  void release() noexcept;
  // Process-wide freelist head; a static local so the chain stays reachable
  // for LeakSanitizer (same idiom as sim::InlineFn's pools).
  static Block*& free_head() noexcept;

  Block* b_ = nullptr;
};

}  // namespace tstorm::topo
