// User-facing component API, mirroring Storm's IRichSpout / IRichBolt.
//
// A Storm application ports onto this API with the same structure: spouts
// pull from external sources and emit tuples, bolts consume/emit/ack. The
// one simulator-specific addition is that components declare how much CPU
// (mega-cycles) and blocking I/O each action costs, standing in for the
// real work the JVM would perform.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "topo/tuple.h"

namespace tstorm::state {
class StateStore;
}

namespace tstorm::topo {

class StatefulBolt;

/// Provided by the runtime to a bolt during execute(). Emissions are
/// automatically anchored to the input tuple (the paper uses anchored
/// topologies throughout so completion time can be observed).
class BoltContext {
 public:
  virtual ~BoltContext() = default;

  /// Emits on the bolt's default output stream to all subscribers.
  virtual void emit(Tuple tuple) = 0;

  /// Direct grouping: emit to a specific task index of a named consumer.
  virtual void emit_direct(const std::string& consumer, int task_index,
                           Tuple tuple) = 0;

  /// Index of this task within its component, and component task count.
  [[nodiscard]] virtual int task_index() const = 0;
  [[nodiscard]] virtual int component_parallelism() const = 0;
};

/// A bolt processes one input tuple per execute() call. Instances are
/// created per task via the factory registered with the TopologyBuilder;
/// state mutated in execute() is task-local, exactly as in Storm.
class Bolt {
 public:
  virtual ~Bolt() = default;

  /// Called once when the hosting executor starts (after (re)assignment).
  virtual void prepare(int /*task_index*/, int /*parallelism*/) {}

  /// Processes a tuple; may emit any number of outputs. The runtime acks
  /// the input automatically after execute() returns (anchored semantics).
  virtual void execute(const Tuple& input, BoltContext& ctx) = 0;

  /// Simulated CPU work to process `input`, in mega-cycles (1e6 cycles).
  /// Service time on an uncontended core = cost / per_core_mhz seconds.
  [[nodiscard]] virtual double cpu_cost_mega_cycles(
      const Tuple& input) const = 0;

  /// Blocking I/O time (seconds) that occupies the executor thread but not
  /// the node's CPU (e.g. a MongoDB write).
  [[nodiscard]] virtual double io_time_seconds(const Tuple& /*input*/) const {
    return 0.0;
  }

  /// Called every tick_interval (Storm's tick tuples) when the component
  /// declares one via BoltDecl::tick_interval(). Emissions from a tick are
  /// unanchored, exactly like Storm tick-tuple-driven flushes.
  virtual void on_tick(BoltContext& /*ctx*/) {}

  /// Simulated CPU cost of one tick (mega-cycles).
  [[nodiscard]] virtual double tick_cost_mega_cycles() const { return 0.05; }

  /// Non-null when the bolt participates in managed keyed state (see
  /// StatefulBolt). The runtime uses this instead of dynamic_cast on the
  /// per-executor startup path.
  [[nodiscard]] virtual StatefulBolt* as_stateful() { return nullptr; }
};

/// A bolt whose keyed state lives in a runtime-managed state::StateStore
/// instead of private members. The hosting executor binds a store before
/// prepare(); the runtime snapshots it at checkpoint barriers and
/// rehydrates it after reassignment, so counts survive the crashes that
/// wipe ordinary member maps. Mark the component with
/// BoltDecl::stateful(true) so barriers and checkpoints reach it.
class StatefulBolt : public Bolt {
 public:
  [[nodiscard]] StatefulBolt* as_stateful() final { return this; }

  /// Called by the runtime before prepare(); the store outlives the bolt.
  void bind_state(state::StateStore* store) { store_ = store; }
  [[nodiscard]] bool has_state() const { return store_ != nullptr; }

 protected:
  /// The task-local keyed store. Only valid when has_state() — a stateful
  /// bolt constructed outside the runtime (unit tests) must bind first.
  [[nodiscard]] state::StateStore& state() const {
    assert(store_ != nullptr);
    return *store_;
  }

 private:
  state::StateStore* store_ = nullptr;
};

/// A spout produces the input stream. next_tuple() is polled by the
/// runtime; returning nullopt means "nothing available right now".
class Spout {
 public:
  virtual ~Spout() = default;

  virtual void prepare(int /*task_index*/, int /*parallelism*/) {}

  /// Returns the next tuple to emit, or nullopt if the source is
  /// momentarily empty.
  virtual std::optional<Tuple> next_tuple() = 0;

  /// Completion callbacks (informational; the runtime handles replay).
  virtual void on_ack(std::uint64_t /*root_id*/) {}
  virtual void on_fail(std::uint64_t /*root_id*/) {}

  /// Simulated CPU work per emission, in mega-cycles.
  [[nodiscard]] virtual double cpu_cost_mega_cycles() const { return 0.05; }
};

}  // namespace tstorm::topo
