#include "obs/export.h"

#include <cstdio>
#include <ostream>

namespace tstorm::obs {

namespace {

/// Scheduling/control instants live on this synthetic "process" id, well
/// away from real node ids.
constexpr int kSchedulerPid = 9999;

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

double us(sim::Time t) { return t * 1e6; }

std::string hex_id(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

void write_decision_args(std::ostream& os, const DecisionRecord& r) {
  os << "{\"seq\":" << r.seq << ",\"trigger\":\"" << to_string(r.trigger)
     << "\",\"outcome\":\"" << to_string(r.outcome) << "\",\"algorithm\":\""
     << json_escape(r.algorithm) << "\",\"executors\":" << r.executors
     << ",\"current_traffic\":" << fmt(r.current_traffic)
     << ",\"proposed_traffic\":" << fmt(r.proposed_traffic)
     << ",\"improvement\":" << fmt(r.improvement)
     << ",\"min_improvement\":" << fmt(r.min_improvement)
     << ",\"nodes_freed\":" << r.nodes_freed << ",\"traffic_win\":"
     << (r.traffic_win ? "true" : "false") << ",\"consolidation_win\":"
     << (r.consolidation_win ? "true" : "false") << ",\"count_relaxed\":"
     << (r.count_relaxed ? "true" : "false") << ",\"capacity_relaxed\":"
     << (r.capacity_relaxed ? "true" : "false") << ",\"version\":"
     << r.version << ",\"reason\":\"" << json_escape(r.reason)
     << "\",\"node_loads\":[";
  for (std::size_t i = 0; i < r.node_loads.size(); ++i) {
    const NodeLoadSample& n = r.node_loads[i];
    if (i > 0) os << ',';
    os << "{\"node\":" << n.node << ",\"load_mhz\":" << fmt(n.load_mhz)
       << ",\"capacity_mhz\":" << fmt(n.capacity_mhz) << "}";
  }
  os << "]}";
}

void write_span_event(std::ostream& os, const RootTrace& root, const Span& s,
                      bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << "{\"name\":\"" << to_string(s.kind);
  if (s.kind == SpanKind::kNetworkHop) os << " t" << s.src << "->t" << s.task;
  os << "\",\"cat\":\"tuple\",\"ph\":\"X\",\"ts\":" << fmt(us(s.t0))
     << ",\"dur\":" << fmt(us(s.t1 - s.t0)) << ",\"pid\":"
     << (s.node >= 0 ? s.node : kSchedulerPid) << ",\"tid\":"
     << (s.task >= 0 ? s.task : 0) << ",\"args\":{\"root\":\""
     << hex_id(root.root_id) << "\",\"spout\":" << root.spout
     << ",\"attempt\":" << root.attempt << "}}";
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_chrome_trace(std::ostream& os, const ProvenanceLog& provenance,
                        const TupleTraceCollector& tuples,
                        const trace::TraceLog* control) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;

  // Process metadata: name the scheduler track and each node seen.
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kSchedulerPid
     << ",\"tid\":0,\"args\":{\"name\":\"scheduler\"}}";
  first = false;

  for (const DecisionRecord& r : provenance.records()) {
    os << ",\n{\"name\":\"decision: " << to_string(r.outcome)
       << "\",\"cat\":\"schedule\",\"ph\":\"i\",\"s\":\"p\",\"ts\":"
       << fmt(us(r.time)) << ",\"pid\":" << kSchedulerPid
       << ",\"tid\":0,\"args\":";
    write_decision_args(os, r);
    os << "}";
  }

  if (control != nullptr) {
    for (const trace::Event& e : control->events()) {
      os << ",\n{\"name\":\"" << trace::to_string(e.kind)
         << "\",\"cat\":\"control\",\"ph\":\"i\",\"s\":\"p\",\"ts\":"
         << fmt(us(e.time)) << ",\"pid\":" << kSchedulerPid
         << ",\"tid\":1,\"args\":{\"topology\":" << e.topology
         << ",\"node\":" << e.node << ",\"slot\":" << e.slot
         << ",\"version\":" << e.version << ",\"detail\":\""
         << json_escape(e.detail) << "\"}}";
    }
  }

  for (const RootTrace& root : tuples.finished()) {
    for (const Span& s : root.spans) write_span_event(os, root, s, first);
  }
  os << "\n]}\n";
}

void write_jsonl(std::ostream& os, const ProvenanceLog& provenance,
                 const TupleTraceCollector& tuples) {
  for (const DecisionRecord& r : provenance.records()) {
    os << "{\"type\":\"decision\",\"time\":" << fmt(r.time) << ",\"record\":";
    write_decision_args(os, r);
    os << "}\n";
  }
  for (const RootTrace& root : tuples.finished()) {
    os << "{\"type\":\"root\",\"root\":\"" << hex_id(root.root_id)
       << "\",\"spout\":" << root.spout << ",\"attempt\":" << root.attempt
       << ",\"emit_time\":" << fmt(root.emit_time) << ",\"end_time\":"
       << fmt(root.end_time) << ",\"completed\":"
       << (root.completed ? "true" : "false") << ",\"queue_wait_s\":"
       << fmt(root.queue_wait_s) << ",\"execute_s\":" << fmt(root.execute_s)
       << ",\"network_s\":" << fmt(root.network_s) << ",\"ack_wait_s\":"
       << fmt(root.ack_wait_s) << ",\"spans\":[";
    for (std::size_t i = 0; i < root.spans.size(); ++i) {
      const Span& s = root.spans[i];
      if (i > 0) os << ',';
      os << "{\"kind\":\"" << to_string(s.kind) << "\",\"task\":" << s.task
         << ",\"src\":" << s.src << ",\"node\":" << s.node << ",\"t0\":"
         << fmt(s.t0) << ",\"t1\":" << fmt(s.t1) << "}";
    }
    os << "]}\n";
  }
}

}  // namespace tstorm::obs
