// Sampled per-tuple causal tracing. A fraction of root emissions (the
// sample rate) is traced end to end: the emit, every queue wait, every
// execute, every network hop of the whole tuple tree, and the final ack
// wait, with a root-level latency breakdown (where did the time go —
// queues, CPU, or the wire?). The paper's Fig. 3 argument — queueing, not
// processing, dominates latency under bad placements — becomes directly
// observable per tuple instead of inferred from averages.
//
// Determinism: the sampling decision draws from a private RNG substream
// (never the cluster's main stream), and with sample_rate == 0 the
// collector is fully inert — no draws, no state, no simulation events —
// so a run with sampling disabled is byte-identical to one without the
// collector compiled in at all.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "sched/types.h"
#include "sim/rng.h"
#include "sim/simulation.h"

namespace tstorm::obs {

/// One phase of a traced tuple tree's life.
enum class SpanKind : std::uint8_t {
  kEmit,        // root emission at the spout (instant)
  kQueueWait,   // envelope waiting in an executor's input queue
  kExecute,     // envelope in service at an executor
  kNetworkHop,  // envelope in flight between two executors
  kAckWait,     // end of the last observed phase until the ack/timeout
};

const char* to_string(SpanKind kind);

struct Span {
  SpanKind kind = SpanKind::kEmit;
  /// Executor that owned the phase (the receiver for network hops).
  sched::TaskId task = -1;
  /// Sending task for network hops, -1 otherwise.
  sched::TaskId src = -1;
  sched::NodeId node = -1;
  sim::Time t0 = 0;
  sim::Time t1 = 0;
};

/// Everything recorded about one sampled root tuple.
struct RootTrace {
  std::uint64_t root_id = 0;
  sched::TaskId spout = -1;
  int attempt = 0;
  sim::Time emit_time = 0;
  sim::Time end_time = 0;
  /// True when the root was fully acked (on time), false when it timed out.
  bool completed = false;
  std::vector<Span> spans;
  /// Root-level latency breakdown: summed span durations by phase. The
  /// tree is concurrent, so the sums can exceed end-to-end latency — they
  /// answer "where did tuple-seconds go", not "what was the critical path".
  double queue_wait_s = 0;
  double execute_s = 0;
  double network_s = 0;
  double ack_wait_s = 0;
};

struct TupleTraceConfig {
  /// Fraction of root emissions traced; 0 disables the collector entirely.
  double sample_rate = 0.0;
  /// Finished root traces retained (ring buffer).
  std::size_t capacity = 2048;
  /// Span cap per root: a runaway tree stops accumulating spans (the root
  /// record still finishes; truncation is counted).
  std::size_t max_spans_per_root = 512;
};

/// Collects spans for sampled roots. Not thread-safe (single-threaded
/// simulation). All hooks are no-ops unless the root was sampled at
/// emission, so the hot path pays one `enabled()` branch when disabled
/// and one hash lookup per envelope event when enabled.
class TupleTraceCollector {
 public:
  TupleTraceCollector(TupleTraceConfig config, std::uint64_t seed);

  [[nodiscard]] bool enabled() const { return config_.sample_rate > 0.0; }
  [[nodiscard]] const TupleTraceConfig& config() const { return config_; }

  /// Draws the sampling decision for one root emission from the private
  /// substream. Only call when enabled() — callers guard so that a
  /// disabled collector consumes no randomness at all.
  [[nodiscard]] bool should_sample();

  /// Starts tracing a root. Idempotent per root id.
  void begin_root(std::uint64_t root_id, sched::TaskId spout, int attempt,
                  sim::Time now);

  /// True while the root is actively traced (begun, not yet finished).
  [[nodiscard]] bool sampled(std::uint64_t root_id) const {
    return active_.contains(root_id);
  }

  /// Appends one span to an active root (no-op for unsampled roots).
  void add_span(std::uint64_t root_id, Span span);

  /// Finalizes a root: synthesizes the ack-wait span, moves the trace to
  /// the finished ring. No-op if the root is not active (e.g. a late ack
  /// after the timeout already finished it).
  void finish_root(std::uint64_t root_id, sim::Time now, bool completed);

  [[nodiscard]] const std::deque<RootTrace>& finished() const {
    return finished_;
  }
  [[nodiscard]] std::size_t active() const { return active_.size(); }
  /// Roots ever sampled / spans dropped at the per-root cap.
  [[nodiscard]] std::uint64_t sampled_total() const { return sampled_total_; }
  [[nodiscard]] std::uint64_t spans_truncated() const {
    return spans_truncated_;
  }

  void clear();

 private:
  TupleTraceConfig config_;
  /// Private substream: sampling never perturbs workload randomness.
  sim::Rng rng_;
  std::unordered_map<std::uint64_t, RootTrace> active_;
  std::deque<RootTrace> finished_;
  std::uint64_t sampled_total_ = 0;
  std::uint64_t spans_truncated_ = 0;
};

}  // namespace tstorm::obs
