// Trace exporters. Two machine formats plus the text summaries that live
// in metrics::reporter:
//
//   * Chrome trace-event JSON — load the file in chrome://tracing or
//     https://ui.perfetto.dev: tuple spans appear as nested "X" slices on
//     one track per executor (process = worker node), scheduling decisions
//     and control-plane events as instants on a dedicated "scheduler"
//     process.
//   * JSONL — one self-contained JSON object per line ("decision" /
//     "root"), for jq-style ad-hoc analysis.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/provenance.h"
#include "obs/tuple_trace.h"
#include "trace/trace.h"

namespace tstorm::obs {

/// Writes one Chrome trace-event JSON document. `control` may be null;
/// when given, its control-plane events are included as instant events.
void write_chrome_trace(std::ostream& os, const ProvenanceLog& provenance,
                        const TupleTraceCollector& tuples,
                        const trace::TraceLog* control = nullptr);

/// Writes one JSON object per line: every provenance record
/// ({"type":"decision",...}) then every finished root trace
/// ({"type":"root",...,"spans":[...]}).
void write_jsonl(std::ostream& os, const ProvenanceLog& provenance,
                 const TupleTraceCollector& tuples);

/// JSON string escaping (exposed for tests).
std::string json_escape(const std::string& s);

}  // namespace tstorm::obs
