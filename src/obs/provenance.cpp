#include "obs/provenance.h"

#include <iomanip>
#include <sstream>

namespace tstorm::obs {

const char* to_string(DecisionTrigger trigger) {
  switch (trigger) {
    case DecisionTrigger::kPeriodic:
      return "periodic";
    case DecisionTrigger::kOverload:
      return "overload";
    case DecisionTrigger::kRecovery:
      return "recovery";
    case DecisionTrigger::kInitial:
      return "initial";
    case DecisionTrigger::kManual:
      return "manual";
  }
  return "?";
}

const char* to_string(DecisionOutcome outcome) {
  switch (outcome) {
    case DecisionOutcome::kPublished:
      return "published";
    case DecisionOutcome::kEmptyInput:
      return "empty-input";
    case DecisionOutcome::kIncompleteAssignment:
      return "incomplete-assignment";
    case DecisionOutcome::kNoChange:
      return "no-change";
    case DecisionOutcome::kNoWin:
      return "no-win";
    case DecisionOutcome::kApplyRejected:
      return "apply-rejected";
  }
  return "?";
}

std::string format_decision(const DecisionRecord& r) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << "[" << std::setw(8) << r.time
     << "s] decision#" << r.seq << " " << to_string(r.trigger) << " -> "
     << to_string(r.outcome);
  if (!r.algorithm.empty()) os << " algo=" << r.algorithm;
  if (r.executors > 0) os << " executors=" << r.executors;
  if (r.current_traffic >= 0) {
    os << " traffic=" << std::setprecision(2) << r.current_traffic << "->"
       << r.proposed_traffic << " (improvement "
       << std::setprecision(1) << 100.0 * r.improvement << "% vs "
       << 100.0 * r.min_improvement << "% required)";
  }
  if (r.nodes_freed != 0) os << " nodes_freed=" << r.nodes_freed;
  if (r.count_relaxed) os << " count-relaxed";
  if (r.capacity_relaxed) os << " capacity-relaxed";
  if (r.version > 0) os << " version=" << r.version;
  if (!r.reason.empty()) os << " (" << r.reason << ")";
  return os.str();
}

std::uint64_t ProvenanceLog::record(DecisionRecord r) {
  r.seq = total_++;
  if (r.outcome == DecisionOutcome::kPublished && r.version > 0) {
    published_versions_.insert(r.version);
  }
  const std::uint64_t seq = r.seq;
  records_.push_back(std::move(r));
  while (records_.size() > capacity_) records_.pop_front();
  return seq;
}

std::vector<DecisionRecord> ProvenanceLog::of_outcome(
    DecisionOutcome outcome) const {
  std::vector<DecisionRecord> out;
  for (const auto& r : records_) {
    if (r.outcome == outcome) out.push_back(r);
  }
  return out;
}

std::vector<DecisionRecord> ProvenanceLog::of_trigger(
    DecisionTrigger trigger) const {
  std::vector<DecisionRecord> out;
  for (const auto& r : records_) {
    if (r.trigger == trigger) out.push_back(r);
  }
  return out;
}

std::size_t ProvenanceLog::count(DecisionOutcome outcome) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.outcome == outcome) ++n;
  }
  return n;
}

}  // namespace tstorm::obs
