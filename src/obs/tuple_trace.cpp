#include "obs/tuple_trace.h"

#include <algorithm>

namespace tstorm::obs {

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kEmit:
      return "emit";
    case SpanKind::kQueueWait:
      return "queue-wait";
    case SpanKind::kExecute:
      return "execute";
    case SpanKind::kNetworkHop:
      return "network-hop";
    case SpanKind::kAckWait:
      return "ack-wait";
  }
  return "?";
}

TupleTraceCollector::TupleTraceCollector(TupleTraceConfig config,
                                         std::uint64_t seed)
    : config_(config), rng_(seed) {
  if (config_.capacity == 0) config_.capacity = 1;
  if (config_.max_spans_per_root == 0) config_.max_spans_per_root = 1;
}

bool TupleTraceCollector::should_sample() {
  if (config_.sample_rate >= 1.0) return true;
  return rng_.uniform() < config_.sample_rate;
}

void TupleTraceCollector::begin_root(std::uint64_t root_id,
                                     sched::TaskId spout, int attempt,
                                     sim::Time now) {
  auto [it, inserted] = active_.try_emplace(root_id);
  if (!inserted) return;
  RootTrace& t = it->second;
  t.root_id = root_id;
  t.spout = spout;
  t.attempt = attempt;
  t.emit_time = now;
  ++sampled_total_;
}

void TupleTraceCollector::add_span(std::uint64_t root_id, Span span) {
  auto it = active_.find(root_id);
  if (it == active_.end()) return;
  RootTrace& t = it->second;
  const double dur = std::max(0.0, span.t1 - span.t0);
  switch (span.kind) {
    case SpanKind::kQueueWait:
      t.queue_wait_s += dur;
      break;
    case SpanKind::kExecute:
      t.execute_s += dur;
      break;
    case SpanKind::kNetworkHop:
      t.network_s += dur;
      break;
    case SpanKind::kAckWait:
      t.ack_wait_s += dur;
      break;
    case SpanKind::kEmit:
      break;
  }
  if (t.spans.size() >= config_.max_spans_per_root) {
    ++spans_truncated_;
    return;
  }
  t.spans.push_back(span);
}

void TupleTraceCollector::finish_root(std::uint64_t root_id, sim::Time now,
                                      bool completed) {
  auto it = active_.find(root_id);
  if (it == active_.end()) return;
  RootTrace t = std::move(it->second);
  active_.erase(it);
  t.end_time = now;
  t.completed = completed;
  // Ack wait: from the end of the last observed phase to the ack (or
  // timeout) — the tail the spout could not see.
  sim::Time last = t.emit_time;
  for (const Span& s : t.spans) last = std::max(last, s.t1);
  if (now > last) {
    Span ack;
    ack.kind = SpanKind::kAckWait;
    ack.task = t.spout;
    ack.t0 = last;
    ack.t1 = now;
    t.ack_wait_s += now - last;
    if (t.spans.size() < config_.max_spans_per_root) {
      t.spans.push_back(ack);
    } else {
      ++spans_truncated_;
    }
  }
  finished_.push_back(std::move(t));
  while (finished_.size() > config_.capacity) finished_.pop_front();
}

void TupleTraceCollector::clear() {
  active_.clear();
  finished_.clear();
  sampled_total_ = 0;
  spans_truncated_ = 0;
}

}  // namespace tstorm::obs
