// Schedule provenance: the decision-level introspection layer. Every pass
// of the schedule generator — published *or* rejected — and every Nimbus
// rebalance produces one DecisionRecord explaining *why* the scheduler did
// what it did: per-node load vs scheduler-visible capacity, current vs
// proposed inter-node traffic, win margins against the hysteresis
// thresholds, relaxation flags, and a machine-readable outcome for the
// silent paths that used to be a bare `return false`. Records live in a
// bounded ring buffer; published assignment versions are additionally kept
// in a tiny persistent set so the chaos auditor can match every
// schedule-applied trace event to a decision even after ring eviction.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_set>
#include <vector>

#include "sched/types.h"
#include "sim/simulation.h"

namespace tstorm::obs {

/// What caused a scheduling pass to run.
enum class DecisionTrigger : std::uint8_t {
  kPeriodic,  // the generation-period timer (or a direct generate_now call)
  kOverload,  // the overload watchdog (queue+load gate or dead assignment)
  kRecovery,  // Nimbus failure detector auto-rebalance of a stranded topology
  kInitial,   // initial scheduling at topology submission
  kManual,    // explicit rebalance/apply call (operator or test)
};

/// How the pass ended. Exactly one outcome per pass.
enum class DecisionOutcome : std::uint8_t {
  kPublished,             // a new schedule was published/applied
  kEmptyInput,            // no assigned topologies to schedule
  kIncompleteAssignment,  // the algorithm left executors unplaced
  kNoChange,              // proposal identical to the current placement
  kNoWin,                 // neither traffic nor consolidation win justified it
  kApplyRejected,         // Nimbus refused the placement (conflict/stale)
};

const char* to_string(DecisionTrigger trigger);
const char* to_string(DecisionOutcome outcome);

/// One node's estimated load against the capacity the scheduler saw.
struct NodeLoadSample {
  sched::NodeId node = -1;
  double load_mhz = 0;
  double capacity_mhz = 0;
};

struct DecisionRecord {
  /// Monotone per-log sequence number, assigned by ProvenanceLog::record.
  std::uint64_t seq = 0;
  sim::Time time = 0;
  DecisionTrigger trigger = DecisionTrigger::kPeriodic;
  DecisionOutcome outcome = DecisionOutcome::kNoChange;
  /// Scheduling algorithm the pass ran (empty for raw placement applies).
  std::string algorithm;
  /// Executors in the scheduler input.
  int executors = 0;
  /// Estimated per-node load vs the scheduler-visible capacity
  /// (capacity_fraction already applied). Empty for passes that never
  /// consulted the metrics database (Nimbus rebalances).
  std::vector<NodeLoadSample> node_loads;
  /// Inter-node traffic (tuples/s) under the current / proposed placement;
  /// -1 where not evaluated (no current placement).
  double current_traffic = -1;
  double proposed_traffic = -1;
  /// Fractional traffic reduction of the proposal ((cur-new)/cur) and the
  /// min_improvement threshold it was judged against.
  double improvement = 0;
  double min_improvement = 0;
  /// Worker nodes the proposal would free, and the two win flags of the
  /// publication gate (Algorithm 1's hysteresis).
  int nodes_freed = 0;
  bool traffic_win = false;
  bool consolidation_win = false;
  /// Constraint relaxations the algorithm needed (ScheduleResult flags).
  bool count_relaxed = false;
  bool capacity_relaxed = false;
  /// Assignment version, > 0 only when outcome == kPublished.
  sched::AssignmentVersion version = 0;
  /// Human-readable explanation (always set, including rejections).
  std::string reason;
};

/// One decision as a single log line.
std::string format_decision(const DecisionRecord& r);

/// Bounded ring buffer of decisions with query helpers. Not thread-safe
/// (single-threaded simulation). Published assignment versions survive
/// ring eviction in a side set (8 bytes per publish) so provenance checks
/// never false-positive on long runs.
class ProvenanceLog {
 public:
  explicit ProvenanceLog(std::size_t capacity = 1024)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Assigns the record's sequence number and stores it; returns the seq.
  std::uint64_t record(DecisionRecord r);

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] std::uint64_t total_recorded() const { return total_; }
  [[nodiscard]] const std::deque<DecisionRecord>& records() const {
    return records_;
  }
  /// Most recent record; nullptr when empty.
  [[nodiscard]] const DecisionRecord* last() const {
    return records_.empty() ? nullptr : &records_.back();
  }

  [[nodiscard]] std::vector<DecisionRecord> of_outcome(
      DecisionOutcome outcome) const;
  [[nodiscard]] std::vector<DecisionRecord> of_trigger(
      DecisionTrigger trigger) const;
  [[nodiscard]] std::size_t count(DecisionOutcome outcome) const;

  /// True if a decision with this assignment version was ever published
  /// (survives ring eviction; the chaos auditor's provenance check).
  [[nodiscard]] bool has_version(sched::AssignmentVersion version) const {
    return published_versions_.contains(version);
  }
  [[nodiscard]] std::uint64_t published_total() const {
    return published_versions_.size();
  }

  void clear() {
    records_.clear();
    published_versions_.clear();
    total_ = 0;
  }

 private:
  std::size_t capacity_;
  std::deque<DecisionRecord> records_;
  std::unordered_set<sched::AssignmentVersion> published_versions_;
  std::uint64_t total_ = 0;
};

}  // namespace tstorm::obs
