#include "sim/inline_fn.h"

#include <memory>
#include <vector>

namespace tstorm::sim::detail {

namespace {

struct FreeNode {
  FreeNode* next;
};

// Chunked slot pool: slots are never returned to the OS, so a simulation
// that peaks at N oversized in-flight callbacks allocates ceil(N/64) chunks
// total and then recycles forever. Alignment: chunks come from operator
// new (max_align_t-aligned) and kPoolSlotBytes is a multiple of that, so
// every slot is max_align_t-aligned.
struct Pool {
  static constexpr std::size_t kSlotsPerChunk = 64;
  FreeNode* free_list = nullptr;
  std::vector<std::unique_ptr<unsigned char[]>> chunks;

  void* take() {
    if (free_list == nullptr) grow();
    FreeNode* node = free_list;
    free_list = node->next;
    return node;
  }

  void put(void* p) noexcept {
    auto* node = static_cast<FreeNode*>(p);
    node->next = free_list;
    free_list = node;
  }

  void grow() {
    chunks.push_back(
        std::make_unique<unsigned char[]>(kSlotsPerChunk * kPoolSlotBytes));
    unsigned char* base = chunks.back().get();
    for (std::size_t i = kSlotsPerChunk; i-- > 0;) {
      put(base + i * kPoolSlotBytes);
    }
  }
};

Pool& pool() {
  static Pool p;
  return p;
}

}  // namespace

static_assert(kPoolSlotBytes % alignof(std::max_align_t) == 0);
static_assert(kPoolSlotBytes >= sizeof(FreeNode));

InlineFnStats& inline_fn_stats() noexcept {
  static InlineFnStats stats;
  return stats;
}

void* pool_alloc(std::size_t bytes) {
  if (bytes > kPoolSlotBytes) {
    ++inline_fn_stats().oversize_ctor;
    return ::operator new(bytes);
  }
  ++inline_fn_stats().pooled_ctor;
  return pool().take();
}

void pool_free(void* p, std::size_t bytes) noexcept {
  if (bytes > kPoolSlotBytes) {
    ::operator delete(p);
    return;
  }
  pool().put(p);
}

}  // namespace tstorm::sim::detail
