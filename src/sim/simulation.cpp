#include "sim/simulation.h"

#include <algorithm>
#include <cmath>

namespace tstorm::sim {

// ------------------------------------------------------------- slot map

std::uint32_t Simulation::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t index = free_head_;
    free_head_ = slots_[index].next_free;
    return index;
  }
  assert(slots_.size() < kNoSlot);
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulation::release_slot(std::uint32_t index) {
  Slot& s = slots_[index];
  s.armed = false;
  ++s.gen;  // invalidates the issued EventId and any heap record for it
  if (s.gen == 0) s.gen = 1;  // keep ids nonzero across generation wrap
  s.next_free = free_head_;
  free_head_ = index;
}

// ------------------------------------------------------------ 4-ary heap
//
// Hole-based sifting: the displaced item is held aside while ancestors or
// descendants shift into the hole, then written once — one 24-byte store
// per level instead of a three-store swap.

void Simulation::heap_push(HeapItem item) {
  heap_.push_back(item);  // reserves capacity; value rewritten below
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!earlier(item, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = item;
}

void Simulation::heap_pop_top() {
  const HeapItem item = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t i = 0;
  while (true) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + 4, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], item)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = item;
}

bool Simulation::settle_top() {
  while (!heap_.empty()) {
    const HeapItem& top = heap_.front();
    const Slot& s = slots_[top.slot];
    if (s.armed && s.gen == top.gen) return true;
    heap_pop_top();  // stale record of a cancelled event
  }
  return false;
}

InlineFn Simulation::take_top(Time& t_out) {
  const HeapItem top = heap_.front();
  heap_pop_top();
  InlineFn fn = std::move(slots_[top.slot].fn);
  // Retire the slot before invoking, so the callback can freely schedule
  // (reusing this slot) or cancel without observing a half-dead event.
  release_slot(top.slot);
  --live_;
  t_out = key_time(top.tkey);
  return fn;
}

// ------------------------------------------------------------ scheduling

bool Simulation::cancel(EventId id) {
  const auto index = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (id == kInvalidEvent || index >= slots_.size()) return false;
  Slot& s = slots_[index];
  // Executed and cancelled events both bumped the generation, so double
  // cancels and cancels of consumed ids fail here — they can no longer
  // corrupt the live count (or anything else).
  if (!s.armed || s.gen != gen) return false;
  s.fn.reset();
  release_slot(index);
  --live_;
  return true;
}

void Simulation::reserve(std::size_t events) {
  slots_.reserve(events);
  heap_.reserve(events);
}

// ------------------------------------------------------------- execution

bool Simulation::step() {
  if (stopped_ || !settle_top()) return false;
  Time t = 0;
  InlineFn fn = take_top(t);
  now_ = t;
  ++executed_;
  fn();
  return true;
}

std::size_t Simulation::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t Simulation::run_until(Time t) {
  std::size_t n = 0;
  // A horizon below every (non-negative) event time runs nothing. The
  // `+ 0.0` normalizes -0.0 to +0.0 so the key encoding stays monotone.
  if (!(t < 0)) {
    const std::uint64_t horizon = time_key(t + 0.0);
    while (!stopped_ && settle_top() && heap_.front().tkey <= horizon) {
      Time event_t = 0;
      InlineFn fn = take_top(event_t);
      now_ = event_t;
      ++executed_;
      ++n;
      fn();
    }
  }
  now_ = std::max(now_, t);
  return n;
}

// ----------------------------------------------------------- PeriodicTask

PeriodicTask::PeriodicTask(Simulation& sim, Time period, InlineFn fn)
    : sim_(sim), period_(period), fn_(std::move(fn)) {
  assert(period_ >= kMinPeriod);
  // Release-build safety net: a non-positive period would tick forever at
  // one timestamp; clamp so time always advances.
  if (!(period_ >= kMinPeriod)) period_ = kMinPeriod;
}

void PeriodicTask::set_period(Time period) {
  assert(period >= kMinPeriod);
  if (!(period >= kMinPeriod)) return;  // reject: keep the current period
  period_ = period;
}

void PeriodicTask::start(Time first_delay) {
  stop();
  pending_ = sim_.schedule_after(first_delay, [this] { tick(); });
}

void PeriodicTask::stop() {
  if (pending_ != kInvalidEvent) {
    sim_.cancel(pending_);
    pending_ = kInvalidEvent;
  }
}

void PeriodicTask::tick() {
  // Re-arm first so fn_ may call stop()/set_period() and observe a
  // consistent state.
  pending_ = sim_.schedule_after(period_, [this] { tick(); });
  fn_();
}

}  // namespace tstorm::sim
