#include "sim/simulation.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace tstorm::sim {

EventId Simulation::schedule_at(Time t, std::function<void()> fn) {
  const EventId id = next_id_++;
  queue_.push(Entry{std::max(t, now_), id, std::move(fn)});
  ++live_;
  return id;
}

EventId Simulation::schedule_after(Time dt, std::function<void()> fn) {
  assert(dt >= 0);
  return schedule_at(now_ + dt, std::move(fn));
}

bool Simulation::cancel(EventId id) {
  if (id == kInvalidEvent || id >= next_id_) return false;
  // Lazy cancellation: remember the id and skip it when popped.
  const bool inserted = cancelled_.insert(id).second;
  if (inserted && live_ > 0) --live_;
  return inserted;
}

bool Simulation::pop_next(Entry& out) {
  while (!queue_.empty()) {
    // priority_queue::top is const; we move out after the pop decision.
    Entry e = queue_.top();
    queue_.pop();
    auto it = cancelled_.find(e.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    out = std::move(e);
    return true;
  }
  return false;
}

bool Simulation::step() {
  if (stopped_) return false;
  Entry e;
  if (!pop_next(e)) return false;
  --live_;
  now_ = e.t;
  ++executed_;
  e.fn();
  return true;
}

std::size_t Simulation::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t Simulation::run_until(Time t) {
  std::size_t n = 0;
  while (!stopped_ && !queue_.empty()) {
    Entry e;
    if (!pop_next(e)) break;
    if (e.t > t) {
      // Put it back untouched; it stays pending beyond the horizon.
      queue_.push(std::move(e));
      break;
    }
    --live_;
    now_ = e.t;
    ++executed_;
    ++n;
    e.fn();
  }
  now_ = std::max(now_, t);
  return n;
}

PeriodicTask::PeriodicTask(Simulation& sim, Time period,
                           std::function<void()> fn)
    : sim_(sim), period_(period), fn_(std::move(fn)) {
  assert(period_ > 0);
}

void PeriodicTask::start(Time first_delay) {
  stop();
  pending_ = sim_.schedule_after(first_delay, [this] { tick(); });
}

void PeriodicTask::stop() {
  if (pending_ != kInvalidEvent) {
    sim_.cancel(pending_);
    pending_ = kInvalidEvent;
  }
}

void PeriodicTask::tick() {
  // Re-arm first so fn_ may call stop()/set_period() and observe a
  // consistent state.
  pending_ = sim_.schedule_after(period_, [this] { tick(); });
  fn_();
}

}  // namespace tstorm::sim
