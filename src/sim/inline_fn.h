// InlineFn: a move-only `void()` callback with 48 bytes of inline storage,
// built for the simulator's hot schedule/execute cycle. std::function's
// small-buffer is 16 bytes on libstdc++, so the common event closures
// (this + a couple of PODs) heap-allocate on every schedule; InlineFn keeps
// them inline, and routes the rare oversized closure through a recycling
// slot pool instead of malloc. Like the Simulation that owns it, InlineFn
// is single-threaded by design: the pool and the stats counters are not
// thread-safe.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace tstorm::sim {

namespace detail {

/// Fixed-size recycling allocator for oversized callbacks. Slots of
/// kPoolSlotBytes are carved from chunked blocks and returned to a free
/// list; requests above the slot size fall back to operator new.
inline constexpr std::size_t kPoolSlotBytes = 128;
void* pool_alloc(std::size_t bytes);
void pool_free(void* p, std::size_t bytes) noexcept;

/// Construction counters, exposed so tests can assert which storage path a
/// given closure takes (and the bench can report pool traffic).
struct InlineFnStats {
  std::uint64_t inline_ctor = 0;    // fit the inline buffer
  std::uint64_t pooled_ctor = 0;    // pool slot (48 < size <= 128)
  std::uint64_t oversize_ctor = 0;  // operator new (> 128 bytes)
};
InlineFnStats& inline_fn_stats() noexcept;

}  // namespace detail

class InlineFn {
 public:
  /// Sized so every scheduling closure in the runtime (executor service
  /// completions, spout polls, network deliveries via envelope handles)
  /// stays inline: 48 bytes = this-pointer + 5 words of POD capture.
  static constexpr std::size_t kInlineBytes = 48;
  static constexpr std::size_t kStorageAlign = alignof(std::max_align_t);

  InlineFn() noexcept = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                     // std::function at every schedule_* call site.
    construct(std::forward<F>(f));
  }

  /// Destroys the current callback (if any) and constructs `f` directly in
  /// this object's storage — the zero-move path used by the simulator's
  /// slot map.
  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  void emplace(F&& f) {
    reset();
    construct(std::forward<F>(f));
  }

  InlineFn(InlineFn&& other) noexcept { move_from(other); }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  /// Destroys the held callback (and frees its pool slot, if any).
  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(storage_);
      vt_ = nullptr;
    }
  }

  void operator()() {
    assert(vt_ != nullptr);
    vt_->invoke(storage_);
  }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

 private:
  struct VTable {
    void (*invoke)(void* storage);
    /// Move-constructs into dst from src storage, then destroys src's
    /// object (heap-backed callbacks just steal the pointer).
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename D>
  static constexpr VTable kInlineVTable = {
      [](void* s) { (*std::launder(reinterpret_cast<D*>(s)))(); },
      [](void* dst, void* src) noexcept {
        D* from = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* s) noexcept { std::launder(reinterpret_cast<D*>(s))->~D(); },
  };

  template <typename D>
  static constexpr VTable kHeapVTable = {
      [](void* s) { (**reinterpret_cast<D**>(s))(); },
      [](void* dst, void* src) noexcept {
        *reinterpret_cast<D**>(dst) = *reinterpret_cast<D**>(src);
      },
      [](void* s) noexcept {
        D* obj = *reinterpret_cast<D**>(s);
        obj->~D();
        detail::pool_free(obj, sizeof(D));
      },
  };

  template <typename F, typename D = std::decay_t<F>>
  void construct(F&& f) {
    static_assert(alignof(D) <= kStorageAlign,
                  "over-aligned callbacks are not supported");
    if constexpr (sizeof(D) <= kInlineBytes &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      vt_ = &kInlineVTable<D>;
      ++detail::inline_fn_stats().inline_ctor;
    } else {
      void* mem = detail::pool_alloc(sizeof(D));
      ::new (mem) D(std::forward<F>(f));
      *reinterpret_cast<D**>(storage_) = static_cast<D*>(mem);
      vt_ = &kHeapVTable<D>;
    }
  }

  void move_from(InlineFn& other) noexcept {
    vt_ = other.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(storage_, other.storage_);
      other.vt_ = nullptr;
    }
  }

  alignas(kStorageAlign) unsigned char storage_[kInlineBytes];
  const VTable* vt_ = nullptr;
};

}  // namespace tstorm::sim
