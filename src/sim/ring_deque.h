// Circular-buffer deque. Replaces std::deque for executor queues and
// replay buffers: libstdc++'s deque allocates/frees a chunk roughly every
// few dozen push/pop cycles even at constant depth, which breaks the
// steady-state zero-allocation guarantee. RingDeque's capacity plateaus at
// the high-water mark and is reused forever. Supports the indexed scan +
// mid-queue erase the load-shedding path needs.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace tstorm::sim {

template <typename T>
class RingDeque {
 public:
  RingDeque() = default;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] T& front() noexcept {
    assert(size_ > 0);
    return buf_[head_];
  }
  [[nodiscard]] const T& front() const noexcept {
    assert(size_ > 0);
    return buf_[head_];
  }

  [[nodiscard]] T& operator[](std::size_t i) noexcept {
    assert(i < size_);
    return buf_[(head_ + i) & mask()];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    assert(i < size_);
    return buf_[(head_ + i) & mask()];
  }

  void push_back(T v) {
    if (size_ == buf_.size()) grow();
    buf_[(head_ + size_) & mask()] = std::move(v);
    ++size_;
  }

  T pop_front() noexcept {
    assert(size_ > 0);
    T out = std::move(buf_[head_]);
    buf_[head_] = T{};  // release resources held by the vacated slot
    head_ = (head_ + 1) & mask();
    --size_;
    return out;
  }

  /// Removes element i, shifting the shorter side toward the gap.
  void erase_at(std::size_t i) noexcept {
    assert(i < size_);
    if (i < size_ / 2) {
      // Shift the front segment back by one.
      for (std::size_t k = i; k > 0; --k) {
        (*this)[k] = std::move((*this)[k - 1]);
      }
      buf_[head_] = T{};
      head_ = (head_ + 1) & mask();
    } else {
      for (std::size_t k = i; k + 1 < size_; ++k) {
        (*this)[k] = std::move((*this)[k + 1]);
      }
      buf_[(head_ + size_ - 1) & mask()] = T{};
    }
    --size_;
  }

  void clear() noexcept {
    for (std::size_t i = 0; i < size_; ++i) {
      buf_[(head_ + i) & mask()] = T{};
    }
    head_ = 0;
    size_ = 0;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }

 private:
  [[nodiscard]] std::size_t mask() const noexcept { return buf_.size() - 1; }

  void grow() {
    const std::size_t new_cap = buf_.empty() ? 8 : buf_.size() * 2;
    std::vector<T> wider(new_cap);
    for (std::size_t i = 0; i < size_; ++i) {
      wider[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
    }
    buf_ = std::move(wider);
    head_ = 0;
  }

  std::vector<T> buf_;  // power-of-two length
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace tstorm::sim
