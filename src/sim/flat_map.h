// Open-addressing hash map with linear probing and backward-shift erase.
// Replaces std::unordered_map on the per-tuple hot paths (acker XOR state,
// tracker entries): no node allocation per insert — capacity is a single
// flat array that plateaus at the in-flight high-water mark, so steady
// state performs zero heap allocations (erase keeps capacity).
//
// One key value is reserved as the empty-slot sentinel (template
// parameter). Root ids use 0 (spouts never emit root 0); task ids use -1.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace tstorm::sim {

template <typename K, typename V, K EmptyKey>
class FlatMap {
 public:
  FlatMap() = default;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] bool contains(K key) const noexcept {
    return find(key) != nullptr;
  }

  [[nodiscard]] const V* find(K key) const noexcept {
    assert(key != EmptyKey);
    if (slots_.empty()) return nullptr;
    for (std::size_t i = index_of(key);; i = (i + 1) & mask()) {
      const Slot& s = slots_[i];
      if (s.key == key) return &s.value;
      if (s.key == EmptyKey) return nullptr;
    }
  }
  [[nodiscard]] V* find(K key) noexcept {
    return const_cast<V*>(std::as_const(*this).find(key));
  }

  /// Finds or default-inserts. `inserted` (optional) reports which.
  V& get_or_insert(K key, bool* inserted = nullptr) {
    assert(key != EmptyKey);
    if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) grow();
    for (std::size_t i = index_of(key);; i = (i + 1) & mask()) {
      Slot& s = slots_[i];
      if (s.key == key) {
        if (inserted != nullptr) *inserted = false;
        return s.value;
      }
      if (s.key == EmptyKey) {
        s.key = key;
        s.value = V{};
        ++size_;
        if (inserted != nullptr) *inserted = true;
        return s.value;
      }
    }
  }
  V& operator[](K key) { return get_or_insert(key); }

  /// Backward-shift erase: true if the key was present. Capacity is kept.
  bool erase(K key) noexcept {
    assert(key != EmptyKey);
    if (slots_.empty()) return false;
    for (std::size_t i = index_of(key);; i = (i + 1) & mask()) {
      if (slots_[i].key == EmptyKey) return false;
      if (slots_[i].key == key) {
        erase_slot(i);
        return true;
      }
    }
  }

  /// Removes every entry for which pred(key, value) is true. A lazy-sweep
  /// helper: an entry relocated backward across the scan position by an
  /// erasure may be skipped this pass — callers (expiry sweeps) tolerate
  /// that, catching it on the next sweep.
  template <typename Pred>
  void erase_if(Pred pred) noexcept {
    for (std::size_t i = 0; i < slots_.size();) {
      if (slots_[i].key != EmptyKey && pred(slots_[i].key, slots_[i].value)) {
        erase_slot(i);  // may shift a later element into i: re-examine
      } else {
        ++i;
      }
    }
  }

  template <typename Fn>
  void for_each(Fn fn) const {
    for (const Slot& s : slots_) {
      if (s.key != EmptyKey) fn(s.key, s.value);
    }
  }

  void clear() noexcept {
    for (Slot& s : slots_) {
      if (s.key != EmptyKey) {
        s.key = EmptyKey;
        s.value = V{};
      }
    }
    size_ = 0;
  }

 private:
  struct Slot {
    K key = EmptyKey;
    V value{};
  };

  [[nodiscard]] std::size_t mask() const noexcept {
    return slots_.size() - 1;
  }
  [[nodiscard]] std::size_t index_of(K key) const noexcept {
    // splitmix64 finalizer: root ids are raw RNG draws but task ids are
    // small sequential ints — mix so linear probing sees a spread index.
    auto x = static_cast<std::uint64_t>(key);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x) & mask();
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.empty() ? 16 : old.size() * 2, Slot{});
    size_ = 0;
    for (Slot& s : old) {
      if (s.key == EmptyKey) continue;
      // Re-insert without the load check (capacity is already sufficient).
      for (std::size_t i = index_of(s.key);; i = (i + 1) & mask()) {
        if (slots_[i].key == EmptyKey) {
          slots_[i].key = s.key;
          slots_[i].value = std::move(s.value);
          ++size_;
          break;
        }
      }
    }
  }

  void erase_slot(std::size_t i) noexcept {
    slots_[i].key = EmptyKey;
    slots_[i].value = V{};
    --size_;
    // Backward shift: walk the probe chain, pulling displaced entries back
    // so lookups never cross a hole mid-chain.
    std::size_t hole = i;
    for (std::size_t j = (i + 1) & mask(); slots_[j].key != EmptyKey;
         j = (j + 1) & mask()) {
      const std::size_t home = index_of(slots_[j].key);
      // Move j into the hole iff the hole lies cyclically in [home, j).
      const bool wraps = home > j;
      const bool between =
          wraps ? (hole >= home || hole <= j) : (hole >= home && hole <= j);
      if (between && hole != j) {
        slots_[hole].key = slots_[j].key;
        slots_[hole].value = std::move(slots_[j].value);
        slots_[j].key = EmptyKey;
        slots_[j].value = V{};
        hole = j;
      }
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace tstorm::sim
