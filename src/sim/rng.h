// Deterministic random number generation (xoshiro256**) with the
// distributions the workload generators and network model need. Every
// simulation owns one root Rng; substreams are derived with fork() so module
// insertion order does not perturb other modules' draws.
#pragma once

#include <cstdint>
#include <string>

namespace tstorm::sim {

/// xoshiro256** seeded via splitmix64. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Normal via Box-Muller (no caching, keeps the stream simple).
  double normal(double mu, double sigma);

  /// Bernoulli trial.
  bool bernoulli(double p);

  /// Poisson-distributed count (Knuth for small means, normal approx above).
  std::uint64_t poisson(double mean);

  /// Zipf-distributed rank in [0, n) with exponent s (word frequency model).
  std::uint64_t zipf(std::uint64_t n, double s);

  /// Random lowercase ASCII string of the given length.
  std::string random_string(std::size_t length);

  /// Derives an independent substream; advances this stream by one draw.
  Rng fork();

 private:
  std::uint64_t s_[4];
  // Memoized zipf constants: the rejection sampler needs pow(2, s-1) and
  // -1/(s-1), both functions of the exponent alone. Workload generators
  // call zipf with a fixed exponent per stream, so these are computed once
  // instead of per draw. Pure caching — the draw sequence is unchanged.
  double zipf_s_ = 0.0;
  double zipf_b_ = 0.0;
  double zipf_inv_ = 0.0;
};

}  // namespace tstorm::sim
