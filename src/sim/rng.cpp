#include "sim/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace tstorm::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::exponential(double mean) {
  assert(mean > 0);
  double u;
  do {
    u = uniform();
  } while (u == 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mu, double sigma) {
  double u1;
  do {
    u1 = uniform();
  } while (u1 == 0.0);
  const double u2 = uniform();
  const double mag =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return mu + sigma * mag;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::uint64_t Rng::poisson(double mean) {
  assert(mean >= 0);
  if (mean > 64.0) {
    const double v = std::round(normal(mean, std::sqrt(mean)));
    return v < 0 ? 0 : static_cast<std::uint64_t>(v);
  }
  const double limit = std::exp(-mean);
  std::uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= uniform();
  } while (p > limit);
  return k - 1;
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  assert(n > 0);
  // Inverse-CDF via rejection (Devroye); adequate for workload generation.
  if (s != zipf_s_) {
    zipf_s_ = s;
    zipf_b_ = std::pow(2.0, s - 1.0);
    zipf_inv_ = -1.0 / (s - 1.0);
  }
  const double b = zipf_b_;
  for (;;) {
    const double u = uniform();
    const double v = uniform();
    const double x = std::floor(std::pow(u, zipf_inv_));
    if (x < 1.0 || x > static_cast<double>(n)) continue;
    const double t = std::pow(1.0 + 1.0 / x, s - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
      return static_cast<std::uint64_t>(x) - 1;
    }
  }
}

std::string Rng::random_string(std::size_t length) {
  std::string out(length, 'a');
  for (auto& c : out) {
    c = static_cast<char>('a' + uniform_int(0, 25));
  }
  return out;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace tstorm::sim
