// Discrete-event simulation engine: a single-threaded event loop over
// simulated time. All T-Storm substrates (network, executors, daemons)
// schedule work here; determinism is guaranteed by (time, sequence) ordering.
//
// The hot path is allocation-free: callbacks are constructed in place into
// sim::InlineFn slots inside a recycled slot map, and the ready queue is a
// 4-ary binary heap of 24-byte (time-key, seq, slot, gen) records (4-ary:
// half the depth and contiguous children, so a pop touches far less memory
// than a binary heap). Cancellation is O(1) — the slot is reclaimed
// immediately and its heap record is skipped when popped (the record
// carries the slot generation it was issued for, so a recycled slot never
// mis-fires a stale record). See docs/MODEL.md, "Engine internals &
// performance".
#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/inline_fn.h"

namespace tstorm::sim {

/// Simulated time in seconds.
using Time = double;

/// Handle to a scheduled event; usable with Simulation::cancel(). Encodes
/// (slot generation << 32 | slot index); treat it as opaque.
using EventId = std::uint64_t;

/// Sentinel for "no event". Generations start at 1, so no issued id is 0.
inline constexpr EventId kInvalidEvent = 0;

/// A deterministic discrete-event simulator.
///
/// Events scheduled at equal times execute in scheduling order, which makes
/// every run bit-for-bit reproducible given the same inputs and RNG seed.
/// The class is not thread-safe; the whole simulation is single-threaded by
/// design (simulated concurrency, real determinism).
class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time in seconds.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `fn` at absolute time `t`. Times in the past are clamped to
  /// now() (the event still runs, immediately after pending ones). The
  /// callback is constructed directly into its event slot: closures within
  /// InlineFn::kInlineBytes never touch the heap.
  template <typename F,
            typename = std::enable_if_t<
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventId schedule_at(Time t, F&& fn) {
    const std::uint32_t index = acquire_slot();
    Slot& s = slots_[index];
    if constexpr (std::is_same_v<std::decay_t<F>, InlineFn>) {
      s.fn = std::forward<F>(fn);
    } else {
      s.fn.emplace(std::forward<F>(fn));
    }
    s.armed = true;
    heap_push(HeapItem{time_key(t > now_ ? t : now_), next_seq_++, index,
                       s.gen});
    ++live_;
    return make_id(s.gen, index);
  }

  /// Schedules `fn` after a relative delay `dt >= 0`.
  template <typename F,
            typename = std::enable_if_t<
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventId schedule_after(Time dt, F&& fn) {
    assert(dt >= 0);
    return schedule_at(now_ + dt, std::forward<F>(fn));
  }

  /// Cancels a pending event in O(1): the callback is destroyed and its
  /// slot recycled immediately. Returns true if the event existed and had
  /// not yet run. Cancelling an already-executed, already-cancelled, or
  /// invalid id is a no-op returning false.
  bool cancel(EventId id);

  /// Executes the next pending event. Returns false if none remain or the
  /// simulation was stopped.
  bool step();

  /// Runs until no events remain or stop() is called. Returns the number of
  /// events executed by this call.
  std::size_t run();

  /// Runs all events with timestamp <= `t`, then sets the clock to `t`.
  /// Returns the number of events executed by this call.
  std::size_t run_until(Time t);

  /// Requests that run()/run_until() return after the current event.
  void stop() { stopped_ = true; }

  /// Clears the stop flag so the simulation can be resumed.
  void clear_stop() { stopped_ = false; }

  [[nodiscard]] bool stopped() const { return stopped_; }

  /// Number of events executed so far over the simulation's lifetime.
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Number of scheduled events not yet executed or cancelled.
  [[nodiscard]] std::size_t pending() const { return live_; }

  /// Pre-sizes the slot map and heap for an expected concurrent event
  /// population, so even the warm-up phase never reallocates.
  void reserve(std::size_t events);

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  /// One schedulable event. While armed, `fn` holds the callback and `gen`
  /// is the generation its EventId was issued with; when free, the slot
  /// sits on the freelist (via `next_free`) with `gen` already bumped, so
  /// stale ids and stale heap records both fail their generation check.
  struct Slot {
    InlineFn fn;
    std::uint32_t gen = 1;
    std::uint32_t next_free = kNoSlot;
    bool armed = false;
  };

  /// Heap record: 24-byte POD ordered by (tkey, seq). `seq` increments per
  /// schedule call, which preserves the engine's documented ordering
  /// semantics exactly (equal times run in scheduling order).
  struct HeapItem {
    std::uint64_t tkey;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  /// Times are clamped non-negative before encoding, and the IEEE-754 bit
  /// pattern of non-negative doubles is order-preserving as an unsigned
  /// integer — so heap comparisons are pure integer compares.
  static std::uint64_t time_key(Time t) {
    return std::bit_cast<std::uint64_t>(t);
  }
  static Time key_time(std::uint64_t key) {
    return std::bit_cast<Time>(key);
  }

  static bool earlier(const HeapItem& a, const HeapItem& b) {
    if (a.tkey != b.tkey) return a.tkey < b.tkey;
    return a.seq < b.seq;
  }

  static EventId make_id(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);

  void heap_push(HeapItem item);
  void heap_pop_top();
  /// Drops cancelled records off the heap top; returns false when empty.
  bool settle_top();
  /// Pops the top (live) record, retires its slot, and moves the callback
  /// out for execution.
  InlineFn take_top(Time& t_out);

  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  bool stopped_ = false;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::vector<HeapItem> heap_;
};

/// Repeatedly runs a callback at a fixed period. Models the daemon loops in
/// Storm/T-Storm (supervisor sync, load monitor sampling, schedule
/// generation/fetch). The period can be changed on the fly ("adjustment of
/// scheduling parameters on the fly", paper section IV-A).
class PeriodicTask {
 public:
  /// Smallest accepted period: non-positive periods would arm an infinite
  /// same-timestamp tick loop, so they are rejected (assert in debug
  /// builds; clamped/ignored in release — see set_period()).
  static constexpr Time kMinPeriod = 1e-9;

  /// Does not start automatically; call start().
  PeriodicTask(Simulation& sim, Time period, InlineFn fn);
  ~PeriodicTask() { stop(); }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  /// Schedules the first tick `first_delay` from now, then every period().
  void start(Time first_delay = 0);

  /// Cancels any pending tick.
  void stop();

  [[nodiscard]] bool running() const { return pending_ != kInvalidEvent; }

  [[nodiscard]] Time period() const { return period_; }

  /// Takes effect from the next tick onward. Non-positive or NaN periods
  /// are invalid: they assert in debug builds and are ignored (the current
  /// period is kept) in release builds.
  void set_period(Time period);

 private:
  void tick();

  Simulation& sim_;
  Time period_;
  InlineFn fn_;
  EventId pending_ = kInvalidEvent;
};

}  // namespace tstorm::sim
