// Discrete-event simulation engine: a single-threaded event loop over
// simulated time. All T-Storm substrates (network, executors, daemons)
// schedule work here; determinism is guaranteed by (time, sequence) ordering.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace tstorm::sim {

/// Simulated time in seconds.
using Time = double;

/// Handle to a scheduled event; usable with Simulation::cancel().
using EventId = std::uint64_t;

/// Sentinel for "no event".
inline constexpr EventId kInvalidEvent = 0;

/// A deterministic discrete-event simulator.
///
/// Events scheduled at equal times execute in scheduling order, which makes
/// every run bit-for-bit reproducible given the same inputs and RNG seed.
/// The class is not thread-safe; the whole simulation is single-threaded by
/// design (simulated concurrency, real determinism).
class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time in seconds.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `fn` at absolute time `t`. Times in the past are clamped to
  /// now() (the event still runs, immediately after pending ones).
  EventId schedule_at(Time t, std::function<void()> fn);

  /// Schedules `fn` after a relative delay `dt >= 0`.
  EventId schedule_after(Time dt, std::function<void()> fn);

  /// Cancels a pending event. Returns true if the event existed and had not
  /// yet run. Cancelling an already-executed or invalid id is a no-op.
  bool cancel(EventId id);

  /// Executes the next pending event. Returns false if none remain or the
  /// simulation was stopped.
  bool step();

  /// Runs until no events remain or stop() is called. Returns the number of
  /// events executed by this call.
  std::size_t run();

  /// Runs all events with timestamp <= `t`, then sets the clock to `t`.
  /// Returns the number of events executed by this call.
  std::size_t run_until(Time t);

  /// Requests that run()/run_until() return after the current event.
  void stop() { stopped_ = true; }

  /// Clears the stop flag so the simulation can be resumed.
  void clear_stop() { stopped_ = false; }

  [[nodiscard]] bool stopped() const { return stopped_; }

  /// Number of events executed so far over the simulation's lifetime.
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Number of scheduled events not yet executed or cancelled.
  [[nodiscard]] std::size_t pending() const { return live_; }

 private:
  struct Entry {
    Time t = 0;
    EventId id = kInvalidEvent;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.id > b.id;
    }
  };

  // Pops cancelled entries off the top; returns false when queue is empty.
  bool pop_next(Entry& out);

  Time now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  bool stopped_ = false;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

/// Repeatedly runs a callback at a fixed period. Models the daemon loops in
/// Storm/T-Storm (supervisor sync, load monitor sampling, schedule
/// generation/fetch). The period can be changed on the fly ("adjustment of
/// scheduling parameters on the fly", paper section IV-A).
class PeriodicTask {
 public:
  /// Does not start automatically; call start().
  PeriodicTask(Simulation& sim, Time period, std::function<void()> fn);
  ~PeriodicTask() { stop(); }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  /// Schedules the first tick `first_delay` from now, then every period().
  void start(Time first_delay = 0);

  /// Cancels any pending tick.
  void stop();

  [[nodiscard]] bool running() const { return pending_ != kInvalidEvent; }

  [[nodiscard]] Time period() const { return period_; }

  /// Takes effect from the next tick onward.
  void set_period(Time period) { period_ = period; }

 private:
  void tick();

  Simulation& sim_;
  Time period_;
  std::function<void()> fn_;
  EventId pending_ = kInvalidEvent;
};

}  // namespace tstorm::sim
