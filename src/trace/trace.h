// Control-plane event trace: a bounded, queryable record of everything the
// scheduling machinery does — topology submissions, schedule publications
// and applications, worker lifecycle transitions, spout halts, overload
// triggers, node failures. The runtime emits events unconditionally (the
// sink decides retention), so tests can assert on control-plane behaviour
// and operators can reconstruct "what happened around t=380 s?".
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sched/types.h"
#include "sim/simulation.h"

namespace tstorm::trace {

enum class EventKind : std::uint8_t {
  kTopologySubmitted,
  kSchedulePublished,  // generator -> db
  kScheduleApplied,    // custom scheduler -> nimbus
  kWorkerStarted,
  kWorkerDraining,
  kWorkerStopped,
  kSpoutsHalted,
  kOverloadTriggered,
  kNodeFailed,
  kNodeRecovered,
  kTopologyKilled,
  /// Nimbus's failure detector view (may disagree with ground truth when
  /// heartbeats are lost in flight — false positives).
  kNodeDeclaredDead,
  kNodeDeclaredAlive,
  /// A chaos-harness fault injection (detail describes the fault).
  kChaosFault,
  /// Flow control: a topology's backpressure throttle flag flipped on/off
  /// (node = the executor's node that triggered the transition, where
  /// known).
  kBackpressureOn,
  kBackpressureOff,
  /// Flow control: a data tuple was shed at a hard-full executor queue
  /// (node = the congested executor's node, detail names task + policy).
  kTupleShed,
  /// A schedule-generation pass ran and was rejected (detail carries the
  /// machine-readable outcome + reason; the full DecisionRecord lives in
  /// obs::ProvenanceLog). Emitted only when CoreConfig::trace_decisions
  /// is on, so default trace streams are unchanged.
  kScheduleRejected,
  /// State: a checkpoint round completed (every stateful task's snapshot
  /// landed durably; detail carries round id, bytes, duration) or aborted
  /// (superseded while incomplete — lost barriers or dropped writes).
  kCheckpointComplete,
  kCheckpointAborted,
  /// State: a (re)started stateful executor rehydrated from the durable
  /// store (detail carries checkpoint id + entry count).
  kStateRestored,
};

const char* to_string(EventKind kind);

struct Event {
  sim::Time time = 0;
  EventKind kind = EventKind::kTopologySubmitted;
  /// Semantics depend on kind; -1 where not applicable.
  sched::TopologyId topology = -1;
  sched::NodeId node = -1;
  sched::SlotIndex slot = -1;
  sched::AssignmentVersion version = 0;
  /// Free-form detail ("gamma=1.7", "7 nodes", algorithm name...).
  std::string detail;
};

/// Formats one event as a single log line.
std::string format_event(const Event& e);

/// Ring-buffer sink with query helpers. Not thread-safe (single-threaded
/// simulation).
class TraceLog {
 public:
  explicit TraceLog(std::size_t capacity = 65536) : capacity_(capacity) {}

  void record(Event event);

  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] std::uint64_t total_recorded() const { return total_; }
  [[nodiscard]] const std::deque<Event>& events() const { return events_; }

  /// Events of one kind, oldest first.
  [[nodiscard]] std::vector<Event> of_kind(EventKind kind) const;

  /// Events in [from, to), oldest first.
  [[nodiscard]] std::vector<Event> between(sim::Time from,
                                           sim::Time to) const;

  /// Count of events of a kind.
  [[nodiscard]] std::size_t count(EventKind kind) const;

  /// Writes formatted lines for events in [from, to).
  void dump(std::ostream& os, sim::Time from = 0,
            sim::Time to = 1e18) const;

  /// Optional tap invoked on every record (e.g. live logging).
  void set_listener(std::function<void(const Event&)> listener) {
    listener_ = std::move(listener);
  }

  void clear() {
    events_.clear();
    total_ = 0;
  }

 private:
  std::size_t capacity_;
  std::deque<Event> events_;
  std::uint64_t total_ = 0;
  std::function<void(const Event&)> listener_;
};

}  // namespace tstorm::trace
