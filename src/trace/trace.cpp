#include "trace/trace.h"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace tstorm::trace {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kTopologySubmitted:
      return "topology-submitted";
    case EventKind::kSchedulePublished:
      return "schedule-published";
    case EventKind::kScheduleApplied:
      return "schedule-applied";
    case EventKind::kWorkerStarted:
      return "worker-started";
    case EventKind::kWorkerDraining:
      return "worker-draining";
    case EventKind::kWorkerStopped:
      return "worker-stopped";
    case EventKind::kSpoutsHalted:
      return "spouts-halted";
    case EventKind::kOverloadTriggered:
      return "overload-triggered";
    case EventKind::kNodeFailed:
      return "node-failed";
    case EventKind::kNodeRecovered:
      return "node-recovered";
    case EventKind::kTopologyKilled:
      return "topology-killed";
    case EventKind::kNodeDeclaredDead:
      return "node-declared-dead";
    case EventKind::kNodeDeclaredAlive:
      return "node-declared-alive";
    case EventKind::kChaosFault:
      return "chaos-fault";
    case EventKind::kBackpressureOn:
      return "backpressure-on";
    case EventKind::kBackpressureOff:
      return "backpressure-off";
    case EventKind::kTupleShed:
      return "tuple-shed";
    case EventKind::kScheduleRejected:
      return "schedule-rejected";
    case EventKind::kCheckpointComplete:
      return "checkpoint-complete";
    case EventKind::kCheckpointAborted:
      return "checkpoint-aborted";
    case EventKind::kStateRestored:
      return "state-restored";
  }
  return "?";
}

std::string format_event(const Event& e) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << "[" << std::setw(8) << e.time
     << "s] " << to_string(e.kind);
  if (e.topology >= 0) os << " topology=" << e.topology;
  if (e.node >= 0) os << " node=" << e.node;
  if (e.slot >= 0) os << " slot=" << e.slot;
  if (e.version > 0) os << " version=" << e.version;
  if (!e.detail.empty()) os << " (" << e.detail << ")";
  return os.str();
}

void TraceLog::record(Event event) {
  ++total_;
  if (listener_) listener_(event);
  events_.push_back(std::move(event));
  while (events_.size() > capacity_) events_.pop_front();
}

std::vector<Event> TraceLog::of_kind(EventKind kind) const {
  std::vector<Event> out;
  for (const auto& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

std::vector<Event> TraceLog::between(sim::Time from, sim::Time to) const {
  std::vector<Event> out;
  for (const auto& e : events_) {
    if (e.time >= from && e.time < to) out.push_back(e);
  }
  return out;
}

std::size_t TraceLog::count(EventKind kind) const {
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

void TraceLog::dump(std::ostream& os, sim::Time from, sim::Time to) const {
  for (const auto& e : events_) {
    if (e.time >= from && e.time < to) os << format_event(e) << "\n";
  }
}

}  // namespace tstorm::trace
