// Random topology generator: layered DAGs with random parallelism,
// groupings and costs. Not part of the paper's evaluation — a fuzzing
// substrate for the runtime and schedulers (any generated topology must
// run, ack, and schedule without violating invariants).
#pragma once

#include <cstdint>

#include "topo/builder.h"

namespace tstorm::workload {

struct RandomTopologyOptions {
  int min_bolts = 1;
  int max_bolts = 6;
  int max_parallelism = 4;
  /// Upper bound on per-tuple bolt cost (mega-cycles).
  double max_cost_mc = 1.5;
  /// Probability a bolt forwards its input downstream (vs terminal).
  double forward_probability = 0.7;
  /// Probability an extra subscription is added (multi-input bolts).
  double extra_input_probability = 0.3;
  double emit_interval = 0.005;
  int max_pending = 100;
  int workers = 8;
  int ackers = 2;
  std::uint64_t seed = 1;
  std::string name = "random";
};

/// Builds a valid random topology. The spout emits integer sequence
/// tuples with output field "v"; every bolt declares output field "v" so
/// any grouping (shuffle/fields/all/global) is wirable.
topo::Topology make_random_topology(const RandomTopologyOptions& options);

}  // namespace tstorm::workload
