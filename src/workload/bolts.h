// Reusable spout/bolt implementations shared by the benchmark topologies.
// Each declares its simulated CPU cost (mega-cycles) and, where relevant,
// blocking I/O time, standing in for the real work the JVM components did.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "state/state_store.h"
#include "topo/component.h"
#include "workload/external_queue.h"
#include "workload/textgen.h"

namespace tstorm::workload {

/// Throughput Test spout: "repeatedly generates random strings of a fixed
/// size of 10K bytes as input tuples".
class RandomStringSpout final : public topo::Spout {
 public:
  RandomStringSpout(std::size_t payload_bytes, double cost_mc,
                    std::uint64_t seed);

  std::optional<topo::Tuple> next_tuple() override;
  [[nodiscard]] double cpu_cost_mega_cycles() const override {
    return cost_mc_;
  }

 private:
  std::string base_;  // reused payload buffer (counter stamped in place)
  double cost_mc_;
  std::uint64_t counter_ = 0;
};

/// Pulls one item per call from an external queue and emits the line
/// synthesized by `make_line` (the Redis-consuming reader/log spouts).
/// `make_line` returns a view into the generator's reused buffer; the
/// spout copies it into the (pooled) tuple before the next call.
class QueueSpout final : public topo::Spout {
 public:
  QueueSpout(std::shared_ptr<ExternalQueue> queue,
             std::function<std::string_view()> make_line, double cost_mc);

  std::optional<topo::Tuple> next_tuple() override;
  [[nodiscard]] double cpu_cost_mega_cycles() const override {
    return cost_mc_;
  }

 private:
  std::shared_ptr<ExternalQueue> queue_;
  std::function<std::string_view()> make_line_;
  double cost_mc_;
};

/// "Simply emits any tuples it receives ... without changing anything."
class IdentityBolt final : public topo::Bolt {
 public:
  explicit IdentityBolt(double cost_mc) : cost_mc_(cost_mc) {}

  void execute(const topo::Tuple& input, topo::BoltContext& ctx) override {
    ctx.emit(input);
  }
  [[nodiscard]] double cpu_cost_mega_cycles(
      const topo::Tuple& /*input*/) const override {
    return cost_mc_;
  }

 private:
  double cost_mc_;
};

/// "Holds a counter, and increments ... every time a tuple has been
/// received and processed." Terminal bolt (no emissions). The counter
/// lives in managed keyed state so it survives reassignment.
class CounterBolt final : public topo::StatefulBolt {
 public:
  explicit CounterBolt(double cost_mc) : cost_mc_(cost_mc) {}

  void execute(const topo::Tuple& /*input*/,
               topo::BoltContext& /*ctx*/) override {
    state().increment(topo::Value("tuples"));
  }
  [[nodiscard]] double cpu_cost_mega_cycles(
      const topo::Tuple& /*input*/) const override {
    return cost_mc_;
  }
  [[nodiscard]] std::int64_t count() const {
    if (!has_state()) return 0;
    const topo::Value* v = state().get(topo::Value("tuples"));
    return v != nullptr ? v->as_int() : 0;
  }

 private:
  double cost_mc_;
};

/// SplitSentence: splits each line into words. Cost scales with line
/// length.
class SplitSentenceBolt final : public topo::Bolt {
 public:
  SplitSentenceBolt(double base_mc, double per_word_mc)
      : base_mc_(base_mc), per_word_mc_(per_word_mc) {}

  void execute(const topo::Tuple& input, topo::BoltContext& ctx) override;
  [[nodiscard]] double cpu_cost_mega_cycles(
      const topo::Tuple& input) const override;

 private:
  double base_mc_;
  double per_word_mc_;
};

/// WordCount: increments a per-word counter in managed keyed state and
/// emits (word, count). Short words stay inline in the Value key, so
/// once the vocabulary has been seen, execute() allocates nothing.
class WordCountBolt final : public topo::StatefulBolt {
 public:
  explicit WordCountBolt(double cost_mc) : cost_mc_(cost_mc) {}

  void execute(const topo::Tuple& input, topo::BoltContext& ctx) override;
  [[nodiscard]] double cpu_cost_mega_cycles(
      const topo::Tuple& /*input*/) const override {
    return cost_mc_;
  }

 private:
  double cost_mc_;
};

/// Terminal sink persisting results into a (simulated) MongoDB: CPU for
/// serialization plus blocking driver I/O.
class MongoBolt final : public topo::Bolt {
 public:
  MongoBolt(double cost_mc, double io_s) : cost_mc_(cost_mc), io_s_(io_s) {}

  void execute(const topo::Tuple& /*input*/,
               topo::BoltContext& /*ctx*/) override {
    ++writes_;
  }
  [[nodiscard]] double cpu_cost_mega_cycles(
      const topo::Tuple& /*input*/) const override {
    return cost_mc_;
  }
  [[nodiscard]] double io_time_seconds(
      const topo::Tuple& /*input*/) const override {
    return io_s_;
  }
  [[nodiscard]] std::uint64_t writes() const { return writes_; }

 private:
  double cost_mc_;
  double io_s_;
  std::uint64_t writes_ = 0;
};

/// Log rules bolt: "performs rule-based analysis on the log stream and
/// emits a single value containing a log entry instance".
class LogRulesBolt final : public topo::Bolt {
 public:
  explicit LogRulesBolt(double cost_mc) : cost_mc_(cost_mc) {}

  void execute(const topo::Tuple& input, topo::BoltContext& ctx) override {
    ctx.emit(topo::Tuple{input.get_string(0)});
  }
  [[nodiscard]] double cpu_cost_mega_cycles(
      const topo::Tuple& /*input*/) const override {
    return cost_mc_;
  }

 private:
  double cost_mc_;
};

/// Indexer bolt: builds the (simulated) index document, keeps an indexed
/// document count in managed state, and forwards the document.
class IndexerBolt final : public topo::StatefulBolt {
 public:
  explicit IndexerBolt(double cost_mc) : cost_mc_(cost_mc) {}

  void execute(const topo::Tuple& input, topo::BoltContext& ctx) override {
    state().increment(topo::Value("docs"));
    ctx.emit(topo::Tuple{input.get_string(0)});
  }
  [[nodiscard]] double cpu_cost_mega_cycles(
      const topo::Tuple& /*input*/) const override {
    return cost_mc_;
  }

 private:
  double cost_mc_;
};

/// Log counter bolt: aggregates per-entry counts in managed keyed state
/// and forwards (key, count).
class LogCountBolt final : public topo::StatefulBolt {
 public:
  explicit LogCountBolt(double cost_mc) : cost_mc_(cost_mc) {}

  void execute(const topo::Tuple& input, topo::BoltContext& ctx) override {
    const auto& entry = input.get_string(0);
    const auto key =
        static_cast<std::int64_t>(entry.size() % 97);  // cheap extraction
    const std::int64_t n = state().increment(topo::Value(key));
    ctx.emit(topo::Tuple{key, n});
  }
  [[nodiscard]] double cpu_cost_mega_cycles(
      const topo::Tuple& /*input*/) const override {
    return cost_mc_;
  }

 private:
  double cost_mc_;
};

}  // namespace tstorm::workload
